// Package repro reproduces "The Effectiveness of Loop Unrolling for
// Modulo Scheduling in Clustered VLIW Architectures" (Sánchez &
// González, ICPP 2000) as a Go library.
//
// The implementation lives under internal/: package core is the front
// door (the paper's scheduler plus selective unrolling), and
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks.  See README.md for a
// tour and DESIGN.md for the system inventory.
package repro
