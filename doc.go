// Package repro reproduces "The Effectiveness of Loop Unrolling for
// Modulo Scheduling in Clustered VLIW Architectures" (Sánchez &
// González, ICPP 2000) as a Go library.
//
// The implementation lives under internal/: package core is the front
// door (the paper's scheduler plus selective unrolling), and
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks.  See README.md for a
// tour and DESIGN.md for the system inventory.
//
// All batch compilation flows through internal/pipeline, a concurrent
// subsystem pairing a sharded, singleflight-deduplicated compile cache
// with a bounded worker pool: each (loop, machine, options) key is
// compiled exactly once per pipeline, batches fan out across
// GOMAXPROCS workers with deterministic result ordering, and a Stats
// snapshot reports hits, misses, dedup joins and timing.  The
// experiments drivers prime the pipeline with each figure's whole
// compilation grid before building rows, and cmd/vliwsched's -batch
// mode compiles the full corpus across every Table 1 configuration
// concurrently.
package repro
