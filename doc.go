// Package repro reproduces "The Effectiveness of Loop Unrolling for
// Modulo Scheduling in Clustered VLIW Architectures" (Sánchez &
// González, ICPP 2000) as a Go library.
//
// The implementation lives under internal/: package core is the front
// door (the paper's scheduler plus selective unrolling), and
// bench_test.go in this directory regenerates every table and figure of
// the paper's evaluation as testing.B benchmarks.  See README.md for a
// tour and DESIGN.md for the system inventory.
//
// All batch compilation flows through internal/pipeline, a concurrent
// subsystem pairing a sharded, singleflight-deduplicated compile cache
// with a bounded worker pool: each (loop, machine, options) key is
// compiled exactly once per pipeline, batches fan out across
// GOMAXPROCS workers with deterministic result ordering, and a Stats
// snapshot reports hits, misses, dedup joins, unroll fallbacks and
// timing.  The experiments drivers prime the pipeline with each
// figure's whole compilation grid before building rows, and
// cmd/vliwsched's -batch mode compiles the full corpus across every
// Table 1 configuration concurrently.
//
// internal/exact is the optimality oracle: a branch-and-bound modulo
// scheduler built on the production scheduler's own attempt state
// (sched.Attempt — same reservation table, bus planner, register check
// and placement windows), sweeping IIs from MinII upward and proving
// minimality when its node/step budget holds.  Since every BSA
// placement is one path of the exhaustive search, a proved exact II is
// a hard lower bound on BSA's — the differential tests in
// internal/sched assert it on every sample graph, fuzz seed and small
// corpus loop, and experiments.OptGapTable (cmd/experiments -run
// optgap) reports the per-benchmark optimality gap across the Table 1
// machines.
package repro
