// Command loopgen inspects the synthetic SPECfp95 workload: per-benchmark
// loop statistics, or a single loop's dependence graph.
//
// Usage:
//
//	loopgen                      suite statistics
//	loopgen -bench swim          one benchmark's loops in detail
//	loopgen -bench swim -loop 2 -dot    a loop's DDG in Graphviz DOT
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	bench := flag.String("bench", "", "show one benchmark's loops")
	loopIdx := flag.Int("loop", -1, "with -bench: select one loop")
	dot := flag.Bool("dot", false, "with -bench and -loop: print DOT")
	flag.Parse()

	suite := corpus.SPECfp95()
	if *bench == "" {
		printSuite(suite)
		return
	}
	for _, b := range suite {
		if b.Name != *bench {
			continue
		}
		if *loopIdx < 0 {
			printBench(b)
			return
		}
		if *loopIdx >= len(b.Loops) {
			fmt.Fprintf(os.Stderr, "loopgen: %s has %d loops\n", b.Name, len(b.Loops))
			os.Exit(1)
		}
		l := b.Loops[*loopIdx]
		if *dot {
			fmt.Print(l.Graph.Dot())
			return
		}
		printLoop(l)
		return
	}
	fmt.Fprintf(os.Stderr, "loopgen: unknown benchmark %q\n", *bench)
	os.Exit(1)
}

func printSuite(suite []*corpus.Benchmark) {
	t := report.New("Synthetic SPECfp95 suite",
		"benchmark", "loops", "avg ops", "recurrences", "loop-carried deps", "avg iters")
	for _, b := range suite {
		ops, recs, carried, iters := 0, 0, 0, 0
		for _, l := range b.Loops {
			ops += l.Ops()
			recs += len(l.Graph.Recurrences())
			carried += len(l.Graph.LoopCarried())
			iters += l.Iters
		}
		n := len(b.Loops)
		t.AddRow(b.Name, n, ops/n, recs, carried, iters/n)
	}
	fmt.Println(t)
}

func printBench(b *corpus.Benchmark) {
	uni := machine.Unified()
	four := machine.FourCluster(1, 1)
	t := report.New(fmt.Sprintf("Benchmark %s", b.Name),
		"loop", "ops", "edges", "recMII", "minII(uni)", "minII(4c)", "iters", "weight")
	for _, l := range b.Loops {
		t.AddRow(l.Graph.Name, l.Ops(), l.Graph.NumEdges(),
			l.Graph.RecMII(), l.Graph.MinII(&uni), l.Graph.MinII(&four),
			l.Iters, l.Weight)
	}
	fmt.Println(t)
}

func printLoop(l *corpus.Loop) {
	fmt.Printf("%s: iters=%d weight=%d\n", l.Graph, l.Iters, l.Weight)
	for _, n := range l.Graph.Nodes() {
		fmt.Printf("  %-8s %s\n", n.Name, n.Class)
	}
	for _, e := range l.Graph.Edges() {
		fmt.Printf("  %s -> %s (lat %d, dist %d, %s)\n",
			l.Graph.Node(e.From).Name, l.Graph.Node(e.To).Name, e.Latency, e.Distance, e.Kind)
	}
}
