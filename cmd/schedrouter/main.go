// Command schedrouter fronts N schedd replicas as one logical daemon:
// compile traffic consistent-hashes on the loop's content fingerprint
// so identical loops always land on the shard that has them cached,
// stats and capabilities aggregate across the fleet, and a dead
// replica degrades to rehashing onto the next shard on the ring.
//
// Quickstart (3-replica cluster):
//
//	schedd -addr :8181 &
//	schedd -addr :8182 &
//	schedd -addr :8183 &
//	schedrouter -addr :8080 \
//	  -replicas s1=http://127.0.0.1:8181,s2=http://127.0.0.1:8182,s3=http://127.0.0.1:8183
//
// Replica names (the part before "=") are the ring identity; keep them
// stable across restarts and deploys so the keyspace does not
// reshuffle when a replica changes address.  Clients and the load
// harness point at the router exactly as they would at one schedd.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		replicas = flag.String("replicas", "",
			"comma-separated replicas, each name=url (bare urls use the url as ring name)")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
		attempts      = flag.Int("attempts", 0, "attempts per routed request across the failover chain (0 = client default)")
		hedge         = flag.Duration("hedge", 0, "hedge delay before racing the next replica (0 = no hedging)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "replica health/capability probe period")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "budget for one replica probe")
		grace         = flag.Duration("grace", 30*time.Second, "shutdown drain budget")
	)
	flag.Parse()

	reps, err := parseReplicas(*replicas)
	if err != nil {
		log.Fatalf("schedrouter: -replicas: %v", err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:     reps,
		VNodes:       *vnodes,
		Attempts:     *attempts,
		Hedge:        *hedge,
		ProbeTimeout: *probeTimeout,
	})
	if err != nil {
		log.Fatalf("schedrouter: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ready := rt.Probe(ctx)
	log.Printf("schedrouter: %d/%d replicas ready", ready, len(reps))
	go func() {
		t := time.NewTicker(*probeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rt.Probe(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("schedrouter: listening on %s, sharding across %d replicas", *addr, len(reps))

	select {
	case err := <-errc:
		log.Fatalf("schedrouter: %v", err)
	case <-ctx.Done():
	}
	log.Printf("schedrouter: draining (up to %v)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("schedrouter: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("schedrouter: %v", err)
	}
	log.Printf("schedrouter: %d requests rehashed around dead or incapable replicas", rt.Rehashes())
}

// parseReplicas parses "name=url,name=url" (name optional).
func parseReplicas(spec string) ([]cluster.Replica, error) {
	if spec == "" {
		return nil, fmt.Errorf("at least one replica required")
	}
	var out []cluster.Replica
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok {
			name, url = part, part
		}
		if name == "" || url == "" {
			return nil, fmt.Errorf("bad replica %q (want name=url)", part)
		}
		out = append(out, cluster.Replica{Name: name, URL: url})
	}
	return out, nil
}
