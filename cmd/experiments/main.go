// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic SPECfp95 suite.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig4|fig8|fig9|fig10|optgap|ablations] [-markdown] [-workers N] [-trim N] [-strategies a,b,c]
//
// With -markdown the tables are printed as GitHub Markdown (the format
// EXPERIMENTS.md records).  Compilations run through the concurrent
// pipeline (internal/pipeline); -workers sizes its pool (default
// GOMAXPROCS) and the cache statistics are printed to stderr at exit.
//
// -strategies overrides the Figure 8 strategy groups with any
// comma-separated registered unroll policies (e.g.
// "no_unroll,portfolio,sweep:4"), so a newly registered policy drops
// straight into the paper's headline comparison.
//
// -run optgap scores BSA against the exact branch-and-bound oracle
// (internal/exact) on every Table 1 configuration; it is the slowest
// artefact (minutes on the full corpus) and therefore NOT part of
// -run all — ask for it explicitly.  -trim N cuts every benchmark to
// its first N loops — the CI smoke uses it to keep the oracle sweep
// to seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	run := flag.String("run", "all", "which artefact to regenerate (all, table1, table2, fig4, fig8, fig9, fig10, optgap, ablations)")
	markdown := flag.Bool("markdown", false, "emit GitHub Markdown instead of ASCII")
	workers := flag.Int("workers", 0, "pipeline worker count (0 = GOMAXPROCS)")
	trim := flag.Int("trim", 0, "keep only the first N loops of every benchmark (0 = full corpus)")
	strategies := flag.String("strategies", "no_unroll,unroll_all,selective",
		"comma-separated registered unroll policies for the fig8 groups")
	flag.Parse()

	var fig8Strats []core.Strategy
	for _, name := range strings.Split(*strategies, ",") {
		s, err := core.ParseStrategy(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		fig8Strats = append(fig8Strats, s)
	}

	suite := experiments.NewSuiteWorkers(loadCorpus(*trim), *workers)
	emit := func(t *report.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	start := time.Now()

	if want("table1") {
		emit(experiments.Table1(), nil)
	}
	if want("fig4") {
		emit(suite.Fig4(2))
		emit(suite.Fig4(4))
	}
	if want("fig8") {
		for _, clusters := range []int{2, 4} {
			for _, strat := range fig8Strats {
				emit(suite.Fig8(clusters, strat))
			}
		}
	}
	if want("table2") {
		emit(experiments.Table2(), nil)
	}
	if want("fig9") {
		emit(suite.Fig9())
	}
	if want("fig10") {
		emit(suite.Fig10(2))
		emit(suite.Fig10(4))
	}
	// The oracle sweep takes minutes on the full corpus: explicit only,
	// never folded into -run all.
	if *run == "optgap" {
		emit(suite.OptGapTable(exact.Budget{}))
	}
	if want("ablations") {
		emit(suite.AblationPolicy())
		emit(suite.AblationOrdering())
		emit(suite.AblationUnrollFactor())
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "%v (%d workers)\n", suite.Pipe.Stats(), suite.Pipe.Workers())
}

// loadCorpus returns the full synthetic SPECfp95 suite, or every
// benchmark cut to trim loops when trim > 0.
func loadCorpus(trim int) []*corpus.Benchmark {
	if trim <= 0 {
		return corpus.SPECfp95()
	}
	var names []string
	for _, p := range corpus.Profiles() {
		names = append(names, p.Name)
	}
	return corpus.Trimmed(names, trim)
}
