// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic SPECfp95 suite.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig4|fig8|fig9|fig10|ablations] [-markdown] [-workers N]
//
// With -markdown the tables are printed as GitHub Markdown (the format
// EXPERIMENTS.md records).  Compilations run through the concurrent
// pipeline (internal/pipeline); -workers sizes its pool (default
// GOMAXPROCS) and the cache statistics are printed to stderr at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	run := flag.String("run", "all", "which artefact to regenerate (all, table1, table2, fig4, fig8, fig9, fig10, ablations)")
	markdown := flag.Bool("markdown", false, "emit GitHub Markdown instead of ASCII")
	workers := flag.Int("workers", 0, "pipeline worker count (0 = GOMAXPROCS)")
	flag.Parse()

	suite := experiments.NewSuiteWorkers(corpus.SPECfp95(), *workers)
	emit := func(t *report.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}

	want := func(name string) bool { return *run == "all" || *run == name }
	start := time.Now()

	if want("table1") {
		emit(experiments.Table1(), nil)
	}
	if want("fig4") {
		emit(suite.Fig4(2))
		emit(suite.Fig4(4))
	}
	if want("fig8") {
		for _, clusters := range []int{2, 4} {
			for _, strat := range []core.Strategy{core.NoUnroll, core.UnrollAll, core.SelectiveUnroll} {
				emit(suite.Fig8(clusters, strat))
			}
		}
	}
	if want("table2") {
		emit(experiments.Table2(), nil)
	}
	if want("fig9") {
		emit(suite.Fig9())
	}
	if want("fig10") {
		emit(suite.Fig10(2))
		emit(suite.Fig10(4))
	}
	if want("ablations") {
		emit(suite.AblationPolicy())
		emit(suite.AblationOrdering())
		emit(suite.AblationUnrollFactor())
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(os.Stderr, "%v (%d workers)\n", suite.Pipe.Stats(), suite.Pipe.Workers())
}
