// Command vliwsched schedules a loop written in the textual IR on a
// chosen clustered VLIW configuration and prints the analysis, the
// modulo schedule, the emitted kernel and a simulated execution.
//
// Usage:
//
//	vliwsched [flags] loop.ir
//
//	-config unified|2cluster|4cluster   target machine (default 4cluster)
//	-buses N                            bus count (default 1)
//	-buslat N                           bus latency (default 1)
//	-scheduler NAME                     any registered scheduler: bsa (default),
//	                                    ne (Nystrom-Eichenberger), exact, ...
//	-strategy NAME                      any registered unroll policy: no_unroll
//	                                    (default), unroll_all, selective,
//	                                    portfolio, sweep:<k>, ...
//	-unroll none|all|selective          legacy alias of -strategy
//	-stages                             print the per-stage compile telemetry
//	-dot                                print the DDG in Graphviz DOT and exit
//	-batch                              compile every corpus loop on every
//	                                    Table 1 configuration concurrently
//	-workers N                          pipeline pool size (0 = GOMAXPROCS)
//
// Unknown -scheduler/-strategy names fail with the registered list
// (the same registry GET /v1/capabilities serves).
//
// Examples:
//
//	vliwsched -config 4cluster -buses 1 -strategy selective examples/loops/stencil.ir
//	vliwsched -config 4cluster -strategy portfolio -stages examples/loops/stencil.ir
//	vliwsched -batch -strategy sweep:4 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emit"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/vliwsim"
)

func main() {
	configName := flag.String("config", "4cluster", "machine: unified, 2cluster or 4cluster")
	buses := flag.Int("buses", 1, "number of inter-cluster buses")
	busLat := flag.Int("buslat", 1, "bus latency in cycles")
	scheduler := flag.String("scheduler", "bsa", "registered scheduler name (bsa, ne, exact, ...)")
	strategy := flag.String("strategy", "", "registered unroll policy name (no_unroll, unroll_all, selective, portfolio, sweep:<k>, ...)")
	unrollMode := flag.String("unroll", "", "legacy alias of -strategy (none, all, selective)")
	stages := flag.Bool("stages", false, "print the per-stage compile telemetry")
	dot := flag.Bool("dot", false, "print the dependence graph in DOT and exit")
	batch := flag.Bool("batch", false, "compile the whole corpus on every Table 1 config concurrently")
	workers := flag.Int("workers", 0, "pipeline worker count in batch mode (0 = GOMAXPROCS)")
	flag.Parse()

	opts := core.Options{}
	sch, err := core.ParseScheduler(*scheduler)
	if err != nil {
		fatal(err)
	}
	opts.Scheduler = sch
	stratName := *strategy
	if *unrollMode != "" {
		if stratName != "" {
			fatal(fmt.Errorf("-strategy and -unroll are the same flag; drop -unroll"))
		}
		stratName = *unrollMode
	}
	if stratName != "" {
		strat, err := core.ParseStrategy(stratName)
		if err != nil {
			fatal(err)
		}
		opts.Strategy = strat
	}

	if *batch {
		// Batch mode sweeps every Table 1 configuration over the built-in
		// corpus; single-loop flags and arguments would be silently
		// meaningless, so reject them.
		var conflict []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "config", "buses", "buslat", "dot", "stages":
				conflict = append(conflict, "-"+f.Name)
			}
		})
		if len(conflict) > 0 {
			fatal(fmt.Errorf("batch mode sweeps every Table 1 configuration; drop %s",
				strings.Join(conflict, ", ")))
		}
		if flag.NArg() > 0 {
			fatal(fmt.Errorf("batch mode compiles the built-in corpus; unexpected argument %q", flag.Arg(0)))
		}
		runBatch(opts, *workers)
		return
	}

	// The mirror check: -workers only means something in batch mode.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			fatal(fmt.Errorf("-workers only applies to -batch mode"))
		}
	})

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vliwsched [flags] loop.ir")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	loop, err := ir.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(loop.Graph.Dot())
		return
	}

	cfg, err := pickConfig(*configName, *buses, *busLat)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("loop %s: %d ops, %d edges, iters=%d\n",
		loop.Graph.Name, loop.Graph.NumNodes(), loop.Graph.NumEdges(), loop.Iters)
	fmt.Printf("machine: %s\n", cfg.String())
	fmt.Printf("ResMII=%d RecMII=%d MinII=%d\n\n",
		loop.Graph.ResMII(&cfg), loop.Graph.RecMII(), loop.Graph.MinII(&cfg))

	// The engine validates every schedule it returns (its validate
	// stage), so no re-check is needed here.
	res, err := core.Compile(loop.Graph, &cfg, &opts)
	if err != nil {
		fatal(err)
	}
	if opts.Strategy == core.SelectiveUnroll {
		fmt.Println("selective unrolling:", res.Decision)
	}
	if res.Exact != nil {
		fmt.Println(res.Exact)
	}
	if *stages {
		printStages(res)
	}
	fmt.Println(res.Schedule)
	fmt.Println(emit.Emit(res.Schedule))

	kIters := (loop.Iters + res.Factor - 1) / res.Factor
	sim, err := vliwsim.Run(res.Schedule, kIters)
	if err != nil {
		fatal(fmt.Errorf("simulation: %w", err))
	}
	fmt.Printf("simulated %d kernel iterations (%d original): %d cycles, %d ops, %d transfers, IPC %.2f\n",
		kIters, loop.Iters, sim.Cycles, sim.OpsExecuted, sim.TransfersExecuted, sim.IPC)
	fmt.Printf("register pressure per cluster: %v (capacity %d)\n", sim.MaxPressure, cfg.RegsPerCluster)
}

// runBatch compiles every loop of the synthetic SPECfp95 corpus on
// every Table 1 machine configuration through the concurrent pipeline,
// validates every schedule, and prints one summary line per
// configuration plus the pipeline statistics.
func runBatch(opts core.Options, workers int) {
	start := time.Now()
	p := pipeline.New(workers)
	cfgs := machine.Table1Configs()

	var loops []*corpus.Loop
	for _, b := range corpus.SPECfp95() {
		loops = append(loops, b.Loops...)
	}
	var reqs []pipeline.Request
	for _, cfg := range cfgs {
		for _, l := range loops {
			reqs = append(reqs, pipeline.Request{Loop: l, Cfg: cfg, Opts: opts})
		}
	}
	resps := p.CompileBatch(reqs)

	fmt.Printf("batch: %d loops x %d configs = %d compilations (%d workers)\n\n",
		len(loops), len(cfgs), len(reqs), p.Workers())
	fmt.Printf("%-18s %8s %10s %10s %8s %8s\n", "config", "loops", "mean II", "mean/iter", "unrolled", "failed")
	for ci, cfg := range cfgs {
		var iiSum, perIterSum float64
		var unrolled, failed, ok int
		for li := range loops {
			r := resps[ci*len(loops)+li]
			if r.Err != nil {
				failed++
				continue
			}
			ok++
			iiSum += float64(r.Result.Schedule.II)
			perIterSum += r.Result.IterationII()
			if r.Result.Factor > 1 {
				unrolled++
			}
		}
		meanII, meanIter := 0.0, 0.0
		if ok > 0 {
			meanII, meanIter = iiSum/float64(ok), perIterSum/float64(ok)
		}
		fmt.Printf("%-18s %8d %10.2f %10.2f %8d %8d\n", cfg.Name, ok, meanII, meanIter, unrolled, failed)
	}
	fmt.Fprintf(os.Stderr, "\n%v, total %v\n", p.Stats(), time.Since(start).Round(time.Millisecond))
}

// printStages renders the per-stage compile telemetry: where the
// compile spent its time, the II search it walked, and — for racing
// policies — what each candidate did.
func printStages(res *core.Result) {
	t := res.Stages
	if t == nil {
		return
	}
	fmt.Printf("stages (scheduler %s, policy %s", t.Scheduler, t.Policy)
	if t.Winner != "" {
		fmt.Printf(", winner %s", t.Winner)
	}
	fmt.Printf("): total %v\n", t.Total.Round(time.Microsecond))
	for _, s := range t.Stages {
		fmt.Printf("  %-9s %10v  x%d\n", s.Name, s.Duration.Round(time.Microsecond), s.Calls)
	}
	fmt.Printf("  II search: %d attempts, trajectory %v\n", t.Attempts, t.Trajectory)
	for _, c := range t.Candidates {
		switch {
		case c.Err != "":
			fmt.Printf("  candidate %-12s failed: %s\n", c.Strategy, c.Err)
		case c.Won:
			fmt.Printf("  candidate %-12s iteration II %.3f (winner)\n", c.Strategy, c.IterationII)
		default:
			fmt.Printf("  candidate %-12s iteration II %.3f\n", c.Strategy, c.IterationII)
		}
	}
}

func pickConfig(name string, buses, busLat int) (machine.Config, error) {
	switch name {
	case "unified":
		return machine.Unified(), nil
	case "2cluster":
		return machine.TwoCluster(buses, busLat), nil
	case "4cluster":
		return machine.FourCluster(buses, busLat), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown config %q (want unified, 2cluster or 4cluster)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vliwsched:", err)
	os.Exit(1)
}
