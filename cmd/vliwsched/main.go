// Command vliwsched schedules a loop written in the textual IR on a
// chosen clustered VLIW configuration and prints the analysis, the
// modulo schedule, the emitted kernel and a simulated execution.
//
// Usage:
//
//	vliwsched [flags] loop.ir
//
//	-config unified|2cluster|4cluster   target machine (default 4cluster)
//	-buses N                            bus count (default 1)
//	-buslat N                           bus latency (default 1)
//	-scheduler bsa|ne                   BSA or Nystrom-Eichenberger
//	-unroll none|all|selective          unrolling strategy
//	-dot                                print the DDG in Graphviz DOT and exit
//
// Example:
//
//	vliwsched -config 4cluster -buses 1 -unroll selective examples/loops/stencil.ir
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/vliwsim"
)

func main() {
	configName := flag.String("config", "4cluster", "machine: unified, 2cluster or 4cluster")
	buses := flag.Int("buses", 1, "number of inter-cluster buses")
	busLat := flag.Int("buslat", 1, "bus latency in cycles")
	scheduler := flag.String("scheduler", "bsa", "bsa or ne (Nystrom-Eichenberger)")
	unrollMode := flag.String("unroll", "none", "none, all or selective")
	dot := flag.Bool("dot", false, "print the dependence graph in DOT and exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vliwsched [flags] loop.ir")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	loop, err := ir.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(loop.Graph.Dot())
		return
	}

	cfg, err := pickConfig(*configName, *buses, *busLat)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{}
	switch *scheduler {
	case "bsa":
	case "ne":
		opts.Scheduler = core.NystromEichenberger
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *scheduler))
	}
	switch *unrollMode {
	case "none":
	case "all":
		opts.Strategy = core.UnrollAll
	case "selective":
		opts.Strategy = core.SelectiveUnroll
	default:
		fatal(fmt.Errorf("unknown unroll mode %q", *unrollMode))
	}

	fmt.Printf("loop %s: %d ops, %d edges, iters=%d\n",
		loop.Graph.Name, loop.Graph.NumNodes(), loop.Graph.NumEdges(), loop.Iters)
	fmt.Printf("machine: %s\n", cfg.String())
	fmt.Printf("ResMII=%d RecMII=%d MinII=%d\n\n",
		loop.Graph.ResMII(&cfg), loop.Graph.RecMII(), loop.Graph.MinII(&cfg))

	res, err := core.Compile(loop.Graph, &cfg, &opts)
	if err != nil {
		fatal(err)
	}
	if err := sched.Validate(res.Schedule); err != nil {
		fatal(fmt.Errorf("internal error: invalid schedule: %w", err))
	}
	if opts.Strategy == core.SelectiveUnroll {
		fmt.Println("selective unrolling:", res.Decision)
	}
	fmt.Println(res.Schedule)
	fmt.Println(emit.Emit(res.Schedule))

	kIters := (loop.Iters + res.Factor - 1) / res.Factor
	sim, err := vliwsim.Run(res.Schedule, kIters)
	if err != nil {
		fatal(fmt.Errorf("simulation: %w", err))
	}
	fmt.Printf("simulated %d kernel iterations (%d original): %d cycles, %d ops, %d transfers, IPC %.2f\n",
		kIters, loop.Iters, sim.Cycles, sim.OpsExecuted, sim.TransfersExecuted, sim.IPC)
	fmt.Printf("register pressure per cluster: %v (capacity %d)\n", sim.MaxPressure, cfg.RegsPerCluster)
}

func pickConfig(name string, buses, busLat int) (machine.Config, error) {
	switch name {
	case "unified":
		return machine.Unified(), nil
	case "2cluster":
		return machine.TwoCluster(buses, busLat), nil
	case "4cluster":
		return machine.FourCluster(buses, busLat), nil
	default:
		return machine.Config{}, fmt.Errorf("unknown config %q (want unified, 2cluster or 4cluster)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vliwsched:", err)
	os.Exit(1)
}
