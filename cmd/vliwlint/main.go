// Command vliwlint runs the repo's static-analysis suite
// (internal/analysis): noalloc, mapdeterminism, undopair, registry,
// graphcopy, and wiretags.
//
// Standalone:
//
//	go run ./cmd/vliwlint ./...
//
// As a vet tool (per-package results cached by the go command):
//
//	go build -o /tmp/vliwlint ./cmd/vliwlint
//	go vet -vettool=/tmp/vliwlint ./...
//
// Exit status: 0 clean, 1 internal error, 2 diagnostics reported.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

func main() {
	lint.Main("vliwlint", analysis.All())
}
