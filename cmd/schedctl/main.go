// Command schedctl is the resilient command-line client for schedd: it
// compiles loops over HTTP through internal/client, which retries
// transient failures with deadline-aware backoff, honours Retry-After,
// and can hedge across several daemons.
//
//	schedctl compile -server http://127.0.0.1:8080 -loop tomcatv.loop0 -machine 4-cluster/B1/L1
//	schedctl batch   -server http://127.0.0.1:8080 -n 64 -machine unified -attempts 8
//	schedctl stats   -server http://127.0.0.1:8080
//	schedctl capabilities -server http://127.0.0.1:8080
//
// batch generates its requests from the built-in corpus (cycling the
// loop refs), runs them as one resilient batch, and verifies the
// response set: exactly one outcome per request, no losses, no
// duplicates.  It exits non-zero if any item was lost, duplicated or
// failed — the check the chaos smoke test in CI leans on.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/corpus"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "compile":
		err = runCompile(args)
	case "batch":
		err = runBatch(args)
	case "stats":
		err = runGet(args, "stats")
	case "capabilities":
		err = runGet(args, "capabilities")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: schedctl <compile|batch|stats|capabilities> [flags]
Run "schedctl <command> -h" for that command's flags.`)
}

// clientFlags are the connection/retry knobs shared by every command.
type clientFlags struct {
	servers  *string
	attempts *int
	hedge    *time.Duration
	timeout  *time.Duration
	seed     *int64
}

func addClientFlags(fs *flag.FlagSet) *clientFlags {
	return &clientFlags{
		servers:  fs.String("server", "http://127.0.0.1:8080", "schedd base URL(s), comma-separated; extras serve retries and hedges"),
		attempts: fs.Int("attempts", 4, "max tries per request (transient failures retry with backoff)"),
		hedge:    fs.Duration("hedge", 0, "hedge delay before racing the next endpoint (0 disables)"),
		timeout:  fs.Duration("timeout", 2*time.Minute, "overall client-side deadline"),
		seed:     fs.Int64("seed", 1, "jitter seed (reproducible runs)"),
	}
}

func (cf *clientFlags) build() (*client.Client, context.Context, context.CancelFunc, error) {
	c, err := client.New(client.Config{
		Endpoints: strings.Split(*cf.servers, ","),
		Attempts:  *cf.attempts,
		Hedge:     *cf.hedge,
		Seed:      *cf.seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *cf.timeout)
	return c, ctx, cancel, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	cf := addClientFlags(fs)
	var (
		loop     = fs.String("loop", "tomcatv.loop0", "loop_ref to compile")
		mach     = fs.String("machine", "unified", "machine_ref")
		sched    = fs.String("scheduler", "", "scheduler engine (empty = server default bsa)")
		strategy = fs.String("strategy", "", "unroll policy (empty = server default no_unroll)")
		degraded = fs.Bool("allow-degraded", false, "accept a baseline fallback if the engine is quarantined or the daemon sheds load")
	)
	fs.Parse(args)
	c, ctx, cancel, err := cf.build()
	if err != nil {
		return err
	}
	defer cancel()
	res, err := c.Compile(ctx, &wire.CompileRequest{
		V:          wire.Version,
		LoopRef:    *loop,
		MachineRef: *mach,
		Options: &wire.Options{
			Scheduler: *sched,
			Strategy:  *strategy,
		},
		AllowDegraded: *degraded,
	})
	if err != nil {
		return err
	}
	return printJSON(res)
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	cf := addClientFlags(fs)
	var (
		n        = fs.Int("n", 64, "number of requests (cycling the corpus loop refs)")
		mach     = fs.String("machine", "unified", "machine_ref for every request")
		sched    = fs.String("scheduler", "", "scheduler engine")
		strategy = fs.String("strategy", "", "unroll policy")
		degraded = fs.Bool("allow-degraded", false, "accept baseline fallbacks")
		quiet    = fs.Bool("q", false, "suppress per-item lines; print only the summary")
	)
	fs.Parse(args)
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}
	c, ctx, cancel, err := cf.build()
	if err != nil {
		return err
	}
	defer cancel()

	refs := corpusRefs()
	reqs := make([]wire.CompileRequest, *n)
	for i := range reqs {
		reqs[i] = wire.CompileRequest{
			V:          wire.Version,
			LoopRef:    refs[i%len(refs)],
			MachineRef: *mach,
			Options: &wire.Options{
				Scheduler: *sched,
				Strategy:  *strategy,
			},
			AllowDegraded: *degraded,
		}
	}

	start := time.Now()
	items, err := c.Batch(ctx, reqs)
	if err != nil {
		return err
	}

	// Verify the contract the chaos suite leans on: exactly one
	// outcome per request index — nothing lost, nothing duplicated.
	seen := make([]int, len(reqs))
	ok, failed := 0, 0
	for _, it := range items {
		if it.Index < 0 || it.Index >= len(reqs) {
			return fmt.Errorf("item index %d out of range", it.Index)
		}
		seen[it.Index]++
		switch {
		case it.Result != nil:
			ok++
			if !*quiet {
				fmt.Printf("%3d %-18s ii=%d degraded=%v\n", it.Index, reqs[it.Index].LoopRef, it.Result.II, it.Result.Degraded)
			}
		case it.Error != nil:
			failed++
			if !*quiet {
				fmt.Printf("%3d %-18s ERROR %s: %s\n", it.Index, reqs[it.Index].LoopRef, it.Error.Code, it.Error.Message)
			}
		default:
			failed++
		}
	}
	lost, dup := 0, 0
	for _, cnt := range seen {
		switch {
		case cnt == 0:
			lost++
		case cnt > 1:
			dup++
		}
	}
	fmt.Printf("batch: %d requests, %d ok, %d failed, %d lost, %d duplicated in %v\n",
		len(reqs), ok, failed, lost, dup, time.Since(start).Round(time.Millisecond))
	if lost > 0 || dup > 0 || failed > 0 {
		return fmt.Errorf("%d lost, %d duplicated, %d failed", lost, dup, failed)
	}
	return nil
}

// corpusRefs lists every corpus loop_ref in a stable order.
func corpusRefs() []string {
	var refs []string
	for _, b := range corpus.SPECfp95() {
		for _, l := range b.Loops {
			refs = append(refs, l.Graph.Name)
		}
	}
	sort.Strings(refs)
	return refs
}

func runGet(args []string, what string) error {
	fs := flag.NewFlagSet(what, flag.ExitOnError)
	cf := addClientFlags(fs)
	fs.Parse(args)
	c, ctx, cancel, err := cf.build()
	if err != nil {
		return err
	}
	defer cancel()
	switch what {
	case "stats":
		v, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(v)
	default:
		v, err := c.Capabilities(ctx)
		if err != nil {
			return err
		}
		return printJSON(v)
	}
}
