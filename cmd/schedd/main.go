// Command schedd is the modulo-scheduling daemon: the compile pipeline
// behind an HTTP surface (internal/service) speaking the versioned JSON
// wire format (internal/wire).
//
// Quickstart:
//
//	schedd -addr :8080 &
//	curl -s localhost:8080/v1/compile -d '{
//	  "v": 1, "loop_ref": "tomcatv.loop0", "machine_ref": "4-cluster/B1/L1",
//	  "options": {"strategy": "selective"}
//	}'
//	curl -s localhost:8080/v1/stats
//
// POST /v1/batch takes {"v":1,"requests":[...]} and streams NDJSON, one
// result line per request as each compilation completes.  SIGINT/SIGTERM
// drain gracefully: the listener closes, in-flight requests finish
// (bounded by -grace), then the final pipeline stats go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "compile workers (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "compile cache byte budget (0 = unbounded)")
		inflight   = flag.Int("inflight", 0, "max concurrently admitted compiles (0 = 2x workers)")
		queue      = flag.Int("queue", 64, "admission queue depth before 429s")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request compile deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "upper clamp on client timeout_ms")
		maxBody    = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		grace      = flag.Duration("grace", 30*time.Second, "shutdown drain budget")
		faultSpec  = flag.String("faults", os.Getenv("SCHEDD_FAULTS"),
			"chaos-mode fault spec, e.g. seed=1,panic=0.05,latency=0.2:10ms (never in production; also via SCHEDD_FAULTS)")
	)
	flag.Parse()

	var injector *faults.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = faults.Parse(*faultSpec); err != nil {
			log.Fatalf("schedd: -faults: %v", err)
		}
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		CacheBytes:     *cacheBytes,
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		Faults:         injector,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("schedd: listening on %s (%d workers, %s cache)",
		*addr, srv.Pipeline().Workers(), byteCount(*cacheBytes))
	if injector != nil {
		log.Printf("schedd: CHAOS MODE: injecting %v (%s)", injector.Faults(), injector)
	}

	select {
	case err := <-errc:
		log.Fatalf("schedd: %v", err)
	case <-ctx.Done():
	}

	// Flip readiness first so load balancers stop routing here and new
	// compile work is refused, then let in-flight requests finish.
	srv.BeginDrain()
	log.Printf("schedd: draining (up to %v)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("schedd: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("schedd: %v", err)
	}
	log.Printf("schedd: %v", srv.Pipeline().Stats())
}

// byteCount renders a byte budget for the startup log.
func byteCount(n int64) string {
	switch {
	case n <= 0:
		return "unbounded"
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
