// Command schedd is the modulo-scheduling daemon: the compile pipeline
// behind an HTTP surface (internal/service) speaking the versioned JSON
// wire format (internal/wire).
//
// Quickstart:
//
//	schedd -addr :8080 &
//	curl -s localhost:8080/v1/compile -d '{
//	  "v": 1, "loop_ref": "tomcatv.loop0", "machine_ref": "4-cluster/B1/L1",
//	  "options": {"strategy": "selective"}
//	}'
//	curl -s localhost:8080/v1/stats
//
// POST /v1/batch takes {"v":1,"requests":[...]} and streams NDJSON, one
// result line per request as each compilation completes.  SIGINT/SIGTERM
// drain gracefully: the listener closes, in-flight requests finish
// (bounded by -grace), then the final pipeline stats go to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/service"
	"repro/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "compile workers (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "compile cache byte budget (0 = unbounded)")
		inflight   = flag.Int("inflight", 0, "max concurrently admitted compiles (0 = 2x workers)")
		queue      = flag.Int("queue", 64, "admission queue depth before 429s")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request compile deadline")
		maxTimeout = flag.Duration("max-timeout", 2*time.Minute, "upper clamp on client timeout_ms")
		maxBody    = flag.Int64("max-body", 8<<20, "request body size cap in bytes")
		grace      = flag.Duration("grace", 30*time.Second, "shutdown drain budget")
		faultSpec  = flag.String("faults", os.Getenv("SCHEDD_FAULTS"),
			"chaos-mode fault spec, e.g. seed=1,panic=0.05,latency=0.2:10ms (never in production; also via SCHEDD_FAULTS)")
		peers = flag.String("peers", "",
			"comma-separated peer base URLs for cache federation (cluster mode); misses ask the ring-preferred peer before compiling")
		peerSelf    = flag.String("peer-self", "", "this daemon's own URL within -peers (excluded from lookups)")
		peerTimeout = flag.Duration("peer-timeout", cluster.DefaultPeerTimeout, "budget for one peer cache lookup")
		snapshot    = flag.String("snapshot", "",
			"cache snapshot path: warm-start from it at boot (if present), write it back after drain")
		prefill = flag.String("prefill", "",
			"corpus NDJSON (cmd/loadgen gen) to precompile into the cache at boot")
		prefillMachines = flag.String("prefill-machines", "4-cluster/B1/L1",
			"comma-separated machine_ref names -prefill compiles against")
	)
	flag.Parse()

	var injector *faults.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = faults.Parse(*faultSpec); err != nil {
			log.Fatalf("schedd: -faults: %v", err)
		}
	}

	srv := service.New(service.Config{
		Workers:        *workers,
		CacheBytes:     *cacheBytes,
		MaxInflight:    *inflight,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		Faults:         injector,
	})

	if *peers != "" {
		pl, err := cluster.NewPeerLookup(cluster.PeerConfig{
			Self:    *peerSelf,
			Peers:   strings.Split(*peers, ","),
			Timeout: *peerTimeout,
		})
		if err != nil {
			log.Fatalf("schedd: -peers: %v", err)
		}
		if pl != nil {
			srv.Pipeline().SetPeerLookup(pl.Func())
			log.Printf("schedd: federating cache misses across peers %s (budget %v)", *peers, *peerTimeout)
		}
	}
	if *snapshot != "" {
		if n, err := loadSnapshot(srv, *snapshot); err != nil {
			log.Fatalf("schedd: -snapshot %s: %v", *snapshot, err)
		} else if n >= 0 {
			log.Printf("schedd: warm-started %d cache entries from %s", n, *snapshot)
		}
	}
	if *prefill != "" {
		n, total, err := prefillCache(srv, *prefill, *prefillMachines)
		if err != nil {
			log.Fatalf("schedd: -prefill %s: %v", *prefill, err)
		}
		log.Printf("schedd: prefilled %d/%d corpus compiles from %s", n, total, *prefill)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("schedd: listening on %s (%d workers, %s cache)",
		*addr, srv.Pipeline().Workers(), byteCount(*cacheBytes))
	if injector != nil {
		log.Printf("schedd: CHAOS MODE: injecting %v (%s)", injector.Faults(), injector)
	}

	select {
	case err := <-errc:
		log.Fatalf("schedd: %v", err)
	case <-ctx.Done():
	}

	// Flip readiness first so load balancers stop routing here and new
	// compile work is refused, then let in-flight requests finish.
	srv.BeginDrain()
	log.Printf("schedd: draining (up to %v)", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("schedd: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("schedd: %v", err)
	}
	if *snapshot != "" {
		if n, err := saveSnapshot(srv, *snapshot); err != nil {
			log.Printf("schedd: snapshot: %v", err)
		} else {
			log.Printf("schedd: snapshot: wrote %d cache entries to %s", n, *snapshot)
		}
	}
	log.Printf("schedd: %v", srv.Pipeline().Stats())
}

// loadSnapshot warm-starts the cache from an NDJSON snapshot.  A
// missing file is the normal cold boot (n = -1, no error); anything
// else that fails is fatal — a corrupt snapshot should be deleted, not
// half-believed.
func loadSnapshot(srv *service.Server, path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return -1, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return wire.LoadCache(f, srv.Pipeline())
}

// saveSnapshot persists the cache after drain, atomically: write to a
// temp file in the same directory, then rename over the target, so a
// crash mid-write never truncates the previous good snapshot.
func saveSnapshot(srv *service.Server, path string) (int, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	n, err := wire.SaveCache(f, srv.Pipeline())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return 0, err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return 0, err
	}
	return n, nil
}

// prefillCache compiles a corpus against the named machines so the
// cache is hot before the first request.  Individual unschedulable
// loops are skipped, not fatal; the pipeline's worker count bounds the
// concurrency.
func prefillCache(srv *service.Server, corpusPath, machineRefs string) (ok, total int, err error) {
	f, err := os.Open(corpusPath)
	if err != nil {
		return 0, 0, err
	}
	loops, err := loadgen.ReadCorpus(f)
	f.Close()
	if err != nil {
		return 0, 0, err
	}
	table := map[string]machine.Config{}
	for _, c := range machine.Table1Configs() {
		table[c.Name] = c
	}
	var cfgs []machine.Config
	for _, ref := range strings.Split(machineRefs, ",") {
		ref = strings.TrimSpace(ref)
		cfg, found := table[ref]
		if !found {
			return 0, 0, fmt.Errorf("unknown machine_ref %q", ref)
		}
		cfgs = append(cfgs, cfg)
	}

	pipe := srv.Pipeline()
	total = len(loops) * len(cfgs)
	var compiled atomic.Int64
	var wg sync.WaitGroup
	work := make(chan pipeline.Request)
	for w := 0; w < pipe.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				if _, err := pipe.Compile(req); err == nil {
					compiled.Add(1)
				}
			}
		}()
	}
	for _, cfg := range cfgs {
		for _, l := range loops {
			work <- pipeline.Request{Loop: l, Cfg: cfg}
		}
	}
	close(work)
	wg.Wait()
	return int(compiled.Load()), total, nil
}

// byteCount renders a byte budget for the startup log.
func byteCount(n int64) string {
	switch {
	case n <= 0:
		return "unbounded"
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
