// Command loadgen is the production load harness front-end: it
// synthesizes parameterized DDG corpora and replays them against a live
// schedd in an open loop, emitting the BENCH_service.json artefact.
//
//	loadgen gen    -count 1000 -min-nodes 8 -max-nodes 64 -extra-edges 0.5 -o corpus.ndjson
//	loadgen replay -server http://127.0.0.1:8080 -corpus corpus.ndjson -qps 200 -duration 10s -o BENCH_service.json
//	loadgen replay -server http://127.0.0.1:8080 -count 64 -qps 100 -requests 500 -batch 8 -batch-frac 0.25
//
// gen writes the corpus as NDJSON (one loop per line, the wire's inline
// loop shape); the same spec always produces byte-identical output, so
// a corpus file in a bug report reproduces exactly.  replay either
// loads a corpus file (-corpus) or generates one in-process from the
// same spec flags, then drives arrivals at the configured QPS
// regardless of completions — queue wait counts into the reported
// latency percentiles, the way real clients experience overload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/corpus"
	"repro/internal/loadgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = runGen(args)
	case "replay":
		err = runReplay(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: loadgen <gen|replay> [flags]
Run "loadgen <command> -h" for that command's flags.`)
}

// addSpecFlags registers the corpus-spec knobs shared by gen and
// replay's in-process generation.
func addSpecFlags(fs *flag.FlagSet) *loadgen.Spec {
	s := &loadgen.Spec{}
	fs.IntVar(&s.Count, "count", 256, "loops to generate")
	fs.IntVar(&s.MinNodes, "min-nodes", 8, "minimum operations per loop body")
	fs.IntVar(&s.MaxNodes, "max-nodes", 48, "maximum operations per loop body")
	fs.Float64Var(&s.RecurrenceDensity, "recurrence", 0.25, "fraction of nodes in loop-carried recurrence chains [0,1]")
	fs.Float64Var(&s.ExtraEdgeDensity, "extra-edges", 0.5, "extra dependence edges per node (>= 0)")
	fs.Float64Var(&s.ClusterAffinity, "affinity", 0.6, "probability an edge stays community-local [0,1]")
	fs.IntVar(&s.MinTrip, "min-trip", 16, "minimum trip count")
	fs.IntVar(&s.MaxTrip, "max-trip", 256, "maximum trip count")
	fs.Uint64Var(&s.Seed, "seed", 1, "corpus seed (same spec + seed = byte-identical NDJSON)")
	fs.StringVar(&s.Prefix, "prefix", "synth", "loop name prefix")
	return s
}

// runGen synthesizes a corpus and writes it as NDJSON.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	spec := addSpecFlags(fs)
	out := fs.String("o", "-", "output path (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// Stream: each loop is marshalled and written as it is synthesized,
	// so -count 1000000 runs in constant memory with the same bytes a
	// materialized Generate would produce.
	n, err := loadgen.StreamCorpus(w, *spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %d loops\n", n)
	return nil
}

// runReplay loads or generates a corpus and races it against schedd.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	spec := addSpecFlags(fs)
	var (
		server     = fs.String("server", "http://127.0.0.1:8080", "schedd base URL(s), comma-separated")
		corpusPath = fs.String("corpus", "", "NDJSON corpus file (empty = generate in-process from the spec flags)")
		qps        = fs.Float64("qps", 100, "open-loop arrival rate, requests per second")
		duration   = fs.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
		requests   = fs.Int("requests", 0, "total requests to send (0 = qps * duration)")
		inflight   = fs.Int("inflight", 256, "client-side concurrency cap (waiting counts into latency)")
		batch      = fs.Int("batch", 1, "batch envelope size (1 = singles only)")
		batchFrac  = fs.Float64("batch-frac", 0, "fraction of dispatches using a batch envelope [0,1]")
		machines   = fs.String("machines", "unified", "machine refs to cycle, comma-separated")
		scheduler  = fs.String("scheduler", "", "scheduler option for every request")
		strategy   = fs.String("strategy", "", "cluster-assignment strategy for every request")
		timeoutMS  = fs.Int("timeout-ms", 0, "per-request server deadline in ms (0 = server default)")
		attempts   = fs.Int("attempts", 1, "client attempts per request (1 = surface raw 429/504)")
		degraded   = fs.Bool("allow-degraded", false, "let the server fall back to the baseline compile")
		replaySeed = fs.Int64("replay-seed", 1, "batch-mix seed")
		waitReady  = fs.Duration("wait-ready", 0, "poll /readyz up to this long before starting (0 = no wait)")
		out        = fs.String("o", "-", "BENCH_service.json output path (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var loops []*corpus.Loop
	var specInReport *loadgen.Spec
	if *corpusPath != "" {
		f, err := os.Open(*corpusPath)
		if err != nil {
			return err
		}
		loops, err = loadgen.ReadCorpus(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		if loops, err = spec.Generate(); err != nil {
			return err
		}
		specInReport = spec
	}

	endpoints := strings.Split(*server, ",")
	if *waitReady > 0 {
		// /readyz, not /healthz: a draining daemon answers /healthz 200
		// while 503ing every compile, so a health gate can green-light a
		// replay the server will wholly reject.
		if err := loadgen.WaitReady(endpoints[0], *waitReady); err != nil {
			return err
		}
	}
	cl, err := client.New(client.Config{Endpoints: endpoints, Attempts: *attempts, Seed: *replaySeed})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Replay(ctx, loadgen.ReplayConfig{
		Client:        cl,
		QPS:           *qps,
		Requests:      *requests,
		Duration:      *duration,
		MaxInFlight:   *inflight,
		BatchSize:     *batch,
		BatchFraction: *batchFrac,
		MachineRefs:   strings.Split(*machines, ","),
		Scheduler:     *scheduler,
		Strategy:      *strategy,
		TimeoutMS:     *timeoutMS,
		AllowDegraded: *degraded,
		Attempts:      *attempts,
		Seed:          *replaySeed,
		Spec:          specInReport,
	}, loops)
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(b)
	} else {
		err = os.WriteFile(*out, b, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: sent=%d ok=%d 429=%d 504=%d errors=%d goodput=%.1f qps p50=%.1fms p99=%.1fms\n",
		rep.Sent, rep.OK, rep.Rejected429, rep.Deadline504, rep.Errors,
		rep.GoodputQPS, rep.Latency.P50MS, rep.Latency.P99MS)
	// A run where nothing succeeded is a failed run: CI must not publish
	// an artefact claiming a trajectory it never measured.
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("run produced an invalid artefact: %w", err)
	}
	return nil
}
