// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, optionally joined against a baseline
// bench-output file so the document carries before/after speedup ratios.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson [-baseline old.txt] > BENCH_sched.json
//
// Repeated -count runs of the same benchmark are averaged.  The repo's
// scripts/bench_sched.sh wraps this to produce the BENCH_sched.json
// perf-trajectory artefact.
//
// -check also validates the service-level artefact the load harness
// emits: `benchjson -check BENCH_service.json -schema service` decodes
// the document strictly against internal/loadgen's Report shape and
// runs its schema validation (accounting identity, monotone
// percentiles, consistent hit rate), so scripts/bench_service.sh and CI
// share one gate with the scheduler artefact.
//
// -compare gates one service artefact against another from the same
// pinned arrival rate:
//
//	benchjson -compare -schema service -old BENCH_single.json -new BENCH_cluster.json \
//	  -min-goodput-ratio 1.5 -max-p99-ratio 1.0 -min-hit-delta 0.05
//
// Both documents must validate individually and carry identical
// offered_qps — goodput and tail comparisons only mean something when
// the two runs saw the same offered load.  The gate fails (exit 1)
// when new goodput falls below the floor, new p99 exceeds the ceiling,
// or the cache hit rate did not improve by the required delta.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// Entry is one benchmark's aggregated result.
type Entry struct {
	Name     string  `json:"name"`
	Runs     int     `json:"runs"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds any additional `value unit` metrics (hits, misses...).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Ratio compares an entry against its baseline counterpart.
type Ratio struct {
	Name          string  `json:"name"`
	NsSpeedup     float64 `json:"ns_speedup"`
	AllocsRatio   float64 `json:"allocs_reduction,omitempty"`
	BaselineNs    float64 `json:"baseline_ns_per_op"`
	BaselineAlloc float64 `json:"baseline_allocs_per_op,omitempty"`
}

// Doc is the emitted document.
type Doc struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []*Entry `json:"benchmarks"`
	Baseline   []*Entry `json:"baseline,omitempty"`
	Ratios     []*Ratio `json:"ratios,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "previous `go test -bench` output to compare against")
	require := flag.String("require", "", "comma-separated benchmark `names` that must be present with non-zero iterations")
	check := flag.String("check", "", "validate an existing benchjson `document` instead of converting bench output")
	schema := flag.String("schema", "bench", "document `schema` for -check/-compare: bench (BENCH_sched.json) or service (BENCH_service.json)")
	compare := flag.Bool("compare", false, "gate a candidate service artefact (-new) against a baseline (-old) at the same offered_qps")
	oldPath := flag.String("old", "", "baseline BENCH_service.json `path` for -compare")
	newPath := flag.String("new", "", "candidate BENCH_service.json `path` for -compare")
	minGoodput := flag.Float64("min-goodput-ratio", 1.0, "fail unless new goodput_qps >= `ratio` * old goodput_qps")
	maxP99 := flag.Float64("max-p99-ratio", 0, "fail if new p99_ms > `ratio` * old p99_ms (0 = no ceiling)")
	minHitDelta := flag.Float64("min-hit-delta", -1, "fail unless new hit_rate - old hit_rate >= `delta` (-1 = no floor)")
	flag.Parse()

	if *compare {
		var err error
		if *schema != "service" {
			err = fmt.Errorf("-compare only supports -schema service")
		} else if *oldPath == "" || *newPath == "" {
			err = fmt.Errorf("-compare needs both -old and -new")
		} else {
			err = compareServiceDocs(*oldPath, *newPath, *minGoodput, *maxP99, *minHitDelta)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	if *check != "" {
		var err error
		switch *schema {
		case "bench":
			err = checkDoc(*check, *require)
		case "service":
			if *require != "" {
				err = fmt.Errorf("-require lists benchmark names; the service schema has none")
			} else {
				err = checkServiceDoc(*check)
			}
		default:
			err = fmt.Errorf("unknown -schema %q (want bench or service)", *schema)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *schema != "bench" {
		fmt.Fprintln(os.Stderr, "benchjson: -schema only applies to -check (conversion always emits the bench schema)")
		os.Exit(1)
	}

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := checkRequired(cur, *require); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc := &Doc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: cur,
	}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		base, err := parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
			os.Exit(1)
		}
		doc.Baseline = base
		byName := make(map[string]*Entry, len(base))
		for _, e := range base {
			byName[e.Name] = e
		}
		for _, e := range cur {
			b, ok := byName[e.Name]
			if !ok || e.NsPerOp == 0 {
				continue
			}
			r := &Ratio{Name: e.Name, NsSpeedup: round2(b.NsPerOp / e.NsPerOp), BaselineNs: b.NsPerOp}
			if e.AllocsOp > 0 {
				r.AllocsRatio = round2(b.AllocsOp / e.AllocsOp)
				r.BaselineAlloc = b.AllocsOp
			}
			doc.Ratios = append(doc.Ratios, r)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }

// checkDoc validates a previously emitted document: it must decode
// strictly against the Doc schema (unknown fields are drift), carry
// the metadata CI dashboards key on, and hold at least one benchmark
// that actually ran.  This is the artefact-side half of the
// -require guard: -require fails the producing run, -check fails a
// pipeline that published a stale, truncated, or hand-edited file.
func checkDoc(path, require string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var doc Doc
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if err := validateDoc(&doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if err := checkRequired(doc.Benchmarks, require); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

// checkServiceDoc validates a BENCH_service.json artefact: strict
// decode against the loadgen report shape (unknown fields are drift)
// plus the report's own invariants — every dispatched request settled
// exactly once, percentiles monotone, cache hit rate consistent.
func checkServiceDoc(path string) error {
	_, err := loadServiceDoc(path)
	return err
}

// loadServiceDoc strictly decodes and validates one service artefact.
func loadServiceDoc(path string) (*loadgen.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep loadgen.Report
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := rep.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// compareServiceDocs gates a candidate run against a baseline run.
// Both artefacts must be individually valid and pin the same
// offered_qps — an open-loop comparison at different arrival rates
// measures the load generator, not the service.  The three knobs map
// to the three regressions a cluster rollout can cause: goodput floor
// (did sharding actually buy throughput), p99 ceiling (did the extra
// hop cost the tail), hit-rate delta (did the warm-start/federated
// cache actually get hotter).
func compareServiceDocs(oldPath, newPath string, minGoodput, maxP99, minHitDelta float64) error {
	oldRep, err := loadServiceDoc(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadServiceDoc(newPath)
	if err != nil {
		return err
	}
	if oldRep.OfferedQPS != newRep.OfferedQPS {
		return fmt.Errorf("offered_qps differs (%s: %v, %s: %v): comparisons require the same pinned arrival rate",
			oldPath, oldRep.OfferedQPS, newPath, newRep.OfferedQPS)
	}

	goodputRatio := newRep.GoodputQPS / oldRep.GoodputQPS // Validate guarantees old > 0
	if goodputRatio < minGoodput {
		return fmt.Errorf("goodput regression: %v -> %v qps (ratio %.3f < floor %.3f)",
			oldRep.GoodputQPS, newRep.GoodputQPS, goodputRatio, minGoodput)
	}
	p99Ratio := 0.0
	if oldRep.Latency.P99MS > 0 {
		p99Ratio = newRep.Latency.P99MS / oldRep.Latency.P99MS
	}
	if maxP99 > 0 && oldRep.Latency.P99MS > 0 && p99Ratio > maxP99 {
		return fmt.Errorf("p99 regression: %vms -> %vms (ratio %.3f > ceiling %.3f)",
			oldRep.Latency.P99MS, newRep.Latency.P99MS, p99Ratio, maxP99)
	}
	hitDelta := 0.0
	haveHit := oldRep.Cache != nil && newRep.Cache != nil
	if haveHit {
		hitDelta = newRep.Cache.HitRate - oldRep.Cache.HitRate
	}
	if minHitDelta > -1 {
		if !haveHit {
			return fmt.Errorf("-min-hit-delta set but a document has no cache section (old: %v, new: %v)",
				oldRep.Cache != nil, newRep.Cache != nil)
		}
		if hitDelta < minHitDelta {
			return fmt.Errorf("hit-rate regression: %.4f -> %.4f (delta %.4f < floor %.4f)",
				oldRep.Cache.HitRate, newRep.Cache.HitRate, hitDelta, minHitDelta)
		}
	}
	fmt.Fprintf(os.Stderr,
		"benchjson: compare ok at %v qps: goodput %.1f -> %.1f (x%.2f), p99 %.1fms -> %.1fms (x%.2f), hit delta %+.4f\n",
		newRep.OfferedQPS, oldRep.GoodputQPS, newRep.GoodputQPS, goodputRatio,
		oldRep.Latency.P99MS, newRep.Latency.P99MS, p99Ratio, hitDelta)
	return nil
}

// validateDoc enforces the output schema benchjson promises its
// consumers.
func validateDoc(doc *Doc) error {
	if _, err := time.Parse(time.RFC3339, doc.Generated); err != nil {
		return fmt.Errorf("bad generated timestamp %q: %v", doc.Generated, err)
	}
	if doc.GoVersion == "" || doc.GOOS == "" || doc.GOARCH == "" {
		return fmt.Errorf("missing toolchain metadata (go_version/goos/goarch)")
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks in document")
	}
	names := make(map[string]bool, len(doc.Benchmarks))
	for _, e := range doc.Benchmarks {
		if e.Name == "" {
			return fmt.Errorf("benchmark entry with empty name")
		}
		if names[e.Name] {
			return fmt.Errorf("duplicate benchmark entry %q", e.Name)
		}
		names[e.Name] = true
		if e.Runs <= 0 || e.Iters <= 0 || e.NsPerOp <= 0 {
			return fmt.Errorf("benchmark %q never ran (runs=%d iters=%d ns/op=%v)", e.Name, e.Runs, e.Iters, e.NsPerOp)
		}
	}
	for _, r := range doc.Ratios {
		if !names[r.Name] {
			return fmt.Errorf("ratio for %q has no matching benchmark entry", r.Name)
		}
	}
	return nil
}

// checkRequired fails loudly when a benchmark the artefact is supposed
// to track is missing from the input or never actually ran (zero
// iterations, zero ns/op) — the silent-truncation failure mode where a
// renamed or skipped benchmark lets CI publish an empty artefact as
// success.
func checkRequired(entries []*Entry, require string) error {
	if require == "" {
		return nil
	}
	byName := make(map[string]*Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, ok := byName[name]
		switch {
		case !ok:
			missing = append(missing, name+" (absent)")
		case e.Iters == 0:
			missing = append(missing, name+" (zero iterations)")
		case e.NsPerOp == 0:
			missing = append(missing, name+" (zero ns/op)")
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required benchmarks did not run: %s", strings.Join(missing, ", "))
	}
	return nil
}

// parse aggregates benchmark lines, averaging repeated -count runs.
func parse(r io.Reader) ([]*Entry, error) {
	type acc struct {
		entry         *Entry
		ns, b, allocs float64
		extra         map[string]float64
	}
	var order []string
	accs := map[string]*acc{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := accs[name]
		if a == nil {
			a = &acc{entry: &Entry{Name: name}, extra: map[string]float64{}}
			accs[name] = a
			order = append(order, name)
		}
		a.entry.Runs++
		a.entry.Iters += iters
		// Remaining fields come in `value unit` pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.b += v
			case "allocs/op":
				a.allocs += v
			default:
				a.extra[fields[i+1]] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	out := make([]*Entry, 0, len(order))
	for _, name := range order {
		a := accs[name]
		runs := float64(a.entry.Runs)
		a.entry.NsPerOp = round2(a.ns / runs)
		a.entry.BPerOp = round2(a.b / runs)
		a.entry.AllocsOp = round2(a.allocs / runs)
		for k, v := range a.extra {
			if a.entry.Extra == nil {
				a.entry.Extra = map[string]float64{}
			}
			a.entry.Extra[k] = round2(v / runs)
		}
		out = append(out, a.entry)
	}
	return out, nil
}
