package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/sched
BenchmarkTryCommitAttempt/4-cluster/B1/L1-8   	 1000000	       812 ns/op	       0 B/op	       0 allocs/op
BenchmarkTryCommitAttempt/4-cluster/B1/L1-8   	 1000000	       808 ns/op	       0 B/op	       0 allocs/op
BenchmarkPlaceUnplace-8                       	 2000000	       301 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParseAveragesRepeatedRuns(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	tc := entries[0]
	if tc.Name != "BenchmarkTryCommitAttempt/4-cluster/B1/L1" {
		t.Fatalf("unexpected first entry %q (GOMAXPROCS suffix must be stripped)", tc.Name)
	}
	if tc.Runs != 2 || tc.NsPerOp != 810 {
		t.Fatalf("runs=%d ns/op=%v, want 2 runs averaged to 810", tc.Runs, tc.NsPerOp)
	}
}

func TestCheckRequired(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRequired(entries, "BenchmarkPlaceUnplace"); err != nil {
		t.Fatalf("present benchmark reported missing: %v", err)
	}
	err = checkRequired(entries, "BenchmarkPlaceUnplace,BenchmarkRenamed")
	if err == nil || !strings.Contains(err.Error(), "BenchmarkRenamed (absent)") {
		t.Fatalf("missing benchmark not reported: %v", err)
	}
}

func TestValidateDoc(t *testing.T) {
	good := &Doc{
		Generated: "2026-08-08T00:00:00Z",
		GoVersion: "go1.24",
		GOOS:      "linux",
		GOARCH:    "amd64",
		Benchmarks: []*Entry{
			{Name: "BenchmarkPlaceUnplace", Runs: 1, Iters: 100, NsPerOp: 300},
		},
		Ratios: []*Ratio{{Name: "BenchmarkPlaceUnplace", NsSpeedup: 1.1, BaselineNs: 330}},
	}
	if err := validateDoc(good); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Doc)
		want   string
	}{
		{"bad timestamp", func(d *Doc) { d.Generated = "yesterday" }, "generated timestamp"},
		{"missing metadata", func(d *Doc) { d.GoVersion = "" }, "toolchain metadata"},
		{"empty benchmarks", func(d *Doc) { d.Benchmarks = nil }, "no benchmarks"},
		{"zero iterations", func(d *Doc) { d.Benchmarks[0].Iters = 0 }, "never ran"},
		{"orphan ratio", func(d *Doc) { d.Ratios[0].Name = "BenchmarkGone" }, "no matching benchmark"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := *good
			d.Benchmarks = []*Entry{{Name: "BenchmarkPlaceUnplace", Runs: 1, Iters: 100, NsPerOp: 300}}
			d.Ratios = []*Ratio{{Name: "BenchmarkPlaceUnplace", NsSpeedup: 1.1, BaselineNs: 330}}
			tc.mutate(&d)
			err := validateDoc(&d)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCheckDoc(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
  "generated": "2026-08-08T00:00:00Z",
  "go_version": "go1.24",
  "goos": "linux",
  "goarch": "amd64",
  "benchmarks": [
    {"name": "BenchmarkPlaceUnplace", "runs": 1, "iters": 100, "ns_per_op": 300}
  ]
}`), 0o644)
	if err := checkDoc(good, "BenchmarkPlaceUnplace"); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if err := checkDoc(good, "BenchmarkGone"); err == nil {
		t.Fatal("missing required benchmark accepted")
	}

	drift := filepath.Join(dir, "drift.json")
	os.WriteFile(drift, []byte(`{"generated": "2026-08-08T00:00:00Z", "go_version": "go1.24", "goos": "linux", "goarch": "amd64", "benchmarks": [], "surprise": 1}`), 0o644)
	if err := checkDoc(drift, ""); err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Fatalf("unknown field accepted: %v", err)
	}

	if err := checkDoc(filepath.Join(dir, "absent.json"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
}

// serviceDoc is a minimal valid BENCH_service.json.
const serviceDoc = `{
  "generated": "2026-08-08T00:00:00Z",
  "go_version": "go1.24",
  "goos": "linux",
  "goarch": "amd64",
  "corpus": 4,
  "replay": {"qps": 100, "requests": 50, "max_inflight": 64, "attempts": 1, "machine_refs": ["unified"], "seed": 1},
  "duration_s": 0.5,
  "sent": 50,
  "ok": 46,
  "rejected_429": 2,
  "deadline_504": 1,
  "errors": 1,
  "offered_qps": 100,
  "goodput_qps": 92,
  "latency": {"count": 50, "p50_ms": 1, "p90_ms": 2, "p99_ms": 4, "p999_ms": 4, "max_ms": 4},
  "cache": {"hits": 30, "misses": 20, "dedup_joins": 0, "compilations": 20, "evictions": 0, "hit_rate": 0.6}
}`

func TestCheckServiceDoc(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "BENCH_service.json")
	os.WriteFile(good, []byte(serviceDoc), 0o644)
	if err := checkServiceDoc(good); err != nil {
		t.Fatalf("valid service document rejected: %v", err)
	}

	// Broken accounting: sent != ok + 429 + 504 + errors.
	broken := filepath.Join(dir, "broken.json")
	os.WriteFile(broken, []byte(strings.Replace(serviceDoc, `"ok": 46`, `"ok": 40`, 1)), 0o644)
	if err := checkServiceDoc(broken); err == nil || !strings.Contains(err.Error(), "accounting") {
		t.Fatalf("broken accounting accepted: %v", err)
	}

	// Schema drift: unknown top-level field.
	drift := filepath.Join(dir, "drift.json")
	os.WriteFile(drift, []byte(strings.Replace(serviceDoc, `"corpus": 4`, `"corpus": 4, "surprise": 1`, 1)), 0o644)
	if err := checkServiceDoc(drift); err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Fatalf("unknown field accepted: %v", err)
	}

	if err := checkServiceDoc(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
