// Bus-limited scheduling walkthrough: the motivating scenario of the
// paper (§4-5).  A stencil with heavy internal traffic is scheduled on
// the 4-cluster machine with one slow bus three ways — single-pass BSA,
// the two-phase Nystrom & Eichenberger baseline, and BSA plus selective
// unrolling — showing how the bus becomes the bottleneck and how
// unrolling hides it.
//
// Run with:
//
//	go run ./examples/buslimited
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Two parallel 3-point stencil rows whose results combine into a 4-way
// partial-sum accumulator: 9 memory operations force ResMII=3 on the
// 4-cluster machine, so no single cluster can hold the body and the
// combining adds must pull values across the bus every iteration.  The
// accumulator distance (4) is a multiple of the cluster count, so after
// unrolling each copy recurses only with itself — the ideal case of
// §5.2 where iterations land on different clusters with almost no
// communication.
const stencil = `
loop smooth iters=400
l0 = load a0
l1 = load a1
l2 = load a2
l3 = load b0
l4 = load b1
l5 = load b2
s0 = fadd l0, l1
s1 = fadd s0, l2
w  = fmul s1, cw
t0 = fadd l3, l4
t1 = fadd t0, l5
v  = fmul t1, cv
x  = fadd w, v
acc = fadd acc@4, x    # 4-way partial-sum accumulator (distance 4)
store w
store v
store x
`

func main() {
	loop, err := ir.Parse(stencil)
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.FourCluster(1, 2) // one bus, two-cycle latency
	uni := machine.Unified()

	uniRes, err := core.Compile(loop.Graph, &uni, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unified machine:            II=%d  (lower bound for any clustered run)\n", uniRes.Schedule.II)

	bsa, err := core.Compile(loop.Graph, &cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSA, no unrolling:          II=%d  bus-limited=%v  comms=%d\n",
		bsa.Schedule.II, bsa.Schedule.BusLimited, bsa.Schedule.NumComms())

	ne, err := core.Compile(loop.Graph, &cfg, &core.Options{Scheduler: core.NystromEichenberger})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("N&E two-phase baseline:     II=%d  bus-limited=%v  comms=%d\n",
		ne.Schedule.II, ne.Schedule.BusLimited, ne.Schedule.NumComms())

	sel, err := core.Compile(loop.Graph, &cfg, &core.Options{Strategy: core.SelectiveUnroll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BSA + selective unrolling:  II=%d over %d iterations -> %.2f cycles/iteration\n",
		sel.Schedule.II, sel.Factor, sel.IterationII())
	fmt.Println("decision:", sel.Decision)

	fmt.Println()
	fmt.Println("Figure 6 estimate in detail:")
	u := cfg.NClusters
	fmt.Printf("  deps not multiple of %d:  %d\n", u, loop.Graph.DepsNotMultiple(u))
	fmt.Printf("  comneeded = %d * %d = %d\n", loop.Graph.DepsNotMultiple(u), u, loop.Graph.DepsNotMultiple(u)*u)
	unrolled := loop.Graph.Unroll(u)
	fmt.Printf("  unrolled MinII = %d, cycles needed on %d bus(es) at latency %d = %d\n",
		unrolled.MinII(&cfg), cfg.NBuses, cfg.BusLatency,
		(loop.Graph.DepsNotMultiple(u)*u+cfg.NBuses-1)/cfg.NBuses*cfg.BusLatency)
}
