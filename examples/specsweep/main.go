// Bus-bandwidth sweep on one synthetic SPECfp95 program — a Figure
// 4-style experiment at example scale.  For each bus count and latency,
// the whole benchmark is compiled for the 4-cluster machine with BSA and
// with the two-phase Nystrom & Eichenberger baseline, and the IPC
// relative to the unified machine is printed.
//
// Run with:
//
//	go run ./examples/specsweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	benchName := "su2cor"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	var bench *corpus.Benchmark
	for _, b := range corpus.SPECfp95() {
		if b.Name == benchName {
			bench = b
		}
	}
	if bench == nil {
		log.Fatalf("unknown benchmark %q", benchName)
	}

	uni := machine.Unified()
	base := benchIPC(bench, &uni, core.Options{})
	fmt.Printf("benchmark %s: %d loops, unified IPC %.3f\n\n", bench.Name, len(bench.Loops), base.IPC())

	t := report.New("relative IPC on the 4-cluster machine", "scheduler", "latency", "B=1", "B=2", "B=4")
	for _, sched := range []struct {
		name string
		s    core.Scheduler
	}{{"BSA", core.BSA}, {"N&E", core.NystromEichenberger}} {
		for _, lat := range []int{1, 2} {
			row := []any{sched.name, lat}
			for _, buses := range []int{1, 2, 4} {
				cfg := machine.FourCluster(buses, lat)
				acc := benchIPC(bench, &cfg, core.Options{Scheduler: sched.s})
				row = append(row, acc.Relative(base))
			}
			t.AddRow(row...)
		}
	}
	fmt.Println(t)
}

func benchIPC(b *corpus.Benchmark, cfg *machine.Config, opts core.Options) stats.Accum {
	var acc stats.Accum
	for _, l := range b.Loops {
		res, err := core.Compile(l.Graph, cfg, &opts)
		if err != nil {
			log.Fatalf("%s: %v", l.Graph.Name, err)
		}
		kIters := (l.Iters + res.Factor - 1) / res.Factor
		acc.Add(int64(l.Iters)*int64(l.Ops())*int64(l.Weight),
			int64(res.Schedule.Cycles(kIters))*int64(l.Weight))
	}
	return acc
}
