// Code-size study at example scale (the paper's Figure 10 concern):
// unrolling every loop multiplies the static code, which matters for
// embedded targets; selective unrolling keeps most of the IPC for a
// fraction of the growth.  One benchmark is compiled three ways for the
// 4-cluster machine and the emitted VLIW fields are counted.
//
// Run with:
//
//	go run ./examples/codesize [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emit"
	"repro/internal/machine"
	"repro/internal/report"
)

func main() {
	benchName := "applu"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	var bench *corpus.Benchmark
	for _, b := range corpus.SPECfp95() {
		if b.Name == benchName {
			bench = b
		}
	}
	if bench == nil {
		log.Fatalf("unknown benchmark %q", benchName)
	}

	cfg := machine.FourCluster(1, 2)
	t := report.New(fmt.Sprintf("code size of %s on %s", bench.Name, cfg.Name),
		"strategy", "instructions", "useful ops", "ops+NOPs", "NOP share", "cycles/iter")
	for _, strat := range []struct {
		name string
		s    core.Strategy
	}{
		{"no unrolling", core.NoUnroll},
		{"unroll all x4", core.UnrollAll},
		{"selective", core.SelectiveUnroll},
	} {
		var inst, useful, slots int
		var cycles, iters float64
		for _, l := range bench.Loops {
			res, err := core.Compile(l.Graph, &cfg, &core.Options{Strategy: strat.s, Factor: 4})
			if err != nil {
				// Unrolled body too large for the register files: ship the
				// non-unrolled loop, like the experiments harness does.
				res, err = core.Compile(l.Graph, &cfg, nil)
				if err != nil {
					log.Fatal(err)
				}
			}
			c := emit.Emit(res.Schedule).Count()
			inst += c.Instructions
			useful += c.UsefulOps
			slots += c.TotalSlots
			kIters := (l.Iters + res.Factor - 1) / res.Factor
			cycles += float64(res.Schedule.Cycles(kIters))
			iters += float64(l.Iters)
		}
		nopShare := 1 - float64(useful)/float64(slots)
		t.AddRow(strat.name, inst, useful, slots,
			fmt.Sprintf("%.0f%%", nopShare*100),
			fmt.Sprintf("%.2f", cycles/iters))
	}
	fmt.Println(t)
}
