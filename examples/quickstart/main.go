// Quickstart: compile one loop for a clustered VLIW machine and inspect
// everything the library produces — analysis, modulo schedule, emitted
// VLIW code and a simulated execution.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

// A dot product with a strided correction term: enough work to spread
// over clusters, one accumulator recurrence to constrain the II.
const src = `
loop dotc iters=200
x  = load a
y  = load b
p  = fmul x, y
z  = load c
q  = fmul z, p
s  = fadd s@1, q     # accumulator: s += ...
store p
`

func main() {
	loop, err := ir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's 4-cluster machine: 1 INT + 1 FP + 1 MEM unit and 16
	// registers per cluster, one shared bus with 1-cycle latency.
	cfg := machine.FourCluster(1, 1)
	fmt.Println("machine:", cfg)
	fmt.Printf("loop: %s (ResMII=%d, RecMII=%d)\n\n",
		loop.Graph, loop.Graph.ResMII(&cfg), loop.Graph.RecMII())

	// Compile with the paper's full pipeline: unified assign-and-schedule
	// plus selective unrolling.
	res, err := core.Compile(loop.Graph, &cfg, &core.Options{Strategy: core.SelectiveUnroll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selective unrolling:", res.Decision)
	fmt.Printf("II=%d (%.2f cycles per original iteration), SC=%d, %d bus transfers/kernel\n\n",
		res.Schedule.II, res.IterationII(), res.Schedule.SC(), res.Schedule.NumComms())

	fmt.Println(res.Schedule)
	fmt.Println(emit.Emit(res.Schedule))

	// Execute the schedule on the cycle-accurate simulator.
	kIters := (loop.Iters + res.Factor - 1) / res.Factor
	sim, err := vliwsim.Run(res.Schedule, kIters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d original iterations: %d cycles, IPC %.2f, register pressure %v\n",
		loop.Iters, sim.Cycles, sim.IPC, sim.MaxPressure)
}
