#!/bin/sh
# bench_sched.sh — run the scheduler benchmark suite and emit the
# BENCH_sched.json perf-trajectory artefact (plus BENCH_sched.txt, the
# raw `go test -bench` output, for benchstat).
#
# Environment:
#   COUNT      repetitions per benchmark (default 3; CI smoke uses 1)
#   BENCHTIME  passed to -benchtime when set (e.g. 100x for a smoke run)
#
# The checked-in scripts/bench_baseline_pr5.txt is the pre-bitset-MRT
# baseline of BenchmarkSchedule* (scripts/bench_baseline_pr3.txt keeps
# the older pre-incremental-pressure one); benchjson joins it so the
# JSON records the speedup ratios the PR is judged by.
set -e
cd "$(dirname "$0")/.."

COUNT="${COUNT:-3}"
BENCHTIME_FLAG=""
[ -n "${BENCHTIME}" ] && BENCHTIME_FLAG="-benchtime=${BENCHTIME}"

# Each run appends to the file directly (no pipeline: a `... | tee`
# would swallow a failing benchmark's exit status and let CI publish an
# incomplete artifact as success).
: > BENCH_sched.txt
go test -run '^$' -bench 'BenchmarkSchedule' -benchmem -count "${COUNT}" ${BENCHTIME_FLAG} . >> BENCH_sched.txt
go test -run '^$' -bench '.' -benchmem -count 1 ${BENCHTIME_FLAG} ./internal/sched ./internal/exact ./internal/regpress >> BENCH_sched.txt
cat BENCH_sched.txt

# -require makes a renamed or silently skipped benchmark a hard failure
# instead of an artefact that quietly stops tracking it.
REQUIRED="BenchmarkScheduleBSA4Cluster,BenchmarkScheduleBSAUnified,BenchmarkTryCommitAttempt/4-cluster/B1/L1,BenchmarkPlaceUnplace"
go run ./cmd/benchjson -baseline scripts/bench_baseline_pr5.txt -require "${REQUIRED}" < BENCH_sched.txt > BENCH_sched.json

# -check re-validates the emitted artefact against benchjson's own
# output schema (strict decode, metadata, every entry actually ran),
# so a truncated or hand-edited BENCH_sched.json can't ship.
go run ./cmd/benchjson -check BENCH_sched.json -require "${REQUIRED}"
echo "wrote BENCH_sched.json ($(wc -c < BENCH_sched.json) bytes)" >&2
