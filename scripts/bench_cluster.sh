#!/bin/sh
# bench_cluster.sh — the cluster-mode before/after artefact producer.
#
# Runs four legs of the same open-loop replay and gates them against
# each other with `benchjson -compare`:
#
#   1. single   one schedd, per-daemon cache budget          -> BENCH_service_single.json
#   2. cluster  3 schedd shards behind schedrouter, same
#               per-daemon budget, federated peer lookup     -> BENCH_service_cluster.json
#        gate: cluster goodput >= MIN_GOODPUT_RATIO x single, hit rate
#              up by MIN_HIT_DELTA, at identical offered QPS
#   3. cold     one schedd, unbounded cache, -snapshot set;
#               drain writes the snapshot                    -> BENCH_service_cold.json
#   4. warm     rebooted from that snapshot, identical replay-> BENCH_service_warm.json
#        gate: warm hit rate up by WARM_MIN_HIT_DELTA, warm p99 under
#              WARM_MAX_P99_RATIO x cold p99
#
# The corpus is sized so one daemon's LRU cannot hold the working set
# (it thrashes and recompiles) while three shards' aggregate budget
# can — the cluster's win is aggregate cache capacity converting
# ~35ms portfolio compiles into ~2ms cache hits, which holds on any
# core count.  Every replica gets the same per-daemon budget; the
# comparison is N equal nodes vs one.
#
# Environment knobs (defaults are the checked-in artefacts' values):
#   PORT_BASE   first port of the throwaway daemons (default 18300)
#   CORPUS      loops to synthesize          (default 360)
#   SEED        corpus seed                  (default 7)
#   QPS         offered rate, legs 1-2      (default 75)
#   REQUESTS    request count, legs 1-2     (default 1500)
#   WARM_QPS    offered rate, legs 3-4      (default 60)
#   WARM_REQUESTS request count, legs 3-4   (default 1200)
#   CACHE_BYTES per-daemon budget, legs 1-2 (default 4194304)
#   MIN_GOODPUT_RATIO / MIN_HIT_DELTA        cluster-vs-single gate (1.5 / 0.2)
#   WARM_MIN_HIT_DELTA / WARM_MAX_P99_RATIO  warm-vs-cold gate (0.15 / 0.5)
set -e
cd "$(dirname "$0")/.."

PORT_BASE="${PORT_BASE:-18300}"
CORPUS="${CORPUS:-360}"
SEED="${SEED:-7}"
QPS="${QPS:-75}"
REQUESTS="${REQUESTS:-1500}"
WARM_QPS="${WARM_QPS:-60}"
WARM_REQUESTS="${WARM_REQUESTS:-1200}"
CACHE_BYTES="${CACHE_BYTES:-4194304}"
MIN_GOODPUT_RATIO="${MIN_GOODPUT_RATIO:-1.5}"
MIN_HIT_DELTA="${MIN_HIT_DELTA:-0.2}"
WARM_MIN_HIT_DELTA="${WARM_MIN_HIT_DELTA:-0.15}"
WARM_MAX_P99_RATIO="${WARM_MAX_P99_RATIO:-0.5}"
MACHINES="${MACHINES:-4-cluster/B1/L1}"
STRATEGY="${STRATEGY:-portfolio}"

go build -o /tmp/schedd_cb ./cmd/schedd
go build -o /tmp/schedrouter_cb ./cmd/schedrouter
go build -o /tmp/loadgen_cb ./cmd/loadgen
go build -o /tmp/benchjson_cb ./cmd/benchjson

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
  for p in $PIDS; do kill "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# One corpus, streamed to disk, replayed identically by every leg.
/tmp/loadgen_cb gen -count "${CORPUS}" -seed "${SEED}" \
  -min-nodes 28 -max-nodes 48 -o "${WORK}/corpus.ndjson"

replay() { # replay <server> <qps> <requests> <out>
  /tmp/loadgen_cb replay \
    -server "$1" -wait-ready 60s -corpus "${WORK}/corpus.ndjson" \
    -qps "$2" -requests "$3" -inflight 64 \
    -strategy "${STRATEGY}" -machines "${MACHINES}" -o "$4"
}

# ---- Leg 1: single daemon, bounded cache -----------------------------
P0=$((PORT_BASE))
/tmp/schedd_cb -addr "127.0.0.1:${P0}" -cache-bytes "${CACHE_BYTES}" &
SINGLE_PID=$!; PIDS="$PIDS $SINGLE_PID"
replay "http://127.0.0.1:${P0}" "${QPS}" "${REQUESTS}" BENCH_service_single.json
kill -TERM "$SINGLE_PID"; wait "$SINGLE_PID" 2>/dev/null || true

# ---- Leg 2: 3 shards + router, same per-daemon budget ----------------
P1=$((PORT_BASE + 1)); P2=$((PORT_BASE + 2)); P3=$((PORT_BASE + 3)); PR=$((PORT_BASE + 9))
PEERS="http://127.0.0.1:${P1},http://127.0.0.1:${P2},http://127.0.0.1:${P3}"
REPLICA_PIDS=""
for p in "$P1" "$P2" "$P3"; do
  /tmp/schedd_cb -addr "127.0.0.1:${p}" -cache-bytes "${CACHE_BYTES}" \
    -peers "${PEERS}" -peer-self "http://127.0.0.1:${p}" &
  REPLICA_PIDS="$REPLICA_PIDS $!"; PIDS="$PIDS $!"
done
/tmp/schedrouter_cb -addr "127.0.0.1:${PR}" \
  -replicas "s1=http://127.0.0.1:${P1},s2=http://127.0.0.1:${P2},s3=http://127.0.0.1:${P3}" &
ROUTER_PID=$!; PIDS="$PIDS $ROUTER_PID"
replay "http://127.0.0.1:${PR}" "${QPS}" "${REQUESTS}" BENCH_service_cluster.json
for p in $ROUTER_PID $REPLICA_PIDS; do kill -TERM "$p" 2>/dev/null || true; done
for p in $ROUTER_PID $REPLICA_PIDS; do wait "$p" 2>/dev/null || true; done

# Gate: the cluster actually bought goodput and cache heat.
/tmp/benchjson_cb -compare -schema service \
  -old BENCH_service_single.json -new BENCH_service_cluster.json \
  -min-goodput-ratio "${MIN_GOODPUT_RATIO}" -min-hit-delta "${MIN_HIT_DELTA}"

# ---- Leg 3: cold start, snapshot written on drain --------------------
PC=$((PORT_BASE + 4))
SNAP="${WORK}/cache_snapshot.ndjson"
/tmp/schedd_cb -addr "127.0.0.1:${PC}" -cache-bytes 0 -snapshot "${SNAP}" &
COLD_PID=$!; PIDS="$PIDS $COLD_PID"
replay "http://127.0.0.1:${PC}" "${WARM_QPS}" "${WARM_REQUESTS}" BENCH_service_cold.json
kill -TERM "$COLD_PID"; wait "$COLD_PID" 2>/dev/null || true
test -s "${SNAP}" || { echo "bench_cluster: drain wrote no snapshot" >&2; exit 1; }

# ---- Leg 4: warm start from that snapshot, identical replay ----------
PW=$((PORT_BASE + 5))
/tmp/schedd_cb -addr "127.0.0.1:${PW}" -cache-bytes 0 -snapshot "${SNAP}" &
WARM_PID=$!; PIDS="$PIDS $WARM_PID"
replay "http://127.0.0.1:${PW}" "${WARM_QPS}" "${WARM_REQUESTS}" BENCH_service_warm.json
kill -TERM "$WARM_PID"; wait "$WARM_PID" 2>/dev/null || true

# Gate: the warm boot is strictly hotter and its tail collapses.
/tmp/benchjson_cb -compare -schema service \
  -old BENCH_service_cold.json -new BENCH_service_warm.json \
  -min-goodput-ratio 0.95 \
  -min-hit-delta "${WARM_MIN_HIT_DELTA}" -max-p99-ratio "${WARM_MAX_P99_RATIO}"

for f in BENCH_service_single.json BENCH_service_cluster.json \
         BENCH_service_cold.json BENCH_service_warm.json; do
  /tmp/benchjson_cb -check "$f" -schema service
done
echo "bench_cluster: wrote and gated 4 artefacts" >&2
