#!/bin/sh
# bench_service.sh — boot a clean schedd, drive it with the open-loop
# load harness, and emit the BENCH_service.json service-SLO artefact
# (latency percentiles, goodput, cache hit rate, admission/deadline
# counts), validated against the loadgen report schema before it ships.
#
# Environment:
#   ADDR      bind address for the throwaway daemon (default 127.0.0.1:18090)
#   QPS       offered arrival rate (default 200)
#   DURATION  run length, Go duration (default 5s; ignored if REQUESTS set)
#   REQUESTS  exact request count (default empty = QPS x DURATION)
#   INFLIGHT  client-side concurrency cap (default 64)
#   CORPUS    loops to synthesize (default 64)
#   SEED      corpus seed (default 1; same seed = byte-identical corpus)
#   BASELINE  previous BENCH_service.json to gate against (optional); the
#             new run must hold MIN_GOODPUT_RATIO (default 0.9) of the
#             baseline's goodput and stay under MAX_P99_RATIO (default
#             1.5) of its p99 at the same offered QPS
set -e
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:18090}"
QPS="${QPS:-200}"
DURATION="${DURATION:-5s}"
REQUESTS="${REQUESTS:-0}"
INFLIGHT="${INFLIGHT:-64}"
CORPUS="${CORPUS:-64}"
SEED="${SEED:-1}"

go build -o /tmp/schedd_bench ./cmd/schedd
go build -o /tmp/loadgen_bench ./cmd/loadgen

/tmp/schedd_bench -addr "${ADDR}" &
SCHEDD_PID=$!
trap 'kill "${SCHEDD_PID}" 2>/dev/null || true' EXIT INT TERM

# loadgen polls /readyz itself (-wait-ready), so no curl loop here.
/tmp/loadgen_bench replay \
  -server "http://${ADDR}" -wait-ready 30s \
  -count "${CORPUS}" -seed "${SEED}" -min-nodes 8 -max-nodes 48 \
  -recurrence 0.25 -extra-edges 0.5 -affinity 0.6 \
  -qps "${QPS}" -duration "${DURATION}" -requests "${REQUESTS}" \
  -inflight "${INFLIGHT}" -batch 4 -batch-frac 0.25 \
  -o BENCH_service.json

kill -TERM "${SCHEDD_PID}"
wait "${SCHEDD_PID}" 2>/dev/null || true
trap - EXIT INT TERM

# Strict-decode + invariant check of the artefact we just wrote, the
# same gate CI runs, so a truncated or hand-edited file can't ship.
go run ./cmd/benchjson -check BENCH_service.json -schema service

# Optional SLO trajectory gate: compare against a previous artefact so
# successive runs can't silently regress goodput or the p99 tail.
if [ -n "${BASELINE:-}" ]; then
  go run ./cmd/benchjson -compare -schema service \
    -old "${BASELINE}" -new BENCH_service.json \
    -min-goodput-ratio "${MIN_GOODPUT_RATIO:-0.9}" \
    -max-p99-ratio "${MAX_P99_RATIO:-1.5}"
fi
echo "wrote BENCH_service.json ($(wc -c < BENCH_service.json) bytes)" >&2
