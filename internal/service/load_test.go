package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machine"
)

// TestLoadExactlyOnceCompiles hammers /v1/compile from 64 concurrent
// clients whose requests heavily overlap (8 distinct loop/machine
// pairs, mixing loop_ref and structurally identical inline loops for
// the same key) and asserts the singleflight + fingerprint cache
// compiles each distinct request exactly once.
func TestLoadExactlyOnceCompiles(t *testing.T) {
	const (
		clients = 64
		perC    = 24
		keys    = 8
	)
	var mu sync.Mutex
	compiled := map[string]int{}
	s, ts := newTestServer(t, Config{
		Workers: 8,
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			mu.Lock()
			compiled[l.Graph.Name+"|"+cfg.Name]++
			mu.Unlock()
			time.Sleep(2 * time.Millisecond) // widen the in-flight window
			return core.Compile(l.Graph, cfg, &opts)
		},
	})

	refs := []string{"tomcatv.loop0", "swim.loop0", "mgrid.loop0", "hydro2d.loop0"}
	machines := []string{"unified", "2-cluster/B1/L1"}
	// bodies[k] is one distinct compilation; k = 8 combinations.
	var bodies []string
	for _, ref := range refs {
		for _, m := range machines {
			bodies = append(bodies,
				fmt.Sprintf(`{"v":1,"loop_ref":"%s","machine_ref":"%s"}`, ref, m))
		}
	}
	if len(bodies) != keys {
		t.Fatalf("have %d bodies, want %d", len(bodies), keys)
	}
	// Inline twin of bodies[0]: the same tomcatv.loop0 graph shipped by
	// value.  The content fingerprint must dedupe it onto the same cache
	// entry as the ref version.
	l0 := corpus.Index(corpus.SPECfp95())["tomcatv.loop0"]
	inline, err := (&compileBody{Loop: l0, MachineRef: "unified"}).json()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var errs atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				body := bodies[(c+i)%keys]
				if (c+i)%(2*keys) == 0 {
					body = inline
				}
				resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	if n := errs.Load(); n > 0 {
		t.Fatalf("%d of %d requests failed", n, clients*perC)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(compiled) != keys {
		t.Errorf("compiled %d distinct keys, want %d (inline twin must dedupe): %v",
			len(compiled), keys, compiled)
	}
	for key, n := range compiled {
		if n != 1 {
			t.Errorf("key %s compiled %d times, want exactly once", key, n)
		}
	}
	st := s.Pipeline().Stats()
	if st.Compilations != keys {
		t.Errorf("Stats.Compilations = %d, want %d", st.Compilations, keys)
	}
	if got := st.Hits + st.Misses + st.DedupJoins; got != clients*perC {
		t.Errorf("hits+misses+joins = %d, want %d requests", got, clients*perC)
	}
}

// compileBody builds an inline-loop request body.
type compileBody struct {
	Loop       *corpus.Loop
	MachineRef string
}

func (b *compileBody) json() (string, error) {
	type req struct {
		V          int          `json:"v"`
		Loop       *corpus.Loop `json:"loop"`
		MachineRef string       `json:"machine_ref"`
	}
	data, err := json.Marshal(req{V: 1, Loop: b.Loop, MachineRef: b.MachineRef})
	return string(data), err
}

// TestLoadShutdownMidFlight drains the server while 64 clients are
// mid-request: Shutdown must wait for admitted work, clients must see
// either a clean response or a connection error, and the race detector
// must stay quiet across the compile pipeline, admission gates and
// metrics.
func TestLoadShutdownMidFlight(t *testing.T) {
	s := New(Config{
		Workers: 4,
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			time.Sleep(time.Millisecond)
			return core.Compile(l.Graph, cfg, &opts)
		},
	})
	ts := httptest.NewServer(s.Handler())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 64; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"v":1,"loop_ref":"tomcatv.loop%d","machine_ref":"unified"}`, (c+i)%4)
				resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(body))
				if err != nil {
					return // listener gone: expected once shutdown starts
				}
				resp.Body.Close()
			}
		}(c)
	}

	time.Sleep(20 * time.Millisecond) // let the load build
	ts.Config.SetKeepAlivesEnabled(false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Errorf("shutdown did not drain: %v", err)
	}
	close(stop)
	wg.Wait()
	ts.Close()

	if got := s.m.inflight.Load(); got != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0", got)
	}
	if got := s.queued.Load(); got != 0 {
		t.Errorf("queued gauge = %d after drain, want 0", got)
	}
}
