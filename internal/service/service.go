// Package service is the compile-as-a-service layer: an HTTP daemon
// fronting pipeline.Pipeline with the versioned JSON wire format of
// internal/wire.  cmd/schedd is the thin binary around it.
//
// Endpoints:
//
//	POST /v1/compile   one compilation; wire.CompileRequest in,
//	                   wire.CompileResponse out
//	POST /v1/batch     many compilations; wire.BatchRequest in, NDJSON
//	                   stream of wire.BatchItem out, one line per
//	                   request in completion order
//	GET  /v1/stats     pipeline + service counters (wire.StatsResponse)
//	GET  /v1/capabilities  registered schedulers, unroll policies and
//	                   machine_ref names (wire.CapabilitiesResponse)
//	GET  /v1/cache/{key}  one completed cache entry as a snapshot row
//	                   (wire.CacheEntry), 404 cache_miss otherwise; the
//	                   peer-federation read used by cluster mode

//	GET  /healthz      liveness probe (always 200 while the process is up)
//	GET  /readyz       readiness probe (503 once draining begins)
//	GET  /debug/vars   expvar-style JSON metrics (requests, cache,
//	                   fallbacks, latency histogram)
//
// The service adds what the batch pipeline lacks for long-running use:
// a byte-bounded LRU over the compile cache (Config.CacheBytes), a
// per-request deadline (Config.DefaultTimeout, clamped client override
// via timeout_ms), admission control with bounded queueing — a request
// beyond MaxInflight waits in a queue of QueueDepth and is turned away
// with 429 once that overflows — and request-body size caps.  Graceful
// drain is the daemon's job: http.Server.Shutdown lets in-flight
// requests finish while the listener refuses new work.
//
// Error contract: every non-2xx response is a wire.ErrorResponse whose
// code is one of the wire.Code* constants.  Status mapping: malformed
// or invalid input 400, unknown loop_ref/machine_ref 404, oversized
// body 413, unschedulable loop 422, admission rejection 429, deadline
// 504.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Config tunes a Server.  The zero value serves with the defaults
// below.
type Config struct {
	// Workers sizes the pipeline's batch pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheBytes bounds the compile cache (pipeline.SetCacheBytes);
	// <= 0 means unbounded.
	CacheBytes int64
	// MaxInflight caps concurrently admitted compilations; <= 0 means
	// 2 x the pipeline's worker count.
	MaxInflight int
	// QueueDepth caps requests waiting for admission beyond MaxInflight;
	// the QueueDepth+1st waiter gets 429.  < 0 means no queue (reject as
	// soon as MaxInflight is busy); 0 means the default (64).
	QueueDepth int
	// DefaultTimeout bounds a request's wait on its compile when the
	// client sends no timeout_ms; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts; 0 means 2m.
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// Compile, when non-nil, replaces the pipeline's compile function
	// (tests inject delays, failures and invocation counters here).
	Compile pipeline.CompileFunc
	// Breaker tunes the per-engine quarantine circuit breaker; the
	// zero value uses the engine package's defaults (3 failures in 30s
	// opens, 10s cooldown).
	Breaker engine.BreakerConfig
	// Faults, when non-nil, runs the daemon in chaos mode: the
	// injector wraps the pipeline's compile function and the HTTP
	// handler, and its counters surface in /v1/stats.  Never set in
	// production; schedd only builds one under -faults.
	Faults *faults.Injector
}

// withDefaults resolves the zero values.
func (c Config) withDefaults(workers int) Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * workers
	}
	switch {
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	case c.QueueDepth == 0:
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the HTTP scheduling service.  Build one with New and mount
// Handler on an http.Server.
type Server struct {
	cfg  Config
	pipe *pipeline.Pipeline

	// loops indexes the generated corpus by graph name for loop_ref;
	// machines indexes the Table 1 configurations for machine_ref.  Both
	// are built once: ref resolution is on the per-request hot path.
	loops    map[string]*corpus.Loop
	machines map[string]machine.Config

	// sem holds one slot per admitted compilation; queued counts the
	// waiters beyond it (bounded by cfg.QueueDepth).
	sem    chan struct{}
	queued atomic.Int64

	// quar is the per-engine circuit breaker; draining flips at
	// BeginDrain and turns /readyz and new compile work away.
	quar     *engine.Quarantine
	draining atomic.Bool

	m metrics
}

// New builds a Server: pipeline, bounded cache, corpus index and
// admission gates.
func New(cfg Config) *Server {
	pipe := pipeline.New(cfg.Workers)
	cfg = cfg.withDefaults(pipe.Workers())
	if cfg.CacheBytes > 0 {
		pipe.SetCacheBytes(cfg.CacheBytes)
	}
	if cfg.Compile != nil {
		pipe.SetCompile(cfg.Compile)
	}
	// MaxInflight bounds running compiles even after their requesters'
	// deadlines expire: a 504'd request may leave its compile finishing
	// (it lands in the cache), but never an unbounded pile of them.
	pipe.SetMaxConcurrentCompiles(cfg.MaxInflight)
	machines := make(map[string]machine.Config)
	for _, c := range machine.Table1Configs() {
		machines[c.Name] = c
	}
	if cfg.Faults != nil {
		pipe.WrapCompile(cfg.Faults.WrapCompile)
		cfg.Faults.SetEvict(func() { pipe.Purge() })
	}
	return &Server{
		cfg:      cfg,
		pipe:     pipe,
		loops:    corpus.Index(corpus.SPECfp95()),
		machines: machines,
		sem:      make(chan struct{}, cfg.MaxInflight),
		quar:     engine.NewQuarantine(cfg.Breaker),
	}
}

// Pipeline exposes the underlying pipeline (stats, tests).
func (s *Server) Pipeline() *pipeline.Pipeline { return s.pipe }

// Quarantine exposes the engine circuit breakers (tests, probes).
func (s *Server) Quarantine() *engine.Quarantine { return s.quar }

// BeginDrain flips the server into drain mode: /readyz answers 503 so
// load balancers stop routing here, and new compile work is refused
// with the draining error while in-flight requests finish.  The daemon
// calls it on SIGTERM, before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Handler returns the service mux (wrapped in the fault-injection
// middleware when the server runs in chaos mode).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	mux.HandleFunc("GET /v1/cache/{key...}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	if s.cfg.Faults != nil {
		return s.cfg.Faults.Middleware(mux)
	}
	return mux
}

// requestCtx derives the compile deadline: the client's timeout_ms
// clamped to MaxTimeout, or the server default.
func (s *Server) requestCtx(parent context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(parent, d)
}

// errOverCapacity marks an admission rejection internally.
var errOverCapacity = errors.New("service: over capacity")

// admit claims a compile slot, queueing up to QueueDepth waiters; the
// caller must invoke the returned release.  It fails fast with
// errOverCapacity when the queue is full, or with the context error if
// the deadline lapses while queued.
func (s *Server) admit(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
			s.queued.Add(-1)
			return nil, errOverCapacity
		}
		defer s.queued.Add(-1)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.m.inflight.Add(1)
	return func() {
		s.m.inflight.Add(-1)
		<-s.sem
	}, nil
}

// resolve maps a wire request onto a pipeline request: loop by ref or
// inline, machine by ref or inline, options parsed and validated.
func (s *Server) resolve(req *wire.CompileRequest) (pipeline.Request, *wire.Error) {
	var out pipeline.Request

	switch {
	case req.LoopRef != "" && req.Loop != nil:
		return out, wire.Errorf(wire.CodeBadRequest, "loop and loop_ref are mutually exclusive")
	case req.LoopRef != "":
		l, ok := s.loops[req.LoopRef]
		if !ok {
			return out, wire.Errorf(wire.CodeUnknownLoop, "unknown loop_ref %q (corpus loops are named bench.loopN)", req.LoopRef)
		}
		out.Loop = l
	case req.Loop != nil:
		if werr := wire.CheckLoop(req.Loop); werr != nil {
			return out, werr
		}
		out.Loop = req.Loop
	default:
		return out, wire.Errorf(wire.CodeBadRequest, "one of loop or loop_ref required")
	}

	switch {
	case req.MachineRef != "" && req.Machine != nil:
		return out, wire.Errorf(wire.CodeBadRequest, "machine and machine_ref are mutually exclusive")
	case req.MachineRef != "":
		cfg, ok := s.machines[req.MachineRef]
		if !ok {
			return out, wire.Errorf(wire.CodeUnknownMachine, "unknown machine_ref %q (Table 1 names: unified, 2-cluster/B1/L1, ...)", req.MachineRef)
		}
		out.Cfg = cfg
	case req.Machine != nil:
		cfg, werr := req.Machine.Config()
		if werr != nil {
			return out, werr
		}
		out.Cfg = cfg
	default:
		return out, wire.Errorf(wire.CodeBadRequest, "one of machine or machine_ref required")
	}

	opts, werr := req.Options.Core()
	if werr != nil {
		return out, werr
	}
	out.Opts = opts

	// The per-knob caps compose: bound the graph the scheduler actually
	// sees (nodes x unroll factor) so a large-but-legal loop cannot be
	// multiplied into an hours-long compile that pins a slot.  The
	// registered policy itself reports its worst-case factor, so a
	// "sweep:16" request is bounded by 16 no matter what Factor says.
	if f := core.MaxUnrollFactor(&opts, &out.Cfg); f > 1 {
		if n := out.Loop.Graph.NumNodes() * f; n > wire.MaxWireUnrolledNodes {
			return out, wire.Errorf(wire.CodeInvalidOptions,
				"unrolled size %d nodes (%d x factor %d) over the %d cap",
				n, out.Loop.Graph.NumNodes(), f, wire.MaxWireUnrolledNodes)
		}
	}
	return out, nil
}

// compileOne runs one request through the version gate, resolution,
// admission, the deadline and the pipeline, mapping every failure to
// its wire error.  Both /v1/compile and each /v1/batch item funnel
// through here, so a batch item with a wrong version is rejected
// exactly like the same body posted alone.
func (s *Server) compileOne(ctx context.Context, req *wire.CompileRequest) (*wire.Result, *wire.Error) {
	if s.draining.Load() {
		werr := wire.Errorf(wire.CodeDraining, "daemon is draining for shutdown")
		werr.RetryAfterMS = drainRetryHint.Milliseconds()
		return nil, werr
	}
	if werr := wire.CheckVersion(req.V); werr != nil {
		return nil, werr
	}
	preq, werr := s.resolve(req)
	if werr != nil {
		return nil, werr
	}
	cctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()

	release, err := s.admit(cctx)
	if err != nil {
		if errors.Is(err, errOverCapacity) {
			s.m.rejected.Add(1)
			werr := wire.Errorf(wire.CodeOverCapacity, "compile queue full (%d in flight, %d queued)", s.cfg.MaxInflight, s.cfg.QueueDepth)
			werr.RetryAfterMS = s.rejectRetryHint().Milliseconds()
			return nil, werr
		}
		return nil, s.ctxError(err)
	}
	defer release()

	// Engine quarantine gate.  A quarantined engine refuses (with the
	// cooldown remaining as the retry hint) unless the request allows
	// degraded service, in which case the compile falls back to the
	// baseline (bsa, no_unroll); sustained queue pressure sheds
	// allow_degraded requests onto the same cheap path.
	eng := engine.CanonicalScheduler(preq.Opts.Scheduler.String())
	degradedReason := ""
	if ok, state, retry := s.quar.Admit(eng); !ok {
		if !req.AllowDegraded {
			s.m.quarantined.Add(1)
			werr := wire.Errorf(wire.CodeEngineQuarantined,
				"engine %q quarantined (%s); retry later or set allow_degraded", eng, state)
			werr.RetryAfterMS = max(retry.Milliseconds(), 1)
			return nil, werr
		}
		degradedReason = fmt.Sprintf("engine %s quarantined (%s)", eng, state)
	} else if req.AllowDegraded && s.shedding() {
		degradedReason = "load_shed"
	}
	runEng := eng
	if degradedReason != "" {
		preq.Opts = core.Options{} // bsa, no_unroll
		runEng = engine.CanonicalScheduler("")
		s.m.degraded.Add(1)
	}

	res, err := s.pipe.CompileCtx(cctx, preq)
	if err != nil {
		var perr *engine.PanicError
		if errors.As(err, &perr) {
			s.quar.ReportFailure(runEng, engine.FailPanic)
			s.m.panics.Add(1)
			return nil, wire.Errorf(wire.CodeEnginePanic, "%v", perr)
		}
		if cerr := cctx.Err(); cerr != nil {
			if errors.Is(cerr, context.DeadlineExceeded) {
				s.quar.ReportFailure(runEng, engine.FailTimeout)
			}
			return nil, s.ctxError(cerr)
		}
		// The engine completed, just without a schedule: deterministic
		// rejections are not engine sickness, so they count as breaker
		// successes (a half-open probe that answers is a healthy one).
		s.quar.ReportSuccess(runEng)
		// Typed engine rejections (an option the wire caps let through
		// but the engine boundary refuses) are client errors, not
		// unschedulable loops.
		var oerr *core.OptionsError
		if errors.As(err, &oerr) {
			return nil, wire.Errorf(wire.CodeInvalidOptions, "%v", err)
		}
		// Transient failures (fault injection, anything marked
		// engine.Transient) are retry-safe and must not read as the
		// deterministic "this loop cannot be scheduled" verdict.
		if engine.Transient(err) {
			return nil, wire.Errorf(wire.CodeInternal, "transient compile failure: %v", err)
		}
		return nil, wire.Errorf(wire.CodeUnschedulable, "%v", err)
	}
	s.quar.ReportSuccess(runEng)
	wres := wire.FromResult(res)
	if degradedReason != "" {
		wres.Degraded = true
		wres.DegradedReason = degradedReason
	}
	return wres, nil
}

// drainRetryHint is the Retry-After a draining daemon sends: a restart
// or a rebalance is seconds away, not minutes.
const drainRetryHint = 2 * time.Second

// rejectRetryHint derives the 429 Retry-After from queue occupancy: an
// empty queue suggests a blip, a full one sustained pressure.
func (s *Server) rejectRetryHint() time.Duration {
	hint := time.Second + time.Duration(s.queued.Load())*250*time.Millisecond
	return min(hint, 10*time.Second)
}

// shedding reports sustained admission-queue pressure (at least half
// the queue occupied), the point where allow_degraded requests are
// rerouted to the cheap baseline compile.
func (s *Server) shedding() bool {
	return s.cfg.QueueDepth > 0 && s.queued.Load()*2 >= int64(s.cfg.QueueDepth)
}

// ctxError maps a context failure to its wire error.
func (s *Server) ctxError(err error) *wire.Error {
	if errors.Is(err, context.DeadlineExceeded) {
		s.m.deadlines.Add(1)
		return wire.Errorf(wire.CodeDeadlineExceeded, "compile did not finish within the request deadline")
	}
	return wire.Errorf(wire.CodeBadRequest, "request canceled: %v", err)
}

// statusOf maps wire error codes to HTTP status.
func statusOf(werr *wire.Error) int { return wire.StatusOf(werr.Code) }

// writeJSON writes one JSON body with the given status.  HTML escaping
// is off: this is an API, and names like "sweep:<k>" must round-trip
// as spelled.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeError writes the wire error shape; a retry hint also goes out
// as a Retry-After header (whole seconds, rounded up) so plain HTTP
// clients and proxies can honour it without parsing the body.
func writeError(w http.ResponseWriter, werr *wire.Error) {
	if werr.RetryAfterMS > 0 {
		secs := (werr.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, statusOf(werr), wire.ErrorResponse{V: wire.Version, Error: werr})
}

// decodeBody strictly decodes a size-capped request body, mapping
// overflow to the 413 wire error.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *wire.Error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := wire.DecodeStrict(body, v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return wire.Errorf(wire.CodeBodyTooLarge, "request body over the %d byte limit", tooBig.Limit)
		}
		return wire.Errorf(wire.CodeBadRequest, "malformed request: %v", err)
	}
	return nil
}

// handleCompile serves POST /v1/compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.compile.Add(1)
	var req wire.CompileRequest
	if werr := s.decodeBody(w, r, &req); werr != nil {
		writeError(w, werr)
		return
	}
	res, werr := s.compileOne(r.Context(), &req)
	s.m.latency.observe(time.Since(start))
	if werr != nil {
		writeError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, wire.CompileResponse{V: wire.Version, Result: res})
}

// handleBatch serves POST /v1/batch: the whole request decodes up
// front, then one NDJSON line streams out per item as its compilation
// completes, so a client can consume early results while late ones are
// still scheduling.  Item failures (unknown refs, deadlines, admission
// rejections) ride in their line's error field; the stream itself is
// always 200 once the envelope parses.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.m.requests.batch.Add(1)
	var req wire.BatchRequest
	if werr := s.decodeBody(w, r, &req); werr != nil {
		writeError(w, werr)
		return
	}
	if werr := wire.CheckVersion(req.V); werr != nil {
		writeError(w, werr)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, wire.Errorf(wire.CodeBadRequest, "empty batch"))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Push the headers out before the first compile completes, so the
	// client sees the stream open immediately rather than blocking on
	// the slowest first item.
	if flusher != nil {
		flusher.Flush()
	}

	// Fan the items across a bounded worker pool no wider than the
	// admission gate, so one batch never trips its own items into
	// over_capacity: at most MaxInflight admits race at once and the
	// rest of the batch waits its turn in the workers, not the queue.
	workers := min(s.pipe.Workers(), s.cfg.MaxInflight)
	workers = max(1, min(workers, len(req.Requests)))
	idx := make(chan int)
	items := make(chan wire.BatchItem)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				item := wire.BatchItem{V: wire.Version, Index: i}
				res, werr := s.compileOne(r.Context(), &req.Requests[i])
				if werr != nil {
					item.Error = werr
				} else {
					item.Result = res
				}
				items <- item
			}
		}()
	}
	go func() {
		for i := range req.Requests {
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(items)
	}()
	// Per-line write deadline: a client that stops reading the stream
	// must not pin this handler (and graceful drain) forever; a blanket
	// server WriteTimeout would instead kill legitimate long batches.
	// A failed write means the client is gone (mid-stream disconnect):
	// stop writing — the request context is already cancelled, so the
	// remaining items fail fast — but keep draining the channel so the
	// workers exit and their admission slots come free.
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	clientGone := false
	for item := range items {
		if clientGone {
			continue
		}
		rc.SetWriteDeadline(time.Now().Add(streamWriteBudget))
		if err := enc.Encode(item); err != nil {
			clientGone = true
			s.m.disconnects.Add(1)
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.m.latency.observe(time.Since(start))
}

// streamWriteBudget bounds each NDJSON line's write+flush; generous for
// any live client, finite for a dead one.
const streamWriteBudget = 30 * time.Second

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.m.requests.stats.Add(1)
	writeJSON(w, http.StatusOK, wire.StatsResponse{
		V:        wire.Version,
		Pipeline: wire.FromPipelineStats(s.pipe.Stats()),
		Service:  s.serviceStats(),
	})
}

// handleCapabilities serves GET /v1/capabilities: what this daemon can
// compile — the engine registry's schedulers and unroll policies and
// the machine_ref names — so clients discover a newly registered
// policy without a wire-version bump.
func (s *Server) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	s.m.requests.capabilities.Add(1)
	machines := make([]string, 0, len(s.machines))
	for name := range s.machines {
		machines = append(machines, name)
	}
	sort.Strings(machines)
	var families []wire.StrategyFamily
	for _, f := range engine.StrategyFamilies() {
		families = append(families, wire.StrategyFamily{
			Prefix: f.Prefix, Placeholder: f.Placeholder, Doc: f.Doc,
		})
	}
	writeJSON(w, http.StatusOK, wire.CapabilitiesResponse{
		V:                wire.Version,
		Schedulers:       core.SchedulerNames(),
		Strategies:       core.StrategyNames(),
		StrategyFamilies: families,
		Features:         []string{"allow_degraded", "parallel_ii"},
		Quarantined:      s.quar.Quarantined(),
		Machines:         machines,
		Loops:            len(s.loops),
	})
}

// handleCacheGet serves GET /v1/cache/{key}: one completed cache
// entry in the snapshot row shape, or 404 cache_miss.  This is the
// peer half of cluster federation — a sibling daemon asks here before
// compiling a miss — so it reads the cache without compiling, without
// touching the hit/miss counters, and keeps answering while draining:
// a draining daemon's cache is exactly what its peers need to inherit.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	s.m.requests.cache.Add(1)
	key := r.PathValue("key")
	res, ok := s.pipe.Peek(key)
	if !ok {
		writeError(w, wire.Errorf(wire.CodeCacheMiss, "no completed entry for that key"))
		return
	}
	writeJSON(w, http.StatusOK, wire.FromCacheEntry(pipeline.CacheEntry{Key: key, Res: res}))
}

// serviceStats snapshots the daemon-side counters.
func (s *Server) serviceStats() wire.ServiceStats {
	st := wire.ServiceStats{
		Requests: map[string]int64{
			"compile":      s.m.requests.compile.Load(),
			"batch":        s.m.requests.batch.Load(),
			"stats":        s.m.requests.stats.Load(),
			"capabilities": s.m.requests.capabilities.Load(),
			"cache":        s.m.requests.cache.Load(),
		},
		Rejected:    s.m.rejected.Load(),
		Deadlines:   s.m.deadlines.Load(),
		InFlight:    s.m.inflight.Load(),
		Queued:      s.queued.Load(),
		LatencyMS:   s.m.latency.buckets(),
		Draining:    s.draining.Load(),
		Degraded:    s.m.degraded.Load(),
		Quarantined: s.m.quarantined.Load(),
		Engines:     wire.FromEngineHealth(s.quar.Snapshot()),
	}
	if s.cfg.Faults != nil {
		st.Faults = s.cfg.Faults.Counts()
	}
	return st
}

// handleHealthz serves GET /healthz: pure liveness — the process is
// up and serving, draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz serves GET /readyz: readiness flips to 503 the moment
// the daemon begins draining, so load balancers stop routing new work
// here while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.FormatInt(int64(drainRetryHint/time.Second), 10))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleVars serves GET /debug/vars in expvar's flat-JSON style.  The
// vars are per-server (not the process-global expvar registry) so
// several Servers — e.g. under test — never collide.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	ps := s.pipe.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"schedd.requests":      s.serviceStats().Requests,
		"schedd.rejected":      s.m.rejected.Load(),
		"schedd.deadlines":     s.m.deadlines.Load(),
		"schedd.inflight":      s.m.inflight.Load(),
		"schedd.cache.hits":    ps.Hits,
		"schedd.cache.misses":  ps.Misses,
		"schedd.cache.joins":   ps.DedupJoins,
		"schedd.cache.bytes":   ps.CachedBytes,
		"schedd.cache.entries": ps.CachedEntries,
		"schedd.evictions":     ps.Evictions,
		"schedd.fallbacks":     ps.Fallbacks,
		"schedd.compilations":  ps.Compilations,
		"schedd.panics":        ps.Panics,
		"schedd.quarantined":   s.m.quarantined.Load(),
		"schedd.degraded":      s.m.degraded.Load(),
		"schedd.disconnects":   s.m.disconnects.Load(),
		"schedd.latency_ms":    s.m.latency.buckets(),
	})
}
