package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/wire"
)

// ddgSample is the inline-loop workload of the handler tests.
func ddgSample() *ddg.Graph { return ddg.SampleDotProduct() }

// newTestServer boots a Server on httptest with small limits.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns the response.
func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// wantError asserts the response carries the wire error shape with the
// given status and code, and returns the error.
func wantError(t *testing.T, resp *http.Response, status int, code string) *wire.Error {
	t.Helper()
	if resp.StatusCode != status {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	var er wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("non-JSON error body: %v", err)
	}
	if er.V != wire.Version {
		t.Errorf("error response v = %d, want %d", er.V, wire.Version)
	}
	if er.Error == nil || er.Error.Code != code {
		t.Fatalf("error = %+v, want code %s", er.Error, code)
	}
	if er.Error.Message == "" {
		t.Error("error has no message")
	}
	return er.Error
}

// wantResult asserts a 200 CompileResponse and returns the result.
func wantResult(t *testing.T, resp *http.Response) *wire.Result {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 200 (body %s)", resp.StatusCode, body)
	}
	var cr wire.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.V != wire.Version || cr.Result == nil {
		t.Fatalf("response = %+v, want v%d with a result", cr, wire.Version)
	}
	return cr.Result
}

// TestCompileByRef is the happy path: corpus loop, Table 1 machine.
func TestCompileByRef(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"4-cluster/B1/L1"}`)
	res := wantResult(t, resp)
	if res.II < res.MinII || res.MinII < 1 {
		t.Errorf("II %d / MinII %d out of order", res.II, res.MinII)
	}
	l := corpus.Index(corpus.SPECfp95())["tomcatv.loop0"]
	if len(res.Placements) != l.Graph.NumNodes() {
		t.Errorf("%d placements for %d nodes", len(res.Placements), l.Graph.NumNodes())
	}
	for _, ml := range res.MaxLive {
		if ml > machine.FourCluster(1, 1).RegsPerCluster {
			t.Errorf("max_live %v exceeds the register file", res.MaxLive)
		}
	}
}

// TestCompileInline posts a full inline loop and machine and checks
// options routing (exact scheduler → proof metadata on the wire).
func TestCompileInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	loop, err := json.Marshal(&corpus.Loop{Graph: ddgSample(), Bench: "inline"})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"v":1,"loop":%s,"machine":{"clusters":2,"fus":[2,2,2],"regs":32,"buses":1,"bus_latency":1},"options":{"scheduler":"exact"}}`, loop)
	res := wantResult(t, post(t, ts.URL+"/v1/compile", body))
	if res.Exact == nil {
		t.Error("exact scheduler returned no proof metadata")
	}
	if res.II < res.MinII {
		t.Errorf("II %d below MinII %d", res.II, res.MinII)
	}
}

// TestCompileMalformedJSON asserts 400 + bad_request for junk bodies.
func TestCompileMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{`, `[]`, `{"v":1,"loop_ref":}`, `{"v":1,"bogus_field":true}`,
	} {
		wantError(t, post(t, ts.URL+"/v1/compile", body), http.StatusBadRequest, wire.CodeBadRequest)
	}
}

// TestCompileVersion asserts the version gate on both endpoints.
func TestCompileVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantError(t, post(t, ts.URL+"/v1/compile", `{"loop_ref":"tomcatv.loop0","machine_ref":"unified"}`),
		http.StatusBadRequest, wire.CodeBadRequest)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":9,"loop_ref":"tomcatv.loop0","machine_ref":"unified"}`),
		http.StatusBadRequest, wire.CodeUnsupportedVersion)
	wantError(t, post(t, ts.URL+"/v1/batch", `{"v":9,"requests":[]}`),
		http.StatusBadRequest, wire.CodeUnsupportedVersion)
}

// TestCompileUnknownRefs asserts 404 + specific codes for unknown loop
// and machine references.
func TestCompileUnknownRefs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"nothere.loop9","machine_ref":"unified"}`),
		http.StatusNotFound, wire.CodeUnknownLoop)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"9-cluster"}`),
		http.StatusNotFound, wire.CodeUnknownMachine)
}

// TestCompileUnknownEnums asserts 400 + specific codes for bad
// scheduler / strategy / policy names.
func TestCompileUnknownEnums(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := `{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified","options":%s}`
	wantError(t, post(t, ts.URL+"/v1/compile", fmt.Sprintf(base, `{"scheduler":"magic"}`)),
		http.StatusBadRequest, wire.CodeUnknownScheduler)
	wantError(t, post(t, ts.URL+"/v1/compile", fmt.Sprintf(base, `{"strategy":"sometimes"}`)),
		http.StatusBadRequest, wire.CodeUnknownStrategy)
	wantError(t, post(t, ts.URL+"/v1/compile", fmt.Sprintf(base, `{"policy":"vibes"}`)),
		http.StatusBadRequest, wire.CodeUnknownPolicy)
}

// TestCompileInvalidInline asserts invalid inline loops and machines
// are rejected with their codes.
func TestCompileInvalidInline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop":{"graph":{"name":"g","nodes":[],"edges":[]}},"machine_ref":"unified"}`),
		http.StatusBadRequest, wire.CodeInvalidLoop)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"tomcatv.loop0","machine":{"clusters":2,"fus":[2,2,2],"regs":32}}`),
		http.StatusBadRequest, wire.CodeInvalidMachine)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"machine_ref":"unified"}`),
		http.StatusBadRequest, wire.CodeBadRequest)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"tomcatv.loop0"}`),
		http.StatusBadRequest, wire.CodeBadRequest)
	wantError(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"a","loop":{"graph":{"name":"g","nodes":[],"edges":[]}},"machine_ref":"unified"}`),
		http.StatusBadRequest, wire.CodeBadRequest)
}

// TestCompileOversizeBody asserts 413 + body_too_large at the cap.
func TestCompileOversizeBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	big := fmt.Sprintf(`{"v":1,"loop_ref":"%s","machine_ref":"unified"}`, strings.Repeat("x", 4096))
	wantError(t, post(t, ts.URL+"/v1/compile", big),
		http.StatusRequestEntityTooLarge, wire.CodeBodyTooLarge)
}

// TestCompileDeadlineExceeded injects a slow compile and asserts 504 +
// deadline_exceeded, and that the deadline counter ticks.
func TestCompileDeadlineExceeded(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			time.Sleep(300 * time.Millisecond)
			return &core.Result{Factor: 1}, nil
		},
	})
	start := time.Now()
	wantError(t, post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified","timeout_ms":20}`),
		http.StatusGatewayTimeout, wire.CodeDeadlineExceeded)
	if took := time.Since(start); took > 200*time.Millisecond {
		t.Errorf("deadline response took %v, want ~20ms", took)
	}
	if st := s.serviceStats(); st.Deadlines != 1 {
		t.Errorf("Deadlines = %d, want 1", st.Deadlines)
	}
}

// TestCompileUnschedulable asserts a compile failure surfaces as 422.
func TestCompileUnschedulable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One cluster, one FU of each class, one register: MaxLive cannot fit.
	body := `{"v":1,"loop_ref":"fpppp.loop0","machine":{"clusters":1,"fus":[1,1,1],"regs":1}}`
	wantError(t, post(t, ts.URL+"/v1/compile", body),
		http.StatusUnprocessableEntity, wire.CodeUnschedulable)
}

// TestCompileOverCapacity saturates admission (1 in flight, no queue)
// and asserts the second request gets 429 while the first completes.
func TestCompileOverCapacity(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		MaxInflight: 1,
		QueueDepth:  -1, // no queue: reject as soon as the slot is busy
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			<-release
			return core.Compile(l.Graph, cfg, &opts)
		},
	})
	first := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json",
			strings.NewReader(`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified"}`))
		if err != nil {
			t.Error(err)
			close(first)
			return
		}
		first <- resp
	}()
	// Wait until the first request holds the slot.
	for i := 0; i < 200 && s.m.inflight.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	wantError(t, post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"swim.loop0","machine_ref":"unified"}`),
		http.StatusTooManyRequests, wire.CodeOverCapacity)
	close(release)
	if resp := <-first; resp != nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first request: status %d, want 200", resp.StatusCode)
		}
	}
	if st := s.serviceStats(); st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
}

// TestBatchStreamsNDJSON drives /v1/batch with a mix of good and bad
// items and checks the stream: one line per request, completion order,
// per-item errors in the wire shape, every index answered exactly once.
func TestBatchStreamsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"v":1,"requests":[
		{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified"},
		{"v":1,"loop_ref":"missing.loop0","machine_ref":"unified"},
		{"v":1,"loop_ref":"swim.loop0","machine_ref":"2-cluster/B1/L1","options":{"strategy":"unroll_all"}}
	]}`
	resp := post(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	seen := map[int]wire.BatchItem{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item wire.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if item.V != wire.Version {
			t.Errorf("item v = %d, want %d", item.V, wire.Version)
		}
		if _, dup := seen[item.Index]; dup {
			t.Errorf("index %d answered twice", item.Index)
		}
		seen[item.Index] = item
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("got %d items, want 3", len(seen))
	}
	for _, i := range []int{0, 2} {
		if seen[i].Result == nil || seen[i].Error != nil {
			t.Errorf("item %d: want a result, got %+v", i, seen[i])
		}
	}
	if seen[1].Error == nil || seen[1].Error.Code != wire.CodeUnknownLoop {
		t.Errorf("item 1: want %s, got %+v", wire.CodeUnknownLoop, seen[1])
	}
	if seen[2].Result.Decision == nil {
		t.Error("unroll_all item lost its decision")
	}
}

// TestBatchWiderThanAdmission asserts one batch never trips its own
// items into over_capacity: with two admission slots and no queue, a
// 30-item batch must still answer every index with a result, because
// the handler's worker pool is no wider than the gate.
func TestBatchWiderThanAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 2, QueueDepth: -1})
	var sb strings.Builder
	sb.WriteString(`{"v":1,"requests":[`)
	refs := []string{"tomcatv", "swim", "mgrid", "hydro2d", "applu"}
	for i := 0; i < 30; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"v":1,"loop_ref":"%s.loop%d","machine_ref":"unified"}`, refs[i%len(refs)], i%3)
	}
	sb.WriteString(`]}`)
	resp := post(t, ts.URL+"/v1/batch", sb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var item wire.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if item.Error != nil {
			t.Errorf("item %d: %v", item.Index, item.Error)
		}
		n++
	}
	if n != 30 {
		t.Errorf("got %d items, want 30", n)
	}
}

// TestBatchItemVersionChecked asserts each batch item passes the same
// version gate as /v1/compile: a wrong or missing inner "v" becomes a
// per-item wire error, not a silent compile.
func TestBatchItemVersionChecked(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"v":1,"requests":[
		{"v":99,"loop_ref":"tomcatv.loop0","machine_ref":"unified"},
		{"loop_ref":"tomcatv.loop0","machine_ref":"unified"},
		{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified"}
	]}`
	resp := post(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	seen := map[int]wire.BatchItem{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item wire.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		seen[item.Index] = item
	}
	if seen[0].Error == nil || seen[0].Error.Code != wire.CodeUnsupportedVersion {
		t.Errorf("item 0 (v:99) = %+v, want %s", seen[0], wire.CodeUnsupportedVersion)
	}
	if seen[1].Error == nil || seen[1].Error.Code != wire.CodeBadRequest {
		t.Errorf("item 1 (no v) = %+v, want %s", seen[1], wire.CodeBadRequest)
	}
	if seen[2].Result == nil {
		t.Errorf("item 2 (v:1) = %+v, want a result", seen[2])
	}
}

// TestCompileRejectsHugeOptions asserts the wire-boundary resource
// caps reach the endpoint: a request that would size gigabyte tables
// is a 400, never a compile.
func TestCompileRejectsHugeOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantError(t, post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified","options":{"force_ii":1000000000}}`),
		http.StatusBadRequest, wire.CodeInvalidOptions)
	wantError(t, post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified","options":{"strategy":"unroll_all","factor":100000000}}`),
		http.StatusBadRequest, wire.CodeInvalidOptions)
	// Per-knob-legal values whose product would still explode the graph:
	// an inline loop under the node cap times the max factor crosses the
	// unrolled-size cap and must die in resolution, not the scheduler.
	g := ddg.New("wide")
	prev := g.AddNode("n0", machine.OpIAdd)
	for i := 1; i < wire.MaxWireUnrolledNodes/wire.MaxWireFactor+1; i++ {
		n := g.AddNode(fmt.Sprintf("n%d", i), machine.OpIAdd)
		g.AddTrueDep(prev.ID, n.ID, 0)
		prev = n
	}
	loop, err := json.Marshal(&corpus.Loop{Graph: g, Bench: "inline"})
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, post(t, ts.URL+"/v1/compile",
		fmt.Sprintf(`{"v":1,"loop":%s,"machine_ref":"unified","options":{"strategy":"unroll_all","factor":%d}}`, loop, wire.MaxWireFactor)),
		http.StatusBadRequest, wire.CodeInvalidOptions)
}

// TestBatchRejectsEmpty asserts an empty batch is a 400.
func TestBatchRejectsEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantError(t, post(t, ts.URL+"/v1/batch", `{"v":1,"requests":[]}`),
		http.StatusBadRequest, wire.CodeBadRequest)
}

// TestStatsEndpoint checks /v1/stats reflects pipeline activity: a
// repeated compile must show up as a hit, and the request counters and
// histogram must tick.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"v":1,"loop_ref":"hydro2d.loop0","machine_ref":"unified"}`
	wantResult(t, post(t, ts.URL+"/v1/compile", body))
	wantResult(t, post(t, ts.URL+"/v1/compile", body))

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.V != wire.Version {
		t.Errorf("v = %d", st.V)
	}
	if st.Pipeline.Misses != 1 || st.Pipeline.Hits != 1 {
		t.Errorf("pipeline stats = %+v, want 1 miss / 1 hit", st.Pipeline)
	}
	if st.Pipeline.HitRate != 0.5 {
		t.Errorf("hit_rate = %v, want 0.5 after 1 hit / 1 miss", st.Pipeline.HitRate)
	}
	if st.Pipeline.CachedBytes <= 0 || st.Pipeline.CachedEntries != 1 {
		t.Errorf("cache accounting = %d bytes / %d entries", st.Pipeline.CachedBytes, st.Pipeline.CachedEntries)
	}
	if st.Service.Requests["compile"] != 2 {
		t.Errorf("compile requests = %d, want 2", st.Service.Requests["compile"])
	}
	// Cumulative "le" buckets: monotone, with +Inf equal to the total.
	hist := st.Service.LatencyMS
	if len(hist) == 0 {
		t.Fatal("no latency buckets")
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Count < hist[i-1].Count {
			t.Errorf("bucket %d not cumulative: %d after %d", i, hist[i].Count, hist[i-1].Count)
		}
	}
	if last := hist[len(hist)-1]; last.Le >= 0 || last.Count != 2 {
		t.Errorf("+Inf bucket = %+v, want le<0 with count 2", last)
	}
}

// TestStatsEmptyRun pins the zero-denominator guard: a daemon that has
// served no traffic must still answer /v1/stats with valid JSON and a
// zero hit rate — an unguarded 0/0 would produce NaN, which
// json.Marshal refuses to encode, turning the stats endpoint into a
// 500 on every freshly booted server.
func TestStatsEmptyRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-run /v1/stats status = %d, want 200", resp.StatusCode)
	}
	var st wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("empty-run stats not valid JSON: %v", err)
	}
	if st.Pipeline.HitRate != 0 {
		t.Errorf("empty-run hit_rate = %v, want 0", st.Pipeline.HitRate)
	}
	if st.Pipeline.Hits != 0 || st.Pipeline.Misses != 0 {
		t.Errorf("empty-run pipeline counters not zero: %+v", st.Pipeline)
	}
}

// TestStatsRejectsPost asserts the method gate (GET-only routes).
func TestStatsRejectsPost(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/stats", `{}`)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats = %d, want 405", resp.StatusCode)
	}
}

// TestHealthz checks the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, []byte("ok\n")) {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestDebugVars checks the metrics dump carries the advertised keys.
func TestDebugVars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wantResult(t, post(t, ts.URL+"/v1/compile", `{"v":1,"loop_ref":"mgrid.loop0","machine_ref":"unified"}`))
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schedd.requests", "schedd.cache.hits", "schedd.cache.misses",
		"schedd.fallbacks", "schedd.latency_ms", "schedd.evictions",
	} {
		if _, ok := vars[key]; !ok {
			t.Errorf("debug vars missing %q", key)
		}
	}
}

// TestCacheBoundedByConfig wires CacheBytes through the service and
// checks the pipeline evicts under a stream of distinct requests.
func TestCacheBoundedByConfig(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: 32 << 10})
	refs := []string{
		"tomcatv.loop0", "tomcatv.loop1", "swim.loop0", "swim.loop1",
		"mgrid.loop0", "hydro2d.loop0", "applu.loop0", "wave5.loop0",
		"fpppp.loop0", "su2cor.loop0", "turb3d.loop0", "apsi.loop0",
	}
	for _, ref := range refs {
		for _, m := range []string{"unified", "2-cluster/B1/L1", "4-cluster/B1/L1"} {
			body := fmt.Sprintf(`{"v":1,"loop_ref":"%s","machine_ref":"%s"}`, ref, m)
			wantResult(t, post(t, ts.URL+"/v1/compile", body))
		}
	}
	st := s.Pipeline().Stats()
	if st.CachedBytes > 32<<10 {
		t.Errorf("CachedBytes = %d over the configured 32KiB budget", st.CachedBytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite the tiny budget")
	}
}

// TestCapabilities pins GET /v1/capabilities: the engine registry's
// schedulers and strategies (families as placeholders) and the
// machine_ref names, so a client can discover a newly registered
// policy without a version bump.
func TestCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var caps wire.CapabilitiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		t.Fatal(err)
	}
	if caps.V != wire.Version {
		t.Errorf("v = %d, want %d", caps.V, wire.Version)
	}
	has := func(list []string, want string) bool {
		for _, s := range list {
			if s == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"bsa", "ne", "exact"} {
		if !has(caps.Schedulers, want) {
			t.Errorf("schedulers %v missing %q", caps.Schedulers, want)
		}
	}
	for _, want := range []string{"no_unroll", "unroll_all", "selective", "portfolio", "sweep:<k>"} {
		if !has(caps.Strategies, want) {
			t.Errorf("strategies %v missing %q", caps.Strategies, want)
		}
	}
	if !has(caps.Machines, "4-cluster/B1/L1") || !has(caps.Machines, "unified") {
		t.Errorf("machines %v missing Table 1 names", caps.Machines)
	}
	if len(caps.StrategyFamilies) == 0 || caps.StrategyFamilies[0].Prefix != "sweep" {
		t.Errorf("strategy families = %+v", caps.StrategyFamilies)
	}
	if !has(caps.Features, "parallel_ii") {
		t.Errorf("features %v missing \"parallel_ii\" — clients discover the knob here", caps.Features)
	}
	if caps.Loops < 1 {
		t.Errorf("loops = %d", caps.Loops)
	}
	if !sort.StringsAreSorted(caps.Schedulers) || !sort.StringsAreSorted(caps.Machines) {
		t.Error("capability lists are not sorted")
	}
}

// TestCompilePortfolioOverHTTP is the acceptance check for the
// pluggable engine: a registry policy (portfolio) selected purely by
// wire name, served with winner and stage telemetry.
func TestCompilePortfolioOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"4-cluster/B1/L1","options":{"strategy":"portfolio"}}`)
	res := wantResult(t, resp)
	if res.Policy == "" {
		t.Error("result has no policy")
	}
	if res.Stages == nil {
		t.Fatal("result has no stages block")
	}
	if res.Stages.Policy != "portfolio" || res.Stages.Winner == "" {
		t.Errorf("stages = policy %q winner %q", res.Stages.Policy, res.Stages.Winner)
	}
	if len(res.Stages.Stages) != 4 {
		t.Errorf("stage set has %d entries, want 4", len(res.Stages.Stages))
	}
	if len(res.Stages.Candidates) == 0 {
		t.Error("portfolio served no candidate outcomes")
	}

	// And a parameterised family member by name.
	resp = post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"swim.loop0","machine_ref":"2-cluster/B1/L1","options":{"strategy":"sweep:2"}}`)
	res = wantResult(t, resp)
	if res.Stages == nil || res.Stages.Policy != "sweep:2" {
		t.Fatalf("sweep stages = %+v", res.Stages)
	}
}

// TestCompileEngineOptionsError: an option combination the wire caps
// allow but the engine boundary rejects (exact budget on a heuristic
// scheduler) maps to invalid_options, not unschedulable.
func TestCompileEngineOptionsError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/compile",
		`{"v":1,"loop_ref":"tomcatv.loop0","machine_ref":"unified","options":{"exact":{"max_nodes":8}}}`)
	wantError(t, resp, http.StatusBadRequest, wire.CodeInvalidOptions)
}

// TestSweepBoundedByPolicyFactor: the unrolled-size admission cap uses
// the registered policy's own worst-case factor, so a sweep over a
// large inline loop is rejected up front rather than compiled for
// hours.
func TestSweepBoundedByPolicyFactor(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A legal inline loop big enough that nodes x 16 passes the wire's
	// per-knob caps but breaks the composed unrolled-size cap.
	g := ddg.SampleChain(600)
	loop, err := json.Marshal(&corpus.Loop{Graph: g, Bench: "big"})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"v":1,"loop":%s,"machine_ref":"2-cluster/B1/L1","options":{"strategy":"sweep:16"}}`, loop)
	resp := post(t, ts.URL+"/v1/compile", body)
	werr := wantError(t, resp, http.StatusBadRequest, wire.CodeInvalidOptions)
	if !strings.Contains(werr.Message, "unrolled size") {
		t.Errorf("unexpected message: %s", werr.Message)
	}
}
