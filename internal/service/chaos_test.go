// Chaos suite: a live server under deterministic fault injection,
// driven through the resilient client.  The invariants: the daemon
// never crashes, every injected panic surfaces as a typed wire error,
// the quarantine breaker opens / half-opens / closes as configured,
// results stay exactly-once per request, and nothing leaks goroutines
// or admission slots.  Run it like the rest of the package tests —
// `go test ./internal/service -race` — no external daemon needed.

package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/wire"
)

// chaosClock is a mutex-guarded manual clock for breaker tests that
// cross goroutines (HTTP handlers read it concurrently).
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// waitGoroutinesBelow polls until the goroutine count drops to at most
// limit (detached fills and batch workers need a moment to drain).
func waitGoroutinesBelow(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines stuck at %d (want <= %d):\n%s",
		runtime.NumGoroutine(), limit, buf[:runtime.Stack(buf, true)])
}

// TestChaosBatchExactlyOnce is the headline chaos run: 64 corpus
// compilations through a server injecting panics, transient errors,
// latency spikes and cache-evict churn, driven by the retrying client.
// Every request must settle exactly once with a result, the daemon
// must keep serving, and the injected panics must all have surfaced as
// typed errors rather than lost connections.
func TestChaosBatchExactlyOnce(t *testing.T) {
	baseline := runtime.NumGoroutine()
	inj, err := faults.Parse("seed=1,panic=0.3,error=0.3,latency=0.2:2ms,evict=0.3")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 4, Faults: inj})

	refs := make([]string, 0, 64)
	for name := range corpus.Index(corpus.SPECfp95()) {
		refs = append(refs, name)
		if len(refs) == 64 {
			break
		}
	}
	reqs := make([]wire.CompileRequest, 64)
	for i := range reqs {
		reqs[i] = wire.CompileRequest{
			V:             wire.Version,
			LoopRef:       refs[i%len(refs)],
			MachineRef:    "unified",
			AllowDegraded: true, // ride through quarantine windows
		}
	}
	c, err := client.New(client.Config{
		Endpoints:   []string{ts.URL},
		Attempts:    10,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	items, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}

	seen := make([]int, len(reqs))
	for _, it := range items {
		seen[it.Index]++
		if it.Result == nil {
			t.Errorf("item %d settled without a result: %+v", it.Index, it.Error)
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("index %d settled %d times, want exactly once", i, n)
		}
	}

	// The daemon is alive and its books balance: every injected panic
	// is accounted in the pipeline's panic counter (typed errors, not
	// dropped connections), and the fault counters surface in stats.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v %v", resp, err)
	}
	resp.Body.Close()
	st := s.Pipeline().Stats()
	counts := inj.Counts()
	if counts["panic"] == 0 {
		t.Fatal("chaos run injected no panics; the test exercised nothing")
	}
	if st.Panics != counts["panic"] {
		t.Errorf("pipeline absorbed %d panics, injector fired %d", st.Panics, counts["panic"])
	}
	var sr wire.StatsResponse
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Service.Faults["panic"] != counts["panic"] {
		t.Errorf("stats faults = %v, want panic=%d", sr.Service.Faults, counts["panic"])
	}
	if sr.Pipeline.Panics != st.Panics {
		t.Errorf("wire pipeline panics = %d, internal %d", sr.Pipeline.Panics, st.Panics)
	}

	waitGoroutinesBelow(t, baseline+8)
}

// TestPanicBecomesTypedWireError: a panicking compile answers with the
// engine_panic code and a 500 — never a dropped connection.
func TestPanicBecomesTypedWireError(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			panic("chaos compile boom")
		},
	})
	resp := post(t, ts.URL+"/v1/compile", chaosBody("", 0))
	werr := wantError(t, resp, http.StatusInternalServerError, wire.CodeEnginePanic)
	if !strings.Contains(werr.Message, "chaos compile boom") {
		t.Errorf("panic message lost: %q", werr.Message)
	}
}

// chaosBody builds a minimal inline-loop compile request; scheduler
// may pick a non-default engine, n perturbs the graph name so requests
// miss the cache when needed.
func chaosBody(scheduler string, n int) string {
	g := ddgSample()
	g.Name = fmt.Sprintf("%s-chaos%d", g.Name, n)
	loop := corpus.Loop{Graph: g, Iters: 16, Weight: 1, Bench: "chaos"}
	lb, _ := json.Marshal(&loop)
	opts := ""
	if scheduler != "" {
		opts = fmt.Sprintf(`, "options": {"scheduler": %q}`, scheduler)
	}
	return fmt.Sprintf(`{"v": 1, "loop": %s, "machine": {"clusters": 1, "fus": [2,2,1], "regs": 32}%s}`, lb, opts)
}

// TestQuarantineLifecycleOverHTTP drives the breaker through its whole
// life on a live server with a manual clock: threshold panics open it
// (503 + Retry-After), the cooldown half-opens it, a successful probe
// closes it.
func TestQuarantineLifecycleOverHTTP(t *testing.T) {
	clk := &chaosClock{t: time.Unix(1000, 0)}
	var healthy atomic.Bool
	var n atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			if !healthy.Load() {
				panic("engine down")
			}
			return core.Compile(l.Graph, cfg, &o)
		},
		Breaker: engine.BreakerConfig{
			Threshold: 3,
			Window:    time.Minute,
			Cooldown:  10 * time.Second,
			Now:       clk.now,
		},
	})

	// Three panics in the window: breaker opens.
	for i := 0; i < 3; i++ {
		resp := post(t, ts.URL+"/v1/compile", chaosBody("", int(n.Add(1))))
		wantError(t, resp, http.StatusInternalServerError, wire.CodeEnginePanic)
	}
	resp := post(t, ts.URL+"/v1/compile", chaosBody("", int(n.Add(1))))
	werr := wantError(t, resp, http.StatusServiceUnavailable, wire.CodeEngineQuarantined)
	if werr.RetryAfterMS <= 0 {
		t.Errorf("quarantined error carries no retry hint: %+v", werr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 has no Retry-After header")
	}

	// The quarantined engine shows in capabilities and stats.
	var caps wire.CapabilitiesResponse
	r2, err := http.Get(ts.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r2.Body).Decode(&caps)
	r2.Body.Close()
	if len(caps.Quarantined) != 1 || caps.Quarantined[0] != "bsa" {
		t.Errorf("capabilities quarantined = %v, want [bsa]", caps.Quarantined)
	}
	var sr wire.StatsResponse
	r3, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r3.Body).Decode(&sr)
	r3.Body.Close()
	if len(sr.Service.Engines) != 1 || sr.Service.Engines[0].State != "open" ||
		sr.Service.Engines[0].Panics != 3 {
		t.Errorf("stats engines = %+v, want bsa open with 3 panics", sr.Service.Engines)
	}

	// Cooldown elapses, the engine recovers: the next request is the
	// half-open probe, it succeeds, and the breaker closes for good.
	clk.advance(11 * time.Second)
	healthy.Store(true)
	resp = post(t, ts.URL+"/v1/compile", chaosBody("", int(n.Add(1))))
	wantResult(t, resp)
	resp = post(t, ts.URL+"/v1/compile", chaosBody("", int(n.Add(1))))
	wantResult(t, resp)
	if q := s.Quarantine().Quarantined(); len(q) != 0 {
		t.Errorf("still quarantined after successful probe: %v", q)
	}
}

// TestQuarantinedEngineDegradesWhenAllowed: with allow_degraded the
// request falls back to the baseline compile instead of a 503, and the
// result says so.
func TestQuarantinedEngineDegradesWhenAllowed(t *testing.T) {
	clk := &chaosClock{t: time.Unix(1000, 0)}
	var n atomic.Int64
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			if o.Scheduler.String() == "ne" {
				panic("ne is sick")
			}
			return core.Compile(l.Graph, cfg, &o)
		},
		Breaker: engine.BreakerConfig{Threshold: 2, Window: time.Minute, Cooldown: 10 * time.Second, Now: clk.now},
	})

	for i := 0; i < 2; i++ {
		resp := post(t, ts.URL+"/v1/compile", chaosBody("ne", int(n.Add(1))))
		wantError(t, resp, http.StatusInternalServerError, wire.CodeEnginePanic)
	}
	// Quarantined without the flag...
	resp := post(t, ts.URL+"/v1/compile", chaosBody("ne", int(n.Add(1))))
	wantError(t, resp, http.StatusServiceUnavailable, wire.CodeEngineQuarantined)

	// ...but degradable with it.
	body := chaosBody("ne", int(n.Add(1)))
	body = strings.Replace(body, `{"v": 1`, `{"v": 1, "allow_degraded": true`, 1)
	resp = post(t, ts.URL+"/v1/compile", body)
	res := wantResult(t, resp)
	if !res.Degraded || !strings.Contains(res.DegradedReason, "quarantined") {
		t.Errorf("degraded=%v reason=%q, want degraded with a quarantine reason", res.Degraded, res.DegradedReason)
	}
}

// TestRetryAfterOn429: admission rejections carry a Retry-After hint
// in both the header and the wire error.
func TestRetryAfterOn429(t *testing.T) {
	release := make(chan struct{})
	var entered sync.Once
	enteredC := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:     1,
		MaxInflight: 1,
		QueueDepth:  -1, // no queue: reject as soon as the slot is busy
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			entered.Do(func() { close(enteredC) })
			<-release
			return core.Compile(l.Graph, cfg, &o)
		},
	})

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(chaosBody("", 1)))
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-enteredC

	resp := post(t, ts.URL+"/v1/compile", chaosBody("", 2))
	werr := wantError(t, resp, http.StatusTooManyRequests, wire.CodeOverCapacity)
	if werr.RetryAfterMS <= 0 {
		t.Errorf("429 carries no retry_after_ms: %+v", werr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 has no Retry-After header")
	}
	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestReadyzDrain: /readyz flips to 503 at BeginDrain while in-flight
// requests finish and /healthz stays green; new compile work is turned
// away with the draining code.
func TestReadyzDrain(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			once.Do(func() { close(entered) })
			<-release
			return core.Compile(l.Graph, cfg, &o)
		},
	})

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d", got)
	}

	// An in-flight compile spans the drain flip.
	type outcome struct {
		status int
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(chaosBody("", 1)))
		o := outcome{err: err}
		if err == nil {
			o.status = resp.StatusCode
			resp.Body.Close()
		}
		done <- o
	}()
	<-entered

	s.BeginDrain()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness is not readiness)", got)
	}
	resp := post(t, ts.URL+"/v1/compile", chaosBody("", 2))
	werr := wantError(t, resp, http.StatusServiceUnavailable, wire.CodeDraining)
	if werr.RetryAfterMS <= 0 {
		t.Errorf("draining error carries no retry hint: %+v", werr)
	}

	// The in-flight request still completes: drain refuses new work,
	// it does not abort old work.
	close(release)
	o := <-done
	if o.err != nil || o.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status=%d err=%v", o.status, o.err)
	}
}

// TestBatchClientDisconnectFreesSlots: a batch client that vanishes
// mid-stream must not leak its admission slots or its worker
// goroutines — the compiles wind down and a fresh request is served
// immediately.
func TestBatchClientDisconnectFreesSlots(t *testing.T) {
	baseline := runtime.NumGoroutine()
	release := make(chan struct{})
	var slow atomic.Bool
	slow.Store(true)
	s, ts := newTestServer(t, Config{
		Workers:     2,
		MaxInflight: 2,
		Compile: func(l *corpus.Loop, cfg *machine.Config, o core.Options) (*core.Result, error) {
			if slow.Load() {
				select {
				case <-release:
				case <-time.After(10 * time.Second):
				}
			}
			return core.Compile(l.Graph, cfg, &o)
		},
	})

	var sb strings.Builder
	sb.WriteString(`{"v": 1, "requests": [`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(chaosBody("", 100+i))
	}
	sb.WriteString(`]}`)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	// Wait until both slots are held by gated compiles, then vanish.
	for d := time.Now().Add(5 * time.Second); time.Now().Before(d); {
		if s.serviceStats().InFlight >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	resp.Body.Close()

	// Unblock the compiles; the handler notices the dead client, the
	// workers drain, the slots come free.
	slow.Store(false)
	close(release)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && s.serviceStats().InFlight > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.serviceStats().InFlight; got != 0 {
		t.Fatalf("in-flight stuck at %d after client disconnect", got)
	}

	// Both slots are usable again.
	resp2 := post(t, ts.URL+"/v1/compile", chaosBody("", 999))
	wantResult(t, resp2)
	waitGoroutinesBelow(t, baseline+8)
}
