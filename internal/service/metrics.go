// Daemon-side metrics: lock-free counters and a fixed-bucket latency
// histogram.  Deliberately per-Server rather than the process-global
// expvar registry, so multiple Servers (tests, embedding) never fight
// over names; /debug/vars renders them in expvar's flat-JSON style.

package service

import (
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// metrics is the counter block of one Server.
type metrics struct {
	requests struct {
		compile      atomic.Int64
		batch        atomic.Int64
		stats        atomic.Int64
		capabilities atomic.Int64
		cache        atomic.Int64
	}
	rejected  atomic.Int64
	deadlines atomic.Int64
	inflight  atomic.Int64
	// panics counts compiles answered with engine_panic; quarantined
	// counts refusals of quarantined engines; degraded counts compiles
	// rerouted to the baseline under allow_degraded; disconnects counts
	// batch streams whose client vanished mid-stream.
	panics      atomic.Int64
	quarantined atomic.Int64
	degraded    atomic.Int64
	disconnects atomic.Int64
	latency     histogram
}

// latencyBucketsMS are the cumulative upper bounds (milliseconds) of
// the request-latency histogram; the implicit final bucket is +Inf.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// histogram counts observations per cumulative latency bucket.
type histogram struct {
	counts [len(latencyBucketsMS) + 1]atomic.Int64
}

// observe records one request duration.  It runs once per request on
// the hot path, so the bucket is found by binary search rather than a
// linear scan of the bounds.
func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.counts[bucketIndex(ms)].Add(1)
}

// bucketIndex returns the histogram slot for a latency: the first
// bucket whose upper bound is >= ms (cumulative "le" semantics, so a
// value exactly on a boundary lands in that boundary's bucket), or the
// final +Inf slot when ms exceeds every bound.
func bucketIndex(ms float64) int {
	lo, hi := 0, len(latencyBucketsMS)
	for lo < hi {
		mid := (lo + hi) / 2
		if ms <= latencyBucketsMS[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// buckets snapshots the histogram in the wire shape: cumulative "le"
// semantics (bucket i counts every request that finished within its
// bound, Prometheus style; le < 0 is +Inf and equals the total), built
// by prefix-summing the per-bucket counters.
func (h *histogram) buckets() []wire.HistogramBucket {
	out := make([]wire.HistogramBucket, 0, len(h.counts))
	var cum int64
	for i, le := range latencyBucketsMS {
		cum += h.counts[i].Load()
		out = append(out, wire.HistogramBucket{Le: le, Count: cum})
	}
	cum += h.counts[len(latencyBucketsMS)].Load()
	out = append(out, wire.HistogramBucket{Le: -1, Count: cum})
	return out
}
