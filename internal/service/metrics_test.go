package service

import (
	"math"
	"testing"
	"time"
)

// TestBucketIndexMatchesLinearScan checks the binary search against the
// reference linear scan for every boundary, both sides of every
// boundary, and the +Inf overflow slot.
func TestBucketIndexMatchesLinearScan(t *testing.T) {
	linear := func(ms float64) int {
		for i, le := range latencyBucketsMS {
			if ms <= le {
				return i
			}
		}
		return len(latencyBucketsMS)
	}
	probes := []float64{0, 0.5, math.SmallestNonzeroFloat64}
	for _, le := range latencyBucketsMS {
		probes = append(probes, le-0.001, le, le+0.001)
	}
	probes = append(probes, 1e6, math.MaxFloat64)
	for _, ms := range probes {
		if got, want := bucketIndex(ms), linear(ms); got != want {
			t.Errorf("bucketIndex(%v) = %d, want %d (le=%v)", ms, got, want, latencyBucketsMS[min(want, len(latencyBucketsMS)-1)])
		}
	}
}

// TestObserveExactBoundary pins the cumulative "le" contract: an
// observation exactly on a bucket's upper bound counts in that bucket,
// and anything beyond the last bound lands in +Inf.
func TestObserveExactBoundary(t *testing.T) {
	var h histogram
	h.observe(5 * time.Millisecond)   // == le 5 boundary: bucket index 2
	h.observe(31 * time.Second)       // past the last bound: +Inf slot
	h.observe(500 * time.Microsecond) // 0.5ms: first bucket

	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("5ms boundary observation: bucket[2] = %d, want 1", got)
	}
	if got := h.counts[3].Load(); got != 0 {
		t.Errorf("5ms boundary leaked into bucket[3]: %d", got)
	}
	if got := h.counts[len(latencyBucketsMS)].Load(); got != 1 {
		t.Errorf("+Inf slot = %d, want 1", got)
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("0.5ms observation: bucket[0] = %d, want 1", got)
	}

	// And the wire snapshot keeps the cumulative semantics: the +Inf
	// bucket equals the total observation count.
	bs := h.buckets()
	if last := bs[len(bs)-1]; last.Le >= 0 || last.Count != 3 {
		t.Errorf("final bucket = {%v %d}, want {+Inf 3}", last.Le, last.Count)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Count < bs[i-1].Count {
			t.Errorf("cumulative counts not monotone at %d: %d < %d", i, bs[i].Count, bs[i-1].Count)
		}
	}
}
