package pipeline

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sched"
)

// testLoops builds a handful of distinct loops around the shared sample
// graphs.
func testLoops(n int) []*corpus.Loop {
	makers := []func() *ddg.Graph{
		ddg.SampleStencil, ddg.SampleDotProduct, ddg.SampleFigure7,
		func() *ddg.Graph { return ddg.SampleChain(5) },
		func() *ddg.Graph { return ddg.SampleIndependent(6) },
	}
	var loops []*corpus.Loop
	for i := 0; i < n; i++ {
		g := makers[i%len(makers)]()
		g.Name = fmt.Sprintf("%s#%d", g.Name, i)
		loops = append(loops, &corpus.Loop{Graph: g, Iters: 16, Weight: 1, Bench: "test"})
	}
	return loops
}

// TestExactlyOnceUnderContention hammers a small overlapping key set
// from 32 goroutines and asserts each key is compiled exactly once,
// with every other request accounted as a hit or a dedup join.
func TestExactlyOnceUnderContention(t *testing.T) {
	const (
		goroutines = 32
		perG       = 64
		keys       = 8
	)
	loops := testLoops(keys)

	p := New(4)
	var mu sync.Mutex
	compiled := map[string]int{}
	p.compile = func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		mu.Lock()
		compiled[l.Graph.Name]++
		mu.Unlock()
		time.Sleep(time.Millisecond) // widen the in-flight window
		return &core.Result{Factor: 1}, nil
	}

	cfg := machine.TwoCluster(1, 1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := Request{Loop: loops[(g+i)%keys], Cfg: cfg}
				if _, err := p.Compile(req); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for name, n := range compiled {
		if n != 1 {
			t.Errorf("loop %s compiled %d times, want exactly once", name, n)
		}
	}
	if len(compiled) != keys {
		t.Errorf("compiled %d distinct keys, want %d", len(compiled), keys)
	}
	st := p.Stats()
	if st.Compilations != keys || st.Misses != keys {
		t.Errorf("stats report %d compilations / %d misses, want %d", st.Compilations, st.Misses, keys)
	}
	if total := st.Hits + st.Misses + st.DedupJoins; total != goroutines*perG {
		t.Errorf("hits+misses+joins = %d, want %d requests", total, goroutines*perG)
	}
	if p.Len() != keys {
		t.Errorf("cache holds %d entries, want %d", p.Len(), keys)
	}
}

// TestBatchPreservesOrder checks CompileBatch writes each response into
// its request's slot regardless of completion order.
func TestBatchPreservesOrder(t *testing.T) {
	loops := testLoops(24)
	p := New(8)
	p.compile = func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		time.Sleep(time.Duration(len(l.Graph.Name)%5) * time.Millisecond)
		return &core.Result{Factor: l.Graph.NumNodes()}, nil
	}
	cfg := machine.FourCluster(1, 1)
	var reqs []Request
	for _, l := range loops {
		reqs = append(reqs, Request{Loop: l, Cfg: cfg})
	}
	resps := p.CompileBatch(reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
		if want := reqs[i].Loop.Graph.NumNodes(); r.Result.Factor != want {
			t.Errorf("slot %d: result for a different request (factor %d, want %d)",
				i, r.Result.Factor, want)
		}
	}
	if st := p.Stats(); st.WallTime <= 0 {
		t.Error("batch recorded no wall time")
	}
}

// TestBatchReportsErrorsPerSlot checks one failing compilation does not
// poison the rest of the batch.
func TestBatchReportsErrorsPerSlot(t *testing.T) {
	loops := testLoops(6)
	boom := errors.New("boom")
	p := New(3)
	p.compile = func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		if l == loops[2] {
			return nil, boom
		}
		return &core.Result{Factor: 1}, nil
	}
	cfg := machine.TwoCluster(1, 1)
	var reqs []Request
	for _, l := range loops {
		reqs = append(reqs, Request{Loop: l, Cfg: cfg})
	}
	resps := p.CompileBatch(reqs)
	for i, r := range resps {
		if i == 2 {
			if !errors.Is(r.Err, boom) {
				t.Errorf("slot 2: err = %v, want boom", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("slot %d: unexpected error %v", i, r.Err)
		}
	}
}

// TestRealCompileCacheIdentity drives the default CompileFunc end to
// end: the second identical request must return the same *core.Result.
func TestRealCompileCacheIdentity(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleStencil(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(2)
	cfg := machine.FourCluster(2, 1)
	req := Request{Loop: l, Cfg: cfg, Opts: core.Options{Strategy: core.SelectiveUnroll}}
	a, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical request")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.CompileTime <= 0 {
		t.Error("no compile time recorded")
	}
}

// TestUnrollFallback checks the default CompileFunc falls back to
// NoUnroll when unconditional unrolling cannot be scheduled, matching
// what the serial experiments cache did.
func TestUnrollFallback(t *testing.T) {
	// A big unroll factor on the register-starved, slow-bus 4-cluster
	// machine cannot be scheduled; the fallback must hand back factor 1.
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(1)
	cfg := machine.FourCluster(1, 4)
	res, err := p.Compile(Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: core.UnrollAll, Factor: 16}})
	if err != nil {
		t.Fatalf("fallback did not rescue the unschedulable unroll: %v", err)
	}
	if res.Factor != 1 {
		t.Errorf("factor = %d, want the NoUnroll fallback (1)", res.Factor)
	}
}

// TestUnrollFallbackIsVisible is the regression test for the invisible
// fallback: a Figure 8/10 row built from this result must be able to
// tell it is looking at a non-unrolled schedule.  The result carries
// the marker and the reason, Stats counts it, and the cached entry
// keeps all of it without double counting.
func TestUnrollFallbackIsVisible(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(1)
	cfg := machine.FourCluster(1, 4)
	req := Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: core.UnrollAll, Factor: 16}}

	res, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Error("fallback result not marked FellBack")
	}
	if res.Decision.FailReason == "" {
		t.Error("fallback result has no Decision.FailReason")
	}
	if !strings.Contains(res.Decision.String(), "fell back") {
		t.Errorf("Decision.String() = %q does not surface the fallback", res.Decision)
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Errorf("Stats.Fallbacks = %d, want 1", st.Fallbacks)
	}
	if !strings.Contains(p.Stats().String(), "1 unroll fallbacks") {
		t.Errorf("Stats.String() = %q does not report fallbacks", p.Stats())
	}

	// The cache hit returns the same marked result and counts nothing new.
	res2, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("cache miss for identical fallback request")
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Errorf("Stats.Fallbacks after cache hit = %d, want still 1", st.Fallbacks)
	}

	// A compile that does not fall back must not be counted.
	if _, err := p.Compile(Request{Loop: l, Cfg: cfg, Opts: core.Options{}}); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Fallbacks != 1 {
		t.Errorf("Stats.Fallbacks after clean compile = %d, want 1", st.Fallbacks)
	}
}

// TestUncacheableRequestsBypass checks per-run slices (explicit order,
// fixed assignment) are never cached: they have no stable key.
func TestUncacheableRequestsBypass(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleChain(4), Iters: 8, Weight: 1, Bench: "test"}
	p := New(1)
	cfg := machine.TwoCluster(1, 1)
	req := Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Sched: sched.Options{Order: order.Topological(l.Graph)}}}
	if _, err := p.Compile(req); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(req); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Compilations != 2 {
		t.Errorf("uncacheable request compiled %d times over 2 calls, want 2", st.Compilations)
	}
	if p.Len() != 0 {
		t.Errorf("uncacheable request left %d cache entries", p.Len())
	}
}

// TestErrorsAreCached checks a deterministic failure is cached like a
// success: the second request must not recompile.
func TestErrorsAreCached(t *testing.T) {
	l := testLoops(1)[0]
	p := New(1)
	calls := 0
	p.compile = func(*corpus.Loop, *machine.Config, core.Options) (*core.Result, error) {
		calls++
		return nil, errors.New("deterministic failure")
	}
	cfg := machine.TwoCluster(1, 1)
	req := Request{Loop: l, Cfg: cfg}
	if _, err := p.Compile(req); err == nil {
		t.Fatal("want error")
	}
	if _, err := p.Compile(req); err == nil {
		t.Fatal("want cached error")
	}
	if calls != 1 {
		t.Errorf("compile ran %d times, want 1", calls)
	}
}

// TestKeySeparatesConfigsAndOptions checks distinct machines or options
// never alias in the cache even when names collide.
func TestKeySeparatesConfigsAndOptions(t *testing.T) {
	l := testLoops(1)[0]
	a := machine.TwoCluster(1, 1)
	b := machine.TwoCluster(1, 1)
	b.Name = a.Name // same label...
	b.NBuses = 2    // ...different machine
	c := machine.TwoCluster(1, 1)
	c.FUsPerCluster = [machine.NumFUClasses]int{3, 2, 1} // different FU mix, same label
	h := machine.TwoCluster(1, 1)
	h.Hetero = [][machine.NumFUClasses]int{{2, 2, 2}, {1, 1, 1}}
	reqs := []Request{
		{Loop: l, Cfg: a},
		{Loop: l, Cfg: b},
		{Loop: l, Cfg: c},
		{Loop: l, Cfg: h},
		{Loop: l, Cfg: a, Opts: core.Options{Strategy: core.SelectiveUnroll}},
		{Loop: l, Cfg: a, Opts: core.Options{Scheduler: core.NystromEichenberger}},
		{Loop: l, Cfg: a, Opts: core.Options{Sched: sched.Options{MaxII: 9}}},
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		k := r.key()
		if seen[k] {
			t.Errorf("key collision: %s", k)
		}
		seen[k] = true
	}
}

// TestKeySeparatesDistinctGraphsWithSameName checks two different
// graphs sharing Bench and Name never alias in the cache: the key is
// anchored on graph identity.
func TestKeySeparatesDistinctGraphsWithSameName(t *testing.T) {
	g1, g2 := ddg.SampleChain(3), ddg.SampleChain(4)
	g2.Name = g1.Name
	l1 := &corpus.Loop{Graph: g1, Iters: 8, Weight: 1, Bench: "b"}
	l2 := &corpus.Loop{Graph: g2, Iters: 8, Weight: 1, Bench: "b"}
	p := New(1)
	cfg := machine.TwoCluster(1, 1)
	r1, err := p.Compile(Request{Loop: l1, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Compile(Request{Loop: l2, Cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Fatal("distinct graphs with the same name aliased in the cache")
	}
	if r1.Schedule.Graph != g1 || r2.Schedule.Graph != g2 {
		t.Error("results wired to the wrong graphs")
	}
}

// TestKeyCanonicalizesRegisteredNames checks the cache is keyed on
// canonical registered names: the zero value, the canonical spelling
// and every alias share one entry, so the same compilation is never
// paid for twice because two callers spelled the strategy differently.
func TestKeyCanonicalizesRegisteredNames(t *testing.T) {
	l := testLoops(1)[0]
	cfg := machine.TwoCluster(1, 1)
	aliases := [][2]core.Options{
		{{}, {Scheduler: core.BSA, Strategy: core.NoUnroll}},
		{{Strategy: "none"}, {Strategy: core.NoUnroll}},
		{{Strategy: "all"}, {Strategy: core.UnrollAll}},
		{{Scheduler: "nystrom-eichenberger"}, {Scheduler: core.NystromEichenberger}},
	}
	for _, pair := range aliases {
		a := Request{Loop: l, Cfg: cfg, Opts: pair[0]}
		b := Request{Loop: l, Cfg: cfg, Opts: pair[1]}
		if a.key() != b.key() {
			t.Errorf("alias %+v and canonical %+v key differently:\n%s\n%s",
				pair[0], pair[1], a.key(), b.key())
		}
	}
	// And genuinely different strategies still separate.
	a := Request{Loop: l, Cfg: cfg, Opts: core.Options{Strategy: "sweep:2"}}
	b := Request{Loop: l, Cfg: cfg, Opts: core.Options{Strategy: "sweep:3"}}
	if a.key() == b.key() {
		t.Error("sweep:2 and sweep:3 share a cache key")
	}
}

// TestFallbackEmitsStageTelemetry pins the satellite invariant on the
// fourth compile path: a result produced by the UnrollAll→NoUnroll
// fallback still carries the canonical stage set (from the fallback's
// own Compile) alongside FellBack.
func TestFallbackEmitsStageTelemetry(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(1)
	cfg := machine.FourCluster(1, 4)
	res, err := p.Compile(Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: core.UnrollAll, Factor: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Fatal("fixture compilation no longer falls back")
	}
	tel := res.Stages
	if tel == nil {
		t.Fatal("fallback result has no stage telemetry")
	}
	want := []string{"analyze", "unroll", "schedule", "validate"}
	if len(tel.Stages) != len(want) {
		t.Fatalf("stage count %d, want %d", len(tel.Stages), len(want))
	}
	var sum int64
	for i, s := range tel.Stages {
		if string(s.Name) != want[i] {
			t.Errorf("stage[%d] = %s, want %s", i, s.Name, want[i])
		}
		sum += int64(s.Duration)
	}
	if sum > int64(tel.Total) {
		t.Errorf("stage sum %d over total %d", sum, int64(tel.Total))
	}
	if res.Policy != string(core.NoUnroll) {
		t.Errorf("fallback policy = %q, want no_unroll", res.Policy)
	}
}

// TestPortfolioThroughPipeline compiles the portfolio policy through
// the cache and checks dedup: two requests, one compilation, shared
// result with telemetry.
func TestPortfolioThroughPipeline(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleStencil(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(2)
	cfg := machine.FourCluster(1, 1)
	req := Request{Loop: l, Cfg: cfg, Opts: core.Options{Strategy: core.Portfolio}}
	r1, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Compile(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("portfolio result not cached")
	}
	if s := p.Stats(); s.Compilations != 1 {
		t.Errorf("compilations = %d, want 1", s.Compilations)
	}
	if r1.Stages == nil || r1.Stages.Policy != "portfolio" || r1.Stages.Winner == "" {
		t.Errorf("portfolio telemetry missing: %+v", r1.Stages)
	}
}

// TestFallbackEngagesForAliasSpelling: "all" and "unroll_all" share a
// canonical cache key, so the fallback must engage for the alias too —
// otherwise the cached outcome would depend on which spelling compiled
// first.
func TestFallbackEngagesForAliasSpelling(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "test"}
	p := New(1)
	cfg := machine.FourCluster(1, 4)
	res, err := p.Compile(Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: "all", Factor: 16}})
	if err != nil {
		t.Fatalf("alias spelling did not fall back: %v", err)
	}
	if !res.FellBack {
		t.Fatal("alias spelling compiled without the fallback engaging")
	}
	// The canonical spelling joins the same entry.
	res2, err := p.Compile(Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: core.UnrollAll, Factor: 16}})
	if err != nil || res2 != res {
		t.Errorf("canonical spelling did not hit the alias's cache entry (err %v)", err)
	}
}
