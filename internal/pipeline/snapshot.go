// Cache snapshot and federation surface: the entry points cluster mode
// uses to make one process's compile cache portable.  Export and Seed
// move completed entries in and out of the LRU (the wire package
// serializes them as NDJSON for warm-start snapshots), Peek serves a
// single entry to a peer without compiling, and SetPeerLookup installs
// the miss path that asks the cluster before paying for a compile.
//
// Only successful completed entries travel: cached deterministic errors
// are cheap to rediscover and transient failures are never cached in
// the first place, so a snapshot or a peer answer is always a real
// schedule.

package pipeline

import (
	"sort"
	"strings"

	"repro/internal/core"
)

// CacheEntry is one completed, successful cache entry in transit:
// the cache key plus the compiled result.  The wire package owns the
// serialized form.
type CacheEntry struct {
	Key string
	Res *core.Result
}

// KeyFingerprint returns the content-fingerprint prefix of a pipeline
// cache key — the part consistent-hash routing shards on.  Keys are
// "<fingerprint>:<rest>"; a key without the separator returns whole.
func KeyFingerprint(key string) string {
	if i := strings.IndexByte(key, ':'); i >= 0 {
		return key[:i]
	}
	return key
}

// PeerLookupFunc resolves a cache key against the rest of the cluster.
// It runs on the detached fill goroutine of a cache miss, before the
// local compile; returning ok=true short-circuits the compile with the
// peer's result.  Implementations must bound their own time (one
// intra-cluster RTT, not a retry loop) — every waiter of the entry is
// blocked behind it.
type PeerLookupFunc func(key string) (*core.Result, bool)

// SetPeerLookup installs the peer-cache miss path; nil removes it.
// Call before serving traffic.
func (p *Pipeline) SetPeerLookup(fn PeerLookupFunc) { p.peerLookup = fn }

// Export snapshots every completed, successful cache entry, sorted by
// key so the serialized snapshot is deterministic.  In-flight entries
// and cached errors are skipped.
func (p *Pipeline) Export() []CacheEntry {
	var out []CacheEntry
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if e.bytes == 0 { // in flight
				continue
			}
			if e.err != nil || e.res == nil {
				continue
			}
			out = append(out, CacheEntry{Key: e.key, Res: e.res})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Seed inserts a completed entry — a snapshot row on warm-start, or a
// prefilled result — reporting whether it was added.  An existing entry
// for the key (completed or in flight) wins: the cache never replaces
// live state with a snapshot.  The byte budget applies as usual, so
// seeding more than the LRU holds simply evicts the oldest seeds.
func (p *Pipeline) Seed(key string, res *core.Result) bool {
	if res == nil {
		return false
	}
	sh := &p.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return false
	}
	e := &entry{key: key, done: make(chan struct{}), res: res}
	e.bytes = entryBytes(key, res)
	close(e.done)
	sh.entries[key] = sh.lru.PushFront(e)
	sh.bytes += e.bytes
	p.seeded.Add(1)
	p.evictLocked(sh)
	return true
}

// Peek returns the completed, successful entry for key without
// compiling anything — the read a peer's cache lookup performs.  The
// entry is touched (moved to most-recent) but the hit/miss counters are
// not: peer traffic must not masquerade as local cache performance.
func (p *Pipeline) Peek(key string) (*core.Result, bool) {
	sh := &p.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	select {
	case <-e.done:
	default:
		return nil, false // in flight: nothing to serve yet
	}
	if e.err != nil || e.res == nil {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return e.res, true
}
