package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/machine"
)

// sameShardRequests builds n distinct cacheable requests whose keys all
// land in one shard, with equal key lengths so every entry costs the
// same.  The loop names are fixed-width, so key length never varies.
func sameShardRequests(t *testing.T, n int) []Request {
	t.Helper()
	cfg := machine.TwoCluster(1, 1)
	byShard := map[int][]Request{}
	for i := 0; len(byShard[0]) < n && i < 100000; i++ {
		g := ddg.SampleChain(3)
		g.Name = fmt.Sprintf("lru-%06d", i)
		req := Request{Loop: &corpus.Loop{Graph: g, Iters: 8, Weight: 1, Bench: "t"}, Cfg: cfg}
		s := shardOf(req.key())
		byShard[s] = append(byShard[s], req)
	}
	if len(byShard[0]) < n {
		t.Fatalf("could not find %d same-shard keys", n)
	}
	return byShard[0][:n]
}

// stubResult is what the stub compiles return: a fixed-size result so
// entry costs are predictable.
func stubResult() *core.Result { return &core.Result{Factor: 1} }

// TestLRUEvictionOrder fills one shard past its byte budget and checks
// the least recently used completed entries go first, that a cache hit
// refreshes recency, that Stats counts the evictions, and that an
// evicted key recompiles.
func TestLRUEvictionOrder(t *testing.T) {
	reqs := sameShardRequests(t, 4)
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		keys[i] = r.key()
	}
	perEntry := entryBytes(keys[0], stubResult())
	for _, k := range keys {
		if got := entryBytes(k, stubResult()); got != perEntry {
			t.Fatalf("entry sizes differ: %d vs %d", got, perEntry)
		}
	}

	p := New(1)
	compiled := map[string]int{}
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		compiled[l.Graph.Name]++
		return stubResult(), nil
	})
	var evicted []string
	p.SetEvictHook(func(key string, bytes int64) {
		if bytes != perEntry {
			t.Errorf("evicted %q with %d bytes, want %d", key, bytes, perEntry)
		}
		evicted = append(evicted, key)
	})
	// Budget: each shard holds two entries, not three.
	p.SetCacheBytes(numShards * (2*perEntry + perEntry/2))

	mustCompile := func(i int) {
		t.Helper()
		if _, err := p.Compile(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}

	mustCompile(0)
	mustCompile(1)
	if len(evicted) != 0 {
		t.Fatalf("evictions before the budget overflowed: %v", evicted)
	}

	// Third entry overflows the shard: the oldest (0) must go.
	mustCompile(2)
	if len(evicted) != 1 || evicted[0] != keys[0] {
		t.Fatalf("evicted %v, want exactly [%s]", evicted, keys[0])
	}

	// Touch 1 so 2 becomes the LRU, then overflow again: 2 must go.
	mustCompile(1)
	mustCompile(3)
	if len(evicted) != 2 || evicted[1] != keys[2] {
		t.Fatalf("evicted %v, want second eviction %s", evicted, keys[2])
	}

	st := p.Stats()
	if st.Evictions != 2 {
		t.Errorf("Stats.Evictions = %d, want 2", st.Evictions)
	}
	if st.CachedBytes != 2*perEntry {
		t.Errorf("Stats.CachedBytes = %d, want %d", st.CachedBytes, 2*perEntry)
	}

	// The evicted key is gone: asking again recompiles.
	mustCompile(0)
	if compiled[reqs[0].Loop.Graph.Name] != 2 {
		t.Errorf("evicted key compiled %d times, want 2", compiled[reqs[0].Loop.Graph.Name])
	}
	if compiled[reqs[1].Loop.Graph.Name] != 1 {
		t.Errorf("refreshed key recompiled: %d", compiled[reqs[1].Loop.Graph.Name])
	}
}

// TestLRUKeepsTotalUnderBudget hammers a bounded pipeline with far more
// distinct keys than fit and checks the global bound holds at every
// step, entries actually churn, and every response is still served.
func TestLRUKeepsTotalUnderBudget(t *testing.T) {
	const maxBytes = 16 << 10
	p := New(4)
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		return stubResult(), nil
	})
	p.SetCacheBytes(maxBytes)

	cfg := machine.FourCluster(1, 1)
	var reqs []Request
	for i := 0; i < 400; i++ {
		g := ddg.SampleChain(4)
		g.Name = fmt.Sprintf("churn-%04d", i)
		reqs = append(reqs, Request{Loop: &corpus.Loop{Graph: g, Iters: 8, Weight: 1, Bench: "t"}, Cfg: cfg})
	}
	for i, r := range reqs {
		if _, err := p.Compile(r); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if st := p.Stats(); st.CachedBytes > maxBytes {
				t.Fatalf("after %d compiles: %d cached bytes over the %d budget", i+1, st.CachedBytes, maxBytes)
			}
		}
	}
	st := p.Stats()
	if st.CachedBytes > maxBytes {
		t.Errorf("CachedBytes = %d over the %d budget", st.CachedBytes, maxBytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite overflowing the budget")
	}
	if p.Len() >= len(reqs) {
		t.Errorf("Len() = %d, want far fewer than %d distinct keys", p.Len(), len(reqs))
	}
	if int64(p.Len()) != st.CachedEntries {
		t.Errorf("Len() = %d but Stats.CachedEntries = %d", p.Len(), st.CachedEntries)
	}
}

// TestCompileCtxDeadline checks an expired deadline unblocks the caller
// while the shared compile finishes and lands in the cache.
func TestCompileCtxDeadline(t *testing.T) {
	p := New(1)
	var calls atomic.Int64
	release := make(chan struct{})
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(), nil
	})
	req := Request{Loop: testLoops(1)[0], Cfg: machine.TwoCluster(1, 1)}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := p.CompileCtx(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	// The compile is still in flight; a joiner with a live context gets
	// the result once it completes, without recompiling.
	done := make(chan error, 1)
	go func() {
		_, err := p.Compile(req)
		done <- err
	}()
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compile ran %d times, want 1 (deadline must not abandon the entry)", n)
	}
}

// TestCompileCtxCanceledUpFront checks a dead context never compiles.
func TestCompileCtxCanceledUpFront(t *testing.T) {
	p := New(1)
	var calls atomic.Int64
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		return stubResult(), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := Request{Loop: testLoops(1)[0], Cfg: machine.TwoCluster(1, 1)}
	if _, err := p.CompileCtx(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if calls.Load() != 0 {
		t.Error("canceled context still compiled")
	}
}

// TestCompileBatchCtxCancel checks a batch whose context dies mid-run
// marks every unserved slot with the context error and leaves none
// empty.
func TestCompileBatchCtxCancel(t *testing.T) {
	p := New(2)
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		time.Sleep(5 * time.Millisecond)
		return stubResult(), nil
	})
	loops := testLoops(32)
	cfg := machine.TwoCluster(1, 1)
	var reqs []Request
	for _, l := range loops {
		reqs = append(reqs, Request{Loop: l, Cfg: cfg})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 12*time.Millisecond)
	defer cancel()
	out := p.CompileBatchCtx(ctx, reqs)

	served, failed := 0, 0
	for i, r := range out {
		switch {
		case r.Result != nil:
			served++
		case errors.Is(r.Err, context.DeadlineExceeded):
			failed++
		default:
			t.Errorf("slot %d: empty response (err %v)", i, r.Err)
		}
	}
	if served == 0 {
		t.Error("no slot served before the deadline")
	}
	if failed == 0 {
		t.Error("no slot marked with the context error")
	}
}

// TestMaxConcurrentCompiles checks the compile cap: while one compile
// holds the only slot, a second distinct request must not even start
// compiling — its deadline expires slotless and spawns nothing — and
// once the slot frees, the key compiles normally.
func TestMaxConcurrentCompiles(t *testing.T) {
	p := New(4)
	p.SetMaxConcurrentCompiles(1)
	var calls atomic.Int64
	release := make(chan struct{})
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		<-release
		return stubResult(), nil
	})
	loops := testLoops(2)
	cfg := machine.TwoCluster(1, 1)

	first := make(chan error, 1)
	go func() {
		_, err := p.Compile(Request{Loop: loops[0], Cfg: cfg})
		first <- err
	}()
	for i := 0; i < 500 && calls.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if calls.Load() != 1 {
		t.Fatal("first compile never started")
	}

	// Second key: the slot is taken, so the deadline must expire before
	// any compile starts, leaving no cache entry behind.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.CompileCtx(ctx, Request{Loop: loops[1], Cfg: cfg}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("capped compile started anyway (%d calls)", n)
	}
	if p.Len() != 1 {
		t.Errorf("slotless attempt left a cache entry (Len %d, want 1)", p.Len())
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if _, err := p.Compile(Request{Loop: loops[1], Cfg: cfg}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("compiles ran %d times, want 2", n)
	}
}

// TestMaxConcurrentCompilesContention checks correctness under the cap:
// many goroutines, overlapping keys, every request answered and each
// key compiled exactly once.
func TestMaxConcurrentCompilesContention(t *testing.T) {
	p := New(8)
	p.SetMaxConcurrentCompiles(2)
	var calls atomic.Int64
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return stubResult(), nil
	})
	loops := testLoops(8)
	cfg := machine.TwoCluster(1, 1)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if _, err := p.Compile(Request{Loop: loops[(g+i)%len(loops)], Cfg: cfg}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := calls.Load(); n != int64(len(loops)) {
		t.Errorf("%d compiles for %d keys", n, len(loops))
	}
}

// TestBoundedCacheRaces runs concurrent compiles, hits and evictions
// under a tiny budget; the race detector and the byte bound are the
// assertions.
func TestBoundedCacheRaces(t *testing.T) {
	const maxBytes = 8 << 10
	p := New(4)
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		return stubResult(), nil
	})
	p.SetCacheBytes(maxBytes)
	loops := testLoops(64)
	cfg := machine.FourCluster(1, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := p.Compile(Request{Loop: loops[(g*7+i)%len(loops)], Cfg: cfg}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := p.Stats(); st.CachedBytes > maxBytes {
		t.Errorf("CachedBytes = %d over the %d budget", st.CachedBytes, maxBytes)
	}
}
