// Regression tests for panic isolation: a panicking CompileFunc —
// including one whose only owner is a detached fill goroutine after
// every requester gave up — must never crash the process, must surface
// as a typed engine.PanicError, and must never be cached.

package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/machine"
)

// waitForPanics polls the stats until the panic counter reaches want.
func waitForPanics(t *testing.T, p *Pipeline, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Panics >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("Stats.Panics never reached %d (last: %d)", want, p.Stats().Panics)
}

// TestDetachedPanickingCompileLeavesPipelineServing is the
// detached-goroutine regression: the requester abandons the compile
// (context canceled), the fill goroutine panics with no waiter
// attached, and the pipeline must absorb it — process alive, panic
// counted, nothing cached — and keep serving the same key.
func TestDetachedPanickingCompileLeavesPipelineServing(t *testing.T) {
	p := New(1)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			panic("detached compile boom")
		}
		return stubResult(), nil
	})
	req := Request{Loop: testLoops(1)[0], Cfg: machine.TwoCluster(1, 1)}

	ctx, cancel := context.WithCancel(context.Background())
	go func() { <-entered; cancel() }()
	if _, err := p.CompileCtx(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning requester got %v, want context.Canceled", err)
	}

	// The fill goroutine now owns the compile with no requester
	// attached; let it panic.  The process surviving this line is the
	// point of the test.
	close(release)
	waitForPanics(t, p, 1)

	// The panic is transient: not cached, so a retry of the same key
	// recompiles — and this time succeeds.
	res, err := p.Compile(req)
	if err != nil || res == nil {
		t.Fatalf("retry after detached panic: res=%v err=%v", res, err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("compile ran %d times, want 2 (panic result must not be cached)", n)
	}
	if st := p.Stats(); st.CachedEntries != 1 {
		t.Errorf("CachedEntries = %d, want 1 (only the successful retry)", st.CachedEntries)
	}
}

// TestPanicPublishedToJoinersNotCached checks every requester joined on
// a panicking fill receives the typed engine.PanicError (not a dropped
// result), and that the error evaporates from the cache afterwards.
func TestPanicPublishedToJoinersNotCached(t *testing.T) {
	p := New(2)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	p.SetCompile(func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
			panic("joined compile boom")
		}
		return stubResult(), nil
	})
	req := Request{Loop: testLoops(1)[0], Cfg: machine.TwoCluster(1, 1)}

	errc := make(chan error, 2)
	go func() { _, err := p.Compile(req); errc <- err }()
	<-entered // the fill is in flight: the second request must join it
	go func() { _, err := p.Compile(req); errc <- err }()

	// Give the joiner a moment to attach, then let the fill panic.
	time.Sleep(10 * time.Millisecond)
	close(release)

	for i := 0; i < 2; i++ {
		err := <-errc
		var perr *engine.PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("requester %d got %v (%T), want *engine.PanicError", i, err, err)
		}
	}
	if st := p.Stats(); st.Panics != 1 || st.CachedEntries != 0 {
		t.Errorf("Panics=%d CachedEntries=%d, want 1 and 0", st.Panics, st.CachedEntries)
	}

	// The pipeline still serves the key.
	if _, err := p.Compile(req); err != nil {
		t.Fatalf("compile after joined panic: %v", err)
	}
}
