// Package pipeline is the concurrent batch-compilation subsystem: a
// sharded, deduplicating compile cache in front of core.Compile plus a
// bounded worker pool that fans batches of compile requests out across
// CPUs while preserving result order.
//
// The experiments drivers, cmd/experiments, cmd/vliwsched and the
// scheduling service (internal/service) all funnel their compilations
// through one Pipeline, so a figure or a request that revisits a
// (loop, machine, options) combination pays for it once no matter how
// many goroutines ask, and a batch of independent compilations uses
// every core.
//
// Concurrency model: the cache is split into shards, each guarded by
// its own mutex, so concurrent requests for different keys rarely
// contend.  The first request for a key claims an in-flight entry and
// compiles on a detached goroutine; later requests for the same key
// join that entry (singleflight) and block on its done channel until
// the result lands.  Results — including errors, since compilation is
// deterministic — are cached; loops are identified by their content
// fingerprint (ddg.Graph.Fingerprint), so structurally identical loops
// deduplicate even when they arrive as distinct decoded objects.
// CompileBatch feeds a fixed pool of worker goroutines from a channel
// of indices and writes each response into the slot of its request, so
// the returned slice is deterministic regardless of completion order.
//
// Long-running use (the service daemon) adds two facilities batch runs
// don't need: CompileCtx respects a context deadline — the caller
// unblocks at expiry while the shared compile runs to completion and is
// cached for the next asker — and SetCacheBytes bounds the cache with a
// per-shard LRU so a daemon's memory stays flat under an endless
// request stream (evictions are visible in Stats).
package pipeline

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/machine"
)

// numShards splits the cache; 32 is comfortably above any worker count
// this library runs with.
const numShards = 32

// Request identifies one compilation: a loop, a target machine and the
// compile options.
type Request struct {
	Loop *corpus.Loop
	Cfg  machine.Config
	Opts core.Options
}

// cacheable reports whether the request can be keyed: per-run slices
// (an explicit node order or a fixed assignment) have no stable textual
// identity, so such requests always compile.
func (r Request) cacheable() bool {
	return r.Opts.Sched.Order == nil && r.Opts.Sched.Assignment == nil
}

// key builds the cache identity.  The loop is identified by its graph's
// content fingerprint — name, unroll factor, every node and edge — so
// two structurally identical graphs share one entry no matter where
// they were decoded, and two distinct graphs sharing a name never
// alias.  Every Config field that can change a schedule (including the
// FU mix and any heterogeneous layout) and every keyable option is
// included alongside the config Name, so two distinct configurations
// sharing a label never collide either.  Scheduler and strategy are
// keyed by their canonical registered names, so the zero value, the
// canonical spelling and every alias ("ne", "nystrom-eichenberger")
// share one entry.
func (r Request) key() string {
	return fmt.Sprintf("%s:%s|%s|%d|%v|%v|%d|%d|%d|%s|%s|%d|%d|%d|%d|%d|%d|%d",
		r.Loop.Graph.Fingerprint(), r.Loop.Bench,
		r.Cfg.Name, r.Cfg.NClusters, r.Cfg.FUsPerCluster, r.Cfg.Hetero,
		r.Cfg.NBuses, r.Cfg.BusLatency, r.Cfg.RegsPerCluster,
		engine.CanonicalScheduler(r.Opts.Scheduler.String()),
		engine.CanonicalStrategy(r.Opts.Strategy.String()), r.Opts.Factor,
		r.Opts.Sched.Policy, r.Opts.Sched.MaxII, r.Opts.Sched.ForceII,
		r.Opts.Exact.MaxNodes, r.Opts.Exact.MaxSteps, r.Opts.Exact.MaxII)
}

// Response pairs one batch request's result with its error.
type Response struct {
	Result *core.Result
	Err    error
}

// Stats is a point-in-time snapshot of pipeline activity.
type Stats struct {
	// Hits counts requests answered from a completed cache entry.
	Hits int64
	// Misses counts requests that had to compile (including uncacheable
	// ones).
	Misses int64
	// DedupJoins counts requests that found their key already in flight
	// and waited for the first requester's result.
	DedupJoins int64
	// Compilations counts CompileFunc invocations (== Misses).  The
	// default CompileFunc may run core.Compile twice inside one counted
	// compilation when the unroll fallback engages.
	Compilations int64
	// Fallbacks counts compilations whose result came from the
	// UnrollAll→NoUnroll fallback (Result.FellBack): the row a figure
	// reports as "Unrolling" is actually a non-unrolled schedule.  A
	// cached fallback result counts once, at compile time.
	Fallbacks int64
	// Panics counts compilations that panicked and were converted into a
	// typed engine.PanicError by the pipeline's recovery fence.  Panic
	// results are never cached (see fill), so every occurrence is one
	// real panicking compile.
	Panics int64
	// PeerHits counts misses satisfied by a peer's cache over the
	// cluster federation path instead of a local compile.
	PeerHits int64
	// Seeded counts entries inserted from outside a compile: snapshot
	// restore on warm-start, corpus prefill.
	Seeded int64
	// Evictions counts completed entries dropped by the LRU byte bound
	// (zero on an unbounded pipeline).
	Evictions int64
	// CachedBytes is the current estimated size of all completed cache
	// entries (see SetCacheBytes for the accounting model).
	CachedBytes int64
	// CachedEntries is the current number of cache entries, completed or
	// in flight (== Len()).
	CachedEntries int64
	// CompileTime is total time spent inside core.Compile, summed over
	// workers (it exceeds wall time when workers overlap).
	CompileTime time.Duration
	// WallTime is total wall-clock time spent inside CompileBatch calls.
	WallTime time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("pipeline: %d hits, %d misses, %d dedup joins, %d compilations (%d unroll fallbacks, %d panics), %d evictions, %d entries / %d bytes cached, compile %v, wall %v",
		s.Hits, s.Misses, s.DedupJoins, s.Compilations, s.Fallbacks, s.Panics,
		s.Evictions, s.CachedEntries, s.CachedBytes,
		s.CompileTime.Round(time.Millisecond), s.WallTime.Round(time.Millisecond))
}

// CompileFunc performs one compilation; Pipeline's default wraps
// core.Compile with the evaluation's unroll fallback.
type CompileFunc func(*corpus.Loop, *machine.Config, core.Options) (*core.Result, error)

// entry is one cache slot: done closes when res/err are final.  bytes is
// zero while the compile is in flight and positive once completed (the
// estimate always includes the key), which is how eviction tells the two
// apart.
type entry struct {
	key   string
	done  chan struct{}
	res   *core.Result
	err   error
	bytes int64
}

// shard is one cache partition: a key-indexed LRU list of entries plus
// the byte total of its completed ones.
type shard struct {
	mu      sync.Mutex
	entries map[string]*list.Element // value: *entry; front = most recent
	lru     *list.List
	bytes   int64
}

// Pipeline is a concurrent compile cache with a bounded worker pool.
// It is safe for use by any number of goroutines.
type Pipeline struct {
	workers int
	compile CompileFunc

	shards [numShards]shard

	// maxBytes > 0 bounds the cache (see SetCacheBytes).
	maxBytes atomic.Int64
	// onEvict, when non-nil, observes evictions (see SetEvictHook).
	onEvict func(key string, bytes int64)
	// fillSem, when non-nil, caps concurrently running compiles (see
	// SetMaxConcurrentCompiles): a slot is acquired before an entry is
	// claimed and released when its fill goroutine finishes.
	fillSem chan struct{}
	// peerLookup, when non-nil, resolves misses against the cluster
	// before compiling (see SetPeerLookup).
	peerLookup PeerLookupFunc

	hits, misses, joins, compilations, fallbacks, evictions, panics atomic.Int64
	peerHits, seeded                                                atomic.Int64
	compileNS, wallNS                                               atomic.Int64
}

// New returns a Pipeline whose batch pool runs the given number of
// workers; workers <= 0 means GOMAXPROCS.  The cache is unbounded until
// SetCacheBytes.
func New(workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{workers: workers, compile: compileOne}
	for i := range p.shards {
		p.shards[i].entries = map[string]*list.Element{}
		p.shards[i].lru = list.New()
	}
	return p
}

// Workers returns the batch pool size.
func (p *Pipeline) Workers() int { return p.workers }

// SetCacheBytes bounds the completed-entry cache to roughly n bytes,
// split evenly across the shards; each shard evicts its least recently
// used completed entries once its share overflows, so the global total
// never exceeds n.  Entry sizes are an estimate of resident memory
// (key, result, schedule tables and the retained graph).  n <= 0 means
// unbounded — the default, and what one-shot experiment runs want.
// In-flight entries are never evicted.
func (p *Pipeline) SetCacheBytes(n int64) { p.maxBytes.Store(n) }

// SetEvictHook registers fn to observe every LRU eviction (key and
// estimated bytes).  fn runs with the shard lock held, so it must be
// fast and must not reenter the pipeline.  Call before serving traffic;
// nil unregisters.  Tests and metrics exporters use this.
func (p *Pipeline) SetEvictHook(fn func(key string, bytes int64)) { p.onEvict = fn }

// SetCompile replaces the compile function (default: core.Compile with
// the unroll fallback).  Call before serving traffic.  Tests use this
// to inject failures, delays and invocation counters.
func (p *Pipeline) SetCompile(fn CompileFunc) { p.compile = fn }

// WrapCompile decorates the current compile function in place —
// fault injectors and instrumentation wrap the default (or an already
// replaced function) without having to know which it is.  Call before
// serving traffic.
func (p *Pipeline) WrapCompile(wrap func(CompileFunc) CompileFunc) { p.compile = wrap(p.compile) }

// SetMaxConcurrentCompiles caps the number of compiles running at once
// across all callers; n <= 0 means unbounded (the default).  Call
// before serving traffic.  Without a cap, a caller whose deadline
// expires leaves its compile running detached — harmless for batch
// runs, but a daemon fed cheap-to-request, expensive-to-compile work
// with tiny timeouts could otherwise accumulate unbounded concurrent
// compiles; with the cap, a prospective compile waits for a slot
// before its cache entry is even claimed (so the wait is
// deadline-bounded and spawns nothing), and at most n fill goroutines
// exist at any instant.
func (p *Pipeline) SetMaxConcurrentCompiles(n int) {
	if n > 0 {
		p.fillSem = make(chan struct{}, n)
	} else {
		p.fillSem = nil
	}
}

// compileOne is the default CompileFunc: core.Compile with the
// pragmatic fallback the evaluation needs — when unconditional
// unrolling cannot be scheduled (register files too small for the
// unrolled body), the loop falls back to its non-unrolled schedule,
// exactly what a compiler would ship.  The fallback is never silent:
// the result is marked FellBack, the Decision records why the unrolled
// compile failed, and Stats.Fallbacks counts it — otherwise a Figure
// 8/10 "Unrolling" row could quietly report non-unrolled schedules.
func compileOne(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
	res, err := core.Compile(l.Graph, cfg, &opts)
	// Compare canonically: the cache keys "all" and "unroll_all" to one
	// entry, so the fallback must engage for every spelling or the
	// cached outcome would depend on which alias asked first.
	if err != nil && engine.CanonicalStrategy(opts.Strategy.String()) == string(core.UnrollAll) {
		unrollErr := err
		fallback := opts
		fallback.Strategy = core.NoUnroll
		res, err = core.Compile(l.Graph, cfg, &fallback)
		if err == nil {
			res.FellBack = true
			res.Decision.Factor = 1
			res.Decision.FailReason = fmt.Sprintf("unroll-all unschedulable, fell back to no-unroll: %v", unrollErr)
		}
	}
	return res, err
}

func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// Compile resolves one request through the cache: a completed entry is
// a hit, an in-flight entry is joined, and a fresh key compiles exactly
// once no matter how many goroutines race for it.
func (p *Pipeline) Compile(req Request) (*core.Result, error) {
	return p.CompileCtx(context.Background(), req)
}

// CompileCtx is Compile with a context: a caller whose context expires
// unblocks immediately with ctx.Err(), while the underlying compile —
// shared by every requester of the key — runs to completion on its own
// goroutine and lands in the cache for the next asker.  The compile
// itself is not interruptible (the schedulers take no context), so a
// deadline bounds the caller's wait, not the work.  Exception:
// uncacheable requests (an explicit Order or Assignment — per-run
// ablation paths, never reachable over the wire) run synchronously on
// the caller's goroutine; they have no entry for anyone to share, so
// detaching them would only discard the work, and the deadline is
// checked solely on entry.
func (p *Pipeline) CompileCtx(ctx context.Context, req Request) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !req.cacheable() {
		p.misses.Add(1)
		return p.run(req)
	}
	key := req.key()
	sh := &p.shards[shardOf(key)]

	haveSlot := false
	for {
		sh.mu.Lock()
		if el, ok := sh.entries[key]; ok {
			sh.lru.MoveToFront(el)
			e := el.Value.(*entry)
			sh.mu.Unlock()
			if haveSlot {
				<-p.fillSem // lost the claim race; join instead
			}
			select {
			case <-e.done:
				p.hits.Add(1)
				return e.res, e.err
			default:
			}
			p.joins.Add(1)
			select {
			case <-e.done:
				return e.res, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if p.fillSem == nil || haveSlot {
			e := &entry{key: key, done: make(chan struct{})}
			sh.entries[key] = sh.lru.PushFront(e)
			sh.mu.Unlock()

			p.misses.Add(1)
			go func() {
				p.fill(sh, e, req)
				if haveSlot {
					<-p.fillSem
				}
			}()

			select {
			case <-e.done:
				return e.res, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Capped: wait for a compile slot before claiming the key, so an
		// expired deadline aborts here without spawning anything.
		sh.mu.Unlock()
		select {
		case p.fillSem <- struct{}{}:
			haveSlot = true
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// fill completes an in-flight entry: compile, publish the result (the
// close happens-before every waiter's read), account the bytes and
// evict whatever the new entry pushed over the shard's budget.
//
// Transient failures — recovered panics, injected faults — are
// published to the waiters but never cached: the entry is removed
// before the done channel closes, so the next request for the key
// compiles afresh instead of replaying a fault forever.  Deterministic
// compile errors stay cached as before.
func (p *Pipeline) fill(sh *shard, e *entry, req Request) {
	var res *core.Result
	var err error
	// Federation: a miss costs one intra-cluster lookup before it costs
	// a compile.  The peer most likely to own this fingerprint either
	// has the finished result (identical loops recur constantly — the
	// whole premise) or answers not-found fast; only then do we pay.
	if p.peerLookup != nil {
		if r, ok := p.peerLookup(e.key); ok && r != nil {
			res = r
			p.peerHits.Add(1)
		}
	}
	if res == nil {
		res, err = p.run(req)
	}
	sh.mu.Lock()
	e.res, e.err = res, err
	if err != nil && engine.Transient(err) {
		if el, ok := sh.entries[e.key]; ok && el.Value.(*entry) == e {
			sh.lru.Remove(el)
			delete(sh.entries, e.key)
		}
		close(e.done)
		sh.mu.Unlock()
		return
	}
	e.bytes = entryBytes(e.key, res)
	sh.bytes += e.bytes
	// Evict before publishing: a caller returning from this entry then
	// observes every side effect (stats, hooks) of the insertion.
	p.evictLocked(sh)
	close(e.done)
	sh.mu.Unlock()
}

// evictLocked drops least-recently-used completed entries until the
// shard is back under its share of the byte budget.  In-flight entries
// (bytes == 0) are skipped: their cost is unknown and waiters hold
// their done channel.
func (p *Pipeline) evictLocked(sh *shard) {
	maxBytes := p.maxBytes.Load()
	if maxBytes <= 0 {
		return
	}
	budget := maxBytes / numShards
	for sh.bytes > budget {
		el := sh.lru.Back()
		for el != nil && el.Value.(*entry).bytes == 0 {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		sh.lru.Remove(el)
		delete(sh.entries, e.key)
		sh.bytes -= e.bytes
		p.evictions.Add(1)
		if p.onEvict != nil {
			p.onEvict(e.key, e.bytes)
		}
	}
}

// entryBytes estimates the resident memory of one completed cache
// entry: map key, entry bookkeeping, the Result with its schedule
// tables, and the graph the schedule retains.  The constants are struct
// sizes rounded up for allocator slack; the point is a stable,
// conservative accounting unit for the byte budget, not exactness.
func entryBytes(key string, res *core.Result) int64 {
	const entryOverhead = 192 // entry + list.Element + map slot
	n := int64(len(key)) + entryOverhead
	if res == nil {
		return n // cached error: the error string is small
	}
	n += 128 // Result struct incl. Decision
	n += int64(len(res.Decision.FailReason))
	if res.Exact != nil {
		n += 48
	}
	if t := res.Stages; t != nil {
		n += 192 // Telemetry header + the four canonical stages
		n += int64(len(t.Trajectory)) * 8
		n += int64(len(t.Candidates)) * 64
	}
	if s := res.Schedule; s != nil {
		n += 192 // Schedule header + Cfg
		n += int64(len(s.Placements)) * 32
		n += int64(len(s.Transfers)) * 40
		n += int64(len(s.Causes)) * 48
		if g := s.Graph; g != nil {
			n += int64(g.NumNodes())*88 + int64(g.NumEdges())*96
		}
	}
	return n
}

// run performs the compilation and accounts for it.  It is the
// pipeline's panic fence: compiles execute on detached fill goroutines
// (and batch workers), where an escaped panic would kill the whole
// process with no handler in between — so any panic a CompileFunc lets
// through (the engine converts its own; this catches custom compile
// functions and anything else) becomes a typed engine.PanicError here.
func (p *Pipeline) run(req Request) (res *core.Result, err error) {
	start := time.Now()
	defer func() {
		p.compileNS.Add(time.Since(start).Nanoseconds())
		p.compilations.Add(1)
		if r := recover(); r != nil {
			res, err = nil, engine.NewPanicError(
				engine.CanonicalScheduler(req.Opts.Scheduler.String()), "", r)
		}
		var perr *engine.PanicError
		if errors.As(err, &perr) {
			p.panics.Add(1)
		}
		if res != nil && res.FellBack {
			p.fallbacks.Add(1)
		}
	}()
	return p.compile(req.Loop, &req.Cfg, req.Opts)
}

// CompileBatch fans the requests across the worker pool and returns one
// response per request, in request order.  Duplicate requests inside a
// batch compile once; errors are reported per slot, never aborting the
// rest of the batch.
func (p *Pipeline) CompileBatch(reqs []Request) []Response {
	return p.CompileBatchCtx(context.Background(), reqs)
}

// CompileBatchCtx is CompileBatch with a context: when it expires, the
// in-flight slots return ctx.Err() as they unblock and the unstarted
// slots are marked with ctx.Err() without compiling.
func (p *Pipeline) CompileBatchCtx(ctx context.Context, reqs []Request) []Response {
	start := time.Now()
	out := make([]Response, len(reqs))

	workers := p.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := p.CompileCtx(ctx, reqs[i])
				out[i] = Response{Result: res, Err: err}
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Result == nil && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}

	p.wallNS.Add(time.Since(start).Nanoseconds())
	return out
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() Stats {
	var bytes, entries int64
	for i := range p.shards {
		p.shards[i].mu.Lock()
		bytes += p.shards[i].bytes
		entries += int64(len(p.shards[i].entries))
		p.shards[i].mu.Unlock()
	}
	return Stats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		DedupJoins:    p.joins.Load(),
		Compilations:  p.compilations.Load(),
		Fallbacks:     p.fallbacks.Load(),
		Panics:        p.panics.Load(),
		PeerHits:      p.peerHits.Load(),
		Seeded:        p.seeded.Load(),
		Evictions:     p.evictions.Load(),
		CachedBytes:   bytes,
		CachedEntries: entries,
		CompileTime:   time.Duration(p.compileNS.Load()),
		WallTime:      time.Duration(p.wallNS.Load()),
	}
}

// Purge drops every completed cache entry and returns how many were
// removed; in-flight entries stay (their waiters hold the done
// channel).  Purged entries do not count as evictions — this is an
// operator/chaos action (cache-churn fault injection, manual cache
// reset), not byte-budget pressure.
func (p *Pipeline) Purge() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil; {
			prev := el.Prev()
			if e := el.Value.(*entry); e.bytes > 0 {
				sh.lru.Remove(el)
				delete(sh.entries, e.key)
				sh.bytes -= e.bytes
				n++
			}
			el = prev
		}
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of cached entries (completed or in flight).
func (p *Pipeline) Len() int {
	n := 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		n += len(p.shards[i].entries)
		p.shards[i].mu.Unlock()
	}
	return n
}
