// Package pipeline is the concurrent batch-compilation subsystem: a
// sharded, deduplicating compile cache in front of core.Compile plus a
// bounded worker pool that fans batches of compile requests out across
// CPUs while preserving result order.
//
// The experiments drivers, cmd/experiments and cmd/vliwsched all funnel
// their compilations through one Pipeline, so a figure that revisits a
// (loop, machine, options) combination pays for it once no matter how
// many goroutines ask, and a batch of independent compilations uses
// every core.
//
// Concurrency model: the cache is split into shards, each guarded by
// its own mutex, so concurrent requests for different keys rarely
// contend.  The first request for a key claims an in-flight entry and
// compiles outside any lock; later requests for the same key join that
// entry (singleflight) and block on its done channel until the result
// lands.  Results — including errors, since compilation is
// deterministic — are cached forever; a Pipeline's lifetime is one
// experiment run.  CompileBatch feeds a fixed pool of worker goroutines
// from a channel of indices and writes each response into the slot of
// its request, so the returned slice is deterministic regardless of
// completion order.
package pipeline

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machine"
)

// numShards splits the cache; 32 is comfortably above any worker count
// this library runs with.
const numShards = 32

// Request identifies one compilation: a loop, a target machine and the
// compile options.
type Request struct {
	Loop *corpus.Loop
	Cfg  machine.Config
	Opts core.Options
}

// cacheable reports whether the request can be keyed: per-run slices
// (an explicit node order or a fixed assignment) have no stable textual
// identity, so such requests always compile.
func (r Request) cacheable() bool {
	return r.Opts.Sched.Order == nil && r.Opts.Sched.Assignment == nil
}

// key builds the cache identity.  The loop is identified by its graph
// pointer (graphs are immutable once built and cache entries live only
// for the pipeline's lifetime), so two distinct graphs sharing a name
// never alias; Bench and Name ride along for debuggability.  Every
// Config field that can change a schedule (including the FU mix and
// any heterogeneous layout) and every keyable option is included
// alongside the config Name, so two distinct configurations sharing a
// label never collide either.
func (r Request) key() string {
	return fmt.Sprintf("%p:%s/%s|%s|%d|%v|%v|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		r.Loop.Graph, r.Loop.Bench, r.Loop.Graph.Name,
		r.Cfg.Name, r.Cfg.NClusters, r.Cfg.FUsPerCluster, r.Cfg.Hetero,
		r.Cfg.NBuses, r.Cfg.BusLatency, r.Cfg.RegsPerCluster,
		r.Opts.Scheduler, r.Opts.Strategy, r.Opts.Factor,
		r.Opts.Sched.Policy, r.Opts.Sched.MaxII, r.Opts.Sched.ForceII,
		r.Opts.Exact.MaxNodes, r.Opts.Exact.MaxSteps, r.Opts.Exact.MaxII)
}

// Response pairs one batch request's result with its error.
type Response struct {
	Result *core.Result
	Err    error
}

// Stats is a point-in-time snapshot of pipeline activity.
type Stats struct {
	// Hits counts requests answered from a completed cache entry.
	Hits int64
	// Misses counts requests that had to compile (including uncacheable
	// ones).
	Misses int64
	// DedupJoins counts requests that found their key already in flight
	// and waited for the first requester's result.
	DedupJoins int64
	// Compilations counts CompileFunc invocations (== Misses).  The
	// default CompileFunc may run core.Compile twice inside one counted
	// compilation when the unroll fallback engages.
	Compilations int64
	// Fallbacks counts compilations whose result came from the
	// UnrollAll→NoUnroll fallback (Result.FellBack): the row a figure
	// reports as "Unrolling" is actually a non-unrolled schedule.  A
	// cached fallback result counts once, at compile time.
	Fallbacks int64
	// CompileTime is total time spent inside core.Compile, summed over
	// workers (it exceeds wall time when workers overlap).
	CompileTime time.Duration
	// WallTime is total wall-clock time spent inside CompileBatch calls.
	WallTime time.Duration
}

func (s Stats) String() string {
	return fmt.Sprintf("pipeline: %d hits, %d misses, %d dedup joins, %d compilations (%d unroll fallbacks), compile %v, wall %v",
		s.Hits, s.Misses, s.DedupJoins, s.Compilations, s.Fallbacks,
		s.CompileTime.Round(time.Millisecond), s.WallTime.Round(time.Millisecond))
}

// CompileFunc performs one compilation; Pipeline's default wraps
// core.Compile with the evaluation's unroll fallback.
type CompileFunc func(*corpus.Loop, *machine.Config, core.Options) (*core.Result, error)

// entry is one cache slot: done closes when res/err are final.
type entry struct {
	done chan struct{}
	res  *core.Result
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// Pipeline is a concurrent compile cache with a bounded worker pool.
// It is safe for use by any number of goroutines.
type Pipeline struct {
	workers int
	compile CompileFunc

	shards [numShards]shard

	hits, misses, joins, compilations, fallbacks atomic.Int64
	compileNS, wallNS                            atomic.Int64
}

// New returns a Pipeline whose batch pool runs the given number of
// workers; workers <= 0 means GOMAXPROCS.
func New(workers int) *Pipeline {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{workers: workers, compile: compileOne}
	for i := range p.shards {
		p.shards[i].entries = map[string]*entry{}
	}
	return p
}

// Workers returns the batch pool size.
func (p *Pipeline) Workers() int { return p.workers }

// compileOne is the default CompileFunc: core.Compile with the
// pragmatic fallback the evaluation needs — when unconditional
// unrolling cannot be scheduled (register files too small for the
// unrolled body), the loop falls back to its non-unrolled schedule,
// exactly what a compiler would ship.  The fallback is never silent:
// the result is marked FellBack, the Decision records why the unrolled
// compile failed, and Stats.Fallbacks counts it — otherwise a Figure
// 8/10 "Unrolling" row could quietly report non-unrolled schedules.
func compileOne(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
	res, err := core.Compile(l.Graph, cfg, &opts)
	if err != nil && opts.Strategy == core.UnrollAll {
		unrollErr := err
		fallback := opts
		fallback.Strategy = core.NoUnroll
		res, err = core.Compile(l.Graph, cfg, &fallback)
		if err == nil {
			res.FellBack = true
			res.Decision.Factor = 1
			res.Decision.FailReason = fmt.Sprintf("unroll-all unschedulable, fell back to no-unroll: %v", unrollErr)
		}
	}
	return res, err
}

func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % numShards)
}

// Compile resolves one request through the cache: a completed entry is
// a hit, an in-flight entry is joined, and a fresh key compiles exactly
// once no matter how many goroutines race for it.
func (p *Pipeline) Compile(req Request) (*core.Result, error) {
	if !req.cacheable() {
		p.misses.Add(1)
		return p.run(req)
	}
	key := req.key()
	sh := &p.shards[shardOf(key)]

	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		select {
		case <-e.done:
			p.hits.Add(1)
		default:
			p.joins.Add(1)
			<-e.done
		}
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	sh.entries[key] = e
	sh.mu.Unlock()

	p.misses.Add(1)
	e.res, e.err = p.run(req)
	close(e.done)
	return e.res, e.err
}

// run performs the compilation and accounts for it.
func (p *Pipeline) run(req Request) (*core.Result, error) {
	start := time.Now()
	res, err := p.compile(req.Loop, &req.Cfg, req.Opts)
	p.compileNS.Add(time.Since(start).Nanoseconds())
	p.compilations.Add(1)
	if res != nil && res.FellBack {
		p.fallbacks.Add(1)
	}
	return res, err
}

// CompileBatch fans the requests across the worker pool and returns one
// response per request, in request order.  Duplicate requests inside a
// batch compile once; errors are reported per slot, never aborting the
// rest of the batch.
func (p *Pipeline) CompileBatch(reqs []Request) []Response {
	start := time.Now()
	out := make([]Response, len(reqs))

	workers := p.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := p.Compile(reqs[i])
				out[i] = Response{Result: res, Err: err}
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	p.wallNS.Add(time.Since(start).Nanoseconds())
	return out
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		DedupJoins:   p.joins.Load(),
		Compilations: p.compilations.Load(),
		Fallbacks:    p.fallbacks.Load(),
		CompileTime:  time.Duration(p.compileNS.Load()),
		WallTime:     time.Duration(p.wallNS.Load()),
	}
}

// Len returns the number of cached entries (completed or in flight).
func (p *Pipeline) Len() int {
	n := 0
	for i := range p.shards {
		p.shards[i].mu.Lock()
		n += len(p.shards[i].entries)
		p.shards[i].mu.Unlock()
	}
	return n
}
