package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emit"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig10 reproduces Figure 10 for a cluster count: static code size —
// total operation fields including NOPs, and useful operations only —
// normalised per benchmark to the unified machine without unrolling,
// then averaged.  Rows follow the same scenario grid as Figure 8.
//
// Paper shape to check: without unrolling, NOP share grows as buses get
// scarce/slow (II inflation); unrolling multiplies code; selective
// unrolling sits well below unroll-all while keeping its IPC.
func (s *Suite) Fig10(clusters int) (*report.Table, error) {
	t := report.New(fmt.Sprintf("Figure 10 (%d-cluster): code size relative to unified/no-unroll", clusters),
		"scenario", "ops+NOPs", "useful ops")
	t.Note = "mean over benchmarks; static fields of prologue+kernel+epilogue summed over loops"

	uni := machine.Unified()

	// One labelled grid drives both the prime batch and the scenario
	// walk, so the two cannot drift apart.
	type gridRow struct {
		label string
		cfg   machine.Config
		opts  core.Options
	}
	grid := []gridRow{
		{"unified no-unroll", uni, core.Options{}},
		{fmt.Sprintf("unified unroll x%d", clusters), uni,
			core.Options{Strategy: core.UnrollAll, Factor: clusters}},
	}
	for _, st := range fig8Strategies {
		for _, v := range fig8Variants {
			cfg, err := clusterConfig(clusters, v.buses, v.lat)
			if err != nil {
				return nil, err
			}
			grid = append(grid, gridRow{
				fmt.Sprintf("%s B%d/L%d", st.name, v.buses, v.lat),
				cfg,
				core.Options{Strategy: st.strat, Factor: factorFor(st.strat, clusters)},
			})
		}
	}
	scens := make([]scenario, len(grid))
	for i, g := range grid {
		scens[i] = scenario{g.cfg, g.opts}
	}
	s.prime(scens)

	baseline := make([]emitTotals, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		tot, err := s.codeSize(b, &uni, core.Options{})
		if err != nil {
			return nil, err
		}
		baseline[i] = tot
	}

	addScenario := func(label string, cfg *machine.Config, opts core.Options) error {
		var relTotal, relUseful []float64
		for i, b := range s.Benchmarks {
			tot, err := s.codeSize(b, cfg, opts)
			if err != nil {
				return err
			}
			relTotal = append(relTotal, float64(tot.slots)/float64(baseline[i].slots))
			relUseful = append(relUseful, float64(tot.useful)/float64(baseline[i].useful))
		}
		t.AddRow(label, stats.Mean(relTotal), stats.Mean(relUseful))
		return nil
	}

	for _, g := range grid {
		if err := addScenario(g.label, &g.cfg, g.opts); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// emitTotals accumulates static code-size fields over a benchmark.
type emitTotals struct {
	slots, useful, bus, instructions int
}

// codeSize emits every loop of a benchmark under the options and sums
// the field counts.
func (s *Suite) codeSize(b *corpus.Benchmark, cfg *machine.Config, opts core.Options) (emitTotals, error) {
	var tot emitTotals
	for _, l := range b.Loops {
		res, err := s.compile(l, cfg, opts)
		if err != nil {
			return tot, err
		}
		c := emit.Emit(res.Schedule).Count()
		tot.slots += c.TotalSlots
		tot.useful += c.UsefulOps
		tot.bus += c.BusOps
		tot.instructions += c.Instructions
	}
	return tot, nil
}
