// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) on the synthetic SPECfp95 suite:
//
//	Figure 4  relative IPC vs bus count/latency, BSA vs N&E (E1)
//	Table  1  machine configurations and latencies (E2)
//	Figure 8  per-benchmark IPC, three unrolling strategies (E3)
//	Table  2  Palacharla cycle times (E4)
//	Figure 9  cycle-time-adjusted speedups (E5)
//	Figure 10 code-size impact of unrolling (E6)
//
// plus the ablations DESIGN.md calls out (A1 cluster-choice policy, A2
// node ordering, A3 unroll factor).  Each driver returns a report.Table
// that cmd/experiments prints and EXPERIMENTS.md records.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Suite wraps the workload with a concurrent compilation pipeline:
// every figure reuses the same (loop, config, options) compilations,
// and each driver primes the cache by fanning its whole compilation
// grid across the pipeline's worker pool before building rows.
type Suite struct {
	Benchmarks []*corpus.Benchmark

	// Pipe is the shared compile cache and worker pool; callers may
	// read its Stats after a run.
	Pipe *pipeline.Pipeline
}

// NewSuite loads the deterministic SPECfp95 substitute with a
// GOMAXPROCS-sized pipeline.
func NewSuite() *Suite {
	return NewSuiteWith(corpus.SPECfp95())
}

// NewSuiteWith uses a custom workload (tests use a trimmed one).
func NewSuiteWith(benchmarks []*corpus.Benchmark) *Suite {
	return &Suite{Benchmarks: benchmarks, Pipe: pipeline.New(0)}
}

// NewSuiteWorkers picks the pipeline pool size explicitly; workers <= 0
// means GOMAXPROCS.
func NewSuiteWorkers(benchmarks []*corpus.Benchmark, workers int) *Suite {
	return &Suite{Benchmarks: benchmarks, Pipe: pipeline.New(workers)}
}

// compile resolves one compilation through the pipeline (the unroll
// fallback lives there), adding the evaluation's error context.
func (s *Suite) compile(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
	res, err := s.Pipe.Compile(pipeline.Request{Loop: l, Cfg: *cfg, Opts: opts})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s on %s: %w", l.Bench, l.Graph.Name, cfg.Name, err)
	}
	return res, nil
}

// scenario pairs one machine with one option set; drivers enumerate
// their full scenario grid up front so prime can batch it.
type scenario struct {
	cfg  machine.Config
	opts core.Options
}

// prime fans every loop × scenario compilation across the pipeline's
// worker pool.  Errors are ignored here: they are cached, so the serial
// row-building path re-encounters them immediately and reports them
// with full context.
func (s *Suite) prime(scenarios []scenario) {
	var reqs []pipeline.Request
	for _, sc := range scenarios {
		for _, b := range s.Benchmarks {
			for _, l := range b.Loops {
				reqs = append(reqs, pipeline.Request{Loop: l, Cfg: sc.cfg, Opts: sc.opts})
			}
		}
	}
	s.Pipe.CompileBatch(reqs)
}

// benchIPC aggregates one benchmark's executed operations and cycles
// under the paper's model: per loop, (ceil(iters/U) + SC - 1) * II
// cycles and iters * ops useful operations, both scaled by the loop's
// invocation weight.
func (s *Suite) benchIPC(b *corpus.Benchmark, cfg *machine.Config, opts core.Options) (stats.Accum, error) {
	var acc stats.Accum
	for _, l := range b.Loops {
		res, err := s.compile(l, cfg, opts)
		if err != nil {
			return acc, err
		}
		kIters := (l.Iters + res.Factor - 1) / res.Factor
		cycles := int64(res.Schedule.Cycles(kIters)) * int64(l.Weight)
		ops := int64(l.Iters) * int64(l.Ops()) * int64(l.Weight)
		acc.Add(ops, cycles)
	}
	return acc, nil
}

// relIPCs returns each benchmark's IPC relative to its unified-machine
// IPC under the same strategy-less baseline (NoUnroll, BSA).
func (s *Suite) relIPCs(cfg *machine.Config, opts core.Options) ([]float64, error) {
	uni := machine.Unified()
	var rels []float64
	for _, b := range s.Benchmarks {
		base, err := s.benchIPC(b, &uni, core.Options{})
		if err != nil {
			return nil, err
		}
		acc, err := s.benchIPC(b, cfg, opts)
		if err != nil {
			return nil, err
		}
		rels = append(rels, acc.Relative(base))
	}
	return rels, nil
}

// clusterConfig builds the paper's clustered machine for a cluster
// count (2 or 4) with the given buses and latency.
func clusterConfig(clusters, buses, latency int) (machine.Config, error) {
	switch clusters {
	case 2:
		return machine.TwoCluster(buses, latency), nil
	case 4:
		return machine.FourCluster(buses, latency), nil
	default:
		return machine.Config{}, fmt.Errorf("experiments: no %d-cluster configuration in the paper", clusters)
	}
}
