package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
)

// fig8Variants are the clustered bar variants of Figure 8: bus count 1
// and 2, bus latency 1, 2 and 4.
var fig8Variants = []struct {
	buses, lat int
}{
	{1, 1}, {1, 2}, {1, 4},
	{2, 1}, {2, 2}, {2, 4},
}

// strategies in the paper's Figure 8 group order.
var fig8Strategies = []struct {
	name  string
	strat core.Strategy
}{
	{"no-unroll", core.NoUnroll},
	{"unroll", core.UnrollAll},
	{"selective", core.SelectiveUnroll},
}

// Fig8 reproduces Figure 8 for one cluster count and one strategy
// group: per-benchmark IPC of the unified machine and of the clustered
// machine at every bus/latency variant, plus the AVERAGE row.
//
// In the "unroll" group the unified machine is also compiled with the
// same unroll factor, as in the paper (whose explanation of clustered
// beating unified relies on the unified scheduler handling unrolled
// bodies greedily).  Selective unrolling never triggers on the unified
// machine (it is never bus-limited).
func (s *Suite) Fig8(clusters int, strategy core.Strategy) (*report.Table, error) {
	// The paper's three groups keep their short labels; any other
	// registered policy (portfolio, sweep:<k>) labels with its name.
	stratName := strategy.String()
	for _, st := range fig8Strategies {
		if st.strat == strategy {
			stratName = st.name
		}
	}
	headers := []string{"benchmark", "unified"}
	for _, v := range fig8Variants {
		headers = append(headers, fmt.Sprintf("B%d/L%d", v.buses, v.lat))
	}
	t := report.New(fmt.Sprintf("Figure 8 (%d-cluster, %s): IPC", clusters, stratName), headers...)

	uni := machine.Unified()
	uniOpts := core.Options{}
	if strategy == core.UnrollAll {
		uniOpts = core.Options{Strategy: core.UnrollAll, Factor: clusters}
	}

	// clOpts is shared between the prime batch and the row walk so the
	// two grids cannot drift apart.
	clOpts := core.Options{Strategy: strategy, Factor: factorFor(strategy, clusters)}
	scens := []scenario{{uni, uniOpts}}
	for _, v := range fig8Variants {
		cfg, err := clusterConfig(clusters, v.buses, v.lat)
		if err != nil {
			return nil, err
		}
		scens = append(scens, scenario{cfg, clOpts})
	}
	s.prime(scens)

	sums := make([]stats.Accum, len(fig8Variants)+1)
	for _, b := range s.Benchmarks {
		row := []any{b.Name}
		baseAcc, err := s.benchIPC(b, &uni, uniOpts)
		if err != nil {
			return nil, err
		}
		row = append(row, baseAcc.IPC())
		sums[0].Merge(baseAcc)
		for vi, v := range fig8Variants {
			cfg, err := clusterConfig(clusters, v.buses, v.lat)
			if err != nil {
				return nil, err
			}
			acc, err := s.benchIPC(b, &cfg, clOpts)
			if err != nil {
				return nil, err
			}
			row = append(row, acc.IPC())
			sums[vi+1].Merge(acc)
		}
		t.AddRow(row...)
	}
	avg := []any{"AVERAGE"}
	for _, a := range sums {
		avg = append(avg, a.IPC())
	}
	t.AddRow(avg...)
	return t, nil
}

// factorFor returns the UnrollAll factor of the paper: the cluster
// count.  Other strategies ignore it.
func factorFor(strategy core.Strategy, clusters int) int {
	if strategy == core.UnrollAll {
		return clusters
	}
	return 0
}
