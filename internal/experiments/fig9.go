package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Fig9 reproduces Figure 9: wall-clock speedup of the clustered
// configurations over the unified machine once Table 2's cycle times are
// folded in, at bus latency 1, for no unrolling (NU) and selective
// unrolling (SU) with one or two buses.
//
// Paper shape to check: every bar > 1; the best is the 4-cluster,
// 1-bus, selective-unrolling configuration at ~3.6x.
func (s *Suite) Fig9() (*report.Table, error) {
	t := report.New("Figure 9: speedup over unified (cycle time included, bus latency 1)",
		"config", "mean speedup", "min", "max")
	model := timing.DefaultModel()
	uni := machine.Unified()

	// opts is shared between the prime batch and the bar walk so the
	// two grids cannot drift apart.
	type bar struct {
		clusters, buses int
		opts            core.Options
		label           string
	}
	nu := core.Options{Strategy: core.NoUnroll}
	su := core.Options{Strategy: core.SelectiveUnroll}
	bars := []bar{
		{2, 1, nu, "2-cluster NU B=1"},
		{2, 2, nu, "2-cluster NU B=2"},
		{2, 1, su, "2-cluster SU B=1"},
		{2, 2, su, "2-cluster SU B=2"},
		{4, 1, nu, "4-cluster NU B=1"},
		{4, 2, nu, "4-cluster NU B=2"},
		{4, 1, su, "4-cluster SU B=1"},
		{4, 2, su, "4-cluster SU B=2"},
	}
	scens := []scenario{{uni, core.Options{}}}
	for _, bar := range bars {
		cfg, err := clusterConfig(bar.clusters, bar.buses, 1)
		if err != nil {
			return nil, err
		}
		scens = append(scens, scenario{cfg, bar.opts})
	}
	s.prime(scens)

	for _, bar := range bars {
		cfg, err := clusterConfig(bar.clusters, bar.buses, 1)
		if err != nil {
			return nil, err
		}
		var speedups []float64
		for _, b := range s.Benchmarks {
			base, err := s.benchIPC(b, &uni, core.Options{})
			if err != nil {
				return nil, err
			}
			acc, err := s.benchIPC(b, &cfg, bar.opts)
			if err != nil {
				return nil, err
			}
			speedups = append(speedups, model.Speedup(&cfg, &uni, acc.IPC(), base.IPC()))
		}
		t.AddRow(bar.label, stats.Mean(speedups), minOf(speedups), maxOf(speedups))
	}
	t.Note = fmt.Sprintf("cycle times (ps): unified=%.0f 2c/B1=%.0f 2c/B2=%.0f 4c/B1=%.0f 4c/B2=%.0f",
		model.CycleTime(&uni),
		cyc(model, 2, 1), cyc(model, 2, 2), cyc(model, 4, 1), cyc(model, 4, 2))
	return t, nil
}

func cyc(m timing.Model, clusters, buses int) float64 {
	cfg, _ := clusterConfig(clusters, buses, 1)
	return m.CycleTime(&cfg)
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
