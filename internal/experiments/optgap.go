package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/stats"
)

// OptGapTable reports how far BSA's initiation intervals are from
// optimal: for every benchmark on every Table 1 machine configuration,
// the per-loop BSA II is compared against the exact oracle
// (internal/exact) under the given budget (zero value = the oracle's
// defaults).
//
// A loop whose BSA II already equals MinII is proved optimal without
// invoking the oracle (MinII is a lower bound for any scheduler); the
// oracle only runs on the remainder, concurrently through the
// pipeline's worker pool.  Loops the oracle cannot settle — body above
// the node budget, or search out of steps — are counted in the "n/a"
// column and excluded from the gap statistics, never silently folded
// in.
//
// Columns per (config, benchmark) row:
//
//	loops     loops in the benchmark
//	cmp       loops with a settled exact II (the comparison population)
//	opt       compared loops where BSA is proved optimal
//	gaps      compared loops where BSA's II exceeds the optimum
//	n/a       loops the oracle could not settle within budget
//	II(bsa)   mean BSA II over the compared loops
//	II(opt)   mean exact II over the compared loops
//	gm ratio  geometric mean of per-loop BSA/exact II ratios (1.0 = optimal)
//	IPC gap   BSA IPC as a fraction of exact IPC under the paper's
//	          cycle model (1.0 = no throughput lost to the heuristic)
//
// Every config gets a closing ALL row aggregating its benchmarks.
func (s *Suite) OptGapTable(budget exact.Budget) (*report.Table, error) {
	t := report.New("Optimality gap: BSA vs exact oracle (NoUnroll)",
		"config", "benchmark", "loops", "cmp", "opt", "gaps", "n/a",
		"II(bsa)", "II(opt)", "gm ratio", "IPC gap")
	t.Note = fmt.Sprintf("exact budget: <=%d nodes, <=%d steps",
		budget.Nodes(), budget.Steps())

	bsaOpts := core.Options{}
	exactOpts := core.Options{Scheduler: core.Exact, Exact: budget}

	for _, cfg := range machine.Table1Configs() {
		cfg := cfg
		// Stage 1: prime every BSA compile, then fan the oracle over just
		// the loops BSA did not already provably solve.
		s.prime([]scenario{{cfg, bsaOpts}})
		var oracleLoops []*corpus.Loop
		for _, b := range s.Benchmarks {
			for _, l := range b.Loops {
				res, err := s.compile(l, &cfg, bsaOpts)
				if err != nil {
					return nil, err
				}
				if res.Schedule.II > res.Schedule.MinII {
					oracleLoops = append(oracleLoops, l)
				}
			}
		}
		s.primeExact(cfg, exactOpts, oracleLoops)

		var all optGapAgg
		for _, b := range s.Benchmarks {
			agg, err := s.optGapBench(b, &cfg, bsaOpts, exactOpts)
			if err != nil {
				return nil, err
			}
			all.merge(agg)
			t.AddRow(agg.row(cfg.Name, b.Name)...)
		}
		t.AddRow(all.row(cfg.Name, "ALL")...)
	}
	return t, nil
}

// primeExact batches the oracle compilations across the worker pool;
// errors are cached and re-surfaced during the serial row walk.
func (s *Suite) primeExact(cfg machine.Config, opts core.Options, loops []*corpus.Loop) {
	if len(loops) == 0 {
		return
	}
	reqs := make([]pipeline.Request, 0, len(loops))
	for _, l := range loops {
		reqs = append(reqs, pipeline.Request{Loop: l, Cfg: cfg, Opts: opts})
	}
	s.Pipe.CompileBatch(reqs)
}

// optGapAgg accumulates one row of the table.
type optGapAgg struct {
	loops, compared, proved, gaps, unsettled int
	bsaIISum, exactIISum                     int
	iiRatios                                 []float64
	bsaAcc, exactAcc                         stats.Accum
}

func (a *optGapAgg) merge(b *optGapAgg) {
	a.loops += b.loops
	a.compared += b.compared
	a.proved += b.proved
	a.gaps += b.gaps
	a.unsettled += b.unsettled
	a.bsaIISum += b.bsaIISum
	a.exactIISum += b.exactIISum
	a.iiRatios = append(a.iiRatios, b.iiRatios...)
	a.bsaAcc.Merge(b.bsaAcc)
	a.exactAcc.Merge(b.exactAcc)
}

func (a *optGapAgg) row(cfg, bench string) []any {
	meanBSA, meanExact := 0.0, 0.0
	if a.compared > 0 {
		meanBSA = float64(a.bsaIISum) / float64(a.compared)
		meanExact = float64(a.exactIISum) / float64(a.compared)
	}
	return []any{cfg, bench, a.loops, a.compared, a.proved, a.gaps, a.unsettled,
		meanBSA, meanExact, stats.GeoMean(a.iiRatios), a.bsaAcc.Relative(a.exactAcc)}
}

// optGapBench scores one benchmark on one machine.
func (s *Suite) optGapBench(b *corpus.Benchmark, cfg *machine.Config, bsaOpts, exactOpts core.Options) (*optGapAgg, error) {
	agg := &optGapAgg{}
	for _, l := range b.Loops {
		agg.loops++
		bsaRes, err := s.compile(l, cfg, bsaOpts)
		if err != nil {
			return nil, err
		}
		bsaII := bsaRes.Schedule.II

		exactII := 0
		exactSched := bsaRes.Schedule
		switch {
		case bsaII == bsaRes.Schedule.MinII:
			// MinII is a scheduler-independent lower bound: BSA is optimal
			// and the oracle has nothing to add.
			exactII = bsaII
			agg.proved++
		default:
			exRes, err := s.compile(l, cfg, exactOpts)
			switch {
			case errors.Is(err, exact.ErrTooLarge) || errors.Is(err, exact.ErrBudget):
				agg.unsettled++
				continue
			case err != nil:
				return nil, err
			}
			if !exRes.Exact.Proved {
				// A schedule without a minimality proof bounds the gap from
				// one side only; treat it as unsettled rather than understate.
				agg.unsettled++
				continue
			}
			exactII = exRes.Schedule.II
			exactSched = exRes.Schedule
			switch {
			case exactII < bsaII:
				agg.gaps++
			case exactII == bsaII:
				agg.proved++
			default:
				// The oracle contract (a Proved exact II never exceeds
				// BSA's) just broke: that is a search-space bug in one of
				// the two schedulers, not a table row.
				return nil, fmt.Errorf("experiments: %s/%s on %s: proved exact II %d above BSA II %d — oracle contract violated",
					b.Name, l.Graph.Name, cfg.Name, exactII, bsaII)
			}
		}

		agg.compared++
		agg.bsaIISum += bsaII
		agg.exactIISum += exactII
		agg.iiRatios = append(agg.iiRatios, float64(bsaII)/float64(exactII))
		w := int64(l.Weight)
		ops := int64(l.Iters) * int64(l.Ops()) * w
		bsaCycles := bsaRes.Schedule.Cycles(l.Iters)
		// The oracle minimises II, not stage count, so its first-found
		// schedule may pay more prologue/epilogue than BSA's at the same
		// II; any valid schedule bounds the optimum's cycles from above,
		// so take the cheaper of the two.
		exactCycles := exactSched.Cycles(l.Iters)
		if bsaCycles < exactCycles {
			exactCycles = bsaCycles
		}
		agg.bsaAcc.Add(ops, int64(bsaCycles)*w)
		agg.exactAcc.Add(ops, int64(exactCycles)*w)
	}
	return agg, nil
}
