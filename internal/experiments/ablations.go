package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
)

// AblationPolicy (A1) isolates the cluster-selection heuristic: the
// paper's out-edge profit versus round-robin and first-fit placement on
// the bus-starved 4-cluster machine.  The profit heuristic must win.
func (s *Suite) AblationPolicy() (*report.Table, error) {
	t := report.New("Ablation A1: cluster-selection policy (4-cluster, 1 bus, L=1)",
		"policy", "relative IPC")
	cfg, err := clusterConfig(4, 1, 1)
	if err != nil {
		return nil, err
	}
	// opts lives in the table so the prime batch and the row walk share
	// one grid.
	policies := []struct {
		name string
		opts core.Options
	}{
		{"profit (paper)", core.Options{Sched: sched.Options{Policy: sched.PolicyProfit}}},
		{"round-robin", core.Options{Sched: sched.Options{Policy: sched.PolicyRoundRobin}}},
		{"first-fit", core.Options{Sched: sched.Options{Policy: sched.PolicyFirstFit}}},
	}
	scens := []scenario{{machine.Unified(), core.Options{}}}
	for _, p := range policies {
		scens = append(scens, scenario{cfg, p.opts})
	}
	s.prime(scens)
	for _, p := range policies {
		rels, err := s.relIPCs(&cfg, p.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.name, stats.Mean(rels))
	}
	return t, nil
}

// AblationOrdering (A2) isolates the SMS node ordering against a plain
// topological order, with the rest of BSA unchanged.
func (s *Suite) AblationOrdering() (*report.Table, error) {
	t := report.New("Ablation A2: node ordering (4-cluster, 1 bus, L=1)",
		"ordering", "relative IPC")
	cfg, err := clusterConfig(4, 1, 1)
	if err != nil {
		return nil, err
	}

	// SMS is the default; the topological variant needs a per-loop order,
	// so it bypasses the shared cache.
	rels, err := s.relIPCs(&cfg, core.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("SMS (paper)", stats.Mean(rels))

	var topoRels []float64
	uni := machine.Unified()
	for _, b := range s.Benchmarks {
		base, err := s.benchIPC(b, &uni, core.Options{})
		if err != nil {
			return nil, err
		}
		var acc stats.Accum
		for _, l := range b.Loops {
			sc, err := sched.ScheduleGraph(l.Graph, &cfg, &sched.Options{Order: order.Topological(l.Graph)})
			if err != nil {
				return nil, fmt.Errorf("topological order: %s: %w", l.Graph.Name, err)
			}
			acc.Add(int64(l.Iters)*int64(l.Ops())*int64(l.Weight),
				int64(sc.Cycles(l.Iters))*int64(l.Weight))
		}
		topoRels = append(topoRels, acc.Relative(base))
	}
	t.AddRow("topological", stats.Mean(topoRels))
	return t, nil
}

// AblationUnrollFactor (A3) sweeps the unconditional unroll factor on
// the 4-cluster machine: the paper sets U to the cluster count; the
// sweep shows U=4 is the sweet spot and U=8 pays code size for little
// IPC.
func (s *Suite) AblationUnrollFactor() (*report.Table, error) {
	t := report.New("Ablation A3: unroll factor (4-cluster, 1 bus, L=2)",
		"factor", "relative IPC")
	cfg, err := clusterConfig(4, 1, 2)
	if err != nil {
		return nil, err
	}
	factors := []int{1, 2, 4, 8}
	optsFor := func(factor int) core.Options {
		if factor > 1 {
			return core.Options{Strategy: core.UnrollAll, Factor: factor}
		}
		return core.Options{}
	}
	scens := []scenario{{machine.Unified(), core.Options{}}}
	for _, factor := range factors {
		scens = append(scens, scenario{cfg, optsFor(factor)})
	}
	s.prime(scens)
	for _, factor := range factors {
		opts := optsFor(factor)
		rels, err := s.relIPCs(&cfg, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("x%d", factor), stats.Mean(rels))
	}
	return t, nil
}
