package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/timing"
)

// Table1 reproduces Table 1: the evaluated configurations and the
// operation latencies (the paper's table is OCR-damaged; latencies
// follow the SMS/ICTINEO papers as documented in DESIGN.md).
func Table1() *report.Table {
	t := report.New("Table 1: clustered VLIW configurations and latencies",
		"config", "clusters", "INT/cl", "FP/cl", "MEM/cl", "regs/cl", "total issue")
	for _, cfg := range []machine.Config{
		machine.Unified(), machine.TwoCluster(1, 1), machine.FourCluster(1, 1),
	} {
		t.AddRow(cfg.Name, cfg.NClusters,
			cfg.FUsPerCluster[machine.FUInteger],
			cfg.FUsPerCluster[machine.FUFloat],
			cfg.FUsPerCluster[machine.FUMemory],
			cfg.RegsPerCluster, cfg.TotalIssueWidth())
	}
	lat := report.New("Operation latencies (cycles)", "op", "fu", "latency")
	for c := machine.OpClass(0); c < machine.NumOpClasses; c++ {
		lat.AddRow(c.String(), c.FU().String(), c.Latency())
	}
	t.Note = lat.String()
	return t
}

// Table2 reproduces Table 2: per-configuration cycle times from the
// Palacharla delay model (0.18 um), for one and two buses.
func Table2() *report.Table {
	model := timing.DefaultModel()
	t := report.New("Table 2: cycle times (Palacharla model, 0.18um)",
		"config", "RF ports", "bypass (ps)", "RF access (ps)", "cycle (ps)")
	cfgs := []machine.Config{
		machine.Unified(),
		machine.TwoCluster(1, 1), machine.TwoCluster(2, 1),
		machine.FourCluster(1, 1), machine.FourCluster(2, 1),
	}
	for _, row := range model.Table2(cfgs) {
		t.AddRow(row.Config, row.Ports,
			fmt.Sprintf("%.0f", row.BypassPS),
			fmt.Sprintf("%.0f", row.RegFilePS),
			fmt.Sprintf("%.0f", row.CyclePS))
	}
	return t
}
