package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/stats"
)

// Fig4Buses is the bus-count sweep of Figure 4's x axis.
var Fig4Buses = []int{1, 2, 3, 4, 6, 8, 12}

// Fig4 reproduces Figure 4 for a cluster count (2 or 4): average
// relative IPC (clustered vs unified, no unrolling) as the number of
// buses sweeps, for the paper's BSA and the Nystrom & Eichenberger
// two-phase baseline, at bus latencies 1 and 2.
//
// Paper shape to check: BSA >= N&E everywhere; both curves fall as buses
// get scarce or slow, N&E falling harder.
func (s *Suite) Fig4(clusters int) (*report.Table, error) {
	headers := []string{"series"}
	for _, b := range Fig4Buses {
		headers = append(headers, fmt.Sprintf("B=%d", b))
	}
	t := report.New(fmt.Sprintf("Figure 4 (%d-cluster): relative IPC vs number of buses", clusters), headers...)
	t.Note = "mean over benchmarks of IPC(clustered)/IPC(unified); no unrolling"

	// opts is shared between the prime batch and the row walk so the
	// two grids cannot drift apart.
	type series struct {
		label string
		opts  core.Options
		lat   int
	}
	all := []series{
		{"BSA L=1", core.Options{Scheduler: core.BSA}, 1},
		{"BSA L=2", core.Options{Scheduler: core.BSA}, 2},
		{"N&E L=1", core.Options{Scheduler: core.NystromEichenberger}, 1},
		{"N&E L=2", core.Options{Scheduler: core.NystromEichenberger}, 2},
	}

	// Fan the whole sweep (plus the unified baseline every relative-IPC
	// row divides by) through the pipeline before the serial row walk.
	scens := []scenario{{machine.Unified(), core.Options{}}}
	for _, ser := range all {
		for _, buses := range Fig4Buses {
			cfg, err := clusterConfig(clusters, buses, ser.lat)
			if err != nil {
				return nil, err
			}
			scens = append(scens, scenario{cfg, ser.opts})
		}
	}
	s.prime(scens)

	for _, ser := range all {
		row := []any{ser.label}
		for _, buses := range Fig4Buses {
			cfg, err := clusterConfig(clusters, buses, ser.lat)
			if err != nil {
				return nil, err
			}
			rels, err := s.relIPCs(&cfg, ser.opts)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Mean(rels))
		}
		t.AddRow(row...)
	}
	return t, nil
}
