package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exact"
	"repro/internal/machine"
)

// trimmedSuite keeps the tests fast: two contrasting benchmarks
// (recurrence-heavy tomcatv, parallel swim) with three loops each.
func trimmedSuite(t *testing.T) *Suite {
	t.Helper()
	picked := corpus.Trimmed([]string{"tomcatv", "swim"}, 3)
	if len(picked) != 2 {
		t.Fatal("trimmed suite missing benchmarks")
	}
	return NewSuiteWith(picked)
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", cell, err)
	}
	return f
}

func TestFig4Shape(t *testing.T) {
	s := trimmedSuite(t)
	tab, err := s.Fig4(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 series", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(Fig4Buses)+1 {
			t.Fatalf("row %v has %d cells", row, len(row))
		}
		first := cellFloat(t, row[1])
		last := cellFloat(t, row[len(row)-1])
		if first <= 0 || first > 1.25 || last <= 0 || last > 1.25 {
			t.Errorf("series %s: relative IPC out of range: %v", row[0], row)
		}
		// Relative IPC with many buses must not be materially below the
		// single-bus point: bandwidth only helps.
		if last < first-0.02 {
			t.Errorf("series %s: more buses hurt: B=1 %.3f vs B=max %.3f", row[0], first, last)
		}
	}
}

func TestFig4BSABeatsNEUnderPressure(t *testing.T) {
	s := trimmedSuite(t)
	tab, err := s.Fig4(4)
	if err != nil {
		t.Fatal(err)
	}
	// Row order: BSA L=1, BSA L=2, N&E L=1, N&E L=2; column 1 is B=1.
	bsaL2 := cellFloat(t, tab.Rows[1][1])
	neL2 := cellFloat(t, tab.Rows[3][1])
	if bsaL2+1e-9 < neL2 {
		t.Errorf("B=1/L=2: BSA %.3f below N&E %.3f (paper: single-pass wins under bus pressure)",
			bsaL2, neL2)
	}
}

func TestFig8Shape(t *testing.T) {
	s := trimmedSuite(t)
	for _, strat := range []core.Strategy{core.NoUnroll, core.UnrollAll, core.SelectiveUnroll} {
		tab, err := s.Fig8(2, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 3 { // two benchmarks + AVERAGE
			t.Fatalf("rows = %d, want 3", len(tab.Rows))
		}
		if tab.Rows[2][0] != "AVERAGE" {
			t.Errorf("last row = %q, want AVERAGE", tab.Rows[2][0])
		}
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if v := cellFloat(t, cell); v <= 0 || v > 12 {
					t.Errorf("%s: IPC %v out of range", row[0], v)
				}
			}
		}
	}
}

func TestFig8UnrollingRecoversIPC(t *testing.T) {
	// The paper's central Figure 8 claim: on the worst bus configuration
	// (1 bus, latency 4), unrolling recovers most of the clustered
	// machine's lost IPC.
	s := trimmedSuite(t)
	noUnroll, err := s.Fig8(2, core.NoUnroll)
	if err != nil {
		t.Fatal(err)
	}
	unrolled, err := s.Fig8(2, core.UnrollAll)
	if err != nil {
		t.Fatal(err)
	}
	// Column 3 is B1/L4; last row is AVERAGE.
	avgNo := cellFloat(t, noUnroll.Rows[2][3])
	avgUn := cellFloat(t, unrolled.Rows[2][3])
	if avgUn < avgNo {
		t.Errorf("unrolling lowered B1/L4 average IPC: %.3f vs %.3f", avgUn, avgNo)
	}
}

func TestFig9Shape(t *testing.T) {
	s := trimmedSuite(t)
	tab, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 bars", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mean := cellFloat(t, row[1])
		if mean <= 1 {
			t.Errorf("%s: speedup %.3f <= 1 (clustering must win once cycle time counts)",
				row[0], mean)
		}
	}
	// The paper's best bar: 4-cluster SU B=1 beats 2-cluster everything.
	best := cellFloat(t, tab.Rows[6][1]) // 4-cluster SU B=1
	for i := 0; i < 4; i++ {
		if two := cellFloat(t, tab.Rows[i][1]); two > best {
			t.Errorf("2-cluster bar %s (%.3f) beats 4-cluster SU B=1 (%.3f)",
				tab.Rows[i][0], two, best)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	s := trimmedSuite(t)
	tab, err := s.Fig10(2)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "unified no-unroll" {
		t.Fatalf("first row = %q", tab.Rows[0][0])
	}
	if v := cellFloat(t, tab.Rows[0][1]); v != 1.0 {
		t.Errorf("baseline normalised size = %v, want 1.0", v)
	}
	var noUnroll, unrollAll, selective float64
	for _, row := range tab.Rows {
		useful := cellFloat(t, row[2])
		switch row[0] {
		case "no-unroll B1/L1":
			noUnroll = useful
		case "unroll B1/L1":
			unrollAll = useful
		case "selective B1/L1":
			selective = useful
		}
		if useful <= 0 {
			t.Errorf("%s: useful size %v", row[0], useful)
		}
	}
	if unrollAll < noUnroll {
		t.Errorf("unroll-all code (%.3f) smaller than no-unroll (%.3f)", unrollAll, noUnroll)
	}
	if selective > unrollAll+1e-9 {
		t.Errorf("selective code (%.3f) larger than unroll-all (%.3f)", selective, unrollAll)
	}
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 configurations", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[6] != "12" {
			t.Errorf("%s: total issue %s, want 12", row[0], row[6])
		}
	}
	if !strings.Contains(tab.Note, "fdiv") {
		t.Error("latency table missing from note")
	}
}

func TestTable2Static(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	uni := cellFloat(t, tab.Rows[0][4])
	fourB1 := cellFloat(t, tab.Rows[3][4])
	if ratio := uni / fourB1; ratio < 3.2 || ratio > 4.2 {
		t.Errorf("unified/4-cluster cycle ratio %.2f outside the calibrated window", ratio)
	}
}

func TestAblations(t *testing.T) {
	s := trimmedSuite(t)
	pol, err := s.AblationPolicy()
	if err != nil {
		t.Fatal(err)
	}
	profit := cellFloat(t, pol.Rows[0][1])
	for _, row := range pol.Rows[1:] {
		if v := cellFloat(t, row[1]); v > profit+0.03 {
			t.Errorf("policy %s (%.3f) clearly beats profit (%.3f)", row[0], v, profit)
		}
	}
	ord, err := s.AblationOrdering()
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Rows) != 2 {
		t.Fatalf("ordering rows = %d", len(ord.Rows))
	}
	uf, err := s.AblationUnrollFactor()
	if err != nil {
		t.Fatal(err)
	}
	x1 := cellFloat(t, uf.Rows[0][1])
	x4 := cellFloat(t, uf.Rows[2][1])
	if x4 < x1 {
		t.Errorf("unroll x4 (%.3f) below x1 (%.3f) on the bus-starved machine", x4, x1)
	}
}

func TestCompileCacheHits(t *testing.T) {
	s := trimmedSuite(t)
	cfg := machine.TwoCluster(1, 1)
	l := s.Benchmarks[0].Loops[0]
	a, err := s.compile(l, &cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.compile(l, &cfg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical compilation")
	}
}

func TestClusterConfigRejectsUnknown(t *testing.T) {
	if _, err := clusterConfig(3, 1, 1); err == nil {
		t.Error("3-cluster accepted")
	}
}

func TestSuitePipelineStats(t *testing.T) {
	s := trimmedSuite(t)
	if _, err := s.Fig4(2); err != nil {
		t.Fatal(err)
	}
	st := s.Pipe.Stats()
	if st.Compilations == 0 {
		t.Fatal("pipeline saw no compilations")
	}
	if st.Compilations != st.Misses {
		t.Errorf("compilations %d != misses %d", st.Compilations, st.Misses)
	}
	// The serial row walk revisits everything prime compiled, so the
	// cache must be doing real work.
	if st.Hits == 0 {
		t.Error("figure build produced no cache hits")
	}
	// A second identical figure is answered entirely from cache.
	before := st.Compilations
	if _, err := s.Fig4(2); err != nil {
		t.Fatal(err)
	}
	if after := s.Pipe.Stats().Compilations; after != before {
		t.Errorf("rebuilding Fig4 recompiled (%d -> %d compilations)", before, after)
	}
}

// TestOptGapTableShape runs the optimality-gap driver on the trimmed
// suite with a tight oracle budget and checks the structural
// invariants every row must satisfy: compared+unsettled <= loops, BSA's
// mean II never below the exact mean, the geometric-mean ratio >= 1 on
// compared loops, and a closing ALL row per config.
func TestOptGapTableShape(t *testing.T) {
	s := trimmedSuite(t)
	tbl, err := s.OptGapTable(exact.Budget{MaxNodes: 16, MaxSteps: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	nConfigs := len(machine.Table1Configs())
	wantRows := nConfigs * (len(s.Benchmarks) + 1) // + ALL per config
	if len(tbl.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), wantRows)
	}
	allRows := 0
	for _, row := range tbl.Rows {
		loops := int(cellFloat(t, row[2]))
		cmp := int(cellFloat(t, row[3]))
		opt := int(cellFloat(t, row[4]))
		gaps := int(cellFloat(t, row[5]))
		na := int(cellFloat(t, row[6]))
		if cmp+na > loops {
			t.Errorf("row %v: cmp %d + n/a %d exceeds loops %d", row, cmp, na, loops)
		}
		if opt+gaps != cmp {
			t.Errorf("row %v: opt %d + gaps %d != cmp %d", row, opt, gaps, cmp)
		}
		if cmp > 0 {
			bsaII, exactII := cellFloat(t, row[7]), cellFloat(t, row[8])
			if bsaII < exactII-1e-9 {
				t.Errorf("row %v: mean BSA II %v below exact %v", row, bsaII, exactII)
			}
			if ratio := cellFloat(t, row[9]); ratio < 1-1e-9 {
				t.Errorf("row %v: gm ratio %v < 1", row, ratio)
			}
			if ipc := cellFloat(t, row[10]); ipc > 1+1e-9 {
				t.Errorf("row %v: BSA IPC gap %v above 1 (beats the optimum?)", row, ipc)
			}
		}
		if row[1] == "ALL" {
			allRows++
		}
	}
	if allRows != nConfigs {
		t.Errorf("ALL rows = %d, want one per config (%d)", allRows, nConfigs)
	}
}
