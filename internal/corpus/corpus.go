// Package corpus generates the experimental workload: a deterministic,
// synthetic stand-in for the SPECfp95 innermost loops that the paper
// extracted with the ICTINEO compiler (which we do not have).
//
// Every benchmark is described by a structural profile — loop count and
// size, operation mix, recurrence density and length, loop-carried
// dependence probability and distances, iteration counts and execution
// weights — encoding the published characteristics that actually drive
// the paper's results: *swim*/*mgrid*/*hydro2d* are wide and nearly
// recurrence-free (unrolling wins big), *tomcatv* carries long
// recurrences (the paper's noted 4-cluster exception), *fpppp* has huge
// straight-line bodies that are resource- and register-bound, *wave5*
// is memory-access heavy.  The generator is seeded per benchmark, so
// every run of every experiment sees the identical suite.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// Loop is one innermost loop of the suite.  The JSON tags are the
// service wire shape (internal/wire): a loop serializes with its full
// dependence graph via the ddg codec.
type Loop struct {
	// Graph is the loop body's dependence graph.
	Graph *ddg.Graph `json:"graph"`
	// Iters is the trip count per invocation (> 4; the paper only
	// schedules innermost loops with more than four iterations).
	Iters int `json:"iters,omitempty"`
	// Weight is the number of invocations, scaling this loop's share of
	// the benchmark's executed instructions.
	Weight int `json:"weight,omitempty"`
	// Bench is the owning benchmark's name.
	Bench string `json:"bench,omitempty"`
}

// Ops returns the operation count of one original loop iteration.
func (l *Loop) Ops() int { return l.Graph.NumNodes() }

// Benchmark is one synthetic SPECfp95 program.
type Benchmark struct {
	Name  string
	Loops []*Loop
}

// OpMix holds relative operation-class weights (they need not sum to 1).
type OpMix struct {
	Load, Store, FAdd, FMul, FDiv, IAdd, IMul float64
}

// Profile describes one benchmark's loop population.
type Profile struct {
	// Name labels the benchmark.
	Name string
	// Seed makes the benchmark reproducible.
	Seed int64
	// NLoops is the number of innermost loops.
	NLoops int
	// MinOps and MaxOps bound the body size.
	MinOps, MaxOps int
	// Mix weights the operation classes.
	Mix OpMix
	// RecurrenceProb is the chance a loop carries a recurrence cycle.
	RecurrenceProb float64
	// RecMinLen and RecMaxLen bound the recurrence length in operations.
	RecMinLen, RecMaxLen int
	// CrossIterProb is the chance of each extra loop-carried (non-cycle)
	// dependence; up to three are attempted per loop.
	CrossIterProb float64
	// MaxDistance bounds loop-carried distances.
	MaxDistance int
	// MinIters and MaxIters bound trip counts.
	MinIters, MaxIters int
	// MaxWeight bounds invocation counts (hot loops are heavy).
	MaxWeight int
}

// Profiles returns the ten SPECfp95 profiles in the paper's Figure 8
// order.  The structural parameters are the substitution documented in
// DESIGN.md.
func Profiles() []Profile {
	return []Profile{
		{Name: "tomcatv", Seed: 101, NLoops: 8, MinOps: 14, MaxOps: 38,
			Mix:            OpMix{Load: 0.30, Store: 0.10, FAdd: 0.28, FMul: 0.20, FDiv: 0.02, IAdd: 0.09, IMul: 0.01},
			RecurrenceProb: 0.8, RecMinLen: 3, RecMaxLen: 6,
			CrossIterProb: 0.5, MaxDistance: 2, MinIters: 60, MaxIters: 260, MaxWeight: 60},
		{Name: "swim", Seed: 102, NLoops: 8, MinOps: 16, MaxOps: 34,
			Mix:            OpMix{Load: 0.32, Store: 0.12, FAdd: 0.30, FMul: 0.18, FDiv: 0.0, IAdd: 0.08, IMul: 0.0},
			RecurrenceProb: 0.1, RecMinLen: 1, RecMaxLen: 2,
			CrossIterProb: 0.1, MaxDistance: 1, MinIters: 120, MaxIters: 520, MaxWeight: 80},
		{Name: "su2cor", Seed: 103, NLoops: 9, MinOps: 10, MaxOps: 30,
			Mix:            OpMix{Load: 0.28, Store: 0.10, FAdd: 0.26, FMul: 0.24, FDiv: 0.01, IAdd: 0.10, IMul: 0.01},
			RecurrenceProb: 0.4, RecMinLen: 1, RecMaxLen: 3,
			CrossIterProb: 0.3, MaxDistance: 2, MinIters: 40, MaxIters: 200, MaxWeight: 50},
		{Name: "hydro2d", Seed: 104, NLoops: 9, MinOps: 10, MaxOps: 28,
			Mix:            OpMix{Load: 0.30, Store: 0.12, FAdd: 0.28, FMul: 0.20, FDiv: 0.01, IAdd: 0.09, IMul: 0.0},
			RecurrenceProb: 0.2, RecMinLen: 1, RecMaxLen: 2,
			CrossIterProb: 0.2, MaxDistance: 1, MinIters: 80, MaxIters: 300, MaxWeight: 70},
		{Name: "mgrid", Seed: 105, NLoops: 7, MinOps: 20, MaxOps: 44,
			Mix:            OpMix{Load: 0.36, Store: 0.08, FAdd: 0.32, FMul: 0.16, FDiv: 0.0, IAdd: 0.08, IMul: 0.0},
			RecurrenceProb: 0.1, RecMinLen: 1, RecMaxLen: 2,
			CrossIterProb: 0.15, MaxDistance: 1, MinIters: 100, MaxIters: 400, MaxWeight: 90},
		{Name: "applu", Seed: 106, NLoops: 9, MinOps: 14, MaxOps: 34,
			Mix:            OpMix{Load: 0.28, Store: 0.10, FAdd: 0.26, FMul: 0.22, FDiv: 0.02, IAdd: 0.10, IMul: 0.01},
			RecurrenceProb: 0.5, RecMinLen: 2, RecMaxLen: 4,
			CrossIterProb: 0.3, MaxDistance: 2, MinIters: 30, MaxIters: 160, MaxWeight: 50},
		{Name: "turb3d", Seed: 107, NLoops: 8, MinOps: 12, MaxOps: 30,
			Mix:            OpMix{Load: 0.26, Store: 0.10, FAdd: 0.28, FMul: 0.24, FDiv: 0.0, IAdd: 0.10, IMul: 0.02},
			RecurrenceProb: 0.3, RecMinLen: 1, RecMaxLen: 3,
			CrossIterProb: 0.25, MaxDistance: 2, MinIters: 60, MaxIters: 260, MaxWeight: 60},
		{Name: "apsi", Seed: 108, NLoops: 9, MinOps: 10, MaxOps: 28,
			Mix:            OpMix{Load: 0.28, Store: 0.10, FAdd: 0.26, FMul: 0.20, FDiv: 0.04, IAdd: 0.11, IMul: 0.01},
			RecurrenceProb: 0.45, RecMinLen: 1, RecMaxLen: 3,
			CrossIterProb: 0.3, MaxDistance: 2, MinIters: 40, MaxIters: 180, MaxWeight: 40},
		{Name: "fpppp", Seed: 109, NLoops: 5, MinOps: 44, MaxOps: 72,
			Mix:            OpMix{Load: 0.24, Store: 0.08, FAdd: 0.30, FMul: 0.30, FDiv: 0.02, IAdd: 0.06, IMul: 0.0},
			RecurrenceProb: 0.15, RecMinLen: 1, RecMaxLen: 2,
			CrossIterProb: 0.1, MaxDistance: 1, MinIters: 20, MaxIters: 80, MaxWeight: 30},
		{Name: "wave5", Seed: 110, NLoops: 8, MinOps: 10, MaxOps: 24,
			Mix:            OpMix{Load: 0.34, Store: 0.14, FAdd: 0.22, FMul: 0.16, FDiv: 0.01, IAdd: 0.12, IMul: 0.01},
			RecurrenceProb: 0.35, RecMinLen: 1, RecMaxLen: 2,
			CrossIterProb: 0.4, MaxDistance: 3, MinIters: 50, MaxIters: 240, MaxWeight: 60},
	}
}

// SPECfp95 generates the full ten-benchmark suite.
func SPECfp95() []*Benchmark {
	profiles := Profiles()
	out := make([]*Benchmark, 0, len(profiles))
	for _, p := range profiles {
		out = append(out, Generate(p))
	}
	return out
}

// Trimmed returns a reduced suite for tests and benchmarks: only the
// named benchmarks, each cut to at most perBench loops, in the order
// SPECfp95 lists them.
func Trimmed(names []string, perBench int) []*Benchmark {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var picked []*Benchmark
	for _, b := range SPECfp95() {
		if !want[b.Name] {
			continue
		}
		loops := b.Loops
		if len(loops) > perBench {
			loops = loops[:perBench]
		}
		picked = append(picked, &Benchmark{Name: b.Name, Loops: loops})
	}
	return picked
}

// Index maps every loop of a suite by its graph name ("tomcatv.loop0"),
// the identity service clients use in loop_ref fields.  Graph names are
// unique across the generated suite; Index panics on a duplicate so a
// corpus change that breaks ref stability fails loudly.
func Index(suite []*Benchmark) map[string]*Loop {
	idx := make(map[string]*Loop)
	for _, b := range suite {
		for _, l := range b.Loops {
			name := l.Graph.Name
			if _, dup := idx[name]; dup {
				panic(fmt.Sprintf("corpus: duplicate loop name %q", name))
			}
			idx[name] = l
		}
	}
	return idx
}

// TotalLoops counts the loops of a suite.
func TotalLoops(suite []*Benchmark) int {
	n := 0
	for _, b := range suite {
		n += len(b.Loops)
	}
	return n
}

// maxRegDemand bounds a loop's spill-free register demand so that every
// generated loop is schedulable on the 16-register 4-cluster files even
// when unrolled (DESIGN.md: the schedulers emit no spill code).
const maxRegDemand = 36

// Generate builds one benchmark from its profile.
func Generate(p Profile) *Benchmark {
	rng := rand.New(rand.NewSource(p.Seed))
	b := &Benchmark{Name: p.Name}
	for i := 0; i < p.NLoops; i++ {
		var g *ddg.Graph
		for {
			g = genLoop(p, rng, i)
			if err := g.Validate(); err != nil {
				panic(fmt.Sprintf("corpus: generated invalid loop: %v", err))
			}
			if regDemand(g) <= maxRegDemand {
				break
			}
		}
		iters := p.MinIters + rng.Intn(p.MaxIters-p.MinIters+1)
		weight := 1 + rng.Intn(p.MaxWeight)
		b.Loops = append(b.Loops, &Loop{Graph: g, Iters: iters, Weight: weight, Bench: p.Name})
	}
	return b
}

// genLoop builds one loop body.
func genLoop(p Profile, rng *rand.Rand, idx int) *ddg.Graph {
	g := ddg.New(fmt.Sprintf("%s.loop%d", p.Name, idx))
	size := p.MinOps + rng.Intn(p.MaxOps-p.MinOps+1)

	// Split the body into class counts following the mix.
	counts := splitMix(p.Mix, size, rng)

	// Loads first: they are the natural sources of the body.
	var producers []int
	for i := 0; i < counts[machine.OpLoad]; i++ {
		producers = append(producers, g.AddNode(fmt.Sprintf("ld%d", i), machine.OpLoad).ID)
	}
	if len(producers) == 0 {
		producers = append(producers, g.AddNode("ld0", machine.OpLoad).ID)
	}

	// Optional recurrence chain: r0 consumes the chain tail one
	// iteration back, the rest feed forward.
	if rng.Float64() < p.RecurrenceProb {
		length := p.RecMinLen
		if p.RecMaxLen > p.RecMinLen {
			length += rng.Intn(p.RecMaxLen - p.RecMinLen + 1)
		}
		var chain []int
		for k := 0; k < length; k++ {
			class := machine.OpFAdd
			if k%3 == 2 {
				class = machine.OpFMul
			}
			n := g.AddNode(fmt.Sprintf("rec%d", k), class)
			if k > 0 {
				g.AddTrueDep(chain[k-1], n.ID, 0)
			}
			// Mix in outside data so the recurrence is fed by the body.
			g.AddTrueDep(producers[rng.Intn(len(producers))], n.ID, 0)
			chain = append(chain, n.ID)
		}
		dist := 1
		if p.MaxDistance > 1 && rng.Float64() < 0.3 {
			dist = 1 + rng.Intn(p.MaxDistance)
		}
		g.AddTrueDep(chain[len(chain)-1], chain[0], dist)
		producers = append(producers, chain...)
	}

	// Arithmetic body: each op consumes one or two prior values, biased
	// toward recent producers (expression trees) with occasional reuse of
	// old ones (common subexpressions -> cross-tree traffic).
	arith := []machine.OpClass{machine.OpFAdd, machine.OpFMul, machine.OpFDiv, machine.OpIAdd, machine.OpIMul}
	for _, class := range arith {
		for i := 0; i < counts[class]; i++ {
			n := g.AddNode(fmt.Sprintf("%s%d", class, i), class)
			nsrc := 1 + rng.Intn(2)
			for s := 0; s < nsrc; s++ {
				g.AddTrueDep(pickProducer(rng, producers), n.ID, 0)
			}
			producers = append(producers, n.ID)
		}
	}

	// Stores sink late values.
	for i := 0; i < counts[machine.OpStore]; i++ {
		n := g.AddNode(fmt.Sprintf("st%d", i), machine.OpStore)
		g.AddTrueDep(pickProducer(rng, producers), n.ID, 0)
	}

	// Extra loop-carried dependences (x[i] = f(x[i-d]) patterns): from a
	// late producer back to an earlier consumer.
	for try := 0; try < 3; try++ {
		if rng.Float64() >= p.CrossIterProb {
			continue
		}
		from := producers[rng.Intn(len(producers))]
		to := rng.Intn(g.NumNodes())
		if to == from || !g.Node(from).Class.ProducesValue() {
			continue
		}
		dist := 1 + rng.Intn(p.MaxDistance)
		g.AddTrueDep(from, to, dist)
	}
	return g
}

// pickProducer prefers recent producers (4:1) over uniformly old ones.
func pickProducer(rng *rand.Rand, producers []int) int {
	if len(producers) == 1 {
		return producers[0]
	}
	if rng.Intn(5) != 0 {
		recent := len(producers) / 3
		if recent < 1 {
			recent = 1
		}
		return producers[len(producers)-1-rng.Intn(recent)]
	}
	return producers[rng.Intn(len(producers))]
}

// splitMix apportions size operations across classes proportionally to
// the mix, randomly rounding the remainder.
func splitMix(mix OpMix, size int, rng *rand.Rand) [machine.NumOpClasses]int {
	weights := [machine.NumOpClasses]float64{
		machine.OpLoad:  mix.Load,
		machine.OpStore: mix.Store,
		machine.OpFAdd:  mix.FAdd,
		machine.OpFMul:  mix.FMul,
		machine.OpFDiv:  mix.FDiv,
		machine.OpIAdd:  mix.IAdd,
		machine.OpIMul:  mix.IMul,
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	var counts [machine.NumOpClasses]int
	assigned := 0
	for c, w := range weights {
		counts[c] = int(w / total * float64(size))
		assigned += counts[c]
	}
	classes := []machine.OpClass{machine.OpLoad, machine.OpFAdd, machine.OpFMul, machine.OpIAdd}
	for assigned < size {
		counts[classes[rng.Intn(len(classes))]]++
		assigned++
	}
	return counts
}

// regDemand is the spill-free lower bound on registers: every produced
// value with a consumer needs one register per iteration of its maximum
// consumer distance, plus one.
func regDemand(g *ddg.Graph) int {
	sum := 0
	for _, n := range g.Nodes() {
		if !n.Class.ProducesValue() {
			continue
		}
		d, used := 0, false
		for _, e := range g.OutEdges(n.ID) {
			if e.Kind != ddg.DepTrue {
				continue
			}
			used = true
			if e.Distance > d {
				d = e.Distance
			}
		}
		if used {
			sum += 1 + d
		}
	}
	return sum
}
