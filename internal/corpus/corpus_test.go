package corpus

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

func TestSuiteShape(t *testing.T) {
	suite := SPECfp95()
	if len(suite) != 10 {
		t.Fatalf("suite = %d benchmarks, want 10", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		names[b.Name] = true
		if len(b.Loops) == 0 {
			t.Errorf("%s has no loops", b.Name)
		}
		for _, l := range b.Loops {
			if l.Iters <= 4 {
				t.Errorf("%s: loop with %d iterations (paper: > 4)", b.Name, l.Iters)
			}
			if l.Weight < 1 {
				t.Errorf("%s: weight %d", b.Name, l.Weight)
			}
			if l.Bench != b.Name {
				t.Errorf("loop bench label %q in %q", l.Bench, b.Name)
			}
		}
	}
	for _, want := range []string{"tomcatv", "swim", "fpppp", "wave5", "mgrid"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a, b := SPECfp95(), SPECfp95()
	for i := range a {
		if len(a[i].Loops) != len(b[i].Loops) {
			t.Fatalf("%s: loop counts differ", a[i].Name)
		}
		for j := range a[i].Loops {
			ga, gb := a[i].Loops[j].Graph, b[i].Loops[j].Graph
			if ga.NumNodes() != gb.NumNodes() || ga.NumEdges() != gb.NumEdges() {
				t.Fatalf("%s loop %d: graphs differ", a[i].Name, j)
			}
			if a[i].Loops[j].Iters != b[i].Loops[j].Iters {
				t.Fatalf("%s loop %d: iters differ", a[i].Name, j)
			}
		}
	}
}

func TestAllLoopsValidate(t *testing.T) {
	for _, b := range SPECfp95() {
		for _, l := range b.Loops {
			if err := l.Graph.Validate(); err != nil {
				t.Errorf("%s/%s: %v", b.Name, l.Graph.Name, err)
			}
		}
	}
}

func TestProfileTraitsHold(t *testing.T) {
	suite := SPECfp95()
	byName := map[string]*Benchmark{}
	for _, b := range suite {
		byName[b.Name] = b
	}
	recurrenceShare := func(b *Benchmark) float64 {
		n := 0
		for _, l := range b.Loops {
			if len(l.Graph.Recurrences()) > 0 {
				n++
			}
		}
		return float64(n) / float64(len(b.Loops))
	}
	// tomcatv must be recurrence-heavy, swim and mgrid nearly free.
	if s := recurrenceShare(byName["tomcatv"]); s < 0.5 {
		t.Errorf("tomcatv recurrence share %.2f, want >= 0.5", s)
	}
	if s := recurrenceShare(byName["swim"]); s > 0.4 {
		t.Errorf("swim recurrence share %.2f, want <= 0.4", s)
	}
	// fpppp bodies must dwarf the others.
	avg := func(b *Benchmark) float64 {
		total := 0
		for _, l := range b.Loops {
			total += l.Ops()
		}
		return float64(total) / float64(len(b.Loops))
	}
	if avg(byName["fpppp"]) < 1.5*avg(byName["wave5"]) {
		t.Errorf("fpppp bodies (%.0f ops) not much larger than wave5 (%.0f)",
			avg(byName["fpppp"]), avg(byName["wave5"]))
	}
}

func TestEveryLoopSchedulesOnEveryConfig(t *testing.T) {
	// The whole corpus must be schedulable everywhere the experiments go:
	// unified, 2- and 4-cluster, 1-2 buses, latencies 1-4, plus the
	// unrolled variants used by Figure 8.
	if testing.Short() {
		t.Skip("corpus-wide scheduling sweep")
	}
	configs := []machine.Config{
		machine.Unified(),
		machine.TwoCluster(1, 1), machine.TwoCluster(2, 4),
		machine.FourCluster(1, 1), machine.FourCluster(2, 4),
	}
	for _, b := range SPECfp95() {
		for _, l := range b.Loops {
			for i := range configs {
				if _, err := sched.ScheduleGraph(l.Graph, &configs[i], nil); err != nil {
					t.Errorf("%s/%s on %s: %v", b.Name, l.Graph.Name, configs[i].Name, err)
				}
			}
		}
	}
}

func TestRegDemandBounded(t *testing.T) {
	for _, b := range SPECfp95() {
		for _, l := range b.Loops {
			if d := regDemand(l.Graph); d > maxRegDemand {
				t.Errorf("%s/%s: register demand %d > %d", b.Name, l.Graph.Name, d, maxRegDemand)
			}
		}
	}
}

func TestTotalLoops(t *testing.T) {
	suite := SPECfp95()
	want := 0
	for _, b := range suite {
		want += len(b.Loops)
	}
	if got := TotalLoops(suite); got != want || got < 50 {
		t.Errorf("TotalLoops = %d, want %d (>= 50)", got, want)
	}
}

func TestLoopOpsHelper(t *testing.T) {
	l := &Loop{Graph: ddg.SampleDotProduct()}
	if l.Ops() != 4 {
		t.Errorf("Ops = %d, want 4", l.Ops())
	}
}

func TestTrimmed(t *testing.T) {
	picked := Trimmed([]string{"tomcatv", "swim"}, 3)
	if len(picked) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(picked))
	}
	for _, b := range picked {
		if len(b.Loops) != 3 {
			t.Errorf("%s trimmed to %d loops, want 3", b.Name, len(b.Loops))
		}
	}
	if got := Trimmed([]string{"no-such-benchmark"}, 1); len(got) != 0 {
		t.Errorf("unknown name produced %d benchmarks", len(got))
	}
}
