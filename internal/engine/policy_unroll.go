// Unroll policies: "no_unroll", "unroll_all" and "selective" — the
// paper's three Figure 8 bar groups, expressed against the
// SchedulerEngine interface so each works identically under BSA, the
// NE baseline and (where supported) the exact oracle.

package engine

import (
	"fmt"
	"time"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/unroll"
)

// noUnrollPolicy schedules the loop as written.
type noUnrollPolicy struct{}

func (noUnrollPolicy) Name() string                            { return string(NoUnroll) }
func (noUnrollPolicy) MaxFactor(*Options, *machine.Config) int { return 1 }

func (noUnrollPolicy) Compile(cc *Context) (*Result, error) {
	run, err := cc.Schedule(cc.Graph)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: run.Schedule, Factor: 1, Exact: run.Exact}, nil
}

// unrollAllPolicy unconditionally unrolls by the cluster count (or
// Options.Factor) and schedules the result.
type unrollAllPolicy struct{}

func (unrollAllPolicy) Name() string { return string(UnrollAll) }
func (unrollAllPolicy) MaxFactor(opts *Options, cfg *machine.Config) int {
	return effectiveFactor(opts, cfg)
}

func (unrollAllPolicy) Compile(cc *Context) (*Result, error) {
	f := effectiveFactor(cc.Opts, cc.Cfg)
	run, err := cc.Schedule(cc.Unroll(f))
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule: run.Schedule,
		Factor:   f,
		Exact:    run.Exact,
		Decision: unroll.Decision{Unrolled: f > 1, Factor: f, BusLimited: run.Schedule.BusLimited},
	}, nil
}

// selectivePolicy applies Figure 6: unroll only bus-limited loops
// whose estimated communication demand fits the unrolled MinII.  The
// decision logic lives in unroll.SelectiveFunc; this adapter supplies
// the engine dispatch and splits the measured time between the unroll
// and schedule stages.
type selectivePolicy struct{}

func (selectivePolicy) Name() string                                  { return string(SelectiveUnroll) }
func (selectivePolicy) MaxFactor(_ *Options, cfg *machine.Config) int { return cfg.NClusters }

func (selectivePolicy) Compile(cc *Context) (*Result, error) {
	if !cc.Engine.Heuristic() {
		return nil, fmt.Errorf(
			"engine: scheduler %q does not support the selective policy (no bus-failure telemetry; see the exact package doc)",
			cc.Engine.Name())
	}
	start := time.Now()
	schedBefore := cc.stageDuration(StageSchedule)
	r, err := unroll.SelectiveFunc(cc.Graph, cc.Cfg, func(g *ddg.Graph) (*sched.Schedule, error) {
		run, err := cc.Schedule(g)
		if err != nil {
			return nil, err
		}
		return run.Schedule, nil
	})
	if err != nil {
		return nil, err
	}
	// Everything SelectiveFunc did outside the two schedule calls —
	// the bus-limited check, the closed-form estimate, the unrolled
	// graph — is unroll-decision work.
	decision := time.Since(start) - (cc.stageDuration(StageSchedule) - schedBefore)
	cc.addStage(StageUnroll, decision, 1)
	return &Result{Schedule: r.Schedule, Factor: r.Decision.Factor, Decision: r.Decision}, nil
}

func init() {
	RegisterStrategy(noUnrollPolicy{}, "none")
	RegisterStrategy(unrollAllPolicy{}, "all")
	RegisterStrategy(selectivePolicy{})
}
