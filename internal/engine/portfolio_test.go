package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

// fuzzSeeds mirrors internal/sched's fuzz seed corpus: the same
// ddg.Random parameters the scheduler fuzzer starts from.
func fuzzSeeds() []*ddg.Graph {
	gs := []*ddg.Graph{
		ddg.SampleDotProduct(), ddg.SampleFigure7(), ddg.SampleStencil(),
	}
	for s := uint64(0); s < 8; s++ {
		gs = append(gs, ddg.Random(s, 0, uint8(s%4)))
	}
	gs = append(gs,
		ddg.Random(1, 6, 3), ddg.Random(42, 10, 5), ddg.Random(7, 14, 7), ddg.Random(123, 9, 6))
	out := gs[:0]
	for _, g := range gs {
		if g != nil { // Random returns nil for graphs that fail Validate
			out = append(out, g)
		}
	}
	return out
}

// TestPortfolioNeverWorseThanCandidates is the differential guarantee:
// on every fuzz-seed graph and a spread of machines, portfolio's
// per-iteration II is <= the best individual strategy's, compared in
// exact rational arithmetic.
func TestPortfolioNeverWorseThanCandidates(t *testing.T) {
	cfgs := []machine.Config{
		machine.Unified(),
		machine.TwoCluster(1, 1),
		machine.TwoCluster(2, 2),
		machine.FourCluster(1, 1),
		machine.FourCluster(2, 4),
	}
	for _, cfg := range cfgs {
		for gi, g := range fuzzSeeds() {
			pf, err := Compile(g, &cfg, &Options{Strategy: Portfolio})
			if err != nil {
				// The portfolio may only fail when every candidate does.
				for _, strat := range portfolioCandidates {
					if _, ierr := Compile(g, &cfg, &Options{Strategy: strat}); ierr == nil {
						t.Errorf("graph %d (%s) on %s: portfolio failed (%v) but %s compiles",
							gi, g.Name, cfg.Name, err, strat)
					}
				}
				continue
			}
			for _, strat := range portfolioCandidates {
				ind, err := Compile(g, &cfg, &Options{Strategy: strat})
				if err != nil {
					continue // a candidate that fails individually cannot beat anyone
				}
				// pf <= ind as rationals: pf.II * ind.F <= ind.II * pf.F.
				if pf.Schedule.II*ind.Factor > ind.Schedule.II*pf.Factor {
					t.Errorf("graph %d (%s) on %s: portfolio %d/%d worse than %s %d/%d",
						gi, g.Name, cfg.Name, pf.Schedule.II, pf.Factor,
						strat, ind.Schedule.II, ind.Factor)
				}
			}
			if pf.Stages.Winner == "" {
				t.Errorf("%s on %s: no winner recorded", g.Name, cfg.Name)
			}
		}
	}
}

// TestPortfolioDeterministicWinner runs the race repeatedly on a
// bus-limited loop and checks the winner, II and factor never change:
// pruning only ever cancels candidates that provably cannot win, so
// scheduling noise cannot leak into the result (the compile cache
// depends on this).
func TestPortfolioDeterministicWinner(t *testing.T) {
	g := ddg.SampleFigure7()
	cfg := machine.FourCluster(1, 2)
	first, err := Compile(g, &cfg, &Options{Strategy: Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		res, err := Compile(g, &cfg, &Options{Strategy: Portfolio})
		if err != nil {
			t.Fatal(err)
		}
		if res.Schedule.II != first.Schedule.II || res.Factor != first.Factor ||
			res.Policy != first.Policy || res.Stages.Winner != first.Stages.Winner {
			t.Fatalf("run %d: II %d factor %d winner %s; first run II %d factor %d winner %s",
				i, res.Schedule.II, res.Factor, res.Stages.Winner,
				first.Schedule.II, first.Factor, first.Stages.Winner)
		}
	}
}

// blockingEngine is a registry-extension fake shaped like a candidate
// that loses a race slowly: scheduling any unrolled graph signals
// entry and then blocks until its context is cancelled; scheduling the
// original graph first waits for that signal (so the race provably has
// a blocked loser) and then compiles instantly via BSA.  Registration
// is process-wide (the registry rejects duplicates), so the per-run
// state swaps through an atomic pointer.
type blockingEngine struct {
	state atomic.Pointer[blockState]
}

type blockState struct {
	orig    *ddg.Graph
	blocked atomic.Int64 // blocked calls that observed cancellation
	entered chan struct{}
	once    sync.Once
}

var testblock = &blockingEngine{}
var testblockOnce sync.Once

func (e *blockingEngine) Name() string    { return "testblock" }
func (e *blockingEngine) Heuristic() bool { return true }

func (e *blockingEngine) Schedule(cc *Context, g *ddg.Graph) (*Run, error) {
	st := e.state.Load()
	if g == st.orig {
		select {
		case <-st.entered:
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("testblock: no loser entered the engine")
		}
		return bsaEngine{}.Schedule(cc, g)
	}
	st.once.Do(func() { close(st.entered) })
	select {
	case <-cc.Context().Done():
		st.blocked.Add(1)
		return nil, cc.Context().Err()
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("testblock: cancellation never arrived")
	}
}

// TestPortfolioCancelsLosers proves the race actually cancels: with an
// engine that blocks on unrolled graphs, the no_unroll candidate hits
// its floor, the pruner cancels the unroll_all candidate mid-block,
// and every goroutine drains (counter-based leak check, no external
// deps).
func TestPortfolioCancelsLosers(t *testing.T) {
	// The race needs real parallelism for a loser to be mid-schedule
	// when the winner finishes.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	// A chain's MinII scales exactly with the factor (ResMII doubles,
	// RecMII is the whole chain), so no_unroll ties every floor and its
	// index priority makes the tie a win: cancellation is guaranteed,
	// not timing-dependent.
	g := ddg.SampleChain(4)
	cfg := machine.TwoCluster(1, 1)
	st := &blockState{orig: g, entered: make(chan struct{})}
	testblock.state.Store(st)
	testblockOnce.Do(func() { RegisterScheduler(testblock) })

	before := runtime.NumGoroutine()
	res, err := Compile(g, &cfg, &Options{Scheduler: "testblock", Strategy: Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor != 1 || res.Policy != string(NoUnroll) {
		t.Errorf("winner = %s factor %d, want no_unroll factor 1", res.Policy, res.Factor)
	}
	if n := st.blocked.Load(); n < 1 {
		t.Errorf("no blocked candidate observed its context cancel (blocked = %d)", n)
	}
	// Losing candidates are recorded with their cancellation.
	var cancelled int
	for _, c := range res.Stages.Candidates {
		if c.Err != "" {
			cancelled++
		}
	}
	if cancelled < 1 {
		t.Errorf("no cancelled candidate in telemetry: %+v", res.Stages.Candidates)
	}
	// All race goroutines join before Compile returns; give the runtime
	// a moment to retire them, then compare the counter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPortfolioParentCancellation: a cancelled caller context aborts
// the whole race with the context error and leaks nothing.
func TestPortfolioParentCancellation(t *testing.T) {
	g := ddg.SampleStencil()
	cfg := machine.FourCluster(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompileCtx(ctx, g, &cfg, &Options{Strategy: Portfolio}); err == nil {
		t.Fatal("cancelled compile succeeded")
	} else if err != context.Canceled {
		// The race may also surface the cancellation wrapped per
		// candidate; context.Canceled must be in the chain.
		if ctx.Err() == nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

// TestPortfolioUnifiedDegenerates: on an unclustered machine every
// candidate is no_unroll, so the race is skipped and the result still
// carries winner telemetry.
func TestPortfolioUnifiedDegenerates(t *testing.T) {
	uni := machine.Unified()
	res := compile(t, ddg.SampleDotProduct(), uni, &Options{Strategy: Portfolio})
	if res.Policy != string(NoUnroll) || res.Stages.Winner != string(NoUnroll) {
		t.Errorf("degenerate portfolio: policy %s winner %s", res.Policy, res.Stages.Winner)
	}
	if res.Schedule.II != 3 {
		t.Errorf("II = %d, want 3", res.Schedule.II)
	}
}

// TestSweepBeatsItsFactors: sweep:k is never worse than no_unroll or
// a fixed unroll_all factor within its range, and records per-factor
// candidates.
func TestSweepBeatsItsFactors(t *testing.T) {
	g := ddg.SampleFigure7()
	cfg := machine.TwoCluster(2, 1)
	sw := compile(t, g, cfg, &Options{Strategy: "sweep:4"})
	for f := 1; f <= 4; f++ {
		ind, err := Compile(g, &cfg, &Options{Strategy: UnrollAll, Factor: f})
		if err != nil {
			continue
		}
		if sw.Schedule.II*ind.Factor > ind.Schedule.II*sw.Factor {
			t.Errorf("sweep %d/%d worse than factor %d (%d/%d)",
				sw.Schedule.II, sw.Factor, f, ind.Schedule.II, ind.Factor)
		}
	}
	if len(sw.Stages.Candidates) != 4 {
		t.Errorf("sweep recorded %d candidates, want 4", len(sw.Stages.Candidates))
	}
	if sw.Stages.Winner == "" {
		t.Error("sweep recorded no winner")
	}
	var won int
	for _, c := range sw.Stages.Candidates {
		if c.Won {
			won++
		}
	}
	if won != 1 {
		t.Errorf("%d candidates marked won, want exactly 1", won)
	}
}

// countingPolicy is the README's "add a policy in one file"
// walkthrough, as a test: a policy registered here — with no edits to
// the engine, core, pipeline, wire or service — is immediately
// compilable by name.
type countingPolicy struct{ calls atomic.Int64 }

func (p *countingPolicy) Name() string                            { return "test-count" }
func (p *countingPolicy) MaxFactor(*Options, *machine.Config) int { return 1 }
func (p *countingPolicy) Compile(cc *Context) (*Result, error) {
	p.calls.Add(1)
	run, err := cc.Schedule(cc.Graph)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: run.Schedule, Factor: 1, Exact: run.Exact}, nil
}

var testCountPolicy = &countingPolicy{}
var testCountOnce sync.Once

func TestRegisterPolicyOneFile(t *testing.T) {
	pol := testCountPolicy
	pol.calls.Store(0)
	testCountOnce.Do(func() { RegisterStrategy(pol, "test-count-alias") })
	uni := machine.Unified()
	res := compile(t, ddg.SampleDotProduct(), uni, &Options{Strategy: "test-count"})
	if res.Policy != "test-count" || res.Stages.Policy != "test-count" {
		t.Errorf("policy telemetry: %s / %s", res.Policy, res.Stages.Policy)
	}
	if _, err := Compile(ddg.SampleDotProduct(), &uni, &Options{Strategy: "test-count-alias"}); err != nil {
		t.Fatal(err)
	}
	if pol.calls.Load() != 2 {
		t.Errorf("policy ran %d times, want 2", pol.calls.Load())
	}
	found := false
	for _, n := range StrategyNames() {
		if n == "test-count" {
			found = true
		}
	}
	if !found {
		t.Error("registered policy missing from StrategyNames")
	}
	if err := sched.Validate(res.Schedule); err != nil {
		t.Error(err)
	}
}
