// Package engine is the pluggable compilation engine behind core:
// an open, name-keyed registry of scheduler engines (BSA, the
// Nystrom & Eichenberger baseline, the exact branch-and-bound oracle)
// and unroll policies (no_unroll, unroll_all, selective, portfolio,
// sweep:<k>), plus the staged CompileContext every compilation is
// threaded through.
//
// The paper's evaluation is a comparison between policies; this
// package makes "add a scheduler or unroll policy" a one-file change:
// implement SchedulerEngine or UnrollPolicy, call RegisterScheduler /
// RegisterStrategy (or RegisterStrategyFamily for parameterised
// names like "sweep:<k>") from the file's init, and the name is
// immediately selectable from core.Compile, the pipeline cache,
// cmd/vliwsched -strategy, cmd/experiments and the service's
// POST /v1/compile, and listed by GET /v1/capabilities.
//
// Every compilation runs in stages — analyze → unroll decision →
// schedule (which subsumes the scheduler's internal ordering) →
// validate — and the CompileContext records per-stage wall time, the
// II-search trajectory and attempt counts into Result.Stages, so a
// client can see where a compile spent its time no matter which
// policy produced it.
package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/unroll"
)

// Scheduler names a registered scheduler engine.  The zero value means
// the default, BSA.  Values are wire-stable names ("bsa", "ne",
// "exact"); any name accepted by ParseScheduler is valid.
type Scheduler string

// Built-in schedulers.
const (
	// BSA is the paper's basic scheduling algorithm: cluster assignment
	// and instruction scheduling in a single pass (Figure 5).
	BSA Scheduler = "bsa"
	// NystromEichenberger is the two-phase baseline: assign first,
	// schedule second, restart on failure with II+1.
	NystromEichenberger Scheduler = "ne"
	// Exact is the branch-and-bound optimality oracle (internal/exact).
	Exact Scheduler = "exact"
)

// String returns the wire name, resolving the zero value to the
// default scheduler.
func (s Scheduler) String() string {
	if s == "" {
		return string(BSA)
	}
	return string(s)
}

// Strategy names a registered unroll policy.  The zero value means the
// default, NoUnroll.  Parameterised policies spell their argument after
// a colon ("sweep:4").
type Strategy string

// Built-in strategies.
const (
	// NoUnroll schedules the loop as written.
	NoUnroll Strategy = "no_unroll"
	// UnrollAll always unrolls by the cluster count (or Factor if set).
	UnrollAll Strategy = "unroll_all"
	// SelectiveUnroll applies Figure 6: unroll only bus-limited loops
	// whose estimated communication demand fits the unrolled MinII.
	SelectiveUnroll Strategy = "selective"
	// Portfolio races NoUnroll, UnrollAll and SelectiveUnroll on a
	// bounded worker group and returns the best per-iteration II,
	// cancelling candidates that provably cannot win.
	Portfolio Strategy = "portfolio"
)

// String returns the wire name, resolving the zero value to the
// default strategy.
func (s Strategy) String() string {
	if s == "" {
		return string(NoUnroll)
	}
	return string(s)
}

// MaxFactor caps Options.Factor at the engine boundary.  It is far
// above anything useful (the wire layer caps much tighter) but small
// enough that a typo cannot multiply a graph into an allocator
// accident.
const MaxFactor = 1024

// Options configures Compile.  The zero value is BSA with no
// unrolling.
type Options struct {
	// Scheduler picks the scheduling engine by registered name;
	// "" means BSA.
	Scheduler Scheduler
	// Strategy picks the unroll policy by registered name;
	// "" means NoUnroll.
	Strategy Strategy
	// Factor overrides the UnrollAll factor; 0 means the cluster count.
	Factor int
	// Sched forwards low-level scheduling options (ablation hooks).
	Sched sched.Options
	// Exact budgets the optimality oracle (Scheduler == Exact only);
	// the zero value means the exact package's defaults.
	Exact exact.Budget
}

// OptionsError is the typed rejection of an invalid Options field at
// the engine boundary, before any scheduling work starts.  The wire
// layer maps it to the invalid_options error code.
type OptionsError struct {
	// Field is the offending option in its wire spelling.
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *OptionsError) Error() string {
	return fmt.Sprintf("engine: invalid options: %s: %s", e.Field, e.Reason)
}

// validateOptions checks opts once at the boundary; every compile path
// shares these rejections, so the wire layer's caps are a second fence,
// not the only one.
func validateOptions(opts *Options, eng SchedulerEngine) error {
	switch {
	case opts.Factor < 0:
		return &OptionsError{"factor", fmt.Sprintf("negative (%d)", opts.Factor)}
	case opts.Factor > MaxFactor:
		return &OptionsError{"factor", fmt.Sprintf("%d over the engine cap %d", opts.Factor, MaxFactor)}
	case opts.Sched.MaxII < 0:
		return &OptionsError{"max_ii", fmt.Sprintf("negative (%d)", opts.Sched.MaxII)}
	case opts.Sched.ForceII < 0:
		return &OptionsError{"force_ii", fmt.Sprintf("negative (%d)", opts.Sched.ForceII)}
	case opts.Sched.Parallel < 0:
		return &OptionsError{"parallel_ii", fmt.Sprintf("negative (%d)", opts.Sched.Parallel)}
	case opts.Exact != (exact.Budget{}) && eng.Name() != string(Exact):
		return &OptionsError{"exact", fmt.Sprintf(
			"oracle budget set but scheduler is %q (budgets apply to scheduler %q only)",
			eng.Name(), Exact)}
	}
	return nil
}

// Result is a finished compilation.
type Result struct {
	// Schedule is the chosen modulo schedule; its Graph field is the
	// unrolled graph when unrolling was applied.
	Schedule *sched.Schedule
	// Factor is the unroll factor embodied in Schedule (>= 1).
	Factor int
	// Decision is the unrolling audit trail (zero value unless the
	// policy unrolls).
	Decision unroll.Decision
	// Exact carries the oracle's proof metadata (Proved, LowerBound,
	// Steps); nil unless the scheduler was Exact.
	Exact *exact.Result
	// FellBack reports that the compile pipeline's UnrollAll→NoUnroll
	// fallback produced this result: Schedule is a non-unrolled schedule
	// even though unrolling was requested.  Decision.FailReason records
	// why.  Always false straight out of Compile.
	FellBack bool
	// Policy is the registered name of the policy that produced the
	// schedule.  For portfolio it is the winning candidate's name; the
	// requested policy is in Stages.Policy.
	Policy string
	// Stages is the per-stage compile telemetry; always populated by
	// Compile.
	Stages *Telemetry
}

// IterationII returns the effective initiation interval per *original*
// loop iteration: II divided by the unroll factor.  This is the number
// the relative-IPC comparisons care about.
func (r *Result) IterationII() float64 {
	return float64(r.Schedule.II) / float64(r.Factor)
}

// iterRatio is the exact rational form of IterationII, used wherever
// two results are compared (portfolio, sweep): integer cross
// multiplication cannot tie-break wrongly the way float division can.
func (r *Result) iterRatio() ratio { return ratio{r.Schedule.II, r.Factor} }

// ratio is a non-negative rational num/den with den >= 1.
type ratio struct{ num, den int }

// less reports a < b by integer cross multiplication.
func (a ratio) less(b ratio) bool { return a.num*b.den < b.num*a.den }

// Compile schedules g for cfg under the requested scheduler and
// strategy.  See CompileCtx.
func Compile(g *ddg.Graph, cfg *machine.Config, opts *Options) (*Result, error) {
	return CompileCtx(context.Background(), g, cfg, opts)
}

// CompileCtx resolves the scheduler engine and unroll policy from the
// registry, validates the options once, and runs the staged
// compilation: analyze → (policy: unroll decision + schedule) →
// validate.  The context cancels the compile at stage boundaries —
// a scheduler run in flight is not interruptible, but no new stage
// starts after ctx is done.  The result carries per-stage telemetry
// in Result.Stages.
func CompileCtx(ctx context.Context, g *ddg.Graph, cfg *machine.Config, opts *Options) (res *Result, err error) {
	if opts == nil {
		opts = &Options{}
	}
	eng, err := LookupScheduler(string(opts.Scheduler))
	if err != nil {
		return nil, err
	}
	pol, err := LookupStrategy(string(opts.Strategy))
	if err != nil {
		return nil, err
	}
	if err := validateOptions(opts, eng); err != nil {
		return nil, err
	}
	// Panic isolation: a panicking engine, policy or validator becomes a
	// typed PanicError, never a crashed caller.  The racing policies add
	// their own per-goroutine recovery (a panic on a worker goroutine
	// would bypass this frame); this is the last fence for the
	// single-goroutine path.
	defer recoverCompile(eng.Name(), pol.Name(), &res, &err)

	cc := newContext(ctx, g, cfg, opts, eng)
	start := time.Now()

	// Analyze: input validation.  The MinII lower bound itself is
	// computed where it is consumed (scheduler runs, portfolio floors)
	// and timed under those stages, not recomputed here to be thrown
	// away.
	astart := time.Now()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("engine: %s: empty graph", g.Name)
	}
	cc.addStage(StageAnalyze, time.Since(astart), 1)

	res, err = pol.Compile(cc)
	if err != nil {
		return nil, err
	}

	// Validate: every schedule that leaves the engine is checked, no
	// matter which policy produced it — a daemon must never serve a
	// structurally invalid schedule.
	vstart := time.Now()
	if err := sched.Validate(res.Schedule); err != nil {
		return nil, fmt.Errorf("engine: policy %s produced an invalid schedule: %w", pol.Name(), err)
	}
	cc.addStage(StageValidate, time.Since(vstart), 1)

	if res.Policy == "" {
		res.Policy = pol.Name()
	}
	res.Stages = cc.telemetry(eng.Name(), pol.Name(), time.Since(start))
	return res, nil
}

// effectiveFactor resolves the unroll-all factor: Options.Factor, or
// the cluster count when unset.
func effectiveFactor(opts *Options, cfg *machine.Config) int {
	if opts.Factor > 0 {
		return opts.Factor
	}
	return cfg.NClusters
}

// MaxFactorFor returns the largest unroll factor the requested policy
// may apply for these options on this machine — the number the service
// uses to bound the graph the scheduler will actually see.  Unknown
// strategy names resolve to 1 (they fail properly at compile time).
func MaxFactorFor(opts *Options, cfg *machine.Config) int {
	pol, err := LookupStrategy(string(opts.Strategy))
	if err != nil {
		return 1
	}
	return pol.MaxFactor(opts, cfg)
}
