// Scheduler adapter: "exact" — the branch-and-bound optimality oracle
// (internal/exact).  Not Heuristic: it produces proofs, not the
// bus-failure telemetry the selective policy keys on.

package engine

import (
	"repro/internal/ddg"
	"repro/internal/exact"
)

type exactEngine struct{}

func (exactEngine) Name() string    { return string(Exact) }
func (exactEngine) Heuristic() bool { return false }

func (exactEngine) Schedule(cc *Context, g *ddg.Graph) (*Run, error) {
	budget := cc.Opts.Exact
	er, err := exact.Schedule(g, cc.Cfg, &budget)
	if err != nil {
		return nil, err
	}
	return &Run{Schedule: er.Schedule, Exact: er, FirstII: er.Schedule.MinII}, nil
}

func init() { RegisterScheduler(exactEngine{}) }
