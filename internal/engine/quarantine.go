// Engine quarantine: a per-engine circuit breaker.  An engine that
// keeps panicking or blowing deadlines (the exact oracle pushed past
// its budgets, a freshly registered experimental scheduler, anything
// under fault injection) is quarantined — taken out of service for a
// cooldown — instead of being allowed to keep eating compile slots or
// threatening the process.  After the cooldown the breaker goes
// half-open and admits a single live probe; a successful probe closes
// the breaker, a failed one reopens it for another cooldown.
//
// The service layer owns one Quarantine, consults Admit before every
// compile, reports each outcome, and surfaces Snapshot through
// /v1/stats and /v1/capabilities.  Requests that set the wire flag
// allow_degraded are rerouted to the cheap degraded engine (bsa,
// no_unroll) while their engine is quarantined; everything else gets a
// 503 with a Retry-After derived from the cooldown remaining.

package engine

import (
	"sort"
	"sync"
	"time"
)

// BreakerState is one engine's circuit state.
type BreakerState int

const (
	// BreakerClosed: healthy, all traffic admitted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: quarantined, traffic refused (or degraded) until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed, one probe in flight; its
	// outcome decides between closed and another open period.
	BreakerHalfOpen
)

// String returns the wire spelling.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// FailureKind classifies a reported failure.
type FailureKind int

const (
	// FailPanic is a recovered compile panic (PanicError).
	FailPanic FailureKind = iota
	// FailTimeout is a compile that outlived its request deadline.
	FailTimeout
)

// BreakerConfig tunes the Quarantine.  The zero value uses the
// defaults noted on each field.
type BreakerConfig struct {
	// Threshold is how many failures within Window open the breaker;
	// <= 0 means 3.
	Threshold int
	// Window is the sliding failure-counting window; <= 0 means 30s.
	Window time.Duration
	// Cooldown is how long an open breaker refuses traffic before
	// half-opening; <= 0 means 10s.
	Cooldown time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker is one engine's state.  All fields are guarded by the
// Quarantine mutex.
type breaker struct {
	state    BreakerState
	failures []time.Time // within-window failure timestamps
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken

	// Counters for stats (lifetime, never pruned).
	panics, timeouts, trips, probes int64
}

// Quarantine is the per-engine breaker set.  Safe for concurrent use.
type Quarantine struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*breaker
}

// NewQuarantine builds a Quarantine with the given config.
func NewQuarantine(cfg BreakerConfig) *Quarantine {
	return &Quarantine{cfg: cfg.withDefaults(), m: map[string]*breaker{}}
}

// get returns engine's breaker, creating it closed.  Caller holds mu.
func (q *Quarantine) get(engine string) *breaker {
	b, ok := q.m[engine]
	if !ok {
		b = &breaker{}
		q.m[engine] = b
	}
	return b
}

// prune drops failures older than the window.  Caller holds mu.
func (q *Quarantine) prune(b *breaker, now time.Time) {
	cut := now.Add(-q.cfg.Window)
	i := 0
	for i < len(b.failures) && !b.failures[i].After(cut) {
		i++
	}
	if i > 0 {
		b.failures = append(b.failures[:0], b.failures[i:]...)
	}
}

// Admit decides whether a request for engine may run on it.  Closed
// admits; open refuses with the cooldown remaining as a retry hint;
// an open breaker whose cooldown has elapsed transitions to half-open
// and admits exactly one probe — the auto-probe that discovers
// recovery — while concurrent requests keep getting refused until the
// probe reports.  The caller must pair every admitted request with
// ReportSuccess or ReportFailure so the probe slot is returned.
func (q *Quarantine) Admit(engine string) (ok bool, state BreakerState, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, okB := q.m[engine]
	if !okB {
		return true, BreakerClosed, 0
	}
	now := q.cfg.Now()
	switch b.state {
	case BreakerClosed:
		return true, BreakerClosed, 0
	case BreakerOpen:
		if remaining := q.cfg.Cooldown - now.Sub(b.openedAt); remaining > 0 {
			return false, BreakerOpen, remaining
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes++
		return true, BreakerHalfOpen, 0
	default: // half-open
		if b.probing {
			return false, BreakerHalfOpen, q.cfg.Cooldown / 4
		}
		b.probing = true
		b.probes++
		return true, BreakerHalfOpen, 0
	}
}

// ReportSuccess records a successful compile on engine: a half-open
// probe's success closes the breaker and clears the failure window.
func (q *Quarantine) ReportSuccess(engine string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.m[engine]
	if !ok {
		return
	}
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.probing = false
		b.failures = b.failures[:0]
	}
}

// ReportFailure records one failure on engine: within a closed
// breaker's window the Threshold'th failure opens it; a failed
// half-open probe reopens it for a fresh cooldown.
func (q *Quarantine) ReportFailure(engine string, kind FailureKind) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.get(engine)
	now := q.cfg.Now()
	if kind == FailPanic {
		b.panics++
	} else {
		b.timeouts++
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.probing = false
		b.openedAt = now
		b.trips++
		b.failures = b.failures[:0]
	case BreakerClosed:
		q.prune(b, now)
		b.failures = append(b.failures, now)
		if len(b.failures) >= q.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
			b.failures = b.failures[:0]
		}
	default: // already open: the cooldown clock keeps running
	}
}

// EngineHealth is one engine's point-in-time breaker snapshot.
type EngineHealth struct {
	// Engine is the canonical scheduler-engine name.
	Engine string
	// State is the breaker state at snapshot time (an open breaker
	// whose cooldown has lapsed still reads open until the next Admit
	// half-opens it).
	State BreakerState
	// WindowFailures is the current within-window failure count.
	WindowFailures int
	// Panics / Timeouts / Trips / Probes are lifetime totals: reported
	// panic and timeout failures, open transitions, half-open probes.
	Panics, Timeouts, Trips, Probes int64
	// RetryAfter is the cooldown remaining on an open breaker (zero
	// otherwise).
	RetryAfter time.Duration
}

// Snapshot lists every engine the quarantine has seen, sorted by name.
// Engines that never failed do not appear.
func (q *Quarantine) Snapshot() []EngineHealth {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Now()
	out := make([]EngineHealth, 0, len(q.m))
	for name, b := range q.m {
		q.prune(b, now)
		h := EngineHealth{
			Engine:         name,
			State:          b.state,
			WindowFailures: len(b.failures),
			Panics:         b.panics,
			Timeouts:       b.timeouts,
			Trips:          b.trips,
			Probes:         b.probes,
		}
		if b.state == BreakerOpen {
			if remaining := q.cfg.Cooldown - now.Sub(b.openedAt); remaining > 0 {
				h.RetryAfter = remaining
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Engine < out[j].Engine })
	return out
}

// Quarantined lists the engines whose breaker is currently open or
// half-open (not yet recovered), sorted.
func (q *Quarantine) Quarantined() []string {
	var names []string
	for _, h := range q.Snapshot() {
		if h.State != BreakerClosed {
			names = append(names, h.Engine)
		}
	}
	return names
}
