package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/sched"
)

func compile(t *testing.T, g *ddg.Graph, cfg machine.Config, opts *Options) *Result {
	t.Helper()
	res, err := Compile(g, &cfg, opts)
	if err != nil {
		t.Fatalf("Compile(%s, %s): %v", g.Name, cfg.Name, err)
	}
	if err := sched.Validate(res.Schedule); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return res
}

// TestCompilePaths drives every built-in scheduler × strategy pair that
// is supported and checks the shared result invariants: a validated
// schedule, a factor >= 1, and the canonical stage telemetry.
func TestCompilePaths(t *testing.T) {
	g := ddg.SampleFigure7()
	cfg := machine.TwoCluster(2, 1)
	cases := []Options{
		{},
		{Strategy: UnrollAll},
		{Strategy: SelectiveUnroll},
		{Strategy: Portfolio},
		{Strategy: "sweep:3"},
		{Scheduler: NystromEichenberger},
		{Scheduler: NystromEichenberger, Strategy: UnrollAll},
		{Scheduler: NystromEichenberger, Strategy: SelectiveUnroll},
		{Scheduler: NystromEichenberger, Strategy: Portfolio},
		{Scheduler: Exact},
		{Scheduler: Exact, Strategy: UnrollAll},
		{Scheduler: Exact, Strategy: Portfolio},
		{Scheduler: Exact, Strategy: "sweep:2"},
	}
	for _, opts := range cases {
		opts := opts
		t.Run(opts.Scheduler.String()+"/"+opts.Strategy.String(), func(t *testing.T) {
			res := compile(t, g, cfg, &opts)
			if res.Factor < 1 {
				t.Errorf("Factor = %d", res.Factor)
			}
			if res.Policy == "" {
				t.Error("Result.Policy empty")
			}
			checkTelemetry(t, res)
		})
	}
}

// checkTelemetry enforces the stage invariants every compile path
// shares: the canonical stage set in canonical order, non-negative
// durations summing to at most the total, at least one schedule call,
// and a trajectory that ends at the achieved II.
func checkTelemetry(t *testing.T, res *Result) {
	t.Helper()
	tel := res.Stages
	if tel == nil {
		t.Fatal("Result.Stages is nil")
	}
	names := StageNames()
	if len(tel.Stages) != len(names) {
		t.Fatalf("stage count %d, want %d", len(tel.Stages), len(names))
	}
	var sum int64
	for i, s := range tel.Stages {
		if s.Name != names[i] {
			t.Errorf("stage[%d] = %s, want %s", i, s.Name, names[i])
		}
		if s.Duration < 0 {
			t.Errorf("stage %s duration negative: %v", s.Name, s.Duration)
		}
		if s.Calls < 0 {
			t.Errorf("stage %s calls negative: %d", s.Name, s.Calls)
		}
		sum += int64(s.Duration)
	}
	if sum > int64(tel.Total) {
		t.Errorf("stage durations sum %d over total %d", sum, int64(tel.Total))
	}
	if sc := tel.Stages[stageIndex(StageSchedule)]; sc.Calls < 1 {
		t.Errorf("schedule stage ran %d times", sc.Calls)
	}
	if vc := tel.Stages[stageIndex(StageValidate)]; vc.Calls != 1 {
		t.Errorf("validate stage ran %d times, want 1", vc.Calls)
	}
	if tel.Attempts < 1 {
		t.Errorf("attempts = %d", tel.Attempts)
	}
	if len(tel.Trajectory) == 0 {
		t.Fatal("empty II trajectory")
	}
	if tel.Attempts >= len(tel.Trajectory) {
		// (Attempts can exceed the list only past the truncation cap.)
		for _, ii := range tel.Trajectory {
			if ii < 1 {
				t.Errorf("trajectory contains II %d", ii)
			}
		}
	} else {
		t.Errorf("attempts %d below trajectory length %d", tel.Attempts, len(tel.Trajectory))
	}
}

// TestCompileMatchesLegacySemantics pins the behaviours the closed
// enum switch used to hardwire.
func TestCompileMatchesLegacySemantics(t *testing.T) {
	uni := machine.Unified()
	res := compile(t, ddg.SampleDotProduct(), uni, nil)
	if res.Schedule.II != 3 || res.Factor != 1 {
		t.Errorf("default compile: II %d factor %d, want 3 and 1", res.Schedule.II, res.Factor)
	}

	cfg := machine.FourCluster(1, 1)
	ua := compile(t, ddg.SampleStencil(), cfg, &Options{Strategy: UnrollAll})
	if ua.Factor != 4 || !ua.Decision.Unrolled {
		t.Errorf("unroll_all: factor %d unrolled %v", ua.Factor, ua.Decision.Unrolled)
	}

	custom := compile(t, ddg.SampleStencil(), machine.TwoCluster(2, 1),
		&Options{Strategy: UnrollAll, Factor: 8})
	if custom.Factor != 8 || custom.Schedule.Graph.UnrollFactor != 8 {
		t.Errorf("factor override: %d (graph %d), want 8", custom.Factor, custom.Schedule.Graph.UnrollFactor)
	}

	ex := compile(t, ddg.SampleFigure7(), machine.TwoCluster(1, 1), &Options{Scheduler: Exact})
	if ex.Exact == nil || !ex.Exact.Proved {
		t.Fatalf("exact proof metadata missing: %+v", ex.Exact)
	}

	if _, err := Compile(ddg.SampleFigure7(), &cfg,
		&Options{Scheduler: Exact, Strategy: SelectiveUnroll}); err == nil {
		t.Error("exact+selective accepted")
	}
}

// TestValidateOptionsTyped covers the boundary rejections and their
// typed error.
func TestValidateOptionsTyped(t *testing.T) {
	uni := machine.Unified()
	g := ddg.SampleChain(2)
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"negative factor", Options{Factor: -1}, "factor"},
		{"oversize factor", Options{Factor: MaxFactor + 1}, "factor"},
		{"negative max_ii", Options{Sched: sched.Options{MaxII: -3}}, "max_ii"},
		{"negative force_ii", Options{Sched: sched.Options{ForceII: -1}}, "force_ii"},
		{"exact budget on bsa", Options{Exact: exact.Budget{MaxNodes: 4}}, "exact"},
		{"exact budget on ne", Options{Scheduler: NystromEichenberger, Exact: exact.Budget{MaxSteps: 10}}, "exact"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(g, &uni, &c.opts)
			var oerr *OptionsError
			if !errors.As(err, &oerr) {
				t.Fatalf("err = %v, want *OptionsError", err)
			}
			if oerr.Field != c.field {
				t.Errorf("field = %q, want %q", oerr.Field, c.field)
			}
		})
	}
	// The budget is legal where it applies.
	if _, err := Compile(g, &uni, &Options{Scheduler: Exact, Exact: exact.Budget{MaxNodes: 8}}); err != nil {
		t.Errorf("exact budget on exact rejected: %v", err)
	}
}

// TestUnknownNamesListRegistered pins the error UX the deleted name
// tables used to provide: an unknown name names the alternatives.
func TestUnknownNamesListRegistered(t *testing.T) {
	uni := machine.Unified()
	g := ddg.SampleChain(2)
	_, err := Compile(g, &uni, &Options{Scheduler: "magic"})
	if err == nil || !strings.Contains(err.Error(), "bsa") || !strings.Contains(err.Error(), "exact") {
		t.Errorf("scheduler error does not list registered names: %v", err)
	}
	_, err = Compile(g, &uni, &Options{Strategy: "sometimes"})
	if err == nil || !strings.Contains(err.Error(), "portfolio") || !strings.Contains(err.Error(), "sweep:<k>") {
		t.Errorf("strategy error does not list registered names: %v", err)
	}
	if _, err := ParseStrategy("sweep:99"); err == nil {
		t.Error("sweep argument over the cap accepted")
	}
	if _, err := ParseStrategy("sweep:x"); err == nil {
		t.Error("non-integer sweep argument accepted")
	}
}

// TestAliasesCanonicalize pins the alias spellings the CLI has always
// accepted.
func TestAliasesCanonicalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"none", "no_unroll"}, {"all", "unroll_all"}, {"selective", "selective"},
		{"", "no_unroll"}, {"sweep:04", "sweep:4"},
	}
	for _, c := range cases {
		s, err := ParseStrategy(c.in)
		if err != nil || string(s) != c.want {
			t.Errorf("ParseStrategy(%q) = %q, %v; want %q", c.in, s, err, c.want)
		}
	}
	s, err := ParseScheduler("nystrom-eichenberger")
	if err != nil || s != NystromEichenberger {
		t.Errorf("ParseScheduler alias = %q, %v", s, err)
	}
	if CanonicalStrategy("all") != "unroll_all" || CanonicalScheduler("") != "bsa" {
		t.Error("canonicalization drifted")
	}
	if CanonicalStrategy("no-such-policy") != "no-such-policy" {
		t.Error("unknown names must pass through canonicalization unchanged")
	}
}

// TestMaxFactorFor pins the service's admission-sizing hook.
func TestMaxFactorFor(t *testing.T) {
	cfg := machine.FourCluster(1, 1)
	cases := []struct {
		opts Options
		want int
	}{
		{Options{}, 1},
		{Options{Strategy: UnrollAll}, 4},
		{Options{Strategy: UnrollAll, Factor: 9}, 9},
		{Options{Strategy: SelectiveUnroll}, 4},
		{Options{Strategy: Portfolio}, 4},
		{Options{Strategy: Portfolio, Factor: 2}, 4}, // selective still unrolls by clusters
		{Options{Strategy: "sweep:7"}, 7},
		{Options{Strategy: "no-such"}, 1},
	}
	for _, c := range cases {
		if got := MaxFactorFor(&c.opts, &cfg); got != c.want {
			t.Errorf("MaxFactorFor(%+v) = %d, want %d", c.opts, got, c.want)
		}
	}
}
