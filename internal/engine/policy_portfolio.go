// Unroll policy: "portfolio" — race the three Figure 8 strategies
// concurrently and return the best per-iteration II.
//
// Each candidate runs the ordinary registered policy on its own child
// CompileContext inside a bounded worker group, reusing the
// scheduler's recycled per-run state on its own goroutine (one attempt
// state per ScheduleGraph call, PR 3).  When a finished candidate's
// result is provably unbeatable — every still-running candidate's
// per-iteration lower bound (MinII of its unrolled graph over its
// factor) is no better — the losers' contexts are cancelled; they stop
// at their next stage boundary.  Comparisons use exact rational
// arithmetic (II·f' vs II'·f) and break ties by candidate order, so
// the winning schedule is deterministic no matter how the race
// interleaves: a compile cache can safely key on it.

package engine

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/machine"
)

// portfolioCandidates is the raced strategy set, in tie-break priority
// order (earlier wins ties — the cheaper, less code-size-hungry
// result).
var portfolioCandidates = []Strategy{NoUnroll, UnrollAll, SelectiveUnroll}

type portfolioPolicy struct{}

func (portfolioPolicy) Name() string { return string(Portfolio) }

func (portfolioPolicy) MaxFactor(opts *Options, cfg *machine.Config) int {
	f := effectiveFactor(opts, cfg)
	if cfg.NClusters > f {
		f = cfg.NClusters // selective unrolls by the cluster count
	}
	return f
}

// candidate pairs a raced strategy with its per-iteration lower bound.
type candidate struct {
	strat Strategy
	// floor is MinII(unroll(g, f))/f — no schedule of this candidate
	// can have a lower per-iteration II, which is what makes pruning
	// sound.
	floor ratio
}

func (portfolioPolicy) Compile(cc *Context) (*Result, error) {
	cands := portfolioFloors(cc)
	if len(cands) == 1 {
		// Degenerate machine (unified, factor 1): every candidate is
		// no_unroll; skip the race.
		res, err := (noUnrollPolicy{}).Compile(cc)
		if err != nil {
			return nil, err
		}
		cc.setWinner(string(NoUnroll))
		cc.addCandidate(Candidate{Strategy: string(NoUnroll), IterationII: res.IterationII(), Won: true})
		res.Policy = string(NoUnroll)
		return res, nil
	}

	n := len(cands)
	base, cancelAll := context.WithCancel(cc.Context())
	defer cancelAll()
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := range cands {
		ctxs[i], cancels[i] = context.WithCancel(base)
	}

	children := make([]*Context, n)
	results := make([]*Result, n)
	errs := make([]error, n)

	var mu sync.Mutex
	bestIdx := -1
	// beats reports whether value a at candidate index i wins over
	// value b at index j: strictly better, or equal with priority.
	beats := func(a ratio, i int, b ratio, j int) bool {
		return a.less(b) || (!b.less(a) && i < j)
	}
	// record notes one finished candidate and cancels every running
	// candidate whose floor can no longer beat the best result.
	record := func(i int, res *Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		results[i], errs[i] = res, err
		if err == nil && (bestIdx < 0 || beats(res.iterRatio(), i, results[bestIdx].iterRatio(), bestIdx)) {
			bestIdx = i
		}
		if bestIdx < 0 {
			return
		}
		best := results[bestIdx].iterRatio()
		for j := range cands {
			if j != bestIdx && results[j] == nil && errs[j] == nil && !beats(cands[j].floor, j, best, bestIdx) {
				cancels[j]()
			}
		}
	}

	workers := n
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				child := cc.Child(ctxs[i], cands[i].strat)
				children[i] = child
				pol, err := LookupStrategy(string(cands[i].strat))
				if err != nil {
					record(i, nil, err)
					continue
				}
				// Per-candidate panic isolation: a panic on this worker
				// goroutine would bypass CompileCtx's recover and kill the
				// process; recovered here it is just a failed candidate.
				res, err := func() (res *Result, err error) {
					defer recoverCompile(cc.Engine.Name(), string(cands[i].strat), &res, &err)
					return pol.Compile(child)
				}()
				record(i, res, err)
			}
		}()
	}
	for i := range cands {
		idx <- i
	}
	close(idx)
	wg.Wait() // every worker joined: no goroutine outlives the call

	if bestIdx < 0 {
		// Every candidate failed: surface the parent cancellation if
		// there was one, else the first candidate's error.
		if err := cc.Err(); err != nil {
			return nil, err
		}
		return nil, errs[0]
	}
	for i := range cands {
		c := Candidate{Strategy: string(cands[i].strat), Won: i == bestIdx}
		if errs[i] != nil {
			c.Err = errs[i].Error()
		} else if results[i] != nil {
			c.IterationII = results[i].IterationII()
		}
		cc.addCandidate(c)
	}
	cc.Merge(children[bestIdx])
	cc.setWinner(string(cands[bestIdx].strat))
	res := results[bestIdx]
	res.Policy = string(cands[bestIdx].strat)
	return res, nil
}

// portfolioFloors builds the candidate set with its per-iteration
// lower bounds; the MinII computations on the unrolled graphs are
// unroll-decision work and timed as such.  The graphs built here stay
// in the context's memo, so the candidates that schedule them do not
// rebuild them.
func portfolioFloors(cc *Context) []candidate {
	start := time.Now()
	unrollBefore := cc.stageDuration(StageUnroll)
	// The nested cc.Unroll calls account their own time; record only
	// the floor computation on top of them, so nothing counts twice.
	defer func() {
		nested := cc.stageDuration(StageUnroll) - unrollBefore
		cc.addStage(StageUnroll, time.Since(start)-nested, 1)
	}()

	floor1 := ratio{cc.Graph.MinII(cc.Cfg), 1}
	cands := []candidate{{NoUnroll, floor1}}
	f := effectiveFactor(cc.Opts, cc.Cfg)
	if f <= 1 {
		return cands
	}
	floorF := ratio{cc.Unroll(f).MinII(cc.Cfg), f}
	cands = append(cands, candidate{UnrollAll, floorF})

	if cc.Engine.Heuristic() && cc.Cfg.Clustered() {
		// Selective either keeps the original loop or unrolls by the
		// cluster count, so its floor is the better of the two.
		floorU := floorF
		if u := cc.Cfg.NClusters; u != f {
			floorU = ratio{cc.Unroll(u).MinII(cc.Cfg), u}
		}
		sel := floor1
		if floorU.less(sel) {
			sel = floorU
		}
		cands = append(cands, candidate{SelectiveUnroll, sel})
	}
	return cands
}

func init() { RegisterStrategy(portfolioPolicy{}) }
