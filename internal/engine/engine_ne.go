// Scheduler adapter: "ne" — the Nystrom & Eichenberger two-phase
// baseline (internal/assign): assign clusters first, schedule second,
// restart on failure with II+1.

package engine

import (
	"repro/internal/assign"
	"repro/internal/ddg"
)

type neEngine struct{}

func (neEngine) Name() string    { return string(NystromEichenberger) }
func (neEngine) Heuristic() bool { return true }

func (neEngine) Schedule(cc *Context, g *ddg.Graph) (*Run, error) {
	// The baseline drives its own assignment/restart loop; the
	// low-level sched ablation hooks deliberately do not forward, same
	// as the pre-registry core did.
	s, err := assign.NystromEichenberger(g, cc.Cfg, nil)
	if err != nil {
		return nil, err
	}
	return &Run{Schedule: s, FirstII: s.MinII}, nil
}

func init() { RegisterScheduler(neEngine{}, "nystrom-eichenberger") }
