package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQuarantine(clk *fakeClock) *Quarantine {
	return NewQuarantine(BreakerConfig{
		Threshold: 3,
		Window:    time.Minute,
		Cooldown:  10 * time.Second,
		Now:       clk.now,
	})
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQuarantine(clk)

	for i := 0; i < 2; i++ {
		q.ReportFailure("exact", FailPanic)
		if ok, st, _ := q.Admit("exact"); !ok || st != BreakerClosed {
			t.Fatalf("after %d failures: Admit = %v, %v; want admitted, closed", i+1, ok, st)
		}
	}
	q.ReportFailure("exact", FailTimeout)
	ok, st, retry := q.Admit("exact")
	if ok || st != BreakerOpen {
		t.Fatalf("after threshold: Admit = %v, %v; want refused, open", ok, st)
	}
	if retry <= 0 || retry > 10*time.Second {
		t.Errorf("retryAfter = %v, want (0, 10s]", retry)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQuarantine(clk)

	// Two failures, then the window slides past them: a third failure
	// much later must not trip the breaker.
	q.ReportFailure("ne", FailPanic)
	q.ReportFailure("ne", FailPanic)
	clk.advance(2 * time.Minute)
	q.ReportFailure("ne", FailPanic)
	if ok, st, _ := q.Admit("ne"); !ok || st != BreakerClosed {
		t.Fatalf("Admit after slid window = %v, %v; want admitted, closed", ok, st)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQuarantine(clk)
	for i := 0; i < 3; i++ {
		q.ReportFailure("exact", FailPanic)
	}
	if ok, _, _ := q.Admit("exact"); ok {
		t.Fatal("open breaker admitted traffic")
	}

	clk.advance(11 * time.Second)
	// Cooldown elapsed: exactly one probe is admitted, concurrent
	// requests keep getting refused until the probe reports.
	ok, st, _ := q.Admit("exact")
	if !ok || st != BreakerHalfOpen {
		t.Fatalf("post-cooldown Admit = %v, %v; want probe admitted half-open", ok, st)
	}
	if ok2, st2, _ := q.Admit("exact"); ok2 || st2 != BreakerHalfOpen {
		t.Fatalf("second Admit during probe = %v, %v; want refused half-open", ok2, st2)
	}

	q.ReportSuccess("exact")
	if ok, st, _ := q.Admit("exact"); !ok || st != BreakerClosed {
		t.Fatalf("Admit after probe success = %v, %v; want admitted closed", ok, st)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQuarantine(clk)
	for i := 0; i < 3; i++ {
		q.ReportFailure("exact", FailTimeout)
	}
	clk.advance(11 * time.Second)
	if ok, _, _ := q.Admit("exact"); !ok {
		t.Fatal("probe not admitted after cooldown")
	}
	q.ReportFailure("exact", FailTimeout)

	// Reopened: refused for another full cooldown, then probes again.
	if ok, st, _ := q.Admit("exact"); ok || st != BreakerOpen {
		t.Fatalf("Admit after failed probe = %v, %v; want refused open", ok, st)
	}
	clk.advance(11 * time.Second)
	if ok, st, _ := q.Admit("exact"); !ok || st != BreakerHalfOpen {
		t.Fatalf("Admit after second cooldown = %v, %v; want probe admitted", ok, st)
	}
}

func TestQuarantineSnapshot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	q := newTestQuarantine(clk)
	for i := 0; i < 3; i++ {
		q.ReportFailure("exact", FailPanic)
	}
	q.ReportFailure("ne", FailTimeout)

	snap := q.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d engines, want 2", len(snap))
	}
	// Sorted: "exact" before "ne".
	if snap[0].Engine != "exact" || snap[1].Engine != "ne" {
		t.Fatalf("Snapshot order = %s, %s", snap[0].Engine, snap[1].Engine)
	}
	if snap[0].State != BreakerOpen || snap[0].Panics != 3 || snap[0].Trips != 1 {
		t.Errorf("exact health = %+v, want open with 3 panics 1 trip", snap[0])
	}
	if snap[0].RetryAfter <= 0 {
		t.Errorf("open engine RetryAfter = %v, want > 0", snap[0].RetryAfter)
	}
	if snap[1].State != BreakerClosed || snap[1].Timeouts != 1 {
		t.Errorf("ne health = %+v, want closed with 1 timeout", snap[1])
	}
	if got := q.Quarantined(); len(got) != 1 || got[0] != "exact" {
		t.Errorf("Quarantined() = %v, want [exact]", got)
	}
}

// panicEngine is a scheduler engine that always panics; registered once
// for the isolation tests below.
type panicEngine struct{}

func (panicEngine) Name() string    { return "panic_test_engine" }
func (panicEngine) Heuristic() bool { return true }
func (panicEngine) Schedule(cc *Context, g *ddg.Graph) (*Run, error) {
	panic(fmt.Sprintf("injected test panic on %s", g.Name))
}

func init() { RegisterScheduler(panicEngine{}) }

func TestCompilePanicIsolated(t *testing.T) {
	g := ddg.SampleDotProduct()
	cfg := machine.Unified()
	res, err := Compile(g, &cfg, &Options{Scheduler: "panic_test_engine"})
	if res != nil {
		t.Fatalf("panicking engine returned a result: %+v", res)
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if perr.Engine != "panic_test_engine" {
		t.Errorf("PanicError.Engine = %q", perr.Engine)
	}
	if !strings.Contains(perr.Error(), "injected test panic") {
		t.Errorf("PanicError message %q does not carry the panic value", perr.Error())
	}
	if len(perr.Stack) == 0 || !strings.Contains(string(perr.Stack), "Schedule") {
		t.Errorf("PanicError.Stack does not capture the panicking frame")
	}
	if !Transient(err) {
		t.Error("PanicError not Transient")
	}
	if !Transient(fmt.Errorf("wrapped: %w", err)) {
		t.Error("wrapped PanicError not Transient")
	}
	if Transient(errors.New("plain")) {
		t.Error("plain error reported Transient")
	}
}

// TestCompilePanicIsolatedInPortfolio drives the panicking engine
// through the portfolio policy: every candidate runs on a racing worker
// goroutine, where an unrecovered panic would kill the process rather
// than unwind into CompileCtx.
func TestCompilePanicIsolatedInPortfolio(t *testing.T) {
	g := ddg.SampleStencil()
	cfg := machine.FourCluster(1, 1)
	res, err := Compile(g, &cfg, &Options{Scheduler: "panic_test_engine", Strategy: Portfolio})
	if res != nil {
		t.Fatalf("panicking portfolio returned a result: %+v", res)
	}
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if perr.Policy == "" {
		t.Errorf("portfolio PanicError names no candidate policy: %+v", perr)
	}
}
