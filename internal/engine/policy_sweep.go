// Unroll policy family: "sweep:<k>" — schedule the loop at every
// unroll factor 1..k and keep the best per-iteration II.  The factor
// sweep is the experiment the paper's Figure 10 runs by hand; as a
// registered family it is one request away over HTTP.

package engine

import (
	"fmt"
	"strconv"

	"repro/internal/machine"
	"repro/internal/unroll"
)

// MaxSweepFactor caps the family argument: factors beyond the largest
// Table 1 cluster count times four buy quantization noise, not
// schedules, and each factor multiplies the scheduled graph.
const MaxSweepFactor = 16

type sweepPolicy struct{ k int }

func (p sweepPolicy) Name() string                            { return fmt.Sprintf("sweep:%d", p.k) }
func (p sweepPolicy) MaxFactor(*Options, *machine.Config) int { return p.k }

func (p sweepPolicy) Compile(cc *Context) (*Result, error) {
	var best *Result
	bestF := 0
	var firstErr error
	for f := 1; f <= p.k; f++ {
		if err := cc.Err(); err != nil {
			return nil, err
		}
		run, err := cc.Schedule(cc.Unroll(f))
		c := Candidate{Strategy: fmt.Sprintf("factor:%d", f)}
		if err != nil {
			// A factor that does not schedule (register pressure on the
			// unrolled body, oracle size budget) is an outcome, not a
			// failure of the sweep.
			if firstErr == nil {
				firstErr = err
			}
			c.Err = err.Error()
			cc.addCandidate(c)
			continue
		}
		r := &Result{
			Schedule: run.Schedule,
			Factor:   f,
			Exact:    run.Exact,
			Decision: unroll.Decision{Unrolled: f > 1, Factor: f, BusLimited: run.Schedule.BusLimited},
		}
		c.IterationII = r.IterationII()
		cc.addCandidate(c)
		if best == nil || r.iterRatio().less(best.iterRatio()) {
			best, bestF = r, f
		}
	}
	if best == nil {
		return nil, fmt.Errorf("engine: %s: no factor schedulable: %w", p.Name(), firstErr)
	}
	cc.setWinner(fmt.Sprintf("factor:%d", bestF))
	for i := range cc.candidates {
		if cc.candidates[i].Strategy == fmt.Sprintf("factor:%d", bestF) {
			cc.candidates[i].Won = true
		}
	}
	return best, nil
}

// newSweep parses the family argument.
func newSweep(arg string) (UnrollPolicy, error) {
	k, err := strconv.Atoi(arg)
	if err != nil {
		return nil, fmt.Errorf("factor bound %q is not an integer", arg)
	}
	if k < 1 || k > MaxSweepFactor {
		return nil, fmt.Errorf("factor bound %d out of range [1, %d]", k, MaxSweepFactor)
	}
	return sweepPolicy{k: k}, nil
}

func init() {
	RegisterStrategyFamily(StrategyFamily{
		Prefix:      "sweep",
		Placeholder: "sweep:<k>",
		Doc:         "schedule at every unroll factor 1..k, keep the best per-iteration II",
		New:         newSweep,
	})
}
