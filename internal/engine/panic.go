// Panic isolation: every compile path — the staged CompileCtx, each
// portfolio candidate goroutine, and (via internal/pipeline) every
// detached cache-fill goroutine — runs under recover(), so a panicking
// engine or policy produces a typed, stack-carrying error instead of
// taking the process down.  A daemon built on this package must be able
// to survive its most adventurous engine.

package engine

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered engine panic converted into an error: the
// engine (and, when known, the policy) that was running, the panic
// value, and the stack captured at recovery.  It is Transient: caches
// must not memoize it (a panic under fault injection or resource
// pressure says nothing permanent about the request), and circuit
// breakers count it against the engine.
type PanicError struct {
	// Engine is the canonical scheduler-engine name that was compiling,
	// or "" when the panic fired outside any resolved engine.
	Engine string
	// Policy is the unroll policy (or portfolio candidate) that was
	// driving the engine, when known.
	Policy string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	who := e.Engine
	if who == "" {
		who = "compile"
	}
	if e.Policy != "" {
		who += "/" + e.Policy
	}
	return fmt.Sprintf("engine: panic in %s: %v", who, e.Value)
}

// Transient marks the error as non-cacheable: retrying the same
// request may succeed (and under chaos injection routinely does).
func (e *PanicError) Transient() bool { return true }

// NewPanicError builds a PanicError from a recovered value, capturing
// the current stack.  Callers invoke it inside their deferred recover,
// so the stack still contains the panicking frames.
func NewPanicError(engine, policy string, value any) *PanicError {
	return &PanicError{Engine: engine, Policy: policy, Value: value, Stack: debug.Stack()}
}

// recoverCompile is the shared deferred recovery hook: it converts a
// panic into a PanicError written through errp and clears any result.
//
//	defer recoverCompile(eng.Name(), pol.Name(), &res, &err)
func recoverCompile(engine, policy string, resp **Result, errp *error) {
	if r := recover(); r != nil {
		if resp != nil {
			*resp = nil
		}
		*errp = NewPanicError(engine, policy, r)
	}
}

// Transient reports whether err is marked transient (a recovered
// panic, an injected fault): results that must not be cached and that
// a client may safely retry — compilation is deterministic and cache
// keys are content fingerprints, so a retried compile is idempotent.
func Transient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
