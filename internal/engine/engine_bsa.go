// Scheduler adapter: "bsa" — the paper's unified assign-and-schedule
// algorithm (internal/sched).  This file is the whole integration: the
// type, the adapter method and one Register call.

package engine

import (
	"repro/internal/ddg"
	"repro/internal/sched"
)

type bsaEngine struct{}

func (bsaEngine) Name() string    { return string(BSA) }
func (bsaEngine) Heuristic() bool { return true }

func (bsaEngine) Schedule(cc *Context, g *ddg.Graph) (*Run, error) {
	opts := cc.Opts.Sched
	s, err := sched.ScheduleGraph(g, cc.Cfg, &opts)
	if err != nil {
		return nil, err
	}
	return &Run{Schedule: s, FirstII: heuristicFirstII(&cc.Opts.Sched, s)}, nil
}

// heuristicFirstII reports where a MinII-upward II search started:
// ForceII pins it, otherwise the schedule's own lower bound.
func heuristicFirstII(o *sched.Options, s *sched.Schedule) int {
	if o.ForceII > 0 {
		return o.ForceII
	}
	return s.MinII
}

func init() { RegisterScheduler(bsaEngine{}) }
