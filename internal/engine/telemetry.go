// Per-compile stage telemetry: what Result.Stages carries and what the
// wire format serialises as the optional "stages" block.

package engine

import "time"

// StageName identifies one canonical compilation stage.
type StageName string

// The canonical stage set.  Every compile path — BSA, NE, exact, the
// pipeline's fallback — emits exactly these four stages in this order;
// a stage a policy never enters is present with zero duration and zero
// calls, so clients can index the block positionally.
const (
	// StageAnalyze covers input validation and the MinII lower bound.
	StageAnalyze StageName = "analyze"
	// StageUnroll covers unrolled-graph construction and the unroll
	// decision estimates (Figure 6's closed form, portfolio floors).
	StageUnroll StageName = "unroll"
	// StageSchedule covers the scheduler-engine runs, including their
	// internal SMS ordering and the whole II search.
	StageSchedule StageName = "schedule"
	// StageValidate covers the structural check of the final schedule.
	StageValidate StageName = "validate"
)

// StageNames returns the canonical stage set in canonical order.
func StageNames() []StageName {
	return []StageName{StageAnalyze, StageUnroll, StageSchedule, StageValidate}
}

// Stage is one stage's accumulated cost within a compile.
type Stage struct {
	// Name is the canonical stage name.
	Name StageName
	// Duration is total wall time spent in the stage.
	Duration time.Duration
	// Calls counts how many times the stage ran (selective unrolling
	// schedules twice; a sweep schedules once per factor).
	Calls int
}

// Candidate is one alternative a multi-way policy (portfolio, sweep)
// evaluated.
type Candidate struct {
	// Strategy names the candidate ("unroll_all", "factor:3").
	Strategy string
	// IterationII is the candidate's per-iteration II; 0 when it failed.
	IterationII float64
	// Err records why the candidate produced no schedule, including
	// "context canceled" for candidates pruned mid-race.
	Err string
	// Won marks the candidate whose schedule the policy returned.
	Won bool
}

// Telemetry is the per-compile stage record attached to every Result.
//
// Invariants (enforced by tests): Stages is always the canonical set in
// canonical order, and the stage durations sum to at most Total — for
// sequential policies the two are nearly equal; for portfolio the
// stages record the critical path that produced the winning schedule
// (analyze + the winner's stages), while Candidates records what the
// rest of the race did.
type Telemetry struct {
	// Scheduler and Policy are the resolved registered names of the
	// engine and the requested policy.
	Scheduler string
	Policy    string
	// Winner names the candidate that produced the schedule when the
	// policy raced alternatives; empty otherwise.
	Winner string
	// Total is the wall time of the whole Compile call.
	Total time.Duration
	// Stages is the canonical stage breakdown.
	Stages []Stage
	// Attempts counts II-search attempts across every scheduler run on
	// the winning path.
	Attempts int
	// Trajectory lists the IIs those attempts tried, in order.
	Trajectory []int
	// Candidates lists the alternatives a multi-way policy evaluated.
	Candidates []Candidate
}
