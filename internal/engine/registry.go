// The name-keyed registry: the single source of truth for which
// schedulers and unroll policies exist, what the wire format and the
// CLIs call them, and how unknown names are reported.

package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// SchedulerEngine produces a modulo schedule for one (possibly
// unrolled) graph.  Implementations are adapters over a scheduling
// package (internal/sched, internal/assign, internal/exact) that
// self-register from their file's init.
type SchedulerEngine interface {
	// Name is the canonical registered name ("bsa").
	Name() string
	// Heuristic reports whether the engine emits the bus-failure
	// telemetry (Schedule.BusLimited and friends) the selective unroll
	// policy keys on; the exhaustive oracle does not.
	Heuristic() bool
	// Schedule schedules g — already unrolled however the policy wanted
	// — on cc.Cfg under cc.Opts.  Call it through Context.Schedule,
	// which handles timing, cancellation and trajectory capture.
	Schedule(cc *Context, g *ddg.Graph) (*Run, error)
}

// UnrollPolicy decides the unroll factor(s) and drives the scheduler
// engine, producing the final Result.
type UnrollPolicy interface {
	// Name is the canonical registered name ("selective", "sweep:4").
	Name() string
	// MaxFactor is the largest unroll factor the policy may apply for
	// these options on this machine; the service bounds admissible
	// request sizes with it.
	MaxFactor(opts *Options, cfg *machine.Config) int
	// Compile runs the policy.
	Compile(cc *Context) (*Result, error)
}

// StrategyFamily is a parameterised policy constructor: names spelled
// "<prefix>:<arg>" resolve through its factory ("sweep:4").
type StrategyFamily struct {
	// Prefix is the name before the colon.
	Prefix string
	// Placeholder is the listed spelling ("sweep:<k>").
	Placeholder string
	// Doc is a one-line description for capability listings.
	Doc string
	// New builds the policy for one argument spelling.
	New func(arg string) (UnrollPolicy, error)
}

// registry holds both name spaces.  Registration happens in inits and
// tests; lookups are on the compile hot path, hence the RWMutex.
var registry = struct {
	sync.RWMutex
	schedulers map[string]SchedulerEngine // canonical and alias names
	schedCanon []string                   // canonical names, registration order
	strategies map[string]UnrollPolicy
	stratCanon []string
	families   []StrategyFamily
}{
	schedulers: map[string]SchedulerEngine{},
	strategies: map[string]UnrollPolicy{},
}

// checkName validates a registered name: lowercase identifiers,
// optionally with one ":<arg>" suffix, and none of the separator bytes
// the pipeline cache key uses.
func checkName(name string) {
	if name == "" {
		panic("engine: empty registration name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-', r == ':':
		default:
			panic(fmt.Sprintf("engine: invalid registration name %q (want [a-z0-9_:-])", name))
		}
	}
}

// RegisterScheduler adds a scheduler engine under its canonical name
// plus any aliases.  Duplicate names panic: registration is an
// init-time programming act, not a runtime input.
func RegisterScheduler(e SchedulerEngine, aliases ...string) {
	registry.Lock()
	defer registry.Unlock()
	for _, name := range append([]string{e.Name()}, aliases...) {
		checkName(name)
		if _, dup := registry.schedulers[name]; dup {
			panic(fmt.Sprintf("engine: scheduler %q registered twice", name))
		}
		registry.schedulers[name] = e
	}
	registry.schedCanon = append(registry.schedCanon, e.Name())
}

// RegisterStrategy adds an unroll policy under its canonical name plus
// any aliases.
func RegisterStrategy(p UnrollPolicy, aliases ...string) {
	registry.Lock()
	defer registry.Unlock()
	for _, name := range append([]string{p.Name()}, aliases...) {
		checkName(name)
		if _, dup := registry.strategies[name]; dup {
			panic(fmt.Sprintf("engine: strategy %q registered twice", name))
		}
		registry.strategies[name] = p
	}
	registry.stratCanon = append(registry.stratCanon, p.Name())
}

// RegisterStrategyFamily adds a parameterised policy family.
func RegisterStrategyFamily(f StrategyFamily) {
	checkName(f.Prefix)
	registry.Lock()
	defer registry.Unlock()
	for _, have := range registry.families {
		if have.Prefix == f.Prefix {
			panic(fmt.Sprintf("engine: strategy family %q registered twice", f.Prefix))
		}
	}
	registry.families = append(registry.families, f)
}

// LookupScheduler resolves a scheduler name ("" means the default,
// bsa).  Unknown names error with the registered list.
func LookupScheduler(name string) (SchedulerEngine, error) {
	if name == "" {
		name = string(BSA)
	}
	registry.RLock()
	e, ok := registry.schedulers[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown scheduler %q (registered: %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	return e, nil
}

// LookupStrategy resolves an unroll-policy name ("" means the default,
// no_unroll), consulting the registered families for "prefix:arg"
// spellings.  Unknown names error with the registered list.
func LookupStrategy(name string) (UnrollPolicy, error) {
	if name == "" {
		name = string(NoUnroll)
	}
	registry.RLock()
	p, ok := registry.strategies[name]
	families := registry.families
	registry.RUnlock()
	if ok {
		return p, nil
	}
	if prefix, arg, found := strings.Cut(name, ":"); found {
		for _, f := range families {
			if f.Prefix == prefix {
				p, err := f.New(arg)
				if err != nil {
					return nil, fmt.Errorf("engine: strategy %q: %w", name, err)
				}
				return p, nil
			}
		}
	}
	return nil, fmt.Errorf("engine: unknown strategy %q (registered: %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// ParseScheduler resolves a name (or alias) to its canonical
// Scheduler.  This is the single name table behind core.ParseScheduler
// and the wire codec.
func ParseScheduler(name string) (Scheduler, error) {
	e, err := LookupScheduler(name)
	if err != nil {
		return "", err
	}
	return Scheduler(e.Name()), nil
}

// ParseStrategy resolves a name (or alias) to its canonical Strategy.
func ParseStrategy(name string) (Strategy, error) {
	p, err := LookupStrategy(name)
	if err != nil {
		return "", err
	}
	return Strategy(p.Name()), nil
}

// CanonicalScheduler maps any accepted spelling to the canonical
// registered name; unknown names pass through unchanged (they fail at
// compile time, and callers like the cache key just need stability).
func CanonicalScheduler(name string) string {
	s, err := ParseScheduler(name)
	if err != nil {
		return name
	}
	return string(s)
}

// CanonicalStrategy maps any accepted spelling to the canonical
// registered name; unknown names pass through unchanged.
func CanonicalStrategy(name string) string {
	s, err := ParseStrategy(name)
	if err != nil {
		return name
	}
	return string(s)
}

// SchedulerNames lists the canonical scheduler names, sorted.
func SchedulerNames() []string {
	registry.RLock()
	names := append([]string(nil), registry.schedCanon...)
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// StrategyNames lists the canonical strategy names plus each family's
// placeholder spelling, sorted.
func StrategyNames() []string {
	registry.RLock()
	names := append([]string(nil), registry.stratCanon...)
	for _, f := range registry.families {
		names = append(names, f.Placeholder)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// StrategyFamilies lists the registered families.
func StrategyFamilies() []StrategyFamily {
	registry.RLock()
	defer registry.RUnlock()
	return append([]StrategyFamily(nil), registry.families...)
}
