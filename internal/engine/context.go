// CompileContext: the per-compilation state threaded through every
// stage, policy and scheduler-engine call.

package engine

import (
	"context"
	"time"

	"repro/internal/ddg"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/sched"
)

// maxTrajectory bounds the recorded II trajectory; attempts keep
// counting past it, the list just stops growing (a 4-digit II sweep is
// telemetry nobody reads entry by entry).
const maxTrajectory = 128

// Context is the compilation context: the inputs, the resolved
// scheduler engine, the cancellation signal and the accumulating stage
// telemetry.  A Context belongs to one goroutine; racing policies give
// each candidate its own child Context and merge the winner's record
// back (see Child and Merge).
type Context struct {
	// Graph, Cfg and Opts are the compilation inputs.
	Graph *ddg.Graph
	Cfg   *machine.Config
	Opts  *Options
	// Engine is the resolved scheduler engine every Schedule call
	// dispatches to.
	Engine SchedulerEngine

	ctx context.Context

	stages     [4]Stage // canonical order; Name filled lazily
	attempts   int
	trajectory []int
	winner     string
	candidates []Candidate
	// unrolled memoizes Unroll by factor, so a racing policy that
	// computed a floor on an unrolled graph hands the same graph to the
	// candidate that schedules it.  Graphs are immutable once built
	// (the pipeline already schedules shared graphs concurrently).
	unrolled map[int]*ddg.Graph
}

func newContext(ctx context.Context, g *ddg.Graph, cfg *machine.Config, opts *Options, eng SchedulerEngine) *Context {
	return &Context{ctx: ctx, Graph: g, Cfg: cfg, Opts: opts, Engine: eng}
}

// Context returns the cancellation context.  Policies and engines must
// observe it at stage boundaries: an in-flight scheduler run is not
// interruptible, but nothing new starts once it is done.
func (cc *Context) Context() context.Context { return cc.ctx }

// Err returns the cancellation state.
func (cc *Context) Err() error { return cc.ctx.Err() }

// Child derives a candidate Context for a racing policy: same inputs
// and engine, its own cancellation signal, fresh telemetry, and the
// candidate strategy substituted into a copy of the options.  The
// parent's unrolled-graph memo is copied, not shared: children run
// concurrently, and a goroutine-local map keeps their misses
// race-free.
func (cc *Context) Child(ctx context.Context, strat Strategy) *Context {
	opts := *cc.Opts
	opts.Strategy = strat
	child := newContext(ctx, cc.Graph, cc.Cfg, &opts, cc.Engine)
	if len(cc.unrolled) > 0 {
		child.unrolled = make(map[int]*ddg.Graph, len(cc.unrolled))
		for f, g := range cc.unrolled {
			child.unrolled[f] = g
		}
	}
	return child
}

// stageIndex maps a canonical stage to its slot.
func stageIndex(name StageName) int {
	switch name {
	case StageAnalyze:
		return 0
	case StageUnroll:
		return 1
	case StageSchedule:
		return 2
	default:
		return 3
	}
}

// addStage accounts d against one canonical stage.
func (cc *Context) addStage(name StageName, d time.Duration, calls int) {
	i := stageIndex(name)
	cc.stages[i].Duration += d
	cc.stages[i].Calls += calls
}

// stageDuration reads one stage's accumulated time (policies use it to
// subtract nested schedule time out of an unroll-stage measurement).
func (cc *Context) stageDuration(name StageName) time.Duration {
	return cc.stages[stageIndex(name)].Duration
}

// Unroll builds the factor-f unrolled graph (f == 1 returns the
// original), timed under the unroll stage and memoized per factor.
func (cc *Context) Unroll(f int) *ddg.Graph {
	if f <= 1 {
		return cc.Graph
	}
	if g, ok := cc.unrolled[f]; ok {
		return g
	}
	start := time.Now()
	ug := cc.Graph.Unroll(f)
	if cc.unrolled == nil {
		cc.unrolled = make(map[int]*ddg.Graph, 2)
	}
	cc.unrolled[f] = ug
	cc.addStage(StageUnroll, time.Since(start), 1)
	return ug
}

// Schedule runs the resolved engine on g, timed under the schedule
// stage, recording the II-search trajectory of the run.  It fails fast
// with the context error when the compile has been cancelled.
func (cc *Context) Schedule(g *ddg.Graph) (*Run, error) {
	if err := cc.ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	run, err := cc.Engine.Schedule(cc, g)
	cc.addStage(StageSchedule, time.Since(start), 1)
	if err != nil {
		return nil, err
	}
	first := run.FirstII
	if first <= 0 {
		first = run.Schedule.II
	}
	for ii := first; ii <= run.Schedule.II; ii++ {
		cc.attempts++
		if len(cc.trajectory) < maxTrajectory {
			cc.trajectory = append(cc.trajectory, ii)
		}
	}
	return run, nil
}

// Merge folds a finished child's telemetry into cc: stage times and
// calls add up, the child's trajectory appends.  Racing policies merge
// only the winning candidate, so the stage invariant (durations sum to
// at most the compile's total wall time) survives parallelism.
func (cc *Context) Merge(child *Context) {
	for i := range cc.stages {
		cc.stages[i].Duration += child.stages[i].Duration
		cc.stages[i].Calls += child.stages[i].Calls
	}
	cc.attempts += child.attempts
	for _, ii := range child.trajectory {
		if len(cc.trajectory) < maxTrajectory {
			cc.trajectory = append(cc.trajectory, ii)
		}
	}
}

// setWinner records the winning candidate of a racing policy.
func (cc *Context) setWinner(name string) { cc.winner = name }

// addCandidate records one evaluated alternative.
func (cc *Context) addCandidate(c Candidate) { cc.candidates = append(cc.candidates, c) }

// telemetry assembles the final Telemetry block.
func (cc *Context) telemetry(scheduler, policy string, total time.Duration) *Telemetry {
	names := StageNames()
	stages := make([]Stage, len(names))
	for i, n := range names {
		stages[i] = cc.stages[i]
		stages[i].Name = n
	}
	return &Telemetry{
		Scheduler:  scheduler,
		Policy:     policy,
		Winner:     cc.winner,
		Total:      total,
		Stages:     stages,
		Attempts:   cc.attempts,
		Trajectory: cc.trajectory,
		Candidates: cc.candidates,
	}
}

// Run is one scheduler-engine invocation's outcome.
type Run struct {
	// Schedule is the produced modulo schedule.
	Schedule *sched.Schedule
	// Exact carries the oracle's proof metadata when the engine proves
	// bounds; nil for heuristic engines.
	Exact *exact.Result
	// FirstII is the first II the engine attempted (ForceII when
	// pinned, MinII otherwise); the II trajectory is the contiguous
	// range FirstII..Schedule.II, which is how every registered engine
	// searches.  0 means "only Schedule.II".
	FirstII int
}
