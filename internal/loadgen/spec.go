// Package loadgen is the production load harness: a parameterized
// corpus generator that synthesizes DDG families at scale on top of
// ddg.Synth, an NDJSON corpus format so generated workloads reproduce
// exactly and replay across processes, and an open-loop traffic
// replayer that drives a live schedd through internal/client while
// recording the service-level numbers BENCH_service.json tracks:
// latency percentiles from the response stream, cache hit rate,
// eviction churn, admission 429s, deadline 504s and goodput.
//
// The pattern follows elastic-package's `benchmark generate-corpus` →
// rally-track flow: generate a corpus from a spec (or load a previously
// generated NDJSON file), then race it against the service at a
// configured arrival rate.  Open loop means arrivals keep their
// schedule regardless of completions — queue wait counts into latency —
// so the measured percentiles reflect what real clients would see
// under that offered load, not what a closed feedback loop would admit.
package loadgen

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/ddg"
)

// Spec parameterizes one generated corpus.  Every field is a
// deterministic input: the same spec yields the same loops in the same
// order with byte-identical NDJSON.
type Spec struct {
	// Count is the number of loops to generate.
	Count int `json:"count"`
	// MinNodes and MaxNodes bound each loop body's operation count.
	MinNodes int `json:"min_nodes"`
	MaxNodes int `json:"max_nodes"`
	// RecurrenceDensity, ExtraEdgeDensity and ClusterAffinity are the
	// ddg.SynthSpec knobs, applied to every loop.
	RecurrenceDensity float64 `json:"recurrence_density"`
	ExtraEdgeDensity  float64 `json:"extra_edge_density"`
	ClusterAffinity   float64 `json:"cluster_affinity"`
	// MinTrip and MaxTrip bound the trip count (corpus.Loop.Iters);
	// zero values mean 16..256.
	MinTrip int `json:"min_trip,omitempty"`
	MaxTrip int `json:"max_trip,omitempty"`
	// Seed drives every random draw.
	Seed uint64 `json:"seed"`
	// Prefix names the loops ("<prefix>.g<i>"); "" means "synth".
	Prefix string `json:"prefix,omitempty"`
}

// withDefaults resolves the zero values.
func (s Spec) withDefaults() Spec {
	if s.Prefix == "" {
		s.Prefix = "synth"
	}
	if s.MinTrip <= 0 {
		s.MinTrip = 16
	}
	if s.MaxTrip <= 0 {
		s.MaxTrip = 256
	}
	return s
}

// Validate rejects an unusable spec.
func (s Spec) Validate() error {
	s = s.withDefaults()
	switch {
	case s.Count <= 0:
		return fmt.Errorf("loadgen: spec count %d not positive", s.Count)
	case s.MinNodes < 2:
		return fmt.Errorf("loadgen: min nodes %d below 2", s.MinNodes)
	case s.MaxNodes < s.MinNodes:
		return fmt.Errorf("loadgen: max nodes %d below min nodes %d", s.MaxNodes, s.MinNodes)
	case s.MaxTrip < s.MinTrip:
		return fmt.Errorf("loadgen: max trip %d below min trip %d", s.MaxTrip, s.MinTrip)
	}
	// The per-graph knobs are validated by ddg.SynthSpec; probe once so
	// a bad density fails here, before a million-loop generation loop.
	probe := ddg.SynthSpec{
		Seed:              s.Seed,
		Nodes:             s.MinNodes,
		RecurrenceDensity: s.RecurrenceDensity,
		ExtraEdgeDensity:  s.ExtraEdgeDensity,
		ClusterAffinity:   s.ClusterAffinity,
	}
	return probe.Validate()
}

// Each synthesizes the corpus one loop at a time, calling yield for
// loop i as soon as it exists and retaining nothing — the streaming
// form that keeps a million-loop generation in constant memory.  The
// draw order is identical to Generate's (one master RNG, three draws
// per loop), so yielded loop i is byte-for-byte the loop Generate
// would put at index i.  A yield error stops the run and is returned
// as-is.
func (s Spec) Each(yield func(i int, l *corpus.Loop) error) error {
	if err := s.Validate(); err != nil {
		return err
	}
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(int64(s.Seed)))
	for i := 0; i < s.Count; i++ {
		nodes := s.MinNodes + rng.Intn(s.MaxNodes-s.MinNodes+1)
		graphSeed := rng.Uint64()
		iters := s.MinTrip + rng.Intn(s.MaxTrip-s.MinTrip+1)
		g, err := ddg.Synth(ddg.SynthSpec{
			Name:              fmt.Sprintf("%s.g%d", s.Prefix, i),
			Seed:              graphSeed,
			Nodes:             nodes,
			RecurrenceDensity: s.RecurrenceDensity,
			ExtraEdgeDensity:  s.ExtraEdgeDensity,
			ClusterAffinity:   s.ClusterAffinity,
		})
		if err != nil {
			return fmt.Errorf("loadgen: loop %d: %w", i, err)
		}
		if err := yield(i, &corpus.Loop{
			Graph:  g,
			Iters:  iters,
			Weight: 1,
			Bench:  s.Prefix,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Generate synthesizes the whole corpus in memory: Count loops, each
// an independent ddg.Synth graph whose size, trip count and per-graph
// seed are drawn from a master RNG seeded by Spec.Seed.  For corpora
// that should not be materialized (the "1M loops" regime), stream with
// Each or StreamCorpus instead.
func (s Spec) Generate() ([]*corpus.Loop, error) {
	loops := make([]*corpus.Loop, 0, s.Count)
	err := s.Each(func(_ int, l *corpus.Loop) error {
		loops = append(loops, l)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loops, nil
}
