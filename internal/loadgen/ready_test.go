package loadgen

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/service"
)

// TestStreamCorpusBytesMatchMaterialized pins the streaming contract:
// StreamCorpus(spec) emits exactly the bytes WriteCorpus(Generate())
// would, so the constant-memory gen path and the in-memory path are
// interchangeable artifact producers.
func TestStreamCorpusBytesMatchMaterialized(t *testing.T) {
	spec := testSpec()
	loops, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := WriteCorpus(&want, loops); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	n, err := StreamCorpus(&got, spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != spec.Count {
		t.Fatalf("StreamCorpus wrote %d loops, want %d", n, spec.Count)
	}
	if got.String() != want.String() {
		t.Fatal("streamed corpus differs from materialized corpus bytes")
	}
}

// TestEachStopsOnYieldError: a yield error aborts generation and comes
// back verbatim, so a failed mid-stream write does not keep burning CPU
// on a million-loop corpus.
func TestEachStopsOnYieldError(t *testing.T) {
	spec := testSpec()
	stop := errors.New("disk full")
	calls := 0
	err := spec.Each(func(i int, _ *corpus.Loop) error {
		calls++
		if i == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("Each returned %v, want the yield error verbatim", err)
	}
	if calls != 3 {
		t.Fatalf("Each yielded %d loops after the error, want 3", calls)
	}
}

// TestWaitReadyDrainRace pins the /readyz-vs-/healthz distinction that
// motivated WaitReady: a draining daemon answers /healthz 200 while
// /readyz says 503, so a health-based gate would green-light a replay
// the server will wholly reject.  WaitReady must keep waiting through
// the draining window and return only once /readyz flips to 200.
func TestWaitReadyDrainRace(t *testing.T) {
	var ready atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.WriteHeader(http.StatusOK) // healthy even while draining
		case "/readyz":
			if ready.Load() {
				w.WriteHeader(http.StatusOK)
			} else {
				http.Error(w, "draining", http.StatusServiceUnavailable)
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	// The race: health says go, readiness says wait.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 while draining", resp.StatusCode)
	}
	if err := WaitReady(ts.URL, 120*time.Millisecond); err == nil {
		t.Fatal("WaitReady returned while /readyz was still 503")
	}

	// Flip readiness shortly after WaitReady starts; it must block
	// through the 503 window and then succeed.
	go func() {
		time.Sleep(150 * time.Millisecond)
		ready.Store(true)
	}()
	start := time.Now()
	if err := WaitReady(ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady after readiness flip: %v", err)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Fatalf("WaitReady returned after %v, before readiness flipped", waited)
	}
}

// TestWaitReadyAgainstDrainingService runs the race against the real
// service handler: after BeginDrain the daemon still answers /healthz
// 200 (process alive) but WaitReady correctly refuses to start a run.
func TestWaitReadyAgainstDrainingService(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := WaitReady(ts.URL, time.Second); err != nil {
		t.Fatalf("fresh service not ready: %v", err)
	}
	srv.BeginDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /healthz = %d, want 200", resp.StatusCode)
	}
	if err := WaitReady(ts.URL, 120*time.Millisecond); err == nil {
		t.Fatal("WaitReady accepted a draining service")
	}
}

// TestWaitReadyConnectError: nothing listening keeps polling until the
// budget runs out, then reports the URL it was waiting on.
func TestWaitReadyConnectError(t *testing.T) {
	err := WaitReady("http://127.0.0.1:1", 80*time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against a closed port")
	}
	if !strings.Contains(err.Error(), "/readyz") {
		t.Fatalf("error %q does not name the probed URL", err)
	}
}
