// NDJSON corpus I/O: one corpus.Loop per line in the wire JSON shape
// (the ddg codec for the graph plus the loop's tagged fields), the same
// representation /v1/compile ships inline loops in.  Writing is
// deterministic — json.Marshal of the loop structs emits fields in
// declaration order and the shapes contain no maps — so the same spec
// always produces byte-identical corpus files, which is what the
// determinism test pins.

package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/corpus"
)

// maxCorpusLine bounds one NDJSON line; far above any admissible
// inline loop (the wire caps bound graphs long before this).
const maxCorpusLine = 64 << 20

// WriteCorpus writes loops as NDJSON, one loop per line.
func WriteCorpus(w io.Writer, loops []*corpus.Loop) error {
	bw := bufio.NewWriter(w)
	for i, l := range loops {
		b, err := json.Marshal(l)
		if err != nil {
			return fmt.Errorf("loadgen: marshal loop %d: %w", i, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamCorpus synthesizes a spec's corpus straight onto w, one NDJSON
// line per loop as it is generated, holding only the current loop in
// memory.  The bytes are identical to WriteCorpus(w, spec.Generate())
// — same draw order, same per-line marshal — so streamed and
// materialized corpora are interchangeable artifacts.  Returns the
// number of loops written.
func StreamCorpus(w io.Writer, spec Spec) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	err := spec.Each(func(i int, l *corpus.Loop) error {
		b, err := json.Marshal(l)
		if err != nil {
			return fmt.Errorf("loadgen: marshal loop %d: %w", i, err)
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadCorpus reads an NDJSON corpus back, validating every graph so a
// corrupt or hand-edited file fails at load time, not mid-replay.
func ReadCorpus(r io.Reader) ([]*corpus.Loop, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxCorpusLine)
	var loops []*corpus.Loop
	for line := 1; sc.Scan(); line++ {
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var l corpus.Loop
		if err := json.Unmarshal(b, &l); err != nil {
			return nil, fmt.Errorf("loadgen: corpus line %d: %w", line, err)
		}
		if l.Graph == nil {
			return nil, fmt.Errorf("loadgen: corpus line %d: loop has no graph", line)
		}
		if err := l.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("loadgen: corpus line %d: %w", line, err)
		}
		loops = append(loops, &l)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(loops) == 0 {
		return nil, fmt.Errorf("loadgen: empty corpus")
	}
	return loops, nil
}
