// Readiness polling for scripts that boot schedd and immediately
// replay against it.  The probe is /readyz, not /healthz: a draining
// daemon keeps answering /healthz 200 while refusing every new compile
// (503 draining), so a /healthz gate can declare "up" a server that
// will reject the entire run — the drain race the readiness test pins.

package loadgen

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// readyPollInterval is the delay between /readyz probes.
const readyPollInterval = 50 * time.Millisecond

// WaitReady polls endpoint's /readyz until it answers 200 OK or the
// budget expires.  Connection errors and non-200 answers (including
// 503 draining) keep polling — a booting daemon and a draining daemon
// look the same from here, and only an actually-ready one may start
// the clock on an open-loop run.
func WaitReady(endpoint string, within time.Duration) error {
	deadline := time.Now().Add(within)
	url := strings.TrimRight(endpoint, "/") + "/readyz"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready within %v", url, within)
		}
		time.Sleep(readyPollInterval)
	}
}
