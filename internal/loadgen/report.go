// The BENCH_service.json document: the service-level perf trajectory
// artefact the replayer emits, mirroring how BENCH_sched.json tracks
// the scheduler inner loop.  cmd/benchjson -check -schema service
// validates a published document against Report.Validate, so a
// truncated or hand-edited artefact cannot ship through CI.

package loadgen

import (
	"fmt"
	"sort"
	"time"
)

// Report is the BENCH_service.json shape.
type Report struct {
	// Generated is the RFC3339 emission time; the toolchain triple is
	// what CI dashboards key on, as in BENCH_sched.json.
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Spec records the corpus the run replayed, when it was generated
	// in-process (absent when replaying a corpus file).
	Spec *Spec `json:"spec,omitempty"`
	// Corpus counts the distinct loops replayed.
	Corpus int `json:"corpus"`
	// Replay records the traffic shape.
	Replay ReplayShape `json:"replay"`

	// DurationS is the measured wall time of the run.
	DurationS float64 `json:"duration_s"`
	// Sent is the number of requests dispatched; every one settles into
	// exactly one of OK, Rejected429, Deadline504 or Errors, so
	// Sent == OK + Rejected429 + Deadline504 + Errors always holds
	// (Validate enforces it).
	Sent        int64 `json:"sent"`
	OK          int64 `json:"ok"`
	Rejected429 int64 `json:"rejected_429"`
	Deadline504 int64 `json:"deadline_504"`
	Errors      int64 `json:"errors"`

	// OfferedQPS is the configured arrival rate; GoodputQPS is
	// OK / DurationS (0 when nothing completed — the rate computations
	// are zero-denominator safe).
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`

	// Latency summarizes per-request latency measured from each
	// request's scheduled arrival to its settled response — client-side
	// percentiles over the response stream, not the server's coarse
	// histogram.
	Latency LatencySummary `json:"latency"`

	// Cache is the server-side delta over the run (from /v1/stats
	// before and after); absent when stats collection failed or was
	// disabled.
	Cache *CacheDelta `json:"cache,omitempty"`
	// Server is the daemon-side admission delta over the run; absent
	// with Cache.
	Server *ServerDelta `json:"server,omitempty"`
}

// ReplayShape records the replayer configuration inside the artefact.
type ReplayShape struct {
	QPS           float64 `json:"qps"`
	Requests      int     `json:"requests"`
	MaxInFlight   int     `json:"max_inflight"`
	BatchSize     int     `json:"batch_size,omitempty"`
	BatchFraction float64 `json:"batch_fraction,omitempty"`
	Attempts      int     `json:"attempts"`
	TimeoutMS     int     `json:"timeout_ms,omitempty"`
	MachineRefs   []string `json:"machine_refs"`
	Scheduler     string  `json:"scheduler,omitempty"`
	Strategy      string  `json:"strategy,omitempty"`
	Seed          int64   `json:"seed"`
}

// LatencySummary is the client-side latency digest: exact percentiles
// computed from every settled request's latency (nearest-rank over the
// full sample set, no bucketing).
type LatencySummary struct {
	Count  int64   `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// CacheDelta is the compile-cache movement over the run.
type CacheDelta struct {
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	DedupJoins   int64   `json:"dedup_joins"`
	Compilations int64   `json:"compilations"`
	Evictions    int64   `json:"evictions"`
	// PeerHits counts misses answered by a cluster peer's cache instead
	// of a local compile (zero outside cluster mode).
	PeerHits int64 `json:"peer_hits,omitempty"`
	// HitRate is Hits / (Hits + Misses), 0 when no lookups happened.
	HitRate float64 `json:"hit_rate"`
}

// ServerDelta is the daemon-side admission movement over the run.
type ServerDelta struct {
	Rejected  int64 `json:"rejected"`
	Deadlines int64 `json:"deadlines"`
	Degraded  int64 `json:"degraded,omitempty"`
}

// Rate divides num by den, returning 0 on a zero denominator instead
// of NaN/Inf — JSON cannot encode either, so an unguarded division
// would make an empty run's artefact unserializable.
func Rate(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Percentile returns the exact nearest-rank q-quantile (0 < q <= 1) of
// sorted samples; 0 when there are none.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(q*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Summarize digests a latency sample set (milliseconds) into the wire
// shape.  The input is sorted in place.
func Summarize(samplesMS []float64) LatencySummary {
	sort.Float64s(samplesMS)
	s := LatencySummary{Count: int64(len(samplesMS))}
	if len(samplesMS) == 0 {
		return s
	}
	s.P50MS = Percentile(samplesMS, 0.50)
	s.P90MS = Percentile(samplesMS, 0.90)
	s.P99MS = Percentile(samplesMS, 0.99)
	s.P999MS = Percentile(samplesMS, 0.999)
	s.MaxMS = samplesMS[len(samplesMS)-1]
	return s
}

// Validate enforces the schema a published BENCH_service.json must
// satisfy; cmd/benchjson -check -schema service calls it.
func (r *Report) Validate() error {
	if _, err := time.Parse(time.RFC3339, r.Generated); err != nil {
		return fmt.Errorf("bad generated timestamp %q: %v", r.Generated, err)
	}
	if r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("missing toolchain metadata (go_version/goos/goarch)")
	}
	if r.Sent <= 0 {
		return fmt.Errorf("no requests sent (sent=%d): the run never drove traffic", r.Sent)
	}
	if got := r.OK + r.Rejected429 + r.Deadline504 + r.Errors; got != r.Sent {
		return fmt.Errorf("accounting broken: sent=%d but ok+429+504+errors=%d (every request must settle exactly once)",
			r.Sent, got)
	}
	if r.OK <= 0 {
		return fmt.Errorf("no request succeeded (ok=%d of %d sent)", r.OK, r.Sent)
	}
	if r.DurationS <= 0 {
		return fmt.Errorf("non-positive duration_s %v", r.DurationS)
	}
	if r.GoodputQPS < 0 || r.OfferedQPS <= 0 {
		return fmt.Errorf("bad rates (offered=%v goodput=%v)", r.OfferedQPS, r.GoodputQPS)
	}
	l := r.Latency
	if l.Count != r.Sent {
		return fmt.Errorf("latency count %d != sent %d", l.Count, r.Sent)
	}
	if l.P50MS < 0 || l.P50MS > l.P90MS || l.P90MS > l.P99MS || l.P99MS > l.P999MS || l.P999MS > l.MaxMS {
		return fmt.Errorf("latency percentiles not monotone: p50=%v p90=%v p99=%v p99.9=%v max=%v",
			l.P50MS, l.P90MS, l.P99MS, l.P999MS, l.MaxMS)
	}
	if c := r.Cache; c != nil {
		if c.HitRate < 0 || c.HitRate > 1 {
			return fmt.Errorf("cache hit_rate %v outside [0, 1]", c.HitRate)
		}
		if want := Rate(float64(c.Hits), float64(c.Hits+c.Misses)); !close2(c.HitRate, want) {
			return fmt.Errorf("cache hit_rate %v inconsistent with hits=%d misses=%d (want %v)",
				c.HitRate, c.Hits, c.Misses, want)
		}
	}
	return nil
}

// close2 compares rates with a small tolerance for decimal rounding.
func close2(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}
