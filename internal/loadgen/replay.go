// The open-loop replayer: arrivals fire on a fixed schedule derived
// from the offered QPS, regardless of how fast the service answers.
// A concurrency cap bounds the client's own resources, but a request
// that waits for a slot keeps its scheduled arrival time as the start
// of its latency clock — under overload the measured percentiles grow
// the way a real user's would, instead of the closed-loop flattery of
// only sending when the server is ready.
//
// Exactly-once accounting: every dispatched request settles into
// exactly one of ok / 429 / 504 / error, so sent always equals the sum
// of the outcome counters — the invariant the end-to-end test pins and
// Report.Validate enforces on published artefacts.

package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/corpus"
	"repro/internal/wire"
)

// ReplayConfig tunes one replay run.
type ReplayConfig struct {
	// Client drives the traffic; required.
	Client *client.Client
	// QPS is the open-loop arrival rate in requests per second
	// (required > 0).  Batch envelopes count each contained request
	// toward the rate.
	QPS float64
	// Requests is the total number of requests to send; 0 derives it
	// from QPS * Duration.
	Requests int
	// Duration is the nominal run length when Requests is 0.
	Duration time.Duration
	// MaxInFlight caps concurrently outstanding dispatches (<= 0 means
	// 256).  Waiting for a slot counts into the waiting request's
	// latency — the cap protects the client process, not the numbers.
	MaxInFlight int
	// BatchSize > 1 enables batch-envelope arrivals of that size;
	// BatchFraction in [0, 1] is the fraction of dispatches that use
	// one (the batch mix).
	BatchSize     int
	BatchFraction float64
	// MachineRefs are cycled across requests ("" entries are invalid);
	// empty means {"unified"}.
	MachineRefs []string
	// Scheduler and Strategy ride in every request's options.
	Scheduler string
	Strategy  string
	// TimeoutMS is the per-request server deadline (0 = server default).
	TimeoutMS int
	// AllowDegraded lets the server fall back to the baseline compile
	// under quarantine or load shedding.
	AllowDegraded bool
	// Attempts records the client's per-request attempt budget in the
	// artefact (the budget itself lives in the client's own config).
	Attempts int
	// Seed makes the batch-mix draws deterministic.
	Seed int64
	// SkipStats disables the /v1/stats before/after snapshots (unit
	// tests against stubs that lack the endpoint).
	SkipStats bool
	// Spec, when the corpus was generated in-process, is recorded in
	// the report.
	Spec *Spec
}

// withDefaults resolves the zero values.
func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if len(c.MachineRefs) == 0 {
		c.MachineRefs = []string{"unified"}
	}
	return c
}

// recorder accumulates settled outcomes; one mutex is plenty at load-
// harness rates and keeps the accounting trivially exact.
type recorder struct {
	mu        sync.Mutex
	ok        int64
	r429      int64
	r504      int64
	errs      int64
	samplesMS []float64
}

// settle records one request's outcome and latency.
func (r *recorder) settle(err error, latency time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch classify(err) {
	case wire.CodeOverCapacity:
		r.r429++
	case wire.CodeDeadlineExceeded:
		r.r504++
	case "":
		r.ok++
	default:
		r.errs++
	}
	r.samplesMS = append(r.samplesMS, float64(latency)/float64(time.Millisecond))
}

// classify maps a settled error to its wire code bucket ("" = success).
func classify(err error) string {
	if err == nil {
		return ""
	}
	var werr *wire.Error
	if errors.As(err, &werr) {
		switch werr.Code {
		case wire.CodeOverCapacity, wire.CodeDeadlineExceeded:
			return werr.Code
		}
	}
	return wire.CodeInternal
}

// Replay drives loops against the service and returns the run's
// BENCH_service.json report.
func Replay(ctx context.Context, cfg ReplayConfig, loops []*corpus.Loop) (*Report, error) {
	cfg = cfg.withDefaults()
	switch {
	case cfg.Client == nil:
		return nil, fmt.Errorf("loadgen: replay needs a client")
	case cfg.QPS <= 0:
		return nil, fmt.Errorf("loadgen: replay QPS %v not positive", cfg.QPS)
	case len(loops) == 0:
		return nil, fmt.Errorf("loadgen: replay needs a corpus")
	case cfg.BatchFraction < 0 || cfg.BatchFraction > 1:
		return nil, fmt.Errorf("loadgen: batch fraction %v outside [0, 1]", cfg.BatchFraction)
	}
	total := cfg.Requests
	if total <= 0 {
		total = int(cfg.QPS * cfg.Duration.Seconds())
	}
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: nothing to send (requests=%d, qps=%v, duration=%v)",
			cfg.Requests, cfg.QPS, cfg.Duration)
	}

	var before *wire.StatsResponse
	if !cfg.SkipStats {
		before, _ = cfg.Client.Stats(ctx)
	}

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec := &recorder{samplesMS: make([]float64, 0, total)}
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup

	start := time.Now()
	sent := 0
	for sent < total && ctx.Err() == nil {
		size := 1
		if cfg.BatchSize > 1 && rng.Float64() < cfg.BatchFraction {
			size = min(cfg.BatchSize, total-sent)
		}
		due := start.Add(time.Duration(sent) * interval)
		if err := sleepUntil(ctx, due); err != nil {
			break
		}
		reqs := make([]wire.CompileRequest, size)
		for k := 0; k < size; k++ {
			i := sent + k
			reqs[k] = wire.CompileRequest{
				V:          wire.Version,
				Loop:       loops[i%len(loops)],
				MachineRef: cfg.MachineRefs[i%len(cfg.MachineRefs)],
				TimeoutMS:  cfg.TimeoutMS,
				Options: &wire.Options{
					Scheduler: cfg.Scheduler,
					Strategy:  cfg.Strategy,
				},
				AllowDegraded: cfg.AllowDegraded,
			}
		}
		sent += size
		wg.Add(1)
		go func(due time.Time, reqs []wire.CompileRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if len(reqs) == 1 {
				_, err := cfg.Client.Compile(ctx, &reqs[0])
				rec.settle(err, time.Since(due))
				return
			}
			items, err := cfg.Client.Batch(ctx, reqs)
			lat := time.Since(due)
			if err != nil {
				for range reqs {
					rec.settle(err, lat)
				}
				return
			}
			for i := range items {
				var ierr error
				if items[i].Error != nil {
					ierr = items[i].Error
				}
				rec.settle(ierr, lat)
			}
		}(due, reqs)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var after *wire.StatsResponse
	if !cfg.SkipStats {
		after, _ = cfg.Client.Stats(ctx)
	}
	return buildReport(cfg, len(loops), int64(sent), elapsed, rec, before, after), nil
}

// sleepUntil waits for the scheduled arrival, deadline-aware.
func sleepUntil(ctx context.Context, due time.Time) error {
	d := time.Until(due)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// buildReport assembles the artefact; every rate it computes is
// zero-denominator safe, so an empty run (nothing dispatched before
// cancellation) still yields a well-formed, serializable document.
func buildReport(cfg ReplayConfig, corpusSize int, sent int64, elapsed time.Duration, rec *recorder, before, after *wire.StatsResponse) *Report {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := &Report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Spec:      cfg.Spec,
		Corpus:    corpusSize,
		Replay: ReplayShape{
			QPS:           cfg.QPS,
			Requests:      int(sent),
			MaxInFlight:   cfg.MaxInFlight,
			BatchSize:     cfg.BatchSize,
			BatchFraction: cfg.BatchFraction,
			Attempts:      cfg.Attempts,
			TimeoutMS:     cfg.TimeoutMS,
			MachineRefs:   cfg.MachineRefs,
			Scheduler:     cfg.Scheduler,
			Strategy:      cfg.Strategy,
			Seed:          cfg.Seed,
		},
		DurationS:   elapsed.Seconds(),
		Sent:        sent,
		OK:          rec.ok,
		Rejected429: rec.r429,
		Deadline504: rec.r504,
		Errors:      rec.errs,
		OfferedQPS:  cfg.QPS,
		GoodputQPS:  Rate(float64(rec.ok), elapsed.Seconds()),
		Latency:     Summarize(rec.samplesMS),
	}
	if before != nil && after != nil {
		hits := after.Pipeline.Hits - before.Pipeline.Hits
		misses := after.Pipeline.Misses - before.Pipeline.Misses
		r.Cache = &CacheDelta{
			Hits:         hits,
			Misses:       misses,
			DedupJoins:   after.Pipeline.DedupJoins - before.Pipeline.DedupJoins,
			Compilations: after.Pipeline.Compilations - before.Pipeline.Compilations,
			Evictions:    after.Pipeline.Evictions - before.Pipeline.Evictions,
			PeerHits:     after.Pipeline.PeerHits - before.Pipeline.PeerHits,
			HitRate:      Rate(float64(hits), float64(hits+misses)),
		}
		r.Server = &ServerDelta{
			Rejected:  after.Service.Rejected - before.Service.Rejected,
			Deadlines: after.Service.Deadlines - before.Service.Deadlines,
			Degraded:  after.Service.Degraded - before.Service.Degraded,
		}
	}
	return r
}
