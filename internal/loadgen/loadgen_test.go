package loadgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testSpec() Spec {
	return Spec{
		Count:             8,
		MinNodes:          6,
		MaxNodes:          24,
		RecurrenceDensity: 0.3,
		ExtraEdgeDensity:  0.5,
		ClusterAffinity:   0.7,
		Seed:              42,
	}
}

// TestGenerateDeterministicNDJSON pins the harness's reproducibility
// contract: the same spec yields byte-identical NDJSON, and the seed
// actually matters.
func TestGenerateDeterministicNDJSON(t *testing.T) {
	spec := testSpec()
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		loops, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if len(loops) != spec.Count {
			t.Fatalf("generated %d loops, want %d", len(loops), spec.Count)
		}
		if err := WriteCorpus(buf, loops); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same spec produced different NDJSON bytes")
	}

	other := spec
	other.Seed = 43
	loops, err := other.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := WriteCorpus(&c, loops); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestCorpusRoundTrip checks write → read preserves every loop: same
// count, same graph fingerprints, same trip counts.
func TestCorpusRoundTrip(t *testing.T) {
	loops, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, loops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(loops) {
		t.Fatalf("round trip: %d loops, want %d", len(got), len(loops))
	}
	for i := range got {
		if got[i].Graph.Fingerprint() != loops[i].Graph.Fingerprint() {
			t.Fatalf("loop %d: fingerprint changed across round trip", i)
		}
		if got[i].Iters != loops[i].Iters {
			t.Fatalf("loop %d: iters %d != %d", i, got[i].Iters, loops[i].Iters)
		}
	}
}

// TestReadCorpusRejectsBadInput: empty, corrupt, and graph-less lines
// all fail at load time with the offending line number.
func TestReadCorpusRejectsBadInput(t *testing.T) {
	if _, err := ReadCorpus(strings.NewReader("")); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := ReadCorpus(strings.NewReader("{not json\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("corrupt line: got %v, want line-1 error", err)
	}
	if _, err := ReadCorpus(strings.NewReader(`{"iters":5}` + "\n")); err == nil || !strings.Contains(err.Error(), "no graph") {
		t.Errorf("graph-less loop: got %v, want no-graph error", err)
	}
}

// TestSpecValidate rejects the unusable corners.
func TestSpecValidate(t *testing.T) {
	for name, mut := range map[string]func(*Spec){
		"zero count":     func(s *Spec) { s.Count = 0 },
		"min nodes 1":    func(s *Spec) { s.MinNodes = 1 },
		"max < min":      func(s *Spec) { s.MaxNodes = s.MinNodes - 1 },
		"trip inverted":  func(s *Spec) { s.MinTrip = 100; s.MaxTrip = 10 },
		"negative knob":  func(s *Spec) { s.ExtraEdgeDensity = -1 },
		"affinity > 1":   func(s *Spec) { s.ClusterAffinity = 1.5 },
		"recurrence > 1": func(s *Spec) { s.RecurrenceDensity = 2 },
	} {
		s := testSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// TestRateZeroDenominator pins the division guard: an empty run's rates
// are 0, never NaN or Inf (json.Marshal rejects both).
func TestRateZeroDenominator(t *testing.T) {
	if got := Rate(0, 0); got != 0 {
		t.Errorf("Rate(0,0) = %v, want 0", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Errorf("Rate(5,0) = %v, want 0", got)
	}
	if got := Rate(3, 2); got != 1.5 {
		t.Errorf("Rate(3,2) = %v, want 1.5", got)
	}
}

// TestPercentileNearestRank pins the exact nearest-rank definition.
func TestPercentileNearestRank(t *testing.T) {
	s := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.90, 90}, {0.99, 100}, {0.999, 100}, {0.1, 10}, {1, 100}} {
		if got := Percentile(s, tc.q); got != tc.want {
			t.Errorf("Percentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.999); got != 7 {
		t.Errorf("single sample p99.9 = %v, want 7", got)
	}
}

// TestEmptyRunReportSerializes: a run where nothing was dispatched
// (context cancelled before the first arrival) must still produce a
// well-formed, marshalable report with zero rates — the
// zero-denominator guard in action end to end.
func TestEmptyRunReportSerializes(t *testing.T) {
	rep := buildReport(ReplayConfig{QPS: 100}.withDefaults(), 4, 0, time.Millisecond, &recorder{}, nil, nil)
	if rep.GoodputQPS != 0 || rep.Latency.Count != 0 || rep.Latency.P999MS != 0 {
		t.Fatalf("empty run report not zeroed: %+v", rep)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("empty run report does not marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("empty run report does not round-trip: %v", err)
	}
	// And the artefact validator refuses to publish it.
	if err := rep.Validate(); err == nil {
		t.Fatal("Validate accepted a zero-traffic artefact")
	}
}

func validReport() *Report {
	return &Report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   "go1.24",
		GOOS:        "linux",
		GOARCH:      "amd64",
		Corpus:      4,
		DurationS:   1.5,
		Sent:        100,
		OK:          90,
		Rejected429: 6,
		Deadline504: 3,
		Errors:      1,
		OfferedQPS:  100,
		GoodputQPS:  60,
		Latency:     LatencySummary{Count: 100, P50MS: 1, P90MS: 2, P99MS: 5, P999MS: 9, MaxMS: 9},
		Cache:       &CacheDelta{Hits: 75, Misses: 25, HitRate: 0.75},
	}
}

// TestReportValidate pins the artefact schema: accounting identity,
// monotone percentiles, consistent hit rate.
func TestReportValidate(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	for name, mut := range map[string]func(*Report){
		"accounting broken":  func(r *Report) { r.OK-- },
		"no traffic":         func(r *Report) { r.Sent = 0; r.OK = 0; r.Rejected429 = 0; r.Deadline504 = 0; r.Errors = 0; r.Latency.Count = 0 },
		"nothing succeeded":  func(r *Report) { r.Errors += r.OK; r.OK = 0 },
		"latency count off":  func(r *Report) { r.Latency.Count = 99 },
		"percentiles wobble": func(r *Report) { r.Latency.P90MS = 0.5 },
		"hit rate > 1":       func(r *Report) { r.Cache.HitRate = 1.2 },
		"hit rate bogus":     func(r *Report) { r.Cache.HitRate = 0.5 },
		"bad timestamp":      func(r *Report) { r.Generated = "yesterday" },
		"no toolchain":       func(r *Report) { r.GoVersion = "" },
		"zero duration":      func(r *Report) { r.DurationS = 0 },
	} {
		r := validReport()
		mut(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the broken report", name)
		}
	}
}
