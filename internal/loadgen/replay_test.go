// End-to-end replay tests against a real Server over httptest.  The
// accounting test runs under -race in CI: the recorder, the semaphore
// and the dispatch goroutines are all exercised concurrently.

package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/service"
)

// mixedCorpus returns fast loops plus a couple whose name marks them
// for the slow compile path.
func mixedCorpus(t *testing.T) []*corpus.Loop {
	t.Helper()
	fast, err := loadgen.Spec{
		Count: 6, MinNodes: 6, MaxNodes: 10,
		RecurrenceDensity: 0.2, ExtraEdgeDensity: 0.3, ClusterAffinity: 0.5,
		Seed: 1, Prefix: "fast",
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := loadgen.Spec{
		Count: 2, MinNodes: 6, MaxNodes: 10,
		RecurrenceDensity: 0.2, ExtraEdgeDensity: 0.3, ClusterAffinity: 0.5,
		Seed: 2, Prefix: "slow",
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return append(fast, slow...)
}

// TestReplayExactlyOnceAccounting drives an overloaded server (one
// admission slot, no queue) with mixed single/batch open-loop traffic
// and checks the invariant the artefact schema rests on: every
// dispatched request settles into exactly one outcome bucket.
func TestReplayExactlyOnceAccounting(t *testing.T) {
	loops := mixedCorpus(t)
	srv := service.New(service.Config{
		Workers:     2,
		MaxInflight: 1,
		QueueDepth:  -1, // reject the instant the slot is busy: guaranteed 429s
		Breaker:     engine.BreakerConfig{Threshold: 1000},
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			if strings.HasPrefix(l.Graph.Name, "slow") {
				time.Sleep(40 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
			return core.Compile(l.Graph, cfg, &opts)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl, err := client.New(client.Config{Endpoints: []string{ts.URL}, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Replay(context.Background(), loadgen.ReplayConfig{
		Client:        cl,
		QPS:           400,
		Requests:      120,
		MaxInFlight:   64,
		BatchSize:     4,
		BatchFraction: 0.4,
		TimeoutMS:     25,
		Attempts:      1,
		Seed:          7,
	}, loops)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Sent != 120 {
		t.Fatalf("sent %d, want 120", rep.Sent)
	}
	if got := rep.OK + rep.Rejected429 + rep.Deadline504 + rep.Errors; got != rep.Sent {
		t.Fatalf("accounting broken: sent=%d but ok=%d + 429=%d + 504=%d + errors=%d = %d",
			rep.Sent, rep.OK, rep.Rejected429, rep.Deadline504, rep.Errors, got)
	}
	if rep.Latency.Count != rep.Sent {
		t.Fatalf("latency samples %d != sent %d (a request settled without a sample, or twice)",
			rep.Latency.Count, rep.Sent)
	}
	if rep.OK == 0 {
		t.Error("overload run had zero successes; the first admitted request should have completed")
	}
	if rep.Rejected429 == 0 {
		t.Error("one admission slot at 400 qps produced zero 429s")
	}
	if rep.Cache == nil || rep.Server == nil {
		t.Fatalf("stats deltas missing: cache=%v server=%v", rep.Cache, rep.Server)
	}
	if rep.Cache.HitRate < 0 || rep.Cache.HitRate > 1 {
		t.Errorf("cache hit rate %v outside [0, 1]", rep.Cache.HitRate)
	}
	if rep.Errors > 0 {
		t.Errorf("unexpected transport/internal errors: %d", rep.Errors)
	}
}

// TestReplayDeadline504 pins the 504 classification path: every request
// carries a 5ms deadline against a 30ms compile, so each distinct loop's
// first compile must settle as deadline_exceeded.
func TestReplayDeadline504(t *testing.T) {
	loops, err := loadgen.Spec{
		Count: 8, MinNodes: 6, MaxNodes: 8,
		RecurrenceDensity: 0.2, ExtraEdgeDensity: 0.2, ClusterAffinity: 0.5,
		Seed: 3,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{
		Workers:     4,
		MaxInflight: 8,
		// The quarantine breaker counts deadline failures; this test
		// wants 8 of them in a row, so raise the threshold out of reach.
		Breaker: engine.BreakerConfig{Threshold: 100},
		Compile: func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
			time.Sleep(30 * time.Millisecond)
			return core.Compile(l.Graph, cfg, &opts)
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl, err := client.New(client.Config{Endpoints: []string{ts.URL}, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := loadgen.Replay(context.Background(), loadgen.ReplayConfig{
		Client:      cl,
		QPS:         100,
		Requests:    8, // one request per distinct loop: no cache hit can rescue any of them
		MaxInFlight: 8,
		TimeoutMS:   5,
		Attempts:    1,
		Seed:        11,
	}, loops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deadline504 != rep.Sent || rep.Sent != 8 {
		t.Fatalf("want all 8 requests to 504, got sent=%d ok=%d 429=%d 504=%d errors=%d",
			rep.Sent, rep.OK, rep.Rejected429, rep.Deadline504, rep.Errors)
	}
}

// TestReplayCancelledContext: cancellation before the first arrival
// yields a zero-traffic report, not an error or a hang.
func TestReplayCancelledContext(t *testing.T) {
	loops, err := loadgen.Spec{
		Count: 2, MinNodes: 6, MaxNodes: 8,
		RecurrenceDensity: 0, ExtraEdgeDensity: 0, ClusterAffinity: 0,
		Seed: 4,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(client.Config{Endpoints: []string{"http://127.0.0.1:1"}, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := loadgen.Replay(ctx, loadgen.ReplayConfig{
		Client:    cl,
		QPS:       10,
		Requests:  100,
		SkipStats: true,
	}, loops)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 0 || rep.OK != 0 || rep.Latency.Count != 0 {
		t.Fatalf("cancelled run dispatched traffic: %+v", rep)
	}
}
