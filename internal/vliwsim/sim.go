// Package vliwsim executes modulo schedules cycle by cycle on a
// simulated clustered VLIW machine: per-cluster register files hold
// value tokens tagged (producer, iteration), buses carry in-flight
// transfers for their full latency, and every operand read must find the
// token of exactly the right iteration in the consumer's local file.
//
// The simulator is the dynamic counterpart of sched.Validate: it proves
// end to end that the schedule's timing, communication placement and
// register-pressure accounting are consistent — a wrong cluster
// assignment, a late transfer or an overwritten value surfaces as a
// missing token at a precise cycle.  Memory is perfect (the paper's
// model), so the cycle count is exactly (NITER + SC - 1) * II.
//
// Tokens are symbolic rather than physical registers: the paper's
// machine has no rotating files and physical allocation (modulo variable
// expansion) does not affect any measured quantity.  Loop live-ins
// (reads of iterations before the first) are assumed present at entry
// and excluded from pressure, as in the paper's steady-state accounting.
package vliwsim

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/sched"
)

// Result summarises one simulated loop execution.
type Result struct {
	// Cycles is the total execution time: (Iters + SC - 1) * II.
	Cycles int
	// OpsExecuted counts functional-unit operations issued.
	OpsExecuted int
	// TransfersExecuted counts bus transactions completed.
	TransfersExecuted int
	// MaxPressure is the observed per-cluster peak of simultaneously
	// live tokens (always <= the static MaxLive).
	MaxPressure []int
	// BusBusy counts, per bus, the cycles the bus was driving a value.
	BusBusy []int
	// IPC is useful operations per cycle for this execution.
	IPC float64
}

// tokenKey identifies one value instance.
type tokenKey struct {
	producer, iter int
}

// event is one scheduled action at an absolute cycle.
type event struct {
	cycle int
	kind  int // 0 deposit, 1 read, 2 busStart, 3 busEnd
	// deposit/read: cluster + token; busStart/busEnd: transfer index + iter.
	cluster  int
	tok      tokenKey
	transfer int
	node     int // reader node (kind 1) or producer (kind 0), for messages
}

const (
	evDeposit = iota
	evRead
	evBusStart
	evBusEnd
)

// Run simulates iters kernel iterations of the schedule.  It returns an
// error describing the first inconsistency (missing operand token, bus
// collision, FU oversubscription or register-file overflow).
func Run(s *sched.Schedule, iters int) (*Result, error) {
	if iters < 1 {
		return nil, fmt.Errorf("vliwsim: iters = %d, want >= 1", iters)
	}
	g, cfg := s.Graph, s.Cfg

	refs, err := expectedReads(s, iters)
	if err != nil {
		return nil, err
	}

	var events []event
	// FU issues and result deposits.
	for id, pl := range s.Placements {
		node := g.Node(id)
		for i := 0; i < iters; i++ {
			issue := pl.Cycle + i*s.II
			for _, e := range g.InEdges(id) {
				if e.Kind != ddg.DepTrue {
					continue
				}
				src := i - e.Distance
				if src < 0 {
					continue // loop live-in
				}
				events = append(events, event{cycle: issue, kind: evRead,
					cluster: pl.Cluster, tok: tokenKey{e.From, src}, node: id})
			}
			if node.Class.ProducesValue() {
				events = append(events, event{cycle: issue + node.Class.Latency(),
					kind: evDeposit, cluster: pl.Cluster, tok: tokenKey{id, i}, node: id})
			}
		}
	}
	// Bus transactions: instance i carries (producer, i).
	for ti, tr := range s.Transfers {
		for i := 0; i < iters; i++ {
			start := tr.Start + i*s.II
			events = append(events, event{cycle: start, kind: evBusStart,
				cluster: tr.From, tok: tokenKey{tr.Producer, i}, transfer: ti})
			events = append(events, event{cycle: start + cfg.BusLatency, kind: evBusEnd,
				cluster: tr.To, tok: tokenKey{tr.Producer, i}, transfer: ti})
		}
	}
	// Deterministic order: by cycle, deposits and bus-ends (which deposit)
	// before reads, bus-starts last (they read the register file at the
	// start cycle, after same-cycle deposits from earlier stages).
	kindOrder := [4]int{evDeposit: 0, evBusEnd: 1, evRead: 2, evBusStart: 3}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].cycle != events[b].cycle {
			return events[a].cycle < events[b].cycle
		}
		return kindOrder[events[a].kind] < kindOrder[events[b].kind]
	})

	res := &Result{
		MaxPressure: make([]int, cfg.NClusters),
		BusBusy:     make([]int, cfg.NBuses),
	}
	files := make([]map[tokenKey]int, cfg.NClusters) // token -> remaining reads
	for c := range files {
		files[c] = map[tokenKey]int{}
	}
	busFreeAt := make([]int, cfg.NBuses)
	fuUse := map[[3]int]int{} // (cluster, class, absCycle) -> issues

	deposit := func(c int, tok tokenKey) {
		need := refs[[3]int{tok.producer, tok.iter, c}]
		if need <= 0 {
			return // dead value: never stored
		}
		if _, dup := files[c][tok]; !dup {
			files[c][tok] = need
		}
	}

	// Pressure is sampled at end of cycle: a value arriving on the bus
	// and fully consumed the same cycle feeds the FU from the IRV and
	// never touches the register file (paper §3).
	measure := func() {
		for c := range files {
			if len(files[c]) > res.MaxPressure[c] {
				res.MaxPressure[c] = len(files[c])
			}
		}
	}

	for idx, ev := range events {
		switch ev.kind {
		case evDeposit:
			deposit(ev.cluster, ev.tok)
		case evBusEnd:
			res.TransfersExecuted++
			deposit(ev.cluster, ev.tok)
		case evRead:
			left, ok := files[ev.cluster][ev.tok]
			if !ok {
				return nil, fmt.Errorf(
					"vliwsim: cycle %d: node %s (cluster %d) needs value of %s iteration %d: not in register file",
					ev.cycle, g.Node(ev.node).Name, ev.cluster,
					g.Node(ev.tok.producer).Name, ev.tok.iter)
			}
			if left == 1 {
				delete(files[ev.cluster], ev.tok)
			} else {
				files[ev.cluster][ev.tok] = left - 1
			}
		case evBusStart:
			tr := s.Transfers[ev.transfer]
			if busFreeAt[tr.Bus] > ev.cycle {
				return nil, fmt.Errorf("vliwsim: cycle %d: bus %d still busy (free at %d)",
					ev.cycle, tr.Bus, busFreeAt[tr.Bus])
			}
			// The source cluster must hold the value when it is driven.
			if _, ok := files[ev.cluster][ev.tok]; !ok {
				return nil, fmt.Errorf(
					"vliwsim: cycle %d: bus %d transfer of %s iteration %d: value not in cluster %d",
					ev.cycle, tr.Bus, g.Node(ev.tok.producer).Name, ev.tok.iter, ev.cluster)
			}
			if left := files[ev.cluster][ev.tok]; left == 1 {
				delete(files[ev.cluster], ev.tok)
			} else {
				files[ev.cluster][ev.tok] = left - 1
			}
			busFreeAt[tr.Bus] = ev.cycle + cfg.BusLatency
			res.BusBusy[tr.Bus] += cfg.BusLatency
		}
		if idx+1 == len(events) || events[idx+1].cycle != ev.cycle {
			measure()
		}
	}

	// FU occupancy re-check (independent of the scheduler's table).
	for id, pl := range s.Placements {
		class := g.Node(id).Class.FU()
		for i := 0; i < iters; i++ {
			k := [3]int{pl.Cluster, int(class), pl.Cycle + i*s.II}
			fuUse[k]++
			if fuUse[k] > cfg.FUs(pl.Cluster, class) {
				return nil, fmt.Errorf("vliwsim: cycle %d: cluster %d issues %d %s ops, has %d units",
					k[2], pl.Cluster, fuUse[k], class, cfg.FUs(pl.Cluster, class))
			}
		}
	}

	for c, peak := range res.MaxPressure {
		if peak > cfg.RegsPerCluster {
			return nil, fmt.Errorf("vliwsim: cluster %d peak pressure %d exceeds %d registers",
				c, peak, cfg.RegsPerCluster)
		}
	}

	res.Cycles = s.Cycles(iters)
	res.OpsExecuted = iters * g.NumNodes()
	res.IPC = float64(res.OpsExecuted) / float64(res.Cycles)
	return res, nil
}

// expectedReads computes, per (producer, iteration, cluster), how many
// reads the simulation will perform: local consumers and outgoing bus
// transactions in the producer's cluster, plus consumers in every
// destination cluster.  Tokens with zero expected reads are never
// stored (a dead value occupies no register).
func expectedReads(s *sched.Schedule, iters int) (map[[3]int]int, error) {
	g := s.Graph
	refs := map[[3]int]int{}
	transfersFrom := map[int][]sched.Transfer{}
	for _, tr := range s.Transfers {
		transfersFrom[tr.Producer] = append(transfersFrom[tr.Producer], tr)
	}
	for id := range s.Placements {
		if !g.Node(id).Class.ProducesValue() {
			continue
		}
		home := s.Placements[id].Cluster
		for i := 0; i < iters; i++ {
			for _, e := range g.OutEdges(id) {
				if e.Kind != ddg.DepTrue {
					continue
				}
				j := i + e.Distance
				if j >= iters {
					continue // consumer instance never runs
				}
				refs[[3]int{id, i, s.Placements[e.To].Cluster}]++
			}
			for range transfersFrom[id] {
				refs[[3]int{id, i, home}]++
			}
		}
	}
	return refs, nil
}

// Verify runs the simulator and cross-checks its observations against
// the static schedule metrics: dynamic peak pressure must not exceed the
// static MaxLive, and bus utilisation must match the transfer count.
func Verify(s *sched.Schedule, iters int) error {
	res, err := Run(s, iters)
	if err != nil {
		return err
	}
	static := s.MaxLive()
	for c, peak := range res.MaxPressure {
		if peak > static[c] {
			return fmt.Errorf("vliwsim: cluster %d dynamic pressure %d exceeds static MaxLive %d",
				c, peak, static[c])
		}
	}
	wantBusy := 0
	for _, b := range res.BusBusy {
		wantBusy += b
	}
	if got := len(s.Transfers) * iters * s.Cfg.BusLatency; wantBusy != got {
		return fmt.Errorf("vliwsim: bus busy cycles %d, want %d", wantBusy, got)
	}
	return nil
}
