package vliwsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

// TestValidatorSimulatorAgreement is the library's strongest internal
// consistency check: for randomly mutated schedules, whenever the
// static validator accepts, the dynamic simulator must also succeed.
// (The converse need not hold — the simulator can be stricter on
// boundary iterations — but a Validate-OK/sim-FAIL pair means one of
// the two models is wrong.)
func TestValidatorSimulatorAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	graphs := []*ddg.Graph{
		ddg.SampleStencil(), ddg.SampleFigure7(), ddg.SampleDotProduct(),
		ddg.SampleStencil().Unroll(2),
	}
	configs := []machine.Config{
		machine.TwoCluster(1, 1), machine.TwoCluster(2, 2), machine.FourCluster(1, 1),
	}
	agreeChecked := 0
	for trial := 0; trial < 400; trial++ {
		g := graphs[trial%len(graphs)]
		cfg := configs[trial%len(configs)]
		s, err := sched.ScheduleGraph(g, &cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		m := perturb(r, s)
		if sched.Validate(m) != nil {
			continue // statically rejected; nothing to cross-check
		}
		agreeChecked++
		if _, err := Run(m, 16); err != nil {
			t.Fatalf("trial %d: validator accepted but simulator rejected: %v\n%s",
				trial, err, m)
		}
	}
	if agreeChecked < 50 {
		t.Fatalf("only %d mutations survived validation; perturbation too destructive", agreeChecked)
	}
}

// perturb shifts a random operation by a whole number of IIs — the one
// mutation class that frequently stays valid (same kernel slot, larger
// or smaller stage) and therefore exercises the agreement path.
func perturb(r *rand.Rand, s *sched.Schedule) *sched.Schedule {
	c := *s
	c.Placements = append([]sched.Placement(nil), s.Placements...)
	c.Transfers = append([]sched.Transfer(nil), s.Transfers...)
	i := r.Intn(len(c.Placements))
	switch r.Intn(3) {
	case 0:
		c.Placements[i].Cycle += s.II // one stage later
	case 1:
		c.Placements[i].Cycle += 1 + r.Intn(3) // arbitrary shift
	default:
		if len(c.Transfers) > 0 {
			j := r.Intn(len(c.Transfers))
			c.Transfers[j].Start += s.II // same bus slot, later stage
		}
	}
	return &c
}

// TestDifferentialSweep is the scheduler's differential test: for every
// machine configuration of Table 1 and every loop of a trimmed corpus,
// the BSA schedule is run through the simulator (the independent
// oracle) and the dynamic observations must match the scheduler's
// claims — the simulator-observed II (the cycle delta between
// consecutive iteration counts), the closed-form cycle count, and value
// agreement (the simulator finds every operand token at exactly the
// claimed cycle and cluster, or it errors).
func TestDifferentialSweep(t *testing.T) {
	var loops []*corpus.Loop
	for _, b := range corpus.Trimmed([]string{"tomcatv", "swim", "hydro2d"}, 3) {
		loops = append(loops, b.Loops...)
	}
	if len(loops) != 9 {
		t.Fatalf("trimmed corpus has %d loops, want 9", len(loops))
	}
	for _, cfg := range machine.Table1Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			for _, l := range loops {
				res, err := core.Compile(l.Graph, &cfg, &core.Options{})
				if err != nil {
					t.Fatalf("%s/%s: %v", l.Bench, l.Graph.Name, err)
				}
				s := res.Schedule
				if err := sched.Validate(s); err != nil {
					t.Fatalf("%s/%s: validator rejects: %v", l.Bench, l.Graph.Name, err)
				}
				const iters = 12
				// Value agreement: a missing/late token, bus collision or
				// pressure overflow aborts Run with an error.
				a, err := Run(s, iters)
				if err != nil {
					t.Fatalf("%s/%s: simulator disagrees with scheduler: %v",
						l.Bench, l.Graph.Name, err)
				}
				b, err := Run(s, iters+1)
				if err != nil {
					t.Fatalf("%s/%s: simulator disagrees at %d iters: %v",
						l.Bench, l.Graph.Name, iters+1, err)
				}
				if observedII := b.Cycles - a.Cycles; observedII != s.II {
					t.Errorf("%s/%s: simulator-observed II %d, scheduler claims %d",
						l.Bench, l.Graph.Name, observedII, s.II)
				}
				if want := s.Cycles(iters); a.Cycles != want {
					t.Errorf("%s/%s: simulated %d cycles, closed form says %d",
						l.Bench, l.Graph.Name, a.Cycles, want)
				}
				// Static-vs-dynamic metric agreement (pressure, bus busy).
				if err := Verify(s, iters); err != nil {
					t.Errorf("%s/%s: %v", l.Bench, l.Graph.Name, err)
				}
			}
		})
	}
}

// TestCorpusEndToEnd simulates every corpus loop on the paper's three
// machines, cross-checking static metrics against dynamic observations.
func TestCorpusEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-wide simulation")
	}
	configs := []machine.Config{
		machine.Unified(), machine.TwoCluster(1, 1), machine.FourCluster(2, 2),
	}
	for _, b := range corpus.SPECfp95() {
		for _, l := range b.Loops {
			for i := range configs {
				res, err := core.Compile(l.Graph, &configs[i], &core.Options{Strategy: core.SelectiveUnroll})
				if err != nil {
					t.Fatalf("%s/%s on %s: %v", b.Name, l.Graph.Name, configs[i].Name, err)
				}
				if err := sched.Validate(res.Schedule); err != nil {
					t.Fatalf("%s/%s: %v", b.Name, l.Graph.Name, err)
				}
				if err := Verify(res.Schedule, 12); err != nil {
					t.Fatalf("%s/%s on %s: %v", b.Name, l.Graph.Name, configs[i].Name, err)
				}
			}
		}
	}
}
