package vliwsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

func schedule(t *testing.T, g *ddg.Graph, cfg machine.Config, opts *sched.Options) *sched.Schedule {
	t.Helper()
	s, err := sched.ScheduleGraph(g, &cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunDotProductUnified(t *testing.T) {
	s := schedule(t, ddg.SampleDotProduct(), machine.Unified(), nil)
	res, err := Run(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if want := (50 + s.SC() - 1) * s.II; res.Cycles != want {
		t.Errorf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.OpsExecuted != 50*4 {
		t.Errorf("OpsExecuted = %d, want 200", res.OpsExecuted)
	}
	if res.TransfersExecuted != 0 {
		t.Errorf("unified run executed %d transfers", res.TransfersExecuted)
	}
}

func TestRunCrossClusterTransfers(t *testing.T) {
	g := ddg.New("pair")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpFAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	s := schedule(t, g, machine.TwoCluster(1, 2), &sched.Options{Assignment: []int{0, 1}})
	res, err := Run(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransfersExecuted != 10 {
		t.Errorf("TransfersExecuted = %d, want 10", res.TransfersExecuted)
	}
	if res.BusBusy[0] != 10*2 {
		t.Errorf("BusBusy = %d, want 20 (10 transfers x latency 2)", res.BusBusy[0])
	}
}

func TestRunDetectsLateTransfer(t *testing.T) {
	// Corrupt a valid schedule: delay the consumer's operand transfer so
	// the token misses its read.
	g := ddg.New("pair")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpFAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	s := schedule(t, g, machine.TwoCluster(1, 1), &sched.Options{Assignment: []int{0, 1}})
	bad := *s
	bad.Transfers = append([]sched.Transfer(nil), s.Transfers...)
	bad.Transfers[0].Start += 100
	if _, err := Run(&bad, 5); err == nil {
		t.Error("late transfer not detected")
	} else if !strings.Contains(err.Error(), "not in register file") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunDetectsMissingTransfer(t *testing.T) {
	g := ddg.New("pair")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpFAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	s := schedule(t, g, machine.TwoCluster(1, 1), &sched.Options{Assignment: []int{0, 1}})
	bad := *s
	bad.Transfers = nil
	if _, err := Run(&bad, 5); err == nil {
		t.Error("missing transfer not detected")
	}
}

func TestRunDetectsBusCollision(t *testing.T) {
	// Two producers pinned to cluster 0, consumers to cluster 1, then
	// force both transfers onto the same bus slot.
	g := ddg.New("clash")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpLoad)
	c := g.AddNode("c", machine.OpFAdd)
	d := g.AddNode("d", machine.OpFMul)
	g.AddTrueDep(a.ID, c.ID, 0)
	g.AddTrueDep(b.ID, d.ID, 0)
	s := schedule(t, g, machine.TwoCluster(2, 1), &sched.Options{Assignment: []int{0, 0, 1, 1}})
	if len(s.Transfers) != 2 {
		t.Skipf("expected 2 transfers, got %d", len(s.Transfers))
	}
	bad := *s
	bad.Transfers = append([]sched.Transfer(nil), s.Transfers...)
	bad.Transfers[1].Bus = bad.Transfers[0].Bus
	bad.Transfers[1].Start = bad.Transfers[0].Start
	// Align the consumer so the operand read itself still succeeds.
	if _, err := Run(&bad, 5); err == nil {
		t.Error("bus collision not detected")
	}
}

func TestLoopCarriedTokensFlowAcrossIterations(t *testing.T) {
	// The accumulator reads its own value from the previous iteration;
	// the simulator must match instance i against read i+1.
	s := schedule(t, ddg.SampleDotProduct(), machine.TwoCluster(2, 1), nil)
	if _, err := Run(s, 25); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySamples(t *testing.T) {
	for _, g := range []*ddg.Graph{
		ddg.SampleDotProduct(), ddg.SampleFigure7(), ddg.SampleStencil(),
		ddg.SampleChain(6), ddg.SampleIndependent(9),
		ddg.SampleStencil().Unroll(2), ddg.SampleFigure7().Unroll(2),
	} {
		for _, cfg := range []machine.Config{
			machine.Unified(), machine.TwoCluster(1, 1), machine.TwoCluster(2, 2),
			machine.FourCluster(1, 1), machine.FourCluster(2, 4),
		} {
			s := schedule(t, g, cfg, nil)
			if err := Verify(s, 20); err != nil {
				t.Errorf("%s on %s: %v\n%s", g.Name, cfg.Name, err, s)
			}
		}
	}
}

func TestVerifyRandomSchedules(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	classes := []machine.OpClass{
		machine.OpIAdd, machine.OpIMul, machine.OpLoad,
		machine.OpFAdd, machine.OpFMul, machine.OpStore,
	}
	configs := []machine.Config{
		machine.TwoCluster(1, 1), machine.FourCluster(2, 2), machine.FourCluster(1, 4),
	}
	for trial := 0; trial < 40; trial++ {
		g := ddg.New("rand")
		n := 4 + r.Intn(14)
		for i := 0; i < n; i++ {
			g.AddNode("n", classes[r.Intn(len(classes))])
		}
		demand := 0
		for i := 0; i < 2*n && demand < 20; i++ {
			from, to := r.Intn(n), r.Intn(n)
			if !g.Node(from).Class.ProducesValue() {
				continue
			}
			dist := 0
			if from >= to || r.Intn(5) == 0 {
				dist = 1 + r.Intn(2)
			}
			g.AddTrueDep(from, to, dist)
			demand += 1 + dist
		}
		cfg := configs[trial%len(configs)]
		s, err := sched.ScheduleGraph(g, &cfg, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Verify(s, 12); err != nil {
			t.Fatalf("trial %d on %s: %v\n%s", trial, cfg.Name, err, s)
		}
	}
}

func TestRunRejectsBadIters(t *testing.T) {
	s := schedule(t, ddg.SampleChain(3), machine.Unified(), nil)
	if _, err := Run(s, 0); err == nil {
		t.Error("iters=0 accepted")
	}
}

func TestIPCComputation(t *testing.T) {
	s := schedule(t, ddg.SampleIndependent(12), machine.Unified(), nil)
	res, err := Run(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 12 independent FP ops, 4 FP units: II=3, SC=1 -> IPC ~ 4.
	if res.IPC < 3.5 || res.IPC > 4.01 {
		t.Errorf("IPC = %.2f, want ~4", res.IPC)
	}
}
