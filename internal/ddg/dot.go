package ddg

import (
	"fmt"
	"strings"
)

// Dot renders the graph in Graphviz DOT syntax, one node per operation
// with its class, and edges annotated "latency/distance".  Loop-carried
// edges are dashed.  Handy for debugging corpora and schedulers.
func (g *Graph) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=TB;\n")
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n%s\"];\n", n.ID, n.Name, n.Class)
	}
	for _, e := range g.edges {
		style := ""
		if e.Distance > 0 {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d/%d\"%s];\n",
			e.From, e.To, e.Latency, e.Distance, style)
	}
	b.WriteString("}\n")
	return b.String()
}
