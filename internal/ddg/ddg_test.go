package ddg

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New("t")
	for i := 0; i < 5; i++ {
		n := g.AddNode("n", machine.OpIAdd)
		if n.ID != i {
			t.Fatalf("node %d got ID %d", i, n.ID)
		}
		if n.Orig != i || n.Copy != 0 {
			t.Fatalf("node %d: Orig=%d Copy=%d, want %d,0", i, n.Orig, n.Copy, i)
		}
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
}

func TestAdjacency(t *testing.T) {
	g := SampleDotProduct()
	// mul (ID 2) has two predecessors (loads) and one successor (acc).
	if got := g.Preds(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Preds(mul) = %v, want [0 1]", got)
	}
	if got := g.Succs(2); len(got) != 1 || got[0] != 3 {
		t.Errorf("Succs(mul) = %v, want [3]", got)
	}
	// acc (ID 3) is its own predecessor and successor via the recurrence.
	if got := g.Preds(3); len(got) != 2 { // mul and acc itself
		t.Errorf("Preds(acc) = %v, want 2 entries", got)
	}
	if got := g.OutEdges(3); len(got) != 1 || got[0].Distance != 1 {
		t.Errorf("OutEdges(acc) = %v, want single distance-1 edge", got)
	}
}

func TestValidateAcceptsSamples(t *testing.T) {
	for _, g := range []*Graph{
		SampleDotProduct(), SampleFigure7(), SampleChain(8),
		SampleIndependent(6), SampleStencil(),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: Validate = %v", g.Name, err)
		}
	}
}

func TestValidateRejectsZeroDistanceCycle(t *testing.T) {
	g := New("cyc")
	a := g.AddNode("a", machine.OpIAdd)
	b := g.AddNode("b", machine.OpIAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	g.AddTrueDep(b.ID, a.ID, 0)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a distance-0 cycle")
	}
}

func TestValidateRejectsTrueDepFromStore(t *testing.T) {
	g := New("bad")
	st := g.AddNode("st", machine.OpStore)
	b := g.AddNode("b", machine.OpIAdd)
	g.AddEdge(st.ID, b.ID, 1, 0, DepTrue)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a true dependence out of a store")
	}
}

func TestResMII(t *testing.T) {
	uni := machine.Unified()
	four := machine.FourCluster(1, 1)
	cases := []struct {
		g    *Graph
		cfg  *machine.Config
		want int
	}{
		{SampleDotProduct(), &uni, 1},   // 2 MEM/4, 2 FP/4
		{SampleIndependent(9), &uni, 3}, // 9 FP / 4
		{SampleFigure7(), &uni, 2},      // 6 INT / 4 (paper: ResMII = ceil(6/4) = 2)
		{SampleIndependent(9), &four, 3},
		{SampleChain(4), &four, 1},
	}
	for _, c := range cases {
		if got := c.g.ResMII(c.cfg); got != c.want {
			t.Errorf("%s on %s: ResMII = %d, want %d", c.g.Name, c.cfg.Name, got, c.want)
		}
	}
}

func TestRecMII(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{SampleDotProduct(), 3}, // fadd self-loop: lat 3 / dist 1
		{SampleChain(5), 0},     // acyclic
		{SampleFigure7(), 2},    // lat 3 cycle over distance 2 (paper: ceil(3/2) = 2)
		{SampleStencil(), 3},    // fadd accumulator
	}
	for _, c := range cases {
		if got := c.g.RecMII(); got != c.want {
			t.Errorf("%s: RecMII = %d, want %d", c.g.Name, got, c.want)
		}
	}
}

func TestRecMIIMultiCycle(t *testing.T) {
	// Two nested cycles; the binding one has ratio 7/1.
	g := New("m")
	a := g.AddNode("a", machine.OpFAdd)
	b := g.AddNode("b", machine.OpFMul)
	g.AddTrueDep(a.ID, b.ID, 0) // lat 3
	g.AddTrueDep(b.ID, a.ID, 1) // lat 4: cycle lat 7 dist 1 -> 7
	g.AddTrueDep(a.ID, a.ID, 2) // lat 3 dist 2 -> ceil(1.5) = 2
	if got := g.RecMII(); got != 7 {
		t.Errorf("RecMII = %d, want 7", got)
	}
}

func TestMinII(t *testing.T) {
	uni := machine.Unified()
	g := SampleDotProduct()
	if got := g.MinII(&uni); got != 3 { // RecMII 3 dominates ResMII 1
		t.Errorf("MinII = %d, want 3", got)
	}
	ind := SampleIndependent(13)
	if got := ind.MinII(&uni); got != 4 { // ResMII ceil(13/4)
		t.Errorf("MinII = %d, want 4", got)
	}
}

func TestSCCsFindRecurrences(t *testing.T) {
	g := SampleFigure7()
	recs := g.Recurrences()
	if len(recs) != 1 {
		t.Fatalf("Recurrences = %d, want 1", len(recs))
	}
	if got := recs[0].Nodes; len(got) != 3 { // B, C, D
		t.Errorf("recurrence members = %v, want 3 nodes", got)
	}
	if recs[0].RecMII != 2 {
		t.Errorf("recurrence RecMII = %d, want 2", recs[0].RecMII)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := SampleDotProduct()
	recs := g.Recurrences()
	if len(recs) != 1 || len(recs[0].Nodes) != 1 || recs[0].Nodes[0] != 3 {
		t.Fatalf("Recurrences = %+v, want single self-loop on node 3", recs)
	}
	if recs[0].RecMII != 3 {
		t.Errorf("self-loop RecMII = %d, want 3", recs[0].RecMII)
	}
}

func TestRecurrencesSortedByRecMII(t *testing.T) {
	g := New("two-recs")
	a := g.AddNode("a", machine.OpIAdd) // self-loop ratio 1
	b := g.AddNode("b", machine.OpFDiv) // self-loop ratio 17
	g.AddTrueDep(a.ID, a.ID, 1)
	g.AddTrueDep(b.ID, b.ID, 1)
	recs := g.Recurrences()
	if len(recs) != 2 || recs[0].RecMII != 17 || recs[1].RecMII != 1 {
		t.Fatalf("Recurrences order wrong: %+v", recs)
	}
}

func TestAnalyzeChain(t *testing.T) {
	g := SampleChain(4) // fadd chain, latency 3 each
	a := g.Analyze()
	wantASAP := []int{0, 3, 6, 9}
	for i, w := range wantASAP {
		if a.ASAP[i] != w {
			t.Errorf("ASAP[%d] = %d, want %d", i, a.ASAP[i], w)
		}
		if a.ALAP[i] != w {
			t.Errorf("ALAP[%d] = %d, want %d (chain has no slack)", i, a.ALAP[i], w)
		}
		if a.Mobility[i] != 0 {
			t.Errorf("Mobility[%d] = %d, want 0", i, a.Mobility[i])
		}
	}
	if a.CriticalPath != 9 {
		t.Errorf("CriticalPath = %d, want 9", a.CriticalPath)
	}
}

func TestAnalyzeDiamondSlack(t *testing.T) {
	// a -> (b slow, c fast) -> d : c has slack.
	g := New("diamond")
	a := g.AddNode("a", machine.OpLoad) // lat 2
	b := g.AddNode("b", machine.OpFDiv) // lat 17
	c := g.AddNode("c", machine.OpFAdd) // lat 3
	d := g.AddNode("d", machine.OpFAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	g.AddTrueDep(a.ID, c.ID, 0)
	g.AddTrueDep(b.ID, d.ID, 0)
	g.AddTrueDep(c.ID, d.ID, 0)
	an := g.Analyze()
	if an.Mobility[b.ID] != 0 {
		t.Errorf("Mobility[b] = %d, want 0 (critical)", an.Mobility[b.ID])
	}
	if an.Mobility[c.ID] != 14 { // 17-3
		t.Errorf("Mobility[c] = %d, want 14", an.Mobility[c.ID])
	}
	if an.Height[a.ID] != 19+2-2 { // CP - ALAP[a]; CP = 2+17 = 19, ALAP[a] = 0
		t.Errorf("Height[a] = %d, want 19", an.Height[a.ID])
	}
}

func TestAnalyzeIgnoresLoopCarried(t *testing.T) {
	g := SampleDotProduct()
	a := g.Analyze()
	// The distance-1 self edge on acc must not create infinite ASAP.
	if a.ASAP[3] != 6 { // load(2) + fmul(4)
		t.Errorf("ASAP[acc] = %d, want 6", a.ASAP[3])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := SampleIndependent(3)
	if comps := g.ConnectedComponents(); len(comps) != 3 {
		t.Errorf("independent: %d components, want 3", len(comps))
	}
	g2 := SampleDotProduct()
	if comps := g2.ConnectedComponents(); len(comps) != 1 {
		t.Errorf("dotproduct: %d components, want 1", len(comps))
	}
	// Unrolled independent iterations stay disconnected.
	g3 := SampleStencil().Unroll(2)
	comps := g3.ConnectedComponents()
	if len(comps) != 1 { // stencil has a carried accumulator joining copies
		t.Errorf("stencil x2: %d components, want 1", len(comps))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := SampleDotProduct()
	c := g.Clone()
	c.AddNode("extra", machine.OpIAdd)
	c.Edges()[0].Latency = 99
	if g.NumNodes() != 4 {
		t.Error("Clone shares node slice with original")
	}
	if g.Edges()[0].Latency == 99 {
		t.Error("Clone shares edge structs with original")
	}
}

func TestDotOutput(t *testing.T) {
	s := SampleDotProduct().Dot()
	for _, want := range []string{"digraph", "fmul", "style=dashed"} {
		if !strings.Contains(s, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := SampleChain(5)
	anc := g.AncestorsWithin([]int{3}, nil)
	for _, want := range []int{0, 1, 2} {
		if !anc[want] {
			t.Errorf("AncestorsWithin missing %d", want)
		}
	}
	if anc[3] || anc[4] {
		t.Errorf("AncestorsWithin included target or descendant: %v", anc)
	}
	desc := g.DescendantsWithin([]int{1}, nil)
	if !desc[2] || !desc[3] || !desc[4] || desc[0] {
		t.Errorf("DescendantsWithin(1) = %v", desc)
	}
}

func TestLoopCarried(t *testing.T) {
	g := SampleFigure7()
	lc := g.LoopCarried()
	if len(lc) != 2 { // D->B dist 2, A->E dist 1
		t.Fatalf("LoopCarried = %d edges, want 2", len(lc))
	}
}
