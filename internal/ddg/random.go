package ddg

import (
	"math/rand"

	"repro/internal/machine"
)

// Random builds a small pseudo-random DDG from a fuzz-style triple; the
// scheduler fuzzer and the BSA-vs-exact differential test share it so
// both walk the same graph family.  nNodes == 0 selects one of the
// known-good sample graphs (scaled by seed), so the corpus stays
// anchored on the shapes the paper discusses; otherwise a random DAG of
// nNodes operations is grown with forward true dependences from value
// producers, a sprinkle of memory-ordering edges, and up to two
// loop-carried recurrences.  Returns nil when the generated graph fails
// Validate.
func Random(seed uint64, nNodes, nExtra uint8) *Graph {
	if nNodes == 0 {
		switch seed % 5 {
		case 0:
			return SampleDotProduct()
		case 1:
			return SampleFigure7()
		case 2:
			return SampleStencil()
		case 3:
			return SampleChain(3 + int(seed/5)%8)
		default:
			return SampleIndependent(2 + int(seed/5)%10)
		}
	}
	n := int(nNodes)
	if n > 16 {
		n = 2 + n%15
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	classes := []machine.OpClass{
		machine.OpIAdd, machine.OpIMul, machine.OpLoad, machine.OpStore,
		machine.OpFAdd, machine.OpFMul, machine.OpFDiv,
	}
	g := New("fuzz")
	for i := 0; i < n; i++ {
		g.AddNode("n", classes[rng.Intn(len(classes))])
	}
	// Forward edges keep the zero-distance subgraph acyclic; true deps
	// must leave a value-producing node.
	for i := 1; i < n; i++ {
		from := rng.Intn(i)
		if g.Node(from).Class.ProducesValue() {
			g.AddTrueDep(from, i, 0)
		} else {
			g.AddMemDep(from, i, 0)
		}
	}
	// The full byte is honored: this used to read int(nExtra)%8, which
	// silently capped the extra-edge knob at 7 no matter what the caller
	// asked for (TestRandomExtraEdgesHonored pins the fix).  The uint8
	// signature stays byte-shaped so existing fuzz-corpus entries decode
	// to the same (seed, nNodes, nExtra) triples.
	for e := 0; e < int(nExtra); e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		switch {
		case a < b && g.Node(a).Class.ProducesValue():
			g.AddTrueDep(a, b, rng.Intn(2))
		case a < b:
			g.AddMemDep(a, b, rng.Intn(2))
		case g.Node(a).Class.ProducesValue():
			// Backward or self edge: loop-carried only.
			g.AddTrueDep(a, b, 1+rng.Intn(2))
		}
	}
	if g.Validate() != nil {
		return nil
	}
	return g
}
