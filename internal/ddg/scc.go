package ddg

import "sort"

// SCC is one strongly connected component of the graph (all edge
// distances considered).  An SCC with more than one node, or a single
// node with a self-edge, is a recurrence: it constrains the II.
type SCC struct {
	// Nodes lists the member node IDs in ascending order.
	Nodes []int
	// Recurrence reports whether the component constrains the II.
	Recurrence bool
	// RecMII is the minimum II imposed by this component's cycles
	// (0 for non-recurrences).
	RecMII int
}

// SCCs computes the strongly connected components with Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine
// stack) and each recurrence's RecMII.  Components are returned in
// reverse topological discovery order; callers needing the paper's
// priority order should sort by RecMII descending.
func (g *Graph) SCCs() []*SCC { return g.tarjan(true) }

// tarjan runs the SCC decomposition; with all == false only recurrence
// components (multi-node, or single node with a self-edge) are
// materialised, which keeps hot callers like Recurrences from
// allocating one SCC per trivial singleton.
func (g *Graph) tarjan(all bool) []*SCC {
	n := len(g.nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	stack := make([]int, 0, n)
	var comps []*SCC
	next := 0

	type frame struct {
		v    int
		edge int
	}
	frameBuf := make([]frame, 0, n)
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := append(frameBuf[:0], frame{v: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(g.out[f.v]) {
				w := g.out[f.v][f.edge].To
				f.edge++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// Pop the component off the shared stack in place.
				top := len(stack)
				base := top
				for {
					base--
					w := stack[base]
					onStack[w] = false
					if w == v {
						break
					}
				}
				popped := stack[base:top]
				stack = stack[:base]
				if all || g.isRecurrence(popped) {
					members := append([]int(nil), popped...)
					sort.Ints(members)
					comps = append(comps, &SCC{Nodes: members})
				}
			}
		}
	}

	for _, c := range comps {
		c.Recurrence = g.isRecurrence(c.Nodes)
		if c.Recurrence {
			c.RecMII = g.recMIIOfSubgraph(c.Nodes)
		}
	}
	return comps
}

// isRecurrence reports whether the node set contains a cycle: more than
// one member, or a self-edge.
func (g *Graph) isRecurrence(nodes []int) bool {
	if len(nodes) > 1 {
		return true
	}
	v := nodes[0]
	for _, e := range g.out[v] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Recurrences returns only the recurrence SCCs, sorted by RecMII
// descending (the paper's ordering priority), ties broken by smallest
// member ID for determinism.  Trivial singleton components are never
// materialised.
func (g *Graph) Recurrences() []*SCC {
	recs := g.tarjan(false)
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].RecMII != recs[j].RecMII {
			return recs[i].RecMII > recs[j].RecMII
		}
		return recs[i].Nodes[0] < recs[j].Nodes[0]
	})
	return recs
}
