package ddg

import "sort"

// Analysis holds the per-node scheduling priorities used by the SMS
// ordering: all values are computed over the acyclic subgraph formed by
// distance-0 edges (loop-carried edges are handled separately through
// the recurrence priority sets).
type Analysis struct {
	// ASAP is the earliest issue cycle assuming unlimited resources.
	ASAP []int
	// ALAP is the latest issue cycle that does not stretch the critical
	// path.
	ALAP []int
	// Mobility is ALAP - ASAP (0 on the critical path).
	Mobility []int
	// Depth is the longest latency-weighted path from any source
	// (equals ASAP).
	Depth []int
	// Height is the longest latency-weighted path to any sink.
	Height []int
	// CriticalPath is the length of the longest path through the body.
	CriticalPath int
}

// Analyze computes ASAP/ALAP/depth/height/mobility over distance-0 edges.
// The graph must be a DAG over those edges (Validate enforces this).
func (g *Graph) Analyze() *Analysis {
	n := len(g.nodes)
	back := make([]int, 5*n) // one backing array for all five tables
	a := &Analysis{
		ASAP:     back[0*n : 1*n : 1*n],
		ALAP:     back[1*n : 2*n : 2*n],
		Mobility: back[2*n : 3*n : 3*n],
		Depth:    back[3*n : 4*n : 4*n],
		Height:   back[4*n : 5*n : 5*n],
	}
	order := g.topoZeroDistance()

	// Forward pass: ASAP / Depth.
	for _, v := range order {
		for _, e := range g.in[v] {
			if e.Distance != 0 {
				continue
			}
			if t := a.ASAP[e.From] + e.Latency; t > a.ASAP[v] {
				a.ASAP[v] = t
			}
		}
	}
	cp := 0
	for v := range g.nodes {
		a.Depth[v] = a.ASAP[v]
		if a.ASAP[v] > cp {
			cp = a.ASAP[v]
		}
	}
	a.CriticalPath = cp

	// Backward pass: ALAP / Height.
	for v := range g.nodes {
		a.ALAP[v] = cp
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, e := range g.out[v] {
			if e.Distance != 0 {
				continue
			}
			if t := a.ALAP[e.To] - e.Latency; t < a.ALAP[v] {
				a.ALAP[v] = t
			}
		}
	}
	for v := range g.nodes {
		a.Height[v] = cp - a.ALAP[v]
		a.Mobility[v] = a.ALAP[v] - a.ASAP[v]
	}
	return a
}

// topoZeroDistance returns a topological order of the distance-0
// subgraph (Kahn's algorithm; deterministic by smallest ID first).
func (g *Graph) topoZeroDistance() []int {
	n := len(g.nodes)
	back := make([]int, n, 3*n)
	indeg := back[:n:n]
	for _, e := range g.edges {
		if e.Distance == 0 {
			indeg[e.To]++
		}
	}
	ready := back[n : n : 2*n]
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := back[2*n : 2*n : 3*n]
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			if e.Distance != 0 {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(order) != n {
		panic("ddg: distance-0 subgraph has a cycle; Validate the graph first")
	}
	return order
}

// ConnectedComponents partitions the nodes into weakly connected
// components (all edges, both directions, any distance).  The scheduler
// starts a fresh default cluster for each new component ("subgraph" in
// the paper's terms).
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.nodes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for _, e := range g.edges {
		union(e.From, e.To)
	}
	// Two counting passes turn the union-find into exactly-sized member
	// slices over one backing array — no map, no sort, no regrowth.
	// Scanning nodes in ascending ID orders each component's members
	// ascending and the components by smallest member.
	size := make([]int, n)
	nComps := 0
	for v := 0; v < n; v++ {
		r := find(v)
		if size[r] == 0 {
			nComps++
		}
		size[r]++
	}
	comps := make([][]int, 0, nComps)
	backing := make([]int, 0, n)
	idx := size // reuse: idx[root] = component index + 1, 0 = unseen
	for v := 0; v < n; v++ {
		r := find(v)
		if idx[r] <= n { // first member: carve this component's slice
			sz := idx[r]
			comps = append(comps, backing[len(backing):len(backing):len(backing)+sz])
			backing = backing[:len(backing)+sz]
			idx[r] = n + len(comps)
		}
		c := idx[r] - n - 1
		comps[c] = append(comps[c], v)
	}
	return comps
}

// AncestorsWithin returns the IDs in `within` from which `targets` are
// reachable via distance-0 edges, excluding the targets themselves.
// Used by the SMS ordering to pull path nodes between priority sets.
func (g *Graph) AncestorsWithin(targets []int, within map[int]bool) map[int]bool {
	return g.reach(targets, within, func(v int) []*Edge { return g.in[v] },
		func(e *Edge) int { return e.From })
}

// DescendantsWithin is the forward counterpart of AncestorsWithin.
func (g *Graph) DescendantsWithin(targets []int, within map[int]bool) map[int]bool {
	return g.reach(targets, within, func(v int) []*Edge { return g.out[v] },
		func(e *Edge) int { return e.To })
}

func (g *Graph) reach(targets []int, within map[int]bool,
	adj func(int) []*Edge, end func(*Edge) int) map[int]bool {

	seen := make(map[int]bool)
	stack := append([]int(nil), targets...)
	start := make(map[int]bool, len(targets))
	for _, t := range targets {
		start[t] = true
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj(v) {
			if e.Distance != 0 {
				continue
			}
			w := end(e)
			if seen[w] || start[w] {
				continue
			}
			if within != nil && !within[w] {
				continue
			}
			seen[w] = true
			stack = append(stack, w)
		}
	}
	return seen
}
