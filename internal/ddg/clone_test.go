package ddg

import "testing"

// Copy safety is enforced statically by vliwlint's graphcopy analyzer
// (internal/analysis), which replaced the throwaway vet-probe module
// this file used to spawn; the tests here pin the runtime halves of
// the same fix: Clone and UnmarshalJSON must replace the graph's
// cached identity, never alias it.

// TestDecodeReplacesIdentity pins the UnmarshalJSON half: decoding
// into a Graph whose fingerprint was already taken must replace the
// cached identity, not keep serving the old hash.
func TestDecodeReplacesIdentity(t *testing.T) {
	a := New("a")
	a.AddNode("x", 0)
	blob, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	b := New("b")
	b.AddNode("y", 0)
	b.AddNode("z", 0)
	oldFP := b.Fingerprint()

	if err := b.UnmarshalJSON(blob); err != nil {
		t.Fatal(err)
	}
	if got := b.Fingerprint(); got == oldFP {
		t.Fatalf("fingerprint survived UnmarshalJSON: %s", got)
	}
	if want := a.Fingerprint(); b.Fingerprint() != want {
		t.Fatalf("decoded fingerprint %s, want the encoded graph's %s", b.Fingerprint(), want)
	}
}

// TestCloneIndependence pins Clone: the copy starts with fresh caches,
// so mutating it never disturbs the original's fingerprint or memos.
func TestCloneIndependence(t *testing.T) {
	g := New("orig")
	n0 := g.AddNode("x", 0)
	n1 := g.AddNode("y", 0)
	g.AddTrueDep(n0.ID, n1.ID, 0)
	fp := g.Fingerprint()
	memo := g.Memoize("probe", func() any { return 42 })

	c := g.Clone()
	if c.Fingerprint() != fp {
		t.Fatalf("clone fingerprint %s, want %s", c.Fingerprint(), fp)
	}
	c.AddNode("extra", 0)
	if c.Fingerprint() == fp {
		t.Fatal("mutated clone kept the original fingerprint")
	}
	if g.Fingerprint() != fp {
		t.Fatal("mutating the clone disturbed the original's fingerprint")
	}
	if got := g.Memoize("probe", func() any { return -1 }); got != memo {
		t.Fatalf("original memo lost after clone mutation: got %v", got)
	}
	if got := c.Memoize("probe", func() any { return 7 }); got != 7 {
		t.Fatalf("clone shared the original's memo table: got %v", got)
	}
}
