package ddg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestUnrollByOneIsClone(t *testing.T) {
	g := SampleDotProduct()
	u := g.Unroll(1)
	if u.NumNodes() != g.NumNodes() || u.NumEdges() != g.NumEdges() {
		t.Fatalf("Unroll(1) changed sizes: %s vs %s", u, g)
	}
	if u.UnrollFactor != 1 {
		t.Errorf("UnrollFactor = %d, want 1", u.UnrollFactor)
	}
}

func TestUnrollSizes(t *testing.T) {
	g := SampleStencil()
	u := g.Unroll(4)
	if u.NumNodes() != 4*g.NumNodes() {
		t.Errorf("nodes = %d, want %d", u.NumNodes(), 4*g.NumNodes())
	}
	if u.NumEdges() != 4*g.NumEdges() {
		t.Errorf("edges = %d, want %d", u.NumEdges(), 4*g.NumEdges())
	}
	if u.UnrollFactor != 4 {
		t.Errorf("UnrollFactor = %d, want 4", u.UnrollFactor)
	}
	if err := u.Validate(); err != nil {
		t.Errorf("unrolled graph invalid: %v", err)
	}
}

func TestUnrollDistanceOneRecurrence(t *testing.T) {
	// acc -> acc at distance 1, unrolled by 2: acc0 -> acc1 at distance 0
	// and acc1 -> acc0 at distance 1 (one chained cycle, ratio doubled).
	g := New("r")
	a := g.AddNode("acc", machine.OpFAdd)
	g.AddTrueDep(a.ID, a.ID, 1)
	u := g.Unroll(2)
	if got := u.RecMII(); got != 6 { // 2 fadds (lat 3) per traversal, distance 1
		t.Errorf("RecMII of unrolled self-loop = %d, want 6", got)
	}
	var d0, d1 int
	for _, e := range u.Edges() {
		switch e.Distance {
		case 0:
			d0++
		case 1:
			d1++
		default:
			t.Errorf("unexpected distance %d", e.Distance)
		}
	}
	if d0 != 1 || d1 != 1 {
		t.Errorf("distance histogram d0=%d d1=%d, want 1,1", d0, d1)
	}
}

func TestUnrollDistanceTwoSplitsCycles(t *testing.T) {
	// Distance-2 self-recurrence unrolled by 2 splits into two distance-1
	// self-loops: each copy recurses with itself, no cross-copy edge.
	g := New("r2")
	a := g.AddNode("acc", machine.OpFAdd)
	g.AddTrueDep(a.ID, a.ID, 2)
	u := g.Unroll(2)
	for _, e := range u.Edges() {
		if e.From != e.To || e.Distance != 1 {
			t.Errorf("edge %d->%d dist %d, want self-loop dist 1", e.From, e.To, e.Distance)
		}
	}
	if got := u.RecMII(); got != 3 {
		t.Errorf("RecMII = %d, want 3", got)
	}
}

func TestUnrollDistanceExceedingFactor(t *testing.T) {
	g := New("far")
	a := g.AddNode("a", machine.OpIAdd)
	b := g.AddNode("b", machine.OpIAdd)
	g.AddTrueDep(a.ID, b.ID, 5)
	u := g.Unroll(2)
	// Consumer copy 0 (orig iter 2K) needs producer of iter 2K-5 = copy 1
	// of new-iter K-3; consumer copy 1 needs iter 2K-4 = copy 0, K-2.
	type key struct{ from, to, dist int }
	want := map[key]bool{
		{1*2 + 0, 0*2 + 1, 3}: true, // a.1 -> b.0  (IDs: copy*n + orig, n=2)
		{0*2 + 0, 1*2 + 1, 2}: true, // a.0 -> b.1
	}
	// Node IDs: copy i of node v is i*n+v with n=2: a.0=0, b.0=1, a.1=2, b.1=3.
	got := map[key]bool{}
	for _, e := range u.Edges() {
		got[key{e.From, e.To, e.Distance}] = true
	}
	wantEdges := map[key]bool{
		{2, 1, 3}: true, // a.1 -> b.0 dist 3
		{0, 3, 2}: true, // a.0 -> b.1 dist 2
	}
	_ = want
	for k := range wantEdges {
		if !got[k] {
			t.Errorf("missing edge %+v in %v", k, got)
		}
	}
}

func TestUnrollPreservesOrigMetadata(t *testing.T) {
	g := SampleDotProduct()
	u := g.Unroll(3)
	counts := map[int]int{}
	for _, n := range u.Nodes() {
		counts[n.Orig]++
		if n.Class != g.Node(n.Orig).Class {
			t.Errorf("copy %s changed class", n.Name)
		}
	}
	for orig, c := range counts {
		if c != 3 {
			t.Errorf("orig node %d has %d copies, want 3", orig, c)
		}
	}
}

func TestUnrollTwiceComposes(t *testing.T) {
	g := SampleStencil()
	u := g.Unroll(2).Unroll(3)
	if u.UnrollFactor != 6 {
		t.Errorf("UnrollFactor = %d, want 6", u.UnrollFactor)
	}
	if u.NumNodes() != 6*g.NumNodes() {
		t.Errorf("nodes = %d, want %d", u.NumNodes(), 6*g.NumNodes())
	}
}

func TestDepsNotMultiple(t *testing.T) {
	g := New("mix")
	a := g.AddNode("a", machine.OpIAdd)
	b := g.AddNode("b", machine.OpIAdd)
	g.AddTrueDep(a.ID, b.ID, 0) // intra-iteration: never counts
	g.AddTrueDep(a.ID, b.ID, 1) // not multiple of 2
	g.AddTrueDep(a.ID, b.ID, 2) // multiple of 2
	g.AddTrueDep(a.ID, b.ID, 3) // not multiple of 2
	g.AddMemDep(a.ID, b.ID, 1)  // ordering only: never counts
	if got := g.DepsNotMultiple(2); got != 2 {
		t.Errorf("DepsNotMultiple(2) = %d, want 2", got)
	}
	if got := g.DepsNotMultiple(3); got != 2 { // distances 1 and 2
		t.Errorf("DepsNotMultiple(3) = %d, want 2", got)
	}
	if got := g.DepsNotMultiple(1); got != 0 {
		t.Errorf("DepsNotMultiple(1) = %d, want 0", got)
	}
}

// randomGraph builds a pseudo-random valid DDG: distance-0 edges only go
// forward (keeping the intra-iteration subgraph acyclic), loop-carried
// edges go anywhere.
func randomGraph(r *rand.Rand) *Graph {
	g := New("rand")
	n := 2 + r.Intn(14)
	classes := []machine.OpClass{
		machine.OpIAdd, machine.OpIMul, machine.OpLoad,
		machine.OpFAdd, machine.OpFMul,
	}
	for i := 0; i < n; i++ {
		g.AddNode("n", classes[r.Intn(len(classes))])
	}
	edges := r.Intn(3 * n)
	for i := 0; i < edges; i++ {
		from, to := r.Intn(n), r.Intn(n)
		dist := 0
		if from >= to || r.Intn(3) == 0 {
			dist = 1 + r.Intn(4)
		}
		g.AddTrueDep(from, to, dist)
	}
	return g
}

func TestUnrollPropertyInvariants(t *testing.T) {
	// For any valid graph and factor u:
	//   * node count scales by u, edge count scales by u
	//   * per original edge, the u copy-edge distances sum to the original
	//   * the unrolled graph is valid
	prop := func(seed int64, uRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		u := 1 + int(uRaw%5)
		ug := g.Unroll(u)
		if ug.NumNodes() != u*g.NumNodes() || ug.NumEdges() != u*g.NumEdges() {
			return false
		}
		if err := ug.Validate(); err != nil {
			return false
		}
		// Distance-sum check: group copy edges by original (From,To,index).
		// Unroll emits the u copies of each original edge consecutively.
		orig := g.Edges()
		copies := ug.Edges()
		for i, oe := range orig {
			sum := 0
			for k := 0; k < u; k++ {
				sum += copies[i*u+k].Distance
			}
			if sum != oe.Distance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecMIIPropertyFeasibility(t *testing.T) {
	// RecMII must be tight: II = RecMII admits no positive cycle, and
	// II = RecMII-1 (when >= 1) must admit one.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		rec := g.RecMII()
		if rec == 0 {
			return !g.hasCycle()
		}
		ids := allIDs(g.NumNodes())
		in := make([]bool, g.NumNodes())
		for _, v := range ids {
			in[v] = true
		}
		dist := make([]int, g.NumNodes())
		if !g.iiFeasible(ids, in, dist, rec) {
			return false
		}
		if rec > 1 && g.iiFeasible(ids, in, dist, rec-1) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUnrollPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unroll(0) did not panic")
		}
	}()
	SampleChain(2).Unroll(0)
}
