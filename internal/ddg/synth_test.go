package ddg

import (
	"testing"
)

// TestRandomExtraEdgesHonored is the regression for the silent density
// cap: Random used to run its extra-edge loop int(nExtra)%8 times, so
// no byte value could add more than 7 edges.  A 14-node body has 13
// spanning edges; with the cap the total could never exceed 20, while
// an honored knob of 255 attempts lands far above it.
func TestRandomExtraEdgesHonored(t *testing.T) {
	g := Random(42, 14, 255)
	if g == nil {
		t.Fatal("Random(42, 14, 255) returned nil")
	}
	const oldCapMax = 13 + 7
	if g.NumEdges() <= oldCapMax {
		t.Fatalf("Random(42, 14, 255) has %d edges, within the old %%8 cap's maximum %d: density knob is truncated",
			g.NumEdges(), oldCapMax)
	}
	// And the knob is monotone in expectation: a big request yields
	// strictly more edges than a small one on the same seed.
	lo := Random(42, 14, 2)
	if lo == nil || g.NumEdges() <= lo.NumEdges() {
		t.Fatalf("edge count did not grow with the knob: 255 extras -> %d edges, 2 extras -> %d",
			g.NumEdges(), lo.NumEdges())
	}
}

// TestSynthDensityHonored asserts Synth adds exactly the requested
// number of extra edges on top of the structural ones, with no
// truncation at any scale.
func TestSynthDensityHonored(t *testing.T) {
	base := SynthSpec{Seed: 7, Nodes: 64}
	for _, density := range []float64{0, 0.5, 2, 8} {
		spec := base
		spec.ExtraEdgeDensity = density
		g, err := Synth(spec)
		if err != nil {
			t.Fatalf("Synth(density=%v): %v", density, err)
		}
		zero := base
		g0, err := Synth(zero)
		if err != nil {
			t.Fatal(err)
		}
		wantExtra := int(density*float64(spec.Nodes) + 0.5)
		if got := g.NumEdges() - g0.NumEdges(); got != wantExtra {
			t.Errorf("density %v: %d extra edges, want exactly %d", density, got, wantExtra)
		}
	}
}

// TestSynthShape checks the structural knobs: exact node count,
// recurrence-free graphs when the density is 0, and loop-carried
// cycles when it is high.
func TestSynthShape(t *testing.T) {
	for _, nodes := range []int{2, 3, 16, 100, 1000} {
		g, err := Synth(SynthSpec{Seed: 1, Nodes: nodes, RecurrenceDensity: 0.3, ExtraEdgeDensity: 1, ClusterAffinity: 0.5})
		if err != nil {
			t.Fatalf("Synth(nodes=%d): %v", nodes, err)
		}
		if g.NumNodes() != nodes {
			t.Errorf("nodes=%d: got %d nodes", nodes, g.NumNodes())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("nodes=%d: invalid graph: %v", nodes, err)
		}
	}

	flat, err := Synth(SynthSpec{Seed: 3, Nodes: 40})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(flat.LoopCarried()); n != 0 {
		t.Errorf("zero recurrence density produced %d loop-carried edges", n)
	}
	rec, err := Synth(SynthSpec{Seed: 3, Nodes: 40, RecurrenceDensity: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec.LoopCarried()); n == 0 {
		t.Error("recurrence density 0.8 produced no loop-carried edges")
	}
}

// TestSynthDeterministic asserts the same spec reproduces the same
// graph, fingerprint-identical, and that the seed actually matters.
func TestSynthDeterministic(t *testing.T) {
	spec := SynthSpec{Seed: 99, Nodes: 48, RecurrenceDensity: 0.4, ExtraEdgeDensity: 1.5, ClusterAffinity: 0.7}
	a, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same spec produced different fingerprints")
	}
	spec.Seed = 100
	c, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds produced identical graphs")
	}
}

// TestSynthSpecValidate rejects out-of-range knobs.
func TestSynthSpecValidate(t *testing.T) {
	bad := []SynthSpec{
		{Nodes: 1},
		{Nodes: 8, RecurrenceDensity: 1.5},
		{Nodes: 8, RecurrenceDensity: -0.1},
		{Nodes: 8, ExtraEdgeDensity: -1},
		{Nodes: 8, ClusterAffinity: 2},
		{Nodes: 8, MaxDistance: -1},
	}
	for _, spec := range bad {
		if _, err := Synth(spec); err == nil {
			t.Errorf("Synth(%+v) accepted an invalid spec", spec)
		}
	}
}
