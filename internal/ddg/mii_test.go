package ddg

import (
	"testing"

	"repro/internal/machine"
)

// TestBusMIIRaisesFloor covers the satellite audit's finding: the II
// search used to start below the bus-latency feasibility floor.  A
// true-dependence-connected chain of 4 FP adds on the 4-cluster machine
// (1 FP unit per cluster) cannot fit one cluster below II 4, and with a
// 2-cycle bus no transfer fits below II 2 — so II 1 is provably
// infeasible and MinII must say so.
func TestBusMIIRaisesFloor(t *testing.T) {
	g := SampleChain(4)
	cfg := machine.FourCluster(1, 2)
	if got := g.ResMII(&cfg); got != 1 {
		t.Fatalf("ResMII = %d, want 1 (precondition)", got)
	}
	if got := g.RecMII(); got != 0 {
		t.Fatalf("RecMII = %d, want 0 (precondition)", got)
	}
	if got := g.BusMII(&cfg); got != 2 {
		t.Errorf("BusMII = %d, want 2 (bus latency)", got)
	}
	if got := g.MinII(&cfg); got != 2 {
		t.Errorf("MinII = %d, want 2 (raised to the bus floor)", got)
	}
}

// TestBusMIICappedBySingleCluster: when one cluster can host the whole
// body earlier than a transfer could fit, the floor stops there — a
// single-cluster schedule needs no bus.
func TestBusMIICappedBySingleCluster(t *testing.T) {
	g := SampleChain(4) // 4 FP ops
	cfg := machine.TwoCluster(1, 8)
	// One 2-FP cluster hosts 4 ops at II 2 < BusLatency 8.
	if got := g.BusMII(&cfg); got != 2 {
		t.Errorf("BusMII = %d, want 2 (single-cluster cap)", got)
	}
}

// TestBusMIINotAppliedWhenDisconnected: independent operations can be
// split across clusters without any value crossing, so no floor.
func TestBusMIINotAppliedWhenDisconnected(t *testing.T) {
	g := SampleIndependent(8)
	cfg := machine.FourCluster(1, 2)
	if got := g.BusMII(&cfg); got != 0 {
		t.Errorf("BusMII = %d, want 0 for a true-dep-disconnected body", got)
	}
	if got := g.MinII(&cfg); got != 2 { // plain ResMII ceil(8/4)
		t.Errorf("MinII = %d, want 2", got)
	}
}

// TestBusMIINotAppliedUnclusteredOrFastBus pins the trivial exits.
func TestBusMIINotAppliedUnclusteredOrFastBus(t *testing.T) {
	g := SampleChain(4)
	uni := machine.Unified()
	if got := g.BusMII(&uni); got != 0 {
		t.Errorf("BusMII on unified = %d, want 0", got)
	}
	fast := machine.FourCluster(1, 1)
	if got := g.BusMII(&fast); got != 0 {
		t.Errorf("BusMII with 1-cycle bus = %d, want 0", got)
	}
}
