// Package ddg implements the data-dependence graphs that the modulo
// schedulers consume: operations as nodes, dependences as edges carrying
// a latency and an iteration distance (0 = intra-iteration, >0 =
// loop-carried).
//
// The package also provides the standard modulo-scheduling analyses —
// ResMII, RecMII, strongly connected components (recurrences), ASAP /
// ALAP / depth / height / mobility — and the loop-unrolling transform of
// the paper (§5.2), which replicates the body U times and redistributes
// loop-carried distances across the copies.
package ddg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
)

// Node is one operation of the loop body.
type Node struct {
	// ID is the node's dense index inside its Graph.
	ID int
	// Name is a human-readable label (IR destination or generated).
	Name string
	// Class determines the FU type and result latency.
	Class machine.OpClass
	// Orig is the ID of the node this one was copied from by Unroll;
	// equal to ID in a non-unrolled graph.
	Orig int
	// Copy is the unroll-copy index (0 in a non-unrolled graph).
	Copy int
}

// EdgeKind classifies a dependence.
type EdgeKind int

// Dependence kinds.  Only true dependences carry a register value and can
// therefore require an inter-cluster communication; memory and anti /
// output dependences only constrain ordering.
const (
	DepTrue EdgeKind = iota
	DepAnti
	DepOutput
	DepMem
)

// String returns a short name for the kind.
func (k EdgeKind) String() string {
	switch k {
	case DepTrue:
		return "true"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepMem:
		return "mem"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one dependence.  The scheduling constraint it imposes is
//
//	time(To) >= time(From) + Latency - II*Distance
//
// and, for true dependences crossing clusters, a bus transfer must fit
// between producer completion and consumer issue.
type Edge struct {
	From, To int
	Latency  int
	Distance int
	Kind     EdgeKind
}

// Graph is a loop body's dependence graph.  Nodes are dense: Node(i).ID == i.
type Graph struct {
	// Name labels the loop in reports.
	Name string
	// UnrollFactor is 1 for an original graph, U after Unroll(U).
	UnrollFactor int

	nodes []*Node
	edges []*Edge
	out   [][]*Edge
	in    [][]*Edge

	// mu guards the derived-data caches below.  Embedding a lock also
	// makes `go vet`'s copylocks check reject wholesale copies of a Graph
	// — use Clone (which starts with fresh caches) to duplicate one.
	mu sync.Mutex
	// fp caches the content hash of Fingerprint (json.go); "" = not yet
	// computed.  Mutators (AddNode, AddEdge, UnmarshalJSON) reset it.
	fp string
	// memo caches expensive graph-only analyses (SMS order, flattened
	// edge arrays, RecMII, validation) keyed by the consumer's choice of
	// string.  Mutators reset it alongside fp.
	memo map[string]any
}

// Memoize returns the cached value for key, computing it with build on
// the first call.  The result is shared: callers must treat it as
// immutable.  build runs without the cache lock held, so concurrent
// first calls may compute redundantly (both results are identical on an
// immutable graph, and the last one wins); build must not mutate the
// graph.  Mutating the graph through AddNode/AddEdge/UnmarshalJSON
// empties the cache.
func (g *Graph) Memoize(key string, build func() any) any {
	g.mu.Lock()
	if v, ok := g.memo[key]; ok {
		g.mu.Unlock()
		return v
	}
	g.mu.Unlock()
	v := build()
	g.mu.Lock()
	if g.memo == nil {
		g.memo = make(map[string]any)
	}
	g.memo[key] = v
	g.mu.Unlock()
	return v
}

// invalidate empties every derived-data cache; called by each mutator.
func (g *Graph) invalidate() {
	g.mu.Lock()
	g.fp = ""
	g.memo = nil
	g.mu.Unlock()
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, UnrollFactor: 1}
}

// AddNode appends an operation and returns it.
func (g *Graph) AddNode(name string, class machine.OpClass) *Node {
	g.invalidate()
	n := &Node{ID: len(g.nodes), Name: name, Class: class, Orig: len(g.nodes)}
	g.nodes = append(g.nodes, n)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return n
}

// AddEdge appends a dependence with an explicit latency.
func (g *Graph) AddEdge(from, to, latency, distance int, kind EdgeKind) *Edge {
	if from < 0 || from >= len(g.nodes) || to < 0 || to >= len(g.nodes) {
		panic(fmt.Sprintf("ddg: edge %d->%d out of range (n=%d)", from, to, len(g.nodes)))
	}
	if distance < 0 {
		panic(fmt.Sprintf("ddg: edge %d->%d has negative distance %d", from, to, distance))
	}
	g.invalidate()
	e := &Edge{From: from, To: to, Latency: latency, Distance: distance, Kind: kind}
	g.edges = append(g.edges, e)
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return e
}

// AddTrueDep appends a register flow dependence; the latency is the
// producer's result latency.
func (g *Graph) AddTrueDep(from, to, distance int) *Edge {
	return g.AddEdge(from, to, g.nodes[from].Class.Latency(), distance, DepTrue)
}

// AddMemDep appends a memory-ordering dependence with latency 1.
func (g *Graph) AddMemDep(from, to, distance int) *Edge {
	return g.AddEdge(from, to, 1, distance, DepMem)
}

// NumNodes returns the number of operations.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of dependences.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Nodes returns the node slice; callers must not mutate it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edges returns the edge slice; callers must not mutate it.
func (g *Graph) Edges() []*Edge { return g.edges }

// OutEdges returns the dependences leaving node id.
func (g *Graph) OutEdges(id int) []*Edge { return g.out[id] }

// InEdges returns the dependences entering node id.
func (g *Graph) InEdges(id int) []*Edge { return g.in[id] }

// Preds returns the distinct predecessor IDs of id (any kind, any distance).
func (g *Graph) Preds(id int) []int {
	return distinctEndpoints(g.in[id], func(e *Edge) int { return e.From })
}

// Succs returns the distinct successor IDs of id.
func (g *Graph) Succs(id int) []int {
	return distinctEndpoints(g.out[id], func(e *Edge) int { return e.To })
}

func distinctEndpoints(edges []*Edge, end func(*Edge) int) []int {
	seen := make(map[int]bool, len(edges))
	ids := make([]int, 0, len(edges))
	for _, e := range edges {
		v := end(e)
		if !seen[v] {
			seen[v] = true
			ids = append(ids, v)
		}
	}
	sort.Ints(ids)
	return ids
}

// OpCount returns the number of nodes per FU class, used by ResMII.
func (g *Graph) OpCount() [machine.NumFUClasses]int {
	var counts [machine.NumFUClasses]int
	for _, n := range g.nodes {
		counts[n.Class.FU()]++
	}
	return counts
}

// Validate checks structural invariants: dense IDs, in-range edges, a
// DAG over distance-0 edges (a same-iteration cycle is unschedulable),
// and no true dependence out of a store.  The verdict is memoized: a
// pipeline that schedules the same graph on many machines validates it
// once.
func (g *Graph) Validate() error {
	v := g.Memoize("ddg.validate", func() any {
		if err := g.validate(); err != nil {
			return err
		}
		return nil
	})
	if err, ok := v.(error); ok {
		return err
	}
	return nil
}

func (g *Graph) validate() error {
	for i, n := range g.nodes {
		if n.ID != i {
			return fmt.Errorf("ddg %s: node %d has ID %d", g.Name, i, n.ID)
		}
		if !n.Class.Valid() {
			return fmt.Errorf("ddg %s: node %d has invalid op class", g.Name, i)
		}
	}
	for _, e := range g.edges {
		if e.From < 0 || e.From >= len(g.nodes) || e.To < 0 || e.To >= len(g.nodes) {
			return fmt.Errorf("ddg %s: edge %d->%d out of range", g.Name, e.From, e.To)
		}
		if e.Distance < 0 {
			return fmt.Errorf("ddg %s: edge %d->%d has negative distance", g.Name, e.From, e.To)
		}
		if e.Kind == DepTrue && !g.nodes[e.From].Class.ProducesValue() {
			return fmt.Errorf("ddg %s: true dependence out of non-value node %s",
				g.Name, g.nodes[e.From].Name)
		}
	}
	if cyc := g.zeroDistanceCycle(); cyc != nil {
		return fmt.Errorf("ddg %s: cycle through distance-0 edges at node %s",
			g.Name, g.nodes[cyc[0]].Name)
	}
	return nil
}

// zeroDistanceCycle returns a node list on a distance-0 cycle, or nil.
func (g *Graph) zeroDistanceCycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.nodes))
	var cycle []int
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = grey
		for _, e := range g.out[v] {
			if e.Distance != 0 {
				continue
			}
			switch color[e.To] {
			case grey:
				cycle = []int{e.To}
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[v] = black
		return false
	}
	for v := range g.nodes {
		if color[v] == white && visit(v) {
			return cycle
		}
	}
	return nil
}

// Clone returns a deep copy of the graph with fresh (empty) caches.
// This is the supported way to duplicate a Graph: the struct embeds a
// lock guarding its fingerprint/analysis caches, so a plain struct copy
// is rejected by `go vet` (copylocks) and would alias cache state even
// if it compiled silently.  Every duplicating path in this codebase
// (Unroll, wire decode, schedulers racing a shared loop) goes through
// Clone or builds a fresh graph node by node.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	c.UnrollFactor = g.UnrollFactor
	for _, n := range g.nodes {
		nn := c.AddNode(n.Name, n.Class)
		nn.Orig, nn.Copy = n.Orig, n.Copy
	}
	for _, e := range g.edges {
		c.AddEdge(e.From, e.To, e.Latency, e.Distance, e.Kind)
	}
	return c
}

// LoopCarried returns the edges with Distance > 0.
func (g *Graph) LoopCarried() []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.Distance > 0 {
			out = append(out, e)
		}
	}
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("ddg %s: %d nodes, %d edges (%d loop-carried), unroll=%d",
		g.Name, len(g.nodes), len(g.edges), len(g.LoopCarried()), g.UnrollFactor)
}
