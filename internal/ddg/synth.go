// Synth is the production-shaped graph generator behind the load
// harness (internal/loadgen): unlike Random, whose byte-shaped
// arguments exist to map fuzzer inputs onto small graphs, Synth takes
// an explicit spec with real-valued density knobs and honors every one
// of them without truncation, so a corpus family can be scaled from
// toy bodies to thousand-node loops with controlled structure.

package ddg

import (
	"fmt"
	"math/rand"

	"repro/internal/machine"
)

// SynthSpec parameterizes one synthesized dependence graph.  All knobs
// are deterministic functions of Seed: the same spec always yields the
// same graph, byte-identical through the JSON codec, which is what lets
// a generated corpus be reproduced from its spec alone.
type SynthSpec struct {
	// Name labels the graph ("" means "synth").
	Name string
	// Seed drives every random choice.
	Seed uint64
	// Nodes is the exact operation count (>= 2, unbounded above — the
	// wire caps, not the generator, bound what a daemon will accept).
	Nodes int
	// RecurrenceDensity is the target fraction of nodes participating
	// in loop-carried recurrence cycles, in [0, 1].  0 yields a
	// recurrence-free body (unrolling-friendly, swim-like); values near
	// 1 yield tomcatv-like chains that bound the II from below.
	RecurrenceDensity float64
	// ExtraEdgeDensity is the number of extra dependences added per
	// node beyond the spanning forward edges and recurrence cycles
	// (>= 0, not capped).  Every unit adds exactly one edge, so edge
	// count grows linearly with the knob.
	ExtraEdgeDensity float64
	// ClusterAffinity in [0, 1] biases edge endpoints toward the same
	// affinity community: 1 yields near-partitionable graphs (cheap to
	// distribute across clusters), 0 yields uniform cross-community
	// traffic that pressures the buses.
	ClusterAffinity float64
	// Communities is the number of affinity communities (0 means 4).
	Communities int
	// MaxDistance bounds loop-carried dependence distances (0 means 2).
	MaxDistance int
}

// withDefaults resolves the zero values.
func (s SynthSpec) withDefaults() SynthSpec {
	if s.Name == "" {
		s.Name = "synth"
	}
	if s.Communities <= 0 {
		s.Communities = 4
	}
	if s.MaxDistance <= 0 {
		s.MaxDistance = 2
	}
	return s
}

// Validate rejects out-of-range knobs.
func (s SynthSpec) Validate() error {
	switch {
	case s.Nodes < 2:
		return fmt.Errorf("ddg: synth spec needs at least 2 nodes, got %d", s.Nodes)
	case s.RecurrenceDensity < 0 || s.RecurrenceDensity > 1:
		return fmt.Errorf("ddg: recurrence density %v outside [0, 1]", s.RecurrenceDensity)
	case s.ExtraEdgeDensity < 0:
		return fmt.Errorf("ddg: extra edge density %v negative", s.ExtraEdgeDensity)
	case s.ClusterAffinity < 0 || s.ClusterAffinity > 1:
		return fmt.Errorf("ddg: cluster affinity %v outside [0, 1]", s.ClusterAffinity)
	case s.Communities < 0:
		return fmt.Errorf("ddg: community count %v negative", s.Communities)
	case s.MaxDistance < 0:
		return fmt.Errorf("ddg: max distance %v negative", s.MaxDistance)
	}
	return nil
}

// synthMix is the operation-class mix of a synthesized body, a blend of
// the SPECfp95 profiles (corpus.Profiles): load-heavy, FAdd/FMul
// arithmetic, a trickle of divides and integer work.
var synthMix = [machine.NumOpClasses]float64{
	machine.OpLoad:  0.26,
	machine.OpStore: 0.10,
	machine.OpFAdd:  0.26,
	machine.OpFMul:  0.20,
	machine.OpFDiv:  0.02,
	machine.OpIAdd:  0.13,
	machine.OpIMul:  0.03,
}

// Synth builds one graph from its spec.  The construction guarantees
// validity (forward distance-0 edges only, true dependences only out of
// value producers), so unlike Random it never returns nil: a spec that
// validates always yields a schedulable-shaped graph.
func Synth(spec SynthSpec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(int64(spec.Seed)))
	g := New(spec.Name)

	// Apportion the body across classes, then lay it out the way the
	// corpus generator does: loads (the natural sources) first,
	// recurrence chains, arithmetic, stores.
	counts := apportion(synthMix, spec.Nodes, rng)
	// Recurrence nodes come out of the arithmetic budget; keep at least
	// one load so the body has a source to feed the chains.
	if counts[machine.OpLoad] == 0 {
		counts[machine.OpLoad] = 1
		for _, c := range []machine.OpClass{machine.OpFAdd, machine.OpFMul, machine.OpStore, machine.OpIAdd, machine.OpIMul, machine.OpFDiv} {
			if counts[c] > 0 {
				counts[c]--
				break
			}
		}
	}
	recBudget := 0
	want := int(spec.RecurrenceDensity*float64(spec.Nodes) + 0.5)
	for _, c := range []machine.OpClass{machine.OpFAdd, machine.OpFMul, machine.OpIAdd} {
		take := min(want-recBudget, counts[c])
		counts[c] -= take
		recBudget += take
	}

	var producers []int
	for i := 0; i < counts[machine.OpLoad]; i++ {
		producers = append(producers, g.AddNode(fmt.Sprintf("ld%d", i), machine.OpLoad).ID)
	}

	// Recurrence chains of 1-4 nodes, each closed by a loop-carried
	// back edge (a single-node chain is the x += a self-recurrence),
	// until the density budget is spent.
	for rec := 0; recBudget > 0; rec++ {
		length := min(recBudget, 2+rng.Intn(3))
		var chain []int
		for k := 0; k < length; k++ {
			class := machine.OpFAdd
			if k%3 == 2 {
				class = machine.OpFMul
			}
			n := g.AddNode(fmt.Sprintf("rec%d_%d", rec, k), class)
			if k > 0 {
				g.AddTrueDep(chain[k-1], n.ID, 0)
			} else {
				g.AddTrueDep(producers[rng.Intn(len(producers))], n.ID, 0)
			}
			chain = append(chain, n.ID)
		}
		dist := 1
		if spec.MaxDistance > 1 && rng.Float64() < 0.25 {
			dist = 1 + rng.Intn(spec.MaxDistance)
		}
		g.AddTrueDep(chain[len(chain)-1], chain[0], dist)
		producers = append(producers, chain...)
		recBudget -= length
	}

	// Arithmetic body: each op consumes a prior value, biased toward
	// its own affinity community by the ClusterAffinity knob.
	arith := []machine.OpClass{machine.OpFAdd, machine.OpFMul, machine.OpFDiv, machine.OpIAdd, machine.OpIMul}
	for _, class := range arith {
		for i := 0; i < counts[class]; i++ {
			n := g.AddNode(fmt.Sprintf("%s%d", class, i), class)
			g.AddTrueDep(pickAffine(rng, producers, n.ID, spec), n.ID, 0)
			producers = append(producers, n.ID)
		}
	}
	for i := 0; i < counts[machine.OpStore]; i++ {
		n := g.AddNode(fmt.Sprintf("st%d", i), machine.OpStore)
		g.AddTrueDep(pickAffine(rng, producers, n.ID, spec), n.ID, 0)
	}

	// Extra dependences: exactly round(density * nodes) of them, each
	// attempt adding one edge — no silent skips, so the knob is honored
	// (the Random generator's %8 cap is the bug this path exists to
	// avoid).  Forward pairs become distance-0 dependences (safe: the
	// distance-0 subgraph stays a forward DAG); backward or self pairs
	// become loop-carried.
	nExtra := int(spec.ExtraEdgeDensity*float64(spec.Nodes) + 0.5)
	for e := 0; e < nExtra; e++ {
		from := rng.Intn(g.NumNodes())
		to := pickExtraTarget(rng, spec.Nodes, from, spec)
		dist := 0
		if from >= to {
			dist = 1 + rng.Intn(spec.MaxDistance)
		}
		if g.Node(from).Class.ProducesValue() {
			g.AddTrueDep(from, to, dist)
		} else {
			g.AddMemDep(from, to, dist)
		}
	}

	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ddg: synth produced invalid graph: %v", err)
	}
	return g, nil
}

// community maps a node ID onto its affinity community: contiguous
// blocks, so community locality mirrors program order.
func community(id, nodes, k int) int {
	c := id * k / nodes
	if c >= k {
		c = k - 1
	}
	return c
}

// pickAffine picks a producer feeding consumer: with probability
// ClusterAffinity it prefers producers in the consumer's community,
// falling back to (and otherwise choosing among) recent producers the
// way expression trees consume values.
func pickAffine(rng *rand.Rand, producers []int, consumer int, spec SynthSpec) int {
	n := len(producers)
	if n == 1 {
		return producers[0]
	}
	if rng.Float64() < spec.ClusterAffinity {
		want := community(consumer, spec.Nodes, spec.Communities)
		// Scan back from the most recent producer; the first same-
		// community hit keeps the choice biased recent like pickProducer.
		for k := n - 1; k >= 0 && k >= n-16; k-- {
			if community(producers[k], spec.Nodes, spec.Communities) == want {
				return producers[k]
			}
		}
	}
	recent := max(n/3, 1)
	return producers[n-1-rng.Intn(recent)]
}

// apportion splits size operations across classes proportionally to the
// mix, handing the rounding remainder to loads and adds.
func apportion(mix [machine.NumOpClasses]float64, size int, rng *rand.Rand) [machine.NumOpClasses]int {
	total := 0.0
	for _, w := range mix {
		total += w
	}
	var counts [machine.NumOpClasses]int
	assigned := 0
	for c, w := range mix {
		counts[c] = int(w / total * float64(size))
		assigned += counts[c]
	}
	fill := []machine.OpClass{machine.OpLoad, machine.OpFAdd, machine.OpFMul, machine.OpIAdd}
	for assigned < size {
		counts[fill[rng.Intn(len(fill))]]++
		assigned++
	}
	return counts
}

// pickExtraTarget picks the consumer of an extra dependence: with
// probability ClusterAffinity it lands in the producer's community,
// otherwise anywhere, so the knob tunes cross-community traffic.
func pickExtraTarget(rng *rand.Rand, nodes, from int, spec SynthSpec) int {
	if rng.Float64() >= spec.ClusterAffinity {
		return rng.Intn(nodes)
	}
	k := spec.Communities
	want := community(from, nodes, k)
	lo := (want*nodes + k - 1) / k
	hi := ((want + 1) * nodes) / k
	if hi <= lo {
		return from
	}
	return lo + rng.Intn(hi-lo)
}
