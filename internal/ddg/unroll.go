package ddg

import "fmt"

// Unroll returns a new graph whose body is u copies of the receiver's.
// Copy i of the consumer of an edge with iteration distance d depends on
// copy ((i-d) mod u) of the producer, at new distance ceil((d-i)/u)
// (derived in §5.2 of the paper: after unrolling, iteration K of the new
// loop contains original iterations K*u+i).
//
// The copies keep Orig/Copy metadata so statistics can count work per
// original iteration.  Unroll(1) is a plain clone.
func (g *Graph) Unroll(u int) *Graph {
	if u < 1 {
		panic(fmt.Sprintf("ddg: Unroll factor %d < 1", u))
	}
	if u == 1 {
		return g.Clone()
	}
	out := New(fmt.Sprintf("%s.x%d", g.Name, u))
	out.UnrollFactor = g.UnrollFactor * u

	n := len(g.nodes)
	// Copy i of original node v gets ID i*n + v, so all nodes of one
	// unrolled iteration are contiguous: the scheduler's "iterations end
	// up on different clusters" behaviour emerges from the out-edge
	// profit, not from ID locality, but contiguity keeps dumps readable.
	for i := 0; i < u; i++ {
		for _, v := range g.nodes {
			nn := out.AddNode(fmt.Sprintf("%s.%d", v.Name, i), v.Class)
			nn.Orig = v.Orig
			nn.Copy = i*maxInt(g.UnrollFactor, 1) + v.Copy
		}
	}
	for _, e := range g.edges {
		for i := 0; i < u; i++ {
			// Consumer copy i depends on producer copy j, q new-iterations back.
			j := ((i-e.Distance)%u + u) % u
			q := (j - (i - e.Distance)) / u
			out.AddEdge(j*n+e.From, i*n+e.To, e.Latency, q, e.Kind)
		}
	}
	return out
}

// DepsNotMultiple counts loop-carried dependences whose distance is not
// a multiple of u — exactly the dependences that will cross iteration
// copies (and hence clusters) after unrolling by u.  This is the
// NDepsNotMult(G) term of the selective-unrolling estimate (Figure 6).
// Only true dependences count: ordering edges never move data.
func (g *Graph) DepsNotMultiple(u int) int {
	count := 0
	for _, e := range g.edges {
		if e.Kind != DepTrue || e.Distance == 0 {
			continue
		}
		if e.Distance%u != 0 {
			count++
		}
	}
	return count
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
