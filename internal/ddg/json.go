// JSON codec and content fingerprint for dependence graphs: the wire
// representation the scheduling service (internal/wire, cmd/schedd)
// ships loops in, and the structural identity the compile cache keys on.
//
// The JSON shape is stable and versioned by the wire envelope around it
// (internal/wire.Version); within a version it only grows
// backward-compatibly.  Node IDs are implicit: nodes[i] has ID i, and
// edges reference those indices.

package ddg

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/machine"
)

// graphJSON is the wire shape of a Graph.
type graphJSON struct {
	Name         string     `json:"name"`
	UnrollFactor int        `json:"unroll_factor,omitempty"`
	Nodes        []nodeJSON `json:"nodes"`
	Edges        []edgeJSON `json:"edges"`
}

// nodeJSON is one operation; its ID is its index in the nodes array.
type nodeJSON struct {
	Name string `json:"name"`
	Op   string `json:"op"`
	Orig *int   `json:"orig,omitempty"`
	Copy int    `json:"copy,omitempty"`
}

// edgeJSON is one dependence between node indices.
type edgeJSON struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Latency  int    `json:"latency"`
	Distance int    `json:"distance,omitempty"`
	Kind     string `json:"kind"`
}

// edgeKindNames maps the wire names; the zero kind is "true".
var edgeKindNames = map[string]EdgeKind{
	"true":   DepTrue,
	"anti":   DepAnti,
	"output": DepOutput,
	"mem":    DepMem,
}

// EdgeKindByName resolves a wire name ("true", "anti", "output", "mem")
// to its EdgeKind; it returns false for unknown names.
func EdgeKindByName(name string) (EdgeKind, bool) {
	k, ok := edgeKindNames[name]
	return k, ok
}

// MarshalJSON encodes the graph in the service wire shape.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Name: g.Name, Nodes: []nodeJSON{}, Edges: []edgeJSON{}}
	if g.UnrollFactor != 1 {
		out.UnrollFactor = g.UnrollFactor
	}
	for _, n := range g.nodes {
		nj := nodeJSON{Name: n.Name, Op: n.Class.String(), Copy: n.Copy}
		if n.Orig != n.ID {
			orig := n.Orig
			nj.Orig = &orig
		}
		out.Nodes = append(out.Nodes, nj)
	}
	for _, e := range g.edges {
		out.Edges = append(out.Edges, edgeJSON{
			From: e.From, To: e.To, Latency: e.Latency,
			Distance: e.Distance, Kind: e.Kind.String(),
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a graph from the wire shape and validates it;
// a graph that fails Validate (unknown op, out-of-range edge, negative
// distance, distance-0 cycle) is rejected.  Decoding is strict — an
// unknown or misspelled field inside a node or edge is an error, never
// a silently-zeroed latency — matching the wire package's contract
// (a custom UnmarshalJSON does not inherit the outer decoder's
// DisallowUnknownFields, so it is re-imposed here).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	jd := json.NewDecoder(bytes.NewReader(data))
	jd.DisallowUnknownFields()
	if err := jd.Decode(&in); err != nil {
		return err
	}
	dec := New(in.Name)
	if in.UnrollFactor != 0 {
		dec.UnrollFactor = in.UnrollFactor
	}
	if dec.UnrollFactor < 1 {
		return fmt.Errorf("ddg: graph %q: unroll_factor %d, want >= 1", in.Name, dec.UnrollFactor)
	}
	for i, nj := range in.Nodes {
		class, ok := machine.OpClassByName(nj.Op)
		if !ok {
			return fmt.Errorf("ddg: graph %q: node %d has unknown op %q", in.Name, i, nj.Op)
		}
		n := dec.AddNode(nj.Name, class)
		if nj.Orig != nil {
			if *nj.Orig < 0 || *nj.Orig >= len(in.Nodes) {
				return fmt.Errorf("ddg: graph %q: node %d orig %d out of range", in.Name, i, *nj.Orig)
			}
			n.Orig = *nj.Orig
		}
		if nj.Copy < 0 {
			return fmt.Errorf("ddg: graph %q: node %d has negative copy index", in.Name, i)
		}
		n.Copy = nj.Copy
	}
	for i, ej := range in.Edges {
		kind, ok := EdgeKindByName(ej.Kind)
		if !ok {
			return fmt.Errorf("ddg: graph %q: edge %d has unknown kind %q", in.Name, i, ej.Kind)
		}
		if ej.From < 0 || ej.From >= len(in.Nodes) || ej.To < 0 || ej.To >= len(in.Nodes) {
			return fmt.Errorf("ddg: graph %q: edge %d (%d->%d) out of range", in.Name, i, ej.From, ej.To)
		}
		if ej.Distance < 0 {
			return fmt.Errorf("ddg: graph %q: edge %d has negative distance", in.Name, i)
		}
		if ej.Latency < 0 {
			return fmt.Errorf("ddg: graph %q: edge %d has negative latency", in.Name, i)
		}
		dec.AddEdge(ej.From, ej.To, ej.Latency, ej.Distance, kind)
	}
	if err := dec.Validate(); err != nil {
		return err
	}
	// Field-wise copy: Graph embeds a lock guarding its caches, so the
	// struct must not be copied wholesale.  The receiver's fingerprint
	// and memoized analyses are reset — decoding into a graph whose
	// Fingerprint was already taken replaces its identity rather than
	// leaking the stale hash.
	g.Name = dec.Name
	g.UnrollFactor = dec.UnrollFactor
	g.nodes = dec.nodes
	g.edges = dec.edges
	g.out = dec.out
	g.in = dec.in
	g.invalidate()
	return nil
}

// Fingerprint returns a content hash of the graph — name, unroll factor,
// every node (name, class, unroll provenance) and every edge — as a
// fixed-length hex string.  Two graphs with equal fingerprints schedule
// identically and are indistinguishable in reports, so the compile cache
// (internal/pipeline) uses it as the loop's identity: structurally
// identical loops deduplicate even when they arrive as distinct decoded
// objects, e.g. from separate service requests.
//
// The hash is cached after the first call; mutating the graph
// (AddNode/AddEdge/UnmarshalJSON) resets the cache, so the fingerprint
// always reflects current contents.  Use Clone to duplicate a graph —
// a plain struct copy would alias the cache and is rejected by go vet.
func (g *Graph) Fingerprint() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fp == "" {
		h := sha256.New()
		var buf [8]byte
		writeInt := func(v int) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		writeStr := func(s string) {
			writeInt(len(s))
			h.Write([]byte(s))
		}
		writeStr(g.Name)
		writeInt(g.UnrollFactor)
		writeInt(len(g.nodes))
		for _, n := range g.nodes {
			writeStr(n.Name)
			writeInt(int(n.Class))
			writeInt(n.Orig)
			writeInt(n.Copy)
		}
		writeInt(len(g.edges))
		for _, e := range g.edges {
			writeInt(e.From)
			writeInt(e.To)
			writeInt(e.Latency)
			writeInt(e.Distance)
			writeInt(int(e.Kind))
		}
		g.fp = hex.EncodeToString(h.Sum(nil)[:16])
	}
	return g.fp
}
