package ddg

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestVetRejectsGraphCopy pins the copy-safety fix: Graph embeds its
// cache lock, so `go vet`'s copylocks analysis must reject any
// by-value copy of a Graph at build time.  The bug this guards against
// was real — a Graph copied after its fingerprint was taken kept the
// stale fingerprint and memo table, silently serving another graph's
// cached SMS order.  The test compiles a tiny throwaway module that
// dereference-copies a Graph and expects vet to fail with a copylocks
// diagnostic.
func TestVetRejectsGraphCopy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	// The repo root is two levels above this package.
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	repoRoot, err := filepath.Abs(filepath.Join(filepath.Dir(thisFile), "..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// The probe module's path sits under repro/ so the internal-package
	// visibility rule lets it import repro/internal/ddg.
	gomod := "module repro/copylockprobe\n\ngo 1.24\n\nrequire repro v0.0.0\n\nreplace repro => " + repoRoot + "\n"
	src := `package main

import "repro/internal/ddg"

func main() {
	g := ddg.New("probe")
	h := *g // must trip copylocks
	_ = h
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(goTool, "vet", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet accepted a by-value Graph copy; output:\n%s", out)
	}
	if !strings.Contains(string(out), "copies lock") && !strings.Contains(string(out), "copylocks") {
		t.Fatalf("go vet failed for an unexpected reason:\n%s", out)
	}
}

// TestDecodeReplacesIdentity pins the UnmarshalJSON half of the fix:
// decoding into a Graph whose fingerprint was already taken must
// replace the cached identity, not keep serving the old hash.
func TestDecodeReplacesIdentity(t *testing.T) {
	a := New("a")
	a.AddNode("x", 0)
	blob, err := a.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}

	b := New("b")
	b.AddNode("y", 0)
	b.AddNode("z", 0)
	oldFP := b.Fingerprint()

	if err := b.UnmarshalJSON(blob); err != nil {
		t.Fatal(err)
	}
	if got := b.Fingerprint(); got == oldFP {
		t.Fatalf("fingerprint survived UnmarshalJSON: %s", got)
	}
	if want := a.Fingerprint(); b.Fingerprint() != want {
		t.Fatalf("decoded fingerprint %s, want the encoded graph's %s", b.Fingerprint(), want)
	}
}

// TestCloneIndependence pins Clone: the copy starts with fresh caches,
// so mutating it never disturbs the original's fingerprint or memos.
func TestCloneIndependence(t *testing.T) {
	g := New("orig")
	n0 := g.AddNode("x", 0)
	n1 := g.AddNode("y", 0)
	g.AddTrueDep(n0.ID, n1.ID, 0)
	fp := g.Fingerprint()
	memo := g.Memoize("probe", func() any { return 42 })

	c := g.Clone()
	if c.Fingerprint() != fp {
		t.Fatalf("clone fingerprint %s, want %s", c.Fingerprint(), fp)
	}
	c.AddNode("extra", 0)
	if c.Fingerprint() == fp {
		t.Fatal("mutated clone kept the original fingerprint")
	}
	if g.Fingerprint() != fp {
		t.Fatal("mutating the clone disturbed the original's fingerprint")
	}
	if got := g.Memoize("probe", func() any { return -1 }); got != memo {
		t.Fatalf("original memo lost after clone mutation: got %v", got)
	}
	if got := c.Memoize("probe", func() any { return 7 }); got != 7 {
		t.Fatalf("clone shared the original's memo table: got %v", got)
	}
}
