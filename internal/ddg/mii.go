package ddg

import "repro/internal/machine"

// ResMII returns the resource-constrained minimum initiation interval
// for the machine: the most heavily used FU class determines how many
// cycles the kernel needs at best, counting machine-wide FUs because the
// unified-assign-and-schedule approach may place any operation anywhere.
func (g *Graph) ResMII(cfg *machine.Config) int {
	counts := g.OpCount()
	mii := 1
	for class := machine.FUClass(0); class < machine.NumFUClasses; class++ {
		total := cfg.TotalFUs(class)
		if counts[class] == 0 {
			continue
		}
		if total == 0 {
			// No unit can execute these ops; signal with a huge II so the
			// scheduler fails loudly rather than looping.
			return 1 << 30
		}
		if ii := ceilDiv(counts[class], total); ii > mii {
			mii = ii
		}
	}
	return mii
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the maximum over all dependence cycles C of ceil(latency(C) /
// distance(C)).  Returns 0 when the graph has no cycles.
//
// Rather than enumerating cycles (exponential), RecMII binary-searches
// the smallest II for which no cycle has positive weight when each edge
// weighs latency - II*distance; feasibility is monotone in II.
// The result depends only on the graph (latencies and distances, not
// the machine), so it is memoized: an II search or a multi-machine
// sweep computes it once.
func (g *Graph) RecMII() int {
	return g.Memoize("ddg.recmii", func() any {
		if !g.hasCycle() {
			return 0
		}
		return g.recMIIOfSubgraph(allIDs(len(g.nodes)))
	}).(int)
}

// MinII returns max(ResMII, RecMII, BusMII), the scheduler's starting
// II.  The bus term is this library's refinement of the paper's
// max(ResMII, RecMII): IIs on which no bus transfer can ever fit and no
// single cluster can host the whole body are provably infeasible, so
// starting below them only burns failed attempts.
func (g *Graph) MinII(cfg *machine.Config) int {
	mii, _ := g.MinIIFloored(cfg)
	return mii
}

// MinIIFloored returns MinII together with whether the bus-latency
// floor (BusMII) alone raised it above max(ResMII, RecMII).  The
// schedulers translate that flag into LimitedByBus — the IIs the floor
// skipped were abandoned for the bus without ever being attempted —
// and use this entry point so each bound is computed exactly once per
// scheduling run.
func (g *Graph) MinIIFloored(cfg *machine.Config) (minII int, busFloored bool) {
	minII = g.ResMII(cfg)
	if rec := g.RecMII(); rec > minII {
		minII = rec
	}
	if bus := g.BusMII(cfg); bus > minII {
		return bus, true
	}
	return minII, false
}

// BusMII returns the bus-latency feasibility floor of the II search, or
// 0 when no floor applies.  A transfer holds its bus for BusLatency
// consecutive kernel slots and every kernel iteration re-issues it, so
// at II < BusLatency no transfer fits at all (mrt.busFree).  A schedule
// at such an II must therefore confine the loop to a single cluster —
// impossible below S, the smallest II at which some one cluster has
// enough functional units for the whole body.  When the body is
// connected by true dependences (any split across clusters cuts at
// least one value edge, which needs a transfer), every II below
// min(BusLatency, S) is infeasible, making it a sound lower bound.
func (g *Graph) BusMII(cfg *machine.Config) int {
	if !cfg.Clustered() || cfg.BusLatency <= 1 {
		return 0
	}
	if !g.trueDepConnected() {
		return 0
	}
	floor := g.singleClusterMinII(cfg)
	if cfg.BusLatency < floor {
		floor = cfg.BusLatency
	}
	return floor
}

// singleClusterMinII returns the smallest II at which some single
// cluster could execute every operation of the body, or a huge value
// when no cluster has units of every class the body uses.
func (g *Graph) singleClusterMinII(cfg *machine.Config) int {
	counts := g.OpCount()
	best := 1 << 30
	for cl := 0; cl < cfg.NClusters; cl++ {
		ii := 1
		feasible := true
		for class := machine.FUClass(0); class < machine.NumFUClasses; class++ {
			if counts[class] == 0 {
				continue
			}
			fus := cfg.FUs(cl, class)
			if fus == 0 {
				feasible = false
				break
			}
			if c := ceilDiv(counts[class], fus); c > ii {
				ii = c
			}
		}
		if feasible && ii < best {
			best = ii
		}
	}
	return best
}

// trueDepConnected reports whether every node lies in one weakly
// connected component of the true-dependence subgraph.  Only then does
// every cross-cluster partition necessarily cut a value edge.
func (g *Graph) trueDepConnected() bool {
	n := len(g.nodes)
	if n == 0 {
		return false
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := n
	for _, e := range g.edges {
		if e.Kind != DepTrue {
			continue
		}
		ra, rb := find(e.From), find(e.To)
		if ra != rb {
			parent[rb] = ra
			comps--
		}
	}
	return comps == 1
}

// hasCycle reports whether the graph has any directed cycle (all edge
// distances considered) via an iterative three-colour DFS — much
// cheaper than materialising the SCC decomposition just to look for a
// recurrence.
func (g *Graph) hasCycle() bool {
	n := len(g.nodes)
	// 0 = unvisited, 1 = on the current DFS path, 2 = done.
	color := make([]uint8, n)
	type frame struct {
		v, edge int
	}
	stack := make([]frame, 0, n)
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		color[root] = 1
		stack = append(stack, frame{v: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.edge < len(g.out[f.v]) {
				w := g.out[f.v][f.edge].To
				f.edge++
				switch color[w] {
				case 0:
					color[w] = 1
					stack = append(stack, frame{v: w})
				case 1:
					return true // back edge (self-edges included)
				}
				continue
			}
			color[f.v] = 2
			stack = stack[:len(stack)-1]
		}
	}
	return false
}

// recMIIOfSubgraph binary-searches the minimum feasible II over the
// cycles contained in the given node set.
func (g *Graph) recMIIOfSubgraph(nodes []int) int {
	// Upper bound: the sum of all edge latencies inside the subgraph is
	// at least any single cycle's latency sum, and every cycle has
	// distance >= 1, so latSum is always feasible.
	inSet := make([]bool, len(g.nodes))
	for _, v := range nodes {
		inSet[v] = true
	}
	latSum := 0
	for _, e := range g.edges {
		if inSet[e.From] && inSet[e.To] && e.Latency > 0 {
			latSum += e.Latency
		}
	}
	if latSum < 1 {
		latSum = 1
	}
	dist := make([]int, len(g.nodes))
	lo, hi := 1, latSum
	for lo < hi {
		mid := (lo + hi) / 2
		if g.iiFeasible(nodes, inSet, dist, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// iiFeasible reports whether no cycle inside the node set has positive
// weight under w(e) = latency - II*distance.  It runs Bellman-Ford-style
// longest-path relaxation; a relaxation still succeeding after n rounds
// proves a positive cycle.  dist is caller-provided scratch (one entry
// per graph node).
func (g *Graph) iiFeasible(nodes []int, inSet []bool, dist []int, ii int) bool {
	for _, v := range nodes {
		dist[v] = 0
	}
	for round := 0; round < len(nodes); round++ {
		changed := false
		for _, e := range g.edges {
			if !inSet[e.From] || !inSet[e.To] {
				continue
			}
			w := e.Latency - ii*e.Distance
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
