package ddg

import "repro/internal/machine"

// ResMII returns the resource-constrained minimum initiation interval
// for the machine: the most heavily used FU class determines how many
// cycles the kernel needs at best, counting machine-wide FUs because the
// unified-assign-and-schedule approach may place any operation anywhere.
func (g *Graph) ResMII(cfg *machine.Config) int {
	counts := g.OpCount()
	mii := 1
	for class := machine.FUClass(0); class < machine.NumFUClasses; class++ {
		total := cfg.TotalFUs(class)
		if counts[class] == 0 {
			continue
		}
		if total == 0 {
			// No unit can execute these ops; signal with a huge II so the
			// scheduler fails loudly rather than looping.
			return 1 << 30
		}
		if ii := ceilDiv(counts[class], total); ii > mii {
			mii = ii
		}
	}
	return mii
}

// RecMII returns the recurrence-constrained minimum initiation interval:
// the maximum over all dependence cycles C of ceil(latency(C) /
// distance(C)).  Returns 0 when the graph has no cycles.
//
// Rather than enumerating cycles (exponential), RecMII binary-searches
// the smallest II for which no cycle has positive weight when each edge
// weighs latency - II*distance; feasibility is monotone in II.
func (g *Graph) RecMII() int {
	if !g.hasCycle() {
		return 0
	}
	return g.recMIIOfSubgraph(allIDs(len(g.nodes)))
}

// MinII returns max(ResMII, RecMII), the scheduler's starting II.
func (g *Graph) MinII(cfg *machine.Config) int {
	mii := g.ResMII(cfg)
	if rec := g.RecMII(); rec > mii {
		mii = rec
	}
	return mii
}

func (g *Graph) hasCycle() bool {
	for _, c := range g.SCCs() {
		if c.Recurrence {
			return true
		}
	}
	return false
}

// recMIIOfSubgraph binary-searches the minimum feasible II over the
// cycles contained in the given node set.
func (g *Graph) recMIIOfSubgraph(nodes []int) int {
	// Upper bound: the sum of all edge latencies inside the subgraph is
	// at least any single cycle's latency sum, and every cycle has
	// distance >= 1, so latSum is always feasible.
	inSet := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		inSet[v] = true
	}
	latSum := 0
	for _, e := range g.edges {
		if inSet[e.From] && inSet[e.To] && e.Latency > 0 {
			latSum += e.Latency
		}
	}
	if latSum < 1 {
		latSum = 1
	}
	lo, hi := 1, latSum
	for lo < hi {
		mid := (lo + hi) / 2
		if g.iiFeasible(nodes, inSet, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// iiFeasible reports whether no cycle inside the node set has positive
// weight under w(e) = latency - II*distance.  It runs Bellman-Ford-style
// longest-path relaxation; a relaxation still succeeding after n rounds
// proves a positive cycle.
func (g *Graph) iiFeasible(nodes []int, inSet map[int]bool, ii int) bool {
	dist := make(map[int]int, len(nodes))
	for _, v := range nodes {
		dist[v] = 0
	}
	for round := 0; round < len(nodes); round++ {
		changed := false
		for _, e := range g.edges {
			if !inSet[e.From] || !inSet[e.To] {
				continue
			}
			w := e.Latency - ii*e.Distance
			if d := dist[e.From] + w; d > dist[e.To] {
				dist[e.To] = d
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

func allIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
