package ddg

import (
	"fmt"

	"repro/internal/machine"
)

// This file provides small, well-understood graphs reused by tests,
// examples and documentation.  They are exported so every package can
// exercise the same known-good inputs.

// SampleDotProduct builds the body of s += a[i]*b[i]: two loads feeding
// a multiply feeding an accumulating add with a distance-1 self-recurrence.
func SampleDotProduct() *Graph {
	g := New("dotproduct")
	la := g.AddNode("la", machine.OpLoad)
	lb := g.AddNode("lb", machine.OpLoad)
	mul := g.AddNode("mul", machine.OpFMul)
	acc := g.AddNode("acc", machine.OpFAdd)
	g.AddTrueDep(la.ID, mul.ID, 0)
	g.AddTrueDep(lb.ID, mul.ID, 0)
	g.AddTrueDep(mul.ID, acc.ID, 0)
	g.AddTrueDep(acc.ID, acc.ID, 1) // s@1
	return g
}

// SampleFigure7 reproduces the worked example of Figure 7 of the paper:
// six integer operations A..F on a 2-cluster machine with two
// general-purpose units per cluster and one bus.  The schedulable facts
// the paper states, all of which this graph satisfies:
//
//   - minII = 2 (ResMII = ceil(6/4) = 2, RecMII = 2 from a latency-4
//     recurrence spanning two iterations: B -> C(imul) -> D -> B @2);
//   - E consumes A and C, F consumes D and A, and E needs the previous
//     iteration's A (distance 1) — the dependence that crosses clusters
//     when different iterations land on different clusters;
//   - unrolling by 2 keeps the recurrence inside each copy (distance 2
//     is a multiple of the factor) but chains nothing else, so the
//     unrolled loop's minII is 4 and only two communications remain
//     ("from A' to E and from A to E'"), hiding the bus latency even at
//     2 cycles.
func SampleFigure7() *Graph {
	g := New("figure7")
	a := g.AddNode("A", machine.OpIAdd)
	b := g.AddNode("B", machine.OpIAdd)
	c := g.AddNode("C", machine.OpIMul) // latency 2: recurrence sums to 4
	d := g.AddNode("D", machine.OpIAdd)
	e := g.AddNode("E", machine.OpIAdd)
	f := g.AddNode("F", machine.OpIAdd)
	// Consumers: E <- {A, C}, F <- {D, A}.
	g.AddTrueDep(a.ID, e.ID, 0)
	g.AddTrueDep(c.ID, e.ID, 0)
	g.AddTrueDep(d.ID, f.ID, 0)
	g.AddTrueDep(a.ID, f.ID, 0)
	// Recurrence with latency 4 over distance 2: RecMII = 2; after
	// unrolling by 2 it splits into per-copy cycles of ratio 4/1.
	g.AddTrueDep(b.ID, c.ID, 0)
	g.AddTrueDep(c.ID, d.ID, 0)
	g.AddTrueDep(d.ID, b.ID, 2)
	// Cross-iteration input to E (distance 1, not a multiple of 2).
	g.AddTrueDep(a.ID, e.ID, 1)
	return g
}

// SampleChain builds a linear chain of n FP adds (no loop-carried
// dependence): maximally latency-bound, trivially partitionable.
func SampleChain(n int) *Graph {
	g := New(fmt.Sprintf("chain%d", n))
	prev := -1
	for i := 0; i < n; i++ {
		node := g.AddNode(fmt.Sprintf("c%d", i), machine.OpFAdd)
		if prev >= 0 {
			g.AddTrueDep(prev, node.ID, 0)
		}
		prev = node.ID
	}
	return g
}

// SampleIndependent builds n mutually independent FP multiplies:
// maximally resource-bound, ideal for clustering.
func SampleIndependent(n int) *Graph {
	g := New(fmt.Sprintf("indep%d", n))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("p%d", i), machine.OpFMul)
	}
	return g
}

// SampleStencil builds the body of b[i] = (a[i-1]+a[i]+a[i+1])/3-like
// code with an accumulation carried across iterations: three loads, two
// adds, a multiply by a constant folded into an FP multiply, a store,
// and a carried add.  It has enough internal traffic to saturate a
// single bus on the 4-cluster machine, making it a good selective-
// unrolling subject.
func SampleStencil() *Graph {
	g := New("stencil")
	l0 := g.AddNode("l0", machine.OpLoad)
	l1 := g.AddNode("l1", machine.OpLoad)
	l2 := g.AddNode("l2", machine.OpLoad)
	s0 := g.AddNode("s0", machine.OpFAdd)
	s1 := g.AddNode("s1", machine.OpFAdd)
	m := g.AddNode("scale", machine.OpFMul)
	st := g.AddNode("store", machine.OpStore)
	acc := g.AddNode("acc", machine.OpFAdd)
	g.AddTrueDep(l0.ID, s0.ID, 0)
	g.AddTrueDep(l1.ID, s0.ID, 0)
	g.AddTrueDep(s0.ID, s1.ID, 0)
	g.AddTrueDep(l2.ID, s1.ID, 0)
	g.AddTrueDep(s1.ID, m.ID, 0)
	g.AddTrueDep(m.ID, st.ID, 0)
	g.AddTrueDep(m.ID, acc.ID, 0)
	g.AddTrueDep(acc.ID, acc.ID, 1)
	return g
}
