package emit

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

// countInSection tallies how often each node appears in a section.
func countInSection(section []Instruction) map[int]int {
	counts := map[int]int{}
	for _, inst := range section {
		for _, ops := range inst.Ops {
			for _, op := range ops {
				if op != NOP {
					counts[op]++
				}
			}
		}
	}
	return counts
}

// TestSectionOccurrencesMatchStages pins the exact modulo-code shape: a
// node of stage s issues SC-1-s times during the ramp-up, once per
// kernel, and s times during the drain (its instances from the last
// iterations outlive the final kernel copy).
func TestSectionOccurrencesMatchStages(t *testing.T) {
	for _, g := range []*ddg.Graph{
		ddg.SampleDotProduct(), ddg.SampleStencil(), ddg.SampleChain(5),
		ddg.SampleFigure7().Unroll(2),
	} {
		for _, cfg := range []machine.Config{
			machine.Unified(), machine.TwoCluster(1, 2), machine.FourCluster(2, 1),
		} {
			s, err := sched.ScheduleGraph(g, &cfg, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", g.Name, cfg.Name, err)
			}
			p := Emit(s)
			sc := s.SC()
			pro := countInSection(p.Prologue)
			ker := countInSection(p.Kernel)
			epi := countInSection(p.Epilogue)
			for id := 0; id < g.NumNodes(); id++ {
				stage := s.StageOf(id)
				if got := pro[id]; got != sc-1-stage {
					t.Errorf("%s/%s node %d (stage %d): prologue %d, want %d",
						g.Name, cfg.Name, id, stage, got, sc-1-stage)
				}
				if got := ker[id]; got != 1 {
					t.Errorf("%s/%s node %d: kernel %d, want 1", g.Name, cfg.Name, id, got)
				}
				if got := epi[id]; got != stage {
					t.Errorf("%s/%s node %d (stage %d): epilogue %d, want %d",
						g.Name, cfg.Name, id, stage, got, stage)
				}
			}
		}
	}
}

// TestPrologueRampIsMonotone checks that each prologue instruction
// issues at least as many operations as the pipeline has filled stages:
// the ramp never goes backwards.
func TestPrologueRampIsMonotone(t *testing.T) {
	g := ddg.SampleChain(6)
	cfg := machine.Unified()
	s, err := sched.ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Emit(s)
	// Sum useful ops per II-sized block of the prologue: block k contains
	// the first k+1 stages' worth of work, so totals must not decrease.
	ii := s.II
	prev := -1
	for k := 0; k*ii < len(p.Prologue); k++ {
		total := 0
		for _, inst := range p.Prologue[k*ii : (k+1)*ii] {
			for _, ops := range inst.Ops {
				for _, op := range ops {
					if op != NOP {
						total++
					}
				}
			}
		}
		if total < prev {
			t.Fatalf("prologue block %d issues %d ops, previous %d", k, total, prev)
		}
		prev = total
	}
}

// TestKernelBusFieldsAppearOncePerTransfer verifies each transfer has
// exactly one OUT field and at most one IN field in the kernel.
func TestKernelBusFieldsAppearOncePerTransfer(t *testing.T) {
	g := ddg.New("pair")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpFAdd)
	c := g.AddNode("c", machine.OpFMul)
	g.AddTrueDep(a.ID, b.ID, 0)
	g.AddTrueDep(a.ID, c.ID, 0)
	cfg := machine.FourCluster(2, 2)
	s, err := sched.ScheduleGraph(g, &cfg, &sched.Options{Assignment: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	p := Emit(s)
	outSeen := map[int]int{}
	inSeen := map[int]int{}
	for _, inst := range p.Kernel {
		for _, tr := range inst.OutBus {
			if tr != NOP {
				outSeen[tr]++
			}
		}
		for _, cl := range inst.InBus {
			for _, tr := range cl {
				if tr != NOP {
					inSeen[tr]++
				}
			}
		}
	}
	for i := range s.Transfers {
		if outSeen[i] != 1 {
			t.Errorf("transfer %d: %d OUT fields, want 1", i, outSeen[i])
		}
		if inSeen[i] > 1 {
			t.Errorf("transfer %d: %d IN fields, want <= 1", i, inSeen[i])
		}
	}
}
