// Package emit lowers a modulo schedule to VLIW instruction words in the
// paper's format (Figure 3): per cluster, one field per functional unit
// plus an OUT-BUS and an IN-BUS field.  It produces the full prologue /
// kernel / epilogue triple; the code-size study (Figure 10) counts the
// useful and NOP fields of exactly these words.
//
// Register fields are symbolic — operands are identified by producer
// node — because the paper's machine has no rotating register file and
// physical allocation (modulo variable expansion) is orthogonal to every
// measured quantity.
package emit

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/sched"
)

// NOP marks an empty instruction field.
const NOP = -1

// Instruction is one VLIW word.
type Instruction struct {
	// Ops[cluster][u] is the DDG node issued on unit u of the cluster
	// (units flattened INT first, then FP, then MEM), or NOP.
	Ops [][]int
	// OutBus[bus] is the index (into the schedule's transfer list) of the
	// transfer whose value is driven onto the bus this cycle, or NOP.
	OutBus []int
	// InBus[cluster][bus] is the transfer index whose value the cluster
	// latches from the bus into its register file this cycle, or NOP.
	InBus [][]int
}

// Program is the complete code of one modulo-scheduled loop.
type Program struct {
	// Schedule is the source schedule.
	Schedule *sched.Schedule
	// Kernel holds the II steady-state instructions.
	Kernel []Instruction
	// Prologue holds the (SC-1)*II ramp-up instructions.
	Prologue []Instruction
	// Epilogue holds the (SC-1)*II drain instructions.
	Epilogue []Instruction
}

// Emit lowers a schedule.  The schedule must be valid (see
// sched.Validate); Emit panics on FU field collisions, which a valid
// schedule cannot produce.
func Emit(s *sched.Schedule) *Program {
	p := &Program{Schedule: s}
	sc := s.SC()
	ii := s.II

	// With N total iterations (N >= SC assumed for the static code), the
	// activity at flat schedule time x repeats at absolute cycles
	// x + i*II.  The three sections select i ranges:
	//
	//   prologue cycle t (t in [0, (SC-1)*II)): x issues iff some i >= 0
	//     lands on t, i.e. t >= x and (t-x) % II == 0;
	//   kernel slot s: every x with x = s (mod II);
	//   epilogue cycle k: the instances of the last SC-1 iterations that
	//     outlive the final kernel copy: x - k a positive multiple of II.
	for t := 0; t < (sc-1)*ii; t++ {
		t := t
		p.Prologue = append(p.Prologue, p.buildInstruction(func(x int) bool {
			return t >= x && (t-x)%ii == 0
		}))
	}
	for slot := 0; slot < ii; slot++ {
		slot := slot
		p.Kernel = append(p.Kernel, p.buildInstruction(func(x int) bool {
			return mod(x, ii) == slot
		}))
	}
	for k := 0; k < (sc-1)*ii; k++ {
		k := k
		p.Epilogue = append(p.Epilogue, p.buildInstruction(func(x int) bool {
			d := x - k
			return d >= ii && d%ii == 0
		}))
	}
	return p
}

// buildInstruction collects the fields of the instruction whose issue
// predicate over flat schedule cycles is given.  Bus OUT fields use the
// transfer's start cycle, IN fields its arrival cycle.
func (p *Program) buildInstruction(issues func(cycle int) bool) Instruction {
	s := p.Schedule
	cfg := s.Cfg
	inst := Instruction{
		Ops:    make([][]int, cfg.NClusters),
		OutBus: make([]int, cfg.NBuses),
		InBus:  make([][]int, cfg.NClusters),
	}
	for c := range inst.Ops {
		inst.Ops[c] = make([]int, cfg.ClusterIssueWidth(c))
		for u := range inst.Ops[c] {
			inst.Ops[c][u] = NOP
		}
		inst.InBus[c] = make([]int, cfg.NBuses)
		for b := range inst.InBus[c] {
			inst.InBus[c][b] = NOP
		}
	}
	for b := range inst.OutBus {
		inst.OutBus[b] = NOP
	}

	for id, pl := range s.Placements {
		if !issues(pl.Cycle) {
			continue
		}
		u := p.unitIndex(pl.Cluster, s.Graph.Node(id).Class.FU(), pl.FU)
		if inst.Ops[pl.Cluster][u] != NOP {
			panic(fmt.Sprintf("emit: cluster %d unit %d double-booked by %d and %d",
				pl.Cluster, u, inst.Ops[pl.Cluster][u], id))
		}
		inst.Ops[pl.Cluster][u] = id
	}
	for i, tr := range s.Transfers {
		if issues(tr.Start) {
			inst.OutBus[tr.Bus] = i
		}
		if issues(tr.Start + cfg.BusLatency) {
			inst.InBus[tr.To][tr.Bus] = i
		}
	}
	return inst
}

// unitIndex flattens (class, fu) to a unit index within the cluster.
func (p *Program) unitIndex(cluster int, class machine.FUClass, fu int) int {
	cfg := p.Schedule.Cfg
	base := 0
	for cl := machine.FUClass(0); cl < class; cl++ {
		base += cfg.FUs(cluster, cl)
	}
	return base + fu
}

// Counts aggregates the code-size metrics of Figure 10.
type Counts struct {
	// Instructions is the static instruction count (prologue + kernel +
	// epilogue).
	Instructions int
	// UsefulOps counts non-NOP functional-unit fields.
	UsefulOps int
	// BusOps counts non-NOP OUT-BUS and IN-BUS fields.
	BusOps int
	// TotalSlots counts every field (useful + bus + NOPs), i.e. the raw
	// uncompressed code size in operation fields.
	TotalSlots int
}

// NOPs returns the number of empty fields.
func (c Counts) NOPs() int { return c.TotalSlots - c.UsefulOps - c.BusOps }

// Count tallies the program's fields.
func (p *Program) Count() Counts {
	var counts Counts
	all := [][]Instruction{p.Prologue, p.Kernel, p.Epilogue}
	slots := p.Schedule.Cfg.SlotsPerInstruction()
	for _, section := range all {
		for _, inst := range section {
			counts.Instructions++
			counts.TotalSlots += slots
			for _, ops := range inst.Ops {
				for _, op := range ops {
					if op != NOP {
						counts.UsefulOps++
					}
				}
			}
			for _, tr := range inst.OutBus {
				if tr != NOP {
					counts.BusOps++
				}
			}
			for _, in := range inst.InBus {
				for _, tr := range in {
					if tr != NOP {
						counts.BusOps++
					}
				}
			}
		}
	}
	return counts
}

// String renders the kernel (only) as an assembly-like listing.
func (p *Program) String() string {
	var b strings.Builder
	s := p.Schedule
	fmt.Fprintf(&b, "program %s on %s: II=%d SC=%d (%d prologue, %d kernel, %d epilogue)\n",
		s.Graph.Name, s.Cfg.Name, s.II, s.SC(), len(p.Prologue), len(p.Kernel), len(p.Epilogue))
	for slot, inst := range p.Kernel {
		fmt.Fprintf(&b, "  K%-2d:", slot)
		for c, ops := range inst.Ops {
			fields := make([]string, len(ops))
			for u, op := range ops {
				if op == NOP {
					fields[u] = "---"
				} else {
					fields[u] = s.Graph.Node(op).Name
				}
			}
			fmt.Fprintf(&b, " c%d[%s]", c, strings.Join(fields, " "))
		}
		for bus, tr := range inst.OutBus {
			if tr != NOP {
				fmt.Fprintf(&b, " out%d=%s", bus, s.Graph.Node(s.Transfers[tr].Producer).Name)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
