package emit

import (
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

func mustProgram(t *testing.T, g *ddg.Graph, cfg machine.Config) *Program {
	t.Helper()
	s, err := sched.ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(s); err != nil {
		t.Fatal(err)
	}
	return Emit(s)
}

func TestSectionLengths(t *testing.T) {
	p := mustProgram(t, ddg.SampleDotProduct(), machine.Unified())
	s := p.Schedule
	if len(p.Kernel) != s.II {
		t.Errorf("kernel = %d instructions, want II=%d", len(p.Kernel), s.II)
	}
	want := (s.SC() - 1) * s.II
	if len(p.Prologue) != want || len(p.Epilogue) != want {
		t.Errorf("prologue/epilogue = %d/%d, want %d", len(p.Prologue), len(p.Epilogue), want)
	}
}

func TestEveryNodeAppearsSCTimes(t *testing.T) {
	for _, g := range []*ddg.Graph{
		ddg.SampleDotProduct(), ddg.SampleStencil(), ddg.SampleFigure7(),
		ddg.SampleChain(6), ddg.SampleStencil().Unroll(2),
	} {
		for _, cfg := range []machine.Config{
			machine.Unified(), machine.TwoCluster(1, 1), machine.FourCluster(2, 2),
		} {
			p := mustProgram(t, g, cfg)
			counts := make(map[int]int)
			for _, section := range [][]Instruction{p.Prologue, p.Kernel, p.Epilogue} {
				for _, inst := range section {
					for _, ops := range inst.Ops {
						for _, op := range ops {
							if op != NOP {
								counts[op]++
							}
						}
					}
				}
			}
			sc := p.Schedule.SC()
			for id := 0; id < g.NumNodes(); id++ {
				if counts[id] != sc {
					t.Errorf("%s on %s: node %d appears %d times, want SC=%d",
						g.Name, cfg.Name, id, counts[id], sc)
				}
			}
		}
	}
}

func TestKernelMatchesSchedule(t *testing.T) {
	p := mustProgram(t, ddg.SampleStencil(), machine.TwoCluster(2, 1))
	s := p.Schedule
	for id, pl := range s.Placements {
		slot := pl.Cycle % s.II
		found := false
		for _, ops := range p.Kernel[slot].Ops[pl.Cluster] {
			if ops == id {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d missing from kernel slot %d cluster %d", id, slot, pl.Cluster)
		}
	}
}

func TestBusFieldsMatchTransfers(t *testing.T) {
	g := ddg.New("pair")
	a := g.AddNode("a", machine.OpLoad)
	b := g.AddNode("b", machine.OpFAdd)
	g.AddTrueDep(a.ID, b.ID, 0)
	cfg := machine.TwoCluster(1, 1)
	s, err := sched.ScheduleGraph(g, &cfg, &sched.Options{Assignment: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := Emit(s)
	tr := s.Transfers[0]
	outSlot := tr.Start % s.II
	if got := p.Kernel[outSlot].OutBus[tr.Bus]; got != 0 {
		t.Errorf("kernel slot %d OutBus = %d, want transfer 0", outSlot, got)
	}
	inSlot := (tr.Start + cfg.BusLatency) % s.II
	if got := p.Kernel[inSlot].InBus[tr.To][tr.Bus]; got != 0 {
		t.Errorf("kernel slot %d InBus[%d] = %d, want transfer 0", inSlot, tr.To, got)
	}
}

func TestCounts(t *testing.T) {
	p := mustProgram(t, ddg.SampleDotProduct(), machine.Unified())
	c := p.Count()
	s := p.Schedule
	wantInst := (2*(s.SC()-1) + 1) * s.II
	if c.Instructions != wantInst {
		t.Errorf("Instructions = %d, want %d", c.Instructions, wantInst)
	}
	wantUseful := s.Graph.NumNodes() * s.SC()
	if c.UsefulOps != wantUseful {
		t.Errorf("UsefulOps = %d, want nodes*SC = %d", c.UsefulOps, wantUseful)
	}
	if c.TotalSlots != c.Instructions*s.Cfg.SlotsPerInstruction() {
		t.Errorf("TotalSlots = %d inconsistent", c.TotalSlots)
	}
	if c.NOPs() != c.TotalSlots-c.UsefulOps-c.BusOps {
		t.Errorf("NOPs arithmetic broken")
	}
	if c.BusOps != 0 {
		t.Errorf("unified program has %d bus ops", c.BusOps)
	}
}

func TestUnrollingGrowsCode(t *testing.T) {
	// Figure 10's premise: unrolling multiplies the body, growing static
	// code even though the per-iteration performance improves.
	g := ddg.SampleStencil()
	cfg := machine.FourCluster(2, 1)
	plain := mustProgram(t, g, cfg).Count()
	unrolled := mustProgram(t, g.Unroll(4), cfg).Count()
	if unrolled.UsefulOps <= plain.UsefulOps {
		t.Errorf("unrolled useful ops %d <= plain %d", unrolled.UsefulOps, plain.UsefulOps)
	}
	if unrolled.Instructions <= plain.Instructions {
		t.Errorf("unrolled instructions %d <= plain %d", unrolled.Instructions, plain.Instructions)
	}
}

func TestStringListing(t *testing.T) {
	p := mustProgram(t, ddg.SampleDotProduct(), machine.Unified())
	out := p.String()
	for _, want := range []string{"program", "K0", "acc"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
}
