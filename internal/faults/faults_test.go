package faults

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

func TestParseRoundTrip(t *testing.T) {
	in, err := Parse("seed=7,panic=0.05,error=0.1,latency=0.25:5ms,cancel=0.1,evict=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 7 || in.panicP != 0.05 || in.errorP != 0.1 ||
		in.latencyP != 0.25 || in.latency != 5*time.Millisecond ||
		in.cancelP != 0.1 || in.evictP != 0.05 {
		t.Fatalf("parsed fields wrong: %+v", in)
	}
	want := "seed=7,panic=0.05,error=0.1,latency=0.25:5ms,cancel=0.1,evict=0.05"
	if got := in.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := in.Faults(); strings.Join(got, ",") != "cancel,error,evict,latency,panic" {
		t.Errorf("Faults() = %v", got)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"panic", "panic=2", "panic=-0.1", "panic=x",
		"latency=5ms", "latency=0.5:bogus", "latency=2:5ms",
		"seed=x", "frobnicate=0.5",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptyInjectsNothing(t *testing.T) {
	in, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	loop := corpus.Index(corpus.SPECfp95())["tomcatv.loop0"]
	cfg := machine.Unified()
	calls := 0
	fn := in.WrapCompile(func(l *corpus.Loop, c *machine.Config, o core.Options) (*core.Result, error) {
		calls++
		return nil, errors.New("real error")
	})
	for i := 0; i < 50; i++ {
		_, err := fn(loop, &cfg, core.Options{})
		if err == nil || err.Error() != "real error" {
			t.Fatalf("empty injector perturbed the compile: %v", err)
		}
	}
	if calls != 50 {
		t.Fatalf("compile called %d times, want 50", calls)
	}
}

// TestDeterministicDecisions: the same seed must produce the same
// fault sequence for the same subject, independent of other subjects'
// traffic; a different seed must (for this configuration) diverge.
func TestDeterministicDecisions(t *testing.T) {
	idx := corpus.Index(corpus.SPECfp95())
	subject, noise := idx["tomcatv.loop0"], idx["swim.loop0"]
	cfg := machine.FourCluster(1, 1)

	sequence := func(seed string, n int) []bool {
		in, err := Parse("seed=" + seed + ",error=0.3")
		if err != nil {
			t.Fatal(err)
		}
		fn := in.WrapCompile(func(l *corpus.Loop, c *machine.Config, o core.Options) (*core.Result, error) {
			return nil, nil
		})
		var outcomes []bool
		for i := 0; i < n; i++ {
			_, err := fn(subject, &cfg, core.Options{})
			outcomes = append(outcomes, err != nil)
		}
		return outcomes
	}

	a, b := sequence("42", 64), sequence("42", 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d", i)
		}
	}
	c := sequence("43", 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 64-attempt sequences")
	}

	// Interleaving traffic for another subject must not perturb the
	// first subject's sequence (keyed, not stream-based, decisions).
	in, _ := Parse("seed=42,error=0.3")
	fn := in.WrapCompile(func(l *corpus.Loop, c *machine.Config, o core.Options) (*core.Result, error) {
		return nil, nil
	})
	var interleaved []bool
	for i := 0; i < 64; i++ {
		fn(noise, &cfg, core.Options{}) // noise
		_, err := fn(subject, &cfg, core.Options{})
		interleaved = append(interleaved, err != nil)
	}
	for i := range a {
		if a[i] != interleaved[i] {
			t.Fatalf("interleaved traffic perturbed subject's fault sequence at %d", i)
		}
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	err := error(&InjectedError{Key: "k", N: 3})
	if !engine.Transient(err) {
		t.Error("InjectedError not Transient")
	}
	if !strings.Contains(err.Error(), "attempt 3") {
		t.Errorf("message %q lacks the attempt number", err)
	}
}

// TestInjectedPanicThroughPipeline drives a panic-injecting compile
// through the real pipeline and asserts the panic becomes a typed,
// uncached engine.PanicError.
func TestInjectedPanicThroughPipeline(t *testing.T) {
	in, err := Parse("seed=1,panic=1")
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(2)
	calls := 0
	p.SetCompile(func(l *corpus.Loop, c *machine.Config, o core.Options) (*core.Result, error) {
		calls++
		return core.Compile(l.Graph, c, &o)
	})
	p.WrapCompile(in.WrapCompile)

	loop := &corpus.Loop{Bench: "t", Graph: ddg.SampleDotProduct()}
	req := pipeline.Request{Loop: loop, Cfg: machine.Unified()}
	for i := 0; i < 3; i++ {
		_, err := p.Compile(req)
		var perr *engine.PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("attempt %d: err = %v (%T), want *engine.PanicError", i, err, err)
		}
	}
	if calls != 0 {
		t.Errorf("real compile ran %d times under panic=1", calls)
	}
	st := p.Stats()
	if st.Panics != 3 {
		t.Errorf("Stats.Panics = %d, want 3 (panic results must not be cached)", st.Panics)
	}
	if st.CachedEntries != 0 {
		t.Errorf("CachedEntries = %d, want 0", st.CachedEntries)
	}
	if got := in.Counts()["panic"]; got != 3 {
		t.Errorf("Counts()[panic] = %d, want 3", got)
	}
}

func TestEvictChurnHook(t *testing.T) {
	in, err := Parse("seed=1,evict=1")
	if err != nil {
		t.Fatal(err)
	}
	purges := 0
	in.SetEvict(func() { purges++ })
	fn := in.WrapCompile(func(l *corpus.Loop, c *machine.Config, o core.Options) (*core.Result, error) {
		return nil, nil
	})
	loop := &corpus.Loop{Bench: "t", Graph: ddg.SampleDotProduct()}
	cfg := machine.Unified()
	for i := 0; i < 5; i++ {
		fn(loop, &cfg, core.Options{})
	}
	if purges != 5 {
		t.Errorf("evict hook ran %d times under evict=1, want 5", purges)
	}
}

func TestMiddlewareCancelStorm(t *testing.T) {
	in, err := Parse("seed=1,cancel=1")
	if err != nil {
		t.Fatal(err)
	}
	canceled := 0
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			canceled++
		case <-time.After(2 * time.Second):
		}
		w.WriteHeader(http.StatusOK)
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	}
	if canceled != 3 {
		t.Errorf("cancel storm reached %d/3 handlers", canceled)
	}
	if got := in.Counts()["cancel"]; got != 3 {
		t.Errorf("Counts()[cancel] = %d, want 3", got)
	}
}
