// Package faults is the deterministic fault-injection registry behind
// schedd's chaos mode: latency spikes, injected compile errors,
// compile panics, context-cancel storms and cache-evict churn, all
// driven by one seed so a chaos run is reproducible.
//
// An Injector is built from a compact spec string:
//
//	seed=1,panic=0.05,error=0.1,latency=0.25:5ms,cancel=0.1,evict=0.05
//
// and plugs in at the two places the service can be hurt: WrapCompile
// decorates a pipeline.CompileFunc (panics, errors, latency, evict
// churn fire around real compilations), and Middleware decorates the
// HTTP handler (latency and request-context cancel storms fire around
// whole requests).  Production binaries never construct an Injector;
// schedd only builds one when the -faults flag (or SCHEDD_FAULTS) is
// set, and chaos tests construct theirs directly.
//
// Determinism: every decision is a pure function of (seed, fault site,
// subject key, per-subject attempt counter) via FNV-1a — no shared
// PRNG stream, so concurrency does not perturb outcomes.  The first
// compile of loop X always sees the same faults for a given seed no
// matter how requests interleave; its first retry rolls the next
// attempt number, which is how a chaos run converges instead of
// replaying one fault forever.
//
// Injected compile errors and panics are transient in the
// internal/engine sense: the pipeline publishes them to current
// waiters but never caches them, and clients may retry them safely.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// InjectedError is a fault-injected compile failure.  It is Transient:
// the pipeline must not cache it and clients may retry it.
type InjectedError struct {
	// Key identifies the compile the fault hit; N is its attempt
	// number under this injector.
	Key string
	N   uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected compile error (attempt %d of %s)", e.N, e.Key)
}

// Transient marks the error as non-cacheable and retry-safe.
func (e *InjectedError) Transient() bool { return true }

// Injector holds one chaos configuration.  The zero value injects
// nothing; build a real one with Parse.  Safe for concurrent use.
type Injector struct {
	seed int64

	panicP, errorP, cancelP, evictP, latencyP float64
	latency                                   time.Duration

	// evict, when set, is invoked on an evict-churn fault (the service
	// wires it to pipeline.Purge).
	evict func()

	mu       sync.Mutex
	attempts map[string]uint64 // per-(site|key) roll counter

	latencies, errors, panics, cancels, evicts atomic.Int64
}

// Parse builds an Injector from a spec string: comma-separated k=v
// pairs, all optional.
//
//	seed=N          decision seed (default 1)
//	panic=P         per-compile panic probability
//	error=P         per-compile injected-error probability
//	latency=P:DUR   per-compile and per-request latency spike (P
//	                probability of sleeping DUR, e.g. 0.25:5ms)
//	cancel=P        per-request context-cancel storm probability
//	evict=P         per-compile cache-purge probability
//
// Probabilities are in [0, 1].  An empty spec yields an injector that
// injects nothing (but still counts nothing — harmless).
func Parse(spec string) (*Injector, error) {
	in := &Injector{seed: 1, attempts: map[string]uint64{}}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return in, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return nil, fmt.Errorf("faults: bad spec element %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			in.seed = n
		case "panic", "error", "cancel", "evict":
			p, err := parseProb(k, v)
			if err != nil {
				return nil, err
			}
			switch k {
			case "panic":
				in.panicP = p
			case "error":
				in.errorP = p
			case "cancel":
				in.cancelP = p
			case "evict":
				in.evictP = p
			}
		case "latency":
			ps, ds, found := strings.Cut(v, ":")
			if !found {
				return nil, fmt.Errorf("faults: bad latency %q (want P:DUR, e.g. 0.25:5ms)", v)
			}
			p, err := parseProb("latency", ps)
			if err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(ds)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: bad latency duration %q", ds)
			}
			in.latencyP, in.latency = p, d
		default:
			return nil, fmt.Errorf("faults: unknown fault %q (known: seed, panic, error, latency, cancel, evict)", k)
		}
	}
	return in, nil
}

func parseProb(key, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("faults: bad %s probability %q (want [0,1])", key, v)
	}
	return p, nil
}

// String renders the normalized spec (startup logs).
func (in *Injector) String() string {
	parts := []string{fmt.Sprintf("seed=%d", in.seed)}
	add := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, p))
		}
	}
	add("panic", in.panicP)
	add("error", in.errorP)
	if in.latencyP > 0 {
		parts = append(parts, fmt.Sprintf("latency=%g:%v", in.latencyP, in.latency))
	}
	add("cancel", in.cancelP)
	add("evict", in.evictP)
	return strings.Join(parts, ",")
}

// SetEvict registers the cache-churn hook (the service passes
// pipeline.Purge).  Call before serving traffic; nil disables.
func (in *Injector) SetEvict(fn func()) { in.evict = fn }

// roll returns the deterministic uniform [0,1) variate for the n'th
// decision at one fault site for one subject, advancing the counter.
func (in *Injector) roll(site, key string) (float64, uint64) {
	in.mu.Lock()
	ck := site + "|" + key
	n := in.attempts[ck]
	in.attempts[ck] = n + 1
	in.mu.Unlock()

	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", in.seed, site, key, n)
	// FNV-1a avalanches poorly when inputs differ only in trailing
	// bytes (the attempt counter), so finalize with a strong mixer
	// before taking 53 mantissa bits -> uniform float64 in [0,1).
	return float64(mix64(h.Sum64())>>11) / float64(1<<53), n
}

// mix64 is the murmur3 64-bit finalizer: full avalanche, so every
// input bit flips each output bit with ~1/2 probability.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// compileKey identifies one compilation for decision purposes: the
// loop's content fingerprint plus the machine, so structurally
// identical requests share a fault fate per attempt.
func compileKey(l *corpus.Loop, cfg *machine.Config) string {
	return l.Graph.Fingerprint() + "|" + cfg.Name
}

// WrapCompile decorates a compile function with the compile-side
// faults: a latency spike, then (exclusively, in precedence order) a
// panic or an injected error; after a real compile, possibly a cache
// purge.  The panic deliberately escapes — the pipeline's recovery
// fence must convert it into a typed engine.PanicError, which is
// exactly the path chaos runs exist to exercise.
func (in *Injector) WrapCompile(next pipeline.CompileFunc) pipeline.CompileFunc {
	return func(l *corpus.Loop, cfg *machine.Config, opts core.Options) (*core.Result, error) {
		key := compileKey(l, cfg)
		if in.latencyP > 0 {
			if p, _ := in.roll("latency", key); p < in.latencyP {
				in.latencies.Add(1)
				time.Sleep(in.latency)
			}
		}
		if in.panicP > 0 {
			if p, n := in.roll("panic", key); p < in.panicP {
				in.panics.Add(1)
				panic(fmt.Sprintf("faults: injected panic (attempt %d of %s, seed %d)", n, key, in.seed))
			}
		}
		if in.errorP > 0 {
			if p, n := in.roll("error", key); p < in.errorP {
				in.errors.Add(1)
				return nil, &InjectedError{Key: key, N: n}
			}
		}
		res, err := next(l, cfg, opts)
		if in.evictP > 0 && in.evict != nil {
			if p, _ := in.roll("evict", key); p < in.evictP {
				in.evicts.Add(1)
				in.evict()
			}
		}
		return res, err
	}
}

// Middleware decorates an HTTP handler with the request-side faults:
// a latency spike before the handler runs, and cancel storms — the
// request's context is cancelled after a fraction of the configured
// latency duration, simulating a client that gives up (or a router
// that times out) mid-request.  The handler below must survive both.
func (in *Injector) Middleware(next http.Handler) http.Handler {
	if in.latencyP == 0 && in.cancelP == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Method + " " + r.URL.Path
		if in.latencyP > 0 {
			if p, _ := in.roll("http_latency", key); p < in.latencyP {
				in.latencies.Add(1)
				time.Sleep(in.latency)
			}
		}
		if in.cancelP > 0 {
			if p, n := in.roll("cancel", key); p < in.cancelP {
				in.cancels.Add(1)
				ctx, cancel := context.WithCancel(r.Context())
				// Cancel asynchronously after a deterministic sub-latency
				// delay: attempt number modulates where in the request
				// lifetime the storm hits.
				delay := in.cancelDelay(n)
				timer := time.AfterFunc(delay, cancel)
				defer timer.Stop()
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		next.ServeHTTP(w, r)
	})
}

// cancelDelay spreads cancel storms across the request lifetime:
// 0..latency (or 0..5ms when no latency fault is configured), stepped
// by the attempt number.
func (in *Injector) cancelDelay(n uint64) time.Duration {
	span := in.latency
	if span <= 0 {
		span = 5 * time.Millisecond
	}
	return time.Duration(n%8) * span / 8
}

// Counts snapshots the per-fault injection counters, keyed by fault
// name, omitting zeroes.  The service exposes it in /v1/stats during
// chaos runs.
func (in *Injector) Counts() map[string]int64 {
	m := map[string]int64{}
	for k, v := range map[string]int64{
		"latency": in.latencies.Load(),
		"error":   in.errors.Load(),
		"panic":   in.panics.Load(),
		"cancel":  in.cancels.Load(),
		"evict":   in.evicts.Load(),
	} {
		if v != 0 {
			m[k] = v
		}
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// Faults lists the configured fault names, sorted (startup log,
// capability hints).
func (in *Injector) Faults() []string {
	var out []string
	for k, p := range map[string]float64{
		"panic": in.panicP, "error": in.errorP, "latency": in.latencyP,
		"cancel": in.cancelP, "evict": in.evictP,
	} {
		if p > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
