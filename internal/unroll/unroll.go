// Package unroll implements the paper's selective loop unrolling
// (Figure 6): schedule the original loop; if the result is bus-limited,
// estimate — without scheduling — whether unrolling by the cluster count
// would let the communications fit inside the unrolled loop's minimum
// initiation interval, and only then unroll and reschedule.
//
// The estimate mirrors the paper's closed form.  Scheduling one
// iteration copy per cluster turns every loop-carried true dependence
// whose distance is not a multiple of the unroll factor into a
// cross-cluster communication, once per copy:
//
//	comneeded = NDepsNotMult(G) * U
//	cycneeded = ceil(comneeded / nbuses) * latbus
//
// and unrolling pays off when cycneeded fits into the unrolled loop's
// MinII (computable directly from the unrolled graph, no schedule
// needed).
package unroll

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

// Decision records why the selective algorithm did or did not unroll.
type Decision struct {
	// Unrolled reports whether the unrolled schedule was chosen.
	Unrolled bool
	// Factor is the unroll factor used (1 when not unrolled).
	Factor int
	// BusLimited is the LimitedByBus test on the original schedule.
	BusLimited bool
	// ComNeeded is the estimated communications per unrolled kernel.
	ComNeeded int
	// CycNeeded is the estimated bus cycles those communications need.
	CycNeeded int
	// UnrolledMinII is the unrolled loop's scheduling lower bound.
	UnrolledMinII int
	// FailReason explains why an unrolled schedule was abandoned after
	// the estimate (or the strategy) asked for one: the reschedule
	// failure in Selective, or the UnrollAll fallback in the compile
	// pipeline.  Empty when nothing went wrong.
	FailReason string
}

// String explains the decision.
func (d Decision) String() string {
	var suffix string
	if d.FailReason != "" {
		suffix = fmt.Sprintf(" [%s]", d.FailReason)
	}
	if !d.BusLimited {
		return "no unroll: schedule not limited by buses" + suffix
	}
	if !d.Unrolled {
		if d.FailReason != "" {
			return fmt.Sprintf("no unroll: estimate passed (%d comms, %d bus cycles <= unrolled MinII %d) but%s",
				d.ComNeeded, d.CycNeeded, d.UnrolledMinII, suffix)
		}
		return fmt.Sprintf("no unroll: %d comms need %d bus cycles > unrolled MinII %d",
			d.ComNeeded, d.CycNeeded, d.UnrolledMinII)
	}
	return fmt.Sprintf("unroll x%d: %d comms need %d bus cycles <= unrolled MinII %d",
		d.Factor, d.ComNeeded, d.CycNeeded, d.UnrolledMinII) + suffix
}

// Result bundles the chosen schedule with the decision trail.  The
// schedule's Graph is the unrolled graph when Decision.Unrolled.
type Result struct {
	Schedule *sched.Schedule
	Decision Decision
}

// scheduleFn is the scheduler entry point; tests swap it to inject
// failures into the unrolled-reschedule path.
var scheduleFn = sched.ScheduleGraph

// ScheduleFunc schedules one graph; SelectiveFunc is parameterised
// over it so any scheduler engine (BSA, the two-phase baseline, an
// engine-registry adapter) can drive the same Figure 6 decision logic.
type ScheduleFunc func(*ddg.Graph) (*sched.Schedule, error)

// Selective runs Figure 6 of the paper with the unified scheduler
// (sched.ScheduleGraph): LimitedByBus check, closed-form estimate, and
// the conditional unrolled reschedule.  The unroll factor is the
// cluster count (the scheduler spreads one iteration copy per
// cluster).
func Selective(g *ddg.Graph, cfg *machine.Config, opts *sched.Options) (*Result, error) {
	return SelectiveFunc(g, cfg, func(gg *ddg.Graph) (*sched.Schedule, error) {
		return scheduleFn(gg, cfg, opts)
	})
}

// SelectiveFunc is Selective over an arbitrary scheduler: the single
// home of the Figure 6 decision logic, shared by the direct library
// entry point above and by the engine registry's "selective" policy.
func SelectiveFunc(g *ddg.Graph, cfg *machine.Config, schedule ScheduleFunc) (*Result, error) {
	s, err := schedule(g)
	if err != nil {
		return nil, err
	}
	dec := Decision{Factor: 1, BusLimited: s.BusLimited}
	if !cfg.Clustered() || !s.BusLimited {
		return &Result{Schedule: s, Decision: dec}, nil
	}

	u := cfg.NClusters
	dec.ComNeeded = g.DepsNotMultiple(u) * u
	unrolled := g.Unroll(u)
	dec.UnrolledMinII = unrolled.MinII(cfg)
	dec.CycNeeded = ceilDiv(dec.ComNeeded, cfg.NBuses) * cfg.BusLatency
	if dec.CycNeeded > dec.UnrolledMinII {
		return &Result{Schedule: s, Decision: dec}, nil
	}

	s2, err := schedule(unrolled)
	if err != nil {
		// The estimate said yes but the full schedule failed (rare: e.g.
		// register pressure).  Keep the original schedule, and keep the
		// reason — a Decision that cannot explain why unrolling was
		// abandoned reads exactly like one that never tried.
		dec.FailReason = fmt.Sprintf("unrolled reschedule failed: %v", err)
		return &Result{Schedule: s, Decision: dec}, nil
	}
	dec.Unrolled = true
	dec.Factor = u
	return &Result{Schedule: s2, Decision: dec}, nil
}

// All unconditionally unrolls by the given factor and schedules the
// result — the "Unrolling" bars of Figure 8.  factor 1 schedules the
// original loop.
func All(g *ddg.Graph, cfg *machine.Config, factor int, opts *sched.Options) (*Result, error) {
	if factor < 1 {
		return nil, fmt.Errorf("unroll: factor %d < 1", factor)
	}
	ug := g
	if factor > 1 {
		ug = g.Unroll(factor)
	}
	s, err := sched.ScheduleGraph(ug, cfg, opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule: s,
		Decision: Decision{Unrolled: factor > 1, Factor: factor, BusLimited: s.BusLimited},
	}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
