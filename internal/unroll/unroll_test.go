package unroll

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

func TestSelectiveSkipsUnifiedMachine(t *testing.T) {
	uni := machine.Unified()
	res, err := Selective(ddg.SampleDotProduct(), &uni, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision.Unrolled || res.Decision.Factor != 1 {
		t.Errorf("unified machine unrolled: %+v", res.Decision)
	}
}

func TestSelectiveSkipsNonBusLimitedLoops(t *testing.T) {
	// The dot product fits one cluster: never bus-limited, never unrolled.
	cfg := machine.TwoCluster(1, 1)
	res, err := Selective(ddg.SampleDotProduct(), &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision.BusLimited {
		t.Errorf("dot product flagged bus-limited")
	}
	if res.Decision.Unrolled {
		t.Errorf("non-bus-limited loop was unrolled: %+v", res.Decision)
	}
}

func TestSelectiveUnrollsFigure7(t *testing.T) {
	// Figure 7's worked example with a 2-cycle bus (the paper notes
	// unrolling hides the communication latency "even if the latency of
	// the bus was 2 cycles").  The non-unrolled loop is bus-limited — a
	// communication occupies both bus slots of an II=2 kernel — so the
	// whole body collapses into one cluster at II=3; unrolling by 2
	// restores two-cluster execution at II=4, i.e. 2 cycles per original
	// iteration.
	g := ddg.SampleFigure7()
	cfg := machine.TwoCluster(1, 2)
	plain, err := sched.ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.BusLimited {
		t.Fatalf("figure 7 not bus-limited at L=2 (II=%d, MinII=%d)", plain.II, plain.MinII)
	}
	res, err := Selective(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.Unrolled {
		t.Fatalf("figure 7 not unrolled: %v", res.Decision)
	}
	perIterPlain := float64(plain.II)
	perIterUnrolled := float64(res.Schedule.II) / 2
	if perIterUnrolled > perIterPlain {
		t.Errorf("unrolled per-iteration II %.1f worse than plain %d", perIterUnrolled, plain.II)
	}
	if err := sched.Validate(res.Schedule); err != nil {
		t.Errorf("unrolled schedule invalid: %v", err)
	}
}

func TestSelectiveEstimateMatchesPaperExample(t *testing.T) {
	// Figure 6 arithmetic on the Figure 7 loop: U=2 clusters; the
	// distance-2 recurrence is a multiple of U and drops out, leaving the
	// distance-1 dependence -> NDepsNotMult=1, comneeded=2; one 2-cycle
	// bus -> cycneeded=4; the unrolled loop's MinII is 4 (the recurrence
	// ratio doubles per copy), so 4 <= 4 admits the unroll.
	g := ddg.SampleFigure7()
	if got := g.DepsNotMultiple(2); got != 1 {
		t.Errorf("DepsNotMultiple(2) = %d, want 1", got)
	}
	cfg := machine.TwoCluster(1, 2)
	if got := g.Unroll(2).MinII(&cfg); got != 4 {
		t.Errorf("unrolled MinII = %d, want 4", got)
	}
	res, err := Selective(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decision.BusLimited {
		t.Fatal("figure 7 not bus-limited at L=2")
	}
	if res.Decision.ComNeeded != 2 {
		t.Errorf("ComNeeded = %d, want 2", res.Decision.ComNeeded)
	}
	if res.Decision.CycNeeded != 4 {
		t.Errorf("CycNeeded = %d, want 4", res.Decision.CycNeeded)
	}
	if res.Decision.UnrolledMinII != 4 {
		t.Errorf("UnrolledMinII = %d, want 4", res.Decision.UnrolledMinII)
	}
}

func TestAllFactorOne(t *testing.T) {
	cfg := machine.TwoCluster(1, 1)
	res, err := All(ddg.SampleStencil(), &cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision.Unrolled || res.Schedule.Graph.UnrollFactor != 1 {
		t.Errorf("factor 1 unrolled the graph")
	}
}

func TestAllSchedulesUnrolledGraph(t *testing.T) {
	cfg := machine.FourCluster(2, 1)
	res, err := All(ddg.SampleStencil(), &cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Graph.UnrollFactor != 4 {
		t.Errorf("scheduled graph unroll factor = %d, want 4", res.Schedule.Graph.UnrollFactor)
	}
	if err := sched.Validate(res.Schedule); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAllRejectsBadFactor(t *testing.T) {
	cfg := machine.TwoCluster(1, 1)
	if _, err := All(ddg.SampleStencil(), &cfg, 0, nil); err == nil {
		t.Error("factor 0 accepted")
	}
}

func TestDecisionString(t *testing.T) {
	cases := []Decision{
		{BusLimited: false, Factor: 1},
		{BusLimited: true, Unrolled: false, ComNeeded: 8, CycNeeded: 16, UnrolledMinII: 4},
		{BusLimited: true, Unrolled: true, Factor: 4, ComNeeded: 4, CycNeeded: 4, UnrolledMinII: 8},
	}
	for _, d := range cases {
		if d.String() == "" {
			t.Errorf("empty Decision string for %+v", d)
		}
	}
}

func TestSelectiveReducesIterationIIOnBusBoundLoop(t *testing.T) {
	// The stencil on 4 clusters with one slow bus: heavy internal traffic
	// makes the non-unrolled schedule bus-limited; unrolled-by-4
	// iterations run nearly independently.
	g := ddg.SampleStencil()
	cfg := machine.FourCluster(1, 2)
	plain, err := sched.ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Selective(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	plainPerIter := float64(plain.II)
	selPerIter := float64(res.Schedule.II) / float64(res.Decision.Factor)
	if selPerIter > plainPerIter {
		t.Errorf("selective made things worse: %.2f vs %.2f (decision %v)",
			selPerIter, plainPerIter, res.Decision)
	}
}

// TestSelectiveRecordsRescheduleFailure is the regression test for the
// swallowed unrolled-reschedule error: when the estimate says unroll
// but the full schedule fails, the Decision must explain why unrolling
// was abandoned instead of silently keeping the original schedule.
func TestSelectiveRecordsRescheduleFailure(t *testing.T) {
	// Figure 7 on the 2-cluster/2-cycle-bus machine passes the estimate
	// and normally unrolls (TestSelectiveUnrollsFigure7).  Inject a
	// scheduler that fails on exactly the unrolled graph.
	orig := scheduleFn
	defer func() { scheduleFn = orig }()
	scheduleFn = func(g *ddg.Graph, cfg *machine.Config, opts *sched.Options) (*sched.Schedule, error) {
		if g.UnrollFactor > 1 {
			return nil, errors.New("injected: unrolled body rejected")
		}
		return sched.ScheduleGraph(g, cfg, opts)
	}

	cfg := machine.TwoCluster(1, 2)
	res, err := Selective(ddg.SampleFigure7(), &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decision
	if d.Unrolled || d.Factor != 1 {
		t.Fatalf("injected failure still unrolled: %+v", d)
	}
	if !strings.Contains(d.FailReason, "injected: unrolled body rejected") {
		t.Errorf("FailReason = %q, want the injected error", d.FailReason)
	}
	if s := d.String(); !strings.Contains(s, "injected: unrolled body rejected") ||
		!strings.Contains(s, "estimate passed") {
		t.Errorf("Decision.String() = %q does not explain the abandonment", s)
	}
	if res.Schedule.Graph.UnrollFactor != 1 {
		t.Error("fallback schedule is not the original loop's")
	}
}

// TestSelectiveNoFailReasonOnCleanPaths pins FailReason to the failure
// path only.
func TestSelectiveNoFailReasonOnCleanPaths(t *testing.T) {
	for _, cfg := range []machine.Config{machine.Unified(), machine.TwoCluster(1, 2)} {
		res, err := Selective(ddg.SampleFigure7(), &cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision.FailReason != "" {
			t.Errorf("%s: clean path has FailReason %q", cfg.Name, res.Decision.FailReason)
		}
	}
}
