// Package client is the resilient Go client for schedd: retries with
// deadline-aware exponential backoff and jitter, Retry-After honoring
// on 429/503, optional hedged requests across several endpoints, and a
// batch call with per-index exactly-once semantics.
//
// Retry safety rests on the server's cache keying: a compile is
// identified by its content (graph fingerprint, machine, options), so
// re-sending the same request after a transient failure either joins
// the in-flight compile or hits the cached result — never a second,
// divergent compilation.  The client therefore retries freely on the
// transient wire codes (over_capacity, engine_quarantined, draining,
// engine_panic, deadline_exceeded) and on transport errors, and never
// on deterministic client errors (bad_request, unknown_loop, ...).
//
// Hedging: with more than one endpoint and Config.Hedge > 0, a request
// that has not answered within the hedge delay is raced against the
// next endpoint; the first response wins and the losers are cancelled.
// Hedging applies to single compiles and GETs, not to batch streams.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// Config tunes a Client.  The zero value is unusable: at least one
// endpoint is required.
type Config struct {
	// Endpoints are the schedd base URLs (e.g. "http://127.0.0.1:8080").
	// The first is primary; the rest serve retries and hedges.
	Endpoints []string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Attempts caps tries per request (and per batch round set);
	// <= 0 means 4.
	Attempts int
	// BackoffBase seeds the exponential backoff (doubled per attempt,
	// jittered); <= 0 means 100ms.  BackoffMax caps the computed wait;
	// <= 0 means 5s.  A server Retry-After above the computed wait
	// always wins (still capped by the context deadline).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hedge launches a duplicate request on the next endpoint when the
	// current one has not answered within this delay; 0 disables
	// hedging.
	Hedge time.Duration
	// Seed makes the jitter deterministic (tests, reproducible chaos
	// runs); 0 means 1.
	Seed int64
}

// Client is a resilient schedd client.  Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client.
func New(cfg Config) (*Client, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("client: at least one endpoint required")
	}
	for i, ep := range cfg.Endpoints {
		cfg.Endpoints[i] = strings.TrimRight(ep, "/")
	}
	if cfg.Attempts <= 0 {
		cfg.Attempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	h := cfg.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	return &Client{cfg: cfg, http: h, rng: rand.New(rand.NewSource(seed))}, nil
}

// retryable reports whether err is worth another attempt: transport
// errors and the transient wire codes are; deterministic rejections
// are not.
func retryable(err error) bool {
	var werr *wire.Error
	if !errors.As(err, &werr) {
		return true // transport-level: connection refused, reset, EOF
	}
	switch werr.Code {
	case wire.CodeOverCapacity, wire.CodeEngineQuarantined, wire.CodeDraining,
		wire.CodeEnginePanic, wire.CodeDeadlineExceeded, wire.CodeInternal:
		return true
	default:
		return false
	}
}

// backoff computes the pre-attempt wait: exponential with full jitter,
// overridden upward by the server's Retry-After when one was sent.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jittered := time.Duration(float64(d) * (0.5 + c.rng.Float64()/2))
	c.mu.Unlock()
	return max(jittered, retryAfter)
}

// sleep waits d, deadline-aware: if the context expires (or would
// expire before d elapses), it returns the context error immediately
// so the caller fails fast instead of sleeping through its budget.
func sleep(ctx context.Context, d time.Duration) error {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterOf extracts the server's retry hint from a wire error.
func retryAfterOf(err error) time.Duration {
	var werr *wire.Error
	if errors.As(err, &werr) && werr.RetryAfterMS > 0 {
		return time.Duration(werr.RetryAfterMS) * time.Millisecond
	}
	return 0
}

// response is one settled HTTP exchange with the body fully read.
type response struct {
	status int
	body   []byte
}

// roundTrip runs one exchange against one endpoint and slurps the
// body, so hedged losers can be cancelled without tearing a winner's
// half-read body.
func (c *Client) roundTrip(ctx context.Context, base, method, path string, body []byte) (*response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &response{status: resp.StatusCode, body: b}, nil
}

// exchange runs one attempt, hedged across endpoints when configured:
// the request starts on the attempt'th endpoint (rotating, so retries
// move on from a sick server) and a duplicate launches on each next
// endpoint every Hedge interval until one answers.
func (c *Client) exchange(ctx context.Context, attempt int, method, path string, body []byte) (*response, error) {
	eps := c.cfg.Endpoints
	first := attempt % len(eps)
	if c.cfg.Hedge <= 0 || len(eps) == 1 {
		return c.roundTrip(ctx, eps[first], method, path, body)
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reels in every loser
	type settled struct {
		r   *response
		err error
	}
	results := make(chan settled, len(eps))
	launched := 0
	launch := func() {
		ep := eps[(first+launched)%len(eps)]
		launched++
		go func() {
			r, err := c.roundTrip(hctx, ep, method, path, body)
			results <- settled{r, err}
		}()
	}
	launch()
	timer := time.NewTimer(c.cfg.Hedge)
	defer timer.Stop()
	var lastErr error
	for done := 0; done < len(eps); {
		select {
		case s := <-results:
			done++
			if s.err == nil {
				return s.r, nil
			}
			lastErr = s.err
			if done == launched && launched < len(eps) {
				launch() // every outstanding try failed: hedge now
			}
		case <-timer.C:
			if launched < len(eps) {
				launch()
				timer.Reset(c.cfg.Hedge)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if done == len(eps) {
			break
		}
	}
	return nil, lastErr
}

// decodeError maps a non-2xx response to its wire error.
func decodeError(r *response) error {
	var er wire.ErrorResponse
	if err := json.Unmarshal(r.body, &er); err == nil && er.Error != nil {
		return er.Error
	}
	return fmt.Errorf("client: HTTP %d: %s", r.status, bytes.TrimSpace(r.body))
}

// doJSON runs the full retry loop for one JSON-in/JSON-out call.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.backoff(attempt, retryAfterOf(lastErr))); err != nil {
				return errors.Join(err, lastErr)
			}
		}
		r, err := c.exchange(ctx, attempt, method, path, body)
		if err != nil {
			lastErr = err
		} else if r.status/100 != 2 {
			lastErr = decodeError(r)
		} else {
			return json.Unmarshal(r.body, out)
		}
		if ctx.Err() != nil || !retryable(lastErr) {
			return lastErr
		}
	}
	return lastErr
}

// Compile runs one compilation, retrying transient failures until the
// context or the attempt budget runs out.
func (c *Client) Compile(ctx context.Context, req *wire.CompileRequest) (*wire.Result, error) {
	if req.V == 0 {
		req.V = wire.Version
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp wire.CompileResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/compile", body, &resp); err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (*wire.StatsResponse, error) {
	var resp wire.StatsResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Capabilities fetches /v1/capabilities.
func (c *Client) Capabilities(ctx context.Context) (*wire.CapabilitiesResponse, error) {
	var resp wire.CapabilitiesResponse
	if err := c.doJSON(ctx, http.MethodGet, "/v1/capabilities", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch compiles every request and returns exactly one settled item
// per index, in index order.  Each round posts the still-unsettled
// requests as one /v1/batch stream; items that come back with a
// transient error — or never come back because the stream was cut —
// are re-sent next round against the next endpoint.  Because the
// server keys compiles on content, a re-sent request joins or re-reads
// the same compilation: results are exactly-once per index no matter
// how many rounds ran.  Items that exhaust the attempt budget settle
// with their last error (or a synthetic one if their line was lost).
func (c *Client) Batch(ctx context.Context, reqs []wire.CompileRequest) ([]wire.BatchItem, error) {
	if len(reqs) == 0 {
		return nil, errors.New("client: empty batch")
	}
	out := make([]*wire.BatchItem, len(reqs))
	lastErr := make([]*wire.Error, len(reqs))
	pending := make([]int, len(reqs))
	for i := range reqs {
		pending[i] = i
	}

	for attempt := 0; attempt < c.cfg.Attempts && len(pending) > 0; attempt++ {
		if attempt > 0 {
			var hint time.Duration
			for _, i := range pending {
				if lastErr[i] != nil {
					hint = max(hint, time.Duration(lastErr[i].RetryAfterMS)*time.Millisecond)
				}
			}
			if err := sleep(ctx, c.backoff(attempt, hint)); err != nil {
				break
			}
		}
		sub := make([]wire.CompileRequest, len(pending))
		for k, i := range pending {
			sub[k] = reqs[i]
			if sub[k].V == 0 {
				sub[k].V = wire.Version
			}
		}
		body, err := json.Marshal(wire.BatchRequest{V: wire.Version, Requests: sub})
		if err != nil {
			return nil, err
		}
		base := c.cfg.Endpoints[attempt%len(c.cfg.Endpoints)]
		next := c.streamBatch(ctx, base, body, pending, out, lastErr)
		pending = next
	}

	// Settle the stragglers with their last error so every index
	// reports exactly one outcome.
	for _, i := range pending {
		werr := lastErr[i]
		if werr == nil {
			werr = wire.Errorf(wire.CodeInternal, "batch item never answered (stream cut)")
		}
		out[i] = &wire.BatchItem{V: wire.Version, Index: i, Error: werr}
	}
	items := make([]wire.BatchItem, len(reqs))
	for i, it := range out {
		it.Index = i // re-anchor sub-batch indices to the caller's
		items[i] = *it
	}
	return items, nil
}

// streamBatch posts one batch round and consumes its NDJSON stream,
// settling finished items into out and returning the indices (into the
// caller's original request slice) that still need another round.
func (c *Client) streamBatch(ctx context.Context, base string, body []byte, pending []int, out []*wire.BatchItem, lastErr []*wire.Error) (stillPending []int) {
	transientAll := func(werr *wire.Error) []int {
		for _, i := range pending {
			if out[i] == nil && werr != nil {
				lastErr[i] = werr
			}
		}
		var left []int
		for _, i := range pending {
			if out[i] == nil {
				left = append(left, i)
			}
		}
		return left
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return transientAll(wire.Errorf(wire.CodeInternal, "%v", err))
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return transientAll(nil)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		b, _ := io.ReadAll(resp.Body)
		werr, _ := decodeError(&response{status: resp.StatusCode, body: b}).(*wire.Error)
		if werr != nil && !retryable(werr) {
			// The whole envelope was rejected deterministically; every
			// pending item settles with it.
			for _, i := range pending {
				out[i] = &wire.BatchItem{V: wire.Version, Error: werr}
			}
			return nil
		}
		return transientAll(werr)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item wire.BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			break // torn line: the stream died mid-write
		}
		if item.Index < 0 || item.Index >= len(pending) {
			continue
		}
		orig := pending[item.Index]
		if out[orig] != nil {
			continue // duplicate line: first settle wins
		}
		if item.Error != nil && retryable(item.Error) {
			lastErr[orig] = item.Error
			continue
		}
		settled := item
		out[orig] = &settled
	}
	var left []int
	for _, i := range pending {
		if out[i] == nil {
			left = append(left, i)
		}
	}
	return left
}
