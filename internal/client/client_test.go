package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	cfg.BackoffBase = 2 * time.Millisecond
	cfg.BackoffMax = 20 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func okResult() *wire.Result { return &wire.Result{II: 2, MinII: 2, Factor: 1} }

func writeErr(w http.ResponseWriter, status int, werr *wire.Error) {
	if werr.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((werr.RetryAfterMS+999)/1000, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wire.ErrorResponse{V: wire.Version, Error: werr})
}

func TestCompileRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			werr := wire.Errorf(wire.CodeOverCapacity, "full")
			werr.RetryAfterMS = 5
			writeErr(w, http.StatusTooManyRequests, werr)
			return
		}
		json.NewEncoder(w).Encode(wire.CompileResponse{V: wire.Version, Result: okResult()})
	}))
	defer srv.Close()

	c := newClient(t, Config{Endpoints: []string{srv.URL}, Attempts: 4})
	res, err := c.Compile(context.Background(), &wire.CompileRequest{LoopRef: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.II != 2 {
		t.Fatalf("result = %+v", res)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3 (two 429s then success)", n)
	}
}

func TestCompileDoesNotRetryDeterministicErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeErr(w, http.StatusNotFound, wire.Errorf(wire.CodeUnknownLoop, "nope"))
	}))
	defer srv.Close()

	c := newClient(t, Config{Endpoints: []string{srv.URL}})
	_, err := c.Compile(context.Background(), &wire.CompileRequest{LoopRef: "x"})
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeUnknownLoop {
		t.Fatalf("err = %v, want unknown_loop", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry on 404)", n)
	}
}

// TestBackoffIsDeadlineAware: a huge Retry-After must not make the
// client sleep through its context deadline; it fails fast instead.
func TestBackoffIsDeadlineAware(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		werr := wire.Errorf(wire.CodeDraining, "draining")
		werr.RetryAfterMS = 60_000
		writeErr(w, http.StatusServiceUnavailable, werr)
	}))
	defer srv.Close()

	c := newClient(t, Config{Endpoints: []string{srv.URL}, Attempts: 5})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Compile(ctx, &wire.CompileRequest{LoopRef: "x"})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a DeadlineExceeded join", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("client slept %v against a 100ms deadline", el)
	}
	// The transient server error still rides along for diagnosis.
	var werr *wire.Error
	if !errors.As(err, &werr) || werr.Code != wire.CodeDraining {
		t.Errorf("err %v does not carry the last server error", err)
	}
}

// TestHedgedRequestWinsOnSecondEndpoint: the primary hangs, the hedge
// fires and the second endpoint answers.
func TestHedgedRequestWinsOnSecondEndpoint(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	defer slow.Close()
	var fastCalls atomic.Int64
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fastCalls.Add(1)
		json.NewEncoder(w).Encode(wire.CompileResponse{V: wire.Version, Result: okResult()})
	}))
	defer fast.Close()

	c := newClient(t, Config{
		Endpoints: []string{slow.URL, fast.URL},
		Hedge:     10 * time.Millisecond,
	})
	start := time.Now()
	res, err := c.Compile(context.Background(), &wire.CompileRequest{LoopRef: "x"})
	if err != nil || res == nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("hedged compile took %v; the hedge never fired", el)
	}
	if fastCalls.Load() == 0 {
		t.Error("second endpoint never saw the hedge")
	}
}

// batchServer answers /v1/batch, injecting one transient error per
// index until that index has been asked `failures` times.
type batchServer struct {
	failures int
	asked    map[string]int
	calls    atomic.Int64
	cut      int // when > 0, cut the stream after this many lines
}

func (b *batchServer) handle(w http.ResponseWriter, r *http.Request) {
	b.calls.Add(1)
	var req wire.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, wire.Errorf(wire.CodeBadRequest, "%v", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	written := 0
	for i, cr := range req.Requests {
		if b.cut > 0 && written >= b.cut {
			panic(http.ErrAbortHandler) // simulate a dropped connection
		}
		item := wire.BatchItem{V: wire.Version, Index: i}
		if b.asked[cr.LoopRef] < b.failures {
			b.asked[cr.LoopRef]++
			item.Error = wire.Errorf(wire.CodeEnginePanic, "injected")
		} else {
			item.Result = okResult()
			item.Result.Graph = cr.LoopRef
		}
		enc.Encode(item)
		written++
	}
}

// TestBatchExactlyOnce: every index settles exactly once with its own
// result even when early rounds fail some items transiently.
func TestBatchExactlyOnce(t *testing.T) {
	bs := &batchServer{failures: 1, asked: map[string]int{}}
	srv := httptest.NewServer(http.HandlerFunc(bs.handle))
	defer srv.Close()

	const n = 64
	reqs := make([]wire.CompileRequest, n)
	for i := range reqs {
		reqs[i] = wire.CompileRequest{V: wire.Version, LoopRef: fmt.Sprintf("loop%d", i)}
	}
	c := newClient(t, Config{Endpoints: []string{srv.URL}, Attempts: 4})
	items, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != n {
		t.Fatalf("got %d items, want %d", len(items), n)
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d carries index %d", i, it.Index)
		}
		if it.Error != nil || it.Result == nil {
			t.Fatalf("item %d not settled with a result: %+v", i, it)
		}
		if want := fmt.Sprintf("loop%d", i); it.Result.Graph != want {
			t.Fatalf("item %d got result for %q (cross-index mixup)", i, it.Result.Graph)
		}
	}
	if got := bs.calls.Load(); got != 2 {
		t.Errorf("server saw %d batch rounds, want 2", got)
	}
}

// TestBatchSurvivesStreamCut: the first round's stream dies after a few
// lines; the unanswered indices are retried and all settle.
func TestBatchSurvivesStreamCut(t *testing.T) {
	bs := &batchServer{asked: map[string]int{}, cut: 5}
	var rounds atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rounds.Add(1) == 2 {
			bs.cut = 0 // second round streams to completion
		}
		bs.handle(w, r)
	}))
	defer srv.Close()

	const n = 16
	reqs := make([]wire.CompileRequest, n)
	for i := range reqs {
		reqs[i] = wire.CompileRequest{V: wire.Version, LoopRef: fmt.Sprintf("loop%d", i)}
	}
	c := newClient(t, Config{Endpoints: []string{srv.URL}, Attempts: 4})
	items, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Result == nil || it.Result.Graph != fmt.Sprintf("loop%d", i) {
			t.Fatalf("item %d not settled correctly after stream cut: %+v", i, it)
		}
	}
}

// TestBatchSettlesDeterministicErrorsInPlace: a permanent per-item
// error settles immediately and is not retried.
func TestBatchSettlesDeterministicErrorsInPlace(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var req wire.BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		enc := json.NewEncoder(w)
		for i := range req.Requests {
			item := wire.BatchItem{V: wire.Version, Index: i}
			if req.Requests[i].LoopRef == "bad" {
				item.Error = wire.Errorf(wire.CodeUnknownLoop, "nope")
			} else {
				item.Result = okResult()
			}
			enc.Encode(item)
		}
	}))
	defer srv.Close()

	reqs := []wire.CompileRequest{
		{V: wire.Version, LoopRef: "good"},
		{V: wire.Version, LoopRef: "bad"},
	}
	c := newClient(t, Config{Endpoints: []string{srv.URL}, Attempts: 4})
	items, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Result == nil {
		t.Errorf("good item unsettled: %+v", items[0])
	}
	if items[1].Error == nil || items[1].Error.Code != wire.CodeUnknownLoop {
		t.Errorf("bad item = %+v, want unknown_loop", items[1])
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d rounds, want 1 (permanent errors must not retry)", calls.Load())
	}
}
