package analysis

import (
	"fmt"
	"go/ast"
	"go/token"

	"repro/internal/analysis/lint"
)

// Undopair enforces the scheduler's undo-log discipline: every
// speculative place/placeAt must be matched by an unplace or resolved
// by a commit on every path out of the enclosing function.  PR 3's
// incremental pressure tables depend on this pairing — a leaked
// placement silently corrupts every later fit test at the same II.
//
// The check is a conservative abstract interpretation over the
// structured statement tree: each call whose terminal name is
// place/placeAt (any case) raises the pending count, unplace lowers
// it, commit resolves it to zero.  Branches must agree on the pending
// count where they merge, loop bodies must be balanced, and exits
// (returns, fall-through, break/continue) must leave zero pending.  A
// defer that unplaces or commits resolves all exits.  Functions whose
// own name is place/unplace/commit-like are exempt (they are the
// primitives), as are functions annotated //vliw:nopair and any
// function using goto or labels (the analysis bails out silently).
var Undopair = &lint.Analyzer{
	Name: "undopair",
	Doc:  "speculative place must be matched by unplace or commit on all paths",
	Run:  runUndopair,
}

var (
	upPlaceNames  = map[string]bool{"place": true, "placeAt": true, "Place": true, "PlaceAt": true}
	upUndoNames   = map[string]bool{"unplace": true, "Unplace": true}
	upCommitNames = map[string]bool{"commit": true, "Commit": true}
)

func runUndopair(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if upPlaceNames[name] || upUndoNames[name] || upCommitNames[name] {
				continue // the primitives themselves
			}
			if hasDirective(fd.Doc, "vliw:nopair") {
				continue
			}
			places, _, _ := countPairCalls(fd.Body)
			if places == 0 {
				continue
			}
			w := &upWalker{pass: pass}
			w.deferResolves = deferResolvesPending(fd.Body)
			end := w.stmtList(fd.Body.List, upState{})
			if !end.dead {
				w.checkExit(fd.Body.Rbrace, end)
			}
			if !w.bailed {
				for _, r := range w.reports {
					pass.Reportf(r.pos, "%s", r.msg)
				}
			}
		}
	}
	return nil
}

type upState struct {
	pending int
	dead    bool // all paths through here terminated
}

type upReport struct {
	pos token.Pos
	msg string
}

type upWalker struct {
	pass          *lint.Pass
	deferResolves bool
	bailed        bool
	loopEntry     []int
	reports       []upReport
}

func (w *upWalker) reportf(pos token.Pos, format string, args ...any) {
	w.reports = append(w.reports, upReport{pos, fmt.Sprintf(format, args...)})
}

func (w *upWalker) checkExit(pos token.Pos, s upState) {
	if w.deferResolves || s.pending == 0 {
		return
	}
	w.reportf(pos, "function exits with %d speculative placement(s) not matched by unplace or commit", s.pending)
}

// apply folds the place/unplace/commit calls syntactically contained
// in n (excluding nested function literals) into the state.
func (w *upWalker) apply(n ast.Node, s upState) upState {
	if n == nil {
		return s
	}
	places, undos, commits := countPairCalls(n)
	if commits {
		s.pending = 0
		// Calls after the commit in the same statement are rare
		// enough to ignore; place+commit in one statement resolves.
		places, undos = 0, 0
	}
	s.pending += places - undos
	if s.pending < 0 {
		s.pending = 0 // extra unplaces are the primitives' problem
	}
	return s
}

func (w *upWalker) stmtList(list []ast.Stmt, s upState) upState {
	for _, st := range list {
		if s.dead {
			// Unreachable code: analyze for its own reports but keep
			// the dead marker.
			w.stmt(st, upState{})
			continue
		}
		s = w.stmt(st, s)
	}
	return s
}

func (w *upWalker) stmt(stmt ast.Stmt, s upState) upState {
	switch stmt := stmt.(type) {
	case *ast.ExprStmt:
		s = w.apply(stmt.X, s)
		if isPanicCall(stmt.X) {
			s.dead = true
		}
		return s
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		return w.apply(stmt, s)
	case *ast.ReturnStmt:
		s = w.apply(stmt, s)
		w.checkExit(stmt.Pos(), s)
		s.dead = true
		return s
	case *ast.DeferStmt:
		return s // resolution handled by deferResolvesPending
	case *ast.GoStmt:
		return s
	case *ast.BlockStmt:
		return w.stmtList(stmt.List, s)
	case *ast.IfStmt:
		if stmt.Init != nil {
			s = w.apply(stmt.Init, s)
		}
		s = w.apply(stmt.Cond, s)
		thenOut := w.stmtList(stmt.Body.List, s)
		elseOut := s
		if stmt.Else != nil {
			elseOut = w.stmt(stmt.Else, s)
		}
		switch {
		case thenOut.dead && elseOut.dead:
			return upState{pending: s.pending, dead: true}
		case thenOut.dead:
			return elseOut
		case elseOut.dead:
			return thenOut
		case thenOut.pending != elseOut.pending:
			w.reportf(stmt.Pos(), "speculative placements diverge across branches (%d vs %d); every path must unplace or commit", thenOut.pending, elseOut.pending)
			return thenOut
		default:
			return thenOut
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			s = w.apply(stmt.Init, s)
		}
		s = w.apply(stmt.Cond, s)
		w.loopEntry = append(w.loopEntry, s.pending)
		body := w.stmtList(stmt.Body.List, s)
		if stmt.Post != nil {
			body = w.apply(stmt.Post, body)
		}
		w.loopEntry = w.loopEntry[:len(w.loopEntry)-1]
		if !body.dead && body.pending != s.pending {
			w.reportf(stmt.Pos(), "loop body accumulates %d speculative placement(s) per iteration", body.pending-s.pending)
		}
		return s
	case *ast.RangeStmt:
		s = w.apply(stmt.X, s)
		w.loopEntry = append(w.loopEntry, s.pending)
		body := w.stmtList(stmt.Body.List, s)
		w.loopEntry = w.loopEntry[:len(w.loopEntry)-1]
		if !body.dead && body.pending != s.pending {
			w.reportf(stmt.Pos(), "loop body accumulates %d speculative placement(s) per iteration", body.pending-s.pending)
		}
		return s
	case *ast.BranchStmt:
		switch stmt.Tok {
		case token.BREAK, token.CONTINUE:
			if n := len(w.loopEntry); n > 0 && s.pending != w.loopEntry[n-1] {
				w.reportf(stmt.Pos(), "%s exits the loop iteration with %d unmatched speculative placement(s)", stmt.Tok, s.pending-w.loopEntry[n-1])
			}
			s.dead = true
			return s
		case token.GOTO:
			w.bailed = true
			s.dead = true
			return s
		default: // fallthrough
			return s
		}
	case *ast.LabeledStmt:
		w.bailed = true
		return w.stmt(stmt.Stmt, s)
	case *ast.SwitchStmt:
		if stmt.Init != nil {
			s = w.apply(stmt.Init, s)
		}
		s = w.apply(stmt.Tag, s)
		return w.clauses(stmt.Pos(), stmt.Body.List, s, hasDefaultClause(stmt.Body.List))
	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			s = w.apply(stmt.Init, s)
		}
		s = w.apply(stmt.Assign, s)
		return w.clauses(stmt.Pos(), stmt.Body.List, s, hasDefaultClause(stmt.Body.List))
	case *ast.SelectStmt:
		return w.clauses(stmt.Pos(), stmt.Body.List, s, true)
	case *ast.EmptyStmt:
		return s
	default:
		return s
	}
}

// clauses merges the outgoing states of switch/select case bodies.
func (w *upWalker) clauses(pos token.Pos, list []ast.Stmt, s upState, exhaustive bool) upState {
	outs := []upState{}
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			s2 := s
			for _, e := range cl.List {
				s2 = w.apply(e, s2)
			}
			body = cl.Body
			outs = append(outs, w.stmtList(body, s2))
			continue
		case *ast.CommClause:
			s2 := s
			if cl.Comm != nil {
				s2 = w.apply(cl.Comm, s2)
			}
			outs = append(outs, w.stmtList(cl.Body, s2))
			continue
		}
	}
	if !exhaustive {
		outs = append(outs, s) // no default: the switch may fall through
	}
	var live []upState
	for _, o := range outs {
		if !o.dead {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return upState{pending: s.pending, dead: true}
	}
	for _, o := range live[1:] {
		if o.pending != live[0].pending {
			w.reportf(pos, "speculative placements diverge across branches (%d vs %d); every path must unplace or commit", live[0].pending, o.pending)
			break
		}
	}
	return live[0]
}

// countPairCalls counts place-like and unplace-like calls and reports
// whether a commit-like call appears, skipping nested function
// literals.
func countPairCalls(n ast.Node) (places, undos int, commits bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case upPlaceNames[name]:
			places++
		case upUndoNames[name]:
			undos++
		case upCommitNames[name]:
			commits = true
		}
		return true
	})
	return places, undos, commits
}

// deferResolvesPending reports whether any defer in the body contains
// an unplace- or commit-like call (directly or in a deferred closure).
func deferResolvesPending(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				name := calleeName(call)
				if upUndoNames[name] || upCommitNames[name] {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func hasDefaultClause(list []ast.Stmt) bool {
	for _, cl := range list {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
