package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Mapdeterminism flags `range` over a map whose iteration order can
// leak into ordered output.  Schedules are cached by content
// fingerprint and diffed across runs, so anything order-dependent —
// wire/JSON payloads, Result/Stages fields, report tables — must not
// be built in map order.  A range over a map is reported when its body
//
//   - appends to a slice declared outside the loop and no later
//     statement in the same function sorts that slice
//     (sort.* / slices.Sort*), or
//   - writes directly to an encoder, writer, or printer.
//
// Map-to-map copies and counter merges are order-independent and never
// flagged.  A genuinely order-free loop can be waived with a trailing
// "//vliw:unordered <reason>" comment.
var Mapdeterminism = &lint.Analyzer{
	Name: "mapdeterminism",
	Doc:  "flag map iteration feeding ordered output without a sort",
	Run:  runMapdeterminism,
}

// emitNames are method names that emit bytes in call order.
var emitNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

func runMapdeterminism(pass *lint.Pass) error {
	waived := waivedLines(pass, "vliw:unordered")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body, waived)
		}
	}
	return nil
}

func checkMapRanges(pass *lint.Pass, body *ast.BlockStmt, waived map[string]map[int]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if lineWaived(waived, pass.Fset.Position(rng.Pos())) {
			return true
		}

		// Ordered sinks inside the loop body.
		var appendTargets []types.Object
		emitted := false
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(m.Lhs) {
						continue
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok {
						continue
					}
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
						continue
					}
					if obj := rootObject(pass, m.Lhs[i]); obj != nil && obj.Pos() < rng.Pos() {
						appendTargets = append(appendTargets, obj)
					}
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && emitNames[sel.Sel.Name] {
					emitted = true
				}
			}
			return true
		})

		if emitted {
			pass.Reportf(rng.Pos(), "range over map emits output in iteration order; collect and sort keys first")
			return true
		}
		for _, obj := range appendTargets {
			if !sortedAfter(pass, body, obj, rng.End()) {
				pass.Reportf(rng.Pos(),
					"range over map appends to %s in nondeterministic order; sort it before use or waive with //vliw:unordered", obj.Name())
			}
		}
		return true
	})
}

// rootObject resolves the base identifier of an lvalue expression
// (x, x.f, x[i]) to its object.
func rootObject(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[v]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call positioned after pos within body.
func sortedAfter(pass *lint.Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func usesObject(pass *lint.Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
