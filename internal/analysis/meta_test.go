package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotPathAnnotated pins the annotation set to the benchmark suite:
// every function the 0 allocs/op benchmarks exercise
// (BenchmarkTryCommitAttempt, BenchmarkPlaceUnplace, the regpress
// table benchmarks) must carry //vliw:allocfree, so the noalloc
// analyzer — not just the empirical ReportAllocs run — guards the
// property.  If a hot-path function is renamed, this test names the
// annotation that must move with it.
func TestHotPathAnnotated(t *testing.T) {
	required := map[string][]string{
		"../../internal/sched": {
			"try", "tryCycles", "commit", "place", "placeAt", "unplace",
			"fits", "speculate", "busScan", "reserveBus", "releaseBus",
			"reserveFU", "releaseFU",
		},
		"../../internal/regpress": {
			"Add", "Sub", "Fits", "Max", "Snapshot", "Init", "Reset",
		},
	}
	for dir, names := range required {
		annotated := annotatedFuncs(t, dir)
		for _, name := range names {
			if !annotated[name] {
				t.Errorf("%s: %s is exercised by the 0 allocs/op benchmarks but does not carry //vliw:allocfree", dir, name)
			}
		}
	}
}

// annotatedFuncs parses every non-test file in dir and returns the set
// of function names whose doc comment carries //vliw:allocfree.
func annotatedFuncs(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && hasDirective(fd.Doc, "vliw:allocfree") {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}
