package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// Noalloc checks that functions annotated //vliw:allocfree cannot heap
// allocate.  The scheduler's try/commit/place/unplace inner loop and
// the register-pressure undo log earn their 0 allocs/op benchmarks by
// construction; this analyzer keeps that property under refactoring by
// rejecting, inside any annotated function:
//
//   - make, new, and slice/map composite literals (and &T{} literals)
//   - append that is not reassigned to its own first operand
//     (self-append reuses capacity; anything else may grow)
//   - function literals (closure allocation)
//   - non-constant string concatenation and allocating string
//     conversions (string<->[]byte/[]rune, string(rune))
//   - boxing a non-pointer value into an interface
//   - go statements and map writes
//   - calls to anything that is not itself //vliw:allocfree, a
//     non-allocating builtin, or math/bits (dynamic calls and
//     interface dispatch are always rejected)
//
// panic(...) arguments are exempt: they only run on the cold path.
// A line can be waived with a trailing "//vliw:alloc-ok <reason>"
// comment — used for cap-checked amortized growth (grow on first use,
// reuse forever after) and debug-gated oracles.  Annotations propagate
// across packages as facts, so sched's hot path may call into
// regpress's annotated methods.
var Noalloc = &lint.Analyzer{
	Name: "noalloc",
	Doc:  "reject heap allocations in //vliw:allocfree functions",
	Run:  runNoalloc,
}

func runNoalloc(pass *lint.Pass) error {
	annotated := map[*types.Func]bool{}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "vliw:allocfree") {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			annotated[fn] = true
			pass.ExportFact(funcKey(fn))
			decls = append(decls, fd)
		}
	}
	if len(decls) == 0 {
		return nil
	}
	waived := waivedLines(pass, "vliw:alloc-ok")
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		c := &naChecker{pass: pass, annotated: annotated, waived: waived}
		c.checkFunc(fd)
	}
	return nil
}

type naChecker struct {
	pass      *lint.Pass
	annotated map[*types.Func]bool
	waived    map[string]map[int]bool
	// approved holds append calls of the self-append form
	// `x = append(x, ...)` (or `x = append(buf[:0], ...)`), which
	// reuse the destination's capacity in steady state.
	approved map[*ast.CallExpr]bool
	results  *types.Tuple
}

func (c *naChecker) report(pos token.Pos, format string, args ...any) {
	if lineWaived(c.waived, c.pass.Fset.Position(pos)) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *naChecker) checkFunc(fd *ast.FuncDecl) {
	fn := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	c.results = fn.Type().(*types.Signature).Results()
	c.approved = map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !c.isBuiltin(call, "append") || len(call.Args) == 0 {
				continue
			}
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok {
				base = ast.Unparen(sl.X)
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(base) {
				c.approved[call] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, c.visit)
}

func (c *naChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		return c.call(n)
	case *ast.CompositeLit:
		switch c.typeOf(n).Underlying().(type) {
		case *types.Slice:
			c.report(n.Pos(), "slice composite literal allocates")
		case *types.Map:
			c.report(n.Pos(), "map composite literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.report(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.FuncLit:
		c.report(n.Pos(), "function literal allocates a closure")
		return false
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := c.pass.TypesInfo.Types[n]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(n.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.GoStmt:
		c.report(n.Pos(), "go statement allocates a goroutine")
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, rhs := range n.Rhs {
				lhs := n.Lhs[i]
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, ok := c.typeOf(idx.X).Underlying().(*types.Map); ok {
						c.report(lhs.Pos(), "map assignment may grow the map")
					}
				}
				c.checkConvert(rhs, c.typeOf(lhs))
			}
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			dst := c.typeOf(n.Type)
			for _, v := range n.Values {
				c.checkConvert(v, dst)
			}
		}
	case *ast.ReturnStmt:
		if c.results != nil && len(n.Results) == c.results.Len() {
			for i, r := range n.Results {
				c.checkConvert(r, c.results.At(i).Type())
			}
		}
	case *ast.SendStmt:
		if ch, ok := c.typeOf(n.Chan).Underlying().(*types.Chan); ok {
			c.checkConvert(n.Value, ch.Elem())
		}
	}
	return true
}

// call checks one call expression and reports whether the walk should
// descend into its children.
func (c *naChecker) call(n *ast.CallExpr) bool {
	fun := ast.Unparen(n.Fun)

	// Conversion T(x).
	if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		c.conversion(n, tv.Type)
		return true
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if !c.approved[n] {
					c.report(n.Pos(), "append result is not reassigned to its first operand; growth allocates")
				}
			case "make":
				c.report(n.Pos(), "make allocates")
			case "new":
				c.report(n.Pos(), "new allocates")
			case "panic":
				// Cold path: a panicking hot loop has bigger problems
				// than one allocation, and exempting the argument lets
				// invariant checks build useful messages.
				return false
			case "print", "println":
				c.report(n.Pos(), "%s may allocate; use a debug-gated helper", b.Name())
			}
			return true
		}
	}

	// Resolve a static callee if there is one.
	var callee *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[fun]
		switch obj := obj.(type) {
		case *types.Func:
			callee = obj
		case *types.Var:
			c.report(n.Pos(), "dynamic call through %s may allocate", fun.Name)
			return true
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				callee = sel.Obj().(*types.Func)
			case types.FieldVal:
				c.report(n.Pos(), "dynamic call through field %s may allocate", fun.Sel.Name)
				return true
			}
		} else if f, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			callee = f // package-qualified function
		}
	case *ast.FuncLit:
		// The FuncLit case reports the closure itself.
		return true
	}
	if callee == nil {
		c.report(n.Pos(), "dynamic call may allocate")
		return true
	}

	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		c.report(n.Pos(), "interface method call %s dispatches dynamically and may allocate", callee.Name())
		return true
	}
	if !c.calleeAllowed(callee) {
		c.report(n.Pos(), "call to %s, which is not //vliw:allocfree", funcKey(callee))
	}
	// Interface parameters box their arguments.
	if sig != nil && !n.Ellipsis.IsValid() {
		params := sig.Params()
		for i, arg := range n.Args {
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			} else if i < params.Len() {
				pt = params.At(i).Type()
			}
			if pt != nil {
				c.checkConvert(arg, pt)
			}
		}
		if sig.Variadic() && len(n.Args) > params.Len()-1 {
			// Passing anything to a variadic parameter builds the
			// backing slice.
			c.report(n.Pos(), "variadic call to %s allocates the argument slice", callee.Name())
		}
	}
	return true
}

func (c *naChecker) calleeAllowed(f *types.Func) bool {
	if c.annotated[f] || c.pass.HasFact(funcKey(f)) {
		return true
	}
	if pkg := f.Pkg(); pkg != nil && pkg.Path() == "math/bits" {
		return true
	}
	return false
}

func (c *naChecker) conversion(n *ast.CallExpr, dst types.Type) {
	src := c.typeOf(n.Args[0])
	if src == nil {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[n.Args[0]]; ok && tv.Value != nil {
		return // constant conversions fold at compile time
	}
	under := dst.Underlying()
	if types.IsInterface(under) {
		c.checkConvert(n.Args[0], dst)
		return
	}
	if b, ok := under.(*types.Basic); ok && b.Info()&types.IsString != 0 {
		switch src.Underlying().(type) {
		case *types.Slice:
			c.report(n.Pos(), "string conversion from slice allocates")
		case *types.Basic:
			if sb := src.Underlying().(*types.Basic); sb.Info()&types.IsInteger != 0 {
				c.report(n.Pos(), "string(rune) conversion allocates")
			}
		}
		return
	}
	if sl, ok := under.(*types.Slice); ok {
		_ = sl
		if sb, ok := src.Underlying().(*types.Basic); ok && sb.Info()&types.IsString != 0 {
			c.report(n.Pos(), "byte/rune slice conversion from string allocates")
		}
	}
}

// checkConvert flags the implicit boxing of a non-pointer concrete
// value into an interface-typed destination.
func (c *naChecker) checkConvert(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return // constants and nil are boxed statically
	}
	src := tv.Type
	if types.IsInterface(src.Underlying()) {
		return // interface-to-interface carries the existing box
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	c.report(expr.Pos(), "boxing %s into interface allocates", types.TypeString(src, types.RelativeTo(c.pass.Pkg)))
}

func (c *naChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return types.Typ[types.Invalid]
}

// isBuiltin reports whether call invokes the named builtin.
func (c *naChecker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
