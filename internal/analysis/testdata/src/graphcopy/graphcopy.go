// Package graphcopy exercises the graphcopy analyzer: every position
// that moves a Graph by value, plus the construction and
// identity-replacement shapes that stay legal.
package graphcopy

import (
	"repro/vliwlintfixtures/graphcopy/internal/ddg"
)

func byValueParam(g ddg.Graph) {} // want `parameter passes ddg\.Graph by value`

func byValueReturn() ddg.Graph { // want `result passes ddg\.Graph by value`
	return ddg.Graph{}
}

type holder struct {
	G ddg.Graph // want `struct field holds ddg\.Graph by value`
}

type wrapped struct {
	inner [2]ddg.Graph // want `struct field holds ddg\.Graph by value`
}

func localCopy(p *ddg.Graph) *ddg.Graph {
	g := *p // want `copies ddg\.Graph by value`
	return &g
}

func rangeCopy(list []ddg.Graph) int {
	n := 0
	for _, g := range list { // want `range copies ddg\.Graph values`
		n += len(g.Nodes)
	}
	return n
}

func callArg(p *ddg.Graph) {
	use(*p) // want `passes ddg\.Graph by value`
}

func use(g ddg.Graph) {} // want `parameter passes ddg\.Graph by value`

func send(ch chan ddg.Graph, p *ddg.Graph) {
	ch <- *p // want `sends ddg\.Graph by value over a channel`
}

func intoLiteral(p *ddg.Graph) []ddg.Graph {
	return []ddg.Graph{*p} // want `copies ddg\.Graph by value into a composite literal`
}

// --- allowed forms: no diagnostics below this line ---

// replaceIdentity is the Clone/UnmarshalJSON pattern: a fresh literal
// written through the pointer replaces identity without aliasing.
func replaceIdentity(dst *ddg.Graph, nodes []int) {
	*dst = ddg.Graph{Nodes: nodes}
}

func pointers(list []*ddg.Graph) int {
	n := 0
	for _, g := range list {
		n += len(g.Nodes)
	}
	return n
}

func usePtr(g *ddg.Graph) *ddg.Graph { return g }
