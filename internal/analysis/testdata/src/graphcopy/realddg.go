package graphcopy

import realddg "repro/internal/ddg"

// The analyzer must fire on the real repro/internal/ddg type too, not
// just the fixture mimic, and must keep allowing the identity
// replacement its Clone/UnmarshalJSON rely on.

func copyReal(p *realddg.Graph) { // replaces the old copylock vet-probe module
	g := *p // want `copies ddg\.Graph by value`
	g.Fingerprint()
}

func resetReal(dst *realddg.Graph) {
	*dst = realddg.Graph{} // identity replacement: allowed
}
