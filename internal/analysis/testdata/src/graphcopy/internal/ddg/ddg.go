// Package ddg mimics the real dependence-graph package.  The
// graphcopy analyzer keys on the import-path suffix internal/ddg, so
// this fixture copy exercises it without coupling the tests to the
// real type's full shape.
package ddg

import "sync"

// Graph mirrors the real Graph: value state plus an embedded cache
// guard, so a by-value copy aliases the cached identity.
type Graph struct {
	mu    sync.Mutex
	Nodes []int
	fp    uint64
}

// Reset shows the allowed identity-replacement pattern: writing a
// fresh composite literal through the pointer replaces the graph's
// identity instead of aliasing another one.
func (g *Graph) Reset() {
	g.mu.Lock()
	g.fp = 0
	g.mu.Unlock()
	*g = Graph{}
}
