// Package wire exercises the wiretags analyzer: its package name (and
// path suffix) puts every exported struct here under DTO rules.
package wire

// Good carries a compliant tag set: explicit snake_case names, an
// option suffix, an explicit exclusion, and an untagged unexported
// field the analyzer must ignore.
type Good struct {
	ID     int    `json:"id"`
	Name   string `json:"name,omitempty"`
	Skip   string `json:"-"`
	hidden int
}

type Bad struct {
	Missing int // want `Bad\.Missing has no json tag`
	Shout   int `json:"Shout"` // want `json tag "Shout" is not lowercase snake_case`
	A       int `json:"dup"`
	B       int `json:"dup"` // want `Bad\.B reuses json tag "dup"`
}

type Embedded struct {
	Good // want `Embedded embeds a field; wire DTOs must declare every field explicitly`
}

// unexported structs are not part of the wire surface.
type scratch struct {
	Untagged int
}
