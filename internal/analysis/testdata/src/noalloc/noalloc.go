// Package noalloc exercises the noalloc analyzer: every construct the
// //vliw:allocfree contract forbids, every form it allows, and the two
// waiver spellings.
package noalloc

import (
	"math/bits"

	"repro/internal/regpress"
)

//vliw:allocfree
func makeSlice(n int) []int {
	s := make([]int, n) // want `make allocates`
	return s
}

//vliw:allocfree
func newInt() *int {
	return new(int) // want `new allocates`
}

//vliw:allocfree
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice composite literal allocates`
}

//vliw:allocfree
func mapLit() map[int]int {
	return map[int]int{} // want `map composite literal allocates`
}

type pair struct{ a, b int }

//vliw:allocfree
func escape() *pair {
	return &pair{1, 2} // want `&composite literal escapes to the heap`
}

//vliw:allocfree
func closure(n int) func() int {
	f := func() int { return n } // want `function literal allocates a closure`
	return f
}

//vliw:allocfree
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//vliw:allocfree
func box(v int) any {
	return v // want `boxing int into interface allocates`
}

//vliw:allocfree
func mapWrite(m map[int]int, k int) {
	m[k] = 1 // want `map assignment may grow the map`
}

//vliw:allocfree
func goStmt() {
	go concat("a", "b") // want `go statement allocates a goroutine`
}

//vliw:allocfree
func sliceToString(b []byte) string {
	return string(b) // want `string conversion from slice allocates`
}

func helper() int { return 0 }

//vliw:allocfree
func callsUnannotated() int {
	return helper() // want `call to repro/vliwlintfixtures/noalloc\.helper, which is not //vliw:allocfree`
}

//vliw:allocfree
func dynamic(f func() int) int {
	return f() // want `dynamic call through f may allocate`
}

type adder interface{ add(int) int }

//vliw:allocfree
func dispatch(a adder, v int) int {
	return a.add(v) // want `interface method call add dispatches dynamically and may allocate`
}

//vliw:allocfree
func badAppend(dst, src []int) []int {
	dst = append(src, 1) // want `append result is not reassigned to its first operand`
	return dst
}

//vliw:allocfree
func variadic(xs []int) int {
	return sum(xs[0], xs[1]) // want `variadic call to sum allocates the argument slice`
}

// --- allowed forms: no diagnostics below this line ---

//vliw:allocfree
func sum(vs ...int) int {
	total := 0
	for _, v := range vs {
		total += v
	}
	return total
}

//vliw:allocfree
func spread(xs []int) int {
	return sum(xs...) // spreading reuses the existing backing slice
}

//vliw:allocfree
func selfAppend(buf []int, v int) []int {
	buf = append(buf, v)
	buf = append(buf[:0], v)
	return buf
}

//vliw:allocfree
func onesWrap(x uint64) int {
	return bits.OnesCount64(x) // math/bits is allocation-free by charter
}

//vliw:allocfree
func callsAnnotated(x uint64) int {
	return onesWrap(x)
}

//vliw:allocfree
func guard(ok bool, name string) {
	if !ok {
		panic("invariant broken: " + name) // cold path: panic args are exempt
	}
}

//vliw:allocfree
func trailingWaiver(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n) //vliw:alloc-ok amortized: grows once per size class, reused after
	}
	return buf[:n]
}

//vliw:allocfree
func standaloneWaiver(n int) []int {
	//vliw:alloc-ok amortized scratch buffer, reused across calls
	scratch := make([]int, n)
	return scratch
}

// usesPressureTable calls into the real repro/internal/regpress, whose
// Add/Fits/Sub carry //vliw:allocfree in their own package.  The facts
// must flow across the module boundary even when the dependency is
// loaded facts-only, or this reports false positives.
//
//vliw:allocfree
func usesPressureTable(t *regpress.Table, lo, hi int) bool {
	t.Add(lo, hi)
	ok := t.Fits()
	t.Sub(lo, hi)
	return ok
}

// wrapScan mirrors mrt.busScan's wrap-around window: when BusLatency
// equals II the reservation window covers the whole table, so the scan
// wraps every slot back to the table head — all index arithmetic over
// a caller-owned bitset, nothing may allocate.
//
//vliw:allocfree
func wrapScan(words []uint64, start, ii, lat int) int {
	for off := 0; off < lat; off++ {
		slot := start + off
		if slot >= ii {
			slot -= ii // BusLatency == II wraps to the table head
		}
		if words[slot>>6]&(1<<uint(slot&63)) != 0 {
			return -1
		}
	}
	return start
}
