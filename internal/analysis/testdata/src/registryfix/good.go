// Package registryfix exercises the registry analyzer against the
// real engine interfaces: registered and orphaned implementations,
// name canonicality, duplicates, and family helper indirection.
package registryfix

import (
	"repro/internal/engine"
	"repro/internal/machine"
)

// goodPolicy self-registers with an alias; both names are canonical
// and attributed to the same type, so nothing is reported.
type goodPolicy struct{}

func (goodPolicy) Name() string { return "goodfix" }

func (goodPolicy) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (goodPolicy) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }

func init() {
	engine.RegisterStrategy(goodPolicy{}, "goodfix_alias")
}
