package registryfix

import (
	"repro/internal/engine"
	"repro/internal/machine"
)

type orphanPolicy struct{} // want `orphanPolicy implements UnrollPolicy but no init in this file registers it`

func (orphanPolicy) Name() string { return "orphanfix" }

func (orphanPolicy) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (orphanPolicy) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }
