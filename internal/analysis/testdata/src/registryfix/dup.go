package registryfix

import (
	"repro/internal/engine"
	"repro/internal/machine"
)

type firstDup struct{}

func (firstDup) Name() string { return "dupfix" }

func (firstDup) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (firstDup) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }

type secondDup struct{}

func (secondDup) Name() string { return "dupfix" } // want `registry name "dupfix" is already taken`

func (secondDup) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (secondDup) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }

func init() {
	engine.RegisterStrategy(firstDup{})
	engine.RegisterStrategy(secondDup{})
}
