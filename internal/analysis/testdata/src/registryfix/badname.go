package registryfix

import (
	"repro/internal/engine"
	"repro/internal/machine"
)

type loudPolicy struct{}

func (loudPolicy) Name() string { return "loudfix" }

func (loudPolicy) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (loudPolicy) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }

func init() {
	engine.RegisterStrategy(loudPolicy{}, "LOUD") // want `registry name "LOUD" is not canonical`
}
