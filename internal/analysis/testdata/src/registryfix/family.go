package registryfix

import (
	"repro/internal/engine"
	"repro/internal/machine"
)

// famPolicy is only ever built by newFam, the family's New hook: the
// analyzer must follow that one level of helper indirection and treat
// the type as registered.  Its Name is computed, so the canonical-name
// check leaves it to the runtime registry.
type famPolicy struct{ name string }

func (f famPolicy) Name() string { return f.name }

func (famPolicy) MaxFactor(opts *engine.Options, cfg *machine.Config) int { return 1 }

func (famPolicy) Compile(cc *engine.Context) (*engine.Result, error) { return nil, nil }

func newFam(arg string) (engine.UnrollPolicy, error) {
	return famPolicy{name: "famfix:" + arg}, nil
}

func init() {
	engine.RegisterStrategyFamily(engine.StrategyFamily{
		Prefix:      "famfix",
		Placeholder: "famfix:<k>",
		Doc:         "Doc strings are prose, NOT registry names — must not be flagged",
		New:         newFam,
	})
}
