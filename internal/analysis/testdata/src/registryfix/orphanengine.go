package registryfix

import (
	"repro/internal/ddg"
	"repro/internal/engine"
)

type orphanEngine struct{} // want `orphanEngine implements SchedulerEngine but no init in this file registers it`

func (orphanEngine) Name() string { return "orphanenginefix" }

func (orphanEngine) Heuristic() bool { return false }

func (orphanEngine) Schedule(cc *engine.Context, g *ddg.Graph) (*engine.Run, error) {
	return nil, nil
}
