// Package undopair exercises the undopair analyzer: leaked
// placements, branch divergence, loop imbalance, and the matched,
// committed, deferred, and exempted shapes that must stay silent.
package undopair

type sched struct{ n int }

// The primitives themselves are exempt by name.
func (s *sched) place(i int) { s.n++ }

func (s *sched) placeAt(i, c int) { s.n++ }

func (s *sched) unplace(i int) { s.n-- }

func (s *sched) commit() { s.n = 0 }

func leak(s *sched) {
	s.place(1)
} // want `function exits with 1 speculative placement`

func earlyReturnLeak(s *sched, ok bool) {
	s.place(1)
	if ok {
		return // want `exits with 1 speculative placement`
	}
	s.unplace(1)
}

func diverge(s *sched, ok bool) {
	s.place(1)
	if ok { // want `speculative placements diverge across branches`
		s.unplace(1)
	}
	s.commit()
}

func loopLeak(s *sched, n int) {
	for i := 0; i < n; i++ { // want `loop body accumulates 1 speculative placement`
		s.place(i)
	}
	s.commit()
}

func breakLeak(s *sched, xs []int) {
	for _, x := range xs {
		s.place(x)
		if x > 0 {
			break // want `break exits the loop iteration with 1 unmatched speculative placement`
		}
		s.unplace(x)
	}
}

// --- allowed forms: no diagnostics below this line ---

func balanced(s *sched, ok bool) {
	s.place(1)
	if ok {
		s.unplace(1)
		return
	}
	s.unplace(1)
}

func committed(s *sched) {
	s.placeAt(1, 0)
	s.place(2)
	s.commit()
}

func loopBalanced(s *sched, xs []int) {
	for _, x := range xs {
		s.place(x)
		s.unplace(x)
	}
}

func deferred(s *sched) {
	s.place(1)
	defer s.unplace(1)
}

// transfer moves a placement across helpers; pairing is enforced by
// the callee's own discipline, not visible to the per-function check.
//
//vliw:nopair
func transfer(s *sched) {
	s.place(1)
}

func panicPath(s *sched, ok bool) {
	s.place(1)
	if !ok {
		panic("unplaceable") // dead path: no exit check
	}
	s.unplace(1)
}
