// Package mapdet exercises the mapdeterminism analyzer: map ranges
// feeding ordered output, the sorted and waived escapes, and the
// order-independent shapes that must stay silent.
package mapdet

import (
	"fmt"
	"io"
	"slices"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	out := []string{}
	for k := range m { // want `appends to out in nondeterministic order`
		out = append(out, k)
	}
	return out
}

func emits(w io.Writer, m map[string]int) {
	for k, v := range m { // want `emits output in iteration order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// --- allowed forms: no diagnostics below this line ---

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func keysSlicesSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// mapCopy is order-independent: map writes commute.
func mapCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// localAccum appends to a slice born inside the loop body, so no
// cross-iteration order can leak out.
func localAccum(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		tmp := []int{}
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

func waived(m map[string]int) []string {
	var out []string
	for k := range m { //vliw:unordered feeds a counter merge, order-free
		out = append(out, k)
	}
	return out
}
