module repro/vliwlintfixtures

go 1.24

require repro v0.0.0

replace repro => ../../../..
