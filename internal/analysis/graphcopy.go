package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// Graphcopy forbids moving a ddg.Graph by value.  Graph embeds the
// mutex guarding its lazily cached fingerprint and memo table, so a
// wholesale copy aliases cache state: the copy keeps serving the
// original's fingerprint — and with it another graph's cached schedule
// — even after it diverges.  `go vet`'s copylocks already rejects most
// copies; this analyzer generalizes the ad-hoc vet-probe module the
// repo used to carry, covers positions vet does not (struct fields,
// composite-literal elements, channel sends), and keeps the rule
// self-contained in vliwlint.
//
// Flagged: parameters, results, and receivers of type Graph (or any
// struct/array embedding one by value); assignments and declarations
// whose right-hand side copies an existing Graph (`h := *g`); range
// copies; passing `*g` as a call argument; Graph-valued struct fields;
// and channel sends.  Allowed: composite-literal construction,
// including the Clone/UnmarshalJSON identity-replacement pattern
// `*g = Graph{...}` — writing a fresh literal through a pointer
// replaces the graph's identity rather than aliasing another one.
var Graphcopy = &lint.Analyzer{
	Name: "graphcopy",
	Doc:  "forbid passing or copying ddg.Graph by value",
	Run:  runGraphcopy,
}

func runGraphcopy(pass *lint.Pass) error {
	g := &gcChecker{pass: pass, memo: map[types.Type]bool{}}
	for _, file := range pass.Files {
		ast.Inspect(file, g.visit)
	}
	return nil
}

type gcChecker struct {
	pass *lint.Pass
	memo map[types.Type]bool
}

// isGraph reports whether t is the ddg.Graph named type (from the real
// internal/ddg or any package whose import path ends with it, which
// lets fixtures carry a mimic).
func (g *gcChecker) isGraph(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Graph" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/ddg")
}

// containsGraph reports whether a value of type t holds a Graph by
// value (directly, or inside a struct field or array element).
func (g *gcChecker) containsGraph(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := g.memo[t]; ok {
		return v
	}
	g.memo[t] = false // cut recursion
	v := false
	if g.isGraph(t) {
		v = true
	} else {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if g.containsGraph(u.Field(i).Type()) {
					v = true
					break
				}
			}
		case *types.Array:
			v = g.containsGraph(u.Elem())
		}
	}
	g.memo[t] = v
	return v
}

func (g *gcChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := g.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	// Range-statement value variables are definitions, not uses, and
	// appear only in Defs.
	if id, ok := e.(*ast.Ident); ok {
		if obj := g.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := g.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiesGraph reports whether evaluating e into a new location copies
// an existing Graph: its type contains a Graph and it is not a fresh
// composite literal (construction is how graphs are born).
func (g *gcChecker) copiesGraph(e ast.Expr) bool {
	if e == nil || !g.containsGraph(g.typeOf(e)) {
		return false
	}
	if _, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		return false
	}
	return true
}

func (g *gcChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		g.checkFieldList(n.Recv, "receiver")
		g.checkSignature(n.Type)
	case *ast.FuncLit:
		g.checkSignature(n.Type)
	case *ast.StructType:
		if n.Fields != nil {
			for _, f := range n.Fields.List {
				if g.containsGraph(g.typeOf(f.Type)) {
					g.pass.Reportf(f.Pos(), "struct field holds ddg.Graph by value; use *ddg.Graph")
				}
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return true
		}
		for _, rhs := range n.Rhs {
			if g.copiesGraph(rhs) {
				g.pass.Reportf(rhs.Pos(), "copies ddg.Graph by value; use Clone or keep a *ddg.Graph")
			}
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			if g.copiesGraph(v) {
				g.pass.Reportf(v.Pos(), "copies ddg.Graph by value; use Clone or keep a *ddg.Graph")
			}
		}
	case *ast.RangeStmt:
		if g.copiesGraph(n.Value) {
			g.pass.Reportf(n.Value.Pos(), "range copies ddg.Graph values; range over pointers instead")
		}
	case *ast.CallExpr:
		if tv, ok := g.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
			return true // conversions are not calls
		}
		for _, arg := range n.Args {
			if g.copiesGraph(arg) {
				g.pass.Reportf(arg.Pos(), "passes ddg.Graph by value; pass *ddg.Graph")
			}
		}
	case *ast.SendStmt:
		if g.copiesGraph(n.Value) {
			g.pass.Reportf(n.Value.Pos(), "sends ddg.Graph by value over a channel; send *ddg.Graph")
		}
	case *ast.CompositeLit:
		for _, elt := range n.Elts {
			e := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				e = kv.Value
			}
			if g.copiesGraph(e) {
				g.pass.Reportf(e.Pos(), "copies ddg.Graph by value into a composite literal")
			}
		}
	}
	return true
}

func (g *gcChecker) checkSignature(ft *ast.FuncType) {
	g.checkFieldList(ft.Params, "parameter")
	g.checkFieldList(ft.Results, "result")
}

func (g *gcChecker) checkFieldList(fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		if g.containsGraph(g.typeOf(f.Type)) {
			g.pass.Reportf(f.Pos(), "%s passes ddg.Graph by value; use *ddg.Graph", kind)
		}
	}
}
