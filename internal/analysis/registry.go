package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/lint"
)

// Registry enforces the engine registry discipline introduced in PR 5:
// every file that declares a type implementing SchedulerEngine or
// UnrollPolicy must self-register it from an init function in the same
// file (directly, or through a helper the init hands to
// RegisterStrategyFamily), and every registered literal name must be
// canonical — lowercase [a-z0-9_:-], starting with a letter or digit —
// and not already taken inside the package.  A declared-but-never-
// registered engine compiles fine and then silently doesn't exist at
// runtime; this turns that into a compile-time error.
var Registry = &lint.Analyzer{
	Name: "registry",
	Doc:  "engine/policy types must self-register in init with a canonical name",
	Run:  runRegistry,
}

var registerFuncs = map[string]bool{
	"RegisterScheduler":      true,
	"RegisterStrategy":       true,
	"RegisterStrategyFamily": true,
}

var canonicalName = regexp.MustCompile(`^[a-z0-9][a-z0-9_:-]*$`)

func runRegistry(pass *lint.Pass) error {
	ifaces := registryInterfaces(pass)
	if len(ifaces) == 0 {
		return nil
	}

	type implInfo struct {
		spec  *ast.TypeSpec
		obj   *types.TypeName
		iface string
	}

	// First pass per file: implementing type declarations, init
	// functions, and helper functions referenced from register calls.
	for _, file := range pass.Files {
		var impls []implInfo
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				if types.IsInterface(obj.Type().Underlying()) {
					continue
				}
				for _, name := range []string{"SchedulerEngine", "UnrollPolicy"} {
					iface, ok := ifaces[name]
					if !ok {
						continue
					}
					if types.Implements(obj.Type(), iface) ||
						types.Implements(types.NewPointer(obj.Type()), iface) {
						impls = append(impls, implInfo{ts, obj, name})
						break
					}
				}
			}
		}
		if len(impls) == 0 {
			continue
		}

		// Objects referenced inside register calls in this file's init
		// functions, plus the bodies of same-file helper functions
		// those calls reference (e.g. a StrategyFamily's New hook).
		registered := map[types.Object]bool{}
		var helperFuncs []types.Object
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "init" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !registerFuncs[calleeName(call)] {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						id, ok := m.(*ast.Ident)
						if !ok {
							return true
						}
						obj := pass.TypesInfo.Uses[id]
						switch obj := obj.(type) {
						case *types.TypeName:
							registered[obj] = true
						case *types.Func:
							if obj.Pkg() == pass.Pkg {
								helperFuncs = append(helperFuncs, obj)
							}
						}
						return true
					})
				}
				return true
			})
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			isHelper := false
			for _, h := range helperFuncs {
				if obj == h {
					isHelper = true
				}
			}
			if !isHelper {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName); ok {
						registered[tn] = true
					}
				}
				return true
			})
		}

		for _, impl := range impls {
			if !registered[impl.obj] {
				pass.Reportf(impl.spec.Pos(),
					"%s implements %s but no init in this file registers it (RegisterScheduler/RegisterStrategy/RegisterStrategyFamily)",
					impl.obj.Name(), impl.iface)
			}
		}
	}

	checkRegistryNames(pass)
	return nil
}

// registryInterfaces finds the SchedulerEngine and UnrollPolicy
// interfaces, either declared in this package or imported from a
// package whose path ends in internal/engine.
func registryInterfaces(pass *lint.Pass) map[string]*types.Interface {
	out := map[string]*types.Interface{}
	scopes := []*types.Scope{}
	if pass.Pkg.Name() == "engine" && strings.HasSuffix(pass.Pkg.Path(), "internal/engine") {
		scopes = append(scopes, pass.Pkg.Scope())
	}
	for _, imp := range pass.Pkg.Imports() {
		if strings.HasSuffix(imp.Path(), "internal/engine") {
			scopes = append(scopes, imp.Scope())
		}
	}
	for _, scope := range scopes {
		for _, name := range []string{"SchedulerEngine", "UnrollPolicy"} {
			obj, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				out[name] = iface
			}
		}
	}
	return out
}

// checkRegistryNames validates every name the package registers or
// returns from a constant Name method: canonical form and package-wide
// uniqueness.  Names are attributed to the type they belong to, so a
// type whose alias repeats its own canonical name is not a conflict —
// only two different types claiming one name are.
func checkRegistryNames(pass *lint.Pass) {
	type nameUse struct {
		node ast.Node
		name string
		typ  types.Object // nil for family prefixes
	}
	var uses []nameUse

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case fd.Name.Name == "init" && fd.Recv == nil:
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					switch calleeName(call) {
					case "RegisterScheduler", "RegisterStrategy":
						if len(call.Args) == 0 {
							return true
						}
						typ := registeredType(pass, call.Args[0])
						for _, arg := range call.Args[1:] {
							if v, ok := constString(pass, arg); ok {
								uses = append(uses, nameUse{arg, v, typ})
							}
						}
					case "RegisterStrategyFamily":
						for _, arg := range call.Args {
							cl, ok := ast.Unparen(arg).(*ast.CompositeLit)
							if !ok {
								continue
							}
							for _, elt := range cl.Elts {
								kv, ok := elt.(*ast.KeyValueExpr)
								if !ok {
									continue
								}
								if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Prefix" {
									if v, ok := constString(pass, kv.Value); ok {
										// The registry namespaces family names
										// as "prefix:arg"; record the prefix
										// with its separator so it cannot
										// collide with a plain name.
										uses = append(uses, nameUse{kv.Value, v + ":", nil})
									}
								}
							}
						}
					}
					return true
				})
			case fd.Name.Name == "Name" && fd.Recv != nil:
				// A Name method returning a single constant defines the
				// type's canonical name.  (Computed names, like a sweep
				// family's "sweep:<k>", are validated at runtime by the
				// registry itself.)
				if len(fd.Body.List) != 1 {
					continue
				}
				ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					continue
				}
				v, ok := constString(pass, ret.Results[0])
				if !ok {
					continue
				}
				var typ types.Object
				if len(fd.Recv.List) == 1 {
					t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
					typ = namedObj(t)
				}
				uses = append(uses, nameUse{ret.Results[0], v, typ})
			}
		}
	}

	sort.Slice(uses, func(i, j int) bool { return uses[i].node.Pos() < uses[j].node.Pos() })
	type owner struct {
		typ types.Object
		set bool
	}
	seen := map[string]owner{}
	for _, u := range uses {
		bare := strings.TrimSuffix(u.name, ":")
		if !canonicalName.MatchString(bare) || bare == "" {
			pass.Reportf(u.node.Pos(), "registry name %q is not canonical (want lowercase [a-z0-9_:-])", u.name)
			continue
		}
		if prev, ok := seen[u.name]; ok {
			if u.typ == nil || prev.typ == nil || prev.typ != u.typ {
				pass.Reportf(u.node.Pos(), "registry name %q is already taken in this package", u.name)
			}
			continue
		}
		seen[u.name] = owner{typ: u.typ, set: true}
	}
}

// registeredType resolves the named type of a register call's first
// argument (the engine/policy value being registered).
func registeredType(pass *lint.Pass, arg ast.Expr) types.Object {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return nil
	}
	return namedObj(tv.Type)
}

func namedObj(t types.Type) types.Object {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// constString evaluates e as a compile-time string constant.
func constString(pass *lint.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
