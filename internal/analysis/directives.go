package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/lint"
)

// hasDirective reports whether a comment group contains a line whose
// comment text starts with the given directive (e.g. "vliw:allocfree").
// Directive comments follow the Go convention: no space after //, so
// "//vliw:allocfree" matches but "// vliw:allocfree" does not.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// waivedLines collects the lines covered by a waiver directive such as
// "//vliw:alloc-ok reason".  A trailing waiver covers its own line; a
// waiver written on a line of its own also covers the next line, so it
// can sit above the statement it excuses.
func waivedLines(pass *lint.Pass, directive string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, file := range pass.Files {
		// Record, per line, the leftmost column holding a non-comment
		// token, to distinguish trailing waivers from standalone ones.
		minCol := map[int]int{}
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, ok := n.(*ast.Comment); ok {
				return false
			}
			if _, ok := n.(*ast.CommentGroup); ok {
				return false
			}
			pos := pass.Fset.Position(n.Pos())
			if c, ok := minCol[pos.Line]; !ok || pos.Column < c {
				minCol[pos.Line] = pos.Column
			}
			return true
		})
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text != directive && !strings.HasPrefix(text, directive+" ") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					out[pos.Filename] = lines
				}
				lines[pos.Line] = true
				if col, ok := minCol[pos.Line]; !ok || col >= pos.Column {
					// Standalone comment line: waive the following line.
					lines[pos.Line+1] = true
				}
			}
		}
	}
	return out
}

func lineWaived(waived map[string]map[int]bool, pos token.Position) bool {
	return waived[pos.Filename][pos.Line]
}

// funcKey renders a stable, package-qualified key for a function or
// method, identical whether the object was typechecked from source or
// loaded from gc export data.  Examples:
//
//	repro/internal/regpress.mod
//	(*repro/internal/regpress.Table).Add
//	(repro/internal/machine.Config).Clustered
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return "(" + types.TypeString(sig.Recv().Type(), nil) + ")." + f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Path() + "." + f.Name()
	}
	return f.Name()
}
