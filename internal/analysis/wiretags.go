package analysis

import (
	"go/ast"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis/lint"
)

// Wiretags guards the versioned wire format: in any package whose
// import path ends in "/wire", every exported field of an exported
// struct must carry an explicit json tag whose name is lowercase
// snake_case and unique within the struct.  A DTO field without a tag
// silently marshals under its Go name, so renaming the field — an
// invisible refactor anywhere else — would break every client; the
// explicit tag pins the wire name and the schema-lock golden test
// (internal/wire) pins the full shape.
var Wiretags = &lint.Analyzer{
	Name: "wiretags",
	Doc:  "wire DTO fields need explicit, unique, snake_case json tags",
	Run:  runWiretags,
}

var wireTagName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runWiretags(pass *lint.Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "/wire") && pass.Pkg.Name() != "wire" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				checkWireStruct(pass, ts.Name.Name, st)
			}
		}
	}
	return nil
}

func checkWireStruct(pass *lint.Pass, typeName string, st *ast.StructType) {
	seen := map[string]bool{}
	for _, f := range st.Fields.List {
		names := f.Names
		if len(names) == 0 {
			// Embedded field: the wire format must not inherit fields
			// implicitly.
			pass.Reportf(f.Pos(), "%s embeds a field; wire DTOs must declare every field explicitly", typeName)
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			if f.Tag == nil {
				pass.Reportf(name.Pos(), "%s.%s has no json tag; wire DTO fields must pin their wire name", typeName, name.Name)
				continue
			}
			raw, err := strconv.Unquote(f.Tag.Value)
			if err != nil {
				pass.Reportf(f.Tag.Pos(), "%s.%s has an unparseable struct tag", typeName, name.Name)
				continue
			}
			tag, ok := reflect.StructTag(raw).Lookup("json")
			if !ok || tag == "" {
				pass.Reportf(name.Pos(), "%s.%s has no json tag; wire DTO fields must pin their wire name", typeName, name.Name)
				continue
			}
			wireName := strings.Split(tag, ",")[0]
			if wireName == "-" {
				continue // explicitly excluded from the wire format
			}
			if !wireTagName.MatchString(wireName) {
				pass.Reportf(f.Tag.Pos(), "%s.%s json tag %q is not lowercase snake_case", typeName, name.Name, wireName)
				continue
			}
			if seen[wireName] {
				pass.Reportf(f.Tag.Pos(), "%s.%s reuses json tag %q", typeName, name.Name, wireName)
				continue
			}
			seen[wireName] = true
		}
	}
}
