package analysis

import (
	"testing"

	"repro/internal/analysis/lint"
	"repro/internal/analysis/lint/linttest"
)

func TestGraphcopy(t *testing.T) {
	linttest.Run(t, "testdata/src", []*lint.Analyzer{Graphcopy}, "./graphcopy/...")
}
