// Package analysis holds vliwlint, the repo's static-analysis suite.
// It encodes the invariants the scheduler's performance and
// determinism work depends on as compile-time rules, so refactors
// cannot silently regress properties that are otherwise only caught by
// runtime tests (ReportAllocs benchmarks, fuzz invariants, ×20
// determinism reruns).
//
// The analyzers:
//
//   - noalloc: functions annotated //vliw:allocfree must not heap
//     allocate — no make/new/closures/boxing, append only in the
//     self-append form, calls only to other allocfree functions or
//     math/bits.  The sched try/commit/place/unplace/busScan path and
//     the regpress undo-log methods carry the annotation; it
//     propagates across packages as facts.
//   - mapdeterminism: a `range` over a map must not feed ordered
//     output (escaping slice appends, writers/encoders) without an
//     intervening sort; map iteration order would otherwise poison
//     the content-fingerprint compile cache.
//   - undopair: in the scheduler and the exact oracle, every
//     speculative place/placeAt is matched by an unplace or commit on
//     all paths out of the function — the undo-log discipline.
//   - registry: a file declaring a SchedulerEngine/UnrollPolicy must
//     self-register it in init with a canonical lowercase name not
//     already taken in the package.
//   - graphcopy: ddg.Graph (which embeds its fingerprint-cache lock)
//     must never be passed or copied by value; composite-literal
//     construction and the Clone/UnmarshalJSON identity-replacement
//     pattern remain allowed.
//   - wiretags: every exported field of an internal/wire DTO carries
//     an explicit, unique, snake_case json tag.
//
// # The //vliw:allocfree contract
//
// Writing //vliw:allocfree in a function's doc comment promises the
// function performs zero heap allocations in steady state.  The
// analyzer verifies the promise structurally and the ReportAllocs
// benchmarks verify it empirically; both must hold.  Two escape
// hatches exist, each requiring a reason string:
//
//	//vliw:alloc-ok <reason>  — waives one line (amortized, cap-checked
//	                            growth or debug-gated oracles)
//	//vliw:unordered <reason> — waives a map range for mapdeterminism
//	//vliw:nopair             — exempts a function from undopair
//
// # Running vliwlint
//
// Standalone over the whole repo (what CI runs):
//
//	go run ./cmd/vliwlint ./...
//
// As a vet tool, which caches per-package results in the build cache:
//
//	go build -o /tmp/vliwlint ./cmd/vliwlint
//	go vet -vettool=/tmp/vliwlint ./...
//
// The analyzers run on a stdlib-only go/analysis-compatible framework
// (internal/analysis/lint) because the repo deliberately carries no
// third-party dependencies; see that package for the driver and the
// analysistest-style fixture harness.
package analysis

import "repro/internal/analysis/lint"

// All returns the full vliwlint suite in deterministic order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		Graphcopy,
		Mapdeterminism,
		Noalloc,
		Registry,
		Undopair,
		Wiretags,
	}
}
