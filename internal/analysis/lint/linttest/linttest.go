// Package linttest is an analysistest-style harness for lint
// analyzers: it loads fixture packages, runs analyzers over them, and
// checks reported diagnostics against `// want "regexp"` comments in
// the fixture source.
//
// A want comment expects one diagnostic on its own line per quoted
// regexp:
//
//	x := make([]int, 4) // want `make allocates`
//	y := *g             // want "copies" "second diagnostic"
//
// Both double-quoted and backquoted forms are accepted.  Lines without
// a want comment must produce no diagnostics.
package linttest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads patterns relative to dir (typically a fixture module
// root), applies the analyzers, and reports mismatches between actual
// diagnostics and // want expectations on t.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer, patterns ...string) {
	t.Helper()
	fset, pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.Run(fset, pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	// Collect expectations keyed by file:line.
	expects := map[string][]*expectation{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := keyOf(pos.Filename, pos.Line)
					for _, raw := range splitQuoted(t, pos, m[1]) {
						rx, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
						}
						expects[key] = append(expects[key], &expectation{rx: rx, raw: raw})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := keyOf(d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range expects[key] {
			if !e.matched && e.rx.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for key, list := range expects {
		for _, e := range list {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.raw)
			}
		}
	}
}

func keyOf(filename string, line int) string {
	return filename + ":" + strconv.Itoa(line)
}

// splitQuoted parses a sequence of Go string literals ("..." or
// `...`) from the tail of a want comment.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			var err error
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			lit = s[1 : end+1]
			s = s[end+2:]
		default:
			t.Fatalf("%s: want patterns must be quoted: %s", pos, s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	return out
}
