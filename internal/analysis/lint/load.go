package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns (e.g. "./...") in dir with the go tool and
// typechecks every matched package from source.  Dependencies resolve
// through gc export data produced by `go list -export`, so loading
// works offline and without golang.org/x/tools.  The returned packages
// are topologically sorted: every package appears after the packages
// it imports, which is the order fact propagation needs.
//
// Non-standard dependency packages that were not named by the patterns
// are loaded too, marked FactsOnly: analyzers run over them so their
// facts (e.g. //vliw:allocfree annotations) reach the named packages,
// but their diagnostics are suppressed — linting ./internal/sched
// must not also lint (or falsely accuse) everything it imports.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,DepOnly,Standard",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	byPath := map[string]*listPackage{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		q := p
		byPath[q.ImportPath] = &q
		if q.Export != "" {
			exports[q.ImportPath] = q.Export
		}
		if !q.Standard {
			targets = append(targets, &q)
		}
	}

	// Topologically sort the targets by their in-target import edges.
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	index := map[string]*listPackage{}
	for _, t := range targets {
		index[t.ImportPath] = t
	}
	var order []*listPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listPackage)
	visit = func(p *listPackage) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if dep, ok := index[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	for _, t := range targets {
		visit(t)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	var pkgs []*Package
	for _, t := range order {
		pkg, err := typecheckFiles(fset, conf, t)
		if err != nil {
			return nil, nil, err
		}
		pkg.FactsOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

func typecheckFiles(fset *token.FileSet, conf types.Config, t *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:    t.ImportPath,
		Dir:     t.Dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: t.Imports,
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
