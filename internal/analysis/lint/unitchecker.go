package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"runtime"
	"strings"
)

// vetConfig mirrors the JSON configuration file cmd/go hands a
// -vettool for each package (see cmd/go/internal/work and
// x/tools/go/analysis/unitchecker for the contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the shared entry point for a vliwlint-style binary.  It
// speaks the `go vet -vettool` protocol when invoked by cmd/go
// (-V=full, -flags, or a *.cfg argument) and otherwise runs as a
// standalone multichecker over the given package patterns (defaulting
// to ./...).  It never returns.
func Main(name string, analyzers []*Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			// cmd/go derives the build-cache key for vet results
			// from this line; the executable hash makes edits to
			// the tool invalidate stale results.
			fmt.Printf("%s version %s\n", name, toolVersion())
			os.Exit(0)
		case "-V", "--V":
			fmt.Printf("%s version %s\n", name, toolVersion())
			os.Exit(0)
		case "-flags", "--flags":
			// No analyzer flags; cmd/go probes this before parsing
			// the vet command line.
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		runUnit(args[len(args)-1], analyzers)
		os.Exit(0)
	}

	// Standalone multichecker.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if patterns[0] == "-help" || patterns[0] == "--help" || patterns[0] == "-h" {
		fmt.Fprintf(os.Stderr, "usage: %s [packages]\n\nAnalyzers:\n", name)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
		}
		os.Exit(0)
	}
	fset, pkgs, err := Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	diags, err := Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// runUnit analyzes the single package described by a cmd/go vet
// config file, reading dependency facts from .vetx files and writing
// this package's facts to cfg.VetxOutput.
func runUnit(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", cfgFile, err))
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	lp := &listPackage{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	if version.IsValid(cfg.GoVersion) {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := typecheckFiles(fset, conf, lp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, Facts{})
			return
		}
		fatal(err)
	}

	depFacts := Facts{}
	for _, vetxFile := range cfg.PackageVetx {
		blob, err := os.ReadFile(vetxFile)
		if err != nil || len(blob) == 0 {
			continue // missing facts degrade to "not annotated", never crash
		}
		var f Facts
		if err := json.Unmarshal(blob, &f); err != nil {
			continue
		}
		depFacts.merge(f)
	}

	var diags []Diagnostic
	facts, err := RunPackage(fset, pkg, analyzers, depFacts, &diags)
	if err != nil {
		fatal(err)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func writeVetx(path string, facts Facts) {
	if path == "" {
		return
	}
	blob, err := json.Marshal(facts)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o666); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vliwlint:", err)
	os.Exit(1)
}

// toolVersion fingerprints the running executable so cached vet
// results are invalidated whenever the tool is rebuilt.
func toolVersion() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("v1-%x", h.Sum(nil)[:8])
}
