// Package lint is a small, dependency-free reimplementation of the
// go/analysis vocabulary: an Analyzer inspects one typechecked package
// at a time through a Pass and reports position-tagged diagnostics.
//
// The repo pins zero third-party modules, so golang.org/x/tools (the
// canonical framework) is not available; this package provides the
// same working surface — Analyzer, Pass, Reportf, package facts — on
// top of the standard library only.  Three drivers share it:
//
//   - Load + Run: the standalone multichecker used by cmd/vliwlint,
//     which resolves packages with `go list -deps -export -json` and
//     typechecks them against gc export data from the build cache.
//   - Main (unitchecker.go): the `go vet -vettool` protocol, where
//     cmd/go hands the tool one package per invocation via a JSON
//     config file and facts travel through .vetx files.
//   - linttest: an analysistest-style harness that runs analyzers
//     over fixture packages and matches `// want` comments.
//
// Facts are deliberately simpler than go/analysis object facts: an
// analyzer exports a set of strings per package (for example the
// fully-qualified names of //vliw:allocfree functions), and every
// downstream package sees the union of the strings exported by the
// packages it (transitively) depends on.  String keys survive the
// source-types/export-data split: a *types.Func loaded from export
// data renders to the same key as the one typechecked from source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files.
	// It must be a valid identifier (the vet driver uses it as a
	// JSON key).
	Name string
	// Doc is a one-paragraph description; the first line is shown
	// by `vliwlint -help`.
	Doc string
	// Run inspects a single package and reports diagnostics via
	// pass.Reportf.  A non-nil error aborts the whole run (reserve
	// it for internal failures, not findings).
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Package is one typechecked package as seen by the analyzers.
type Package struct {
	Path    string // import path
	Dir     string // directory holding the source files
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string // import paths of direct dependencies
	// FactsOnly marks a dependency loaded only so its facts flow to
	// the packages under analysis; its diagnostics are discarded.
	FactsOnly bool
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// depFacts is the union of fact strings exported (for this
	// analyzer) by the packages this one transitively depends on.
	depFacts map[string]bool
	// exported collects the fact strings this pass exports.
	exported map[string]bool
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a fact string to downstream packages.
func (p *Pass) ExportFact(fact string) { p.exported[fact] = true }

// HasFact reports whether a dependency package exported fact, or this
// pass already exported it itself.
func (p *Pass) HasFact(fact string) bool {
	return p.depFacts[fact] || p.exported[fact]
}

// Facts is the per-package fact store: analyzer name -> sorted fact
// strings.  It is the JSON payload of .vetx files in vettool mode.
type Facts map[string][]string

func (f Facts) merge(other Facts) {
	names := make([]string, 0, len(other))
	for a := range other {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		list := other[a]
		seen := map[string]bool{}
		for _, s := range f[a] {
			seen[s] = true
		}
		for _, s := range list {
			if !seen[s] {
				f[a] = append(f[a], s)
				seen[s] = true
			}
		}
	}
}

// RunPackage applies every analyzer to one package.  depFacts is the
// merged fact store of the package's transitive dependencies; the
// returned Facts holds what this package exports (its own new facts
// merged with depFacts, so fact files are transitive closures and
// drivers only need direct-dependency files).
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, depFacts Facts, diags *[]Diagnostic) (Facts, error) {
	// The standalone loader only reads GoFiles, but the vet driver hands
	// the tool test files too.  Test files probe the invariants
	// deliberately — unbalanced place calls, fake engines, throwaway
	// copies — so vliwlint guards production files only, identically
	// under both drivers.
	var files []*ast.File
	for _, f := range pkg.Files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}

	out := Facts{}
	out.merge(depFacts)
	for _, a := range analyzers {
		dep := map[string]bool{}
		for _, s := range depFacts[a.Name] {
			dep[s] = true
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			depFacts:  dep,
			exported:  map[string]bool{},
			diags:     diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		var facts []string
		for s := range pass.exported {
			facts = append(facts, s)
		}
		sort.Strings(facts)
		out.merge(Facts{a.Name: facts})
	}
	return out, nil
}

// Run applies the analyzers to every package, in dependency order, and
// returns all diagnostics sorted by position.  pkgs must already be
// topologically sorted (Load guarantees this).
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	factsByPath := map[string]Facts{}
	for _, pkg := range pkgs {
		dep := Facts{}
		for _, imp := range pkg.Imports {
			if f, ok := factsByPath[imp]; ok {
				dep.merge(f)
			}
		}
		sink := &diags
		if pkg.FactsOnly {
			sink = &[]Diagnostic{}
		}
		facts, err := RunPackage(fset, pkg, analyzers, dep, sink)
		if err != nil {
			return nil, err
		}
		factsByPath[pkg.Path] = facts
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
