package regpress

import (
	"math/rand"
	"testing"
)

// The Table must agree with the from-scratch Pressure oracle under any
// interleaving of adds and removes — that equivalence is what the
// scheduler's incremental register check rests on.

func tableEquals(t *testing.T, tab *Table, lts []Lifetime, ii int, ctx string) {
	t.Helper()
	want := Pressure(lts, ii)
	wantOver := 0
	for s, p := range want {
		if p != tab.Slot(s) {
			t.Fatalf("%s: slot %d = %d, oracle %d (lifetimes %v)", ctx, s, tab.Slot(s), p, lts)
		}
		if p > tab.Capacity() {
			wantOver++
		}
	}
	if (wantOver == 0) != tab.Fits() {
		t.Fatalf("%s: Fits() = %v, oracle over-count %d", ctx, tab.Fits(), wantOver)
	}
	if got, want := tab.Max(), MaxLive(lts, ii); got != want {
		t.Fatalf("%s: Max() = %d, oracle MaxLive %d", ctx, got, want)
	}
}

func TestTableMatchesPressureOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ii := 1 + rng.Intn(9)
		tab := NewTable(ii, 1+rng.Intn(4))
		var live []Lifetime
		for op := 0; op < 40; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				// Remove a random lifetime (LIFO not required by Table).
				i := rng.Intn(len(live))
				tab.Sub(live[i].Start, live[i].End)
				live = append(live[:i], live[i+1:]...)
			} else {
				lt := Lifetime{Start: rng.Intn(21) - 10}
				lt.End = lt.Start + rng.Intn(3*ii+2)
				tab.Add(lt.Start, lt.End)
				live = append(live, lt)
			}
			tableEquals(t, tab, live, ii, "interleaved")
		}
	}
}

func TestTableExtensionSplitsExactly(t *testing.T) {
	// Add [0, 3) then extend to [0, 11) via Add(3, 11): must equal one
	// lifetime [0, 11) — the additivity the scheduler's incremental
	// lifetime extensions rely on.
	tab := NewTable(4, 8)
	tab.Add(0, 3)
	tab.Add(3, 11)
	tableEquals(t, tab, []Lifetime{{Start: 0, End: 11}}, 4, "extension")
	tab.Sub(3, 11)
	tableEquals(t, tab, []Lifetime{{Start: 0, End: 3}}, 4, "rollback")
}

func TestTableResetReusesBacking(t *testing.T) {
	tab := NewTable(4, 2)
	tab.Add(-5, 9)
	tab.Reset(3)
	for s := 0; s < 3; s++ {
		if tab.Slot(s) != 0 {
			t.Fatalf("slot %d = %d after Reset, want 0", s, tab.Slot(s))
		}
	}
	if !tab.Fits() {
		t.Fatal("fresh table must fit")
	}
	tab.Add(0, 7) // II=3: 2 full wraps + 1 extra at slot 0
	tableEquals(t, tab, []Lifetime{{Start: 0, End: 7}}, 3, "after reset")
}

func TestTableUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Sub must panic")
		}
	}()
	NewTable(2, 4).Sub(0, 1)
}
