// Package regpress computes the register requirements (MaxLive) of
// modulo-scheduled loops.  In a kernel of II cycles, a value live for
// len cycles overlaps itself floor(len/II) times plus a partial interval,
// so pressure at modulo slot s is the number of live-range instances
// covering s.  The schedulers use MaxLive to discard cluster candidates
// whose local register file would overflow (the paper generates no spill
// code).
package regpress

// Lifetime is one value's live range in flat schedule time: the value is
// live during [Start, End).  End must be >= Start; negative times are
// allowed (modulo wraparound handles them).
type Lifetime struct {
	Start, End int
}

// Len returns the length of the lifetime in cycles.
func (l Lifetime) Len() int { return l.End - l.Start }

// MaxLive returns the maximum number of simultaneously live values over
// the II modulo slots.  It is the minimum register count that can hold
// all the lifetimes without spilling (assuming an ideal allocator).
func MaxLive(lifetimes []Lifetime, ii int) int {
	if ii < 1 {
		panic("regpress: II must be >= 1")
	}
	pressure := Pressure(lifetimes, ii)
	max := 0
	for _, p := range pressure {
		if p > max {
			max = p
		}
	}
	return max
}

// Pressure returns the per-modulo-slot register pressure, a slice of II
// entries.
func Pressure(lifetimes []Lifetime, ii int) []int {
	if ii < 1 {
		panic("regpress: II must be >= 1")
	}
	slots := make([]int, ii)
	for _, lt := range lifetimes {
		n := lt.Len()
		if n <= 0 {
			continue
		}
		full := n / ii
		rem := n % ii
		if full > 0 {
			for s := range slots {
				slots[s] += full
			}
		}
		if rem > 0 {
			start := mod(lt.Start, ii)
			for k := 0; k < rem; k++ {
				slots[(start+k)%ii]++
			}
		}
	}
	return slots
}

//vliw:allocfree
func mod(x, m int) int {
	r := x % m
	if r < 0 {
		r += m
	}
	return r
}
