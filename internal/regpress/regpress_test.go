package regpress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxLiveEmpty(t *testing.T) {
	if got := MaxLive(nil, 4); got != 0 {
		t.Errorf("MaxLive(nil) = %d, want 0", got)
	}
}

func TestMaxLiveSingleShort(t *testing.T) {
	// One value live 2 cycles in a 4-cycle kernel: pressure 1 at two slots.
	p := Pressure([]Lifetime{{Start: 1, End: 3}}, 4)
	want := []int{0, 1, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveWraparound(t *testing.T) {
	// Live [3,6) with II=4 wraps: slots 3, 0, 1.
	p := Pressure([]Lifetime{{Start: 3, End: 6}}, 4)
	want := []int{1, 1, 0, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveLongValueSelfOverlaps(t *testing.T) {
	// A value live 9 cycles with II=4 overlaps itself: floor(9/4)=2
	// everywhere plus 1 more on one slot.
	if got := MaxLive([]Lifetime{{Start: 0, End: 9}}, 4); got != 3 {
		t.Errorf("MaxLive = %d, want 3", got)
	}
	// Exactly II cycles: pressure 1 on every slot.
	p := Pressure([]Lifetime{{Start: 2, End: 6}}, 4)
	for i, v := range p {
		if v != 1 {
			t.Fatalf("slot %d pressure = %d, want 1 (%v)", i, v, p)
		}
	}
}

func TestMaxLiveNegativeStart(t *testing.T) {
	// Negative flat times appear before schedules are normalised.
	p := Pressure([]Lifetime{{Start: -3, End: -1}}, 4)
	// -3 mod 4 = 1: slots 1 and 2.
	want := []int{0, 1, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveZeroAndEmptyLifetimes(t *testing.T) {
	if got := MaxLive([]Lifetime{{Start: 5, End: 5}}, 3); got != 0 {
		t.Errorf("empty lifetime: MaxLive = %d, want 0", got)
	}
}

func TestMaxLiveAdditive(t *testing.T) {
	lts := []Lifetime{{0, 2}, {1, 3}, {2, 4}}
	// Slot pressures II=4: slot0:1({0,2}), slot1:2, slot2:2, slot3:1.
	if got := MaxLive(lts, 4); got != 2 {
		t.Errorf("MaxLive = %d, want 2", got)
	}
}

func TestPressureSumProperty(t *testing.T) {
	// Sum of slot pressures must equal the sum of lifetime lengths:
	// every live cycle lands in exactly one slot.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(12)
		n := r.Intn(20)
		lts := make([]Lifetime, n)
		total := 0
		for i := range lts {
			start := r.Intn(41) - 20
			length := r.Intn(30)
			lts[i] = Lifetime{Start: start, End: start + length}
			total += length
		}
		sum := 0
		for _, p := range Pressure(lts, ii) {
			sum += p
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxLiveShiftInvariantProperty(t *testing.T) {
	// Shifting all lifetimes by the same delta must not change MaxLive
	// (the whole schedule shifting is a rotation of the kernel).
	prop := func(seed int64, deltaRaw int8) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(9)
		n := 1 + r.Intn(15)
		lts := make([]Lifetime, n)
		for i := range lts {
			start := r.Intn(30) - 10
			lts[i] = Lifetime{Start: start, End: start + r.Intn(25)}
		}
		delta := int(deltaRaw)
		shifted := make([]Lifetime, n)
		for i, lt := range lts {
			shifted[i] = Lifetime{Start: lt.Start + delta, End: lt.End + delta}
		}
		return MaxLive(lts, ii) == MaxLive(shifted, ii)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxLiveBoundsProperty(t *testing.T) {
	// MaxLive is bounded below by ceil(totalLiveCycles/II) (pigeonhole
	// over the II slots) and above by the sum of per-lifetime
	// self-overlap counts ceil(len/II).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(10)
		n := 1 + r.Intn(10)
		lts := make([]Lifetime, n)
		total, upper := 0, 0
		for i := range lts {
			start := r.Intn(20)
			length := r.Intn(20)
			lts[i] = Lifetime{Start: start, End: start + length}
			total += length
			upper += (length + ii - 1) / ii
		}
		m := MaxLive(lts, ii)
		lower := (total + ii - 1) / ii
		return m >= lower && m <= upper
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPressurePanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pressure with II=0 did not panic")
		}
	}()
	Pressure(nil, 0)
}
