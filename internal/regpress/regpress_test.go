package regpress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxLiveEmpty(t *testing.T) {
	if got := MaxLive(nil, 4); got != 0 {
		t.Errorf("MaxLive(nil) = %d, want 0", got)
	}
}

func TestMaxLiveSingleShort(t *testing.T) {
	// One value live 2 cycles in a 4-cycle kernel: pressure 1 at two slots.
	p := Pressure([]Lifetime{{Start: 1, End: 3}}, 4)
	want := []int{0, 1, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveWraparound(t *testing.T) {
	// Live [3,6) with II=4 wraps: slots 3, 0, 1.
	p := Pressure([]Lifetime{{Start: 3, End: 6}}, 4)
	want := []int{1, 1, 0, 1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveLongValueSelfOverlaps(t *testing.T) {
	// A value live 9 cycles with II=4 overlaps itself: floor(9/4)=2
	// everywhere plus 1 more on one slot.
	if got := MaxLive([]Lifetime{{Start: 0, End: 9}}, 4); got != 3 {
		t.Errorf("MaxLive = %d, want 3", got)
	}
	// Exactly II cycles: pressure 1 on every slot.
	p := Pressure([]Lifetime{{Start: 2, End: 6}}, 4)
	for i, v := range p {
		if v != 1 {
			t.Fatalf("slot %d pressure = %d, want 1 (%v)", i, v, p)
		}
	}
}

func TestMaxLiveNegativeStart(t *testing.T) {
	// Negative flat times appear before schedules are normalised.
	p := Pressure([]Lifetime{{Start: -3, End: -1}}, 4)
	// -3 mod 4 = 1: slots 1 and 2.
	want := []int{0, 1, 1, 0}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Pressure = %v, want %v", p, want)
		}
	}
}

func TestMaxLiveZeroAndEmptyLifetimes(t *testing.T) {
	if got := MaxLive([]Lifetime{{Start: 5, End: 5}}, 3); got != 0 {
		t.Errorf("empty lifetime: MaxLive = %d, want 0", got)
	}
}

func TestMaxLiveAdditive(t *testing.T) {
	lts := []Lifetime{{0, 2}, {1, 3}, {2, 4}}
	// Slot pressures II=4: slot0:1({0,2}), slot1:2, slot2:2, slot3:1.
	if got := MaxLive(lts, 4); got != 2 {
		t.Errorf("MaxLive = %d, want 2", got)
	}
}

func TestPressureSumProperty(t *testing.T) {
	// Sum of slot pressures must equal the sum of lifetime lengths:
	// every live cycle lands in exactly one slot.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(12)
		n := r.Intn(20)
		lts := make([]Lifetime, n)
		total := 0
		for i := range lts {
			start := r.Intn(41) - 20
			length := r.Intn(30)
			lts[i] = Lifetime{Start: start, End: start + length}
			total += length
		}
		sum := 0
		for _, p := range Pressure(lts, ii) {
			sum += p
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxLiveShiftInvariantProperty(t *testing.T) {
	// Shifting all lifetimes by the same delta must not change MaxLive
	// (the whole schedule shifting is a rotation of the kernel).
	prop := func(seed int64, deltaRaw int8) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(9)
		n := 1 + r.Intn(15)
		lts := make([]Lifetime, n)
		for i := range lts {
			start := r.Intn(30) - 10
			lts[i] = Lifetime{Start: start, End: start + r.Intn(25)}
		}
		delta := int(deltaRaw)
		shifted := make([]Lifetime, n)
		for i, lt := range lts {
			shifted[i] = Lifetime{Start: lt.Start + delta, End: lt.End + delta}
		}
		return MaxLive(lts, ii) == MaxLive(shifted, ii)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxLiveBoundsProperty(t *testing.T) {
	// MaxLive is bounded below by ceil(totalLiveCycles/II) (pigeonhole
	// over the II slots) and above by the sum of per-lifetime
	// self-overlap counts ceil(len/II).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ii := 1 + r.Intn(10)
		n := 1 + r.Intn(10)
		lts := make([]Lifetime, n)
		total, upper := 0, 0
		for i := range lts {
			start := r.Intn(20)
			length := r.Intn(20)
			lts[i] = Lifetime{Start: start, End: start + length}
			total += length
			upper += (length + ii - 1) / ii
		}
		m := MaxLive(lts, ii)
		lower := (total + ii - 1) / ii
		return m >= lower && m <= upper
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPressurePanicsOnBadII(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pressure with II=0 did not panic")
		}
	}()
	Pressure(nil, 0)
}

// refPressure is an independent reference: pressure at slot s is the
// number of (lifetime, kernel-iteration) instances covering s, i.e. the
// count of integers t in [Start, End) with t ≡ s (mod II).
func refPressure(lifetimes []Lifetime, ii int) []int {
	slots := make([]int, ii)
	for _, lt := range lifetimes {
		for t := lt.Start; t < lt.End; t++ {
			slots[mod(t, ii)]++
		}
	}
	return slots
}

// TestPressureNegativeStartMultiWrap pins the two cases the satellite
// audit called out together: lifetimes that start at negative flat
// times AND are long enough to wrap the II several times.
func TestPressureNegativeStartMultiWrap(t *testing.T) {
	cases := []struct {
		lt Lifetime
		ii int
	}{
		{Lifetime{Start: -5, End: 7}, 3},   // 12 cycles = 4 full wraps exactly
		{Lifetime{Start: -4, End: 3}, 3},   // 7 cycles = 2 wraps + 1
		{Lifetime{Start: -11, End: -2}, 4}, // fully negative, 2 wraps + 1
		{Lifetime{Start: -1, End: 13}, 5},  // crosses zero, 2 wraps + 4
	}
	for _, tc := range cases {
		got := Pressure([]Lifetime{tc.lt}, tc.ii)
		want := refPressure([]Lifetime{tc.lt}, tc.ii)
		for s := range want {
			if got[s] != want[s] {
				t.Errorf("lifetime %+v II=%d: Pressure = %v, want %v", tc.lt, tc.ii, got, want)
				break
			}
		}
	}
}

// TestPressureMatchesReferenceProperty fuzzes mixed negative-start,
// multi-wrap lifetime sets against the reference implementation.
func TestPressureMatchesReferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		ii := 1 + rng.Intn(7)
		n := rng.Intn(6)
		lts := make([]Lifetime, n)
		for i := range lts {
			start := rng.Intn(40) - 20
			lts[i] = Lifetime{Start: start, End: start + rng.Intn(4*ii+2)}
		}
		got := Pressure(lts, ii)
		want := refPressure(lts, ii)
		for s := range want {
			if got[s] != want[s] {
				t.Fatalf("trial %d (II=%d, %v): Pressure = %v, want %v", trial, ii, lts, got, want)
			}
		}
	}
}
