package regpress

// Table is an incrementally maintained modulo register-pressure table:
// the per-slot pressure of a set of lifetimes, kept up to date as
// individual live ranges are added and removed instead of being
// recomputed from scratch.  Pressure is additive over splitting a live
// range — the contribution of [lo, hi) to slot s is the number of cycles
// in the interval congruent to s mod II — so extending a lifetime from
// end e1 to e2 is exactly Add(e1, e2) and the inverse is Sub(e1, e2).
// That additivity is what lets the scheduler undo speculative placements
// in O(lifetime length) instead of rebuilding everything (the Pressure
// function is the from-scratch oracle the fuzz tests compare against).
//
// The table also tracks how many slots currently exceed a fixed register
// capacity, making the scheduler's "does every register file still fit"
// check O(1) per cluster.
type Table struct {
	ii    int
	limit int   // register capacity; slots above it count toward over
	slots []int // per-modulo-slot pressure, ii entries
	over  int   // number of slots with pressure > limit
}

// NewTable returns a table of ii slots checking against the given
// register capacity.
func NewTable(ii, capacity int) *Table {
	t := &Table{}
	t.Init(ii, capacity)
	return t
}

// Init (re)initialises a table in place — the value-type counterpart of
// NewTable, so callers can embed Tables in slices without per-element
// pointer allocations.
//
//vliw:allocfree
func (t *Table) Init(ii, capacity int) {
	t.limit = capacity
	t.Reset(ii)
}

// Reset clears the table and resizes it to ii slots, reusing the backing
// array when capacity allows (no allocation in the steady state of an II
// search, which grows ii one step at a time).
//
//vliw:allocfree
func (t *Table) Reset(ii int) {
	if ii < 1 {
		panic("regpress: II must be >= 1")
	}
	t.ii = ii
	if cap(t.slots) < ii {
		t.slots = make([]int, ii, ii+ii/2+4) //vliw:alloc-ok amortized: cap-checked growth, reused across resets
	} else {
		t.slots = t.slots[:ii]
		for i := range t.slots {
			t.slots[i] = 0
		}
	}
	t.over = 0
}

// II returns the current number of modulo slots.
//
//vliw:allocfree
func (t *Table) II() int { return t.ii }

// Capacity returns the register capacity the over-count checks against.
//
//vliw:allocfree
func (t *Table) Capacity() int { return t.limit }

// Add adds one live-range instance over the flat-cycle interval
// [lo, hi): every cycle in the interval contributes 1 to its modulo
// slot.  Negative cycles are allowed (wraparound).  Empty intervals are
// no-ops.
//
//vliw:allocfree
func (t *Table) Add(lo, hi int) { t.addRange(lo, hi, 1) }

// Sub removes a live-range instance previously added over [lo, hi).
//
//vliw:allocfree
func (t *Table) Sub(lo, hi int) { t.addRange(lo, hi, -1) }

//vliw:allocfree
func (t *Table) addRange(lo, hi, delta int) {
	if hi <= lo {
		return
	}
	n := hi - lo
	full := n / t.ii
	rem := n % t.ii
	if full > 0 {
		d := delta * full
		for s := range t.slots {
			t.bump(s, d)
		}
	}
	if rem > 0 {
		s := mod(lo, t.ii)
		for k := 0; k < rem; k++ {
			t.bump(s, delta)
			s++
			if s == t.ii {
				s = 0
			}
		}
	}
}

//vliw:allocfree
func (t *Table) bump(s, delta int) {
	old := t.slots[s]
	now := old + delta
	if now < 0 {
		panic("regpress: pressure table underflow (unbalanced Sub)")
	}
	t.slots[s] = now
	if old <= t.limit {
		if now > t.limit {
			t.over++
		}
	} else if now <= t.limit {
		t.over--
	}
}

// Fits reports whether every slot is within capacity — equivalent to
// Max() <= Capacity(), but O(1).
//
//vliw:allocfree
func (t *Table) Fits() bool { return t.over == 0 }

// Max returns the current MaxLive: the peak pressure over all slots.
//
//vliw:allocfree
func (t *Table) Max() int {
	max := 0
	for _, p := range t.slots {
		if p > max {
			max = p
		}
	}
	return max
}

// Slot returns the pressure at modulo slot s.
//
//vliw:allocfree
func (t *Table) Slot(s int) int { return t.slots[s] }

// Slots returns the live per-slot pressure array.  It aliases the
// table's internal state and must not be mutated; it is exposed for
// invariant checks and diagnostics.
func (t *Table) Slots() []int { return t.slots }
