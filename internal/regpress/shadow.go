package regpress

// Shadow is a scratch copy of a Table used for speculative pressure
// checks: the scheduler snapshots the cluster's live table, applies the
// candidate placement's lifetime additions to the copy, and reads the
// verdict — no undo log, no Sub pass, and the live table is never
// touched.  Abandoning a speculation costs nothing; the next Snapshot
// simply overwrites the scratch.  One Shadow per cluster is reused for
// the whole scheduling run, so the steady state allocates nothing.
type Shadow struct {
	ii    int
	limit int
	slots []int
	over  int
}

// Snapshot copies t's current state into the shadow, reusing the
// shadow's backing array when capacity allows.
//
//vliw:allocfree
func (s *Shadow) Snapshot(t *Table) {
	s.ii = t.ii
	s.limit = t.limit
	if cap(s.slots) < t.ii {
		s.slots = make([]int, t.ii, t.ii+t.ii/2+4) //vliw:alloc-ok amortized: cap-checked growth, reused across snapshots
	}
	s.slots = s.slots[:t.ii]
	copy(s.slots, t.slots)
	s.over = t.over
}

// Add adds one live-range instance over the flat-cycle interval
// [lo, hi) to the shadow, exactly like Table.Add.
//
//vliw:allocfree
func (s *Shadow) Add(lo, hi int) {
	if hi <= lo {
		return
	}
	n := hi - lo
	full := n / s.ii
	rem := n % s.ii
	if full > 0 {
		for i := range s.slots {
			s.bump(i, full)
		}
	}
	if rem > 0 {
		i := mod(lo, s.ii)
		for k := 0; k < rem; k++ {
			s.bump(i, 1)
			i++
			if i == s.ii {
				i = 0
			}
		}
	}
}

//vliw:allocfree
func (s *Shadow) bump(i, delta int) {
	old := s.slots[i]
	now := old + delta
	s.slots[i] = now
	if old <= s.limit && now > s.limit {
		s.over++
	}
}

// Fits reports whether every slot of the speculated state is within
// capacity.
//
//vliw:allocfree
func (s *Shadow) Fits() bool { return s.over == 0 }

// Max returns the speculated MaxLive.
//
//vliw:allocfree
func (s *Shadow) Max() int {
	max := 0
	for _, p := range s.slots {
		if p > max {
			max = p
		}
	}
	return max
}
