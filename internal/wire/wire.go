// Package wire defines the versioned JSON surface of the scheduling
// service (internal/service, cmd/schedd): request and response
// envelopes, the machine / options / result shapes, and the error
// object every non-2xx response carries.
//
// Versioning: every top-level message carries "v", currently Version
// (1).  Within a version the format only grows backward-compatibly —
// new optional fields may appear, existing fields never change meaning
// or type; decoding is strict (unknown fields are rejected) so drift
// fails loudly on both sides.  Loops travel in the ddg JSON shape
// (ddg.Graph's codec) wrapped in corpus.Loop's tagged fields; machine
// configurations and compile options use the explicit DTOs here, which
// exist so the wire spellings stay stable even if the Go structs move.
//
// The golden fixtures under testdata/ pin the byte-level format; a
// change that alters them is a wire-format change and must bump
// Version.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// Version is the current wire-format version.
const Version = 1

// Error codes carried in Error.Code.  Codes are wire-stable: clients
// dispatch on them, so renaming one is a format break.
const (
	CodeBadRequest         = "bad_request"
	CodeUnsupportedVersion = "unsupported_version"
	CodeInvalidLoop        = "invalid_loop"
	CodeUnknownLoop        = "unknown_loop"
	CodeInvalidMachine     = "invalid_machine"
	CodeUnknownMachine     = "unknown_machine"
	CodeInvalidOptions     = "invalid_options"
	CodeUnknownScheduler   = "unknown_scheduler"
	CodeUnknownStrategy    = "unknown_strategy"
	CodeUnknownPolicy      = "unknown_policy"
	CodeBodyTooLarge       = "body_too_large"
	CodeDeadlineExceeded   = "deadline_exceeded"
	CodeOverCapacity       = "over_capacity"
	CodeUnschedulable      = "unschedulable"
	CodeEnginePanic        = "engine_panic"
	CodeEngineQuarantined  = "engine_quarantined"
	CodeDraining           = "draining"
	CodeInternal           = "internal"
	// CodeCacheMiss is the 404 of a peer-cache lookup: the queried
	// daemon has no completed entry for the key.  Not an error in any
	// meaningful sense — the asking daemon falls back to compiling.
	CodeCacheMiss = "cache_miss"
)

// StatusOf maps a wire error code to its HTTP status.  Every server
// (schedd, schedrouter) uses this one table, so a code always rides
// the same status no matter which process emits it.
func StatusOf(code string) int {
	switch code {
	case CodeUnknownLoop, CodeUnknownMachine, CodeCacheMiss:
		return http.StatusNotFound
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeUnschedulable:
		return http.StatusUnprocessableEntity
	case CodeOverCapacity:
		return http.StatusTooManyRequests
	case CodeEngineQuarantined, CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeEnginePanic, CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Error is the wire error shape: a stable code plus a human-readable
// message.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, when > 0, tells the client how long to back off
	// before retrying (429 over_capacity, 503 engine_quarantined /
	// draining).  The HTTP layer mirrors it into a Retry-After header;
	// it also rides inline so NDJSON batch items carry it.  Optional
	// (v1 growth).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Error implements the error interface so handlers can pass one around
// as an ordinary error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds a wire error.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	V     int    `json:"v"`
	Error *Error `json:"error"`
}

// CompileRequest asks for one compilation.  The loop comes either by
// reference into the server's corpus (loop_ref, e.g. "tomcatv.loop0")
// or inline with its full dependence graph; the machine likewise by
// Table 1 name (machine_ref, e.g. "4-cluster/B1/L1") or inline.
// Options default to the zero compilation: BSA, no unrolling.
type CompileRequest struct {
	V          int          `json:"v"`
	LoopRef    string       `json:"loop_ref,omitempty"`
	Loop       *corpus.Loop `json:"loop,omitempty"`
	MachineRef string       `json:"machine_ref,omitempty"`
	Machine    *Machine     `json:"machine,omitempty"`
	Options    *Options     `json:"options,omitempty"`
	// TimeoutMS bounds this request's wait on the compile; 0 means the
	// server default.  The server clamps it to its configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// AllowDegraded lets the server fall back to the cheap baseline
	// compilation (bsa, no_unroll) instead of refusing when the
	// requested engine is quarantined or the daemon is shedding load;
	// the result is then tagged degraded.  Optional (v1 growth).
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

// CompileResponse is the 200 body of /v1/compile.
type CompileResponse struct {
	V      int     `json:"v"`
	Result *Result `json:"result"`
}

// BatchRequest asks for many compilations; the response is NDJSON, one
// BatchItem per line in completion order.
type BatchRequest struct {
	V        int              `json:"v"`
	Requests []CompileRequest `json:"requests"`
}

// BatchItem is one NDJSON line of a /v1/batch response: the index of
// the request it answers plus either a result or an error.
type BatchItem struct {
	V      int     `json:"v"`
	Index  int     `json:"index"`
	Result *Result `json:"result,omitempty"`
	Error  *Error  `json:"error,omitempty"`
}

// Machine is the wire shape of a machine configuration.
type Machine struct {
	Name string `json:"name,omitempty"`
	// Clusters is the cluster count (1 = unified).
	Clusters int `json:"clusters"`
	// FUs is the per-cluster unit mix [integer, float, memory] of a
	// homogeneous machine; ignored when Hetero is set.
	FUs *[3]int `json:"fus,omitempty"`
	// Hetero gives each cluster its own [integer, float, memory] mix.
	Hetero [][3]int `json:"hetero,omitempty"`
	// Regs is the per-cluster register-file capacity.
	Regs int `json:"regs"`
	// Buses and BusLatency describe the inter-cluster interconnect.
	Buses      int `json:"buses,omitempty"`
	BusLatency int `json:"bus_latency,omitempty"`
}

// Options is the wire shape of core.Options.
type Options struct {
	// Scheduler is any registered scheduler name: "bsa" (default),
	// "ne", "exact", plus whatever the engine registry has gained
	// since; GET /v1/capabilities lists them.
	Scheduler string `json:"scheduler,omitempty"`
	// Strategy is any registered unroll policy name: "no_unroll"
	// (default), "unroll_all", "selective", "portfolio", "sweep:<k>",
	// plus whatever the engine registry has gained since.
	Strategy string `json:"strategy,omitempty"`
	// Factor overrides the unroll_all factor; 0 means the cluster count.
	Factor int `json:"factor,omitempty"`
	// Policy: "profit" (default), "round_robin", "first_fit".
	Policy string `json:"policy,omitempty"`
	// MaxII caps the II search; ForceII pins it.
	MaxII   int `json:"max_ii,omitempty"`
	ForceII int `json:"force_ii,omitempty"`
	// ParallelII, when > 1, races up to that many II candidates on
	// separate cores (BSA only; the result is bit-identical to the
	// serial search).  0 and 1 mean serial.
	ParallelII int `json:"parallel_ii,omitempty"`
	// Exact budgets the optimality oracle (scheduler "exact" only).
	Exact *ExactBudget `json:"exact,omitempty"`
}

// ExactBudget is the wire shape of exact.Budget.
type ExactBudget struct {
	MaxNodes int   `json:"max_nodes,omitempty"`
	MaxSteps int64 `json:"max_steps,omitempty"`
	MaxII    int   `json:"max_ii,omitempty"`
}

// Result is the wire shape of a finished compilation.
type Result struct {
	// Graph names the scheduled graph (the unrolled one when unrolling
	// was applied).
	Graph string `json:"graph,omitempty"`
	// II is the achieved initiation interval; MinII the lower bound
	// max(ResMII, RecMII); IterationII is II per original iteration
	// (II / Factor), the number the paper's comparisons use.
	II          int     `json:"ii"`
	MinII       int     `json:"min_ii"`
	IterationII float64 `json:"iteration_ii"`
	// Factor is the unroll factor embodied in the schedule (>= 1).
	Factor int `json:"factor"`
	// StageCount is the number of overlapped kernel copies.
	StageCount int `json:"stage_count"`
	// BusLimited reports a lower II was abandoned for want of buses.
	BusLimited bool `json:"bus_limited,omitempty"`
	// FellBack reports the UnrollAll→NoUnroll fallback produced this
	// result; decision.fail_reason records why.
	FellBack bool `json:"fell_back,omitempty"`
	// MaxLive is the per-cluster register requirement.
	MaxLive []int `json:"max_live,omitempty"`
	// Causes counts abandoned II attempts by failure cause.
	Causes map[string]int `json:"causes,omitempty"`
	// Placements and Transfers are the schedule itself.
	Placements []Placement `json:"placements"`
	Transfers  []Transfer  `json:"transfers,omitempty"`
	// Decision is the unrolling audit trail (strategies that unroll).
	Decision *Decision `json:"decision,omitempty"`
	// Exact carries the oracle's proof metadata (scheduler "exact").
	Exact *Exact `json:"exact,omitempty"`
	// Policy names the registered policy that produced the schedule;
	// for "portfolio" it is the winning candidate.  Optional (v1
	// growth): absent from results recorded before stage telemetry.
	Policy string `json:"policy,omitempty"`
	// Stages is the per-stage compile telemetry.  Optional (v1 growth).
	Stages *Stages `json:"stages,omitempty"`
	// Degraded reports the server compiled with the baseline fallback
	// (bsa, no_unroll) instead of the requested options because the
	// request set allow_degraded and the requested engine was
	// quarantined or the daemon was shedding load; DegradedReason says
	// which.  Optional (v1 growth).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Stages is the wire shape of the engine's per-compile telemetry.
type Stages struct {
	// Scheduler and Policy are the resolved registered names of the
	// engine and the requested policy.
	Scheduler string `json:"scheduler"`
	Policy    string `json:"policy"`
	// Winner names the candidate that produced the schedule when the
	// policy raced alternatives ("portfolio", "sweep:<k>").
	Winner string `json:"winner,omitempty"`
	// TotalNS is the wall time of the whole compile.
	TotalNS int64 `json:"total_ns"`
	// Stages is the canonical stage breakdown, always the same four
	// names in the same order: analyze, unroll, schedule, validate.
	Stages []StageTiming `json:"stages"`
	// Attempts counts II-search attempts across the winning path's
	// scheduler runs; IITrajectory lists the IIs tried, in order.
	Attempts     int   `json:"attempts,omitempty"`
	IITrajectory []int `json:"ii_trajectory,omitempty"`
	// Candidates lists the alternatives a multi-way policy evaluated.
	Candidates []CandidateOutcome `json:"candidates,omitempty"`
}

// StageTiming is one canonical stage's cost.
type StageTiming struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
	// Calls counts how many times the stage ran (selective schedules
	// twice, a sweep once per factor).
	Calls int `json:"calls,omitempty"`
}

// CandidateOutcome is one alternative a racing or sweeping policy
// evaluated.
type CandidateOutcome struct {
	Strategy    string  `json:"strategy"`
	IterationII float64 `json:"iteration_ii,omitempty"`
	Error       string  `json:"error,omitempty"`
	Won         bool    `json:"won,omitempty"`
}

// Placement is one operation's slot: node ID, cluster, FU index and
// flat cycle (kernel slot = cycle mod II).
type Placement struct {
	Node    int `json:"node"`
	Cluster int `json:"cluster"`
	FU      int `json:"fu"`
	Cycle   int `json:"cycle"`
}

// Transfer is one inter-cluster communication.
type Transfer struct {
	Producer int `json:"producer"`
	From     int `json:"from"`
	To       int `json:"to"`
	Bus      int `json:"bus"`
	Start    int `json:"start"`
}

// Decision is the wire shape of unroll.Decision.
type Decision struct {
	Unrolled      bool   `json:"unrolled"`
	Factor        int    `json:"factor"`
	BusLimited    bool   `json:"bus_limited,omitempty"`
	ComNeeded     int    `json:"com_needed,omitempty"`
	CycNeeded     int    `json:"cyc_needed,omitempty"`
	UnrolledMinII int    `json:"unrolled_min_ii,omitempty"`
	FailReason    string `json:"fail_reason,omitempty"`
}

// Exact is the wire shape of exact.Result's proof metadata.
type Exact struct {
	Proved     bool  `json:"proved"`
	LowerBound int   `json:"lower_bound"`
	Steps      int64 `json:"steps"`
}

// CapabilitiesResponse is the 200 body of GET /v1/capabilities: what
// the engine registry and the machine table can serve, so a client can
// discover new schedulers and policies without a format bump.
type CapabilitiesResponse struct {
	V int `json:"v"`
	// Schedulers and Strategies are the registered canonical names
	// (families as "prefix:<k>" placeholders), sorted.
	Schedulers []string `json:"schedulers"`
	Strategies []string `json:"strategies"`
	// StrategyFamilies documents each parameterised policy family.
	StrategyFamilies []StrategyFamily `json:"strategy_families,omitempty"`
	// Features lists optional request capabilities this daemon honours
	// (e.g. "parallel_ii", "allow_degraded"), so clients can probe
	// before setting them.
	Features []string `json:"features,omitempty"`
	// Quarantined lists engines currently under circuit-breaker
	// quarantine (open or half-open); requests for them are refused
	// with engine_quarantined unless they set allow_degraded.  Optional
	// (v1 growth).
	Quarantined []string `json:"quarantined,omitempty"`
	// Machines are the machine_ref names (Table 1), sorted.
	Machines []string `json:"machines"`
	// Loops counts the loops loop_ref can name.
	Loops int `json:"loops"`
}

// StrategyFamily documents one parameterised policy family.
type StrategyFamily struct {
	Prefix      string `json:"prefix"`
	Placeholder string `json:"placeholder"`
	Doc         string `json:"doc,omitempty"`
}

// StatsResponse is the 200 body of /v1/stats.
type StatsResponse struct {
	V        int           `json:"v"`
	Pipeline PipelineStats `json:"pipeline"`
	Service  ServiceStats  `json:"service"`
}

// PipelineStats is the wire shape of pipeline.Stats.
type PipelineStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	DedupJoins    int64 `json:"dedup_joins"`
	Compilations  int64 `json:"compilations"`
	Fallbacks     int64 `json:"fallbacks"`
	Evictions     int64 `json:"evictions"`
	CachedBytes   int64 `json:"cached_bytes"`
	CachedEntries int64 `json:"cached_entries"`
	CompileNS     int64 `json:"compile_ns"`
	WallNS        int64 `json:"wall_ns"`
	// Panics counts compiles that ended in a recovered panic (typed
	// engine_panic wire errors).  Optional (v1 growth).
	Panics int64 `json:"panics,omitempty"`
	// PeerHits counts misses satisfied by a cluster peer's cache
	// instead of a local compile; Seeded counts entries inserted from a
	// warm-start snapshot or corpus prefill.  Optional (v1 growth),
	// zero outside cluster mode.
	PeerHits int64 `json:"peer_hits,omitempty"`
	Seeded   int64 `json:"seeded,omitempty"`
	// HitRate is Hits / (Hits + Misses), 0 when no lookups have
	// happened yet — the zero-lookup guard matters because NaN has no
	// JSON encoding and would make the whole stats document
	// unserializable.  Optional (v1 growth).
	HitRate float64 `json:"hit_rate,omitempty"`
}

// FromPipelineStats converts a pipeline snapshot to the wire shape.
func FromPipelineStats(s pipeline.Stats) PipelineStats {
	var hitRate float64
	if lookups := s.Hits + s.Misses; lookups > 0 {
		hitRate = float64(s.Hits) / float64(lookups)
	}
	return PipelineStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		DedupJoins:    s.DedupJoins,
		Compilations:  s.Compilations,
		Fallbacks:     s.Fallbacks,
		Evictions:     s.Evictions,
		CachedBytes:   s.CachedBytes,
		CachedEntries: s.CachedEntries,
		CompileNS:     int64(s.CompileTime),
		WallNS:        int64(s.WallTime),
		Panics:        s.Panics,
		PeerHits:      s.PeerHits,
		Seeded:        s.Seeded,
		HitRate:       hitRate,
	}
}

// ServiceStats is the daemon-level side of /v1/stats.
type ServiceStats struct {
	// Requests counts handled requests per endpoint.
	Requests map[string]int64 `json:"requests"`
	// Rejected counts requests turned away by admission control (429).
	Rejected int64 `json:"rejected"`
	// Deadlines counts requests that hit their deadline (504).
	Deadlines int64 `json:"deadlines"`
	// InFlight and Queued are point-in-time admission gauges.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// LatencyMS is the request-latency histogram over /v1/compile and
	// /v1/batch (a batch contributes one observation spanning decode
	// through the last streamed line).  Buckets are cumulative,
	// Prometheus style: bucket i counts every request that finished in
	// <= Le milliseconds; the final bucket (Le < 0, +Inf) is the total.
	LatencyMS []HistogramBucket `json:"latency_ms"`
	// Draining reports the daemon has begun graceful shutdown: /readyz
	// answers 503 and new compile work is refused.  Optional (v1
	// growth).
	Draining bool `json:"draining,omitempty"`
	// Degraded counts requests compiled with the baseline fallback
	// under allow_degraded.  Optional (v1 growth).
	Degraded int64 `json:"degraded,omitempty"`
	// Quarantined counts requests refused with engine_quarantined.
	// Optional (v1 growth).
	Quarantined int64 `json:"quarantined,omitempty"`
	// Engines is the per-engine circuit-breaker health (only engines
	// that have reported failures appear).  Optional (v1 growth).
	Engines []EngineHealth `json:"engines,omitempty"`
	// Faults counts injected faults by name when the daemon runs in
	// chaos mode (-faults); absent in production.  Optional (v1
	// growth).
	Faults map[string]int64 `json:"faults,omitempty"`
}

// EngineHealth is one engine's circuit-breaker snapshot in /v1/stats.
type EngineHealth struct {
	// Engine is the canonical scheduler-engine name; State is the
	// breaker state: "closed", "open" or "half_open".
	Engine string `json:"engine"`
	State  string `json:"state"`
	// WindowFailures counts failures inside the sliding window.
	WindowFailures int `json:"window_failures,omitempty"`
	// Panics / Timeouts / Trips / Probes are lifetime totals.
	Panics   int64 `json:"panics,omitempty"`
	Timeouts int64 `json:"timeouts,omitempty"`
	Trips    int64 `json:"trips,omitempty"`
	Probes   int64 `json:"probes,omitempty"`
	// RetryAfterMS is the cooldown remaining on an open breaker.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// FromEngineHealth converts the engine package's breaker snapshots to
// the wire shape.
func FromEngineHealth(hs []engine.EngineHealth) []EngineHealth {
	if len(hs) == 0 {
		return nil
	}
	out := make([]EngineHealth, 0, len(hs))
	for _, h := range hs {
		out = append(out, EngineHealth{
			Engine:         h.Engine,
			State:          h.State.String(),
			WindowFailures: h.WindowFailures,
			Panics:         h.Panics,
			Timeouts:       h.Timeouts,
			Trips:          h.Trips,
			Probes:         h.Probes,
			RetryAfterMS:   h.RetryAfter.Milliseconds(),
		})
	}
	return out
}

// HistogramBucket is one cumulative latency bucket; Le < 0 means +Inf.
type HistogramBucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// CheckVersion validates an envelope's version field.
func CheckVersion(v int) *Error {
	switch v {
	case Version:
		return nil
	case 0:
		return Errorf(CodeBadRequest, "missing wire version (want \"v\": %d)", Version)
	default:
		return Errorf(CodeUnsupportedVersion, "wire version %d not supported (want %d)", v, Version)
	}
}

// DecodeStrict decodes exactly one JSON value from r into v, rejecting
// unknown fields and trailing garbage, so format drift and typos fail
// loudly instead of silently compiling the wrong thing.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
