// Cache snapshot codec: the serialized form of a pipeline cache entry,
// used both at rest (warm-start snapshots, NDJSON, one CacheEntry per
// line) and in flight (the body of GET /v1/cache/{key} peer lookups).
//
// A row carries everything FromResult computes from — the scheduled
// graph (ddg codec), the machine (wire Machine) and the result DTO —
// so restore rebuilds an in-process result whose re-encoding is
// byte-identical to the original row.  Derived fields the Result DTO
// spells out (stage count, max_live, iteration_ii) are recomputed from
// the graph and schedule on load and cross-checked against the row, so
// a corrupted or hand-edited snapshot fails loudly instead of serving
// a wrong schedule.

package wire

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/unroll"
)

// CacheEntry is the wire shape of one completed cache entry: one
// snapshot row, or the 200 body of a peer-cache lookup.
type CacheEntry struct {
	V int `json:"v"`
	// Key is the pipeline cache key, verbatim; its fingerprint prefix
	// is what cluster routing shards on.
	Key string `json:"key"`
	// Graph is the scheduled dependence graph — the unrolled one when
	// unrolling was applied — in the ddg wire shape.
	Graph *ddg.Graph `json:"graph"`
	// Machine is the target the schedule was compiled for.
	Machine *Machine `json:"machine"`
	// Result is the finished compilation.
	Result *Result `json:"result"`
}

// FromCacheEntry converts a pipeline cache entry to the wire shape.
func FromCacheEntry(e pipeline.CacheEntry) *CacheEntry {
	s := e.Res.Schedule
	return &CacheEntry{
		V:       Version,
		Key:     e.Key,
		Graph:   s.Graph,
		Machine: FromConfig(s.Cfg),
		Result:  FromResult(e.Res),
	}
}

// Core rebuilds the in-process cache entry, validating as it goes: the
// machine must pass Config.Validate, the schedule's shape must fit the
// graph, and the row's derived fields must match what the rebuilt
// schedule computes.
func (e *CacheEntry) Core() (pipeline.CacheEntry, error) {
	if werr := CheckVersion(e.V); werr != nil {
		return pipeline.CacheEntry{}, werr
	}
	if e.Key == "" {
		return pipeline.CacheEntry{}, fmt.Errorf("cache entry has no key")
	}
	if e.Graph == nil || e.Machine == nil || e.Result == nil {
		return pipeline.CacheEntry{}, fmt.Errorf("cache entry %q: graph, machine and result all required", e.Key)
	}
	cfg, werr := e.Machine.Config()
	if werr != nil {
		return pipeline.CacheEntry{}, fmt.Errorf("cache entry %q: %w", e.Key, werr)
	}
	res, err := e.Result.Core(e.Graph, cfg)
	if err != nil {
		return pipeline.CacheEntry{}, fmt.Errorf("cache entry %q: %w", e.Key, err)
	}
	return pipeline.CacheEntry{Key: e.Key, Res: res}, nil
}

// causeNames maps the wire spellings of sched.FailCause (the inverse
// of FailCause.String).
var causeNames = map[string]sched.FailCause{
	"none":      sched.CauseNone,
	"fu":        sched.CauseFU,
	"reg":       sched.CauseReg,
	"comm":      sched.CauseComm,
	"cancelled": sched.CauseCancelled,
}

// Core rebuilds a finished compilation from its wire shape plus the
// scheduled graph and machine the DTO only names.  It is the inverse
// of FromResult: re-encoding the returned result reproduces the DTO
// byte for byte, which the loader of a snapshot relies on to reject
// rows whose derived fields (stage count, max_live, iteration_ii)
// disagree with the placements they ride with.
func (r *Result) Core(g *ddg.Graph, cfg machine.Config) (*core.Result, error) {
	if r.II <= 0 {
		return nil, fmt.Errorf("result has ii %d, want >= 1", r.II)
	}
	if r.Factor < 1 {
		return nil, fmt.Errorf("result has factor %d, want >= 1", r.Factor)
	}
	if n := len(r.Placements); n != g.NumNodes() {
		return nil, fmt.Errorf("result has %d placements for a %d-node graph", n, g.NumNodes())
	}
	s := &sched.Schedule{
		Graph:      g,
		Cfg:        cfg,
		II:         r.II,
		MinII:      r.MinII,
		BusLimited: r.BusLimited,
		Placements: make([]sched.Placement, 0, len(r.Placements)),
	}
	for i, p := range r.Placements {
		if p.Node != i {
			return nil, fmt.Errorf("placement %d names node %d; placements must be indexed by node", i, p.Node)
		}
		if p.Cluster < 0 || p.Cluster >= cfg.NClusters || p.Cycle < 0 {
			return nil, fmt.Errorf("placement %d (cluster %d, cycle %d) out of range", i, p.Cluster, p.Cycle)
		}
		s.Placements = append(s.Placements, sched.Placement{
			Node: p.Node, Cluster: p.Cluster, FU: p.FU, Cycle: p.Cycle,
		})
	}
	for i, t := range r.Transfers {
		if t.Producer < 0 || t.Producer >= g.NumNodes() || t.Start < 0 {
			return nil, fmt.Errorf("transfer %d (producer %d, start %d) out of range", i, t.Producer, t.Start)
		}
		s.Transfers = append(s.Transfers, sched.Transfer{
			Producer: t.Producer, From: t.From, To: t.To, Bus: t.Bus, Start: t.Start,
		})
	}
	if len(r.Causes) > 0 {
		s.Causes = make(map[sched.FailCause]int, len(r.Causes))
		for name, n := range r.Causes {
			cause, ok := causeNames[name]
			if !ok {
				return nil, fmt.Errorf("unknown failure cause %q", name)
			}
			s.Causes[cause] = n
		}
	}
	out := &core.Result{
		Schedule: s,
		Factor:   r.Factor,
		FellBack: r.FellBack,
		Policy:   r.Policy,
		Stages:   toTelemetry(r.Stages),
	}
	if r.Decision != nil {
		out.Decision = unroll.Decision{
			Unrolled:      r.Decision.Unrolled,
			Factor:        r.Decision.Factor,
			BusLimited:    r.Decision.BusLimited,
			ComNeeded:     r.Decision.ComNeeded,
			CycNeeded:     r.Decision.CycNeeded,
			UnrolledMinII: r.Decision.UnrolledMinII,
			FailReason:    r.Decision.FailReason,
		}
		if out.Decision == (unroll.Decision{}) {
			return nil, fmt.Errorf("result carries an all-zero decision")
		}
	}
	if r.Exact != nil {
		out.Exact = &exact.Result{
			Proved:     r.Exact.Proved,
			LowerBound: r.Exact.LowerBound,
			Steps:      r.Exact.Steps,
		}
	}
	// Cross-check the derived fields the DTO spells out against what
	// the rebuilt schedule computes: a row whose placements disagree
	// with its stage count or register requirement is corrupt.
	if got := g.Name; got != r.Graph {
		return nil, fmt.Errorf("result names graph %q but rides with %q", r.Graph, got)
	}
	if got := s.SC(); got != r.StageCount {
		return nil, fmt.Errorf("result claims stage count %d, placements compute %d", r.StageCount, got)
	}
	if got := out.IterationII(); got != r.IterationII {
		return nil, fmt.Errorf("result claims iteration ii %g, ii/factor computes %g", r.IterationII, got)
	}
	if got := s.MaxLive(); !equalInts(got, r.MaxLive) {
		return nil, fmt.Errorf("result claims max_live %v, lifetimes compute %v", r.MaxLive, got)
	}
	return out, nil
}

// equalInts compares two int slices, treating nil and empty alike (the
// DTO omits an empty max_live).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// toTelemetry rebuilds the engine's stage telemetry from the wire
// shape (the inverse of FromTelemetry); nil in, nil out.
func toTelemetry(w *Stages) *engine.Telemetry {
	if w == nil {
		return nil
	}
	t := &engine.Telemetry{
		Scheduler:  w.Scheduler,
		Policy:     w.Policy,
		Winner:     w.Winner,
		Total:      time.Duration(w.TotalNS),
		Stages:     make([]engine.Stage, 0, len(w.Stages)),
		Attempts:   w.Attempts,
		Trajectory: w.IITrajectory,
	}
	for _, s := range w.Stages {
		t.Stages = append(t.Stages, engine.Stage{
			Name: engine.StageName(s.Name), Duration: time.Duration(s.NS), Calls: s.Calls,
		})
	}
	for _, c := range w.Candidates {
		t.Candidates = append(t.Candidates, engine.Candidate{
			Strategy: c.Strategy, IterationII: c.IterationII, Err: c.Error, Won: c.Won,
		})
	}
	return t
}

// EncodeCacheEntry writes one snapshot row: the entry as compact JSON,
// HTML escaping off, one line.
func EncodeCacheEntry(w io.Writer, e pipeline.CacheEntry) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(FromCacheEntry(e))
}

// DecodeCacheEntry reads one snapshot row (strict: unknown fields and
// trailing garbage rejected) and rebuilds the in-process entry.
func DecodeCacheEntry(data []byte) (pipeline.CacheEntry, error) {
	var row CacheEntry
	if err := DecodeStrict(bytes.NewReader(data), &row); err != nil {
		return pipeline.CacheEntry{}, err
	}
	return row.Core()
}

// maxSnapshotLine bounds one snapshot row; far above any admissible
// compile result but small enough to fail fast on a garbage file.
const maxSnapshotLine = 64 << 20

// SaveCache snapshots a pipeline's completed cache entries as NDJSON,
// one CacheEntry per line, sorted by key (Export's order) so the same
// cache contents always serialize to the same bytes.  It returns the
// number of rows written.
func SaveCache(w io.Writer, p *pipeline.Pipeline) (int, error) {
	bw := bufio.NewWriter(w)
	entries := p.Export()
	for _, e := range entries {
		if err := EncodeCacheEntry(bw, e); err != nil {
			return 0, fmt.Errorf("snapshot %q: %w", e.Key, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// LoadCache seeds a pipeline from an NDJSON snapshot, returning how
// many rows were inserted (rows whose key is already cached are
// skipped, not counted).  Any undecodable or inconsistent row aborts
// the load with an error naming the line: a snapshot is a trusted
// local artifact, and a corrupt one should be deleted, not partially
// believed.
func LoadCache(r io.Reader, p *pipeline.Pipeline) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxSnapshotLine)
	seeded, line := 0, 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		e, err := DecodeCacheEntry(sc.Bytes())
		if err != nil {
			return seeded, fmt.Errorf("snapshot line %d: %w", line, err)
		}
		if p.Seed(e.Key, e.Res) {
			seeded++
		}
	}
	if err := sc.Err(); err != nil {
		return seeded, fmt.Errorf("snapshot line %d: %w", line+1, err)
	}
	return seeded, nil
}
