package wire

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

// update regenerates the golden fixtures: go test ./internal/wire -update
var update = flag.Bool("update", false, "rewrite golden wire fixtures")

// golden compares v's indented JSON against the committed fixture, or
// rewrites the fixture under -update.  A diff is a wire-format change:
// either fix the drift or bump Version and regenerate deliberately.
func golden(t *testing.T, name string, v any) []byte {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return got
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/wire -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s\n(a deliberate change needs a Version bump and -update)",
			name, got, want)
	}
	return got
}

// tomcatv0 returns the first corpus loop, the fixture workload.
func tomcatv0(t *testing.T) *corpus.Loop {
	t.Helper()
	suite := corpus.Trimmed([]string{"tomcatv"}, 1)
	if len(suite) != 1 || len(suite[0].Loops) != 1 {
		t.Fatal("trimmed corpus shape changed")
	}
	return suite[0].Loops[0]
}

// TestGoldenLoop pins the corpus-loop wire shape and checks a decoded
// loop is the same graph, fingerprint included.
func TestGoldenLoop(t *testing.T) {
	l := tomcatv0(t)
	data := golden(t, "loop_tomcatv0.json", l)

	var back corpus.Loop
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if back.Graph.Fingerprint() != l.Graph.Fingerprint() {
		t.Error("decoded loop has a different fingerprint")
	}
	if back.Iters != l.Iters || back.Weight != l.Weight || back.Bench != l.Bench {
		t.Errorf("loop metadata drifted: %+v vs %+v", back, l)
	}
	if err := back.Graph.Validate(); err != nil {
		t.Error(err)
	}
	reenc, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(reenc, '\n'), data) {
		t.Error("loop did not round-trip byte-identically")
	}
}

// TestGoldenMachines pins every Table 1 configuration's wire shape and
// checks each decodes back to the exact in-process Config.
func TestGoldenMachines(t *testing.T) {
	cfgs := machine.Table1Configs()
	var ms []*Machine
	for _, c := range cfgs {
		ms = append(ms, FromConfig(c))
	}
	data := golden(t, "machines_table1.json", ms)

	var back []*Machine
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cfgs) {
		t.Fatalf("decoded %d machines, want %d", len(back), len(cfgs))
	}
	for i, m := range back {
		c, werr := m.Config()
		if werr != nil {
			t.Fatalf("machine %d: %v", i, werr)
		}
		if !reflect.DeepEqual(c, cfgs[i]) {
			t.Errorf("machine %d did not round-trip:\n got %+v\nwant %+v", i, c, cfgs[i])
		}
		// machine_ref resolution must agree with the wire codec: the name
		// in the fixture resolves to the exact same configuration.
		byName, ok := machine.ConfigByName(c.Name)
		if !ok || !reflect.DeepEqual(byName, c) {
			t.Errorf("ConfigByName(%q) = %+v, %v; want the fixture config", c.Name, byName, ok)
		}
	}
	if _, ok := machine.ConfigByName("9-cluster/B9/L9"); ok {
		t.Error("ConfigByName resolved an unknown name")
	}
}

// TestGoldenHeteroMachine pins the heterogeneous layout's wire shape.
func TestGoldenHeteroMachine(t *testing.T) {
	c := machine.TwoCluster(1, 2)
	c.Name = "hetero-demo"
	c.Hetero = [][machine.NumFUClasses]int{{2, 2, 2}, {1, 1, 1}}
	data := golden(t, "machine_hetero.json", FromConfig(c))

	var back Machine
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	dec, werr := back.Config()
	if werr != nil {
		t.Fatal(werr)
	}
	want := c
	want.FUsPerCluster = [machine.NumFUClasses]int{} // hetero overrides; wire drops the unused mix
	if !reflect.DeepEqual(dec, want) {
		t.Errorf("hetero machine did not round-trip:\n got %+v\nwant %+v", dec, want)
	}
}

// TestGoldenOptions pins the options wire shape and round-trips it.
func TestGoldenOptions(t *testing.T) {
	opts := core.Options{
		Scheduler: core.Exact,
		Strategy:  core.UnrollAll,
		Factor:    2,
		Sched:     sched.Options{Policy: sched.PolicyFirstFit, MaxII: 40, Parallel: 4},
		Exact:     exact.Budget{MaxNodes: 12, MaxSteps: 500000, MaxII: 30},
	}
	data := golden(t, "options_full.json", FromOptions(opts))

	var back Options
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	dec, werr := back.Core()
	if werr != nil {
		t.Fatal(werr)
	}
	if !reflect.DeepEqual(dec, opts) {
		t.Errorf("options did not round-trip:\n got %+v\nwant %+v", dec, opts)
	}
}

// TestGoldenResultFellBack pins the result shape for a compilation that
// took the UnrollAll→NoUnroll fallback, FellBack and FailReason
// included — the exact telemetry a client must see.
func TestGoldenResultFellBack(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "fixture"}
	p := pipeline.New(1)
	cfg := machine.FourCluster(1, 4)
	res, err := p.Compile(pipeline.Request{Loop: l, Cfg: cfg,
		Opts: core.Options{Strategy: core.UnrollAll, Factor: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FellBack {
		t.Fatal("fixture compilation no longer falls back")
	}
	if res.Stages == nil {
		t.Fatal("fallback result carries no stage telemetry")
	}
	// Stage durations are wall-clock and cannot be pinned byte-level;
	// the stages shape has its own hand-built fixture
	// (result_stages.json).  Policy is deterministic and stays.
	res = cloneWithoutStages(res)
	w := FromResult(res)
	data := golden(t, "result_fellback.json", w)

	var back Result
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if !back.FellBack || back.Decision == nil || back.Decision.FailReason == "" {
		t.Error("fallback telemetry lost on the wire")
	}
	if len(back.Placements) != l.Graph.NumNodes() {
		t.Errorf("%d placements for %d nodes", len(back.Placements), l.Graph.NumNodes())
	}
}

// TestGoldenResultExact pins the result shape for an oracle run with
// its proof metadata.
func TestGoldenResultExact(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleDotProduct(), Iters: 16, Weight: 1, Bench: "fixture"}
	cfg := machine.TwoCluster(1, 1)
	res, err := core.Compile(l.Graph, &cfg, &core.Options{Scheduler: core.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact == nil {
		t.Fatal("exact compile returned no proof metadata")
	}
	res = cloneWithoutStages(res)
	w := FromResult(res)
	data := golden(t, "result_exact.json", w)

	var back Result
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if back.Exact == nil || back.Exact.LowerBound != res.Exact.LowerBound {
		t.Error("exact proof metadata lost on the wire")
	}
}

// cloneWithoutStages strips the wall-clock stage telemetry so a
// compiled result can be pinned byte-level.
func cloneWithoutStages(res *core.Result) *core.Result {
	c := *res
	c.Stages = nil
	return &c
}

// TestGoldenResultStages pins the stages/policy wire shape with a
// hand-built telemetry block (real stage durations are wall-clock and
// nondeterministic; the schedule itself is compiled and deterministic).
// This is the fixture that locks the v1 "stages" growth: the canonical
// four-stage set, the II trajectory, and a portfolio candidate list.
func TestGoldenResultStages(t *testing.T) {
	l := &corpus.Loop{Graph: ddg.SampleFigure7(), Iters: 16, Weight: 1, Bench: "fixture"}
	cfg := machine.FourCluster(1, 1)
	res, err := core.Compile(l.Graph, &cfg, &core.Options{Strategy: core.Portfolio})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Stages
	if got == nil {
		t.Fatal("portfolio result carries no stage telemetry")
	}
	if got.Policy != "portfolio" || got.Winner == "" || len(got.Candidates) == 0 {
		t.Fatalf("unexpected portfolio telemetry: %+v", got)
	}
	res = cloneWithoutStages(res)
	res.Stages = &engine.Telemetry{
		Scheduler: got.Scheduler,
		Policy:    got.Policy,
		Winner:    "unroll_all",
		Total:     10 * time.Millisecond,
		Stages: []engine.Stage{
			{Name: engine.StageAnalyze, Duration: 1 * time.Millisecond, Calls: 1},
			{Name: engine.StageUnroll, Duration: 2 * time.Millisecond, Calls: 2},
			{Name: engine.StageSchedule, Duration: 6 * time.Millisecond, Calls: got.Stages[2].Calls},
			{Name: engine.StageValidate, Duration: 1 * time.Millisecond, Calls: 1},
		},
		Attempts:   got.Attempts,
		Trajectory: got.Trajectory,
		// Which losing candidates completed before the winner pruned
		// them is timing-dependent, so the winner and candidate list are
		// a representative hand-built race outcome, not the live one.
		Candidates: []engine.Candidate{
			{Strategy: "no_unroll", IterationII: 4},
			{Strategy: "unroll_all", IterationII: 2.5, Won: true},
			{Strategy: "selective", Err: "context canceled"},
		},
	}
	data := golden(t, "result_stages.json", FromResult(res))

	var back Result
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if back.Policy == "" || back.Stages == nil {
		t.Fatal("policy/stages lost on the wire")
	}
	if len(back.Stages.Stages) != 4 || back.Stages.Stages[0].Name != "analyze" {
		t.Errorf("canonical stage set drifted: %+v", back.Stages.Stages)
	}
	// v1 growth contract: a pre-stages client payload — the same result
	// without the new optional fields — must still decode strictly.
	old := FromResult(cloneWithoutStages(res))
	oldData, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	var oldBack Result
	if err := DecodeStrict(bytes.NewReader(oldData), &oldBack); err != nil {
		t.Fatalf("stages-free result no longer decodes: %v", err)
	}
}

// TestGoldenCompileRequest pins the full request envelope with an
// inline loop, inline machine and options.
func TestGoldenCompileRequest(t *testing.T) {
	g := ddg.SampleDotProduct()
	req := CompileRequest{
		V:    Version,
		Loop: &corpus.Loop{Graph: g, Iters: 32, Weight: 2, Bench: "client"},
		Machine: &Machine{
			Name: "custom-2c", Clusters: 2, FUs: &[3]int{2, 2, 2},
			Regs: 32, Buses: 1, BusLatency: 2,
		},
		Options:   &Options{Strategy: "selective"},
		TimeoutMS: 2000,
	}
	data := golden(t, "compile_request.json", req)

	var back CompileRequest
	if err := DecodeStrict(bytes.NewReader(data), &back); err != nil {
		t.Fatal(err)
	}
	if werr := CheckVersion(back.V); werr != nil {
		t.Fatal(werr)
	}
	if back.Loop.Graph.Fingerprint() != g.Fingerprint() {
		t.Error("inline loop fingerprint drifted through the envelope")
	}
}

// TestCheckVersion covers the three version outcomes.
func TestCheckVersion(t *testing.T) {
	if werr := CheckVersion(Version); werr != nil {
		t.Errorf("current version rejected: %v", werr)
	}
	if werr := CheckVersion(0); werr == nil || werr.Code != CodeBadRequest {
		t.Errorf("missing version: got %v, want %s", werr, CodeBadRequest)
	}
	if werr := CheckVersion(99); werr == nil || werr.Code != CodeUnsupportedVersion {
		t.Errorf("future version: got %v, want %s", werr, CodeUnsupportedVersion)
	}
}

// TestDecodeStrictRejects covers the strictness guarantees: unknown
// fields, trailing garbage, malformed graphs.
func TestDecodeStrictRejects(t *testing.T) {
	cases := []struct {
		name, body string
		into       func() any
	}{
		{"unknown field", `{"v":1,"loup_ref":"x"}`, func() any { return &CompileRequest{} }},
		{"trailing data", `{"v":1} {"v":1}`, func() any { return &CompileRequest{} }},
		{"unknown op", `{"name":"g","nodes":[{"name":"a","op":"warp"}],"edges":[]}`,
			func() any { return &ddg.Graph{} }},
		{"unknown node field", `{"name":"g","nodes":[{"name":"a","op":"iadd","opp":"x"}],"edges":[]}`,
			func() any { return &ddg.Graph{} }},
		{"misspelled edge latency", `{"name":"g","nodes":[{"name":"a","op":"iadd"},{"name":"b","op":"iadd"}],"edges":[{"from":0,"to":1,"latncy":3,"kind":"true"}]}`,
			func() any { return &ddg.Graph{} }},
		{"unknown edge kind", `{"name":"g","nodes":[{"name":"a","op":"iadd"}],"edges":[{"from":0,"to":0,"latency":1,"kind":"psychic"}]}`,
			func() any { return &ddg.Graph{} }},
		{"edge out of range", `{"name":"g","nodes":[{"name":"a","op":"iadd"}],"edges":[{"from":0,"to":7,"latency":1,"kind":"true"}]}`,
			func() any { return &ddg.Graph{} }},
		{"distance-0 cycle", `{"name":"g","nodes":[{"name":"a","op":"iadd"},{"name":"b","op":"iadd"}],"edges":[{"from":0,"to":1,"latency":1,"kind":"true"},{"from":1,"to":0,"latency":1,"kind":"true"}]}`,
			func() any { return &ddg.Graph{} }},
	}
	for _, c := range cases {
		if err := DecodeStrict(strings.NewReader(c.body), c.into()); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		}
	}
}

// TestOptionsRejectUnknownNames covers each enum's unknown-name error
// and its wire code.
func TestOptionsRejectUnknownNames(t *testing.T) {
	cases := []struct {
		opts Options
		code string
	}{
		{Options{Scheduler: "magic"}, CodeUnknownScheduler},
		{Options{Strategy: "sometimes"}, CodeUnknownStrategy},
		{Options{Policy: "vibes"}, CodeUnknownPolicy},
		{Options{Factor: -1}, CodeInvalidOptions},
		// Resource-exhaustion guards: a huge II sizes the reservation
		// tables, a huge factor multiplies the graph — both must die at
		// the wire boundary, not in the scheduler's allocator.
		{Options{ForceII: MaxWireII + 1}, CodeInvalidOptions},
		{Options{MaxII: 1 << 30}, CodeInvalidOptions},
		{Options{Factor: MaxWireFactor + 1}, CodeInvalidOptions},
		{Options{Exact: &ExactBudget{MaxNodes: MaxWireExactNodes + 1}}, CodeInvalidOptions},
		{Options{Exact: &ExactBudget{MaxSteps: -1}}, CodeInvalidOptions},
		{Options{Exact: &ExactBudget{MaxII: MaxWireII + 1}}, CodeInvalidOptions},
		{Options{ParallelII: MaxWireParallelII + 1}, CodeInvalidOptions},
		{Options{ParallelII: -1}, CodeInvalidOptions},
	}
	for _, c := range cases {
		if _, werr := c.opts.Core(); werr == nil || werr.Code != c.code {
			t.Errorf("%+v: got %v, want code %s", c.opts, werr, c.code)
		}
	}
}

// TestMachineRejects covers invalid machine decodes.
func TestMachineRejects(t *testing.T) {
	if _, werr := (&Machine{Clusters: 2, Regs: 32, Buses: 1, BusLatency: 1}).Config(); werr == nil || werr.Code != CodeInvalidMachine {
		t.Errorf("machine without fus/hetero: got %v", werr)
	}
	bad := &Machine{Clusters: 0, FUs: &[3]int{1, 1, 1}, Regs: 16}
	if _, werr := bad.Config(); werr == nil || werr.Code != CodeInvalidMachine {
		t.Errorf("zero-cluster machine: got %v", werr)
	}
	both := &Machine{Clusters: 2, FUs: &[3]int{2, 2, 2},
		Hetero: [][3]int{{1, 0, 0}, {1, 0, 0}}, Regs: 16, Buses: 1, BusLatency: 1}
	if _, werr := both.Config(); werr == nil || werr.Code != CodeInvalidMachine {
		t.Errorf("fus+hetero together must be rejected, got %v", werr)
	}
}

// TestCheckLoopCaps covers the inline-loop size guards.
func TestCheckLoopCaps(t *testing.T) {
	big := ddg.New("big")
	for i := 0; i <= MaxWireLoopNodes; i++ {
		big.AddNode(fmt.Sprintf("n%d", i), machine.OpIAdd)
	}
	if werr := CheckLoop(&corpus.Loop{Graph: big}); werr == nil || werr.Code != CodeInvalidLoop {
		t.Errorf("oversize node count: got %v", werr)
	}
	dense := ddg.New("dense")
	a := dense.AddNode("a", machine.OpIAdd)
	b := dense.AddNode("b", machine.OpIAdd)
	for i := 0; i <= MaxWireLoopEdges; i++ {
		dense.AddEdge(a.ID, b.ID, 1, 1, ddg.DepTrue)
	}
	if werr := CheckLoop(&corpus.Loop{Graph: dense}); werr == nil || werr.Code != CodeInvalidLoop {
		t.Errorf("oversize edge count: got %v", werr)
	}
	if werr := CheckLoop(&corpus.Loop{Graph: ddg.SampleDotProduct()}); werr != nil {
		t.Errorf("sample loop rejected: %v", werr)
	}
	if werr := CheckLoop(&corpus.Loop{}); werr == nil || werr.Code != CodeInvalidLoop {
		t.Errorf("nil graph: got %v", werr)
	}
}
