// Conversions between the wire DTOs and the in-process types.  Decoding
// always validates: a Machine that fails machine.Config.Validate or an
// Options with an unknown enum name never reaches the pipeline.

package wire

import (
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/exact"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/unroll"
)

// FromConfig converts a machine configuration to the wire shape.
func FromConfig(c machine.Config) *Machine {
	m := &Machine{
		Name:       c.Name,
		Clusters:   c.NClusters,
		Regs:       c.RegsPerCluster,
		Buses:      c.NBuses,
		BusLatency: c.BusLatency,
	}
	if c.Hetero != nil {
		for _, mix := range c.Hetero {
			m.Hetero = append(m.Hetero, [3]int{
				mix[machine.FUInteger], mix[machine.FUFloat], mix[machine.FUMemory],
			})
		}
	} else {
		fus := [3]int{
			c.FUsPerCluster[machine.FUInteger],
			c.FUsPerCluster[machine.FUFloat],
			c.FUsPerCluster[machine.FUMemory],
		}
		m.FUs = &fus
	}
	return m
}

// Config converts the wire shape to a validated machine configuration.
func (m *Machine) Config() (machine.Config, *Error) {
	c := machine.Config{
		Name:           m.Name,
		NClusters:      m.Clusters,
		RegsPerCluster: m.Regs,
		NBuses:         m.Buses,
		BusLatency:     m.BusLatency,
	}
	if c.Name == "" {
		c.Name = "inline"
	}
	switch {
	case m.Hetero != nil && m.FUs != nil:
		return machine.Config{}, Errorf(CodeInvalidMachine,
			"machine %q: fus and hetero are mutually exclusive", m.Name)
	case m.Hetero != nil:
		for _, mix := range m.Hetero {
			c.Hetero = append(c.Hetero, [machine.NumFUClasses]int{
				machine.FUInteger: mix[0], machine.FUFloat: mix[1], machine.FUMemory: mix[2],
			})
		}
	case m.FUs != nil:
		c.FUsPerCluster = [machine.NumFUClasses]int{
			machine.FUInteger: m.FUs[0], machine.FUFloat: m.FUs[1], machine.FUMemory: m.FUs[2],
		}
	default:
		return machine.Config{}, Errorf(CodeInvalidMachine, "machine %q: one of fus or hetero required", m.Name)
	}
	if err := c.Validate(); err != nil {
		return machine.Config{}, Errorf(CodeInvalidMachine, "%v", err)
	}
	return c, nil
}

// policyNames maps the wire spellings of sched.Policy.
var policyNames = map[string]sched.Policy{
	"profit":      sched.PolicyProfit,
	"round_robin": sched.PolicyRoundRobin,
	"first_fit":   sched.PolicyFirstFit,
}

// policyName returns the wire spelling of a policy.
func policyName(p sched.Policy) string {
	for name, v := range policyNames {
		if v == p {
			return name
		}
	}
	return "profit"
}

// FromOptions converts compile options to the wire shape, spelling only
// the fields that differ from the defaults.  Scheduler and strategy
// names are canonicalized first, so defaults are omitted — and
// non-defaults spelled canonically — however the caller spelled them
// ("", "none" and "no_unroll" all omit; "all" emits "unroll_all").
func FromOptions(o core.Options) *Options {
	w := &Options{Factor: o.Factor, MaxII: o.Sched.MaxII, ForceII: o.Sched.ForceII,
		ParallelII: o.Sched.Parallel}
	if s := engine.CanonicalScheduler(o.Scheduler.String()); s != string(core.BSA) {
		w.Scheduler = s
	}
	if s := engine.CanonicalStrategy(o.Strategy.String()); s != string(core.NoUnroll) {
		w.Strategy = s
	}
	if o.Sched.Policy != sched.PolicyProfit {
		w.Policy = policyName(o.Sched.Policy)
	}
	if o.Exact != (exact.Budget{}) {
		w.Exact = &ExactBudget{
			MaxNodes: o.Exact.MaxNodes,
			MaxSteps: o.Exact.MaxSteps,
			MaxII:    o.Exact.MaxII,
		}
	}
	return w
}

// Wire-boundary caps on client-supplied knobs.  Values past these buy
// no better schedule but scale the scheduler's tables (an II sizes the
// reservation tables, a factor multiplies the graph), so an unbounded
// request could exhaust the daemon's memory; the compile runs
// uninterruptibly once started, beyond the reach of the request
// deadline.  Negative values are rejected rather than given the
// in-process "disable the cap" meaning.
const (
	// MaxWireII bounds max_ii / force_ii / exact.max_ii; far above any
	// schedulable II for graphs that fit MaxWireFactor and the corpus.
	MaxWireII = 4096
	// MaxWireFactor bounds the unroll factor.
	MaxWireFactor = 64
	// MaxWireParallelII bounds parallel_ii; the scheduler additionally
	// clamps to GOMAXPROCS at run time.
	MaxWireParallelII = 64
	// MaxWireExactNodes and MaxWireExactSteps bound the oracle budget.
	MaxWireExactNodes = 64
	MaxWireExactSteps = int64(1_000_000_000)
	// MaxWireLoopNodes and MaxWireLoopEdges bound an inline loop's
	// graph; far above any corpus loop (<= 72 ops) but small enough that
	// even the worst admissible compile stays seconds, not hours.
	MaxWireLoopNodes = 1024
	MaxWireLoopEdges = 8192
	// MaxWireUnrolledNodes bounds nodes x unroll factor, the size of the
	// graph the scheduler actually sees: the per-knob caps compose
	// (1024-node loop x factor 64) into something a daemon must not
	// schedule, so the product is capped where loop and options meet
	// (service request resolution).
	MaxWireUnrolledNodes = 8192
)

// CheckLoop validates an inline loop's size against the wire caps.
func CheckLoop(l *corpus.Loop) *Error {
	if l.Graph == nil || l.Graph.NumNodes() == 0 {
		return Errorf(CodeInvalidLoop, "inline loop has no graph")
	}
	if n := l.Graph.NumNodes(); n > MaxWireLoopNodes {
		return Errorf(CodeInvalidLoop, "inline loop has %d nodes, cap is %d", n, MaxWireLoopNodes)
	}
	if n := l.Graph.NumEdges(); n > MaxWireLoopEdges {
		return Errorf(CodeInvalidLoop, "inline loop has %d edges, cap is %d", n, MaxWireLoopEdges)
	}
	return nil
}

// clampInt rejects values outside [0, max] with an invalid_options
// error naming the field.
func clampInt(name string, v, max int) *Error {
	if v < 0 || v > max {
		return Errorf(CodeInvalidOptions, "%s %d out of range [0, %d]", name, v, max)
	}
	return nil
}

// Core converts the wire shape to validated compile options.  A nil
// receiver is the zero compilation: BSA, no unrolling.
func (o *Options) Core() (core.Options, *Error) {
	var out core.Options
	if o == nil {
		return out, nil
	}
	if o.Scheduler != "" {
		s, err := core.ParseScheduler(o.Scheduler)
		if err != nil {
			return out, Errorf(CodeUnknownScheduler, "%v", err)
		}
		out.Scheduler = s
	}
	if o.Strategy != "" {
		s, err := core.ParseStrategy(o.Strategy)
		if err != nil {
			return out, Errorf(CodeUnknownStrategy, "%v", err)
		}
		out.Strategy = s
	}
	if o.Policy != "" {
		p, ok := policyNames[o.Policy]
		if !ok {
			return out, Errorf(CodeUnknownPolicy,
				"unknown policy %q (want profit, round_robin or first_fit)", o.Policy)
		}
		out.Sched.Policy = p
	}
	for _, c := range []struct {
		name string
		v    int
		max  int
	}{
		{"factor", o.Factor, MaxWireFactor},
		{"max_ii", o.MaxII, MaxWireII},
		{"force_ii", o.ForceII, MaxWireII},
		{"parallel_ii", o.ParallelII, MaxWireParallelII},
	} {
		if werr := clampInt(c.name, c.v, c.max); werr != nil {
			return out, werr
		}
	}
	out.Factor = o.Factor
	out.Sched.MaxII = o.MaxII
	out.Sched.ForceII = o.ForceII
	out.Sched.Parallel = o.ParallelII
	if o.Exact != nil {
		if werr := clampInt("exact.max_nodes", o.Exact.MaxNodes, MaxWireExactNodes); werr != nil {
			return out, werr
		}
		if werr := clampInt("exact.max_ii", o.Exact.MaxII, MaxWireII); werr != nil {
			return out, werr
		}
		if o.Exact.MaxSteps < 0 || o.Exact.MaxSteps > MaxWireExactSteps {
			return out, Errorf(CodeInvalidOptions, "exact.max_steps %d out of range [0, %d]",
				o.Exact.MaxSteps, MaxWireExactSteps)
		}
		out.Exact = exact.Budget{
			MaxNodes: o.Exact.MaxNodes,
			MaxSteps: o.Exact.MaxSteps,
			MaxII:    o.Exact.MaxII,
		}
	}
	return out, nil
}

// FromResult converts a finished compilation to the wire shape.
func FromResult(r *core.Result) *Result {
	s := r.Schedule
	out := &Result{
		Graph:       s.Graph.Name,
		II:          s.II,
		MinII:       s.MinII,
		IterationII: r.IterationII(),
		Factor:      r.Factor,
		StageCount:  s.SC(),
		BusLimited:  s.BusLimited,
		FellBack:    r.FellBack,
		MaxLive:     s.MaxLive(),
		Placements:  make([]Placement, 0, len(s.Placements)),
	}
	for _, p := range s.Placements {
		out.Placements = append(out.Placements, Placement{
			Node: p.Node, Cluster: p.Cluster, FU: p.FU, Cycle: p.Cycle,
		})
	}
	for _, t := range s.Transfers {
		out.Transfers = append(out.Transfers, Transfer{
			Producer: t.Producer, From: t.From, To: t.To, Bus: t.Bus, Start: t.Start,
		})
	}
	if len(s.Causes) > 0 {
		out.Causes = make(map[string]int, len(s.Causes))
		for cause, n := range s.Causes {
			out.Causes[cause.String()] = n
		}
	}
	if r.Decision != (unroll.Decision{}) {
		out.Decision = &Decision{
			Unrolled:      r.Decision.Unrolled,
			Factor:        r.Decision.Factor,
			BusLimited:    r.Decision.BusLimited,
			ComNeeded:     r.Decision.ComNeeded,
			CycNeeded:     r.Decision.CycNeeded,
			UnrolledMinII: r.Decision.UnrolledMinII,
			FailReason:    r.Decision.FailReason,
		}
	}
	if r.Exact != nil {
		out.Exact = &Exact{
			Proved:     r.Exact.Proved,
			LowerBound: r.Exact.LowerBound,
			Steps:      r.Exact.Steps,
		}
	}
	out.Policy = r.Policy
	out.Stages = FromTelemetry(r.Stages)
	return out
}

// FromTelemetry converts the engine's stage telemetry to the wire
// shape; nil in, nil out.
func FromTelemetry(t *engine.Telemetry) *Stages {
	if t == nil {
		return nil
	}
	out := &Stages{
		Scheduler:    t.Scheduler,
		Policy:       t.Policy,
		Winner:       t.Winner,
		TotalNS:      int64(t.Total),
		Stages:       make([]StageTiming, 0, len(t.Stages)),
		Attempts:     t.Attempts,
		IITrajectory: t.Trajectory,
	}
	for _, s := range t.Stages {
		out.Stages = append(out.Stages, StageTiming{
			Name: string(s.Name), NS: int64(s.Duration), Calls: s.Calls,
		})
	}
	for _, c := range t.Candidates {
		out.Candidates = append(out.Candidates, CandidateOutcome{
			Strategy: c.Strategy, IterationII: c.IterationII, Error: c.Err, Won: c.Won,
		})
	}
	return out
}
