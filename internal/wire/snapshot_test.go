package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/pipeline"
)

// snapshotFixture compiles a varied set of requests into a fresh
// pipeline: a plain BSA compile, an unrolled one (so the snapshot
// carries a decision and an unrolled graph) and an exact-oracle run
// (proof metadata).
func snapshotFixture(t *testing.T) (*pipeline.Pipeline, []pipeline.Request) {
	t.Helper()
	p := pipeline.New(1)
	reqs := []pipeline.Request{
		{Loop: &corpus.Loop{Graph: ddg.SampleFigure7(), Bench: "fixture"},
			Cfg: machine.FourCluster(1, 4)},
		{Loop: &corpus.Loop{Graph: ddg.SampleDotProduct(), Bench: "fixture"},
			Cfg:  machine.TwoCluster(1, 1),
			Opts: core.Options{Strategy: core.UnrollAll, Factor: 2}},
		{Loop: &corpus.Loop{Graph: ddg.SampleDotProduct(), Bench: "fixture"},
			Cfg:  machine.TwoCluster(1, 1),
			Opts: core.Options{Scheduler: core.Exact}},
	}
	for i, req := range reqs {
		if _, err := p.Compile(req); err != nil {
			t.Fatalf("fixture compile %d: %v", i, err)
		}
	}
	return p, reqs
}

// TestSnapshotRoundTripBytes proves save → load → save reproduces the
// snapshot byte for byte: every field FromResult derives (stage count,
// max_live, iteration_ii, causes, telemetry) survives the reverse
// conversion exactly.
func TestSnapshotRoundTripBytes(t *testing.T) {
	p, _ := snapshotFixture(t)

	var first bytes.Buffer
	n, err := SaveCache(&first, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(p.Export()); n != want {
		t.Fatalf("SaveCache wrote %d rows, Export has %d", n, want)
	}

	restored := pipeline.New(1)
	seeded, err := LoadCache(bytes.NewReader(first.Bytes()), restored)
	if err != nil {
		t.Fatal(err)
	}
	if seeded != n {
		t.Fatalf("LoadCache seeded %d of %d rows", seeded, n)
	}
	if got := restored.Stats().Seeded; got != int64(n) {
		t.Errorf("Stats().Seeded = %d, want %d", got, n)
	}

	var second bytes.Buffer
	if _, err := SaveCache(&second, restored); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("snapshot not byte-identical after restore:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}

	// Loading the same snapshot again seeds nothing: live entries win.
	again, err := LoadCache(bytes.NewReader(first.Bytes()), restored)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Errorf("re-load seeded %d rows over live entries", again)
	}
}

// TestSnapshotWarmStartServesWithoutCompiling proves the warm-start
// premise: a restored pipeline answers the original requests from
// cache, never invoking the compiler.
func TestSnapshotWarmStartServesWithoutCompiling(t *testing.T) {
	p, reqs := snapshotFixture(t)
	var snap bytes.Buffer
	if _, err := SaveCache(&snap, p); err != nil {
		t.Fatal(err)
	}

	warm := pipeline.New(1)
	if _, err := LoadCache(bytes.NewReader(snap.Bytes()), warm); err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		got, err := warm.Compile(req)
		if err != nil {
			t.Fatalf("warm compile %d: %v", i, err)
		}
		want, err := p.Compile(req)
		if err != nil {
			t.Fatal(err)
		}
		g, w := FromResult(got), FromResult(want)
		gb, _ := json.Marshal(g)
		wb, _ := json.Marshal(w)
		if !bytes.Equal(gb, wb) {
			t.Errorf("request %d: warm result differs from original:\n got %s\nwant %s", i, gb, wb)
		}
	}
	st := warm.Stats()
	if st.Compilations != 0 {
		t.Errorf("warm pipeline compiled %d times; want 0 (all cache hits)", st.Compilations)
	}
	if st.Hits != int64(len(reqs)) {
		t.Errorf("warm pipeline hits = %d, want %d", st.Hits, len(reqs))
	}
}

// TestSnapshotRejectsCorruptRows proves the loader's cross-checks: a
// row whose derived fields disagree with its placements, or whose
// enums are unknown, aborts the load with an error naming the line.
func TestSnapshotRejectsCorruptRows(t *testing.T) {
	p, _ := snapshotFixture(t)
	var snap bytes.Buffer
	if _, err := SaveCache(&snap, p); err != nil {
		t.Fatal(err)
	}
	row := strings.SplitN(snap.String(), "\n", 2)[0]

	corrupt := func(t *testing.T, old, new, wantErr string) {
		t.Helper()
		tampered := strings.Replace(row, old, new, 1)
		if tampered == row {
			t.Fatalf("fixture row does not contain %q", old)
		}
		fresh := pipeline.New(1)
		_, err := LoadCache(strings.NewReader(tampered), fresh)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("tampering %q -> %q: got error %v, want %q", old, new, err, wantErr)
		}
	}

	t.Run("stage_count", func(t *testing.T) {
		corrupt(t, `"stage_count":`, `"stage_count":9`, "stage count")
	})
	t.Run("unknown_field", func(t *testing.T) {
		corrupt(t, `"key":`, `"keey":`, "unknown field")
	})
	t.Run("graph_name", func(t *testing.T) {
		var e CacheEntry
		if err := json.Unmarshal([]byte(row), &e); err != nil {
			t.Fatal(err)
		}
		e.Result.Graph += "-renamed"
		fresh := pipeline.New(1)
		b, _ := json.Marshal(&e)
		if _, err := LoadCache(bytes.NewReader(append(b, '\n')), fresh); err == nil ||
			!strings.Contains(err.Error(), "names graph") {
			t.Errorf("renamed result graph: got %v, want graph-name mismatch", err)
		}
	})
	t.Run("truncated_placements", func(t *testing.T) {
		var e CacheEntry
		if err := json.Unmarshal([]byte(row), &e); err != nil {
			t.Fatal(err)
		}
		e.Result.Placements = e.Result.Placements[:1]
		fresh := pipeline.New(1)
		b, _ := json.Marshal(&e)
		if _, err := LoadCache(bytes.NewReader(append(b, '\n')), fresh); err == nil ||
			!strings.Contains(err.Error(), "placements") {
			t.Errorf("truncated placements: got %v, want placement-count mismatch", err)
		}
	})
}

// TestKeyFingerprintMatchesGraph pins the routing contract: the
// fingerprint prefix of a pipeline cache key is the loop graph's
// content fingerprint, so consistent-hash routing and the cache agree
// on identity.
func TestKeyFingerprintMatchesGraph(t *testing.T) {
	p, reqs := snapshotFixture(t)
	fps := map[string]bool{}
	for _, req := range reqs {
		fps[req.Loop.Graph.Fingerprint()] = true
	}
	for _, e := range p.Export() {
		if fp := pipeline.KeyFingerprint(e.Key); !fps[fp] {
			t.Errorf("key %q has fingerprint prefix %q, not any fixture graph's", e.Key, fp)
		}
	}
}
