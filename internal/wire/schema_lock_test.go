package wire

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// schemaTypes is every exported wire DTO, in wire.go declaration
// order.  TestSchemaComplete fails if a struct is declared in the
// package but missing here, so a new DTO cannot dodge the lock.
var schemaTypes = []any{
	Error{},
	ErrorResponse{},
	CompileRequest{},
	CompileResponse{},
	BatchRequest{},
	BatchItem{},
	Machine{},
	Options{},
	ExactBudget{},
	Result{},
	Stages{},
	StageTiming{},
	CandidateOutcome{},
	Placement{},
	Transfer{},
	Decision{},
	Exact{},
	CapabilitiesResponse{},
	StrategyFamily{},
	StatsResponse{},
	PipelineStats{},
	ServiceStats{},
	EngineHealth{},
	HistogramBucket{},
	CacheEntry{},
}

// TestSchemaLock renders every DTO's field set — Go name, Go type,
// full json tag — and compares it against testdata/schema.golden.  A
// diff here is a wire-format change: within version 1 only
// backward-compatible growth (new optional fields) is allowed, and
// anything else must bump wire.Version.  Regenerate deliberately with
// `go test ./internal/wire -run TestSchemaLock -update`.
func TestSchemaLock(t *testing.T) {
	got := renderSchema()
	const golden = "testdata/schema.golden"
	if *update { // the package-wide golden -update flag (wire_test.go)
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", golden, err)
	}
	if got != string(want) {
		t.Errorf("wire schema drifted from %s.\nA deliberate, backward-compatible change must regenerate the golden with -update;\nanything else is a format break and must bump wire.Version.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

func renderSchema() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wire schema lock (version %d)\n", Version)
	for _, v := range schemaTypes {
		rt := reflect.TypeOf(v)
		fmt.Fprintf(&b, "\n%s struct {\n", rt.Name())
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			if !f.IsExported() {
				continue
			}
			fmt.Fprintf(&b, "\t%s %s `json:%q`\n", f.Name, f.Type.String(), f.Tag.Get("json"))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// TestSchemaComplete parses the package source and fails if an
// exported struct type exists that schemaTypes does not cover.
func TestSchemaComplete(t *testing.T) {
	covered := map[string]bool{}
	for _, v := range schemaTypes {
		covered[reflect.TypeOf(v).Name()] = true
	}

	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); !ok {
					continue
				}
				if !covered[ts.Name.Name] {
					missing = append(missing, ts.Name.Name)
				}
			}
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("exported wire structs missing from the schema lock: %s\n(add them to schemaTypes in schema_lock_test.go and regenerate with -update)", strings.Join(missing, ", "))
	}
}
