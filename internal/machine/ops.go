package machine

import "fmt"

// OpClass identifies the kind of operation a DDG node performs.  Each
// class maps to exactly one FUClass and has a fixed result latency.
type OpClass int

// Operation classes.  Table 1 of the paper lists the latencies; the OCR
// of the table is unreadable, so we use the latencies of the SMS /
// ICTINEO papers from the same group (documented in DESIGN.md): integer
// ops 1 cycle, loads 2, stores 1, FP add/sub 3, FP multiply 4, FP divide
// 17 (fully pipelined units).
const (
	OpIAdd  OpClass = iota // integer add/sub/logic/compare
	OpIMul                 // integer multiply
	OpLoad                 // memory load
	OpStore                // memory store (produces no register value)
	OpFAdd                 // FP add/sub/convert
	OpFMul                 // FP multiply
	OpFDiv                 // FP divide / sqrt
	NumOpClasses
)

var opInfo = [NumOpClasses]struct {
	name    string
	fu      FUClass
	latency int
	value   bool // produces a register value
}{
	OpIAdd:  {"iadd", FUInteger, 1, true},
	OpIMul:  {"imul", FUInteger, 2, true},
	OpLoad:  {"load", FUMemory, 2, true},
	OpStore: {"store", FUMemory, 1, false},
	OpFAdd:  {"fadd", FUFloat, 3, true},
	OpFMul:  {"fmul", FUFloat, 4, true},
	OpFDiv:  {"fdiv", FUFloat, 17, true},
}

// Valid reports whether the class is one of the defined operations.
func (o OpClass) Valid() bool { return o >= 0 && o < NumOpClasses }

// String returns the mnemonic of the class.
func (o OpClass) String() string {
	if !o.Valid() {
		return fmt.Sprintf("OpClass(%d)", int(o))
	}
	return opInfo[o].name
}

// FU returns the functional-unit class that executes this operation.
func (o OpClass) FU() FUClass {
	if !o.Valid() {
		panic(fmt.Sprintf("machine: invalid op class %d", int(o)))
	}
	return opInfo[o].fu
}

// Latency returns the number of cycles before the result is available to
// a dependent operation.
func (o OpClass) Latency() int {
	if !o.Valid() {
		panic(fmt.Sprintf("machine: invalid op class %d", int(o)))
	}
	return opInfo[o].latency
}

// ProducesValue reports whether the operation writes a register (stores
// do not, so they create no lifetime and never need a bus transfer of
// their own result).
func (o OpClass) ProducesValue() bool {
	if !o.Valid() {
		panic(fmt.Sprintf("machine: invalid op class %d", int(o)))
	}
	return opInfo[o].value
}

// OpClassByName resolves a mnemonic to its class, for the IR parser.
// It returns false if the mnemonic is unknown.
func OpClassByName(name string) (OpClass, bool) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		if opInfo[c].name == name {
			return c, true
		}
	}
	return 0, false
}
