package machine

import (
	"strings"
	"testing"
)

func TestPaperConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{Unified(), TwoCluster(1, 1), FourCluster(2, 4)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: unexpected Validate error: %v", cfg.Name, err)
		}
	}
}

func TestPaperConfigsAreTwelveIssue(t *testing.T) {
	// Table 1: all three configurations are 12-way issue in total.
	for _, cfg := range []Config{Unified(), TwoCluster(1, 1), FourCluster(1, 1)} {
		if got := cfg.TotalIssueWidth(); got != 12 {
			t.Errorf("%s: total issue width = %d, want 12", cfg.Name, got)
		}
	}
}

func TestTotalRegistersMatchTable1(t *testing.T) {
	cases := []struct {
		cfg  Config
		regs int
	}{
		{Unified(), 64},
		{TwoCluster(1, 1), 32},
		{FourCluster(1, 1), 16},
	}
	for _, c := range cases {
		if c.cfg.RegsPerCluster != c.regs {
			t.Errorf("%s: regs/cluster = %d, want %d", c.cfg.Name, c.cfg.RegsPerCluster, c.regs)
		}
		// Total register budget is 64 in every configuration.
		if got := c.cfg.RegsPerCluster * c.cfg.NClusters; got != 64 {
			t.Errorf("%s: total regs = %d, want 64", c.cfg.Name, got)
		}
	}
}

func TestTotalFUs(t *testing.T) {
	cfg := FourCluster(1, 1)
	for class := FUClass(0); class < NumFUClasses; class++ {
		if got := cfg.TotalFUs(class); got != 4 {
			t.Errorf("4-cluster total %s FUs = %d, want 4", class, got)
		}
	}
	u := Unified()
	if got := u.TotalFUs(FUFloat); got != 4 {
		t.Errorf("unified total FP FUs = %d, want 4", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "no-clusters", NClusters: 0, RegsPerCluster: 8, FUsPerCluster: [NumFUClasses]int{1, 1, 1}},
		{Name: "no-regs", NClusters: 1, RegsPerCluster: 0, FUsPerCluster: [NumFUClasses]int{1, 1, 1}},
		{Name: "no-bus", NClusters: 2, RegsPerCluster: 8, FUsPerCluster: [NumFUClasses]int{1, 1, 1}},
		{Name: "no-buslat", NClusters: 2, NBuses: 1, RegsPerCluster: 8, FUsPerCluster: [NumFUClasses]int{1, 1, 1}},
		{Name: "no-fus", NClusters: 1, RegsPerCluster: 8},
		{Name: "neg-fus", NClusters: 1, RegsPerCluster: 8, FUsPerCluster: [NumFUClasses]int{-1, 2, 2}},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", cfg.Name)
		}
	}
}

func TestWithBusesAndLatency(t *testing.T) {
	cfg := TwoCluster(1, 1)
	got := cfg.WithBuses(4)
	if got.NBuses != 4 || got.BusLatency != 1 {
		t.Errorf("WithBuses(4) = %+v, want 4 buses, latency 1", got)
	}
	if cfg.NBuses != 1 {
		t.Error("WithBuses mutated the receiver")
	}
	got2 := cfg.WithBusLatency(2)
	if got2.BusLatency != 2 || got2.NBuses != 1 {
		t.Errorf("WithBusLatency(2) = %+v, want latency 2, 1 bus", got2)
	}
}

func TestSlotsPerInstruction(t *testing.T) {
	// Unified: 12 FU fields, no bus fields.
	if got := Unified().SlotsPerInstruction(); got != 12 {
		t.Errorf("unified slots = %d, want 12", got)
	}
	// 2-cluster: (6 FUs + IN + OUT) * 2 = 16.
	if got := TwoCluster(1, 1).SlotsPerInstruction(); got != 16 {
		t.Errorf("2-cluster slots = %d, want 16", got)
	}
	// 4-cluster: (3 FUs + IN + OUT) * 4 = 20.
	if got := FourCluster(1, 1).SlotsPerInstruction(); got != 20 {
		t.Errorf("4-cluster slots = %d, want 20", got)
	}
}

func TestOpClassProperties(t *testing.T) {
	cases := []struct {
		op    OpClass
		fu    FUClass
		lat   int
		value bool
	}{
		{OpIAdd, FUInteger, 1, true},
		{OpIMul, FUInteger, 2, true},
		{OpLoad, FUMemory, 2, true},
		{OpStore, FUMemory, 1, false},
		{OpFAdd, FUFloat, 3, true},
		{OpFMul, FUFloat, 4, true},
		{OpFDiv, FUFloat, 17, true},
	}
	for _, c := range cases {
		if c.op.FU() != c.fu {
			t.Errorf("%s: FU = %s, want %s", c.op, c.op.FU(), c.fu)
		}
		if c.op.Latency() != c.lat {
			t.Errorf("%s: latency = %d, want %d", c.op, c.op.Latency(), c.lat)
		}
		if c.op.ProducesValue() != c.value {
			t.Errorf("%s: ProducesValue = %v, want %v", c.op, c.op.ProducesValue(), c.value)
		}
	}
}

func TestOpClassByName(t *testing.T) {
	for c := OpClass(0); c < NumOpClasses; c++ {
		got, ok := OpClassByName(c.String())
		if !ok || got != c {
			t.Errorf("OpClassByName(%q) = %v,%v; want %v,true", c.String(), got, ok, c)
		}
	}
	if _, ok := OpClassByName("bogus"); ok {
		t.Error("OpClassByName accepted an unknown mnemonic")
	}
}

func TestStringDescriptions(t *testing.T) {
	u := Unified()
	if s := u.String(); !strings.Contains(s, "unified") || !strings.Contains(s, "64") {
		t.Errorf("unified description missing fields: %q", s)
	}
	c := FourCluster(2, 4)
	s := c.String()
	for _, want := range []string{"4x", "16 regs", "2 bus", "lat 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("4-cluster description %q missing %q", s, want)
		}
	}
	if FUInteger.String() != "INT" || FUFloat.String() != "FP" || FUMemory.String() != "MEM" {
		t.Error("FUClass names changed")
	}
}

func TestInvalidOpClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("OpClass(99).FU() did not panic")
		}
	}()
	_ = OpClass(99).FU()
}

func TestHeteroString(t *testing.T) {
	cfg := Config{
		Name: "h", NClusters: 2, RegsPerCluster: 16, NBuses: 1, BusLatency: 1,
		Hetero: [][NumFUClasses]int{{2, 1, 2}, {0, 3, 1}},
	}
	s := cfg.String()
	for _, want := range []string{"(2 INT,1 FP,2 MEM)", "(0 INT,3 FP,1 MEM)", "16 regs"} {
		if !strings.Contains(s, want) {
			t.Errorf("hetero description %q missing %q", s, want)
		}
	}
}

func TestTable1Configs(t *testing.T) {
	cfgs := Table1Configs()
	if len(cfgs) != 9 {
		t.Fatalf("Table1Configs has %d entries, want 9 (unified + 2/4 clusters x B1/B2 x L1/L2)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		if cfg.TotalIssueWidth() != 12 {
			t.Errorf("%s: issue width %d, want 12", cfg.Name, cfg.TotalIssueWidth())
		}
		if seen[cfg.Name] {
			t.Errorf("duplicate config %s", cfg.Name)
		}
		seen[cfg.Name] = true
	}
}
