// Package machine describes the clustered VLIW target of Sánchez &
// González (ICPP 2000): a set of homogeneous clusters, each with its own
// integer, floating-point and memory functional units plus a local
// register file, connected by one or more shared buses.
//
// A Config is a pure value object; the scheduler, emitter, simulator and
// timing model all consume it.  The three configurations evaluated in the
// paper (unified, 2-cluster, 4-cluster — all 12-issue) are provided as
// constructors, but arbitrary homogeneous configurations can be built
// directly.
package machine

import (
	"fmt"
	"strings"
)

// FUClass identifies one of the three functional-unit types of the
// architecture.  Every cluster owns FUs of every class.
type FUClass int

// The functional-unit classes of the paper's machine model.
const (
	FUInteger FUClass = iota // integer ALUs
	FUFloat                  // floating-point units
	FUMemory                 // load/store units
	NumFUClasses
)

// String returns the conventional short name of the FU class.
func (c FUClass) String() string {
	switch c {
	case FUInteger:
		return "INT"
	case FUFloat:
		return "FP"
	case FUMemory:
		return "MEM"
	default:
		return fmt.Sprintf("FUClass(%d)", int(c))
	}
}

// Config describes one clustered VLIW machine.  The zero value is not
// usable; build one with a constructor or fill every field.
type Config struct {
	// Name labels the configuration in reports ("unified", "2-cluster"...).
	Name string

	// NClusters is the number of homogeneous clusters (1 = unified).
	NClusters int

	// FUsPerCluster holds the number of functional units of each class
	// inside one cluster, indexed by FUClass.
	FUsPerCluster [NumFUClasses]int

	// RegsPerCluster is the capacity of each local register file.  The
	// schedulers never generate spill code: a cluster whose MaxLive would
	// exceed this bound is not a valid placement.
	RegsPerCluster int

	// NBuses is the number of shared inter-cluster buses.  Irrelevant
	// (and conventionally zero) when NClusters == 1.
	NBuses int

	// BusLatency is the number of cycles a value needs to cross a bus.
	// The bus is busy for the entire latency (paper §3), so a transfer
	// occupies BusLatency consecutive modulo-reservation slots.
	BusLatency int

	// Hetero, when non-nil, makes the machine non-homogeneous (the
	// generalisation the paper's §3 mentions): Hetero[c][class] is
	// cluster c's unit count and overrides FUsPerCluster, which is then
	// ignored.  Its length must equal NClusters.  Register files stay
	// uniform.
	Hetero [][NumFUClasses]int
}

// FUs returns the number of functional units of the class in the given
// cluster — the single capacity accessor every consumer (reservation
// table, validator, emitter, simulator) uses, so heterogeneous
// configurations work throughout.
func (c Config) FUs(cluster int, class FUClass) int {
	if c.Hetero != nil {
		return c.Hetero[cluster][class]
	}
	return c.FUsPerCluster[class]
}

// ClusterIssueWidth returns the operation slots per cycle of one
// cluster.
func (c Config) ClusterIssueWidth(cluster int) int {
	w := 0
	for class := FUClass(0); class < NumFUClasses; class++ {
		w += c.FUs(cluster, class)
	}
	return w
}

// Validate reports an error describing the first ill-formed field, or nil.
func (c Config) Validate() error {
	switch {
	case c.NClusters < 1:
		return fmt.Errorf("machine: config %q: NClusters = %d, want >= 1", c.Name, c.NClusters)
	case c.RegsPerCluster < 1:
		return fmt.Errorf("machine: config %q: RegsPerCluster = %d, want >= 1", c.Name, c.RegsPerCluster)
	case c.NClusters > 1 && c.NBuses < 1:
		return fmt.Errorf("machine: config %q: clustered machine needs >= 1 bus, got %d", c.Name, c.NBuses)
	case c.NClusters > 1 && c.BusLatency < 1:
		return fmt.Errorf("machine: config %q: BusLatency = %d, want >= 1", c.Name, c.BusLatency)
	}
	if c.Hetero != nil && len(c.Hetero) != c.NClusters {
		return fmt.Errorf("machine: config %q: Hetero has %d entries for %d clusters",
			c.Name, len(c.Hetero), c.NClusters)
	}
	for cl := 0; cl < c.NClusters; cl++ {
		total := 0
		for class := FUClass(0); class < NumFUClasses; class++ {
			n := c.FUs(cl, class)
			if n < 0 {
				return fmt.Errorf("machine: config %q: cluster %d has negative %s count",
					c.Name, cl, class)
			}
			total += n
		}
		if total == 0 {
			return fmt.Errorf("machine: config %q: cluster %d has no functional units", c.Name, cl)
		}
	}
	return nil
}

// TotalFUs returns the machine-wide number of FUs of the given class.
func (c Config) TotalFUs(class FUClass) int {
	total := 0
	for cl := 0; cl < c.NClusters; cl++ {
		total += c.FUs(cl, class)
	}
	return total
}

// IssueWidth returns the number of operation slots per cluster per
// cycle (bus fields excluded); for heterogeneous machines it is the
// widest cluster (the one that bounds the cycle time).
func (c Config) IssueWidth() int {
	w := 0
	for cl := 0; cl < c.NClusters; cl++ {
		if cw := c.ClusterIssueWidth(cl); cw > w {
			w = cw
		}
	}
	return w
}

// TotalIssueWidth returns the machine-wide operation slots per cycle.
func (c Config) TotalIssueWidth() int {
	w := 0
	for cl := 0; cl < c.NClusters; cl++ {
		w += c.ClusterIssueWidth(cl)
	}
	return w
}

// SlotsPerInstruction returns the number of operation fields in one VLIW
// instruction word, including the IN-BUS and OUT-BUS fields of every
// cluster (Figure 3 of the paper shows one of each per cluster).  Used by
// the code-size study: fields not carrying a useful operation are NOPs.
func (c Config) SlotsPerInstruction() int {
	slots := 0
	for cl := 0; cl < c.NClusters; cl++ {
		slots += c.ClusterIssueWidth(cl)
		if c.NClusters > 1 {
			slots += 2 // IN BUS + OUT BUS fields
		}
	}
	return slots
}

// Clustered reports whether the machine has more than one cluster.
//
//vliw:allocfree
func (c Config) Clustered() bool { return c.NClusters > 1 }

// WithBuses returns a copy of the configuration with a different number
// of buses.  Convenient for the Figure 4 sweep.
func (c Config) WithBuses(n int) Config {
	c.Name = fmt.Sprintf("%s/B%d", baseName(c.Name), n)
	c.NBuses = n
	return c
}

// WithBusLatency returns a copy with a different bus latency.
func (c Config) WithBusLatency(l int) Config {
	c.Name = fmt.Sprintf("%s/L%d", baseName(c.Name), l)
	c.BusLatency = l
	return c
}

func baseName(name string) string {
	if i := strings.IndexAny(name, "/"); i >= 0 {
		return name[:i]
	}
	return name
}

// String returns a compact human-readable description.
func (c Config) String() string {
	if c.Hetero != nil {
		var parts []string
		for cl := 0; cl < c.NClusters; cl++ {
			parts = append(parts, fmt.Sprintf("(%d INT,%d FP,%d MEM)",
				c.FUs(cl, FUInteger), c.FUs(cl, FUFloat), c.FUs(cl, FUMemory)))
		}
		return fmt.Sprintf("%s: %s %d regs/cl, %d bus(es) lat %d",
			c.Name, strings.Join(parts, "+"), c.RegsPerCluster, c.NBuses, c.BusLatency)
	}
	if !c.Clustered() {
		return fmt.Sprintf("%s: 1x(%d INT,%d FP,%d MEM) %d regs",
			c.Name, c.FUsPerCluster[FUInteger], c.FUsPerCluster[FUFloat],
			c.FUsPerCluster[FUMemory], c.RegsPerCluster)
	}
	return fmt.Sprintf("%s: %dx(%d INT,%d FP,%d MEM) %d regs/cl, %d bus(es) lat %d",
		c.Name, c.NClusters, c.FUsPerCluster[FUInteger], c.FUsPerCluster[FUFloat],
		c.FUsPerCluster[FUMemory], c.RegsPerCluster, c.NBuses, c.BusLatency)
}

// Unified returns the paper's baseline: one cluster with four FUs of each
// class and a single 64-entry register file (Table 1).
func Unified() Config {
	return Config{
		Name:           "unified",
		NClusters:      1,
		FUsPerCluster:  [NumFUClasses]int{4, 4, 4},
		RegsPerCluster: 64,
	}
}

// TwoCluster returns the paper's 2-cluster configuration: two FUs of each
// class and 32 registers per cluster (Table 1), with the requested bus
// count and latency.
func TwoCluster(buses, busLat int) Config {
	return Config{
		Name:           fmt.Sprintf("2-cluster/B%d/L%d", buses, busLat),
		NClusters:      2,
		FUsPerCluster:  [NumFUClasses]int{2, 2, 2},
		RegsPerCluster: 32,
		NBuses:         buses,
		BusLatency:     busLat,
	}
}

// Table1Configs returns every machine configuration the paper's
// evaluation visits: the unified baseline plus the 2- and 4-cluster
// machines at one and two buses, bus latencies 1 and 2.  Sweeps (the
// differential tests, cmd/vliwsched's batch mode) iterate over it.
func Table1Configs() []Config {
	cfgs := []Config{Unified()}
	for _, buses := range []int{1, 2} {
		for _, lat := range []int{1, 2} {
			cfgs = append(cfgs, TwoCluster(buses, lat), FourCluster(buses, lat))
		}
	}
	return cfgs
}

// ConfigByName resolves one of the Table 1 configuration names
// ("unified", "2-cluster/B1/L2", "4-cluster/B2/L1", ...) to its Config;
// it returns false for unknown names.  These are the machine_ref names
// of the service wire format — the daemon indexes Table1Configs once
// at startup rather than calling this per request, and the wire tests
// pin the two resolution paths to each other.
func ConfigByName(name string) (Config, bool) {
	for _, c := range Table1Configs() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// FourCluster returns the paper's 4-cluster configuration: one FU of each
// class and 16 registers per cluster (Table 1).
func FourCluster(buses, busLat int) Config {
	return Config{
		Name:           fmt.Sprintf("4-cluster/B%d/L%d", buses, busLat),
		NClusters:      4,
		FUsPerCluster:  [NumFUClasses]int{1, 1, 1},
		RegsPerCluster: 16,
		NBuses:         buses,
		BusLatency:     busLat,
	}
}
