// Package timing estimates cycle times for the paper's configurations
// with a Palacharla-style delay model (Complexity-Effective Superscalar
// Processors, ISCA 1997) at the paper's 0.18 µm technology point.  The
// paper's Table 2 derives each configuration's cycle time as
//
//	cycle = max(bypass delay, register file access time)
//
// where the bypass network grows quadratically with the functional units
// it spans (wire length across all result buses) and the register file
// grows with its size and quadratically with its port count (each port
// widens every cell, lengthening word and bit lines in both dimensions).
//
// The paper's own table is unreadable in the source scan, so the
// coefficients below are fitted to the published anchor points instead:
// a 12-FU unified machine is bypass/RF bound several times slower than a
// 3-FU cluster, such that the 4-cluster/1-bus machine ends up ~3.6x
// faster at IPC parity (the paper's headline).  Only ratios matter for
// Figure 9; absolute picoseconds are indicative.
package timing

import (
	"fmt"

	"repro/internal/machine"
)

// Model holds the fitted delay coefficients (picoseconds at 0.18 µm).
type Model struct {
	// BypassPerFU2 scales the quadratic bypass term: t = BypassPerFU2 * nFU².
	BypassPerFU2 float64
	// RFBase is the register file's fixed overhead (decoder, sense amps).
	RFBase float64
	// RFPerReg scales the linear bit-line term.
	RFPerReg float64
	// RFPerPort2 scales the quadratic port term.
	RFPerPort2 float64
}

// DefaultModel returns the calibrated 0.18 µm model used by Table 2 and
// Figure 9.
func DefaultModel() Model {
	return Model{
		BypassPerFU2: 6.0,
		RFBase:       150.0,
		RFPerReg:     2.0,
		RFPerPort2:   0.5,
	}
}

// Ports returns the register-file port count of one cluster: two read
// and one write port per functional unit, plus one read and one write
// port per bus (paper §6.3).
func Ports(cfg *machine.Config) int {
	ports := 3 * cfg.IssueWidth()
	if cfg.Clustered() {
		ports += 2 * cfg.NBuses
	}
	return ports
}

// Bypass returns the bypass-network delay of one cluster in picoseconds.
func (m Model) Bypass(cfg *machine.Config) float64 {
	n := float64(cfg.IssueWidth())
	return m.BypassPerFU2 * n * n
}

// RegFile returns the local register file access time in picoseconds.
func (m Model) RegFile(cfg *machine.Config) float64 {
	p := float64(Ports(cfg))
	return m.RFBase + m.RFPerReg*float64(cfg.RegsPerCluster) + m.RFPerPort2*p*p
}

// CycleTime returns the configuration's cycle time in picoseconds: the
// slower of the bypass network and the register file.
func (m Model) CycleTime(cfg *machine.Config) float64 {
	b, r := m.Bypass(cfg), m.RegFile(cfg)
	if b > r {
		return b
	}
	return r
}

// Speedup converts relative IPC into wall-clock speedup over a baseline:
//
//	speedup = (ipc / baseIPC) * (baseCycle / cycle)
func (m Model) Speedup(cfg, base *machine.Config, ipc, baseIPC float64) float64 {
	if baseIPC == 0 || ipc == 0 {
		return 0
	}
	return (ipc / baseIPC) * (m.CycleTime(base) / m.CycleTime(cfg))
}

// Row is one Table 2 line.
type Row struct {
	Config    string
	Ports     int
	BypassPS  float64
	RegFilePS float64
	CyclePS   float64
}

// Table2 reproduces the paper's Table 2 for the given configurations.
func (m Model) Table2(cfgs []machine.Config) []Row {
	rows := make([]Row, 0, len(cfgs))
	for i := range cfgs {
		cfg := &cfgs[i]
		rows = append(rows, Row{
			Config:    cfg.Name,
			Ports:     Ports(cfg),
			BypassPS:  m.Bypass(cfg),
			RegFilePS: m.RegFile(cfg),
			CyclePS:   m.CycleTime(cfg),
		})
	}
	return rows
}

// String renders a row.
func (r Row) String() string {
	return fmt.Sprintf("%-16s ports=%2d bypass=%6.1fps rf=%6.1fps cycle=%6.1fps",
		r.Config, r.Ports, r.BypassPS, r.RegFilePS, r.CyclePS)
}
