package timing

import (
	"testing"

	"repro/internal/machine"
)

func TestPorts(t *testing.T) {
	uni := machine.Unified()
	if got := Ports(&uni); got != 36 { // 12 FUs * 3 ports, no bus
		t.Errorf("unified ports = %d, want 36", got)
	}
	two := machine.TwoCluster(1, 1)
	if got := Ports(&two); got != 20 { // 6*3 + 2
		t.Errorf("2-cluster ports = %d, want 20", got)
	}
	four := machine.FourCluster(2, 1)
	if got := Ports(&four); got != 13 { // 3*3 + 4
		t.Errorf("4-cluster/2-bus ports = %d, want 13", got)
	}
}

func TestCycleTimeOrdering(t *testing.T) {
	m := DefaultModel()
	uni, two, four := machine.Unified(), machine.TwoCluster(1, 1), machine.FourCluster(1, 1)
	cu, c2, c4 := m.CycleTime(&uni), m.CycleTime(&two), m.CycleTime(&four)
	if !(cu > c2 && c2 > c4) {
		t.Errorf("cycle times not monotone: unified %.0f, 2c %.0f, 4c %.0f", cu, c2, c4)
	}
}

func TestCalibrationHitsPaperRange(t *testing.T) {
	// The paper's headline: at IPC parity, 4-cluster/1-bus is ~3.6x
	// faster than unified.  The fitted model must put the raw cycle-time
	// ratio in the 3.2-4.2 window so measured IPC ratios land near 3.6.
	m := DefaultModel()
	uni, four := machine.Unified(), machine.FourCluster(1, 1)
	ratio := m.CycleTime(&uni) / m.CycleTime(&four)
	if ratio < 3.2 || ratio > 4.2 {
		t.Errorf("unified/4-cluster cycle ratio = %.2f, want ~3.6", ratio)
	}
	two := machine.TwoCluster(1, 1)
	r2 := m.CycleTime(&uni) / m.CycleTime(&two)
	if r2 < 1.8 || r2 > 2.8 {
		t.Errorf("unified/2-cluster cycle ratio = %.2f, want ~2.2", r2)
	}
}

func TestMoreBusesSlowTheClock(t *testing.T) {
	// Extra buses add register-file ports: the 2-bus variant of a
	// configuration can never be faster than the 1-bus variant.
	m := DefaultModel()
	one, two := machine.FourCluster(1, 1), machine.FourCluster(2, 1)
	if m.CycleTime(&two) < m.CycleTime(&one) {
		t.Error("2-bus cluster faster than 1-bus cluster")
	}
}

func TestSpeedupFormula(t *testing.T) {
	m := DefaultModel()
	uni, four := machine.Unified(), machine.FourCluster(1, 1)
	// Equal IPC: speedup equals the cycle-time ratio.
	want := m.CycleTime(&uni) / m.CycleTime(&four)
	if got := m.Speedup(&four, &uni, 2.0, 2.0); got != want {
		t.Errorf("Speedup = %v, want %v", got, want)
	}
	// Half the IPC: half the speedup.
	if got := m.Speedup(&four, &uni, 1.0, 2.0); got != want/2 {
		t.Errorf("Speedup = %v, want %v", got, want/2)
	}
	if got := m.Speedup(&four, &uni, 1.0, 0); got != 0 {
		t.Errorf("zero baseline IPC: speedup = %v, want 0", got)
	}
}

func TestTable2Rows(t *testing.T) {
	m := DefaultModel()
	rows := m.Table2([]machine.Config{
		machine.Unified(), machine.TwoCluster(1, 1), machine.FourCluster(1, 1),
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.CyclePS < r.BypassPS || r.CyclePS < r.RegFilePS {
			t.Errorf("%s: cycle %f below component max", r.Config, r.CyclePS)
		}
		if r.String() == "" {
			t.Error("empty row rendering")
		}
	}
}
