// Package cluster turns N independent schedd daemons into one
// fingerprint-sharded compile service.
//
// Three pieces compose:
//
//   - Ring: a consistent-hash ring (FNV-1a over virtual nodes) mapping a
//     loop graph's content fingerprint to the replica that owns it, so
//     identical loops always land on the shard whose cache has them, and
//     membership changes move only ~1/N of the keyspace.
//   - Router: the front door (cmd/schedrouter).  It decodes just enough
//     of each compile request to extract the routing fingerprint, orders
//     the live, capability-compatible replicas by ring preference, and
//     delegates the exchange to internal/client — whose per-attempt
//     endpoint rotation turns replica loss into rehashing onto the next
//     preferred shard rather than failure.  Stats and capabilities
//     aggregate across the fleet in the ordinary wire shapes, so
//     clients and the load harness see one logical daemon.
//   - PeerLookup: the daemon-side federation hook.  A cache miss asks
//     the ring-preferred peer for the finished entry
//     (GET /v1/cache/{key}, one bounded intra-cluster round trip)
//     before paying for a compile; peers answer from cache only, so
//     lookups never cascade.
//
// The routing identity is the pipeline cache key's fingerprint prefix
// (pipeline.KeyFingerprint): ddg.Graph.Fingerprint for inline loops, a
// "ref:" pseudo-fingerprint for loop_ref requests.  Router and daemons
// hash the same strings over the same ring construction, so the
// replica the router prefers is the replica whose peers consult it.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the per-member virtual-node count: enough that
// 3-node rings split the keyspace within a few percent of evenly
// (share variation shrinks as 1/sqrt(vnodes)), cheap enough that ring
// construction stays well under a millisecond.
const DefaultVNodes = 256

// Ring is an immutable consistent-hash ring.  Build a new one on
// membership change — construction is cheap and an immutable ring
// needs no locking.
type Ring struct {
	members []string
	vnodes  []vnode
}

type vnode struct {
	hash   uint64
	member int
}

// hash64 is FNV-1a over s with a splitmix64 finalizer: fast,
// dependency-free, and stable across processes (the router and every
// daemon must agree on it).  Raw FNV avalanches poorly on the short,
// near-identical vnode labels ("a#17", "a#18"), clustering arcs badly
// enough to skew a 3-member ring 3x; the finalizer fixes the mixing
// without giving up FNV's stability.
func hash64(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRing builds a ring over the given members (replica names or URLs
// — any stable spelling, as long as every process uses the same one).
// vnodesPer <= 0 means DefaultVNodes.  Duplicate or empty members are
// rejected: a duplicate would silently double that member's share.
func NewRing(members []string, vnodesPer int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodesPer <= 0 {
		vnodesPer = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{
		members: append([]string(nil), members...),
		vnodes:  make([]vnode, 0, len(members)*vnodesPer),
	}
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member at index %d", i)
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodesPer; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// Hash ties (vanishingly rare) break deterministically by member
		// so every process orders the ring identically.
		return r.vnodes[a].member < r.vnodes[b].member
	})
	return r, nil
}

// Members returns the ring membership in construction order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// succ returns the index of the first vnode at or after h, wrapping.
func (r *Ring) succ(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return i
}

// Owner returns the member owning key: the first vnode clockwise from
// the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.vnodes[r.succ(hash64(key))].member]
}

// Prefer returns every member, ordered by ring preference for key: the
// owner first, then each distinct member in clockwise vnode order.
// This is the failover order — when the owner is down or incapable,
// the next preferred member is the one that inherits the key under
// rehashing, so retries land where the keyspace has moved.
func (r *Ring) Prefer(key string) []string {
	out := make([]string, 0, len(r.members))
	taken := make([]bool, len(r.members))
	start := r.succ(hash64(key))
	for i := 0; i < len(r.vnodes) && len(out) < len(r.members); i++ {
		m := r.vnodes[(start+i)%len(r.vnodes)].member
		if !taken[m] {
			taken[m] = true
			out = append(out, r.members[m])
		}
	}
	return out
}
