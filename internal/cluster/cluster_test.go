// End-to-end cluster tests: real service.Server replicas behind real
// HTTP listeners, exercised through the router and the peer-lookup
// federation hook the way cmd/schedrouter and cmd/schedd wire them.
// Run under -race: the router probes, routes, and aggregates
// concurrently with serving.

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/service"
	"repro/internal/wire"
)

// compileBody is the canonical test request for one loop.
func compileBody(loopRef string) string {
	return fmt.Sprintf(`{"v":1,"loop_ref":%q,"machine_ref":"4-cluster/B1/L1"}`, loopRef)
}

// postCompile sends one compile and decodes the result.
func postCompile(t *testing.T, base, loopRef string) (*wire.Result, int, *wire.Error) {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(compileBody(loopRef)))
	if err != nil {
		t.Fatalf("POST /v1/compile: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er wire.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("HTTP %d with undecodable error body: %v", resp.StatusCode, err)
		}
		return nil, resp.StatusCode, er.Error
	}
	var cr wire.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decode compile response: %v", err)
	}
	return cr.Result, resp.StatusCode, nil
}

// scheduleKey digests a result's deterministic schedule facts,
// dropping the telemetry (stage timings) that varies run to run.
func scheduleKey(res *wire.Result) string {
	stripped := *res
	stripped.Stages = nil
	b, _ := json.Marshal(&stripped)
	return string(b)
}

// loopRefs returns n distinct corpus loop names, deterministically.
func loopRefs(t *testing.T, n int) []string {
	t.Helper()
	idx := corpus.Index(corpus.SPECfp95())
	names := make([]string, 0, len(idx))
	for name := range idx {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) < n {
		t.Fatalf("corpus has %d loops, test needs %d", len(names), n)
	}
	return names[:n]
}

// TestPeerHitServesWithoutRecompiling pins the federated-cache
// contract: a daemon whose local cache misses asks the ring-preferred
// peer and, on a peer hit, serves the peer's result without running a
// single compile of its own.
func TestPeerHitServesWithoutRecompiling(t *testing.T) {
	srvA := service.New(service.Config{Workers: 2})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	srvB := service.New(service.Config{Workers: 2})
	pl, err := NewPeerLookup(PeerConfig{Self: "http://self.invalid", Peers: []string{tsA.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if pl == nil {
		t.Fatal("NewPeerLookup returned nil with one real peer")
	}
	srvB.Pipeline().SetPeerLookup(pl.Func())
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	const ref = "tomcatv.loop0"
	want, status, werr := postCompile(t, tsA.URL, ref)
	if werr != nil {
		t.Fatalf("seed compile on A: HTTP %d %v", status, werr)
	}

	got, status, werr := postCompile(t, tsB.URL, ref)
	if werr != nil {
		t.Fatalf("compile via B: HTTP %d %v", status, werr)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("peer-served result differs from the peer's own:\nA: %s\nB: %s", wb, gb)
	}

	stats := srvB.Pipeline().Stats()
	if stats.Compilations != 0 {
		t.Fatalf("B ran %d compilations, want 0 (peer hit must not recompile)", stats.Compilations)
	}
	if stats.PeerHits != 1 {
		t.Fatalf("B recorded %d peer hits, want 1", stats.PeerHits)
	}
	if stats.Misses != 1 {
		t.Fatalf("B recorded %d misses, want 1 (the lookup that federated)", stats.Misses)
	}

	// Second request for the same loop is now a plain local hit: the
	// peer-fetched entry was cached, not just forwarded.
	if _, _, werr := postCompile(t, tsB.URL, ref); werr != nil {
		t.Fatalf("second compile via B: %v", werr)
	}
	if stats := srvB.Pipeline().Stats(); stats.Hits != 1 || stats.PeerHits != 1 {
		t.Fatalf("after repeat: hits=%d peer_hits=%d, want 1 local hit and no new peer traffic",
			stats.Hits, stats.PeerHits)
	}

	// A peer miss (loop A never compiled) falls back to a local compile.
	if _, _, werr := postCompile(t, tsB.URL, "swim.loop0"); werr != nil {
		t.Fatalf("compile of un-federated loop via B: %v", werr)
	}
	if stats := srvB.Pipeline().Stats(); stats.Compilations != 1 || stats.PeerHits != 1 {
		t.Fatalf("after peer miss: compilations=%d peer_hits=%d, want exactly 1 and 1",
			stats.Compilations, stats.PeerHits)
	}
}

// clusterUnderTest is a 3-replica fleet behind one router.
type clusterUnderTest struct {
	srvs   []*service.Server
	tss    []*httptest.Server
	router *Router
	front  *httptest.Server
}

func newCluster(t *testing.T) *clusterUnderTest {
	t.Helper()
	c := &clusterUnderTest{}
	var reps []Replica
	for i := 0; i < 3; i++ {
		srv := service.New(service.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		c.srvs = append(c.srvs, srv)
		c.tss = append(c.tss, ts)
		reps = append(reps, Replica{Name: fmt.Sprintf("s%d", i+1), URL: ts.URL})
	}
	rt, err := NewRouter(RouterConfig{Replicas: reps, Attempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ready := rt.Probe(context.Background()); ready != 3 {
		t.Fatalf("probe found %d/3 replicas ready", ready)
	}
	c.router = rt
	c.front = httptest.NewServer(rt.Handler())
	t.Cleanup(c.front.Close)
	return c
}

// compilations sums compile counts across the fleet.
func (c *clusterUnderTest) compilations() (total int64, per []int64) {
	for _, srv := range c.srvs {
		n := srv.Pipeline().Stats().Compilations
		per = append(per, n)
		total += n
	}
	return total, per
}

// TestClusterShardsAndRehashesOnReplicaLoss drives compiles through
// the router, checks the keyspace actually spreads over the fleet and
// repeats hit the owner's cache, then kills a replica and proves the
// cluster degrades to rehashing: the dead shard's keys re-home and
// every request still succeeds.
func TestClusterShardsAndRehashesOnReplicaLoss(t *testing.T) {
	c := newCluster(t)
	refs := loopRefs(t, 12)

	// Key the comparison on the deterministic schedule facts (II, stage
	// count, placements); telemetry timings legitimately differ between
	// a cached result and a fresh recompile on another replica.
	results := map[string]string{}
	for _, ref := range refs {
		res, status, werr := postCompile(t, c.front.URL, ref)
		if werr != nil {
			t.Fatalf("%s: HTTP %d %v", ref, status, werr)
		}
		results[ref] = scheduleKey(res)
	}
	total, per := c.compilations()
	if total != int64(len(refs)) {
		t.Fatalf("fleet compiled %d times for %d distinct loops (per-replica %v)", total, len(refs), per)
	}
	busy := 0
	for _, n := range per {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d replica(s) compiled anything (per-replica %v): keyspace is not sharding", busy, per)
	}

	// Replays are owner-cache hits: zero new compilations anywhere.
	for _, ref := range refs {
		if _, _, werr := postCompile(t, c.front.URL, ref); werr != nil {
			t.Fatalf("replay %s: %v", ref, werr)
		}
	}
	if again, perAgain := c.compilations(); again != total {
		t.Fatalf("replay recompiled: %d -> %d (per-replica %v)", total, again, perAgain)
	}

	// Kill replica 0: drain flips its /readyz, the listener closes, the
	// next probe marks it dead.
	c.srvs[0].BeginDrain()
	c.tss[0].Close()
	if ready := c.router.Probe(context.Background()); ready != 2 {
		t.Fatalf("probe after kill found %d replicas, want 2", ready)
	}

	before := c.router.Rehashes()
	for _, ref := range refs {
		res, status, werr := postCompile(t, c.front.URL, ref)
		if werr != nil {
			t.Fatalf("%s after replica loss: HTTP %d %v", ref, status, werr)
		}
		if got := scheduleKey(res); got != results[ref] {
			t.Fatalf("%s: rehashed schedule differs from original:\nwas %s\nnow %s", ref, results[ref], got)
		}
	}
	if c.router.Rehashes() == before {
		t.Fatal("no request was counted as rehashed after a replica died")
	}

	// The dead replica's keys re-homed: survivors compiled them fresh
	// (their caches never held the dead shard's loops), but nothing that
	// was already owned by a survivor recompiled.
	afterLoss, perLoss := c.compilations()
	moved := afterLoss - total
	if moved <= 0 {
		t.Fatalf("no key re-homed after replica loss (per-replica %v)", perLoss)
	}
	if moved > int64(len(refs)) {
		t.Fatalf("rehash recompiled %d keys for a %d-loop corpus", moved, len(refs))
	}

	// Router stays ready with survivors, and aggregated stats see the
	// whole surviving fleet.
	resp, err := http.Get(c.front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz = %d with 2 live replicas", resp.StatusCode)
	}
	sresp, err := http.Get(c.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var agg wire.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if want := afterLoss - perLoss[0]; agg.Pipeline.Compilations != want {
		t.Fatalf("aggregated compilations %d, want %d (survivors only)", agg.Pipeline.Compilations, want)
	}
}

// TestRouterBatchShardsAcrossOwners: one batch envelope fans out to
// every owning replica and streams every item back exactly once.
func TestRouterBatchShardsAcrossOwners(t *testing.T) {
	c := newCluster(t)
	refs := loopRefs(t, 8)

	var reqs []string
	for _, ref := range refs {
		reqs = append(reqs, fmt.Sprintf(`{"v":1,"loop_ref":%q,"machine_ref":"4-cluster/B1/L1"}`, ref))
	}
	body := fmt.Sprintf(`{"v":1,"requests":[%s]}`, strings.Join(reqs, ","))
	resp, err := http.Post(c.front.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: HTTP %d", resp.StatusCode)
	}
	seen := map[int]bool{}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var item wire.BatchItem
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("batch stream: %v", err)
		}
		if seen[item.Index] {
			t.Fatalf("batch item %d delivered twice", item.Index)
		}
		seen[item.Index] = true
		if item.Error != nil {
			t.Fatalf("batch item %d failed: %v", item.Index, item.Error)
		}
		if item.Result == nil {
			t.Fatalf("batch item %d has neither result nor error", item.Index)
		}
	}
	if len(seen) != len(refs) {
		t.Fatalf("batch returned %d items for %d requests", len(seen), len(refs))
	}
	if total, per := c.compilations(); total != int64(len(refs)) || func() int {
		n := 0
		for _, v := range per {
			if v > 0 {
				n++
			}
		}
		return n
	}() < 2 {
		t.Fatalf("batch sharding off: total=%d per-replica=%v", total, per)
	}
}

// TestRouterCapabilitiesUnion: the aggregated capability surface is the
// union of the fleet's, so capability routing and client preflight see
// everything the cluster can do.
func TestRouterCapabilitiesUnion(t *testing.T) {
	c := newCluster(t)
	resp, err := http.Get(c.front.URL + "/v1/capabilities")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capabilities: HTTP %d", resp.StatusCode)
	}
	var agg wire.CapabilitiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if len(agg.Schedulers) == 0 || len(agg.Machines) == 0 || agg.Loops == 0 {
		t.Fatalf("aggregated capabilities empty: %+v", agg)
	}
	if len(agg.Quarantined) != 0 {
		t.Fatalf("fresh fleet reports cluster-wide quarantine: %v", agg.Quarantined)
	}
}

// TestRouterProbeMarksDrainingReplicaDead: a draining replica (readyz
// 503, listener still up) leaves the routable set at the next probe —
// the drain race the readiness probe exists to close.
func TestRouterProbeMarksDrainingReplicaDead(t *testing.T) {
	c := newCluster(t)
	c.srvs[1].BeginDrain()
	if ready := c.router.Probe(context.Background()); ready != 2 {
		t.Fatalf("probe counted %d ready replicas with one draining, want 2", ready)
	}
	refs := loopRefs(t, 6)
	for _, ref := range refs {
		if _, status, werr := postCompile(t, c.front.URL, ref); werr != nil {
			t.Fatalf("%s with a draining replica: HTTP %d %v", ref, status, werr)
		}
	}
	if n := c.srvs[1].Pipeline().Stats().Compilations; n != 0 {
		t.Fatalf("draining replica still compiled %d requests", n)
	}
}
