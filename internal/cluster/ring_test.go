package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fingerprint-%d", i)
	}
	return out
}

// TestRingDistribution proves the vnode count spreads a 3-member ring
// within ±25% of an even split over a realistic keyspace.
func TestRingDistribution(t *testing.T) {
	members := []string{"a", "b", "c"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	want := n / len(members)
	for _, m := range members {
		got := counts[m]
		if got < want*3/4 || got > want*5/4 {
			t.Errorf("member %s owns %d keys, want %d +/- 25%% (distribution %v)", m, got, want, counts)
		}
	}
}

// TestRingRebalance proves membership change moves ~1/N of the
// keyspace: adding a 4th member to a 3-ring moves about 1/4 of keys
// (all to the newcomer), and removing a member moves only the removed
// member's keys.
func TestRingRebalance(t *testing.T) {
	ks := keys(30000)
	three, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	moved, movedElsewhere := 0, 0
	for _, k := range ks {
		was, is := three.Owner(k), four.Owner(k)
		if was != is {
			moved++
			if is != "d" {
				movedElsewhere++
			}
		}
	}
	// The newcomer's share is ~1/N give or take vnode variance; the
	// disaster this guards against is naive modulo hashing, which
	// reshuffles (N-1)/N of the keyspace on every membership change.
	want := len(ks) / 4
	if moved < want/2 || moved > want*3/2 {
		t.Errorf("join moved %d of %d keys, want ~%d (1/N)", moved, len(ks), want)
	}
	if movedElsewhere != 0 {
		t.Errorf("join moved %d keys between surviving members; joins must only move keys to the newcomer", movedElsewhere)
	}

	two, err := NewRing([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		was, is := three.Owner(k), two.Owner(k)
		if was != "c" && was != is {
			t.Fatalf("removing c moved key %q from %s to %s; leaves must only move the leaver's keys", k, was, is)
		}
	}
}

// TestRingPreferIsRehashOrder proves Prefer's failover contract: the
// first entry is the owner, every member appears exactly once, and the
// second preference is exactly who inherits the key when the owner
// leaves the ring — so retrying down the preference list lands where
// rehashing moved the keyspace.
func TestRingPreferIsRehashOrder(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(2000) {
		pref := r.Prefer(k)
		if len(pref) != len(members) {
			t.Fatalf("Prefer(%q) = %v, want all %d members", k, pref, len(members))
		}
		seen := map[string]bool{}
		for _, m := range pref {
			if seen[m] {
				t.Fatalf("Prefer(%q) = %v repeats %s", k, pref, m)
			}
			seen[m] = true
		}
		if pref[0] != r.Owner(k) {
			t.Fatalf("Prefer(%q) starts with %s, Owner is %s", k, pref[0], r.Owner(k))
		}

		var survivors []string
		for _, m := range members {
			if m != pref[0] {
				survivors = append(survivors, m)
			}
		}
		without, err := NewRing(survivors, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := without.Owner(k); got != pref[1] {
			t.Fatalf("key %q: owner-loss rehashes to %s, but Prefer says %s", k, got, pref[1])
		}
	}
}

// TestRingRejectsBadMembership pins the constructor's validation.
func TestRingRejectsBadMembership(t *testing.T) {
	for _, members := range [][]string{nil, {"a", ""}, {"a", "b", "a"}} {
		if _, err := NewRing(members, 0); err == nil {
			t.Errorf("NewRing(%v) accepted invalid membership", members)
		}
	}
}

// TestRingDeterministicAcrossConstruction proves two independently
// built rings agree on every owner — the property router and daemons
// rely on to agree without coordination.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a, _ := NewRing([]string{"x", "y", "z"}, 64)
	b, _ := NewRing([]string{"x", "y", "z"}, 64)
	for _, k := range keys(5000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}
