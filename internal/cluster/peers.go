// Daemon-side cache federation: the peer-lookup hook a schedd installs
// on its pipeline so a local miss costs one intra-cluster round trip
// before it costs a compile.

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// DefaultPeerTimeout bounds one peer-cache lookup.  Every waiter of
// the missing entry is blocked behind the lookup, so it must stay an
// order of magnitude under a compile, not under a timeout-budget.
const DefaultPeerTimeout = 250 * time.Millisecond

// PeerConfig configures a daemon's view of its cluster peers.
type PeerConfig struct {
	// Self is this daemon's own URL as it appears in Peers; it is
	// excluded from lookups (a daemon never asks itself).  May be empty
	// when Peers already lists only the others.
	Self string
	// Peers are the other replicas' base URLs (e.g.
	// "http://127.0.0.1:8181").  Order does not matter; the ring does.
	Peers []string
	// Timeout bounds one lookup; <= 0 means DefaultPeerTimeout.
	Timeout time.Duration
	// VNodes is the ring's per-member virtual-node count; <= 0 means
	// DefaultVNodes.  Must match the router's setting.
	VNodes int
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// PeerLookup resolves cache misses against cluster peers.  It
// implements pipeline.PeerLookupFunc via Lookup.
type PeerLookup struct {
	ring    *Ring
	timeout time.Duration
	http    *http.Client
}

// NewPeerLookup builds the federation hook, or nil (no error) when the
// config names no peers besides Self — a single daemon has nobody to
// ask, and a nil *PeerLookup keeps the pipeline's lookup unset.
func NewPeerLookup(cfg PeerConfig) (*PeerLookup, error) {
	var others []string
	for _, p := range cfg.Peers {
		if p = strings.TrimRight(p, "/"); p != "" && p != strings.TrimRight(cfg.Self, "/") {
			others = append(others, p)
		}
	}
	if len(others) == 0 {
		return nil, nil
	}
	ring, err := NewRing(others, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	pl := &PeerLookup{ring: ring, timeout: cfg.Timeout, http: cfg.HTTP}
	if pl.timeout <= 0 {
		pl.timeout = DefaultPeerTimeout
	}
	if pl.http == nil {
		pl.http = http.DefaultClient
	}
	return pl, nil
}

// Func returns the hook in the pipeline's shape; nil receiver, nil
// func, so callers can wire it unconditionally.
func (pl *PeerLookup) Func() pipeline.PeerLookupFunc {
	if pl == nil {
		return nil
	}
	return pl.Lookup
}

// Lookup asks the peer most likely to own key's fingerprint for the
// finished entry.  One peer, one bounded request: peers answer from
// cache only (the /v1/cache handler never compiles and never asks
// further), so lookups cannot cascade, and a miss or any failure
// simply reports false — the caller compiles.
func (pl *PeerLookup) Lookup(key string) (*core.Result, bool) {
	peer := pl.ring.Owner(pipeline.KeyFingerprint(key))
	ctx, cancel := context.WithTimeout(context.Background(), pl.timeout)
	defer cancel()
	e, err := FetchCacheEntry(ctx, pl.http, peer, key)
	if err != nil {
		return nil, false
	}
	return e.Res, true
}

// FetchCacheEntry performs one GET /v1/cache/{key} against a replica's
// base URL and rebuilds the entry, verifying the answer is for the key
// that was asked.
func FetchCacheEntry(ctx context.Context, hc *http.Client, base, key string) (pipeline.CacheEntry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return pipeline.CacheEntry{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return pipeline.CacheEntry{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return pipeline.CacheEntry{}, fmt.Errorf("peer %s: HTTP %d for %q", base, resp.StatusCode, key)
	}
	var row wire.CacheEntry
	if err := wire.DecodeStrict(resp.Body, &row); err != nil {
		return pipeline.CacheEntry{}, fmt.Errorf("peer %s: %w", base, err)
	}
	e, err := row.Core()
	if err != nil {
		return pipeline.CacheEntry{}, fmt.Errorf("peer %s: %w", base, err)
	}
	if e.Key != key {
		return pipeline.CacheEntry{}, fmt.Errorf("peer %s answered key %q for %q", base, e.Key, key)
	}
	return e, nil
}
