// Router: the cluster's front door.  See the package doc (ring.go) for
// the topology; cmd/schedrouter wraps this in a process.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/wire"
)

// Replica names one schedd backend.
type Replica struct {
	// Name is the stable ring identity.  It, not the URL, is what the
	// keyspace hashes over, so a replica can move (new port, new host)
	// without reshuffling the ring.
	Name string
	// URL is the replica's base URL, e.g. "http://127.0.0.1:8181".
	URL string
}

// RouterConfig configures a Router.
type RouterConfig struct {
	Replicas []Replica
	// VNodes is the ring's per-member virtual-node count; <= 0 means
	// DefaultVNodes.
	VNodes int
	// Attempts / BackoffBase / BackoffMax / Hedge tune the embedded
	// internal/client used for compile and batch exchanges; zero values
	// take the client's defaults (4 attempts, 100ms..5s backoff, no
	// hedging).
	Attempts    int
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Hedge       time.Duration
	// ProbeTimeout bounds one replica health/capability probe; <= 0
	// means 2s.
	ProbeTimeout time.Duration
	// MaxBodyBytes bounds a request body; <= 0 means 64 MiB (batches
	// are large).
	MaxBodyBytes int64
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// replicaState is one backend's live view: reachability from the last
// probe and its advertised capabilities.
type replicaState struct {
	name, url string
	alive     atomic.Bool
	caps      atomic.Pointer[wire.CapabilitiesResponse]
}

// Router consistent-hashes compile traffic across schedd replicas and
// aggregates their stats and capabilities into one logical daemon.
// Safe for concurrent use; Probe may run concurrently with serving.
//
// Aggregated /v1/stats sums counters and merges latency histograms
// across live replicas; the per-engine breaker detail stays per-daemon
// (ask a replica directly) because summing breaker states across
// processes has no meaning.
type Router struct {
	cfg  RouterConfig
	ring *Ring
	http *http.Client

	states []*replicaState
	byName map[string]*replicaState

	// clients caches one resilient client per preference order, so a
	// keyspace region's failover chain reuses connections and backoff
	// state.
	clients sync.Map // strings.Join(order, "\x00") -> *client.Client

	rehashes atomic.Int64
}

// NewRouter builds a router over the configured replicas.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one replica")
	}
	names := make([]string, len(cfg.Replicas))
	for i, rep := range cfg.Replicas {
		if rep.Name == "" || rep.URL == "" {
			return nil, fmt.Errorf("cluster: replica %d needs both name and url", i)
		}
		names[i] = rep.Name
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	rt := &Router{cfg: cfg, ring: ring, http: cfg.HTTP, byName: map[string]*replicaState{}}
	if rt.http == nil {
		rt.http = http.DefaultClient
	}
	for _, rep := range cfg.Replicas {
		st := &replicaState{name: rep.Name, url: strings.TrimRight(rep.URL, "/")}
		// Until the first probe lands, assume reachable: a router booted
		// alongside its fleet should route, not 429, during the first
		// probe interval.
		st.alive.Store(true)
		rt.states = append(rt.states, st)
		rt.byName[rep.Name] = st
	}
	return rt, nil
}

// Probe refreshes every replica's reachability (GET /readyz) and
// capabilities (GET /v1/capabilities), concurrently, and returns how
// many replicas are ready.  Run it once before serving and then on an
// interval; between probes, per-request failover still routes around a
// freshly dead replica via the client's endpoint rotation.
func (rt *Router) Probe(ctx context.Context) int {
	var wg sync.WaitGroup
	var ready atomic.Int64
	for _, st := range rt.states {
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			defer cancel()
			alive := rt.probeReady(pctx, st.url)
			st.alive.Store(alive)
			if alive {
				ready.Add(1)
				if caps, err := rt.fetchCapabilities(pctx, st.url); err == nil {
					st.caps.Store(caps)
				}
			}
		}(st)
	}
	wg.Wait()
	return int(ready.Load())
}

func (rt *Router) probeReady(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode/100 == 2
}

func (rt *Router) fetchCapabilities(ctx context.Context, base string) (*wire.CapabilitiesResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/capabilities", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("capabilities: HTTP %d", resp.StatusCode)
	}
	var caps wire.CapabilitiesResponse
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		return nil, err
	}
	return &caps, nil
}

// RoutingKey extracts the string the ring hashes for a request: the
// loop graph's content fingerprint when the loop rides inline, or a
// "ref:" pseudo-fingerprint for by-reference loops.  The two forms of
// the same loop do not co-locate — a ref carries no content to
// fingerprint — which costs one duplicate cache entry per form, never
// a wrong result.
func RoutingKey(req *wire.CompileRequest) string {
	if req.Loop != nil && req.Loop.Graph != nil {
		return req.Loop.Graph.Fingerprint()
	}
	return "ref:" + req.LoopRef
}

// supports reports whether a replica's advertised capabilities cover
// the request's scheduler and strategy.  A replica that has never
// answered a capability probe is assumed capable — optimistic routing
// beats 429ing a fleet that just booted.
func supports(caps *wire.CapabilitiesResponse, opts *wire.Options) bool {
	if caps == nil || opts == nil {
		return true
	}
	if s := engine.CanonicalScheduler(opts.Scheduler); opts.Scheduler != "" && !contains(caps.Schedulers, s) {
		return false
	}
	if opts.Strategy != "" {
		s := engine.CanonicalStrategy(opts.Strategy)
		if !contains(caps.Strategies, s) && !familyMatch(caps.StrategyFamilies, s) {
			return false
		}
	}
	return true
}

// quarantined reports whether the request's scheduler is under
// quarantine on a replica — used to deprioritize, not exclude: a
// quarantined replica still beats no replica when the request allows
// degraded service or the quarantine is fleet-wide.
func quarantined(caps *wire.CapabilitiesResponse, opts *wire.Options) bool {
	if caps == nil || opts == nil {
		return false
	}
	return contains(caps.Quarantined, engine.CanonicalScheduler(opts.Scheduler))
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func familyMatch(fams []wire.StrategyFamily, s string) bool {
	for _, f := range fams {
		if strings.HasPrefix(s, f.Prefix) {
			return true
		}
	}
	return false
}

// order builds the failover chain for one request: live,
// capability-compatible replicas in ring-preference order, replicas
// with the requested engine quarantined moved to the back.  The second
// return reports whether any replica was skipped (a rehash away from
// the true owner).
func (rt *Router) order(key string, opts *wire.Options) (urls []string, rehashed bool) {
	var back []string
	for _, name := range rt.ring.Prefer(key) {
		st := rt.byName[name]
		caps := st.caps.Load()
		if !st.alive.Load() || !supports(caps, opts) {
			rehashed = true
			continue
		}
		if quarantined(caps, opts) {
			back = append(back, st.url)
			continue
		}
		urls = append(urls, st.url)
	}
	if len(back) > 0 && len(urls) == 0 {
		rehashed = true
	}
	return append(urls, back...), rehashed
}

// clientFor returns the cached resilient client for a failover chain.
func (rt *Router) clientFor(urls []string) (*client.Client, error) {
	key := strings.Join(urls, "\x00")
	if c, ok := rt.clients.Load(key); ok {
		return c.(*client.Client), nil
	}
	c, err := client.New(client.Config{
		Endpoints:   append([]string(nil), urls...),
		HTTP:        rt.http,
		Attempts:    rt.cfg.Attempts,
		BackoffBase: rt.cfg.BackoffBase,
		BackoffMax:  rt.cfg.BackoffMax,
		Hedge:       rt.cfg.Hedge,
	})
	if err != nil {
		return nil, err
	}
	actual, _ := rt.clients.LoadOrStore(key, c)
	return actual.(*client.Client), nil
}

// Rehashes counts requests whose preferred replica was skipped (dead
// or incapable) — the degraded-to-rehashing events.
func (rt *Router) Rehashes() int64 { return rt.rehashes.Load() }

// Handler returns the router's HTTP surface: the same paths schedd
// serves, so clients and the load harness point at a router or a
// daemon interchangeably.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", rt.handleCompile)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/capabilities", rt.handleCapabilities)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		for _, st := range rt.states {
			if st.alive.Load() {
				w.WriteHeader(http.StatusOK)
				io.WriteString(w, "ready\n")
				return
			}
		}
		writeError(w, wire.Errorf(wire.CodeDraining, "no replica is ready"))
	})
	return mux
}

// decodeBody strict-decodes a bounded request body.
func (rt *Router) decodeBody(w http.ResponseWriter, r *http.Request, v any) *wire.Error {
	body := http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	if err := wire.DecodeStrict(body, v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return wire.Errorf(wire.CodeBodyTooLarge, "request body over the %d byte limit", tooBig.Limit)
		}
		return wire.Errorf(wire.CodeBadRequest, "malformed request: %v", err)
	}
	return nil
}

func (rt *Router) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req wire.CompileRequest
	if werr := rt.decodeBody(w, r, &req); werr != nil {
		writeError(w, werr)
		return
	}
	if werr := wire.CheckVersion(req.V); werr != nil {
		writeError(w, werr)
		return
	}
	res, werr := rt.compileOne(r.Context(), &req)
	if werr != nil {
		writeError(w, werr)
		return
	}
	writeJSON(w, http.StatusOK, wire.CompileResponse{V: wire.Version, Result: res})
}

// compileOne routes one compile down its failover chain.
func (rt *Router) compileOne(ctx context.Context, req *wire.CompileRequest) (*wire.Result, *wire.Error) {
	urls, rehashed := rt.order(RoutingKey(req), req.Options)
	if rehashed {
		rt.rehashes.Add(1)
	}
	if len(urls) == 0 {
		return nil, &wire.Error{Code: wire.CodeOverCapacity,
			Message: "no live replica can serve this request", RetryAfterMS: 1000}
	}
	cl, err := rt.clientFor(urls)
	if err != nil {
		return nil, wire.Errorf(wire.CodeInternal, "%v", err)
	}
	res, err := cl.Compile(ctx, req)
	if err != nil {
		return nil, asWireError(err)
	}
	return res, nil
}

// handleBatch shards a batch across owners: requests group by their
// preferred replica, each group rides one /v1/batch exchange through
// the group's failover chain, and items stream back as each group
// settles, re-anchored to the caller's indices.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req wire.BatchRequest
	if werr := rt.decodeBody(w, r, &req); werr != nil {
		writeError(w, werr)
		return
	}
	if werr := wire.CheckVersion(req.V); werr != nil {
		writeError(w, werr)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, wire.Errorf(wire.CodeBadRequest, "empty batch"))
		return
	}

	// Group caller indices by the head of each request's failover chain.
	groups := map[string][]int{}
	chains := map[string][]string{}
	for i := range req.Requests {
		urls, rehashed := rt.order(RoutingKey(&req.Requests[i]), req.Requests[i].Options)
		if rehashed {
			rt.rehashes.Add(1)
		}
		gk := strings.Join(urls, "\x00") // empty key = nobody can serve
		groups[gk] = append(groups[gk], i)
		chains[gk] = urls
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	writeItem := func(item wire.BatchItem) {
		wmu.Lock()
		defer wmu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetEscapeHTML(false)
		enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var wg sync.WaitGroup
	for gk, idxs := range groups {
		urls := chains[gk]
		if len(urls) == 0 {
			for _, i := range idxs {
				writeItem(wire.BatchItem{V: wire.Version, Index: i, Error: &wire.Error{
					Code: wire.CodeOverCapacity, Message: "no live replica can serve this request",
					RetryAfterMS: 1000}})
			}
			continue
		}
		wg.Add(1)
		go func(urls []string, idxs []int) {
			defer wg.Done()
			sub := make([]wire.CompileRequest, len(idxs))
			for k, i := range idxs {
				sub[k] = req.Requests[i]
			}
			cl, err := rt.clientFor(urls)
			if err != nil {
				for _, i := range idxs {
					writeItem(wire.BatchItem{V: wire.Version, Index: i,
						Error: wire.Errorf(wire.CodeInternal, "%v", err)})
				}
				return
			}
			items, err := cl.Batch(r.Context(), sub)
			if err != nil {
				for _, i := range idxs {
					writeItem(wire.BatchItem{V: wire.Version, Index: i, Error: asWireError(err)})
				}
				return
			}
			for k, item := range items {
				item.Index = idxs[k]
				writeItem(item)
			}
		}(urls, idxs)
	}
	wg.Wait()
}

// handleStats aggregates /v1/stats across live replicas into one
// logical daemon's view.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	type polled struct {
		st   *replicaState
		resp *wire.StatsResponse
	}
	var wg sync.WaitGroup
	results := make(chan polled, len(rt.states))
	for _, st := range rt.states {
		if !st.alive.Load() {
			continue
		}
		wg.Add(1)
		go func(st *replicaState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.url+"/v1/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.http.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var sr wire.StatsResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				return
			}
			results <- polled{st, &sr}
		}(st)
	}
	wg.Wait()
	close(results)

	agg := wire.StatsResponse{V: wire.Version}
	agg.Service.Requests = map[string]int64{}
	buckets := map[float64]int64{}
	polledCount, drainingCount := 0, 0
	for p := range results {
		polledCount++
		ps := p.resp.Pipeline
		a := &agg.Pipeline
		a.Hits += ps.Hits
		a.Misses += ps.Misses
		a.DedupJoins += ps.DedupJoins
		a.Compilations += ps.Compilations
		a.Fallbacks += ps.Fallbacks
		a.Evictions += ps.Evictions
		a.CachedBytes += ps.CachedBytes
		a.CachedEntries += ps.CachedEntries
		a.CompileNS += ps.CompileNS
		a.WallNS += ps.WallNS
		a.Panics += ps.Panics
		a.PeerHits += ps.PeerHits
		a.Seeded += ps.Seeded

		ss := p.resp.Service
		for k, v := range ss.Requests {
			agg.Service.Requests[k] += v
		}
		agg.Service.Rejected += ss.Rejected
		agg.Service.Deadlines += ss.Deadlines
		agg.Service.InFlight += ss.InFlight
		agg.Service.Queued += ss.Queued
		agg.Service.Degraded += ss.Degraded
		agg.Service.Quarantined += ss.Quarantined
		if ss.Draining {
			drainingCount++
		}
		for _, b := range ss.LatencyMS {
			le := b.Le
			if le < 0 {
				le = math.Inf(1)
			}
			buckets[le] += b.Count
		}
		for name, n := range ss.Faults {
			if agg.Service.Faults == nil {
				agg.Service.Faults = map[string]int64{}
			}
			agg.Service.Faults[name] += n
		}
	}
	if lookups := agg.Pipeline.Hits + agg.Pipeline.Misses; lookups > 0 {
		agg.Pipeline.HitRate = float64(agg.Pipeline.Hits) / float64(lookups)
	}
	agg.Service.Draining = polledCount > 0 && drainingCount == polledCount
	les := make([]float64, 0, len(buckets))
	for le := range buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	for _, le := range les {
		b := wire.HistogramBucket{Le: le, Count: buckets[le]}
		if math.IsInf(le, 1) {
			b.Le = -1
		}
		agg.Service.LatencyMS = append(agg.Service.LatencyMS, b)
	}
	writeJSON(w, http.StatusOK, agg)
}

// handleCapabilities unions the fleet's capabilities: a scheduler one
// replica serves is routable (capability routing sends it there), so
// the union is what the cluster as a whole can do.  Quarantined is the
// intersection — an engine is only cluster-quarantined when no replica
// will take it.
func (rt *Router) handleCapabilities(w http.ResponseWriter, r *http.Request) {
	agg := wire.CapabilitiesResponse{V: wire.Version}
	schedulers, strategies, features, machines := map[string]bool{}, map[string]bool{}, map[string]bool{}, map[string]bool{}
	families := map[string]wire.StrategyFamily{}
	var quarantine map[string]bool
	polledAny := false
	for _, st := range rt.states {
		if !st.alive.Load() {
			continue
		}
		caps := st.caps.Load()
		if caps == nil {
			continue
		}
		polledAny = true
		for _, s := range caps.Schedulers {
			schedulers[s] = true
		}
		for _, s := range caps.Strategies {
			strategies[s] = true
		}
		for _, f := range caps.Features {
			features[f] = true
		}
		for _, m := range caps.Machines {
			machines[m] = true
		}
		for _, f := range caps.StrategyFamilies {
			families[f.Prefix] = f
		}
		if caps.Loops > agg.Loops {
			agg.Loops = caps.Loops
		}
		q := map[string]bool{}
		for _, e := range caps.Quarantined {
			q[e] = true
		}
		if quarantine == nil {
			quarantine = q
		} else {
			for e := range quarantine {
				if !q[e] {
					delete(quarantine, e)
				}
			}
		}
	}
	if !polledAny {
		writeError(w, wire.Errorf(wire.CodeDraining, "no replica has answered a capability probe"))
		return
	}
	agg.Schedulers = sortedKeys(schedulers)
	agg.Strategies = sortedKeys(strategies)
	agg.Features = sortedKeys(features)
	agg.Machines = sortedKeys(machines)
	agg.Quarantined = sortedKeys(quarantine)
	for _, p := range sortedKeys2(families) {
		agg.StrategyFamilies = append(agg.StrategyFamilies, families[p])
	}
	writeJSON(w, http.StatusOK, agg)
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]wire.StrategyFamily) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// asWireError coerces a client error to the wire shape, so routed
// failures reach the caller with their original code and retry hint.
func asWireError(err error) *wire.Error {
	var werr *wire.Error
	if errors.As(err, &werr) {
		return werr
	}
	return wire.Errorf(wire.CodeInternal, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, werr *wire.Error) {
	if werr.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", (werr.RetryAfterMS+999)/1000))
	}
	writeJSON(w, wire.StatusOf(werr.Code), wire.ErrorResponse{V: wire.Version, Error: werr})
}
