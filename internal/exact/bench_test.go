package exact

import (
	"errors"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
)

// BenchmarkExactOracle runs the full branch-and-bound sweep (every II
// from MinII to the first feasible one, exhaustively refuted) on a
// small graph.  Each expansion's register check rides the incremental
// pressure tables of the shared sched.Attempt, so allocations should
// stay proportional to the number of feasible Choices, not to the
// number of candidate placements examined.
func BenchmarkExactOracle(b *testing.B) {
	g := ddg.Random(42, 10, 5)
	if g == nil {
		b.Fatal("bench graph generation failed")
	}
	for _, cfg := range []machine.Config{machine.TwoCluster(1, 1), machine.FourCluster(1, 2)} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			// The step budget bounds each iteration to a deterministic
			// amount of search; hitting it is a valid outcome (the
			// benchmark then measures exactly MaxSteps expansions).
			budget := Budget{MaxNodes: 16, MaxSteps: 50_000}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Schedule(g, &cfg, &budget); err != nil && !errors.Is(err, ErrBudget) {
					b.Fatal(err)
				}
			}
		})
	}
}
