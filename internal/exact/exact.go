// Package exact is the repository's optimality oracle: a
// branch-and-bound modulo scheduler that searches IIs from MinII
// upward and, for each, exhaustively explores node placements until it
// either finds a schedule or refutes the II.  The first II that admits
// a schedule is returned together with a proof flag: Proved means every
// lower II was exhaustively refuted, so the heuristic scheduler (BSA)
// can be scored against a known optimum — and a BSA run that ever beat
// a Proved result would expose a search-space bug in one of the two.
//
// # Search space and what "optimal" means
//
// The search is built directly on the production scheduler's attempt
// state (sched.Attempt): the same modulo reservation table, the same
// bus planner with BusLatency-slot holds, the same register-pressure
// check and — crucially — the same per-node placement windows, scanned
// in the same SMS node order.  Any schedule BSA can reach is therefore
// one path of this search tree, which gives the oracle its load-bearing
// invariant:
//
//	Proved result  =>  exact II <= BSA II  (on the same graph/machine)
//
// Minimality is proved relative to that bounded placement space, which
// pins the first node of the order to cycle 0 — exactly where BSA
// always roots it (the empty-state window scans cycles from 0) — and,
// on homogeneous machines, to cluster 0, a true relabelling symmetry.
// The cycle pin is part of the space's definition rather than a pure
// shift symmetry: the window clamps anchor unscheduled-neighbour scans
// at absolute cycle 0, so a hypothetical schedule rooted elsewhere may
// have no pinned equivalent.  The honest claim, and the one the
// differential tests rely on, is "no schedule the heuristic's placement
// language can express exists below this II".
//
// # Budgets
//
// Exhaustive refutation is exponential in the worst case, so a Budget
// caps both the graph size (MaxNodes — larger graphs are rejected
// immediately, which is how unrolled bodies degrade gracefully) and the
// total number of enumerated placements across the whole run (MaxSteps).
// A run that exhausts MaxSteps returns ErrBudget: the caller learns
// nothing false, it just learns nothing.
package exact

import (
	"errors"
	"fmt"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/order"
	"repro/internal/sched"
)

// Default budget values; see Budget.
const (
	DefaultMaxNodes = 20
	DefaultMaxSteps = 500_000
)

// Budget bounds one exact-scheduling run.  The zero value means the
// defaults above.
type Budget struct {
	// MaxNodes rejects graphs with more nodes before searching at all
	// (ErrTooLarge); exhaustive search on large unrolled bodies would
	// dwarf any step budget.  < 0 disables the check.
	MaxNodes int
	// MaxSteps caps the total number of candidate placements enumerated
	// across every II of the run; exceeding it aborts with ErrBudget.
	// < 0 disables the cap.
	MaxSteps int64
	// MaxII caps the II sweep; 0 means MinII + sched.SequentialBound,
	// the same automatic bound the heuristic uses.
	MaxII int
}

// Nodes returns the node cap with the zero-value default resolved.
func (b Budget) Nodes() int {
	if b.MaxNodes == 0 {
		return DefaultMaxNodes
	}
	return b.MaxNodes
}

// Steps returns the step cap with the zero-value default resolved.
func (b Budget) Steps() int64 {
	if b.MaxSteps == 0 {
		return DefaultMaxSteps
	}
	return b.MaxSteps
}

// Sentinel errors; both are wrapped with graph/machine context.
var (
	// ErrTooLarge marks a graph above Budget.MaxNodes.
	ErrTooLarge = errors.New("exact: graph exceeds node budget")
	// ErrBudget marks a run that exhausted Budget.MaxSteps before
	// finding a schedule.
	ErrBudget = errors.New("exact: step budget exhausted")
)

// Result is a finished exact-scheduling run.
type Result struct {
	// Schedule is the schedule at the smallest II the search reached.
	Schedule *sched.Schedule
	// Proved reports that every II below Schedule.II was exhaustively
	// refuted: Schedule.II is the minimum over the search space.
	Proved bool
	// LowerBound is the smallest II not proven infeasible; when Proved,
	// it equals Schedule.II.
	LowerBound int
	// Steps is the number of candidate placements enumerated.
	Steps int64
}

// String summarises the run.
func (r *Result) String() string {
	proof := "proved optimal"
	if !r.Proved {
		proof = fmt.Sprintf("unproven (lower bound %d)", r.LowerBound)
	}
	return fmt.Sprintf("exact: II=%d %s, %d steps", r.Schedule.II, proof, r.Steps)
}

// Schedule finds the minimum-II modulo schedule of g on cfg within the
// budget (nil means all defaults).  See the package comment for the
// exact sense of "minimum".
func Schedule(g *ddg.Graph, cfg *machine.Config, budget *Budget) (*Result, error) {
	if budget == nil {
		budget = &Budget{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("exact: %s: empty graph", g.Name)
	}
	if max := budget.Nodes(); max >= 0 && g.NumNodes() > max {
		return nil, fmt.Errorf("exact: %s: %d nodes on %s: %w",
			g.Name, g.NumNodes(), cfg.Name, ErrTooLarge)
	}

	s := &searcher{
		g: g, cfg: cfg,
		ord:      order.SMS(g),
		maxSteps: budget.Steps(),
		homog:    cfg.Hetero == nil,
	}
	minII := g.MinII(cfg)
	// One attempt is allocated for the whole sweep and Reset per II: the
	// reservation tables, incremental pressure tables and undo logs are
	// recycled, so each of the search's expansions costs O(lifetime
	// length) bookkeeping with no steady-state allocation.
	s.a = sched.NewAttempt(g, cfg, minII)
	maxII := budget.MaxII
	if maxII == 0 {
		maxII = minII + sched.SequentialBound(g, cfg)
	}

	lower := minII
	for ii := minII; ii <= maxII; ii++ {
		st, schedule := s.searchII(ii)
		switch st {
		case stFound:
			schedule.MinII = minII
			return &Result{
				Schedule:   schedule,
				Proved:     lower == ii,
				LowerBound: lower,
				Steps:      s.steps,
			}, nil
		case stInfeasible:
			lower = ii + 1
		case stBudget:
			return nil, fmt.Errorf("exact: %s on %s: %d steps at II %d (proved lower bound %d): %w",
				g.Name, cfg.Name, s.steps, ii, lower, ErrBudget)
		}
	}
	return nil, fmt.Errorf("exact: %s on %s: no schedule up to II %d", g.Name, cfg.Name, maxII)
}

// status classifies one searchII / dfs outcome.
type status int

const (
	stInfeasible status = iota
	stFound
	stBudget
)

// searcher carries the per-run immutable inputs (graph, machine, SMS
// order — memoized once and reused across every II of the sweep) and
// the global step counter.
type searcher struct {
	g        *ddg.Graph
	cfg      *machine.Config
	ord      []int
	a        *sched.Attempt
	homog    bool
	maxSteps int64
	steps    int64
}

// searchII exhaustively explores placements at one II, rewinding the
// shared attempt in place.
func (s *searcher) searchII(ii int) (status, *sched.Schedule) {
	s.a.Reset(ii)
	return s.dfs(s.a, 0)
}

// dfs places the idx-th node of the SMS order every feasible way and
// recurses; it returns stFound with the completed schedule, stInfeasible
// when the subtree is exhausted, or stBudget when the step cap fired
// (in which case "infeasible" can no longer be concluded anywhere up
// the stack).
func (s *searcher) dfs(a *sched.Attempt, idx int) (status, *sched.Schedule) {
	if idx == len(s.ord) {
		return stFound, a.Schedule()
	}
	n := s.ord[idx]
	chs := a.Choices(n)
	if idx == 0 {
		chs = s.pinFirst(chs)
	}
	s.steps += int64(len(chs)) + 1
	if s.maxSteps >= 0 && s.steps > s.maxSteps {
		return stBudget, nil
	}
	for _, ch := range chs {
		a.Place(n, ch)
		st, schedule := s.dfs(a, idx+1)
		a.Unplace(n, ch)
		if st != stInfeasible {
			return st, schedule
		}
	}
	return stInfeasible, nil
}

// pinFirst restricts the root node's choices to cycle 0 (where BSA
// always roots the order, so the oracle contract is unaffected; see
// the package comment for why this defines the search space rather
// than exploiting a pure shift symmetry) and, on a homogeneous machine,
// to cluster 0 (a true relabelling symmetry).  If pinning would empty
// the set (it cannot for a well-formed machine, but stay sound), the
// unpinned set is kept.
func (s *searcher) pinFirst(chs []sched.Choice) []sched.Choice {
	var pinned []sched.Choice
	for _, ch := range chs {
		if ch.Cycle != 0 {
			continue
		}
		if s.homog && ch.Cluster != 0 {
			continue
		}
		pinned = append(pinned, ch)
	}
	if len(pinned) == 0 {
		return chs
	}
	return pinned
}
