package exact

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/sched"
)

// TestProvesKnownOptima checks the oracle returns the hand-verifiable
// optimum with a proof on the worked examples: Figure 7's II=2 on the
// paper's 2-cluster machine, and MinII-achieving schedules elsewhere.
func TestProvesKnownOptima(t *testing.T) {
	cases := []struct {
		g    *ddg.Graph
		cfg  machine.Config
		want int
	}{
		// Figure 7: minII = 2 (ResMII ceil(6/4), RecMII 4/2) and the paper
		// schedules it at II=2 on the 2-cluster machine with one 1-cycle bus.
		{ddg.SampleFigure7(), machine.TwoCluster(1, 1), 2},
		// Dot product: RecMII 3 from the accumulator self-dependence.
		{ddg.SampleDotProduct(), machine.Unified(), 3},
		// Eight independent multiplies on 4 FP units: ResMII 2.
		{ddg.SampleIndependent(8), machine.Unified(), 2},
	}
	for _, tc := range cases {
		r, err := Schedule(tc.g, &tc.cfg, nil)
		if err != nil {
			t.Fatalf("%s on %s: %v", tc.g.Name, tc.cfg.Name, err)
		}
		if r.Schedule.II != tc.want || !r.Proved {
			t.Errorf("%s on %s: II=%d proved=%v, want II=%d proved",
				tc.g.Name, tc.cfg.Name, r.Schedule.II, r.Proved, tc.want)
		}
		if r.LowerBound != r.Schedule.II {
			t.Errorf("%s: proved result has LowerBound %d != II %d",
				tc.g.Name, r.LowerBound, r.Schedule.II)
		}
		if err := sched.Validate(r.Schedule); err != nil {
			t.Errorf("%s on %s: oracle produced invalid schedule: %v",
				tc.g.Name, tc.cfg.Name, err)
		}
	}
}

// TestSchedulesValidateEverywhere runs the oracle over every sample
// graph and Table 1 machine and pushes each result through the
// independent validator — the oracle must never trade optimality for
// validity.
func TestSchedulesValidateEverywhere(t *testing.T) {
	graphs := []*ddg.Graph{
		ddg.SampleDotProduct(), ddg.SampleFigure7(), ddg.SampleStencil(),
		ddg.SampleChain(6), ddg.SampleIndependent(8),
	}
	for _, cfg := range machine.Table1Configs() {
		for _, g := range graphs {
			r, err := Schedule(g, &cfg, nil)
			if err != nil {
				t.Fatalf("%s on %s: %v", g.Name, cfg.Name, err)
			}
			if err := sched.Validate(r.Schedule); err != nil {
				t.Errorf("%s on %s: %v", g.Name, cfg.Name, err)
			}
			if r.Schedule.II < r.Schedule.MinII {
				t.Errorf("%s on %s: II %d below MinII %d",
					g.Name, cfg.Name, r.Schedule.II, r.Schedule.MinII)
			}
		}
	}
}

// TestNodeBudget rejects oversized graphs with ErrTooLarge before
// searching.
func TestNodeBudget(t *testing.T) {
	g := ddg.SampleChain(8)
	cfg := machine.TwoCluster(1, 1)
	if _, err := Schedule(g, &cfg, &Budget{MaxNodes: 4}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	// MaxNodes < 0 disables the check.
	if _, err := Schedule(g, &cfg, &Budget{MaxNodes: -1}); err != nil {
		t.Errorf("disabled node budget still failed: %v", err)
	}
}

// TestStepBudget exhausts a tiny step budget and checks the error is
// classified, not mistaken for infeasibility.
func TestStepBudget(t *testing.T) {
	g := ddg.SampleStencil()
	cfg := machine.FourCluster(1, 2)
	_, err := Schedule(g, &cfg, &Budget{MaxSteps: 3})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if err != nil && !strings.Contains(err.Error(), "lower bound") {
		t.Errorf("budget error %q does not report the proved lower bound", err)
	}
}

// TestMaxIICap fails cleanly when the sweep cap is below feasibility.
func TestMaxIICap(t *testing.T) {
	g := ddg.SampleDotProduct() // optimum 3 on the unified machine
	cfg := machine.Unified()
	if _, err := Schedule(g, &cfg, &Budget{MaxII: 2}); err == nil {
		t.Error("II capped below the optimum must fail")
	}
}

// TestHeterogeneousMachine keeps the cluster-symmetry reduction honest:
// on a heterogeneous machine the first node must be allowed onto any
// cluster.  One cluster has the only FP units, the other the only
// memory units, so a schedule exists but never with everything on
// cluster 0.
func TestHeterogeneousMachine(t *testing.T) {
	g := ddg.SampleDotProduct()
	cfg := machine.Config{
		Name:      "hetero",
		NClusters: 2,
		Hetero: [][machine.NumFUClasses]int{
			{2, 2, 0}, // INT+FP only
			{2, 0, 2}, // INT+MEM only
		},
		RegsPerCluster: 16,
		NBuses:         2,
		BusLatency:     1,
	}
	r, err := Schedule(g, &cfg, nil)
	if err != nil {
		t.Fatalf("hetero: %v", err)
	}
	if err := sched.Validate(r.Schedule); err != nil {
		t.Errorf("hetero schedule invalid: %v", err)
	}
	clusters := map[int]bool{}
	for _, p := range r.Schedule.Placements {
		clusters[p.Cluster] = true
	}
	if len(clusters) != 2 {
		t.Errorf("hetero schedule uses clusters %v, want both", clusters)
	}
}

// TestEmptyAndInvalidInputs covers the guard rails.
func TestEmptyAndInvalidInputs(t *testing.T) {
	cfg := machine.Unified()
	if _, err := Schedule(ddg.New("empty"), &cfg, nil); err == nil {
		t.Error("empty graph accepted")
	}
	bad := machine.Config{Name: "bad"}
	if _, err := Schedule(ddg.SampleChain(3), &bad, nil); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestResultString covers both proof phrasings.
func TestResultString(t *testing.T) {
	g := ddg.SampleChain(3)
	cfg := machine.Unified()
	r, err := Schedule(g, &cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.String(); !strings.Contains(s, "proved optimal") {
		t.Errorf("String() = %q, want proof claim", s)
	}
	r.Proved = false
	r.LowerBound = 1
	if s := r.String(); !strings.Contains(s, "unproven") {
		t.Errorf("String() = %q, want unproven claim", s)
	}
}
