// Package sched implements the paper's core contribution: modulo
// scheduling for clustered VLIW machines with a *unified
// assign-and-schedule* strategy (BSA, Figure 5).  Cluster selection and
// cycle/FU placement happen in one pass over the SMS node order; cluster
// candidates are ranked by the out-edge profit; inter-cluster
// communications are placed on shared buses modelled as reservation-table
// resources that stay busy for the whole bus latency.
//
// The same machinery schedules the unified machine (one cluster, no
// buses) and, via FixedAssignment, the two-phase Nystrom & Eichenberger
// baseline in package assign.
//
// # Performance
//
// The scheduler's inner loop is allocation-free in the steady state
// (BenchmarkTryCommitAttempt and BenchmarkPlaceUnplace report
// 0 allocs/op) and its reservation tables are packed bitsets:
//
//   - The modulo reservation table (mrt.go) keeps one uint64 word per
//     bus and per (cluster, FU class) for any II <= 64 — the practical
//     range; Table 1 machines schedule at II <= ~30.  A bus-transfer
//     window of BusLatency consecutive modulo slots, including its wrap
//     past II-1, is a single masked AND; finding the first feasible
//     transfer start is a rotate-and-TrailingZeros scan (busScan)
//     instead of a per-slot probing loop.  Giant IIs fall back to a
//     multi-word path that the differential tests drive against a
//     per-slot scalar oracle (mrt_scalar.go).
//
//   - All per-attempt state lives in flat arenas sized once per
//     ScheduleGraph call and recycled across the II search via
//     epoch-stamped resets (state.go); communication feasibility is
//     projected per node into per-cluster windows and satisfaction
//     thresholds (buildNodeTpl) before the cycle scan runs.
//
// # Parallel II search
//
// Options.Parallel > 1 races independent II candidates on separate
// goroutines (parallel.go).  The race is deterministic: workers claim
// the exact candidate sequence the serial search would scan, in order;
// the winner is the lowest-index feasible II; and an in-flight attempt
// is cancelled only when a lower index has already succeeded, so every
// index below the winner runs to completion and the failure telemetry
// (Causes, BusLimited) is summed over exactly those indices.  The
// result — II, placements, transfers, telemetry — is bit-identical to
// the serial search's; the tests sweep the trimmed corpus across every
// Table 1 machine to enforce this.  Worker count is capped at
// GOMAXPROCS, so a single-processor run degrades to the serial loop.
package sched
