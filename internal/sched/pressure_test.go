package sched

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// These tests enforce the invariant the incremental register-pressure
// tables must maintain: after every place and unplace, each cluster's
// table equals regpress.Pressure over the lifetimes rebuilt from scratch
// (state.referenceLifetimes, the old full-recompute implementation).
// DebugPressureChecks wires that comparison into place/unplace itself,
// so driving the real schedulers over the fuzz-seed corpus exercises the
// invariant at every single speculative placement BSA makes — the same
// differential guarantee that proves the refactor changed no schedules.

// pressureSeeds mirrors FuzzSchedule's committed seed corpus plus extra
// ddg.Random shapes.
var pressureSeeds = []struct {
	seed           uint64
	nNodes, nExtra uint8
}{
	{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}, {4, 0, 0},
	{1, 6, 3}, {42, 10, 5}, {7, 14, 7}, {123, 9, 6},
	{5, 8, 2}, {6, 12, 6}, {9, 15, 7}, {11, 5, 1}, {13, 16, 4},
	{17, 7, 5}, {19, 11, 3}, {23, 13, 2}, {29, 10, 7}, {31, 6, 6},
}

func TestPressureInvariantOverFuzzCorpus(t *testing.T) {
	DebugPressureChecks(true)
	defer DebugPressureChecks(false)
	scheduled := 0
	for _, sd := range pressureSeeds {
		g := ddg.Random(sd.seed, sd.nNodes, sd.nExtra)
		if g == nil {
			continue
		}
		for i := range fuzzConfigs {
			cfg := fuzzConfigs[i]
			// checkPressure panics inside place/unplace on any divergence;
			// both successful and failed schedules exercise it.
			if s, err := ScheduleGraph(g, &cfg, nil); err == nil {
				scheduled++
				if err := Validate(s); err != nil {
					t.Fatalf("seed %+v on %s: invalid schedule: %v", sd, cfg.Name, err)
				}
			}
		}
	}
	if scheduled == 0 {
		t.Fatal("no seed scheduled anywhere; invariant test is vacuous")
	}
}

// TestPressureInvariantAttemptWalk drives the Attempt API the way the
// exact oracle does — enumerate, place, recurse, unplace — with the
// oracle comparison live, covering deep speculative stacks and rollback
// orders BSA itself never produces.
func TestPressureInvariantAttemptWalk(t *testing.T) {
	DebugPressureChecks(true)
	defer DebugPressureChecks(false)
	for _, sd := range pressureSeeds {
		g := ddg.Random(sd.seed, sd.nNodes, sd.nExtra)
		if g == nil || g.NumNodes() > 12 {
			continue
		}
		cfg := machine.TwoCluster(1, 1)
		ii := g.MinII(&cfg) + 2
		a := NewAttempt(g, &cfg, ii)
		var walk func(idx int, budget *int) bool
		walk = func(idx int, budget *int) bool {
			if idx == g.NumNodes() || *budget <= 0 {
				return true
			}
			chs := a.Choices(idx)
			// Walk a few branches, not just the first, to vary rollback
			// patterns.
			tried := 0
			for _, ch := range chs {
				if tried == 2 || *budget <= 0 {
					break
				}
				tried++
				*budget--
				a.Place(idx, ch)
				walk(idx+1, budget)
				a.Unplace(idx, ch)
			}
			return tried > 0
		}
		budget := 300
		walk(0, &budget)
	}
}

// TestAttemptMaxLiveMatchesSchedule cross-checks the Attempt's exposed
// pressure accessors against the finished Schedule's own MaxLive
// computation (Schedule.Lifetimes + regpress.MaxLive).
func TestAttemptMaxLiveMatchesSchedule(t *testing.T) {
	g := ddg.SampleDotProduct()
	cfg := machine.TwoCluster(1, 1)
	s, err := ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	// Rebuild the same placements through an Attempt.
	a := NewAttempt(g, &cfg, s.II)
	for _, n := range s.Placements {
		placedOne := false
		for _, ch := range a.Choices(n.Node) {
			if ch.Cluster == n.Cluster {
				a.Place(n.Node, ch)
				placedOne = true
				break
			}
		}
		if !placedOne {
			t.Skipf("could not mirror placement of node %d", n.Node)
		}
	}
	if !a.Fits() {
		t.Error("mirrored attempt reports !Fits for a valid schedule")
	}
	rebuilt := a.Schedule()
	want := rebuilt.MaxLive()
	for c := 0; c < cfg.NClusters; c++ {
		if got := a.MaxLive(c); got != want[c] {
			t.Errorf("cluster %d: Attempt.MaxLive = %d, Schedule.MaxLive = %d", c, got, want[c])
		}
	}
}

// TestUndoLogBalances pins the undo-log discipline: a try that fails or
// succeeds must leave the log exactly where it started, and pressure
// must return to all-zero after unwinding every placement.
func TestUndoLogBalances(t *testing.T) {
	g := ddg.SampleFigure7()
	cfg := machine.FourCluster(1, 2)
	st := newState(g, &cfg, g.MinII(&cfg)+3)
	if depth := len(st.undo); depth != 0 {
		t.Fatalf("fresh state undo depth %d", depth)
	}
	type placedRec struct {
		node int
		res  tryResult
	}
	var placedStack []placedRec
	for n := 0; n < g.NumNodes(); n++ {
		before := len(st.undo)
		res, cause := st.try(n, n%cfg.NClusters)
		if cause != CauseNone {
			if len(st.undo) != before {
				t.Fatalf("failed try grew undo log: %d -> %d", before, len(st.undo))
			}
			continue
		}
		if len(st.undo) != before {
			t.Fatalf("successful try (pre-commit) grew undo log: %d -> %d", before, len(st.undo))
		}
		// Copy the plan: the keep buffer is recycled per cluster and this
		// test holds plans across later tries of the same cluster.
		res.plan = append([]plannedComm(nil), res.plan...)
		st.commit(n, n%cfg.NClusters, res)
		placedStack = append(placedStack, placedRec{node: n, res: res})
	}
	for i := len(placedStack) - 1; i >= 0; i-- {
		st.unplace(placedStack[i].node, placedStack[i].res.plan)
	}
	if len(st.undo) != 0 {
		t.Fatalf("undo depth %d after unwinding everything", len(st.undo))
	}
	for c := 0; c < cfg.NClusters; c++ {
		if st.press[c].Max() != 0 {
			t.Fatalf("cluster %d pressure %v nonzero after full unwind", c, st.press[c].Slots())
		}
	}
}

// TestResetReusesWithoutLeaking covers the epoch-based reset: a state
// recycled across IIs must behave exactly like a fresh one.
func TestResetReusesWithoutLeaking(t *testing.T) {
	g := ddg.SampleStencil()
	cfg := machine.TwoCluster(1, 1)
	st := newSchedState(g, &cfg)
	for _, ii := range []int{4, 3, 7, 3} {
		st.reset(ii)
		for n := 0; n < g.NumNodes(); n++ {
			if st.placed(n) {
				t.Fatalf("II=%d: node %d placed after reset", ii, n)
			}
		}
		if len(st.transfers) != 0 || len(st.undo) != 0 {
			t.Fatalf("II=%d: %d transfers, undo depth %d after reset", ii, len(st.transfers), len(st.undo))
		}
		for c := 0; c < cfg.NClusters; c++ {
			if st.press[c].II() != ii || st.press[c].Max() != 0 {
				t.Fatalf("II=%d: cluster %d table not reset (%v)", ii, c, st.press[c].Slots())
			}
		}
		// Place something so the next reset has state to clear.
		if res, cause := st.try(0, 0); cause == CauseNone {
			st.commit(0, 0, res)
		}
	}
}

// TestReferenceLifetimesMatchScheduleLifetimes ties the in-progress
// oracle (referenceLifetimes) to the public Schedule.Lifetimes model on
// a completed schedule, so the two cannot drift apart silently.
func TestReferenceLifetimesMatchScheduleLifetimes(t *testing.T) {
	g := ddg.SampleDotProduct()
	cfg := machine.FourCluster(2, 2)
	s, err := ScheduleGraph(g, &cfg, nil)
	if err != nil {
		t.Skipf("not schedulable: %v", err)
	}
	// Replay the schedule into a state via an Attempt mirror.
	a := NewAttempt(g, &cfg, s.II)
	for _, p := range s.Placements {
		ok := false
		for _, ch := range a.Choices(p.Node) {
			if ch.Cluster == p.Cluster {
				a.Place(p.Node, ch)
				ok = true
				break
			}
		}
		if !ok {
			t.Skipf("cannot mirror node %d", p.Node)
		}
	}
	mirror := a.Schedule()
	ref := a.st.referenceLifetimes()
	pub := mirror.Lifetimes()
	for c := range ref {
		if regpress.MaxLive(ref[c], s.II) != regpress.MaxLive(pub[c], s.II) {
			t.Errorf("cluster %d: reference MaxLive %d != public %d",
				c, regpress.MaxLive(ref[c], s.II), regpress.MaxLive(pub[c], s.II))
		}
	}
}
