package sched

import (
	"fmt"

	"repro/internal/regpress"
)

// pressureChecks, when enabled, cross-checks the incremental per-cluster
// pressure tables against the from-scratch regpress.Pressure oracle
// after every place and unplace, panicking with a diagnostic dump on the
// first divergence.  It turns every scheduling run — BSA, the exact
// oracle's DFS, the fuzzer — into a differential test of the incremental
// bookkeeping, at the cost of restoring the O(V+E) recompute it exists
// to verify.  Tests toggle it via DebugPressureChecks.
var pressureChecks = false

// DebugPressureChecks toggles the incremental-vs-oracle pressure
// verification on every place/unplace (development and test aid; the
// differential and fuzz tests rely on it).
func DebugPressureChecks(on bool) { pressureChecks = on }

// checkPressure asserts the invariant the incremental tables maintain:
// for every cluster, the table's slots equal regpress.Pressure of the
// lifetimes rebuilt from scratch, and the O(1) fits verdict matches the
// oracle's.
func (st *state) checkPressure(op string) {
	lts := st.referenceLifetimes()
	for c := range st.press {
		want := regpress.Pressure(lts[c], st.ii)
		got := st.press[c].Slots()
		for s := range want {
			if got[s] != want[s] {
				panic(fmt.Sprintf(
					"sched: pressure divergence after %s: graph %s II=%d cluster %d slot %d: incremental %v, oracle %v (lifetimes %v)",
					op, st.g.Name, st.ii, c, s, got, want, lts[c]))
			}
		}
		oracleFits := regpress.MaxLive(lts[c], st.ii) <= st.cfg.RegsPerCluster
		if st.press[c].Fits() != oracleFits {
			panic(fmt.Sprintf(
				"sched: fits divergence after %s: graph %s II=%d cluster %d: incremental %v, oracle %v",
				op, st.g.Name, st.ii, c, st.press[c].Fits(), oracleFits))
		}
	}
}
