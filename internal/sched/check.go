package sched

import (
	"fmt"

	"repro/internal/regpress"
)

// pressureChecks, when enabled, cross-checks the incremental per-cluster
// pressure tables against the from-scratch regpress.Pressure oracle
// after every place and unplace, panicking with a diagnostic dump on the
// first divergence.  It turns every scheduling run — BSA, the exact
// oracle's DFS, the fuzzer — into a differential test of the incremental
// bookkeeping, at the cost of restoring the O(V+E) recompute it exists
// to verify.  Tests toggle it via DebugPressureChecks.
var pressureChecks = false

// DebugPressureChecks toggles the incremental-vs-oracle pressure
// verification on every place/unplace (development and test aid; the
// differential and fuzz tests rely on it).
func DebugPressureChecks(on bool) { pressureChecks = on }

// checkActNeeds asserts that the communication template (buildNodeTpl,
// with its satisfied-threshold skip rule) instantiates to exactly the
// direct per-cycle commNeeds output — order included.
func (st *state) checkActNeeds(n, c, t int) {
	want := st.commNeeds(n, c, t, nil)
	var got []commNeed
	nc := st.cfg.NClusters
	for i := range st.tplInBuf {
		tp := &st.tplInBuf[i]
		if tp.pc == c || t >= st.satInBuf[i*nc+c] {
			continue
		}
		got = append(got, commNeed{producer: tp.p, from: tp.pc, to: c,
			release: tp.rel, deadline: tp.dl + t})
	}
	for j := range st.tplOutBuf {
		tp := &st.tplOutBuf[j]
		if tp.mc == c || t <= st.satOutBuf[j] {
			continue
		}
		got = append(got, commNeed{producer: n, from: c, to: tp.mc,
			release: tp.rel + t, deadline: tp.dl})
	}
	if len(want) != len(got) {
		panic(fmt.Sprintf("sched: comm template divergence: node %d c=%d t=%d: %+v vs %+v",
			n, c, t, got, want))
	}
	for i := range want {
		if want[i] != got[i] {
			panic(fmt.Sprintf("sched: comm template divergence: node %d c=%d t=%d need %d: %+v vs %+v",
				n, c, t, i, got[i], want[i]))
		}
	}
}

// checkWindowSkip asserts that a cycle rejected by the template's
// feasibility interval really has no routable communication plan.
func (st *state) checkWindowSkip(n, c, t int) {
	needs := st.commNeeds(n, c, t, nil)
	if plan, ok := st.planComms(needs, nil); ok {
		st.releasePlan(plan)
		panic(fmt.Sprintf("sched: template window wrongly rejected node %d c=%d t=%d", n, c, t))
	}
}

// checkPressure asserts the invariant the incremental tables maintain:
// for every cluster, the table's slots equal regpress.Pressure of the
// lifetimes rebuilt from scratch, and the O(1) fits verdict matches the
// oracle's.
func (st *state) checkPressure(op string) {
	lts := st.referenceLifetimes()
	for c := range st.press {
		want := regpress.Pressure(lts[c], st.ii)
		got := st.press[c].Slots()
		for s := range want {
			if got[s] != want[s] {
				panic(fmt.Sprintf(
					"sched: pressure divergence after %s: graph %s II=%d cluster %d slot %d: incremental %v, oracle %v (lifetimes %v)",
					op, st.g.Name, st.ii, c, s, got, want, lts[c]))
			}
		}
		oracleFits := regpress.MaxLive(lts[c], st.ii) <= st.cfg.RegsPerCluster
		if st.press[c].Fits() != oracleFits {
			panic(fmt.Sprintf(
				"sched: fits divergence after %s: graph %s II=%d cluster %d: incremental %v, oracle %v",
				op, st.g.Name, st.ii, c, st.press[c].Fits(), oracleFits))
		}
	}
}
