package sched

import "fmt"

// Error reports a failed scheduling run with its failure-cause
// histogram, letting drivers (the two-phase baseline, the selective
// unroller) distinguish bus saturation from resource or register
// exhaustion.
type Error struct {
	// Graph and Machine identify the failed run.
	Graph, Machine string
	// MinII is the lower bound that was attempted first.
	MinII int
	// MaxII is the last initiation interval attempted.
	MaxII int
	// Causes counts failed attempts by cause.
	Causes map[FailCause]int
	// LastNode is the node that failed in the final attempt (-1 if
	// unknown).
	LastNode int
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("sched: %s on %s: no schedule in II range [%d, %d] (causes: %v, last failing node %d)",
		e.Graph, e.Machine, e.MinII, e.MaxII, e.Causes, e.LastNode)
}

// BusLimited reports whether any attempt failed because communications
// could not be routed.
func (e *Error) BusLimited() bool { return e.Causes[CauseComm] > 0 }
