package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// Placement records where and when one operation executes.
type Placement struct {
	// Node is the DDG node ID.
	Node int
	// Cluster is the executing cluster.
	Cluster int
	// FU is the unit index within the cluster's FUs of the node's class.
	FU int
	// Cycle is the flat schedule time (>= 0 after normalisation).  The
	// kernel slot is Cycle mod II and the stage is Cycle / II.
	Cycle int
}

// Transfer is one inter-cluster communication: the producer's value is
// written to a bus at Start and latched by the destination cluster's
// incoming-value register at Start+BusLatency.  The bus is busy for the
// entire [Start, Start+BusLatency) window (paper §3).
type Transfer struct {
	// Producer is the node whose value is communicated.
	Producer int
	// From and To are the source and destination clusters.
	From, To int
	// Bus is the bus index used.
	Bus int
	// Start is the flat cycle the transaction begins.
	Start int
}

// FailCause classifies why a scheduling attempt at some II failed.
type FailCause int

// Failure causes, in the priority order used when several clusters fail
// differently for the same node.
const (
	// CauseNone means the attempt succeeded.
	CauseNone FailCause = iota
	// CauseFU: every candidate had no free functional-unit slot.
	CauseFU
	// CauseReg: a placement existed but register pressure overflowed.
	CauseReg
	// CauseComm: a placement existed but its communications could not be
	// routed over the buses — the signal the selective unroller keys on.
	CauseComm
	// CauseCancelled: the attempt was abandoned mid-flight because a
	// lower II already succeeded (parallel II race).  Never recorded in
	// failure telemetry — a cancelled attempt proves nothing about its II.
	CauseCancelled
)

// String names the cause.
func (c FailCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseFU:
		return "fu"
	case CauseReg:
		return "reg"
	case CauseComm:
		return "comm"
	case CauseCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("FailCause(%d)", int(c))
	}
}

// Schedule is a complete modulo schedule.
type Schedule struct {
	// Graph is the scheduled dependence graph.
	Graph *ddg.Graph
	// Cfg is the target machine.
	Cfg machine.Config
	// II is the achieved initiation interval.
	II int
	// MinII is the lower bound max(ResMII, RecMII) for this graph/machine.
	MinII int
	// BusLimited reports that at least one lower II was abandoned because
	// communications could not be routed (Figure 6's LimitedByBus test).
	BusLimited bool
	// Causes counts the abandoned attempts by failure cause.
	Causes map[FailCause]int
	// Placements holds one entry per node, indexed by node ID.
	Placements []Placement
	// Transfers lists every inter-cluster communication.
	Transfers []Transfer
}

// SC returns the stage count: the number of kernel copies overlapped in
// flight, which sets prologue/epilogue length.  Bus transactions count
// toward the span because their kernel slots must exist in some stage.
func (s *Schedule) SC() int {
	max := 0
	for _, p := range s.Placements {
		if p.Cycle > max {
			max = p.Cycle
		}
	}
	for _, t := range s.Transfers {
		if end := t.Start + s.Cfg.BusLatency - 1; end > max {
			max = end
		}
	}
	return max/s.II + 1
}

// Length returns the flat span of the schedule in cycles.
func (s *Schedule) Length() int {
	max := 0
	for _, p := range s.Placements {
		if p.Cycle > max {
			max = p.Cycle
		}
	}
	return max + 1
}

// ClusterOf returns the cluster executing node n.
func (s *Schedule) ClusterOf(n int) int { return s.Placements[n].Cluster }

// CycleOf returns node n's flat schedule time.
func (s *Schedule) CycleOf(n int) int { return s.Placements[n].Cycle }

// SlotOf returns node n's kernel slot (cycle mod II).
func (s *Schedule) SlotOf(n int) int { return s.Placements[n].Cycle % s.II }

// StageOf returns node n's pipeline stage (cycle / II).
func (s *Schedule) StageOf(n int) int { return s.Placements[n].Cycle / s.II }

// NumComms returns the number of inter-cluster communications per kernel
// iteration.
func (s *Schedule) NumComms() int { return len(s.Transfers) }

// Cycles returns the total execution time of the loop for the given
// number of kernel iterations, using the paper's model (perfect memory):
//
//	NCYCLES = (NITER + SC - 1) * II
func (s *Schedule) Cycles(kernelIters int) int {
	return (kernelIters + s.SC() - 1) * s.II
}

// MaxLive returns the register requirement of each cluster.
func (s *Schedule) MaxLive() []int {
	lts := s.Lifetimes()
	out := make([]int, s.Cfg.NClusters)
	for c := range out {
		out[c] = regpress.MaxLive(lts[c], s.II)
	}
	return out
}

// Lifetimes returns the value live ranges per cluster, in flat time: a
// producer's value lives in its own cluster from issue until its last
// local read or last bus write, and in each consuming cluster from bus
// arrival until the last local read there (values consumed directly at
// arrival live in the IRV and need no register).
func (s *Schedule) Lifetimes() [][]regpress.Lifetime {
	out := make([][]regpress.Lifetime, s.Cfg.NClusters)
	byProd := make(map[int][]Transfer)
	for _, t := range s.Transfers {
		byProd[t.Producer] = append(byProd[t.Producer], t)
	}
	for _, n := range s.Graph.Nodes() {
		if !n.Class.ProducesValue() {
			continue
		}
		p := s.Placements[n.ID]
		end := p.Cycle + 1
		for _, e := range s.Graph.OutEdges(n.ID) {
			if e.Kind != ddg.DepTrue {
				continue
			}
			m := s.Placements[e.To]
			if m.Cluster != p.Cluster {
				continue
			}
			if r := m.Cycle + s.II*e.Distance + 1; r > end {
				end = r
			}
		}
		for _, t := range byProd[n.ID] {
			if r := t.Start + 1; r > end {
				end = r
			}
		}
		out[p.Cluster] = append(out[p.Cluster], regpress.Lifetime{Start: p.Cycle, End: end})

		// Consumer-side lifetimes per destination cluster.
		for _, t := range byProd[n.ID] {
			arrival := t.Start + s.Cfg.BusLatency
			last := arrival
			for _, e := range s.Graph.OutEdges(n.ID) {
				if e.Kind != ddg.DepTrue {
					continue
				}
				m := s.Placements[e.To]
				if m.Cluster != t.To {
					continue
				}
				read := m.Cycle + s.II*e.Distance
				// Only reads served by this transfer (arrival <= read).
				if read >= arrival && read+1 > last {
					last = read + 1
				}
			}
			if last > arrival+1 {
				out[t.To] = append(out[t.To], regpress.Lifetime{Start: arrival, End: last})
			}
		}
	}
	return out
}

// String renders the kernel as a reservation-table dump, one row per
// kernel slot, listing the operations (with stage superscripts) and bus
// transactions.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s on %s: II=%d SC=%d comms=%d buslimited=%v\n",
		s.Graph.Name, s.Cfg.Name, s.II, s.SC(), len(s.Transfers), s.BusLimited)
	rows := make([][]string, s.II)
	for _, p := range s.Placements {
		n := s.Graph.Node(p.Node)
		rows[p.Cycle%s.II] = append(rows[p.Cycle%s.II],
			fmt.Sprintf("c%d.%s:%s@%d", p.Cluster, n.Class.FU(), n.Name, p.Cycle/s.II))
	}
	for _, t := range s.Transfers {
		slot := ((t.Start % s.II) + s.II) % s.II
		rows[slot] = append(rows[slot],
			fmt.Sprintf("bus%d:%s(c%d->c%d)", t.Bus, s.Graph.Node(t.Producer).Name, t.From, t.To))
	}
	for slot, ops := range rows {
		sort.Strings(ops)
		fmt.Fprintf(&b, "  [%2d] %s\n", slot, strings.Join(ops, "  "))
	}
	return b.String()
}
