package sched

import (
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/order"
)

// Policy selects how the scheduler chooses among feasible clusters.
// PolicyProfit is the paper's heuristic; the others exist for the
// ablation study (experiment A1).
type Policy int

// Cluster-selection policies.
const (
	// PolicyProfit ranks candidates by out-edge profit with the paper's
	// tie-breaks (single candidate, pred/succ cluster, default cluster,
	// minimum register requirements).
	PolicyProfit Policy = iota
	// PolicyRoundRobin ignores the profit and rotates through feasible
	// clusters.
	PolicyRoundRobin
	// PolicyFirstFit always takes the lowest-numbered feasible cluster.
	PolicyFirstFit
)

// Options tunes a scheduling run.  The zero value gives the paper's
// algorithm.
type Options struct {
	// Order overrides the SMS node order (ablation A2).
	Order []int
	// Policy overrides cluster selection (ablation A1).
	Policy Policy
	// Assignment, when non-nil, fixes each node's cluster and turns the
	// run into the scheduling phase of a two-phase scheme: the candidate
	// set for node n is exactly {Assignment[n]}.
	Assignment []int
	// MaxII caps the initiation-interval search; 0 means an automatic
	// bound (sequential-schedule length plus slack).
	MaxII int
	// ForceII, when positive, tries exactly that II and fails rather than
	// incrementing.  Two-phase schemes use it so the restart (with a fresh
	// cluster assignment) happens in their own driver loop.
	ForceII int
}

// ScheduleGraph runs the basic scheduling algorithm (BSA) of the paper on g
// for the machine cfg: unified assign-and-schedule following the SMS
// order, increasing II and restarting whenever a node cannot be placed.
// With cfg.NClusters == 1 it degenerates to plain SMS for the unified
// machine.
func ScheduleGraph(g *ddg.Graph, cfg *machine.Config, opts *Options) (*Schedule, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("sched: %s: empty graph", g.Name)
	}
	if opts.Assignment != nil && len(opts.Assignment) != g.NumNodes() {
		return nil, fmt.Errorf("sched: assignment length %d, want %d", len(opts.Assignment), g.NumNodes())
	}

	ord := opts.Order
	if ord == nil {
		ord = order.SMS(g)
	}
	if err := order.CheckPermutation(g, ord); err != nil {
		return nil, err
	}

	// MinII includes the bus-latency feasibility floor (ddg.BusMII): IIs
	// on which a needed transfer can never fit are skipped, not
	// attempted.  A floor above max(ResMII, RecMII) means lower IIs were
	// abandoned for the bus — exactly Figure 6's LimitedByBus condition —
	// so the flag is preserved even though no CauseComm attempt ran.
	minII, busFloored := g.MinIIFloored(cfg)
	maxII := opts.MaxII
	if maxII == 0 {
		maxII = minII + sequentialBound(g, cfg)
	}
	if opts.ForceII > 0 {
		if opts.ForceII < minII {
			return nil, &Error{Graph: g.Name, Machine: cfg.Name, MaxII: opts.ForceII,
				Causes: map[FailCause]int{CauseFU: 1}, MinII: minII}
		}
		minII, maxII = opts.ForceII, opts.ForceII
	}

	causes := map[FailCause]int{}
	lastFail := -1
	fails := 0
	for ii := minII; ii <= maxII; {
		st := newState(g, cfg, ii)
		cause, failNode := runAttempt(st, ord, opts)
		if cause == CauseNone {
			s := buildSchedule(st, *cfg)
			s.MinII = minII
			s.BusLimited = causes[CauseComm] > 0 || busFloored
			s.Causes = causes
			return s, nil
		}
		causes[cause]++
		lastFail = failNode
		fails++
		// Dense stepping near MinII preserves schedule quality; after many
		// consecutive failures the II grows geometrically so graphs that
		// can never fit (e.g. register-impossible at any II) fail in
		// O(log MaxII) attempts instead of sweeping the whole range.
		if fails <= 16 {
			ii++
		} else {
			ii += 1 + ii/4
		}
	}
	return nil, &Error{Graph: g.Name, Machine: cfg.Name, MaxII: maxII, MinII: minII,
		Causes: causes, LastNode: lastFail}
}

// sequentialBound returns an II safely large enough to schedule any loop:
// issuing one operation at a time with full latencies and one bus
// transfer per edge always fits.
func sequentialBound(g *ddg.Graph, cfg *machine.Config) int {
	sum := g.NumNodes()
	for _, e := range g.Edges() {
		sum += e.Latency
	}
	if cfg.Clustered() {
		sum += cfg.BusLatency * (g.NumEdges() + 1)
	}
	return sum + 8
}

// debugSched enables failure dumps during development.
var debugSched = false

// candidate is one feasible (cluster, cycle, comm-plan) choice for a node.
type candidate struct {
	cluster int
	res     tryResult
	profit  int
}

// runAttempt schedules every node at the state's II, returning CauseNone
// on success or the dominant failure cause plus the node that failed.
func runAttempt(st *state, ord []int, opts *Options) (FailCause, int) {
	defCluster := -1
	rrCluster := -1
	for _, n := range ord {
		if !st.anyNeighborScheduled(n) {
			defCluster = (defCluster + 1) % st.cfg.NClusters
		}

		var cands []candidate
		worst := CauseFU
		clusters := candidateClusters(st, n, opts)
		for _, c := range clusters {
			res, cause := st.try(n, c)
			if cause == CauseNone {
				cands = append(cands, candidate{cluster: c, res: res, profit: st.profit(n, c)})
				continue
			}
			if cause > worst {
				worst = cause
			}
		}
		if len(cands) == 0 {
			if debugSched {
				w := st.windowOf(n)
				live, fits := st.maxLiveFits()
				fmt.Printf("DBG fail node %d (II=%d): window E=%d(%v,a%v) L=%d(%v,a%v) ncands=%d live=%v fits=%v\n",
					n, st.ii, w.early, w.hasEarly, w.anchoredEarly, w.late, w.hasLate, w.anchoredLate, len(st.candidateCycles(w)), live, fits)
				for id, ok := range st.placed {
					if ok {
						fmt.Printf("  placed %d @ t=%d c=%d\n", id, st.time[id], st.cluster[id])
					}
				}
			}
			return worst, n
		}

		var chosen candidate
		switch opts.Policy {
		case PolicyRoundRobin:
			sort.Slice(cands, func(i, j int) bool { return cands[i].cluster < cands[j].cluster })
			chosen = cands[0]
			for _, c := range cands {
				if c.cluster > rrCluster {
					chosen = c
					break
				}
			}
			rrCluster = chosen.cluster
		case PolicyFirstFit:
			chosen = cands[0]
			for _, c := range cands[1:] {
				if c.cluster < chosen.cluster {
					chosen = c
				}
			}
		default:
			chosen = chooseByProfit(st, n, preferHeadroom(st, cands), defCluster)
		}
		if debugSched {
			w := st.windowOf(n)
			fmt.Printf("DBG place node %d II=%d: E=%d(%v,a%v) L=%d(%v,a%v) -> c%d t=%d plan=%d\n",
				n, st.ii, w.early, w.hasEarly, w.anchoredEarly, w.late, w.hasLate, w.anchoredLate,
				chosen.cluster, chosen.res.cycle, len(chosen.res.plan))
		}
		st.commit(n, chosen.cluster, chosen.res)
	}
	return CauseNone, -1
}

// candidateClusters returns the clusters to try for node n.
func candidateClusters(st *state, n int, opts *Options) []int {
	if opts.Assignment != nil {
		return []int{opts.Assignment[n]}
	}
	out := make([]int, st.cfg.NClusters)
	for i := range out {
		out[i] = i
	}
	return out
}

// preferHeadroom drops candidates that would fill a cluster's register
// file to the brim, as long as a roomier candidate exists.  Once a
// cluster reaches its exact MaxLive capacity, nothing further can be
// placed anywhere — even remote placements extend one of its lifetimes
// through the bus-transfer hold — so a loop larger than one register
// file would jam at every II.  This is BSA's analogue of Nystrom &
// Eichenberger's warning about aggressively filled clusters.
func preferHeadroom(st *state, cands []candidate) []candidate {
	margin := st.cfg.RegsPerCluster / 8
	if margin < 1 {
		margin = 1
	}
	roomy := cands[:0:0]
	for _, c := range cands {
		if c.res.maxLive <= st.cfg.RegsPerCluster-margin {
			roomy = append(roomy, c)
		}
	}
	if len(roomy) == 0 {
		return cands
	}
	return roomy
}

// chooseByProfit applies the paper's prioritised criteria (Figure 5,
// steps 4-9): best profit; then the only candidate; then a cluster
// holding a predecessor or successor of n; then the default cluster;
// finally the candidate minimising register requirements.
func chooseByProfit(st *state, n int, cands []candidate, defCluster int) candidate {
	best := cands[0].profit
	for _, c := range cands[1:] {
		if c.profit > best {
			best = c.profit
		}
	}
	short := cands[:0:0]
	for _, c := range cands {
		if c.profit == best {
			short = append(short, c)
		}
	}
	if len(short) == 1 {
		return short[0]
	}
	// Prefer the candidate with the most scheduled neighbours.
	bestNb, nbCount := -1, 0
	for i, c := range short {
		if nb := st.neighborsIn(n, c.cluster); nb > nbCount {
			bestNb, nbCount = i, nb
		}
	}
	if bestNb >= 0 {
		return short[bestNb]
	}
	for _, c := range short {
		if c.cluster == defCluster {
			return c
		}
	}
	min := short[0]
	for _, c := range short[1:] {
		if c.res.maxLive < min.res.maxLive ||
			(c.res.maxLive == min.res.maxLive && c.cluster < min.cluster) {
			min = c
		}
	}
	return min
}

// buildSchedule normalises the attempt into an immutable Schedule:
// flat times are shifted so the earliest operation issues at cycle 0
// (uniform shifts preserve all modulo distances), and FU indexes are
// assigned within each (cluster, class, slot) group.
func buildSchedule(st *state, cfg machine.Config) *Schedule {
	min := 0
	first := true
	for id, ok := range st.placed {
		if !ok {
			continue
		}
		if first || st.time[id] < min {
			min, first = st.time[id], false
		}
	}

	s := &Schedule{
		Graph:      st.g,
		Cfg:        cfg,
		II:         st.ii,
		Placements: make([]Placement, st.g.NumNodes()),
	}
	for id := range st.placed {
		s.Placements[id] = Placement{
			Node:    id,
			Cluster: st.cluster[id],
			Cycle:   st.time[id] - min,
		}
	}
	for _, t := range st.transfers {
		t.Start -= min
		s.Transfers = append(s.Transfers, t)
	}

	// Deterministic FU assignment inside each (cluster, class, slot).
	type slotKey struct {
		cluster int
		class   machine.FUClass
		slot    int
	}
	groups := map[slotKey][]int{}
	for id := range s.Placements {
		p := &s.Placements[id]
		k := slotKey{p.Cluster, st.g.Node(id).Class.FU(), ((p.Cycle % st.ii) + st.ii) % st.ii}
		groups[k] = append(groups[k], id)
	}
	for _, ids := range groups {
		sort.Slice(ids, func(i, j int) bool {
			if s.Placements[ids[i]].Cycle != s.Placements[ids[j]].Cycle {
				return s.Placements[ids[i]].Cycle < s.Placements[ids[j]].Cycle
			}
			return ids[i] < ids[j]
		})
		for fu, id := range ids {
			s.Placements[id].FU = fu
		}
	}
	return s
}

// DebugSched toggles verbose failure dumps (development aid).
func DebugSched(on bool) { debugSched = on }
