package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/order"
)

// Policy selects how the scheduler chooses among feasible clusters.
// PolicyProfit is the paper's heuristic; the others exist for the
// ablation study (experiment A1).
type Policy int

// Cluster-selection policies.
const (
	// PolicyProfit ranks candidates by out-edge profit with the paper's
	// tie-breaks (single candidate, pred/succ cluster, default cluster,
	// minimum register requirements).
	PolicyProfit Policy = iota
	// PolicyRoundRobin ignores the profit and rotates through feasible
	// clusters.
	PolicyRoundRobin
	// PolicyFirstFit always takes the lowest-numbered feasible cluster.
	PolicyFirstFit
)

// Options tunes a scheduling run.  The zero value gives the paper's
// algorithm.
type Options struct {
	// Order overrides the SMS node order (ablation A2).
	Order []int
	// Policy overrides cluster selection (ablation A1).
	Policy Policy
	// Assignment, when non-nil, fixes each node's cluster and turns the
	// run into the scheduling phase of a two-phase scheme: the candidate
	// set for node n is exactly {Assignment[n]}.
	Assignment []int
	// MaxII caps the initiation-interval search; 0 means an automatic
	// bound (sequential-schedule length plus slack).
	MaxII int
	// ForceII, when positive, tries exactly that II and fails rather than
	// incrementing.  Two-phase schemes use it so the restart (with a fresh
	// cluster assignment) happens in their own driver loop.
	ForceII int
	// Parallel, when > 1, races up to that many II candidates on separate
	// goroutines, capped at GOMAXPROCS.  The result is deterministic — the
	// lowest feasible II of the same sequence the serial search scans, with
	// identical placements and failure telemetry (see parallel.go).  0 or 1
	// keeps the serial search.
	Parallel int
}

// ScheduleGraph runs the basic scheduling algorithm (BSA) of the paper on g
// for the machine cfg: unified assign-and-schedule following the SMS
// order, increasing II and restarting whenever a node cannot be placed.
// With cfg.NClusters == 1 it degenerates to plain SMS for the unified
// machine.
//
// One attempt state is allocated per run and recycled across the whole
// II search (epoch-based reset); the inner placement loop is
// allocation-free in the steady state.
func ScheduleGraph(g *ddg.Graph, cfg *machine.Config, opts *Options) (*Schedule, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("sched: %s: empty graph", g.Name)
	}
	if opts.Assignment != nil && len(opts.Assignment) != g.NumNodes() {
		return nil, fmt.Errorf("sched: assignment length %d, want %d", len(opts.Assignment), g.NumNodes())
	}

	ord := opts.Order
	if ord == nil {
		// The SMS order depends only on the graph: memoize it there, so II
		// retries, repeated runs and parallel II workers share one
		// computation.  It is a permutation by construction — only
		// user-supplied orders need checking.
		ord = g.Memoize("sched.sms", func() any { return order.SMS(g) }).([]int)
	} else if err := order.CheckPermutation(g, ord); err != nil {
		return nil, err
	}

	// MinII includes the bus-latency feasibility floor (ddg.BusMII): IIs
	// on which a needed transfer can never fit are skipped, not
	// attempted.  A floor above max(ResMII, RecMII) means lower IIs were
	// abandoned for the bus — exactly Figure 6's LimitedByBus condition —
	// so the flag is preserved even though no CauseComm attempt ran.
	minII, busFloored := g.MinIIFloored(cfg)
	maxII := opts.MaxII
	if maxII == 0 {
		maxII = minII + sequentialBound(g, cfg)
	}
	if opts.ForceII > 0 {
		if opts.ForceII < minII {
			return nil, &Error{Graph: g.Name, Machine: cfg.Name, MaxII: opts.ForceII,
				Causes: map[FailCause]int{CauseFU: 1}, MinII: minII}
		}
		minII, maxII = opts.ForceII, opts.ForceII
	}

	if workers := raceWorkers(opts); workers > 1 {
		return scheduleParallel(g, cfg, opts, ord, minII, maxII, busFloored, workers)
	}

	var causes [4]int // indexed by FailCause; built into a map only at the end
	lastFail := -1
	fails := 0
	st := getPooledState(g, cfg)
	defer putPooledState(st)
	for ii := minII; ii <= maxII; {
		st.reset(ii)
		cause, failNode := runAttempt(st, ord, opts)
		if cause == CauseNone {
			s := buildSchedule(st, *cfg)
			s.MinII = minII
			s.BusLimited = causes[CauseComm] > 0 || busFloored
			s.Causes = causesMap(causes)
			return s, nil
		}
		causes[cause]++
		lastFail = failNode
		fails++
		ii = nextII(ii, fails)
	}
	return nil, &Error{Graph: g.Name, Machine: cfg.Name, MaxII: maxII, MinII: minII,
		Causes: causesMap(causes), LastNode: lastFail}
}

// nextII advances the II search: dense stepping near MinII preserves
// schedule quality; after many consecutive failures the II grows
// geometrically so graphs that can never fit (e.g. register-impossible
// at any II) fail in O(log MaxII) attempts instead of sweeping the
// whole range.  fails is the number of attempts already made.
func nextII(ii, fails int) int {
	if fails <= 16 {
		return ii + 1
	}
	return ii + 1 + ii/4
}

// causesMap converts the search loop's flat failure counters into the
// public map representation (nil when no attempt failed, matching the
// first-II-succeeds fast path).
func causesMap(c [4]int) map[FailCause]int {
	var m map[FailCause]int
	for k, v := range c {
		if v != 0 {
			if m == nil {
				m = make(map[FailCause]int, 4)
			}
			m[FailCause(k)] = v
		}
	}
	return m
}

// statePool recycles attempt states across ScheduleGraph runs: every
// arena (reservation bitsets, pressure tables, flat scratch) survives
// between runs, so a steady-state compile services each request without
// rebuilding its working set.
var statePool = sync.Pool{New: func() any { return new(state) }}

func getPooledState(g *ddg.Graph, cfg *machine.Config) *state {
	st := statePool.Get().(*state)
	st.rebind(g, cfg)
	return st
}

func putPooledState(st *state) {
	// Drop the graph/config references so pooled idle states don't pin
	// caller object graphs; the arenas themselves stay warm.
	st.g, st.fg, st.cancel = nil, nil, nil
	statePool.Put(st)
}

// sequentialBound returns an II safely large enough to schedule any loop:
// issuing one operation at a time with full latencies and one bus
// transfer per edge always fits.
func sequentialBound(g *ddg.Graph, cfg *machine.Config) int {
	sum := g.NumNodes()
	for _, e := range g.Edges() {
		sum += e.Latency
	}
	if cfg.Clustered() {
		sum += cfg.BusLatency * (g.NumEdges() + 1)
	}
	return sum + 8
}

// debugSched enables failure dumps during development.
var debugSched = false

// candidate is one feasible (cluster, cycle, comm-plan) choice for a node.
// candidate is one feasible (cluster → placement) option for the node
// currently being scheduled.  The placement itself lives in the state's
// per-cluster tryRes slot — keeping the struct two words makes the
// filter and selection copies in the hot loop cheap.
type candidate struct {
	cluster int
	profit  int
}

// runAttempt schedules every node at the state's II, returning CauseNone
// on success or the dominant failure cause plus the node that failed.
func runAttempt(st *state, ord []int, opts *Options) (FailCause, int) {
	defCluster := -1
	rrCluster := -1
	for _, n := range ord {
		if st.cancel != nil && st.cancel() {
			return CauseCancelled, n
		}
		if !st.anyNeighborScheduled(n) {
			defCluster = (defCluster + 1) % st.cfg.NClusters
		}

		// The candidate window depends only on the node, so the cycle
		// scan (and the parallel kernel-slot buffer) is computed once and
		// shared across the cluster candidates.
		st.fillCycles(n)

		// cands stays sorted by ascending cluster: candidateClusters
		// yields clusters in ascending order and try returns at most one
		// candidate per cluster.
		cands := st.candBuf[:0]
		worst := CauseFU
		var profits []int // all clusters in one edge walk, on first success
		for _, c := range candidateClusters(st, n, opts) {
			cause := st.tryCycles(n, c)
			if cause == CauseNone {
				if profits == nil {
					profits = st.profits(n)
				}
				cands = append(cands, candidate{cluster: c, profit: profits[c]})
				continue
			}
			if cause > worst {
				worst = cause
			}
		}
		st.candBuf = cands[:0]
		if len(cands) == 0 {
			if debugSched {
				w := st.windowOf(n)
				fmt.Printf("DBG fail node %d (II=%d): window E=%d(%v,a%v) L=%d(%v,a%v) ncands=%d live=%v fits=%v\n",
					n, st.ii, w.early, w.hasEarly, w.anchoredEarly, w.late, w.hasLate, w.anchoredLate,
					len(st.candidateCycles(w, nil)), st.maxLiveAll(), st.fits())
				for id := 0; id < st.g.NumNodes(); id++ {
					if st.placed(id) {
						fmt.Printf("  placed %d @ t=%d c=%d\n", id, st.time[id], st.cluster[id])
					}
				}
			}
			return worst, n
		}

		var chosen candidate
		switch opts.Policy {
		case PolicyRoundRobin:
			chosen = cands[0]
			for _, c := range cands {
				if c.cluster > rrCluster {
					chosen = c
					break
				}
			}
			rrCluster = chosen.cluster
		case PolicyFirstFit:
			chosen = cands[0]
			for _, c := range cands[1:] {
				if c.cluster < chosen.cluster {
					chosen = c
				}
			}
		default:
			chosen = chooseByProfit(st, n, preferHeadroom(st, cands), defCluster)
		}
		res := &st.tryRes[chosen.cluster]
		if debugSched {
			w := st.windowOf(n)
			fmt.Printf("DBG place node %d II=%d: E=%d(%v,a%v) L=%d(%v,a%v) -> c%d t=%d plan=%d\n",
				n, st.ii, w.early, w.hasEarly, w.anchoredEarly, w.late, w.hasLate, w.anchoredLate,
				chosen.cluster, res.cycle, len(res.plan))
		}
		st.commit(n, chosen.cluster, *res)
	}
	return CauseNone, -1
}

// candidateClusters returns the clusters to try for node n, always in
// ascending cluster order, without allocating (the state's prebuilt
// lists are reused).
//
//vliw:allocfree
func candidateClusters(st *state, n int, opts *Options) []int {
	if opts.Assignment != nil {
		st.oneCluster[0] = opts.Assignment[n]
		return st.oneCluster[:]
	}
	return st.allClusters
}

// preferHeadroom drops candidates that would fill a cluster's register
// file to the brim, as long as a roomier candidate exists.  Once a
// cluster reaches its exact MaxLive capacity, nothing further can be
// placed anywhere — even remote placements extend one of its lifetimes
// through the bus-transfer hold — so a loop larger than one register
// file would jam at every II.  This is BSA's analogue of Nystrom &
// Eichenberger's warning about aggressively filled clusters.
//
//vliw:allocfree
func preferHeadroom(st *state, cands []candidate) []candidate {
	margin := st.cfg.RegsPerCluster / 8
	if margin < 1 {
		margin = 1
	}
	roomy := st.roomyBuf[:0]
	for _, c := range cands {
		if st.tryRes[c.cluster].maxLive <= st.cfg.RegsPerCluster-margin {
			roomy = append(roomy, c)
		}
	}
	st.roomyBuf = roomy[:0]
	if len(roomy) == 0 {
		return cands
	}
	return roomy
}

// chooseByProfit applies the paper's prioritised criteria (Figure 5,
// steps 4-9): best profit; then the only candidate; then a cluster
// holding a predecessor or successor of n; then the default cluster;
// finally the candidate minimising register requirements.
//
//vliw:allocfree
func chooseByProfit(st *state, n int, cands []candidate, defCluster int) candidate {
	best := cands[0].profit
	for _, c := range cands[1:] {
		if c.profit > best {
			best = c.profit
		}
	}
	short := st.shortBuf[:0]
	for _, c := range cands {
		if c.profit == best {
			short = append(short, c)
		}
	}
	st.shortBuf = short[:0]
	if len(short) == 1 {
		return short[0]
	}
	// Prefer the candidate with the most scheduled neighbours.
	bestNb, nbCount := -1, 0
	nb := st.neighborsInAll(n)
	for i, c := range short {
		if v := nb[c.cluster]; v > nbCount {
			bestNb, nbCount = i, v
		}
	}
	if bestNb >= 0 {
		return short[bestNb]
	}
	for _, c := range short {
		if c.cluster == defCluster {
			return c
		}
	}
	min := short[0]
	for _, c := range short[1:] {
		if cl, ml := st.tryRes[c.cluster].maxLive, st.tryRes[min.cluster].maxLive; cl < ml ||
			(cl == ml && c.cluster < min.cluster) {
			min = c
		}
	}
	return min
}

// buildSchedule normalises the attempt into an immutable Schedule:
// flat times are shifted so the earliest operation issues at cycle 0
// (uniform shifts preserve all modulo distances), and FU indexes are
// assigned within each (cluster, class, slot) group by sorting one
// index permutation — no per-group map or slices.
func buildSchedule(st *state, cfg machine.Config) *Schedule {
	n := st.g.NumNodes()
	min := 0
	first := true
	for id := 0; id < n; id++ {
		if !st.placed(id) {
			continue
		}
		if first || st.time[id] < min {
			min, first = st.time[id], false
		}
	}

	s := &Schedule{
		Graph:      st.g,
		Cfg:        cfg,
		II:         st.ii,
		Placements: make([]Placement, n),
	}
	for id := 0; id < n; id++ {
		s.Placements[id] = Placement{
			Node:    id,
			Cluster: st.cluster[id],
			Cycle:   st.time[id] - min,
		}
	}
	if len(st.transfers) > 0 {
		s.Transfers = make([]Transfer, len(st.transfers))
		for i, t := range st.transfers {
			t.Start -= min
			s.Transfers[i] = t
		}
	}

	// Deterministic FU assignment inside each (cluster, class, slot):
	// sort the node IDs by group then by (cycle, id) and walk the runs.
	// The permutation scratch lives on the state so a pooled run's only
	// allocations are the Schedule itself.
	if cap(st.sortBuf) < 2*n {
		st.sortBuf = make([]int, 2*n)
	}
	sortBack := st.sortBuf[:2*n]
	fs := &fuSorter{ids: sortBack[:n:n], key: sortBack[n:]}
	for id := 0; id < n; id++ {
		fs.ids[id] = id
		slot := s.Placements[id].Cycle % st.ii // cycles are >= 0 after the shift
		fs.key[id] = (s.Placements[id].Cluster*int(machine.NumFUClasses)+
			int(st.fg.class[id]))*st.ii + slot
	}
	fs.cycles = s.Placements
	if n <= 48 {
		// Insertion sort: typical loop bodies are small and the IDs come
		// nearly ordered, which beats sort.Sort's interface dispatch.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && fs.Less(j, j-1); j-- {
				fs.Swap(j, j-1)
			}
		}
	} else {
		sort.Sort(fs)
	}
	for i := 0; i < n; {
		j := i
		for j < n && fs.key[fs.ids[j]] == fs.key[fs.ids[i]] {
			s.Placements[fs.ids[j]].FU = j - i
			j++
		}
		i = j
	}
	return s
}

// fuSorter orders node IDs by (cluster, class, slot) group key, then by
// (cycle, id) within a group — a concrete sort.Interface so the
// once-per-schedule normalisation avoids sort.Slice's reflection
// machinery.
type fuSorter struct {
	ids    []int
	key    []int
	cycles []Placement
}

func (f *fuSorter) Len() int      { return len(f.ids) }
func (f *fuSorter) Swap(a, b int) { f.ids[a], f.ids[b] = f.ids[b], f.ids[a] }
func (f *fuSorter) Less(a, b int) bool {
	i, j := f.ids[a], f.ids[b]
	if f.key[i] != f.key[j] {
		return f.key[i] < f.key[j]
	}
	if f.cycles[i].Cycle != f.cycles[j].Cycle {
		return f.cycles[i].Cycle < f.cycles[j].Cycle
	}
	return i < j
}

// DebugSched toggles verbose failure dumps (development aid).
func DebugSched(on bool) { debugSched = on }
