package sched

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// Lifetimes() drives every register-pressure decision; these tests pin
// its exact intervals on hand-built schedules.

func TestLifetimesLocalValue(t *testing.T) {
	g := ddg.New("l")
	p := g.AddNode("p", machine.OpLoad) // lat 2
	c := g.AddNode("c", machine.OpFAdd)
	g.AddTrueDep(p.ID, c.ID, 0)
	s := &Schedule{
		Graph: g, Cfg: machine.TwoCluster(1, 1), II: 2,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 0, Cycle: 4},
		},
	}
	lts := s.Lifetimes()
	// p lives from issue to its read (+1): [0, 5). c unused: [4, 5).
	want := []regpress.Lifetime{{Start: 0, End: 5}, {Start: 4, End: 5}}
	if len(lts[0]) != 2 {
		t.Fatalf("cluster 0 lifetimes = %v", lts[0])
	}
	for i, w := range want {
		if lts[0][i] != w {
			t.Errorf("lifetime %d = %v, want %v", i, lts[0][i], w)
		}
	}
	if len(lts[1]) != 0 {
		t.Errorf("cluster 1 lifetimes = %v, want none", lts[1])
	}
}

func TestLifetimesLoopCarriedStretch(t *testing.T) {
	// A distance-2 consumer reads the instance two iterations later:
	// flat read time = t(consumer) + 2*II.
	g := ddg.New("lc")
	p := g.AddNode("p", machine.OpFAdd) // lat 3
	c := g.AddNode("c", machine.OpFAdd)
	g.AddTrueDep(p.ID, c.ID, 2)
	s := &Schedule{
		Graph: g, Cfg: machine.Unified(), II: 3,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 0, Cycle: 0}, // legal: 0 + 2*3 >= 0+3
		},
	}
	lts := s.Lifetimes()
	// p: [0, 0+2*3+1) = [0, 7).
	if lts[0][0] != (regpress.Lifetime{Start: 0, End: 7}) {
		t.Errorf("carried lifetime = %v, want [0,7)", lts[0][0])
	}
}

func TestLifetimesTransferSplitsOwnership(t *testing.T) {
	// Producer on c0, consumer on c1, transfer at start 2 (latency 1):
	// producer-side hold until the bus reads it, consumer-side from
	// arrival to the read.
	g := ddg.New("x")
	p := g.AddNode("p", machine.OpLoad) // lat 2
	c := g.AddNode("c", machine.OpFAdd)
	g.AddTrueDep(p.ID, c.ID, 0)
	s := &Schedule{
		Graph: g, Cfg: machine.TwoCluster(1, 1), II: 8,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 1, Cycle: 5},
		},
		Transfers: []Transfer{{Producer: 0, From: 0, To: 1, Bus: 0, Start: 2}},
	}
	lts := s.Lifetimes()
	// Producer cluster: [0, 3) — issue to bus start + 1.
	if lts[0][0] != (regpress.Lifetime{Start: 0, End: 3}) {
		t.Errorf("producer-side = %v, want [0,3)", lts[0][0])
	}
	// Consumer cluster: the arrived value [3, 6) — arrival to read + 1 —
	// plus the consumer's own produced value [5, 6).
	want := []regpress.Lifetime{{Start: 3, End: 6}, {Start: 5, End: 6}}
	if len(lts[1]) != 2 || lts[1][0] != want[0] || lts[1][1] != want[1] {
		t.Errorf("consumer-side = %v, want %v", lts[1], want)
	}
}

func TestLifetimesIRVDirectConsumptionNeedsNoRegister(t *testing.T) {
	// Consumer issues exactly at arrival: the value feeds the FU from
	// the incoming-value register; no consumer-side lifetime.
	g := ddg.New("irv")
	p := g.AddNode("p", machine.OpLoad)
	c := g.AddNode("c", machine.OpFAdd)
	g.AddTrueDep(p.ID, c.ID, 0)
	s := &Schedule{
		Graph: g, Cfg: machine.TwoCluster(1, 1), II: 8,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 1, Cycle: 3}, // == arrival (2 + 1)
		},
		Transfers: []Transfer{{Producer: 0, From: 0, To: 1, Bus: 0, Start: 2}},
	}
	lts := s.Lifetimes()
	// Only the consumer's own result remains: the arriving operand was
	// consumed straight from the IRV.
	if len(lts[1]) != 1 || lts[1][0] != (regpress.Lifetime{Start: 3, End: 4}) {
		t.Errorf("consumer-side lifetimes = %v, want only c's own value [3,4)", lts[1])
	}
}

func TestLifetimesStoreProducesNone(t *testing.T) {
	g := ddg.New("st")
	p := g.AddNode("p", machine.OpLoad)
	st := g.AddNode("s", machine.OpStore)
	g.AddTrueDep(p.ID, st.ID, 0)
	s := &Schedule{
		Graph: g, Cfg: machine.Unified(), II: 2,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 0, Cycle: 2},
		},
	}
	lts := s.Lifetimes()
	if len(lts[0]) != 1 { // only the load's value
		t.Errorf("lifetimes = %v, want just the load", lts[0])
	}
}

func TestMaxLiveMatchesManualComputation(t *testing.T) {
	g := ddg.New("ml")
	p := g.AddNode("p", machine.OpLoad) // lat 2
	c := g.AddNode("c", machine.OpFAdd)
	g.AddTrueDep(p.ID, c.ID, 0)
	s := &Schedule{
		Graph: g, Cfg: machine.TwoCluster(1, 1), II: 2,
		Placements: []Placement{
			{Node: 0, Cluster: 0, Cycle: 0},
			{Node: 1, Cluster: 0, Cycle: 4},
		},
	}
	// p: [0,5) -> ceil(5/2) = 3 overlapping instances at the peak;
	// c: [4,5) adds 1 at slot 0.
	live := s.MaxLive()
	if live[0] != 4 {
		t.Errorf("MaxLive = %v, want [4 0]", live)
	}
	if live[1] != 0 {
		t.Errorf("cluster 1 MaxLive = %d, want 0", live[1])
	}
}
