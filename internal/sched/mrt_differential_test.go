package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
)

// mrtRes is one live reservation of the differential driver.
type mrtRes struct {
	bus      bool
	c        int
	class    machine.FUClass
	b, cycle int
}

// TestMRTDifferential drives the packed-bitset reservation table and
// the per-slot scalar oracle with the same pseudo-random
// reserve/release sequence and asserts they agree on every free-slot
// query after every step.  The II sweep crosses the one-word/two-word
// boundary (64) and the BusLatency == II wrap boundary, the two places
// the bit arithmetic can go wrong silently.
func TestMRTDifferential(t *testing.T) {
	type combo struct {
		name string
		cfg  machine.Config
		iis  []int
	}
	combos := []combo{
		{"four_1bus_lat1", machine.FourCluster(1, 1), []int{1, 2, 3, 5, 8}},
		{"four_2bus_lat3", machine.FourCluster(2, 3), []int{3, 4, 7}},
		{"two_2bus_lat3", machine.TwoCluster(2, 3), []int{3, 6}},
		{"two_1bus_latEqII", machine.TwoCluster(1, 5), []int{5}},
		{"four_2bus_wide", machine.FourCluster(2, 5), []int{63, 64, 65, 70}},
	}
	for _, cb := range combos {
		for _, ii := range cb.iis {
			for seed := int64(0); seed < 4; seed++ {
				t.Run(fmt.Sprintf("%s/ii%d/seed%d", cb.name, ii, seed), func(t *testing.T) {
					runMRTDifferential(t, &cb.cfg, ii, seed)
				})
			}
		}
	}
}

func runMRTDifferential(t *testing.T, cfg *machine.Config, ii int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	m := newMRT(cfg)
	m.reset(ii)
	oracle := newScalarMRT(cfg)
	oracle.reset(ii)

	var live []mrtRes
	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			// Release a random live reservation.
			i := rng.Intn(len(live))
			r := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if r.bus {
				m.releaseBus(r.b, r.cycle)
				oracle.releaseBus(r.b, r.cycle)
			} else {
				m.releaseFU(r.c, r.class, r.cycle)
				oracle.releaseFU(r.c, r.class, r.cycle)
			}
		} else if cfg.NBuses > 0 && rng.Intn(2) == 0 {
			b := rng.Intn(cfg.NBuses)
			cycle := rng.Intn(3*ii) - ii // exercise negative cycles too
			got, want := m.busFree(b, cycle), oracle.busFree(b, cycle)
			if got != want {
				t.Fatalf("step %d: busFree(%d, %d) = %v, oracle %v", step, b, cycle, got, want)
			}
			if got {
				m.reserveBus(b, cycle)
				oracle.reserveBus(b, cycle)
				live = append(live, mrtRes{bus: true, b: b, cycle: cycle})
			}
		} else {
			c := rng.Intn(cfg.NClusters)
			class := machine.FUClass(rng.Intn(int(machine.NumFUClasses)))
			cycle := rng.Intn(3*ii) - ii
			got, want := m.fuFree(c, class, cycle), oracle.fuFree(c, class, cycle)
			if got != want {
				t.Fatalf("step %d: fuFree(%d, %v, %d) = %v, oracle %v", step, c, class, cycle, got, want)
			}
			if got {
				m.reserveFU(c, class, cycle)
				oracle.reserveFU(c, class, cycle)
				live = append(live, mrtRes{c: c, class: class, cycle: cycle})
			}
		}

		// Full-table agreement after every mutation, plus the bus scan
		// against a slot-by-slot reference.
		for b := 0; b < cfg.NBuses; b++ {
			for s := 0; s < ii; s++ {
				if got, want := m.busFreeSlot(b, s), oracle.busFree(b, s); got != want {
					t.Fatalf("step %d: busFreeSlot(%d, %d) = %v, oracle %v", step, b, s, got, want)
				}
			}
			for s := 0; s < ii; s++ {
				n := 1 + rng.Intn(ii)
				got := m.busScan(b, s, n)
				want := -1
				for k := 0; k < n; k++ {
					if oracle.busFree(b, (s+k)%ii) {
						want = k
						break
					}
				}
				if got != want {
					t.Fatalf("step %d: busScan(%d, %d, %d) = %d, oracle %d", step, b, s, n, got, want)
				}
			}
		}
	}
}

// TestBusScanWrapAtLatencyEqualsII pins busScan on the full-wrap
// boundary: with BusLatency == II every start occupies the whole
// kernel, so exactly one transfer fits and the scan must report the
// first start while the bus is empty and none afterwards.
func TestBusScanWrapAtLatencyEqualsII(t *testing.T) {
	cfg := machine.TwoCluster(1, 4)
	m := newMRT(&cfg)
	m.reset(4)
	for s := 0; s < 4; s++ {
		if got := m.busScan(0, s, 4); got != 0 {
			t.Fatalf("empty bus: busScan(0, %d, 4) = %d, want 0", s, got)
		}
	}
	m.reserveBus(0, 2)
	for s := 0; s < 4; s++ {
		if got := m.busScan(0, s, 4); got != -1 {
			t.Fatalf("full bus: busScan(0, %d, 4) = %d, want -1", s, got)
		}
	}
	m.releaseBus(0, 2)
	if got := m.busScan(0, 3, 4); got != 0 {
		t.Fatalf("released bus: busScan(0, 3, 4) = %d, want 0", got)
	}
}

// TestBusScanPartialWrap pins the wrap search path: the only feasible
// start lies before the query slot, so the scan has to wrap past II-1
// and count the offset correctly.
func TestBusScanPartialWrap(t *testing.T) {
	cfg := machine.TwoCluster(1, 2)
	m := newMRT(&cfg)
	m.reset(6)
	// Busy slots 2..5 -> the only latency-2 window is [0,1].
	m.reserveBusSlot(0, 2) // occupies 2 and 3
	m.reserveBusSlot(0, 4) // occupies 4 and 5
	if got := m.busScan(0, 3, 6); got != 3 {
		t.Fatalf("busScan(0, 3, 6) = %d, want 3 (wrap to slot 0)", got)
	}
	if got := m.busScan(0, 3, 3); got != -1 {
		t.Fatalf("busScan(0, 3, 3) = %d, want -1 (window excludes the wrap)", got)
	}
}
