package sched

import (
	"repro/internal/ddg"
	"repro/internal/machine"
)

// This file exposes the scheduler's incremental attempt state to
// exhaustive searchers (internal/exact).  An Attempt is exactly one
// runAttempt in progress — the same modulo reservation table, bus
// planner, window computation and register check BSA uses — but driven
// from outside: the caller enumerates every feasible placement of a
// node, commits one, recurses, and rolls back.  Because the candidate
// enumeration is shared verbatim with BSA's try(), any schedule BSA can
// reach is inside an exhaustive search over Attempt placements; that
// containment is what lets internal/exact prove IIs infeasible.
//
// The register check behind Choices is the incremental per-cluster
// pressure table: each speculative place/check/unplace costs O(lifetime
// length), not a full O(V+E) recompute — the difference between the
// branch-and-bound oracle's millions of expansions being dominated by
// bookkeeping or by actual search.

// Attempt is one in-progress scheduling attempt at a fixed II, open for
// external search.  It is not safe for concurrent use.
type Attempt struct {
	st *state
}

// NewAttempt starts an empty attempt for g on cfg at the given II.  The
// caller is responsible for having validated g and cfg (exact.Schedule
// does it once per run, not once per II).
func NewAttempt(g *ddg.Graph, cfg *machine.Config, ii int) *Attempt {
	return &Attempt{st: newState(g, cfg, ii)}
}

// Reset rewinds the attempt to empty at a new II, reusing every
// internal buffer (reservation tables, pressure tables, transfer and
// undo logs).  An II sweep should allocate one Attempt and Reset it per
// II rather than constructing a fresh one.
//
//vliw:allocfree
func (a *Attempt) Reset(ii int) { a.st.reset(ii) }

// II returns the attempt's initiation interval.
//
//vliw:allocfree
func (a *Attempt) II() int { return a.st.ii }

// MaxLive returns cluster c's current peak register pressure, read from
// the incrementally maintained table (O(II) scan, no recompute).
//
//vliw:allocfree
func (a *Attempt) MaxLive(c int) int { return a.st.press[c].Max() }

// Fits reports whether every cluster's register file currently holds
// its MaxLive — O(NClusters), the same check Choices applies to every
// enumerated placement.
//
//vliw:allocfree
func (a *Attempt) Fits() bool { return a.st.fits() }

// Choice is one feasible (cluster, cycle, communication-plan) placement
// for a node, valid for Place until the attempt state changes.
type Choice struct {
	// Cluster and Cycle locate the placement.
	Cluster, Cycle int

	res tryResult
}

// Choices enumerates every feasible placement of node n in the current
// state: for each cluster, every cycle of the node's candidate window
// (the same window try() scans) with a free functional unit, routable
// communications and register files that still fit.  The node's window
// is computed once and shared across the cluster scan.  The enumeration
// leaves the state untouched.  Only the returned choices allocate;
// infeasible candidates are filtered through reused scratch buffers.
func (a *Attempt) Choices(n int) []Choice {
	st := a.st
	st.fillCycles(n)
	class := st.fg.class[n]
	var out []Choice
	for c := 0; c < st.cfg.NClusters; c++ {
		r, s, ii := st.run, st.runSlot, st.ii
		for i, t := 0, r.start; i < r.count; i, t = i+1, t+r.step {
			if i > 0 {
				s += r.step
				if s == ii {
					s = 0
				} else if s < 0 {
					s = ii - 1
				}
			}
			if !st.res.fuFreeSlot(c, class, s) {
				continue
			}
			st.needBuf = st.commNeeds(n, c, t, st.needBuf[:0])
			plan, ok := st.planComms(st.needBuf, st.planBuf[:0])
			st.planBuf = plan[:0]
			if !ok {
				continue
			}
			// Register check against shadow tables — the live state is
			// untouched either way.
			fits, live := st.speculate(n, c, t, plan)
			if pressureChecks {
				st.crossCheckSpeculate(n, c, t, plan, fits, live)
			}
			st.releasePlan(plan)
			if fits {
				// The plan lives in the shared scratch buffer: copy it so
				// the choice survives later enumerations and placements.
				kept := append([]plannedComm(nil), plan...)
				out = append(out, Choice{Cluster: c, Cycle: t,
					res: tryResult{cycle: t, slot: s, plan: kept, maxLive: live}})
			}
		}
	}
	return out
}

// Place commits a choice previously returned by Choices for node n.
// The attempt state must be identical to what it was at enumeration
// time (the depth-first discipline guarantees it), or Place panics on a
// no-longer-free bus slot.
//
//vliw:allocfree
func (a *Attempt) Place(n int, ch Choice) {
	a.st.commit(n, ch.Cluster, ch.res)
}

// Unplace exactly reverses Place.
//
//vliw:allocfree
func (a *Attempt) Unplace(n int, ch Choice) {
	a.st.unplace(n, ch.res.plan)
}

// Schedule freezes a complete attempt (every node placed) into a
// normalised Schedule.  MinII, BusLimited and Causes are left for the
// caller: an exhaustive search has no heuristic failure telemetry.
func (a *Attempt) Schedule() *Schedule {
	return buildSchedule(a.st, *a.st.cfg)
}

// SequentialBound returns an II safely large enough to schedule any
// loop (one operation at a time, full latencies, one bus transfer per
// edge) — the same automatic MaxII cap ScheduleGraph uses, exported so
// exhaustive searchers sweep the identical range.
func SequentialBound(g *ddg.Graph, cfg *machine.Config) int {
	return sequentialBound(g, cfg)
}
