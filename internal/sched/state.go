package sched

import (
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// state is one in-progress scheduling attempt at a fixed II.
type state struct {
	g   *ddg.Graph
	cfg *machine.Config
	ii  int
	res *mrt

	placed  []bool
	time    []int // flat cycle, valid when placed
	cluster []int // cluster, valid when placed

	transfers []Transfer
	// byProdTo indexes committed transfers by (producer, destination
	// cluster) for reuse: one bus write can serve every later consumer in
	// that cluster (the value is latched and stored locally).
	byProdTo map[[2]int][]int
}

func newState(g *ddg.Graph, cfg *machine.Config, ii int) *state {
	n := g.NumNodes()
	st := &state{
		g: g, cfg: cfg, ii: ii,
		res:      newMRT(cfg, ii),
		placed:   make([]bool, n),
		time:     make([]int, n),
		cluster:  make([]int, n),
		byProdTo: make(map[[2]int][]int),
	}
	for i := range st.cluster {
		st.cluster[i] = -1
	}
	return st
}

// window is the legal cycle range for a node derived from its already
// scheduled neighbours.  anchored{Early,Late} report whether a
// distance-0 neighbour contributed: purely loop-carried bounds include a
// -II*distance term that slides with every II retry, so they constrain
// but should not *anchor* the scan start (a node tied to the rest of the
// schedule only across iterations is placed near the fresh-subgraph base
// instead of II*distance cycles away).
type window struct {
	early, late                 int
	hasEarly, hasLate           bool
	anchoredEarly, anchoredLate bool
}

func (st *state) windowOf(n int) window {
	var w window
	for _, e := range st.g.InEdges(n) {
		if !st.placed[e.From] || e.From == n {
			continue
		}
		t := st.time[e.From] + e.Latency - st.ii*e.Distance
		if !w.hasEarly || t > w.early {
			w.early, w.hasEarly = t, true
		}
		if e.Distance == 0 {
			w.anchoredEarly = true
		}
	}
	for _, e := range st.g.OutEdges(n) {
		if !st.placed[e.To] || e.To == n {
			continue
		}
		t := st.time[e.To] - e.Latency + st.ii*e.Distance
		if !w.hasLate || t < w.late {
			w.late, w.hasLate = t, true
		}
		if e.Distance == 0 {
			w.anchoredLate = true
		}
	}
	return w
}

// candidateCycles lists the cycles to try for a node, in preference
// order, following SMS: forward from the earliest start when
// predecessors dominate, backward from the latest when successors do,
// the intersection when both exist, and a fresh [0, II) scan otherwise.
//
// On clustered machines the one-sided scans extend beyond one II window:
// moving an operation a whole II later (or earlier) revisits the same
// reservation slot but gives its communications more slack, letting the
// SC grow instead of the II — the paper's §4 observation that
// "communication operations may increase the length of the schedule, and
// therefore the SC may be increased".  Bus patterns repeat with period
// II, so II+BusLatency extra cycles exhaust every distinct possibility.
func (st *state) candidateCycles(w window) []int {
	span := st.ii
	if st.cfg.Clustered() {
		span += st.ii + st.cfg.BusLatency
	}
	var out []int
	switch {
	case w.hasEarly && !w.hasLate:
		start := w.early
		if !w.anchoredEarly && start < 0 {
			start = 0 // loop-carried-only bound: stay near the base
		}
		for t := start; t < start+span; t++ {
			out = append(out, t)
		}
	case !w.hasEarly && w.hasLate:
		start := w.late
		if !w.anchoredLate && start > st.ii-1 {
			start = st.ii - 1
		}
		for t := start; t > start-span; t-- {
			out = append(out, t)
		}
	case w.hasEarly && w.hasLate:
		if !w.anchoredEarly && w.anchoredLate {
			// The node's only same-iteration tie is to its successors:
			// approach them from the latest legal cycle downward instead of
			// drifting II*distance cycles early.
			lo := w.early
			if m := w.late - st.ii + 1; m > lo {
				lo = m
			}
			for t := w.late; t >= lo; t-- {
				out = append(out, t)
			}
			break
		}
		lo := w.early
		if !w.anchoredEarly && !w.anchoredLate && lo < 0 && w.late >= 0 {
			lo = 0 // both bounds loop-carried: stay near the base
		}
		hi := w.late
		if m := lo + st.ii - 1; m < hi {
			hi = m
		}
		for t := lo; t <= hi; t++ {
			out = append(out, t)
		}
	default:
		for t := 0; t < st.ii; t++ {
			out = append(out, t)
		}
	}
	return out
}

// plannedComm is one bus reservation made while trying a placement.
type plannedComm struct {
	producer, from, to int
	bus, start         int
}

// commNeed describes one transfer that a tentative placement requires:
// producer's value must reach cluster `to`, leaving no earlier than
// `release` and arriving no later than `deadline`.
type commNeed struct {
	producer, from, to int
	release, deadline  int // transfer start range: [release, deadline-BusLatency]
}

// commNeeds collects the transfers required to place node n on cluster c
// at flat cycle t, deduplicated against committed transfers that already
// satisfy the timing.  It returns false when a dependence crosses
// clusters but no transfer could ever satisfy it (empty time range
// excluded; that is detected later during bus search).
func (st *state) commNeeds(n, c, t int) []commNeed {
	needs := make(map[[2]int]*commNeed)

	// Incoming values: scheduled producers in other clusters.
	for _, e := range st.g.InEdges(n) {
		if e.Kind != ddg.DepTrue || !st.placed[e.From] || e.From == n {
			continue
		}
		pc := st.cluster[e.From]
		if pc == c {
			continue
		}
		deadline := t + st.ii*e.Distance
		release := st.time[e.From] + e.Latency
		st.mergeNeed(needs, [2]int{e.From, c}, commNeed{
			producer: e.From, from: pc, to: c, release: release, deadline: deadline,
		})
	}
	// Outgoing values: scheduled consumers in other clusters.
	if st.g.Node(n).Class.ProducesValue() {
		for _, e := range st.g.OutEdges(n) {
			if e.Kind != ddg.DepTrue || !st.placed[e.To] || e.To == n {
				continue
			}
			mc := st.cluster[e.To]
			if mc == c {
				continue
			}
			deadline := st.time[e.To] + st.ii*e.Distance
			release := t + e.Latency
			st.mergeNeed(needs, [2]int{n, mc}, commNeed{
				producer: n, from: c, to: mc, release: release, deadline: deadline,
			})
		}
	}

	out := make([]commNeed, 0, len(needs))
	for _, need := range needs {
		// A committed transfer already covering the deadline serves all
		// consumers of this value in that cluster.
		if st.satisfiedByExisting(need) {
			continue
		}
		out = append(out, *need)
	}
	return out
}

// mergeNeed tightens an existing need (same value, same destination):
// the single transfer must satisfy the earliest deadline and the latest
// release.
func (st *state) mergeNeed(m map[[2]int]*commNeed, k [2]int, need commNeed) {
	if cur, ok := m[k]; ok {
		if need.deadline < cur.deadline {
			cur.deadline = need.deadline
		}
		if need.release > cur.release {
			cur.release = need.release
		}
		return
	}
	n := need
	m[k] = &n
}

func (st *state) satisfiedByExisting(need *commNeed) bool {
	for _, idx := range st.byProdTo[[2]int{need.producer, need.to}] {
		tr := st.transfers[idx]
		if tr.Start >= need.release && tr.Start+st.cfg.BusLatency <= need.deadline {
			return true
		}
	}
	return false
}

// planComms reserves buses for every need, first-fit earliest-start.
// On failure it releases everything it reserved and returns false.
func (st *state) planComms(needs []commNeed) ([]plannedComm, bool) {
	var plan []plannedComm
	for _, need := range needs {
		pc, ok := st.planOne(need)
		if !ok {
			st.releasePlan(plan)
			return nil, false
		}
		plan = append(plan, pc)
	}
	return plan, true
}

func (st *state) planOne(need commNeed) (plannedComm, bool) {
	lastStart := need.deadline - st.cfg.BusLatency
	if lastStart < need.release {
		return plannedComm{}, false
	}
	// Bus occupancy repeats modulo II: scanning II distinct starts covers
	// every pattern; the earliest feasible start minimises the producer-
	// side register hold.
	hi := lastStart
	if m := need.release + st.ii - 1; m < hi {
		hi = m
	}
	for s := need.release; s <= hi; s++ {
		for b := 0; b < st.cfg.NBuses; b++ {
			if st.res.busFree(b, s) {
				st.res.reserveBus(b, s)
				return plannedComm{
					producer: need.producer, from: need.from, to: need.to,
					bus: b, start: s,
				}, true
			}
		}
	}
	return plannedComm{}, false
}

func (st *state) releasePlan(plan []plannedComm) {
	for _, pc := range plan {
		st.res.releaseBus(pc.bus, pc.start)
	}
}

// place commits node n at (cluster c, cycle t) with its communication
// plan.  The bus slots in plan are already reserved by planComms.
func (st *state) place(n, c, t int, plan []plannedComm) {
	st.res.reserveFU(c, st.g.Node(n).Class.FU(), t)
	st.placed[n] = true
	st.time[n] = t
	st.cluster[n] = c
	for _, pc := range plan {
		idx := len(st.transfers)
		st.transfers = append(st.transfers, Transfer{
			Producer: pc.producer, From: pc.from, To: pc.to, Bus: pc.bus, Start: pc.start,
		})
		k := [2]int{pc.producer, pc.to}
		st.byProdTo[k] = append(st.byProdTo[k], idx)
	}
}

// unplace exactly reverses place (transfers are at the tail).
func (st *state) unplace(n int, plan []plannedComm) {
	st.res.releaseFU(st.cluster[n], st.g.Node(n).Class.FU(), st.time[n])
	st.placed[n] = false
	st.cluster[n] = -1
	for range plan {
		idx := len(st.transfers) - 1
		tr := st.transfers[idx]
		k := [2]int{tr.Producer, tr.To}
		lst := st.byProdTo[k]
		st.byProdTo[k] = lst[:len(lst)-1]
		st.res.releaseBus(tr.Bus, tr.Start)
		st.transfers = st.transfers[:idx]
	}
}

// tryResult is a feasible placement found by try.
type tryResult struct {
	cycle   int
	plan    []plannedComm
	maxLive int // resulting MaxLive of the candidate cluster
}

// try searches for a feasible (cycle, comm plan) for node n on cluster
// c, leaving the state untouched.  reached reports how far the search
// got, for failure diagnosis: CauseFU if no cycle had a free unit,
// CauseComm if communications never fit, CauseReg if only the register
// check failed.
func (st *state) try(n, c int) (tryResult, FailCause) {
	w := st.windowOf(n)
	class := st.g.Node(n).Class.FU()
	reached := CauseFU
	for _, t := range st.candidateCycles(w) {
		if !st.res.fuFree(c, class, t) {
			continue
		}
		needs := st.commNeeds(n, c, t)
		plan, ok := st.planComms(needs)
		if !ok {
			if reached == CauseFU {
				reached = CauseComm
			}
			continue
		}
		// Register check on the hypothetical state.
		st.place(n, c, t, plan)
		liveAll, fits := st.maxLiveFits()
		if fits {
			live := liveAll[c]
			st.unplace(n, plan)
			// Bus slots were released by unplace; the caller re-applies the
			// plan on commit.
			return tryResult{cycle: t, plan: plan, maxLive: live}, CauseNone
		}
		st.unplace(n, plan)
		reached = CauseReg
	}
	return tryResult{}, reached
}

// commit re-applies a placement previously found by try.  Nothing
// changed in between, so the identical reservations must succeed.
func (st *state) commit(n, c int, r tryResult) {
	for i, pc := range r.plan {
		if !st.res.busFree(pc.bus, pc.start) {
			panic("sched: committed transfer no longer fits")
		}
		st.res.reserveBus(pc.bus, pc.start)
		_ = i
	}
	st.place(n, c, r.cycle, r.plan)
}

// maxLiveFits computes each cluster's MaxLive over placed values and
// committed transfers and checks them against the register files.
func (st *state) maxLiveFits() ([]int, bool) {
	lts := make([][]regpress.Lifetime, st.cfg.NClusters)
	byProd := make(map[int][]Transfer)
	for _, t := range st.transfers {
		byProd[t.Producer] = append(byProd[t.Producer], t)
	}
	for _, node := range st.g.Nodes() {
		if !st.placed[node.ID] || !node.Class.ProducesValue() {
			continue
		}
		pc, pt := st.cluster[node.ID], st.time[node.ID]
		end := pt + 1
		for _, e := range st.g.OutEdges(node.ID) {
			if e.Kind != ddg.DepTrue || !st.placed[e.To] {
				continue
			}
			if st.cluster[e.To] != pc {
				continue
			}
			if r := st.time[e.To] + st.ii*e.Distance + 1; r > end {
				end = r
			}
		}
		for _, tr := range byProd[node.ID] {
			if r := tr.Start + 1; r > end {
				end = r
			}
		}
		lts[pc] = append(lts[pc], regpress.Lifetime{Start: pt, End: end})

		for _, tr := range byProd[node.ID] {
			arrival := tr.Start + st.cfg.BusLatency
			last := arrival
			for _, e := range st.g.OutEdges(node.ID) {
				if e.Kind != ddg.DepTrue || !st.placed[e.To] {
					continue
				}
				if st.cluster[e.To] != tr.To {
					continue
				}
				read := st.time[e.To] + st.ii*e.Distance
				if read >= arrival && read+1 > last {
					last = read + 1
				}
			}
			if last > arrival+1 {
				lts[tr.To] = append(lts[tr.To], regpress.Lifetime{Start: arrival, End: last})
			}
		}
	}
	out := make([]int, st.cfg.NClusters)
	ok := true
	for c := range lts {
		out[c] = regpress.MaxLive(lts[c], st.ii)
		if out[c] > st.cfg.RegsPerCluster {
			ok = false
		}
	}
	return out, ok
}

// profit implements the paper's cluster-selection metric: the change in
// cluster c's outgoing true-dependence edges if n joined it.  Edges from
// c's members into n become internal (+1 each); n's own out-edges to
// nodes outside c leak (-1 each; unscheduled consumers count as outside,
// exactly as in Figure 5 where tmpoutedges counts edges "to the rest of
// nodes").
func (st *state) profit(n, c int) int {
	p := 0
	for _, e := range st.g.InEdges(n) {
		if e.Kind == ddg.DepTrue && e.From != n && st.placed[e.From] && st.cluster[e.From] == c {
			p++
		}
	}
	for _, e := range st.g.OutEdges(n) {
		if e.Kind != ddg.DepTrue || e.To == n {
			continue
		}
		if !(st.placed[e.To] && st.cluster[e.To] == c) {
			p--
		}
	}
	return p
}

// neighborsIn counts n's scheduled predecessors and successors living in
// cluster c (tie-break (7) of the selection heuristics).
func (st *state) neighborsIn(n, c int) int {
	count := 0
	for _, v := range st.g.Preds(n) {
		if v != n && st.placed[v] && st.cluster[v] == c {
			count++
		}
	}
	for _, v := range st.g.Succs(n) {
		if v != n && st.placed[v] && st.cluster[v] == c {
			count++
		}
	}
	return count
}

// anyNeighborScheduled reports whether any predecessor or successor of n
// is already placed — when none is, n starts a new subgraph and the
// default cluster advances (Figure 5, step 2).
func (st *state) anyNeighborScheduled(n int) bool {
	for _, v := range st.g.Preds(n) {
		if v != n && st.placed[v] {
			return true
		}
	}
	for _, v := range st.g.Succs(n) {
		if v != n && st.placed[v] {
			return true
		}
	}
	return false
}
