package sched

import (
	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/regpress"
)

// state is one in-progress scheduling attempt at a fixed II.
//
// It is built for reuse: ScheduleGraph draws one state per run from a
// pool and reset() rewinds it for every II of the search (epoch-based
// placement flags, modulo tables resized in place, scratch buffers
// recycled), so the II sweep and the try/place/unplace inner loop are
// allocation-free in the steady state.  rebind() points a recycled
// state at a new graph/machine, growing the per-node arenas in place.
//
// The graph is consumed through its flattened view (flat.go): the inner
// loops walk contiguous value-typed half-edge arrays instead of []*Edge
// pointer chains.
//
// Register pressure is maintained incrementally: press holds one
// regpress.Table per cluster, updated in place/unplace with exactly the
// lifetime segments a placement creates — the node's own value, the
// extensions of already-placed same-cluster producers, and the
// producer/consumer holds of its bus transfers.  Candidate placements
// are checked without touching the live tables at all: speculate()
// applies the would-be segments to per-cluster Shadow copies (snapshot
// + additive apply, nothing to undo), so only the chosen candidate pays
// for a real place.
type state struct {
	g   *ddg.Graph
	fg  *flatGraph
	cfg *machine.Config
	ii  int
	res *mrt

	// Placement flags are epoch-based so reset() is O(1): node n is
	// placed iff placedEpoch[n] == epoch.  time/cluster/lifeEnd/mark are
	// only read while a node is placed.
	epoch       int32
	placedEpoch []int32
	time        []int // flat cycle, valid when placed
	cluster     []int // cluster, valid when placed

	transfers []Transfer
	// byProd indexes committed transfers by producer (all destination
	// clusters) for transfer reuse — one bus write can serve every later
	// consumer in its destination cluster — and for the incremental
	// consumer-side lifetime extensions.  Entries are appended and popped
	// in lockstep with transfers (strictly LIFO).
	byProd [][]int32
	// transLast[i] is transfers[i]'s consumer-side lifetime bound: the
	// latest read+1 among placed consumers in the destination cluster
	// served by the transfer (>= arrival).  Values read exactly at
	// arrival live in the IRV and need no register, so the lifetime
	// [arrival, transLast) only contributes pressure when
	// transLast > arrival+1.
	transLast []int

	// lifeEnd[n] is node n's producer-side lifetime end — issue to last
	// same-cluster read, loop-carried reads included, or last bus write,
	// whichever is later.  Valid while n is placed and produces a value.
	lifeEnd []int

	// press[c] is cluster c's incrementally maintained modulo register
	// pressure; fits() is O(NClusters).
	press []regpress.Table
	// undo records every pressure mutation so unplace can rewind to
	// mark[n], the undo-stack depth saved when n was placed.  place and
	// unplace are strictly LIFO (the exact oracle's DFS), which is what
	// makes a single stack sufficient.
	undo []undoRec
	mark []int

	// Speculation scratch (speculate): per-cluster shadow tables plus
	// stamped temporaries emulating the lifetime/transfer-bound updates
	// a real place would make.  specEpoch advances per speculation so
	// the stamps never need clearing.
	shadow      []regpress.Shadow
	shadowDirty []bool
	dirtyList   []int
	specEpoch   int32
	lifeTmp     []int
	lifeStamp   []int32
	transTmp    []int
	transStamp  []int32

	// seen/seenEpoch stamp visited neighbours for the allocation-free
	// distinct-neighbour counts (neighborsIn).
	seen      []int32
	seenEpoch int32

	// cancel, when non-nil, is polled once per node by runAttempt; a
	// true return abandons the attempt (parallel II race losers).
	cancel func() bool

	// Per-node scan state (fillCycles): the candidate-cycle run and the
	// kernel slot of its first cycle, shared by the per-cluster tries.
	run     scanRun
	runSlot int

	// Scratch buffers reused across try/Choices calls.
	needBuf     []commNeed
	tplInBuf    []tplIn
	tplOutBuf   []tplOut
	tplMin      []int // per-cluster feasibility interval of the template
	tplMax      []int
	satInBuf    []int // per (in-entry, cluster) satisfied-below threshold
	satOutBuf   []int // per out-entry satisfied-at-or-below threshold
	prodBuf     []prodRead
	endFix      []int // per-cluster fixed consumer end of the node's value
	selfMax     int   // max self-edge distance of the current node, -1 if none
	profitBuf   []int
	nbBuf       []int
	planBuf     []plannedComm
	keepBuf     [][]plannedComm // per-cluster: survives until the candidate is committed
	tryRes      []tryResult     // per-cluster: result slot filled by tryCycles
	candBuf     []candidate
	roomyBuf    []candidate
	shortBuf    []candidate
	sortBuf     []int
	allClusters []int
	oneCluster  [1]int
}

// undoRec is one reversible pressure mutation.
type undoRec struct {
	kind    int8
	x, y, z int
}

const (
	uInterval  int8 = iota // subtract one instance over [y, z) on cluster x
	uLifeEnd               // restore lifeEnd[x] = y (removing [y, lifeEnd[x]) on x's cluster)
	uTransLast             // restore transLast[x] = y
)

// newSchedState allocates a reusable attempt state; call reset(ii)
// before each II.
func newSchedState(g *ddg.Graph, cfg *machine.Config) *state {
	st := new(state)
	st.rebind(g, cfg)
	return st
}

// growInts returns s resized to n entries, reusing the backing array
// when capacity allows.  Contents are unspecified.
//
//vliw:allocfree
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n, n+n/2+8) //vliw:alloc-ok amortized: grows once per size class, reused for the whole run
	}
	return s[:n]
}

//vliw:allocfree
func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/2+8) //vliw:alloc-ok amortized: grows once per size class, reused for the whole run
	}
	return s[:n]
}

// rebind points the state at a graph/machine pair, growing every
// per-node and per-cluster arena in place.  Epoch counters keep
// running: stale placement or speculation stamps from a previous run
// can never equal a future epoch, so the arenas need no clearing.
func (st *state) rebind(g *ddg.Graph, cfg *machine.Config) {
	// Drop references into the previous run's transfers before the
	// per-node arenas are resized for the new graph.
	for i := range st.transfers {
		p := st.transfers[i].Producer
		st.byProd[p] = st.byProd[p][:0]
	}
	st.transfers = st.transfers[:0]
	st.transLast = st.transLast[:0]
	st.undo = st.undo[:0]

	st.g, st.cfg = g, cfg
	st.fg = flatOf(g)
	n := g.NumNodes()
	nc := cfg.NClusters

	st.placedEpoch = growInt32s(st.placedEpoch, n)
	st.seen = growInt32s(st.seen, n)
	st.lifeStamp = growInt32s(st.lifeStamp, n)
	st.time = growInts(st.time, n)
	st.cluster = growInts(st.cluster, n)
	st.lifeEnd = growInts(st.lifeEnd, n)
	st.mark = growInts(st.mark, n)
	st.lifeTmp = growInts(st.lifeTmp, n)
	for i := range st.cluster {
		st.cluster[i] = -1
	}

	if cap(st.byProd) < n {
		byProd := make([][]int32, n, n+n/2+8)
		copy(byProd, st.byProd)
		st.byProd = byProd
	} else {
		st.byProd = st.byProd[:n]
	}

	if cap(st.press) < nc {
		st.press = make([]regpress.Table, nc)
		st.shadow = make([]regpress.Shadow, nc)
	}
	st.press = st.press[:nc]
	st.shadow = st.shadow[:nc]
	if cap(st.shadowDirty) < nc {
		st.shadowDirty = make([]bool, nc)
		st.dirtyList = make([]int, 0, nc)
	}
	st.shadowDirty = st.shadowDirty[:nc]
	for i := range st.shadowDirty {
		st.shadowDirty[i] = false
	}
	st.dirtyList = st.dirtyList[:0]

	if cap(st.keepBuf) < nc {
		keep := make([][]plannedComm, nc)
		copy(keep, st.keepBuf)
		st.keepBuf = keep
	} else {
		st.keepBuf = st.keepBuf[:nc]
	}

	if cap(st.candBuf) < nc {
		cands := make([]candidate, 3*nc)
		st.candBuf = cands[0*nc : 0 : nc]
		st.roomyBuf = cands[1*nc : nc : 2*nc]
		st.shortBuf = cands[2*nc : 2*nc : 3*nc]
	}
	if cap(st.tryRes) < nc {
		st.tryRes = make([]tryResult, nc)
	} else {
		st.tryRes = st.tryRes[:nc]
	}

	st.allClusters = growInts(st.allClusters, nc)
	for i := range st.allClusters {
		st.allClusters[i] = i
	}
	st.profitBuf = growInts(st.profitBuf, nc)
	st.nbBuf = growInts(st.nbBuf, nc)
	st.tplMin = growInts(st.tplMin, nc)
	st.tplMax = growInts(st.tplMax, nc)
	st.endFix = growInts(st.endFix, nc)

	if st.res == nil {
		st.res = newMRT(cfg)
	} else {
		st.res.rebind(cfg)
	}
	st.cancel = nil
}

// newState returns a state ready at the given II (tests and one-shot
// callers; ScheduleGraph uses a pooled state + reset directly).
func newState(g *ddg.Graph, cfg *machine.Config, ii int) *state {
	st := newSchedState(g, cfg)
	st.reset(ii)
	return st
}

// reset rewinds the state to an empty attempt at the given II without
// allocating: the placement epoch advances (O(1) clear), the modulo
// tables are resized in place, and the transfer/undo logs are truncated
// with their capacity kept.
//
//vliw:allocfree
func (st *state) reset(ii int) {
	st.ii = ii
	st.res.reset(ii)
	st.epoch++
	for i := range st.transfers {
		p := st.transfers[i].Producer
		st.byProd[p] = st.byProd[p][:0]
	}
	st.transfers = st.transfers[:0]
	st.transLast = st.transLast[:0]
	st.undo = st.undo[:0]
	for c := range st.press {
		st.press[c].Init(ii, st.cfg.RegsPerCluster)
	}
}

// placed reports whether node n is placed in the current attempt.
//
//vliw:allocfree
func (st *state) placed(n int) bool { return st.placedEpoch[n] == st.epoch }

// window is the legal cycle range for a node derived from its already
// scheduled neighbours.  anchored{Early,Late} report whether a
// distance-0 neighbour contributed: purely loop-carried bounds include a
// -II*distance term that slides with every II retry, so they constrain
// but should not *anchor* the scan start (a node tied to the rest of the
// schedule only across iterations is placed near the fresh-subgraph base
// instead of II*distance cycles away).
type window struct {
	early, late                 int
	hasEarly, hasLate           bool
	anchoredEarly, anchoredLate bool
}

//vliw:allocfree
func (st *state) windowOf(n int) window {
	var w window
	for _, e := range st.fg.allIn(n) {
		p := int(e.n)
		if p == n || !st.placed(p) {
			continue
		}
		t := st.time[p] + int(e.lat) - st.ii*int(e.dist)
		if !w.hasEarly || t > w.early {
			w.early, w.hasEarly = t, true
		}
		if e.dist == 0 {
			w.anchoredEarly = true
		}
	}
	for _, e := range st.fg.allOut(n) {
		m := int(e.n)
		if m == n || !st.placed(m) {
			continue
		}
		t := st.time[m] - int(e.lat) + st.ii*int(e.dist)
		if !w.hasLate || t < w.late {
			w.late, w.hasLate = t, true
		}
		if e.dist == 0 {
			w.anchoredLate = true
		}
	}
	return w
}

// scanRun is a node's candidate-cycle scan as an arithmetic sequence:
// count cycles from start, stepping by +1 or -1.  Every case of the SMS
// cycle-preference policy produces one monotone run, so the scan never
// needs materialising — the try loop walks the run and keeps the kernel
// slot incrementally (one division per node, zero buffer traffic).
type scanRun struct {
	start, count, step int
}

// runOf computes the cycles to try for a node, in preference order,
// following SMS: forward from the earliest start when predecessors
// dominate, backward from the latest when successors do, the
// intersection when both exist, and a fresh [0, II) scan otherwise.
//
// On clustered machines the one-sided scans extend beyond one II window:
// moving an operation a whole II later (or earlier) revisits the same
// reservation slot but gives its communications more slack, letting the
// SC grow instead of the II — the paper's §4 observation that
// "communication operations may increase the length of the schedule, and
// therefore the SC may be increased".  Bus patterns repeat with period
// II, so II+BusLatency extra cycles exhaust every distinct possibility.
//
//vliw:allocfree
func (st *state) runOf(w window) scanRun {
	span := st.ii
	if st.cfg.Clustered() {
		span += st.ii + st.cfg.BusLatency
	}
	switch {
	case w.hasEarly && !w.hasLate:
		start := w.early
		if !w.anchoredEarly && start < 0 {
			start = 0 // loop-carried-only bound: stay near the base
		}
		return scanRun{start: start, count: span, step: 1}
	case !w.hasEarly && w.hasLate:
		start := w.late
		if !w.anchoredLate && start > st.ii-1 {
			start = st.ii - 1
		}
		return scanRun{start: start, count: span, step: -1}
	case w.hasEarly && w.hasLate:
		if !w.anchoredEarly && w.anchoredLate {
			// The node's only same-iteration tie is to its successors:
			// approach them from the latest legal cycle downward instead of
			// drifting II*distance cycles early.
			lo := w.early
			if m := w.late - st.ii + 1; m > lo {
				lo = m
			}
			return scanRun{start: w.late, count: w.late - lo + 1, step: -1}
		}
		lo := w.early
		if !w.anchoredEarly && !w.anchoredLate && lo < 0 && w.late >= 0 {
			lo = 0 // both bounds loop-carried: stay near the base
		}
		hi := w.late
		if m := lo + st.ii - 1; m < hi {
			hi = m
		}
		return scanRun{start: lo, count: hi - lo + 1, step: 1}
	default:
		return scanRun{start: 0, count: st.ii, step: 1}
	}
}

// candidateCycles materialises runOf into a slice (tests, diagnostics
// and the exact-search enumeration; the BSA hot path walks the run
// directly).  Callers pass a scratch slice, typically buf[:0].
//
//vliw:allocfree
func (st *state) candidateCycles(w window, out []int) []int {
	r := st.runOf(w)
	for i, t := 0, r.start; i < r.count; i, t = i+1, t+r.step {
		out = append(out, t)
	}
	return out
}

// fillCycles computes everything about node n the per-cluster tries
// share: the candidate-cycle run, the kernel slot of its first cycle,
// and the node's communication template.
//
//vliw:allocfree
func (st *state) fillCycles(n int) {
	st.run = st.runOf(st.windowOf(n))
	if st.run.count > 0 {
		st.runSlot = st.res.slot(st.run.start)
	}
	st.buildNodeTpl(n)
}

// plannedComm is one bus reservation made while trying a placement.
// slot caches start mod II so release/re-reserve skip the division.
type plannedComm struct {
	producer, from, to int
	bus, start, slot   int
}

// commNeed describes one transfer that a tentative placement requires:
// producer's value must reach cluster `to`, leaving no earlier than
// `release` and arriving no later than `deadline`.
type commNeed struct {
	producer, from, to int
	release, deadline  int // transfer start range: [release, deadline-BusLatency]
}

// commNeeds appends to out the transfers required to place node n on
// cluster c at flat cycle t, deduplicated against committed transfers
// that already satisfy the timing.  Needs for the same (value,
// destination) are merged to the tightest window; the output order is
// the deterministic in-edge-then-out-edge encounter order.  Callers pass
// a scratch slice (typically buf[:0]).
func (st *state) commNeeds(n, c, t int, out []commNeed) []commNeed {
	// Incoming values: scheduled producers in other clusters.
	for _, e := range st.fg.trueIn(n) {
		p := int(e.n)
		if p == n || !st.placed(p) {
			continue
		}
		pc := st.cluster[p]
		if pc == c {
			continue
		}
		out = mergeNeed(out, commNeed{
			producer: p, from: pc, to: c,
			release: st.time[p] + int(e.lat), deadline: t + st.ii*int(e.dist),
		})
	}
	// Outgoing values: scheduled consumers in other clusters.
	if st.fg.produces[n] {
		for _, e := range st.fg.trueOut(n) {
			m := int(e.n)
			if m == n || !st.placed(m) {
				continue
			}
			mc := st.cluster[m]
			if mc == c {
				continue
			}
			out = mergeNeed(out, commNeed{
				producer: n, from: c, to: mc,
				release: t + int(e.lat), deadline: st.time[m] + st.ii*int(e.dist),
			})
		}
	}

	// A committed transfer already covering the deadline serves all
	// consumers of this value in that cluster: drop the need.
	kept := out[:0]
	for i := range out {
		if st.satisfiedByExisting(&out[i]) {
			continue
		}
		kept = append(kept, out[i])
	}
	return kept
}

// mergeNeed tightens an existing need (same value, same destination):
// the single transfer must satisfy the earliest deadline and the latest
// release.
func mergeNeed(needs []commNeed, need commNeed) []commNeed {
	for i := range needs {
		if needs[i].producer == need.producer && needs[i].to == need.to {
			if need.deadline < needs[i].deadline {
				needs[i].deadline = need.deadline
			}
			if need.release > needs[i].release {
				needs[i].release = need.release
			}
			return needs
		}
	}
	return append(needs, need)
}

func (st *state) satisfiedByExisting(need *commNeed) bool {
	for _, idx := range st.byProd[need.producer] {
		tr := &st.transfers[idx]
		if tr.To == need.to && tr.Start >= need.release && tr.Start+st.cfg.BusLatency <= need.deadline {
			return true
		}
	}
	return false
}

// The communication needs of a tentative placement are affine in the
// candidate cycle t — an incoming value's release is fixed by its
// producer and the deadline slides with t (deadline = dl + t); an
// outgoing value's release slides (release = rel + t) and the deadline
// is fixed by the consumer.  The cluster only decides *which* entries
// apply (a counterpart on the candidate cluster needs no transfer), and
// merging for the same (value, destination) always combines entries of
// one slope pattern, where min/max of the bases is min/max of the
// instantiated bounds at every t.  So the template is built once per
// node (tplIn/tplOut, buildNodeTpl) together with the per-cluster
// feasibility intervals (tplMin/tplMax) and satisfied-by-existing
// thresholds (satInBuf/satOutBuf), and each cycle probe is two compares
// per need plus the actual bus scan — no edge walking, no need
// materialisation, no per-cluster activation pass.

// tplIn is a templated incoming need: producer p on cluster pc, release
// fixed at rel, deadline = dl + t.
type tplIn struct{ p, pc, rel, dl int }

// tplOut is a templated outgoing need: consumer cluster mc, release =
// rel + t, deadline fixed at dl.
type tplOut struct{ mc, rel, dl int }

// prodRead is one placed true-dependence producer of the node being
// tried, with the edge's iteration distance — the per-node list lets
// speculate skip the unplaced/self-edge filtering on every cluster.
type prodRead struct{ p, dist int }

// buildNodeTpl rebuilds the node's communication template (one walk of
// its true edges, merged per producer resp. consumer cluster, in
// commNeeds encounter order), then projects it onto every cluster at
// once: tplMin/tplMax hold each cluster's feasibility interval — a
// candidate cycle outside it is guaranteed to fail its bus planning —
// and satInBuf/satOutBuf fold satisfiedByExisting into thresholds on t.
// A committed transfer covers an incoming need exactly for
// t >= satInBuf[i*nc+c] (its arrival precedes the sliding deadline) and
// an outgoing need for t <= satOutBuf[j] (its start trails the sliding
// release; which transfers qualify does not depend on the candidate
// cluster) — at those cycles the entry is skipped, everywhere else it
// is planned.  Valid until the placement state changes.
//
//vliw:allocfree
func (st *state) buildNodeTpl(n int) {
	in := st.tplInBuf[:0]
	prods := st.prodBuf[:0]
	for _, e := range st.fg.trueIn(n) {
		p := int(e.n)
		if p == n || !st.placed(p) {
			continue
		}
		prods = append(prods, prodRead{p: p, dist: int(e.dist)})
		rel, dl := st.time[p]+int(e.lat), st.ii*int(e.dist)
		merged := false
		for i := range in {
			if in[i].p == p {
				if rel > in[i].rel {
					in[i].rel = rel
				}
				if dl < in[i].dl {
					in[i].dl = dl
				}
				merged = true
				break
			}
		}
		if !merged {
			in = append(in, tplIn{p: p, pc: st.cluster[p], rel: rel, dl: dl})
		}
	}
	st.tplInBuf = in
	st.prodBuf = prods

	st.selfMax = -1
	out := st.tplOutBuf[:0]
	if st.fg.produces[n] {
		for c := range st.endFix {
			st.endFix[c] = -tplIntMax - 1 // ends can be negative: no 0 sentinel
		}
		for _, e := range st.fg.trueOut(n) {
			m := int(e.n)
			if m == n {
				if d := int(e.dist); d > st.selfMax {
					st.selfMax = d
				}
				continue
			}
			if !st.placed(m) {
				continue
			}
			mc := st.cluster[m]
			if r := st.time[m] + st.ii*int(e.dist) + 1; r > st.endFix[mc] {
				st.endFix[mc] = r
			}
			rel, dl := int(e.lat), st.time[m]+st.ii*int(e.dist)
			merged := false
			for i := range out {
				if out[i].mc == mc {
					if rel > out[i].rel {
						out[i].rel = rel
					}
					if dl < out[i].dl {
						out[i].dl = dl
					}
					merged = true
					break
				}
			}
			if !merged {
				out = append(out, tplOut{mc: mc, rel: rel, dl: dl})
			}
		}
	}
	st.tplOutBuf = out

	nc := st.cfg.NClusters
	lat := st.cfg.BusLatency
	for c := 0; c < nc; c++ {
		st.tplMin[c] = -tplIntMax - 1
		st.tplMax[c] = tplIntMax
	}
	if len(in)+len(out) == 0 {
		return
	}
	st.satInBuf = growInts(st.satInBuf, len(in)*nc)
	for i := range in {
		tp := &in[i]
		row := st.satInBuf[i*nc : (i+1)*nc]
		for c := range row {
			row[c] = tplIntMax
		}
		for _, idx := range st.byProd[tp.p] {
			tr := &st.transfers[idx]
			if tr.Start >= tp.rel {
				if v := tr.Start + lat - tp.dl; v < row[tr.To] {
					row[tr.To] = v
				}
			}
		}
		m := tp.rel + lat - tp.dl
		for c := 0; c < nc; c++ {
			if c != tp.pc && m > st.tplMin[c] {
				st.tplMin[c] = m
			}
		}
	}
	st.satOutBuf = growInts(st.satOutBuf, len(out))
	for j := range out {
		tp := &out[j]
		satT := -tplIntMax - 1
		for _, idx := range st.byProd[n] {
			tr := &st.transfers[idx]
			if tr.To == tp.mc && tr.Start+lat <= tp.dl {
				if v := tr.Start - tp.rel; v > satT {
					satT = v
				}
			}
		}
		st.satOutBuf[j] = satT
		m := tp.dl - lat - tp.rel
		for c := 0; c < nc; c++ {
			if c != tp.mc && m < st.tplMax[c] {
				st.tplMax[c] = m
			}
		}
	}
	if lat > st.ii && len(in)+len(out) > 0 {
		// No transfer can ever fit at this II (and none was ever
		// committed, so no entry is satisfied): any cluster with an
		// applicable entry gets an empty feasibility interval.
		for c := 0; c < nc; c++ {
			has := false
			for i := range in {
				if in[i].pc != c {
					has = true
					break
				}
			}
			for j := 0; !has && j < len(out); j++ {
				if out[j].mc != c {
					has = true
				}
			}
			if has {
				st.tplMin[c], st.tplMax[c] = 0, -1
			}
		}
	}
}

const tplIntMax = int(^uint(0) >> 1)

// planActs reserves buses for every template entry applicable to
// placing node n on cluster c at cycle t, first-fit earliest-start,
// appending to dst.  Entries whose counterpart lives on c, and entries
// covered by a committed transfer (the satisfied thresholds from
// buildNodeTpl), are skipped.  The cluster's feasibility interval
// [tplMin[c], tplMax[c]] marks the cycles outside which some entry's
// transfer window is empty (release > deadline - BusLatency); an
// empty-window entry can neither be planned nor be covered by a
// committed transfer (coverage needs the same non-empty window), so the
// caller rejects those cycles with zero planning work.  On failure
// planActs releases everything it reserved and returns dst[:0], false.
//
//vliw:allocfree
func (st *state) planActs(n, c, t int, dst []plannedComm) ([]plannedComm, bool) {
	plan := dst[:0]
	nc := st.cfg.NClusters
	for i := range st.tplInBuf {
		tp := &st.tplInBuf[i]
		if tp.pc == c || t >= st.satInBuf[i*nc+c] {
			continue
		}
		pc, ok := st.planTransfer(tp.p, tp.pc, c, tp.rel, tp.dl+t)
		if !ok {
			st.releasePlan(plan)
			return plan[:0], false
		}
		plan = append(plan, pc)
	}
	for j := range st.tplOutBuf {
		tp := &st.tplOutBuf[j]
		if tp.mc == c || t <= st.satOutBuf[j] {
			continue
		}
		pc, ok := st.planTransfer(n, c, tp.mc, tp.rel+t, tp.dl)
		if !ok {
			st.releasePlan(plan)
			return plan[:0], false
		}
		plan = append(plan, pc)
	}
	return plan, true
}

// planComms reserves buses for every need, first-fit earliest-start,
// appending to dst (a reused scratch or per-cluster keep buffer).  On
// failure it releases everything it reserved and returns dst[:0],
// false.
//
//vliw:allocfree
func (st *state) planComms(needs []commNeed, dst []plannedComm) ([]plannedComm, bool) {
	plan := dst[:0]
	for _, need := range needs {
		pc, ok := st.planOne(need)
		if !ok {
			st.releasePlan(plan)
			return plan[:0], false
		}
		plan = append(plan, pc)
	}
	return plan, true
}

//vliw:allocfree
func (st *state) planOne(need commNeed) (plannedComm, bool) {
	return st.planTransfer(need.producer, need.from, need.to, need.release, need.deadline)
}

// planTransfer finds the earliest feasible bus start in
// [release, deadline-BusLatency] — lowest bus on ties, the first-fit
// order the cycle-by-cycle scan used — and reserves it.  Bus occupancy
// repeats modulo II, so at most II distinct starts exist and each bus
// is asked for its first feasible start with one bitset scan
// (mrt.busScan) instead of a per-slot probing loop.
//
//vliw:allocfree
func (st *state) planTransfer(producer, from, to, release, deadline int) (plannedComm, bool) {
	lat := st.cfg.BusLatency
	lastStart := deadline - lat
	if lastStart < release {
		return plannedComm{}, false
	}
	n := lastStart - release + 1
	if n > st.ii {
		n = st.ii
	}
	s0 := st.res.slot(release)
	bestK, bestB := -1, -1
	for b := 0; b < st.cfg.NBuses; b++ {
		if k := st.res.busScan(b, s0, n); k >= 0 && (bestK < 0 || k < bestK) {
			bestK, bestB = k, b
		}
	}
	if bestK < 0 {
		return plannedComm{}, false
	}
	s := s0 + bestK
	if s >= st.ii {
		s -= st.ii
	}
	st.res.reserveBusSlot(bestB, s)
	return plannedComm{producer: producer, from: from, to: to,
		bus: bestB, start: release + bestK, slot: s}, true
}

//vliw:allocfree
func (st *state) releasePlan(plan []plannedComm) {
	for _, pc := range plan {
		st.res.releaseBusSlot(pc.bus, pc.slot)
	}
}

// effEnd maps a transfer's consumer-side bound to the end of its
// pressure interval: a value read no later than arrival+1 is consumed
// straight from the incoming-value register and holds no local register,
// so its effective interval [arrival, effEnd) is empty.
//
//vliw:allocfree
func effEnd(arrival, last int) int {
	if last > arrival+1 {
		return last
	}
	return arrival
}

// place commits node n at (cluster c, cycle t) with its communication
// plan, updating the per-cluster pressure tables with exactly the
// lifetime segments the placement creates.  The bus slots in plan are
// already reserved by planComms.
//
//vliw:allocfree
func (st *state) place(n, c, t int, plan []plannedComm) {
	st.placeAt(n, c, t, st.res.slot(t), plan)
}

// placeAt is place with the kernel slot precomputed (the try path
// already knows it).
//
//vliw:allocfree
func (st *state) placeAt(n, c, t, slot int, plan []plannedComm) {
	st.res.reserveFUSlot(c, st.fg.class[n], slot)
	st.mark[n] = len(st.undo)
	st.placedEpoch[n] = st.epoch
	st.time[n] = t
	st.cluster[n] = c

	// n as consumer: extend the producer-side lifetime of same-cluster
	// producers, and the consumer-side lifetime of committed transfers
	// that cover the new read.  (Self-edges are n's own lifetime,
	// handled below; plan transfers are appended afterwards so this loop
	// only sees committed ones.)
	for _, e := range st.fg.trueIn(n) {
		p := int(e.n)
		if p == n || !st.placed(p) {
			continue
		}
		read := t + st.ii*int(e.dist)
		if st.cluster[p] == c {
			if read+1 > st.lifeEnd[p] {
				st.undo = append(st.undo, undoRec{kind: uLifeEnd, x: p, y: st.lifeEnd[p]})
				st.press[c].Add(st.lifeEnd[p], read+1)
				st.lifeEnd[p] = read + 1
			}
		} else {
			for _, idx := range st.byProd[p] {
				tr := &st.transfers[idx]
				if tr.To != c {
					continue
				}
				arrival := tr.Start + st.cfg.BusLatency
				if read >= arrival && read+1 > st.transLast[idx] {
					old := st.transLast[idx]
					st.undo = append(st.undo, undoRec{kind: uTransLast, x: int(idx), y: old})
					st.press[c].Add(effEnd(arrival, old), read+1)
					st.transLast[idx] = read + 1
				}
			}
		}
	}

	// n's own value: live from issue to its last already-placed
	// same-cluster read (self-edges included); bus writes extend it in
	// the transfer loop below.
	if st.fg.produces[n] {
		end := t + 1
		for _, e := range st.fg.trueOut(n) {
			m := int(e.n)
			if !st.placed(m) || st.cluster[m] != c {
				continue
			}
			if r := st.time[m] + st.ii*int(e.dist) + 1; r > end {
				end = r
			}
		}
		st.lifeEnd[n] = end
		st.press[c].Add(t, end)
		st.undo = append(st.undo, undoRec{kind: uInterval, x: c, y: t, z: end})
	}

	// New transfers: producer-side hold until the bus write, and a fresh
	// consumer-side lifetime over every placed read the arrival covers.
	for _, pc := range plan {
		idx := len(st.transfers)
		st.transfers = append(st.transfers, Transfer{
			Producer: pc.producer, From: pc.from, To: pc.to, Bus: pc.bus, Start: pc.start,
		})
		st.byProd[pc.producer] = append(st.byProd[pc.producer], int32(idx))

		if end := pc.start + 1; end > st.lifeEnd[pc.producer] {
			st.undo = append(st.undo, undoRec{kind: uLifeEnd, x: pc.producer, y: st.lifeEnd[pc.producer]})
			st.press[pc.from].Add(st.lifeEnd[pc.producer], end)
			st.lifeEnd[pc.producer] = end
		}

		arrival := pc.start + st.cfg.BusLatency
		last := arrival
		for _, e := range st.fg.trueOut(pc.producer) {
			m := int(e.n)
			if !st.placed(m) || st.cluster[m] != pc.to {
				continue
			}
			read := st.time[m] + st.ii*int(e.dist)
			if read >= arrival && read+1 > last {
				last = read + 1
			}
		}
		st.transLast = append(st.transLast, last)
		if last > arrival+1 {
			st.press[pc.to].Add(arrival, last)
			st.undo = append(st.undo, undoRec{kind: uInterval, x: pc.to, y: arrival, z: last})
		}
	}

	if pressureChecks {
		st.checkPressure("place") //vliw:alloc-ok debug-gated differential oracle (pressureChecks)
	}
}

// unplace exactly reverses place: the plan's transfers are popped from
// the tail and the pressure mutations are rewound from the undo log
// down to the mark saved at placement.
//
//vliw:allocfree
func (st *state) unplace(n int, plan []plannedComm) {
	st.res.releaseFU(st.cluster[n], st.fg.class[n], st.time[n])
	for range plan {
		idx := len(st.transfers) - 1
		tr := st.transfers[idx]
		lst := st.byProd[tr.Producer]
		st.byProd[tr.Producer] = lst[:len(lst)-1]
		st.res.releaseBus(tr.Bus, tr.Start)
		st.transfers = st.transfers[:idx]
		st.transLast = st.transLast[:idx]
	}
	for len(st.undo) > st.mark[n] {
		u := st.undo[len(st.undo)-1]
		st.undo = st.undo[:len(st.undo)-1]
		switch u.kind {
		case uInterval:
			st.press[u.x].Sub(u.y, u.z)
		case uLifeEnd:
			st.press[st.cluster[u.x]].Sub(u.y, st.lifeEnd[u.x])
			st.lifeEnd[u.x] = u.y
		case uTransLast:
			tr := &st.transfers[u.x]
			arrival := tr.Start + st.cfg.BusLatency
			st.press[tr.To].Sub(effEnd(arrival, u.y), effEnd(arrival, st.transLast[u.x]))
			st.transLast[u.x] = u.y
		}
	}
	st.placedEpoch[n] = 0
	st.cluster[n] = -1

	if pressureChecks {
		st.checkPressure("unplace") //vliw:alloc-ok debug-gated differential oracle (pressureChecks)
	}
}

// fits reports whether every cluster's register file still holds its
// MaxLive — O(NClusters) thanks to the incremental tables.
//
//vliw:allocfree
func (st *state) fits() bool {
	for c := range st.press {
		if !st.press[c].Fits() {
			return false
		}
	}
	return true
}

// maxLiveAll snapshots each cluster's current MaxLive (diagnostics).
func (st *state) maxLiveAll() []int {
	out := make([]int, st.cfg.NClusters)
	for c := range out {
		out[c] = st.press[c].Max()
	}
	return out
}

// shadowOf returns cluster x's speculation shadow, snapshotting the
// live table on the cluster's first touch in this speculation.
//
//vliw:allocfree
func (st *state) shadowOf(x int) *regpress.Shadow {
	if !st.shadowDirty[x] {
		st.shadowDirty[x] = true
		st.dirtyList = append(st.dirtyList, x)
		st.shadow[x].Snapshot(&st.press[x])
	}
	return &st.shadow[x]
}

// lifeCur reads producer p's lifetime end as of the current
// speculation, lazily seeding the stamped temporary from the live
// value.
//
//vliw:allocfree
func (st *state) lifeCur(p int) int {
	if st.lifeStamp[p] != st.specEpoch {
		st.lifeStamp[p] = st.specEpoch
		st.lifeTmp[p] = st.lifeEnd[p]
	}
	return st.lifeTmp[p]
}

// transCur is lifeCur for a committed transfer's consumer-side bound.
//
//vliw:allocfree
func (st *state) transCur(idx int) int {
	if st.transStamp[idx] != st.specEpoch {
		st.transStamp[idx] = st.specEpoch
		st.transTmp[idx] = st.transLast[idx]
	}
	return st.transTmp[idx]
}

// speculate reports whether placing node n at (cluster c, cycle t) with
// the given communication plan would keep every register file within
// capacity, and the candidate cluster's resulting MaxLive.  It mirrors
// place's pressure bookkeeping exactly, but applies the would-be
// lifetime segments to per-cluster shadow snapshots: the live tables,
// reservation rows, transfer logs and undo stack are untouched, and an
// abandoned speculation costs nothing to roll back.  The bus slots in
// plan are reserved (planComms ran) but buses carry no pressure, so the
// plan is consumed purely as timing data.
//
//vliw:allocfree
func (st *state) speculate(n, c, t int, plan []plannedComm) (bool, int) {
	// A placement only ever adds pressure, so nothing can start fitting
	// by placing more; mirroring the place-then-check contract exactly.
	if !st.fits() {
		return false, 0
	}
	st.specEpoch++
	for _, dc := range st.dirtyList {
		st.shadowDirty[dc] = false
	}
	st.dirtyList = st.dirtyList[:0]
	if len(st.transStamp) < len(st.transfers) {
		st.transStamp = growInt32s(st.transStamp[:0], len(st.transfers))
		for i := range st.transStamp {
			st.transStamp[i] = 0
		}
		st.transTmp = growInts(st.transTmp, len(st.transfers))
		st.specEpoch++ // stale stamps were dropped; never match them
	}
	ii := st.ii

	// n as consumer: extensions of same-cluster producers and of
	// committed transfers covering the new read.  The placed producers
	// were collected once per node by buildNodeTpl.
	for _, pr := range st.prodBuf {
		p := pr.p
		read := t + ii*pr.dist
		if st.cluster[p] == c {
			cur := st.lifeCur(p)
			if read+1 > cur {
				st.shadowOf(c).Add(cur, read+1)
				st.lifeTmp[p] = read + 1
			}
		} else {
			for _, idx := range st.byProd[p] {
				tr := &st.transfers[idx]
				if tr.To != c {
					continue
				}
				arrival := tr.Start + st.cfg.BusLatency
				cur := st.transCur(int(idx))
				if read >= arrival && read+1 > cur {
					st.shadowOf(c).Add(effEnd(arrival, cur), read+1)
					st.transTmp[idx] = read + 1
				}
			}
		}
	}

	// n's own value, reads by already-placed same-cluster consumers and
	// self-edges included (n acts as its own placed consumer at (c, t));
	// both were folded per cluster by buildNodeTpl.
	if st.fg.produces[n] {
		end := t + 1
		if st.selfMax >= 0 {
			if r := t + ii*st.selfMax + 1; r > end {
				end = r
			}
		}
		if r := st.endFix[c]; r > end {
			end = r
		}
		st.shadowOf(c).Add(t, end)
		st.lifeStamp[n] = st.specEpoch
		st.lifeTmp[n] = end
	}

	// Plan transfers: producer-side hold until the bus write, and a
	// fresh consumer-side lifetime over every read the arrival covers —
	// with n itself counting as placed at (c, t).
	for _, pc := range plan {
		cur := st.lifeCur(pc.producer)
		if end := pc.start + 1; end > cur {
			st.shadowOf(pc.from).Add(cur, end)
			st.lifeTmp[pc.producer] = end
		}

		arrival := pc.start + st.cfg.BusLatency
		last := arrival
		for _, e := range st.fg.trueOut(pc.producer) {
			m := int(e.n)
			var mc, mt int
			if m == n {
				mc, mt = c, t
			} else if st.placed(m) {
				mc, mt = st.cluster[m], st.time[m]
			} else {
				continue
			}
			if mc != pc.to {
				continue
			}
			read := mt + ii*int(e.dist)
			if read >= arrival && read+1 > last {
				last = read + 1
			}
		}
		if last > arrival+1 {
			st.shadowOf(pc.to).Add(arrival, last)
		}
	}

	for _, dc := range st.dirtyList {
		if !st.shadow[dc].Fits() {
			return false, 0
		}
	}
	if st.shadowDirty[c] {
		return true, st.shadow[c].Max()
	}
	return true, st.press[c].Max()
}

// crossCheckSpeculate replays a speculation through the mutating
// place/fits/unplace path and panics on any verdict divergence — the
// differential that keeps the shadow bookkeeping honest.  Enabled with
// pressureChecks; the plan's bus slots must still be reserved, and are
// left exactly as found.
//
//vliw:allocfree
func (st *state) crossCheckSpeculate(n, c, t int, plan []plannedComm, ok bool, live int) {
	st.place(n, c, t, plan)
	wantOK := st.fits()
	wantLive := 0
	if wantOK {
		wantLive = st.press[c].Max()
	}
	st.unplace(n, plan)
	// unplace released the plan's bus reservations; restore them so the
	// caller's view is unchanged.
	for _, pc := range plan {
		st.res.reserveBus(pc.bus, pc.start)
	}
	if ok != wantOK || (ok && live != wantLive) {
		panic("sched: speculate diverged from place/fits/unplace")
	}
}

// tryResult is a feasible placement found by try.
type tryResult struct {
	cycle   int
	slot    int // cycle mod II, cached for commit
	plan    []plannedComm
	maxLive int // resulting MaxLive of the candidate cluster
}

// try searches for a feasible (cycle, comm plan) for node n on cluster
// c, leaving the state untouched.  reached reports how far the search
// got, for failure diagnosis: CauseFU if no cycle had a free unit,
// CauseComm if communications never fit, CauseReg if only the register
// check failed.
//
//vliw:allocfree
func (st *state) try(n, c int) (tryResult, FailCause) {
	st.fillCycles(n)
	if cause := st.tryCycles(n, c); cause != CauseNone {
		return tryResult{}, cause
	}
	return st.tryRes[c], CauseNone
}

// tryCycles is try with the node's scan state (cycle run, first slot,
// comm template — fillCycles) precomputed, so the BSA driver computes
// each node's window once and shares it across the cluster candidates
// (the window does not depend on the cluster).  On success the result
// is written to the per-cluster slot st.tryRes[c] — not returned by
// value, keeping the hot selection loop free of 64-byte struct copies —
// and its plan lives in the per-cluster keep buffer: both valid until
// the next try of the same cluster, which is exactly the candidate
// lifetime of the BSA selection loop.
//
//vliw:allocfree
func (st *state) tryCycles(n, c int) FailCause {
	class := st.fg.class[n]
	reached := CauseFU
	// The node's communication template (fillCycles) is already
	// projected onto every cluster: the feasibility interval rejects
	// most cycles of a failing scan with two compares, and surviving
	// cycles go straight to the bus scan — no edge walks or need
	// materialisation per probe.
	tMin, tMax := st.tplMin[c], st.tplMax[c]
	r, s, ii := st.run, st.runSlot, st.ii
	for i, t := 0, r.start; i < r.count; i, t = i+1, t+r.step {
		if i > 0 {
			// The run is monotone: the kernel slot steps with the cycle.
			s += r.step
			if s == ii {
				s = 0
			} else if s < 0 {
				s = ii - 1
			}
		}
		if !st.res.fuFreeSlot(c, class, s) {
			continue
		}
		if t < tMin || t > tMax {
			// Some transfer's start window is empty at this cycle.
			if pressureChecks {
				st.checkWindowSkip(n, c, t) //vliw:alloc-ok debug-gated window-skip oracle (pressureChecks)
			}
			if reached == CauseFU {
				reached = CauseComm
			}
			continue
		}
		if pressureChecks {
			st.checkActNeeds(n, c, t) //vliw:alloc-ok debug-gated act-needs oracle (pressureChecks)
		}
		plan, ok := st.planActs(n, c, t, st.keepBuf[c][:0])
		st.keepBuf[c] = plan
		if !ok {
			if reached == CauseFU {
				reached = CauseComm
			}
			continue
		}
		// Register check on the hypothetical state, against shadow
		// tables: nothing to roll back either way.
		fits, live := st.speculate(n, c, t, plan)
		if pressureChecks {
			st.crossCheckSpeculate(n, c, t, plan, fits, live)
		}
		// The plan's bus slots are released either way: the caller
		// re-applies the plan on commit.
		st.releasePlan(plan)
		if fits {
			st.tryRes[c] = tryResult{cycle: t, slot: s, plan: plan, maxLive: live}
			return CauseNone
		}
		reached = CauseReg
	}
	return reached
}

// commit re-applies a placement previously found by try.  Nothing
// changed in between, so the identical reservations must succeed.
//
//vliw:allocfree
func (st *state) commit(n, c int, r tryResult) {
	for _, pc := range r.plan {
		if !st.res.busFreeSlot(pc.bus, pc.slot) {
			panic("sched: committed transfer no longer fits")
		}
		st.res.reserveBusSlot(pc.bus, pc.slot)
	}
	st.placeAt(n, c, r.cycle, r.slot, r.plan)
}

// referenceLifetimes rebuilds every cluster's lifetime list from
// scratch, exactly as the incremental tables model them: each placed
// value lives in its cluster from issue until its last same-cluster read
// or bus write, and each transfer adds a consumer-side hold from arrival
// to the last read it covers.  This is the slow O(V+E) oracle the
// incremental tables replaced; it survives as the differential/fuzz
// check (checkPressure) and for failure diagnostics.
func (st *state) referenceLifetimes() [][]regpress.Lifetime {
	lts := make([][]regpress.Lifetime, st.cfg.NClusters)
	for _, node := range st.g.Nodes() {
		if !st.placed(node.ID) || !node.Class.ProducesValue() {
			continue
		}
		pc, pt := st.cluster[node.ID], st.time[node.ID]
		end := pt + 1
		for _, e := range st.g.OutEdges(node.ID) {
			if e.Kind != ddg.DepTrue || !st.placed(e.To) {
				continue
			}
			if st.cluster[e.To] != pc {
				continue
			}
			if r := st.time[e.To] + st.ii*e.Distance + 1; r > end {
				end = r
			}
		}
		for _, idx := range st.byProd[node.ID] {
			if r := st.transfers[idx].Start + 1; r > end {
				end = r
			}
		}
		lts[pc] = append(lts[pc], regpress.Lifetime{Start: pt, End: end})

		for _, idx := range st.byProd[node.ID] {
			tr := st.transfers[idx]
			arrival := tr.Start + st.cfg.BusLatency
			last := arrival
			for _, e := range st.g.OutEdges(node.ID) {
				if e.Kind != ddg.DepTrue || !st.placed(e.To) {
					continue
				}
				if st.cluster[e.To] != tr.To {
					continue
				}
				read := st.time[e.To] + st.ii*e.Distance
				if read >= arrival && read+1 > last {
					last = read + 1
				}
			}
			if last > arrival+1 {
				lts[tr.To] = append(lts[tr.To], regpress.Lifetime{Start: arrival, End: last})
			}
		}
	}
	return lts
}

// profit implements the paper's cluster-selection metric: the change in
// cluster c's outgoing true-dependence edges if n joined it.  Edges from
// c's members into n become internal (+1 each); n's own out-edges to
// nodes outside c leak (-1 each; unscheduled consumers count as outside,
// exactly as in Figure 5 where tmpoutedges counts edges "to the rest of
// nodes").
//
//vliw:allocfree
func (st *state) profit(n, c int) int {
	p := 0
	for _, e := range st.fg.trueIn(n) {
		v := int(e.n)
		if v != n && st.placed(v) && st.cluster[v] == c {
			p++
		}
	}
	for _, e := range st.fg.trueOut(n) {
		v := int(e.n)
		if v == n {
			continue
		}
		if !(st.placed(v) && st.cluster[v] == c) {
			p--
		}
	}
	return p
}

// profits computes profit(n, c) for every cluster in one edge walk
// (valid until the placement state changes): profit = (placed
// in-producers on c) - (out-consumers not placed on c), so accumulating
// per-cluster in/out counts and subtracting the total out-degree gives
// all clusters at once.
//
//vliw:allocfree
func (st *state) profits(n int) []int {
	buf := st.profitBuf
	for c := range buf {
		buf[c] = 0
	}
	for _, e := range st.fg.trueIn(n) {
		v := int(e.n)
		if v != n && st.placed(v) {
			buf[st.cluster[v]]++
		}
	}
	totalOut := 0
	for _, e := range st.fg.trueOut(n) {
		v := int(e.n)
		if v == n {
			continue
		}
		totalOut++
		if st.placed(v) {
			buf[st.cluster[v]]++
		}
	}
	for c := range buf {
		buf[c] -= totalOut
	}
	return buf
}

// neighborsIn counts n's scheduled predecessors and successors living in
// cluster c (tie-break (7) of the selection heuristics).  Distinct
// neighbours are counted once per direction (a node that is both
// predecessor and successor counts twice, matching ddg.Preds + Succs);
// the seen-stamp scratch keeps the dedup allocation-free.
//
//vliw:allocfree
func (st *state) neighborsIn(n, c int) int {
	return st.neighborsInAll(n)[c]
}

// neighborsInAll is neighborsIn for every cluster in one pair of edge
// walks: each placed neighbour is stamped once per direction and
// bucketed by its cluster.
//
//vliw:allocfree
func (st *state) neighborsInAll(n int) []int {
	buf := st.nbBuf
	for c := range buf {
		buf[c] = 0
	}
	st.seenEpoch++
	for _, e := range st.fg.allIn(n) {
		v := int(e.n)
		if v != n && st.seen[v] != st.seenEpoch && st.placed(v) {
			st.seen[v] = st.seenEpoch
			buf[st.cluster[v]]++
		}
	}
	st.seenEpoch++
	for _, e := range st.fg.allOut(n) {
		v := int(e.n)
		if v != n && st.seen[v] != st.seenEpoch && st.placed(v) {
			st.seen[v] = st.seenEpoch
			buf[st.cluster[v]]++
		}
	}
	return buf
}

// anyNeighborScheduled reports whether any predecessor or successor of n
// is already placed — when none is, n starts a new subgraph and the
// default cluster advances (Figure 5, step 2).
//
//vliw:allocfree
func (st *state) anyNeighborScheduled(n int) bool {
	for _, e := range st.fg.allIn(n) {
		if int(e.n) != n && st.placed(int(e.n)) {
			return true
		}
	}
	for _, e := range st.fg.allOut(n) {
		if int(e.n) != n && st.placed(int(e.n)) {
			return true
		}
	}
	return false
}
